(* Machine-readable benchmark trajectory output.

   Every bench/main.exe run — whatever subset of sections it executes —
   writes a BENCH_micro.json next to the working directory (override with
   CPLA_BENCH_OUT) describing each measured kernel: section, kernel name,
   ns/op, minor allocation per run, fixture design and the git revision the
   numbers were taken at.  Committed snapshots of this file under
   bench/baselines/ form the repo's perf trajectory; CI validates the
   schema on every push so the emission can't silently rot. *)

type entry = {
  section : string;
  kernel : string;
  design : string;
  ns_per_op : float;
  minor_words_per_run : float option;
}

(* bench is a single-shot executable, not library code: this collector is
   only ever touched from the main domain's section loop *)
let entries : entry list ref = ref []

let record ~section ~kernel ~design ~ns_per_op ?minor_words_per_run () =
  entries := { section; kernel; design; ns_per_op; minor_words_per_run } :: !entries

(* Best-effort revision: resolve .git/HEAD one level (symbolic ref or
   detached hash) without shelling out.  "unknown" when not in a checkout. *)
let git_rev () =
  let read_line path =
    match open_in_bin path with
    | exception Sys_error _ -> None
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> match input_line ic with s -> Some (String.trim s) | exception End_of_file -> None)
  in
  let rec find_git dir depth =
    if depth > 6 then None
    else if Sys.file_exists (Filename.concat dir ".git") then Some (Filename.concat dir ".git")
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else find_git parent (depth + 1)
  in
  match find_git (Sys.getcwd ()) 0 with
  | None -> "unknown"
  | Some git -> (
      match read_line (Filename.concat git "HEAD") with
      | None -> "unknown"
      | Some head ->
          let hash =
            if String.length head > 5 && String.sub head 0 5 = "ref: " then
              let refname = String.sub head 5 (String.length head - 5) in
              Option.value ~default:"unknown" (read_line (Filename.concat git refname))
            else head
          in
          if String.length hash >= 12 then String.sub hash 0 12 else hash)

let json_float f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let default_path = "BENCH_micro.json"

let write () =
  let path = Option.value ~default:default_path (Sys.getenv_opt "CPLA_BENCH_OUT") in
  let rev = git_rev () in
  let es =
    List.sort
      (fun a b ->
        match compare a.section b.section with 0 -> compare a.kernel b.kernel | c -> c)
      !entries
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let b = Buffer.create 4096 in
      Buffer.add_string b "{\n";
      Buffer.add_string b "  \"schema\": \"cpla-bench-micro/1\",\n";
      Buffer.add_string b (Printf.sprintf "  \"git_rev\": %s,\n" (json_string rev));
      Buffer.add_string b "  \"entries\": [";
      List.iteri
        (fun i e ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b "\n    {";
          Buffer.add_string b (Printf.sprintf "\"section\": %s, " (json_string e.section));
          Buffer.add_string b (Printf.sprintf "\"kernel\": %s, " (json_string e.kernel));
          Buffer.add_string b (Printf.sprintf "\"design\": %s, " (json_string e.design));
          Buffer.add_string b (Printf.sprintf "\"ns_per_op\": %s, " (json_float e.ns_per_op));
          Buffer.add_string b
            (Printf.sprintf "\"minor_words_per_run\": %s}"
               (match e.minor_words_per_run with None -> "null" | Some w -> json_float w)))
        es;
      if es <> [] then Buffer.add_string b "\n  ";
      Buffer.add_string b "]\n}\n";
      Buffer.output_buffer oc b);
  Printf.printf "\n[bench] wrote %s (%d entries, rev %s)\n%!" path (List.length es) rev
