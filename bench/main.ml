(* Benchmark harness.

   Regenerates every table and figure of the paper's evaluation (Section 4)
   and, in the `micro` section, measures the computational kernel behind
   each of them with Bechamel (one Test.make per table/figure kernel).

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- table2 fig7  # selected sections

   The micro section's fixture design defaults to adaptec1; override it with
   `micro=NAME` on the command line or the CPLA_MICRO_DESIGN environment
   variable (any name from `cpla list`). *)

open Bechamel
open Toolkit

(* ---- micro-benchmarks: one kernel per table/figure ------------------------ *)

let default_micro_design () =
  Option.value ~default:"adaptec1" (Sys.getenv_opt "CPLA_MICRO_DESIGN")

let micro_fixture ~design () =
  (* one moderate design shared by the kernels, prepared once *)
  let bench =
    try Cpla_expt.Suite.find design
    with Not_found ->
      Printf.eprintf "unknown micro design %S; available: %s\n" design
        (String.concat ", " (List.map (fun b -> b.Cpla_expt.Suite.name) Cpla_expt.Suite.all));
      (* bench is its own entry point: a usage error exits like a CLI *)
      (exit 2) [@cpla.allow "exit-scope"]
  in
  let prep = Cpla_expt.Suite.prepare bench in
  let released = Cpla_expt.Experiments.released_at prep ~ratio:0.005 in
  let asg = prep.Cpla_expt.Suite.asg in
  let infos = Hashtbl.create 32 in
  Array.iter
    (fun net -> Hashtbl.replace infos net (Cpla_timing.Critical.path_info asg net))
    released;
  let items =
    Array.to_list released
    |> List.concat_map (fun net ->
           Array.to_list
             (Array.mapi
                (fun seg s ->
                  { Cpla.Partition.net; seg; mid = Cpla_route.Segment.midpoint s })
                (Cpla_route.Assignment.segments asg net)))
  in
  let graph = Cpla_route.Assignment.graph asg in
  let width = Cpla_grid.Graph.width graph and height = Cpla_grid.Graph.height graph in
  let leaves = Cpla.Partition.build ~width ~height ~k:4 ~max_segments:10 items in
  (* the most coupled leaf makes a representative solver workload *)
  let best_leaf =
    List.fold_left
      (fun acc leaf ->
        match acc with
        | None -> Some leaf
        | Some b ->
            if List.length leaf.Cpla.Partition.items > List.length b.Cpla.Partition.items
            then Some leaf
            else acc)
      None leaves
  in
  let leaf = Option.get best_leaf in
  List.iter
    (fun it ->
      Cpla_route.Assignment.unassign asg ~net:it.Cpla.Partition.net ~seg:it.Cpla.Partition.seg)
    leaf.Cpla.Partition.items;
  let f =
    Cpla.Formulation.build asg ~infos:(Hashtbl.find infos) ~items:leaf.Cpla.Partition.items
  in
  (* re-assign so the state stays valid for the Elmore kernel *)
  Array.iter
    (fun (v : Cpla.Formulation.var) ->
      Cpla_route.Assignment.set_layer asg ~net:v.Cpla.Formulation.net
        ~seg:v.Cpla.Formulation.seg ~layer:v.Cpla.Formulation.cands.(0))
    f.Cpla.Formulation.vars;
  (asg, released, items, f, width, height)

let micro_tests ~design () =
  let asg, released, items, f, width, height = micro_fixture ~design () in
  let fig1_elmore =
    Test.make ~name:"fig1/elmore-pin-delays"
      (Staged.stage (fun () -> Cpla_timing.Critical.pin_delays asg released))
  in
  let fig7_ilp =
    Test.make ~name:"fig7/ilp-partition-solve"
      (Staged.stage (fun () ->
           let m = Cpla.Ilp_method.build_model ~alpha:2000.0 f in
           Cpla_ilp.Solver.solve
             ~options:
               { Cpla_ilp.Solver.default_options with Cpla_ilp.Solver.time_limit_s = 5.0 }
             m))
  in
  let fig7_sdp =
    Test.make ~name:"fig7/sdp-partition-solve"
      (Staged.stage (fun () ->
           let problem, _ = Cpla.Sdp_method.build_problem f in
           Cpla_sdp.Solver.solve ~options:Cpla.Config.default.Cpla.Config.sdp_options problem))
  in
  let fig8_partition =
    Test.make ~name:"fig8/self-adaptive-partition"
      (Staged.stage (fun () -> Cpla.Partition.build ~width ~height ~k:4 ~max_segments:10 items))
  in
  let fig9_select =
    Test.make ~name:"fig9/critical-net-selection"
      (Staged.stage (fun () -> Cpla_timing.Critical.select asg ~ratio:0.005))
  in
  let table2_path_info =
    Test.make ~name:"table2/critical-path-info"
      (Staged.stage (fun () ->
           Array.map (fun net -> Cpla_timing.Critical.path_info asg net) released))
  in
  (* Incremental engine counterparts of the fig9/table2 kernels: the same
     queries served through the generation-keyed cache.  select-warm hits a
     fully clean cache (the steady state between outer iterations);
     path-info-after-leaf re-dirties one released net per run — the typical
     state after a single partition commit — and re-freezes the whole
     released set. *)
  let eng = Cpla_timing.Incremental.create asg in
  Cpla_timing.Incremental.refresh eng;
  Array.iter (fun net -> ignore (Cpla_timing.Incremental.path_info eng net)) released;
  let incr_select =
    Test.make ~name:"incr/select-warm"
      (Staged.stage (fun () -> Cpla_timing.Incremental.select eng ~ratio:0.005))
  in
  let tech = Cpla_route.Assignment.tech asg in
  (* One (net, seg, cur, alt) toggle per released net: a single layer move is
     the minimal event that dirties a net.  Runs rotate through the released
     set so the recompute cost is averaged over typical nets, not pinned to
     the most (or least) expensive one. *)
  let toggles =
    Array.to_list released
    |> List.filter_map (fun net ->
           let segs = Cpla_route.Assignment.segments asg net in
           let rec first seg =
             if seg >= Array.length segs then None
             else
               let cur = Cpla_route.Assignment.layer asg ~net ~seg in
               match
                 List.find_opt
                   (fun l -> l <> cur)
                   (Cpla_grid.Tech.layers_of_dir tech segs.(seg).Cpla_route.Segment.dir)
               with
               | Some alt -> Some (net, seg, cur, alt)
               | None -> first (seg + 1)
           in
           first 0)
    |> Array.of_list
  in
  let toggle_cursor = ref 0 in
  let incr_path_info =
    Test.make ~name:"incr/path-info-after-leaf"
      (Staged.stage (fun () ->
           let net, seg, cur, alt = toggles.(!toggle_cursor) in
           toggle_cursor := (!toggle_cursor + 1) mod Array.length toggles;
           Cpla_route.Assignment.set_layer asg ~net ~seg ~layer:alt;
           Cpla_route.Assignment.set_layer asg ~net ~seg ~layer:cur;
           Array.map (fun n -> Cpla_timing.Incremental.path_info eng n) released))
  in
  Test.make_grouped ~name:"kernels"
    [
      fig1_elmore;
      fig7_ilp;
      fig7_sdp;
      fig8_partition;
      fig9_select;
      table2_path_info;
      incr_select;
      incr_path_info;
    ]

(* Run a grouped Bechamel test set, print the human table and record every
   kernel into the machine-readable trajectory output (Bench_out).  Shared
   by the `micro` and `batch` sections. *)
let run_bechamel ~section ~design tests =
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock; minor_allocated ] tests in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let allocs = Analyze.all ols Instance.minor_allocated raw in
  let estimate tbl name =
    match Hashtbl.find_opt tbl name with
    | Some ols_result -> (
        match Analyze.OLS.estimates ols_result with Some (v :: _) -> v | _ -> nan)
    | None -> nan
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name _ -> rows := (name, estimate results name, estimate allocs name) :: !rows)
    results;
  let t = Cpla_util.Table.create ~headers:[ "kernel"; "time/run"; "minor w/run" ] in
  List.sort compare !rows
  |> List.iter (fun (name, ns, words) ->
         let cell =
           if Float.is_nan ns then "n/a"
           else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
           else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
           else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
           else Printf.sprintf "%.0f ns" ns
         in
         let acell =
           if Float.is_nan words then "n/a"
           else if words > 1e6 then Printf.sprintf "%.2fM" (words /. 1e6)
           else if words > 1e3 then Printf.sprintf "%.1fk" (words /. 1e3)
           else Printf.sprintf "%.0f" words
         in
         Cpla_util.Table.add_row t [ name; cell; acell ];
         Bench_out.record ~section ~kernel:name ~design ~ns_per_op:ns
           ?minor_words_per_run:(if Float.is_nan words then None else Some words)
           ());
  Cpla_util.Table.print t

let run_micro ?design () =
  let design = match design with Some d -> d | None -> default_micro_design () in
  Printf.printf "\n==================================================================\n";
  Printf.printf "Micro-benchmarks (Bechamel) — kernel behind each table/figure (%s)\n"
    design;
  Printf.printf "==================================================================\n%!";
  run_bechamel ~section:"micro" ~design (micro_tests ~design ())

(* ---- batched kernel engine ------------------------------------------------- *)

(* Steady-state cost of the structure-of-arrays solver kernels: the same
   partition subproblem solved through a reused per-domain workspace (the
   batched driver's inner loop — compile/build once, zero allocation per
   solve) versus through a fresh workspace per solve (the cost the batch
   engine amortises away).  The reused variants are the numbers a batch of
   same-bucket partitions pays per cell after the first. *)
let batch_tests ~design () =
  let _, _, _, f, _, _ = micro_fixture ~design () in
  let sdp_options = Cpla.Config.default.Cpla.Config.sdp_options in
  let problem, _ = Cpla.Sdp_method.build_problem f in
  let compiled = Cpla_sdp.Kernel.compile ~rank:sdp_options.Cpla_sdp.Solver.rank problem in
  let dim, _ = Cpla_sdp.Kernel.dims compiled in
  let kopts =
    {
      Cpla_sdp.Kernel.max_outer = sdp_options.Cpla_sdp.Solver.max_outer;
      inner_iters = sdp_options.Cpla_sdp.Solver.inner_iters;
      sigma0 = sdp_options.Cpla_sdp.Solver.sigma0;
      sigma_growth = sdp_options.Cpla_sdp.Solver.sigma_growth;
      feas_tol = sdp_options.Cpla_sdp.Solver.feas_tol;
      seed = sdp_options.Cpla_sdp.Solver.seed;
    }
  in
  let sdp_ws = Cpla_sdp.Kernel.ws_create () in
  let x_diag = Array.make dim 0.0 in
  let sdp_reused =
    Test.make ~name:"batch/sdp-kernel-reused-ws"
      (Staged.stage (fun () ->
           Cpla_sdp.Kernel.solve_into sdp_ws compiled ~options:kopts ~x_diag))
  in
  let sdp_fresh =
    Test.make ~name:"batch/sdp-kernel-fresh-ws"
      (Staged.stage (fun () ->
           Cpla_sdp.Kernel.solve_into (Cpla_sdp.Kernel.ws_create ()) compiled
             ~options:kopts ~x_diag))
  in
  let ilp_options =
    { Cpla_ilp.Solver.default_options with Cpla_ilp.Solver.time_limit_s = 5.0 }
  in
  let model = Cpla.Ilp_method.build_model ~alpha:2000.0 f in
  let ilp_ws = Cpla_ilp.Solver.ws_create () in
  let ilp_reused =
    Test.make ~name:"batch/ilp-bnb-reused-ws"
      (Staged.stage (fun () -> Cpla_ilp.Solver.solve ~options:ilp_options ~ws:ilp_ws model))
  in
  let ilp_fresh =
    Test.make ~name:"batch/ilp-bnb-fresh-ws"
      (Staged.stage (fun () -> Cpla_ilp.Solver.solve ~options:ilp_options model))
  in
  Test.make_grouped ~name:"batch" [ sdp_reused; sdp_fresh; ilp_reused; ilp_fresh ]

let run_batch ?design () =
  let design = match design with Some d -> d | None -> default_micro_design () in
  Printf.printf "\n==================================================================\n";
  Printf.printf "Batched SoA kernels — reused vs fresh workspaces (%s)\n" design;
  Printf.printf "==================================================================\n%!";
  run_bechamel ~section:"batch" ~design (batch_tests ~design ())

(* ---- serve throughput ------------------------------------------------------ *)

(* The batch-service scaling claim: N independent synthetic jobs drained by
   1 worker vs K workers.  Jobs are identical pipelines (generate, route,
   assign, optimise, audit), so ideal scaling is min(K, N)x; the measured
   ratio exposes scheduler and allocator overhead.  Wall clock, not CPU —
   CPU time is invariant under parallelism. *)
let serve_jobs n =
  List.init n (fun i ->
      {
        Cpla_serve.Job.id = i;
        label = Printf.sprintf "synth-%02d" i;
        source =
          Cpla_serve.Job.Synth
            {
              Cpla_route.Synth.default_spec with
              Cpla_route.Synth.name = Printf.sprintf "synth-%02d" i;
              width = 24;
              height = 24;
              num_layers = 4;
              num_nets = 600;
              seed = 7000 + i;
              hotspots = 2;
              blockage_fraction = 0.02;
            };
        config = { Cpla.Config.default with Cpla.Config.max_outer_iters = 2 };
        priority = 0;
        deadline_s = None;
      })

let run_serve () =
  Printf.printf "\n==================================================================\n";
  Printf.printf "serve/throughput — batch service, 1 vs K workers\n";
  Printf.printf "==================================================================\n%!";
  let n = 8 in
  (* 4 workers regardless of the local core count: on a single-core box the
     ratio degrades to ~1x (domains just interleave) and the printed core
     count explains why *)
  let workers_hi = 4 in
  Printf.printf "(%d recommended worker(s) on this machine)\n%!"
    (Cpla_util.Pool.recommended_workers ());
  let time_with workers =
    let results, s =
      Cpla_util.Timer.wall_time (fun () -> Cpla_serve.Scheduler.run ~workers (serve_jobs n))
    in
    let ok = Array.for_all (fun (_, t) -> Cpla_serve.Job.is_ok t) results in
    if not ok then failwith "serve/throughput: a job did not finish ok";
    s
  in
  let t1 = time_with 1 in
  let tk = time_with workers_hi in
  Bench_out.record ~section:"serve" ~kernel:"serve/throughput-1w" ~design:"synth-24x24"
    ~ns_per_op:(t1 *. 1e9 /. float_of_int n) ();
  Bench_out.record ~section:"serve"
    ~kernel:(Printf.sprintf "serve/throughput-%dw" workers_hi)
    ~design:"synth-24x24"
    ~ns_per_op:(tk *. 1e9 /. float_of_int n) ();
  let t = Cpla_util.Table.create ~headers:[ "workers"; "jobs"; "wall(s)"; "speedup" ] in
  Cpla_util.Table.add_row t [ "1"; string_of_int n; Printf.sprintf "%.2f" t1; "1.00x" ];
  Cpla_util.Table.add_row t
    [
      string_of_int workers_hi;
      string_of_int n;
      Printf.sprintf "%.2f" tk;
      Printf.sprintf "%.2fx" (t1 /. tk);
    ];
  Cpla_util.Table.print t

(* ---- serve latency (daemon) ------------------------------------------------ *)

(* Request-level latency of the cpla daemon: one client submits tiny .gr
   jobs sequentially and measures submit-to-terminal wall time, plus raw
   ping round-trips for the protocol floor.  p50/p95/p99 land in
   BENCH_micro.json (section serve-latency); the committed snapshot is
   bench/baselines/serve-latency.json. *)
let write_tiny_gr path =
  let spec =
    {
      Cpla_route.Synth.default_spec with
      Cpla_route.Synth.name = "latency";
      width = 12;
      height = 12;
      num_layers = 4;
      num_nets = 150;
      seed = 4242;
      hotspots = 1;
      blockage_fraction = 0.0;
    }
  in
  let graph, nets = Cpla_route.Synth.generate spec in
  let nl = Cpla_grid.Graph.num_layers graph in
  let dir_cap d =
    Array.init nl (fun l ->
        if Cpla_grid.Tech.layer_dir (Cpla_grid.Graph.tech graph) l = d then
          spec.Cpla_route.Synth.capacity
        else 0)
  in
  let header =
    {
      Cpla_route.Ispd08.grid_x = Cpla_grid.Graph.width graph;
      grid_y = Cpla_grid.Graph.height graph;
      num_layers = nl;
      vertical_capacity = dir_cap Cpla_grid.Tech.Vertical;
      horizontal_capacity = dir_cap Cpla_grid.Tech.Horizontal;
      min_width = Array.make nl 1;
      min_spacing = Array.make nl 1;
      via_spacing = Array.make nl 1;
      lower_left_x = 0;
      lower_left_y = 0;
      tile_width = 10;
      tile_height = 10;
    }
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc
        (Cpla_route.Ispd08.write { Cpla_route.Ispd08.header; nets; adjustments = [] }))

let run_serve_latency () =
  let module Server = Cpla_net.Server in
  let module Client = Cpla_net.Client in
  let module Protocol = Cpla_net.Protocol in
  Printf.printf "\n==================================================================\n";
  Printf.printf "serve-latency — daemon request/job latency percentiles\n";
  Printf.printf "==================================================================\n%!";
  let gr = Filename.temp_file "cpla-latency" ".gr" in
  Fun.protect ~finally:(fun () -> try Sys.remove gr with Sys_error _ -> ()) @@ fun () ->
  write_tiny_gr gr;
  let server =
    Server.create ~config:{ Server.default_config with Server.port = 0; workers = 2 } ()
  in
  (* sanctioned impurity: the daemon event loop reads the wall clock for
     its latency histograms and drain grace — it is a service being
     measured here, not a deterministic kernel *)
  let loop = (Domain.spawn (fun () -> Server.serve server) [@cpla.allow "impure-kernel"]) in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown server;
      Domain.join loop)
  @@ fun () ->
  let client = Client.connect ~host:"127.0.0.1" ~port:(Server.port server) () in
  Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
  let ping_ms =
    Array.init 200 (fun _ ->
        let w = Cpla_util.Timer.wall () in
        (match Client.call ~timeout_s:10.0 client Protocol.Ping with
        | Ok (Protocol.Result { resp = Protocol.Pong; _ }) -> ()
        | Ok _ | Error _ -> failwith "serve-latency: ping failed");
        Cpla_util.Timer.elapsed_s w *. 1e3)
  in
  let n_jobs = 40 in
  let job_ms =
    Array.init n_jobs (fun i ->
        let w = Cpla_util.Timer.wall () in
        let spec_line = Printf.sprintf "%s ratio=0.01 iters=1 name=lat-%02d" gr i in
        match Client.call ~timeout_s:60.0 client (Protocol.Submit { spec_line }) with
        | Ok (Protocol.Result { resp = Protocol.Accepted { job }; _ }) -> (
            match Client.await_terminal ~timeout_s:60.0 client ~job with
            | Ok (Cpla_serve.Job.Done _) -> Cpla_util.Timer.elapsed_s w *. 1e3
            | Ok t ->
                failwith
                  ("serve-latency: job settled " ^ Cpla_serve.Job.status_string t)
            | Error e -> failwith ("serve-latency: " ^ e))
        | Ok _ -> failwith "serve-latency: submission rejected"
        | Error e -> failwith ("serve-latency: " ^ e))
  in
  let t = Cpla_util.Table.create ~headers:[ "kernel"; "p50"; "p95"; "p99" ] in
  let report ~kernel ~design ms =
    let pct p = Cpla_util.Stats.percentile ms p in
    List.iter
      (fun (tag, p) ->
        Bench_out.record ~section:"serve-latency"
          ~kernel:(Printf.sprintf "%s-%s" kernel tag)
          ~design
          ~ns_per_op:(pct p *. 1e6) ())
      [ ("p50", 50.0); ("p95", 95.0); ("p99", 99.0) ];
    Cpla_util.Table.add_row t
      [
        kernel;
        Printf.sprintf "%.2f ms" (pct 50.0);
        Printf.sprintf "%.2f ms" (pct 95.0);
        Printf.sprintf "%.2f ms" (pct 99.0);
      ]
  in
  report ~kernel:"latency/ping" ~design:"rpc" ping_ms;
  report ~kernel:"latency/job" ~design:"synth-12x12" job_ms;
  Cpla_util.Table.print t

(* ---- observability overhead ------------------------------------------------ *)

(* The instrumentation contract: with the global switch off, a span per
   per-net timing query (the densest realistic placement — the pipeline
   spans cells, not inner loops) costs at most 2% over the bare kernel.
   Min-of-N wall times so scheduler noise cannot manufacture a failure;
   the bench FAILS when the bound is broken, making the contract a gate
   rather than a dashboard number. *)
let run_obs_overhead () =
  Printf.printf "\n==================================================================\n";
  Printf.printf "obs/overhead — instrumented (switch off) vs seed kernel\n";
  Printf.printf "==================================================================\n%!";
  Cpla_obs.Obs.set_enabled false;
  let design = default_micro_design () in
  let asg, released, _, _, _, _ = micro_fixture ~design () in
  let seed () =
    Array.iter (fun net -> ignore (Cpla_timing.Critical.path_info asg net)) released
  in
  let instrumented () =
    Array.iter
      (fun net ->
        Cpla_obs.Span.with_ ~name:"bench/path-info"
          ~args:[ ("net", Cpla_obs.Event.Int net) ]
          (fun () -> ignore (Cpla_timing.Critical.path_info asg net)))
      released
  in
  let time_min ~reps ~inner f =
    (* warm-up takes the allocation of both closures and any lazy state out
       of the measured window *)
    f ();
    f ();
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Cpla_util.Timer.now_ns () in
      for _ = 1 to inner do
        f ()
      done;
      let dt = Int64.to_float (Int64.sub (Cpla_util.Timer.now_ns ()) t0) in
      if dt < !best then best := dt
    done;
    !best
  in
  let reps = 7 and inner = 20 in
  let t_seed = time_min ~reps ~inner seed in
  let t_instr = time_min ~reps ~inner instrumented in
  let overhead = (t_instr /. t_seed) -. 1.0 in
  Bench_out.record ~section:"obs" ~kernel:"obs/path-info-seed" ~design
    ~ns_per_op:(t_seed /. float_of_int inner) ();
  Bench_out.record ~section:"obs" ~kernel:"obs/path-info-instrumented-off" ~design
    ~ns_per_op:(t_instr /. float_of_int inner) ();
  let t = Cpla_util.Table.create ~headers:[ "kernel"; "min wall"; "overhead" ] in
  let cell ns = Printf.sprintf "%.2f ms" (ns /. 1e6) in
  Cpla_util.Table.add_row t [ "seed"; cell t_seed; "-" ];
  Cpla_util.Table.add_row t
    [ "instrumented (off)"; cell t_instr; Printf.sprintf "%+.2f%%" (100.0 *. overhead) ];
  Cpla_util.Table.print t;
  if overhead > 0.02 then
    failwith
      (Printf.sprintf "obs/overhead: disabled instrumentation costs %.2f%% (budget 2%%)"
         (100.0 *. overhead))

(* ---- lint wall time --------------------------------------------------------- *)

(* Whole-tree cpla-lint wall time, three regimes over the same in-memory
   sources: a cold run (empty summary cache), a warm run with nothing
   changed (every summary reused), and a warm run after touching one file
   (that file plus its importers re-summarized).  Keeping cold in the
   trajectory makes a superlinear regression in the analyses as visible as
   one in the kernels; the warm/cold ratio gates the point of the
   incremental engine.  Requires the sources on disk, so it runs from the
   repo root and is skipped elsewhere. *)
let run_lint () =
  Printf.printf "\n==================================================================\n";
  Printf.printf "lint — whole-tree static analysis wall time\n";
  Printf.printf "==================================================================\n%!";
  let roots = List.filter Sys.file_exists [ "lib"; "bin"; "bench"; "test" ] in
  if roots = [] then print_endline "sources not on disk; skipping"
  else begin
    let sources, _ = Cpla_lint.Engine.read_sources roots in
    let lint ~cache srcs =
      let cache, findings, stats = Cpla_lint.Engine.lint_incremental ~cache srcs in
      (cache, findings, stats)
    in
    let warm_cache, cold_findings, _ = lint ~cache:Cpla_lint.Summary.empty sources in
    (* the 1-dirty variant: append a comment to one mid-sized util module *)
    let dirty_path = "lib/util/stats.ml" in
    let dirtied =
      List.map
        (fun (s : Cpla_lint.Engine.source) ->
          if String.equal s.src_path dirty_path then
            { s with contents = s.contents ^ "\n(* bench: touched *)\n" }
          else s)
        sources
    in
    let measure name f =
      let reps = 5 in
      let best = ref infinity in
      for _ = 1 to reps do
        let t0 = Cpla_util.Timer.now_ns () in
        f ();
        let dt = Int64.to_float (Int64.sub (Cpla_util.Timer.now_ns ()) t0) in
        if dt < !best then best := dt
      done;
      Bench_out.record ~section:"lint" ~kernel:name ~design:"repo" ~ns_per_op:!best ();
      !best
    in
    let t_cold = measure "lint/cold" (fun () -> ignore (lint ~cache:Cpla_lint.Summary.empty sources)) in
    let t_warm = measure "lint/warm-clean" (fun () -> ignore (lint ~cache:warm_cache sources)) in
    let t_dirty = measure "lint/warm-1-dirty" (fun () -> ignore (lint ~cache:warm_cache dirtied)) in
    let _, warm_findings, warm_stats = lint ~cache:warm_cache sources in
    Printf.printf
      "cold: %.1f ms   warm-clean: %.1f ms (%d/%d reused)   warm-1-dirty: %.1f ms\n"
      (t_cold /. 1e6) (t_warm /. 1e6) warm_stats.Cpla_lint.Summary.reused
      warm_stats.Cpla_lint.Summary.files (t_dirty /. 1e6);
    Printf.printf "findings: %d (cold)\n" (List.length cold_findings);
    if warm_findings <> cold_findings then
      failwith "lint/warm-clean: findings differ from the cold run";
    if t_warm *. 5.0 > t_cold then
      failwith
        (Printf.sprintf
           "lint/warm-clean: %.1f ms is not >=5x faster than cold %.1f ms"
           (t_warm /. 1e6) (t_cold /. 1e6))
  end

(* ---- incremental driver ---------------------------------------------------- *)

(* Driver-level incrementality: a cold sweep (every quadtree leaf dirty)
   versus a dirty re-solve (one net marked dirty at the converged fixed
   point) on the same Incr state, plus a full optimize run replayed
   through a shared content-addressed solve cache.  Gates: the dirty
   re-solve must beat the cold sweep by >=3x, and the cache-hit rerun
   must skip every coupled solve (hits > 0, no new misses). *)
let run_incr_driver () =
  Printf.printf "\n==================================================================\n";
  Printf.printf "incr-driver — dirty-partition scheduling and the solve cache\n";
  Printf.printf "==================================================================\n%!";
  let design = "synth-48x48-1500" in
  let build () =
    let spec =
      {
        Cpla_route.Synth.default_spec with
        Cpla_route.Synth.name = design;
        width = 48;
        height = 48;
        num_nets = 1500;
        capacity = 8;
        seed = 11;
        mean_extra_pins = 2.0;
      }
    in
    let graph, nets = Cpla_route.Synth.generate spec in
    let routed = Cpla_route.Router.route_all ~graph nets in
    let asg =
      Cpla_route.Assignment.create ~graph ~nets ~trees:routed.Cpla_route.Router.trees
    in
    Cpla_route.Init_assign.run asg;
    let released = Cpla_timing.Critical.select asg ~ratio:0.02 in
    (asg, released)
  in
  let layers_of asg =
    Array.init (Cpla_route.Assignment.num_nets asg) (fun n ->
        Array.mapi
          (fun s _ -> Cpla_route.Assignment.layer asg ~net:n ~seg:s)
          (Cpla_route.Assignment.segments asg n))
  in
  let restore asg snap =
    Array.iteri
      (fun n layers ->
        Array.iteri
          (fun s l ->
            if Cpla_route.Assignment.layer asg ~net:n ~seg:s <> l then
              Cpla_route.Assignment.set_layer asg ~net:n ~seg:s ~layer:l)
          layers)
      snap
  in
  let measure name f =
    let reps = 5 in
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Cpla_util.Timer.now_ns () in
      f ();
      let dt = Int64.to_float (Int64.sub (Cpla_util.Timer.now_ns ()) t0) in
      if dt < !best then best := dt
    done;
    Bench_out.record ~section:"incr-driver" ~kernel:name ~design ~ns_per_op:!best ();
    !best
  in
  (* warm starts off so cold sweep and dirty re-solve run the same solver
     path: the ratio then measures dirty-set scheduling alone *)
  let config = { Cpla.Config.default with Cpla.Config.warm_start = false; workers = 1 } in
  let asg, released = build () in
  let initial = layers_of asg in
  (* cold sweep: all leaves dirty, fresh scheduler state each rep *)
  let t_cold =
    measure "incr/cold-sweep" (fun () ->
        restore asg initial;
        let engine = Cpla_timing.Incremental.create asg in
        let st = Cpla.Driver.Incr.create ~config ~engine asg ~released in
        ignore (Cpla.Driver.Incr.sweep st))
  in
  (* converge once, then re-solve the dirty region of a single net *)
  restore asg initial;
  let engine = Cpla_timing.Incremental.create asg in
  let st = Cpla.Driver.Incr.create ~config ~engine asg ~released in
  let budget = ref 20 in
  while Cpla.Driver.Incr.dirty_count st > 0 && !budget > 0 do
    ignore (Cpla.Driver.Incr.sweep st);
    decr budget
  done;
  let leaf_count = Cpla.Driver.Incr.leaf_count st in
  (* the localized-change scenario: of the released nets, re-release the
     one with the smallest dirty closure (leaves + tile neighbours) — the
     sprawling worst nets blanket the quadtree and measure a half-cold
     sweep instead.  Probing drains each candidate's dirt untimed. *)
  let drain () =
    let b = ref 20 in
    while Cpla.Driver.Incr.dirty_count st > 0 && !b > 0 do
      ignore (Cpla.Driver.Incr.sweep st);
      decr b
    done
  in
  let small_net =
    Array.fold_left
      (fun (best, best_n) n ->
        Cpla.Driver.Incr.mark_net_dirty st n;
        let d = Cpla.Driver.Incr.dirty_count st in
        drain ();
        if d < best then (d, n) else (best, best_n))
      (max_int, released.(0))
      released
    |> snd
  in
  let dirty_leaves = ref 0 in
  let t_dirty =
    let best = ref infinity in
    for _ = 1 to 5 do
      Cpla.Driver.Incr.mark_net_dirty st small_net;
      dirty_leaves := Cpla.Driver.Incr.dirty_count st;
      let t0 = Cpla_util.Timer.now_ns () in
      ignore (Cpla.Driver.Incr.sweep st);
      let dt = Int64.to_float (Int64.sub (Cpla_util.Timer.now_ns ()) t0) in
      if dt < !best then best := dt;
      (* drain follow-up dirt outside the timed region *)
      drain ()
    done;
    Bench_out.record ~section:"incr-driver" ~kernel:"incr/dirty-resolve" ~design
      ~ns_per_op:!best ();
    !best
  in
  (* full runs through a shared solve cache: cold fill, then pure replay *)
  let cache = Cpla.Solve_cache.create () in
  let t_cache_cold =
    let asg, released = build () in
    let t0 = Cpla_util.Timer.now_ns () in
    ignore (Cpla.Driver.optimize_released ~config ~solve_cache:cache asg ~released);
    Int64.to_float (Int64.sub (Cpla_util.Timer.now_ns ()) t0)
  in
  let misses_cold = Cpla.Solve_cache.misses cache in
  let t_cache_hit =
    let asg, released = build () in
    let t0 = Cpla_util.Timer.now_ns () in
    ignore (Cpla.Driver.optimize_released ~config ~solve_cache:cache asg ~released);
    Int64.to_float (Int64.sub (Cpla_util.Timer.now_ns ()) t0)
  in
  Bench_out.record ~section:"incr-driver" ~kernel:"incr/cache-cold-run" ~design
    ~ns_per_op:t_cache_cold ();
  Bench_out.record ~section:"incr-driver" ~kernel:"incr/cache-hit-run" ~design
    ~ns_per_op:t_cache_hit ();
  let t = Cpla_util.Table.create ~headers:[ "kernel"; "wall"; "leaves" ] in
  Cpla_util.Table.add_row t
    [ "cold sweep"; Printf.sprintf "%.2f ms" (t_cold /. 1e6); string_of_int leaf_count ];
  Cpla_util.Table.add_row t
    [
      "dirty re-solve";
      Printf.sprintf "%.2f ms" (t_dirty /. 1e6);
      string_of_int !dirty_leaves;
    ];
  Cpla_util.Table.add_row t
    [ "cache-cold run"; Printf.sprintf "%.2f ms" (t_cache_cold /. 1e6); "-" ];
  Cpla_util.Table.add_row t
    [ "cache-hit run"; Printf.sprintf "%.2f ms" (t_cache_hit /. 1e6); "-" ];
  Cpla_util.Table.print t;
  Printf.printf "cold/dirty speedup: %.1fx   cache hits: %d misses: %d\n"
    (t_cold /. t_dirty) (Cpla.Solve_cache.hits cache) (Cpla.Solve_cache.misses cache);
  if t_dirty *. 3.0 > t_cold then
    failwith
      (Printf.sprintf
         "incr/dirty-resolve: %.2f ms is not >=3x faster than cold sweep %.2f ms"
         (t_dirty /. 1e6) (t_cold /. 1e6));
  if Cpla.Solve_cache.hits cache = 0 then
    failwith "incr/cache-hit-run: replay produced no cache hits";
  if Cpla.Solve_cache.misses cache <> misses_cold then
    failwith "incr/cache-hit-run: replay missed the cache"

(* ---- entry ----------------------------------------------------------------- *)

let sections =
  [
    ("fig1", Cpla_expt.Experiments.fig1);
    ("fig3b", Cpla_expt.Experiments.fig3b);
    ("fig7", Cpla_expt.Experiments.fig7);
    ("fig8", Cpla_expt.Experiments.fig8);
    ("fig9", Cpla_expt.Experiments.fig9);
    ("table2", Cpla_expt.Experiments.table2);
    ("extended", Cpla_expt.Experiments.extended);
    ("steiner", Cpla_expt.Experiments.steiner);
    ("ablations", Cpla_expt.Experiments.ablations);
    ("serve", run_serve);
    ("serve-latency", run_serve_latency);
    ("obs", run_obs_overhead);
    ("micro", fun () -> run_micro ());
    ("batch", fun () -> run_batch ());
    ("incr-driver", run_incr_driver);
    ("lint", run_lint);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) -> args
    | _ -> List.map fst sections
  in
  (* the trajectory JSON is written even when a gate (e.g. obs/overhead)
     fails the run: partial numbers still locate the regression *)
  Fun.protect ~finally:Bench_out.write @@ fun () ->
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None -> (
          (* micro=NAME runs the micro section against another suite design *)
          match String.index_opt name '=' with
          | Some i when String.sub name 0 i = "micro" ->
              run_micro ~design:(String.sub name (i + 1) (String.length name - i - 1)) ()
          | Some i when String.sub name 0 i = "batch" ->
              run_batch ~design:(String.sub name (i + 1) (String.length name - i - 1)) ()
          | _ ->
              Printf.eprintf "unknown section %s (available: %s)\n" name
                (String.concat ", " (List.map fst sections));
              (exit 2) [@cpla.allow "exit-scope"]))
    requested
