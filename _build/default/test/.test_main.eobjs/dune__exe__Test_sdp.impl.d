test/test_sdp.ml: Alcotest Array Cholesky Cpla_numeric Cpla_sdp Float List Mat Problem QCheck QCheck_alcotest Solver
