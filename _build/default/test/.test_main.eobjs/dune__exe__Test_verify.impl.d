test/test_verify.ml: Alcotest Array Assignment Buffer Cpla Cpla_grid Cpla_route Cpla_tila Cpla_timing Critical Format Graph Init_assign List Net Printf Router Segment Stree String Synth Tech Verify
