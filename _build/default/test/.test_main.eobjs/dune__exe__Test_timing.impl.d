test/test_timing.ml: Alcotest Array Assignment Cpla_grid Cpla_route Cpla_timing Critical Elmore Graph List Net Printf QCheck QCheck_alcotest Segment Stree Tech
