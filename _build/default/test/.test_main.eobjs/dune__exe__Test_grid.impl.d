test/test_grid.ml: Alcotest Array Cpla_grid Graph Printf QCheck QCheck_alcotest String Tech
