test/test_numeric_props.ml: Array Cholesky Cpla_numeric Cpla_sdp Cpla_util Eigen Float Lbfgs Mat QCheck QCheck_alcotest Simplex Vec
