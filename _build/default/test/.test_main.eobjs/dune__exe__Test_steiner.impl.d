test/test_steiner.ml: Alcotest Array Cpla_route List Net Printf QCheck QCheck_alcotest Router Steiner Stree Synth
