test/test_numeric.ml: Alcotest Array Cholesky Cpla_numeric Cpla_util Eigen Float Lbfgs Mat Printf QCheck QCheck_alcotest Simplex Vec
