test/test_assignment.ml: Alcotest Array Assignment Cpla_grid Cpla_route Float Graph Init_assign List Net Printf QCheck QCheck_alcotest Router Segment Stree Synth Tech Tree_dp
