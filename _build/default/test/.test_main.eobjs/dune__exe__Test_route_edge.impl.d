test/test_route_edge.ml: Alcotest Array Cpla_grid Cpla_route Float Graph Ispd08 List Net Printf QCheck QCheck_alcotest Router Segment Stree Tech Tree_dp
