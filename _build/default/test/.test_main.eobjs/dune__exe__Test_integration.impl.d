test/test_integration.ml: Array Assignment Cpla Cpla_grid Cpla_route Cpla_tila Cpla_timing Critical Elmore Init_assign List Net QCheck QCheck_alcotest Router Stree Synth
