test/test_util.ml: Alcotest Array Cpla_util Heap Histogram List QCheck QCheck_alcotest Rng Stats String Table
