test/test_route.ml: Alcotest Array Cpla_grid Cpla_route Graph Ispd08 List Maze Net Printf Router Segment Stree Synth Tech
