test/test_ilp.ml: Alcotest Array Cpla_ilp Cpla_numeric Float Model QCheck QCheck_alcotest Simplex Solver
