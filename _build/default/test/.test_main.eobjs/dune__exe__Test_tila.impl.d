test/test_tila.ml: Alcotest Assignment Cpla_grid Cpla_route Cpla_tila Cpla_timing Critical Init_assign Router Synth
