test/test_misc.ml: Alcotest Array Cpla Cpla_grid Cpla_route Cpla_util Graph List Net Router Stree String Tech
