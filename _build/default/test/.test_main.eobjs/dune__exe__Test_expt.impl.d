test/test_expt.ml: Alcotest Cpla_expt Cpla_route Cpla_timing Experiments List Suite
