open Cpla_grid
open Cpla_route
open Cpla_timing

let pin px py = { Net.px; py; pl = 0 }

(* Two-pin net, one horizontal segment of length 4 on an 8x8 grid. *)
let straight_design ?(layers = 4) () =
  let tech = Tech.default ~num_layers:layers () in
  let graph = Graph.create ~tech ~width:8 ~height:8 ~layer_capacity:(Array.make layers 8) in
  let net = Net.create ~id:0 ~name:"n0" ~pins:[| pin 0 0; pin 4 0 |] in
  let tree = Stree.of_edges ~root:(0, 0) [ ((0, 0), (4, 0)) ] in
  let asg = Assignment.create ~graph ~nets:[| net |] ~trees:[| Some tree |] in
  (tech, asg)

let test_hand_computed_straight () =
  let tech, asg = straight_design () in
  Assignment.set_layer asg ~net:0 ~seg:0 ~layer:0;
  let d = Elmore.analyze asg 0 in
  (* By hand: len=4, layer 0: R = 8*4 = 32, C = 0.8*4 = 3.2.
     Cd(seg) = sink_c = 1.0.  ts = 32*(1.6+1.0) = 83.2.
     total_cap = 3.2 + 1.0 = 4.2; driver delay = 4*4.2 = 16.8.
     source pin layer 0 = segment layer, no source via.
     sink pin layer 0 = segment layer, no sink via.
     worst = 16.8 + 83.2 = 100.0 *)
  Alcotest.(check (float 1e-9)) "cd" 1.0 d.Elmore.seg_cd.(0);
  Alcotest.(check (float 1e-9)) "ts" 83.2 d.Elmore.seg_delay.(0);
  Alcotest.(check (float 1e-9)) "total cap" 4.2 d.Elmore.total_cap;
  Alcotest.(check (float 1e-9)) "worst" 100.0 d.Elmore.worst_delay;
  ignore tech

let test_higher_layer_faster () =
  let _, asg = straight_design () in
  Assignment.set_layer asg ~net:0 ~seg:0 ~layer:0;
  let low = (Elmore.analyze asg 0).Elmore.worst_delay in
  Assignment.set_layer asg ~net:0 ~seg:0 ~layer:2;
  let high = (Elmore.analyze asg 0).Elmore.worst_delay in
  (* layer 2 halves the resistance; via delay to pins is small *)
  Alcotest.(check bool) "high layer wins for a long segment" true (high < low)

let test_via_delay_charged () =
  let tech, asg = straight_design ~layers:6 () in
  Assignment.set_layer asg ~net:0 ~seg:0 ~layer:4;
  let d = Elmore.analyze asg 0 in
  (* source via: 4 crossings driving Cd=1.0 -> min(Cd, total)·R_v(0..4) = 4.0
     sink via: 4 crossings driving sink_c -> 4.0 *)
  let expected_ts = Elmore.seg_ts ~tech ~len:4 ~layer:4 ~cd:1.0 in
  let driver = tech.Tech.driver_r *. d.Elmore.total_cap in
  Alcotest.(check (float 1e-9)) "worst includes vias" (driver +. 4.0 +. expected_ts +. 4.0)
    d.Elmore.worst_delay

let test_unassigned_raises () =
  let _, asg = straight_design () in
  Alcotest.(check bool) "raises" true
    (match Elmore.analyze asg 0 with exception Invalid_argument _ -> true | _ -> false)

(* Branching net: source (0,0) -- (2,0) -- branch to (2,2) and on to (5,0). *)
let branched_design () =
  let tech = Tech.default ~num_layers:4 () in
  let graph = Graph.create ~tech ~width:8 ~height:8 ~layer_capacity:(Array.make 4 8) in
  let net = Net.create ~id:0 ~name:"n0" ~pins:[| pin 0 0; pin 5 0; pin 2 2 |] in
  let tree =
    Stree.of_edges ~root:(0, 0) [ ((0, 0), (2, 0)); ((2, 0), (5, 0)); ((2, 0), (2, 2)) ]
  in
  let asg = Assignment.create ~graph ~nets:[| net |] ~trees:[| Some tree |] in
  (tech, asg)

let assign_lowest asg =
  let tech = Assignment.tech asg in
  Array.iteri
    (fun seg s ->
      Assignment.set_layer asg ~net:0 ~seg
        ~layer:(List.hd (Tech.layers_of_dir tech s.Segment.dir)))
    (Assignment.segments asg 0)

let test_branch_cd_accumulates () =
  let _, asg = branched_design () in
  assign_lowest asg;
  let d = Elmore.analyze asg 0 in
  let segs = Assignment.segments asg 0 in
  (* The stem (0,0)-(2,0) must see the caps of both branches downstream. *)
  let stem = ref (-1) in
  let tree = match Assignment.tree asg 0 with Some t -> t | None -> assert false in
  Array.iteri
    (fun i s ->
      let (ax, _), (bx, _) = Segment.endpoints s tree in
      if s.Segment.dir = Tech.Horizontal && min ax bx = 0 then stem := i)
    segs;
  Alcotest.(check bool) "found stem" true (!stem >= 0);
  (* downstream of stem: branch wire (len 3 h + len 2 v) caps + 2 sink caps *)
  let expect = (0.8 *. 3.0) +. (0.8 *. 2.0) +. 2.0 in
  Alcotest.(check (float 1e-9)) "stem cd" expect d.Elmore.seg_cd.(!stem)

let test_two_sinks_reported () =
  let _, asg = branched_design () in
  assign_lowest asg;
  let d = Elmore.analyze asg 0 in
  Alcotest.(check int) "two sinks" 2 (Array.length d.Elmore.sink_delays);
  Alcotest.(check bool) "worst is max" true
    (Array.for_all (fun (_, dl) -> dl <= d.Elmore.worst_delay) d.Elmore.sink_delays)

let test_critical_select_ranks () =
  (* Three nets with increasing lengths: selection must pick the longest. *)
  let tech = Tech.default ~num_layers:4 () in
  let graph = Graph.create ~tech ~width:16 ~height:16 ~layer_capacity:(Array.make 4 8) in
  let mk_net id len =
    ( Net.create ~id ~name:(Printf.sprintf "n%d" id) ~pins:[| pin 0 id; pin len id |],
      Stree.of_edges ~root:(0, id) [ ((0, id), (len, id)) ] )
  in
  let n0, t0 = mk_net 0 2 and n1, t1 = mk_net 1 8 and n2, t2 = mk_net 2 14 in
  let asg =
    Assignment.create ~graph ~nets:[| n0; n1; n2 |] ~trees:[| Some t0; Some t1; Some t2 |]
  in
  for i = 0 to 2 do
    Assignment.set_layer asg ~net:i ~seg:0 ~layer:0
  done;
  let sel = Critical.select asg ~ratio:0.3 in
  Alcotest.(check int) "one net selected" 1 (Array.length sel);
  Alcotest.(check int) "longest selected" 2 sel.(0);
  let sel2 = Critical.select asg ~ratio:0.6 in
  Alcotest.(check bool) "two selected, worst first" true (sel2 = [| 2; 1 |])

let test_path_info_structure () =
  let _, asg = branched_design () in
  assign_lowest asg;
  let info = Critical.path_info asg 0 in
  (* worst sink is (5,0): path = stem + right segment; branch to (2,2) off-path *)
  let segs = Assignment.segments asg 0 in
  Alcotest.(check int) "two path segments" 2 (Array.length info.Critical.path_segs);
  let branch_count = ref 0 in
  Array.iteri
    (fun i s ->
      if not info.Critical.on_path.(i) then begin
        incr branch_count;
        Alcotest.(check bool) "branch is vertical" true (s.Segment.dir = Tech.Vertical)
      end)
    segs;
  Alcotest.(check int) "one branch segment" 1 !branch_count

let test_branch_attach_r () =
  let tech, asg = branched_design () in
  assign_lowest asg;
  let info = Critical.path_info asg 0 in
  let segs = Assignment.segments asg 0 in
  Array.iteri
    (fun i s ->
      if not info.Critical.on_path.(i) then begin
        (* branch attaches at (2,0): upstream R = driver + R(stem len 2 layer 0) *)
        let expect = tech.Tech.driver_r +. (Tech.unit_r tech 0 *. 2.0) in
        Alcotest.(check (float 1e-9)) "attach R" expect info.Critical.branch_attach_r.(i)
      end;
      ignore s)
    segs

let test_avg_max_tcp () =
  let _, asg = branched_design () in
  assign_lowest asg;
  let avg, mx = Critical.avg_max_tcp asg [| 0 |] in
  let d = Elmore.analyze asg 0 in
  Alcotest.(check (float 1e-9)) "avg of one" d.Elmore.worst_delay avg;
  Alcotest.(check (float 1e-9)) "max of one" d.Elmore.worst_delay mx

let test_pin_delays_count () =
  let _, asg = branched_design () in
  assign_lowest asg;
  let ds = Critical.pin_delays asg [| 0 |] in
  Alcotest.(check int) "two pin delays" 2 (Array.length ds)

(* Property: Elmore delay is positive and grows with segment length. *)
let test_delay_monotone_length =
  QCheck.Test.make ~name:"delay grows with wire length" ~count:30
    QCheck.(pair (int_range 1 6) (int_range 1 6))
    (fun (l1, l2) ->
      let mk len =
        let tech = Tech.default ~num_layers:4 () in
        let graph =
          Graph.create ~tech ~width:16 ~height:16 ~layer_capacity:(Array.make 4 8)
        in
        let net = Net.create ~id:0 ~name:"n" ~pins:[| pin 0 0; pin len 0 |] in
        let tree = Stree.of_edges ~root:(0, 0) [ ((0, 0), (len, 0)) ] in
        let asg = Assignment.create ~graph ~nets:[| net |] ~trees:[| Some tree |] in
        Assignment.set_layer asg ~net:0 ~seg:0 ~layer:0;
        (Elmore.analyze asg 0).Elmore.worst_delay
      in
      let d1 = mk l1 and d2 = mk l2 in
      d1 > 0.0 && d2 > 0.0 && (l1 = l2 || (l1 < l2) = (d1 < d2)))

let suite =
  [
    Alcotest.test_case "hand-computed straight net" `Quick test_hand_computed_straight;
    Alcotest.test_case "higher layer is faster" `Quick test_higher_layer_faster;
    Alcotest.test_case "via delay charged" `Quick test_via_delay_charged;
    Alcotest.test_case "unassigned raises" `Quick test_unassigned_raises;
    Alcotest.test_case "branch cd accumulates" `Quick test_branch_cd_accumulates;
    Alcotest.test_case "two sinks reported" `Quick test_two_sinks_reported;
    Alcotest.test_case "critical select ranks" `Quick test_critical_select_ranks;
    Alcotest.test_case "path info structure" `Quick test_path_info_structure;
    Alcotest.test_case "branch attach resistance" `Quick test_branch_attach_r;
    Alcotest.test_case "avg/max tcp" `Quick test_avg_max_tcp;
    Alcotest.test_case "pin delays count" `Quick test_pin_delays_count;
    QCheck_alcotest.to_alcotest test_delay_monotone_length;
  ]
