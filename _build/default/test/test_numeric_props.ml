(* Deeper property-based tests on the numerical substrates. *)

open Cpla_numeric

let random_psd rng n =
  let b = Mat.init n n (fun _ _ -> Cpla_util.Rng.gaussian rng) in
  let a = Mat.mul b (Mat.transpose b) in
  Mat.init n n (fun i j -> Mat.get a i j +. if i = j then float_of_int n else 0.0)

(* L-BFGS on a strongly convex quadratic must agree with the direct solve. *)
let lbfgs_vs_cholesky =
  QCheck.Test.make ~name:"lbfgs solves random PSD quadratics" ~count:25
    QCheck.(pair (int_range 1 1000) (int_range 2 6))
    (fun (seed, n) ->
      let rng = Cpla_util.Rng.create seed in
      let a = random_psd rng n in
      let b = Array.init n (fun _ -> Cpla_util.Rng.gaussian rng) in
      let x_direct = Cholesky.solve a b in
      let f x =
        let ax = Mat.mul_vec a x in
        let fx = (0.5 *. Vec.dot x ax) -. Vec.dot b x in
        let g = Array.mapi (fun i v -> v -. b.(i)) ax in
        (fx, g)
      in
      let res = Lbfgs.minimize ~max_iter:1000 ~grad_tol:1e-9 ~f (Array.make n 0.0) in
      let err = Vec.norm_inf (Vec.sub res.Lbfgs.x x_direct) in
      err < 1e-4)

(* Eigenvalues shift exactly under A + tI. *)
let eigen_shift =
  QCheck.Test.make ~name:"eigenvalues shift under diagonal offset" ~count:25
    QCheck.(pair (int_range 1 1000) (float_range 0.1 5.0))
    (fun (seed, t) ->
      let rng = Cpla_util.Rng.create seed in
      let n = 4 in
      let a = random_psd rng n in
      let shifted = Mat.init n n (fun i j -> Mat.get a i j +. if i = j then t else 0.0) in
      let w, _ = Eigen.decompose a in
      let ws, _ = Eigen.decompose shifted in
      Array.for_all2 (fun x y -> Float.abs (x +. t -. y) < 1e-7) w ws)

(* Eigenvalue sum equals the trace. *)
let eigen_trace =
  QCheck.Test.make ~name:"eigenvalue sum equals trace" ~count:25
    QCheck.(int_range 1 1000)
    (fun seed ->
      let rng = Cpla_util.Rng.create seed in
      let n = 5 in
      let a = random_psd rng n in
      let w, _ = Eigen.decompose a in
      let trace = ref 0.0 in
      for i = 0 to n - 1 do
        trace := !trace +. Mat.get a i i
      done;
      Float.abs (Cpla_util.Stats.sum w -. !trace) < 1e-7 *. Float.max 1.0 !trace)

(* Adding a constraint can only worsen (raise) a minimisation optimum. *)
let simplex_constraint_monotonicity =
  QCheck.Test.make ~name:"extra constraints never lower the LP optimum" ~count:50
    QCheck.(
      quad (float_range (-3.0) 3.0) (float_range (-3.0) 3.0) (float_range 1.0 6.0)
        (float_range 0.5 4.0))
    (fun (c0, c1, b0, extra) ->
      let base =
        {
          Simplex.objective = [| c0; c1 |];
          rows =
            [|
              ([| 1.0; 1.0 |], Simplex.Le, b0);
              ([| 1.0; 0.0 |], Simplex.Le, b0);
              ([| 0.0; 1.0 |], Simplex.Le, b0);
            |];
        }
      in
      let tightened =
        { base with Simplex.rows = Array.append base.Simplex.rows [| ([| 1.0; 1.0 |], Simplex.Le, Float.min b0 extra) |] }
      in
      match (Simplex.solve base, Simplex.solve tightened) with
      | Simplex.Optimal a, Simplex.Optimal b ->
          b.Simplex.objective >= a.Simplex.objective -. 1e-7
      | Simplex.Optimal _, Simplex.Infeasible -> true
      | _ -> false)

(* Scaling the objective scales the optimum. *)
let simplex_objective_scaling =
  QCheck.Test.make ~name:"LP optimum scales with the objective" ~count:50
    QCheck.(triple (float_range (-4.0) 4.0) (float_range (-4.0) 4.0) (float_range 0.5 5.0))
    (fun (c0, c1, k) ->
      let mk scale =
        {
          Simplex.objective = [| scale *. c0; scale *. c1 |];
          rows =
            [|
              ([| 1.0; 1.0 |], Simplex.Le, 3.0);
              ([| 1.0; 0.0 |], Simplex.Le, 2.0);
              ([| 0.0; 1.0 |], Simplex.Le, 2.0);
            |];
        }
      in
      match (Simplex.solve (mk 1.0), Simplex.solve (mk k)) with
      | Simplex.Optimal a, Simplex.Optimal b ->
          Float.abs ((k *. a.Simplex.objective) -. b.Simplex.objective)
          < 1e-6 *. Float.max 1.0 (Float.abs b.Simplex.objective)
      | _ -> false)

(* Cholesky solve agrees with explicit residual. *)
let cholesky_residual =
  QCheck.Test.make ~name:"cholesky solve residual is tiny" ~count:25
    QCheck.(pair (int_range 1 1000) (int_range 1 8))
    (fun (seed, n) ->
      let rng = Cpla_util.Rng.create seed in
      let a = random_psd rng n in
      let b = Array.init n (fun _ -> Cpla_util.Rng.gaussian rng) in
      let x = Cholesky.solve a b in
      Vec.norm_inf (Vec.sub (Mat.mul_vec a x) b) < 1e-7 *. Float.max 1.0 (Vec.norm_inf b))

(* The SDP solver respects objective scaling too (sanity for the CPLA
   normalisation step). *)
let sdp_objective_scaling =
  QCheck.Test.make ~name:"SDP diag ranking invariant to objective scale" ~count:10
    QCheck.(pair (float_range 0.5 3.0) (float_range 10.0 1000.0))
    (fun (c, k) ->
      let e i j v = { Cpla_sdp.Problem.i; j; v } in
      let mk scale =
        Cpla_sdp.Problem.create ~dim:2
          ~cost:[ e 0 0 (scale *. c); e 1 1 (scale *. 2.0 *. c) ]
          ~constraints:[ { Cpla_sdp.Problem.terms = [ e 0 0 1.0; e 1 1 1.0 ]; b = 1.0 } ]
      in
      let r1 = Cpla_sdp.Solver.solve (mk 1.0) in
      let rk = Cpla_sdp.Solver.solve (mk (1.0 /. k)) in
      (* entry 0 is cheaper in both cases *)
      r1.Cpla_sdp.Solver.x_diag.(0) > r1.Cpla_sdp.Solver.x_diag.(1)
      && rk.Cpla_sdp.Solver.x_diag.(0) > rk.Cpla_sdp.Solver.x_diag.(1))

let suite =
  [
    QCheck_alcotest.to_alcotest lbfgs_vs_cholesky;
    QCheck_alcotest.to_alcotest eigen_shift;
    QCheck_alcotest.to_alcotest eigen_trace;
    QCheck_alcotest.to_alcotest simplex_constraint_monotonicity;
    QCheck_alcotest.to_alcotest simplex_objective_scaling;
    QCheck_alcotest.to_alcotest cholesky_residual;
    QCheck_alcotest.to_alcotest sdp_objective_scaling;
  ]
