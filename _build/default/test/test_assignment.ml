open Cpla_grid
open Cpla_route

let pin px py = { Net.px; py; pl = 0 }

(* One net: source (0,0), an L to (4,0)->(4,3), and a branch at (2,0)->(2,2). *)
let mk_design ?(layers = 4) ?(cap = 8) () =
  let tech = Tech.default ~num_layers:layers () in
  let graph = Graph.create ~tech ~width:8 ~height:8 ~layer_capacity:(Array.make layers cap) in
  let net =
    Net.create ~id:0 ~name:"n0" ~pins:[| pin 0 0; pin 4 3; pin 2 2 |]
  in
  let tree =
    Stree.of_edges ~root:(0, 0)
      [ ((0, 0), (2, 0)); ((2, 0), (4, 0)); ((4, 0), (4, 3)); ((2, 0), (2, 2)) ]
  in
  let asg = Assignment.create ~graph ~nets:[| net |] ~trees:[| Some tree |] in
  (graph, asg)

let seg_by_dir asg dir =
  let segs = Assignment.segments asg 0 in
  let found = ref [] in
  Array.iteri (fun i s -> if s.Segment.dir = dir then found := i :: !found) segs;
  List.rev !found

let test_create_unassigned () =
  let _, asg = mk_design () in
  Alcotest.(check int) "four segments" 4 (Array.length (Assignment.segments asg 0));
  Alcotest.(check bool) "not fully assigned" false (Assignment.fully_assigned asg);
  Array.iteri
    (fun seg _ -> Alcotest.(check int) "unassigned" (-1) (Assignment.layer asg ~net:0 ~seg))
    (Assignment.segments asg 0)

let test_assign_edge_usage () =
  let graph, asg = mk_design () in
  let h_segs = seg_by_dir asg Tech.Horizontal in
  let seg = List.hd h_segs in
  Assignment.set_layer asg ~net:0 ~seg ~layer:0;
  let s = (Assignment.segments asg 0).(seg) in
  Array.iter
    (fun e -> Alcotest.(check int) "edge used" 1 (Graph.usage graph e ~layer:0))
    s.Segment.edges;
  Alcotest.(check bool) "consistent" true (Assignment.check_usage asg = Ok ())

let test_move_releases_old_layer () =
  let graph, asg = mk_design () in
  let seg = List.hd (seg_by_dir asg Tech.Horizontal) in
  Assignment.set_layer asg ~net:0 ~seg ~layer:0;
  Assignment.set_layer asg ~net:0 ~seg ~layer:2;
  let s = (Assignment.segments asg 0).(seg) in
  Array.iter
    (fun e ->
      Alcotest.(check int) "old layer freed" 0 (Graph.usage graph e ~layer:0);
      Alcotest.(check int) "new layer used" 1 (Graph.usage graph e ~layer:2))
    s.Segment.edges;
  Alcotest.(check bool) "consistent" true (Assignment.check_usage asg = Ok ())

let test_direction_mismatch () =
  let _, asg = mk_design () in
  let seg = List.hd (seg_by_dir asg Tech.Horizontal) in
  Alcotest.(check bool) "rejects vertical layer" true
    (match Assignment.set_layer asg ~net:0 ~seg ~layer:1 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let assign_all asg =
  let tech = Assignment.tech asg in
  Array.iteri
    (fun seg s ->
      let layer = List.hd (Tech.layers_of_dir tech s.Segment.dir) in
      Assignment.set_layer asg ~net:0 ~seg ~layer)
    (Assignment.segments asg 0)

let test_via_spans_after_full_assign () =
  let graph, asg = mk_design () in
  assign_all asg;
  (* all H segs on layer 0, V segs on layer 1; pins on layer 0.
     At (4,0): H seg (layer 0) meets V seg (layer 1): span 0-1 => 1 via. *)
  Alcotest.(check int) "via at turn" 1 (Graph.via_usage graph ~x:4 ~y:0 ~crossing:0);
  Alcotest.(check int) "via at branch" 1 (Graph.via_usage graph ~x:2 ~y:0 ~crossing:0);
  Alcotest.(check bool) "consistent" true (Assignment.check_usage asg = Ok ())

let test_via_span_with_high_layer () =
  let graph, asg = mk_design () in
  assign_all asg;
  (* move the (2,0)-(4,0) H segment to layer 2: at (2,0) span is 0..2 *)
  let segs = Assignment.segments asg 0 in
  let seg_24 = ref (-1) in
  Array.iteri
    (fun i s ->
      if s.Segment.dir = Tech.Horizontal then begin
        let tree = match Assignment.tree asg 0 with Some t -> t | None -> assert false in
        let (x0, _), (x1, _) = Segment.endpoints s tree in
        if min x0 x1 = 2 && max x0 x1 = 4 then seg_24 := i
      end)
    segs;
  Alcotest.(check bool) "found 2-4 segment" true (!seg_24 >= 0);
  Assignment.set_layer asg ~net:0 ~seg:!seg_24 ~layer:2;
  Alcotest.(check int) "crossing 0 at (2,0)" 1 (Graph.via_usage graph ~x:2 ~y:0 ~crossing:0);
  Alcotest.(check int) "crossing 1 at (2,0)" 1 (Graph.via_usage graph ~x:2 ~y:0 ~crossing:1);
  Alcotest.(check bool) "consistent" true (Assignment.check_usage asg = Ok ())

let test_unassign_clears_usage () =
  let graph, asg = mk_design () in
  assign_all asg;
  Assignment.unassign_net asg 0;
  Alcotest.(check int) "no vias left" 0 (Graph.total_via_usage graph);
  Alcotest.(check int) "no overflow" 0 (Graph.edge_overflow graph);
  Graph.iter_edges graph (fun e ->
      List.iter
        (fun l -> Alcotest.(check int) "edge clean" 0 (Graph.usage graph e ~layer:l))
        (Graph.edge_layers graph e));
  Alcotest.(check bool) "consistent" true (Assignment.check_usage asg = Ok ())

(* Random walk of set_layer/unassign preserves the usage invariant. *)
let test_random_mutations =
  QCheck.Test.make ~name:"usage invariant under random mutations" ~count:30
    QCheck.(list_of_size (QCheck.Gen.int_range 1 40) (pair (int_bound 3) (int_bound 3)))
    (fun moves ->
      let _, asg = mk_design ~layers:8 () in
      let tech = Assignment.tech asg in
      let segs = Assignment.segments asg 0 in
      List.iter
        (fun (seg_raw, layer_raw) ->
          let seg = seg_raw mod Array.length segs in
          let dir_layers = Array.of_list (Tech.layers_of_dir tech segs.(seg).Segment.dir) in
          let layer = dir_layers.(layer_raw mod Array.length dir_layers) in
          Assignment.set_layer asg ~net:0 ~seg ~layer)
        moves;
      Assignment.check_usage asg = Ok ())

(* ---- Tree_dp ---------------------------------------------------------------- *)

let test_tree_dp_prefers_cheap_layer () =
  let _, asg = mk_design () in
  let tree = match Assignment.tree asg 0 with Some t -> t | None -> assert false in
  let segs = Assignment.segments asg 0 in
  let node_to_seg = Assignment.node_to_seg asg 0 in
  let tech = Assignment.tech asg in
  let candidates seg = Tech.layers_of_dir tech segs.(seg).Segment.dir in
  (* layer 2 much cheaper than layer 0 for H; 3 cheaper than 1 for V *)
  let seg_cost _ l = if l >= 2 then 1.0 else 10.0 in
  let via_cost ~node:_ a b = 0.1 *. float_of_int (abs (a - b)) in
  let chosen =
    Tree_dp.solve ~tree ~node_to_seg
      ~pins_at:(fun node -> Assignment.pin_layers_at asg ~net:0 ~node)
      ~candidates ~seg_cost ~via_cost
  in
  Array.iteri
    (fun seg l ->
      Alcotest.(check bool)
        (Printf.sprintf "segment %d on a high layer" seg)
        true (l >= 2))
    chosen

let test_tree_dp_via_tradeoff () =
  (* Strong via costs force all same-direction segments onto one layer pair
     even if a slightly cheaper layer exists for one of them. *)
  let _, asg = mk_design () in
  let tree = match Assignment.tree asg 0 with Some t -> t | None -> assert false in
  let segs = Assignment.segments asg 0 in
  let node_to_seg = Assignment.node_to_seg asg 0 in
  let tech = Assignment.tech asg in
  let candidates seg = Tech.layers_of_dir tech segs.(seg).Segment.dir in
  let seg_cost seg l =
    (* make layer 2 marginally cheaper for segment 0 only *)
    if seg = 0 && l = 2 then 0.9 else 1.0
  in
  let via_cost ~node:_ a b = 100.0 *. float_of_int (abs (a - b)) in
  let chosen =
    Tree_dp.solve ~tree ~node_to_seg
      ~pins_at:(fun node -> Assignment.pin_layers_at asg ~net:0 ~node)
      ~candidates ~seg_cost ~via_cost
  in
  (* pins are on layer 0, so everything should collapse to layers 0/1 *)
  Array.iteri
    (fun seg l ->
      let expect = match segs.(seg).Segment.dir with Tech.Horizontal -> 0 | Tech.Vertical -> 1 in
      Alcotest.(check int) (Printf.sprintf "segment %d pulled low" seg) expect l)
    chosen

(* DP optimality vs brute force on the 4-segment fixture. *)
let test_tree_dp_vs_brute =
  QCheck.Test.make ~name:"tree dp matches brute force" ~count:40
    QCheck.(array_of_size (QCheck.Gen.return 16) (float_range 0.0 10.0))
    (fun costs ->
      let _, asg = mk_design () in
      let tree = match Assignment.tree asg 0 with Some t -> t | None -> assert false in
      let segs = Assignment.segments asg 0 in
      let node_to_seg = Assignment.node_to_seg asg 0 in
      let tech = Assignment.tech asg in
      let cand seg = Tech.layers_of_dir tech segs.(seg).Segment.dir in
      let seg_cost seg l = costs.((seg * 4) + l) in
      let via_cost ~node:_ a b = 0.7 *. float_of_int (abs (a - b)) in
      let pins_at node = Assignment.pin_layers_at asg ~net:0 ~node in
      let total assignment =
        (* pairwise objective evaluated directly *)
        let acc = ref 0.0 in
        Array.iteri (fun seg l -> acc := !acc +. seg_cost seg l) assignment;
        let children = Stree.children tree in
        for v = 0 to Stree.num_nodes tree - 1 do
          let up_seg = node_to_seg.(v) in
          Array.iter
            (fun c ->
              let cs = node_to_seg.(c) in
              if up_seg >= 0 then
                acc := !acc +. via_cost ~node:v assignment.(cs) assignment.(up_seg))
            children.(v);
          (* pin terms *)
          List.iter
            (fun pl ->
              if up_seg >= 0 then acc := !acc +. via_cost ~node:v pl assignment.(up_seg)
              else
                Array.iter
                  (fun c -> acc := !acc +. via_cost ~node:v pl assignment.(node_to_seg.(c)))
                  children.(v))
            (pins_at v)
        done;
        !acc
      in
      let chosen =
        Tree_dp.solve ~tree ~node_to_seg ~pins_at ~candidates:cand ~seg_cost ~via_cost
      in
      let dp_val = total chosen in
      (* brute force over all candidate combos (2 options per segment, 4 segs) *)
      let best = ref infinity in
      let cands = Array.init 4 (fun s -> Array.of_list (cand s)) in
      for a = 0 to 1 do
        for b = 0 to 1 do
          for c = 0 to 1 do
            for d = 0 to 1 do
              let x = [| cands.(0).(a); cands.(1).(b); cands.(2).(c); cands.(3).(d) |] in
              best := Float.min !best (total x)
            done
          done
        done
      done;
      dp_val <= !best +. 1e-9)

(* ---- Init_assign ---------------------------------------------------------------- *)

let test_init_assign_full_and_legal () =
  let spec = { Synth.default_spec with Synth.width = 20; height = 20; num_nets = 150; seed = 5 } in
  let graph, nets = Synth.generate spec in
  let routed = Router.route_all ~graph nets in
  let asg = Assignment.create ~graph ~nets ~trees:routed.Router.trees in
  Init_assign.run asg;
  Alcotest.(check bool) "fully assigned" true (Assignment.fully_assigned asg);
  Alcotest.(check bool) "usage consistent" true (Assignment.check_usage asg = Ok ());
  Alcotest.(check bool) "edge overflow bounded" true (Graph.edge_overflow graph <= 5)

let test_congestion_penalty_schedule () =
  Alcotest.(check (float 1e-9)) "plenty free" 0.0 (Init_assign.congestion_penalty ~free:5);
  Alcotest.(check bool) "tight > free" true
    (Init_assign.congestion_penalty ~free:0 > Init_assign.congestion_penalty ~free:1);
  Alcotest.(check bool) "overflow dominates" true
    (Init_assign.congestion_penalty ~free:(-1) > 100.0)

let suite =
  [
    Alcotest.test_case "create unassigned" `Quick test_create_unassigned;
    Alcotest.test_case "assign installs edge usage" `Quick test_assign_edge_usage;
    Alcotest.test_case "move releases old layer" `Quick test_move_releases_old_layer;
    Alcotest.test_case "direction mismatch rejected" `Quick test_direction_mismatch;
    Alcotest.test_case "via spans after full assign" `Quick test_via_spans_after_full_assign;
    Alcotest.test_case "via span with high layer" `Quick test_via_span_with_high_layer;
    Alcotest.test_case "unassign clears usage" `Quick test_unassign_clears_usage;
    QCheck_alcotest.to_alcotest test_random_mutations;
    Alcotest.test_case "tree dp prefers cheap layer" `Quick test_tree_dp_prefers_cheap_layer;
    Alcotest.test_case "tree dp via tradeoff" `Quick test_tree_dp_via_tradeoff;
    QCheck_alcotest.to_alcotest test_tree_dp_vs_brute;
    Alcotest.test_case "init assign full+legal" `Quick test_init_assign_full_and_legal;
    Alcotest.test_case "congestion penalty schedule" `Quick test_congestion_penalty_schedule;
  ]
