open Cpla_grid

let mk ?(w = 8) ?(h = 8) ?(layers = 4) ?(cap = 10) () =
  let tech = Tech.default ~num_layers:layers () in
  (tech, Graph.create ~tech ~width:w ~height:h ~layer_capacity:(Array.make layers cap))

let he x y = { Graph.dir = Tech.Horizontal; x; y }
let ve x y = { Graph.dir = Tech.Vertical; x; y }

let test_tech_directions () =
  let tech = Tech.default ~num_layers:6 () in
  Alcotest.(check bool) "layer0 horizontal" true (Tech.layer_dir tech 0 = Tech.Horizontal);
  Alcotest.(check bool) "layer1 vertical" true (Tech.layer_dir tech 1 = Tech.Vertical);
  Alcotest.(check (list int)) "h layers" [ 0; 2; 4 ] (Tech.layers_of_dir tech Tech.Horizontal);
  Alcotest.(check (list int)) "v layers" [ 1; 3; 5 ] (Tech.layers_of_dir tech Tech.Vertical)

let test_tech_rc_monotone () =
  let tech = Tech.default ~num_layers:8 () in
  (* resistance never increases going up the stack *)
  for l = 0 to 6 do
    Alcotest.(check bool)
      (Printf.sprintf "r(%d) >= r(%d)" l (l + 1))
      true
      (Tech.unit_r tech l >= Tech.unit_r tech (l + 1))
  done

let test_tech_via_span () =
  let tech = Tech.default ~num_layers:4 () in
  Alcotest.(check (float 1e-9)) "zero span" 0.0 (Tech.via_r_span tech ~lo:2 ~hi:2);
  Alcotest.(check (float 1e-9)) "full span" 3.0 (Tech.via_r_span tech ~lo:0 ~hi:3);
  Alcotest.check_raises "lo > hi" (Invalid_argument "Tech.via_r_span: lo > hi") (fun () ->
      ignore (Tech.via_r_span tech ~lo:3 ~hi:1))

let test_graph_capacity_direction () =
  let _, g = mk () in
  Alcotest.(check int) "h edge on h layer" 10 (Graph.capacity g (he 0 0) ~layer:0);
  Alcotest.(check int) "h edge on v layer" 0 (Graph.capacity g (he 0 0) ~layer:1);
  Alcotest.(check int) "2d capacity" 20 (Graph.capacity_2d g (he 0 0))

let test_graph_usage_roundtrip () =
  let _, g = mk () in
  Graph.add_usage g (he 2 3) ~layer:0 3;
  Alcotest.(check int) "usage" 3 (Graph.usage g (he 2 3) ~layer:0);
  Alcotest.(check int) "free" 7 (Graph.free g (he 2 3) ~layer:0);
  Graph.add_usage g (he 2 3) ~layer:0 (-3);
  Alcotest.(check int) "released" 0 (Graph.usage g (he 2 3) ~layer:0);
  Alcotest.check_raises "negative usage"
    (Invalid_argument "Graph.add_usage: usage would become negative") (fun () ->
      Graph.add_usage g (he 2 3) ~layer:0 (-1))

let test_graph_edge_bounds () =
  let _, g = mk ~w:4 ~h:4 () in
  Alcotest.(check bool) "last h edge" true (Graph.edge_exists g (he 2 3));
  Alcotest.(check bool) "h overflow x" false (Graph.edge_exists g (he 3 0));
  Alcotest.(check bool) "last v edge" true (Graph.edge_exists g (ve 3 2));
  Alcotest.(check bool) "v overflow y" false (Graph.edge_exists g (ve 0 3))

let test_graph_overflow_count () =
  let _, g = mk ~cap:2 () in
  Graph.add_usage g (he 0 0) ~layer:0 5;
  Alcotest.(check int) "edge overflow" 3 (Graph.edge_overflow g)

let test_via_capacity_eqn1 () =
  let tech, g = mk ~cap:10 () in
  (* interior tile: both incident edges free at 10 *)
  let expect = Tech.via_per_boundary tech ~cap_e0:10 ~cap_e1:10 in
  Alcotest.(check int) "interior via cap" expect (Graph.via_capacity g ~x:4 ~y:4 ~crossing:0);
  (* corner tile on layer 0 (horizontal): only one incident h edge *)
  let expect_corner = Tech.via_per_boundary tech ~cap_e0:0 ~cap_e1:10 in
  Alcotest.(check int) "corner via cap" expect_corner (Graph.via_capacity g ~x:0 ~y:0 ~crossing:0)

let test_via_capacity_shrinks_with_usage () =
  let _, g = mk ~cap:10 () in
  let before = Graph.via_capacity g ~x:4 ~y:4 ~crossing:0 in
  Graph.add_usage g (he 4 4) ~layer:0 10;
  Graph.add_usage g (he 3 4) ~layer:0 10;
  let after = Graph.via_capacity g ~x:4 ~y:4 ~crossing:0 in
  Alcotest.(check bool) "shrinks" true (after < before);
  Alcotest.(check int) "full edges forbid vias" 0 after

let test_via_usage_overflow () =
  let _, g = mk ~cap:1 ~w:4 ~h:4 () in
  (* tiny capacity makes via capacity small; pile up vias *)
  let cap = Graph.via_capacity g ~x:1 ~y:1 ~crossing:0 in
  Graph.add_via_usage g ~x:1 ~y:1 ~crossing:0 (cap + 4);
  Alcotest.(check int) "via overflow" 4 (Graph.via_overflow g);
  Alcotest.(check int) "total vias" (cap + 4) (Graph.total_via_usage g)

let test_reduce_capacity () =
  let _, g = mk () in
  Graph.reduce_capacity g (he 1 1) ~layer:0 ~by:4;
  Alcotest.(check int) "reduced" 6 (Graph.capacity g (he 1 1) ~layer:0);
  Graph.reduce_capacity g (he 1 1) ~layer:0 ~by:100;
  Alcotest.(check int) "floored at 0" 0 (Graph.capacity g (he 1 1) ~layer:0)

let test_density () =
  let _, g = mk ~cap:10 () in
  Graph.add_usage g (he 3 3) ~layer:0 10;
  let d = Graph.density g in
  Alcotest.(check (float 1e-9)) "half-saturated tile" 0.5 d.(3).(3);
  Alcotest.(check (float 1e-9)) "far tile untouched" 0.0 d.(7).(7);
  let map = Graph.density_map g in
  Alcotest.(check bool) "map lines" true (String.length map > 8 * 8)

let test_clone_independent () =
  let _, g = mk () in
  let g2 = Graph.clone g in
  Graph.add_usage g (he 0 0) ~layer:0 5;
  Alcotest.(check int) "clone unaffected" 0 (Graph.usage g2 (he 0 0) ~layer:0)

let test_iter_edges_count () =
  let _, g = mk ~w:5 ~h:4 () in
  let n = ref 0 in
  Graph.iter_edges g (fun _ -> incr n);
  (* h edges: 4*4 = 16; v edges: 5*3 = 15 *)
  Alcotest.(check int) "edge count" 31 !n

let via_cap_property =
  QCheck.Test.make ~name:"via capacity is monotone in edge usage" ~count:50
    QCheck.(pair (int_bound 9) (int_bound 9))
    (fun (u1, u2) ->
      let _, g = mk ~cap:10 () in
      Graph.add_usage g (he 4 4) ~layer:0 u1;
      let c1 = Graph.via_capacity g ~x:4 ~y:4 ~crossing:0 in
      Graph.add_usage g (he 3 4) ~layer:0 u2;
      let c2 = Graph.via_capacity g ~x:4 ~y:4 ~crossing:0 in
      c2 <= c1)

let suite =
  [
    Alcotest.test_case "tech directions" `Quick test_tech_directions;
    Alcotest.test_case "tech rc monotone" `Quick test_tech_rc_monotone;
    Alcotest.test_case "tech via span" `Quick test_tech_via_span;
    Alcotest.test_case "capacity respects direction" `Quick test_graph_capacity_direction;
    Alcotest.test_case "usage roundtrip" `Quick test_graph_usage_roundtrip;
    Alcotest.test_case "edge bounds" `Quick test_graph_edge_bounds;
    Alcotest.test_case "edge overflow" `Quick test_graph_overflow_count;
    Alcotest.test_case "via capacity eqn(1)" `Quick test_via_capacity_eqn1;
    Alcotest.test_case "via capacity shrinks with usage" `Quick test_via_capacity_shrinks_with_usage;
    Alcotest.test_case "via usage overflow" `Quick test_via_usage_overflow;
    Alcotest.test_case "blockage reduce" `Quick test_reduce_capacity;
    Alcotest.test_case "density map" `Quick test_density;
    Alcotest.test_case "clone independent" `Quick test_clone_independent;
    Alcotest.test_case "iter edges count" `Quick test_iter_edges_count;
    QCheck_alcotest.to_alcotest via_cap_property;
  ]
