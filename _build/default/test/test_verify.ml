open Cpla_grid
open Cpla_route
open Cpla_timing

let pin px py = { Net.px; py; pl = 0 }

let tiny_design ?(cap = 8) () =
  let tech = Tech.default ~num_layers:4 () in
  let graph = Graph.create ~tech ~width:8 ~height:8 ~layer_capacity:(Array.make 4 cap) in
  let net = Net.create ~id:0 ~name:"n0" ~pins:[| pin 0 0; pin 4 0; pin 2 2 |] in
  let tree =
    Stree.of_edges ~root:(0, 0) [ ((0, 0), (2, 0)); ((2, 0), (4, 0)); ((2, 0), (2, 2)) ]
  in
  Assignment.create ~graph ~nets:[| net |] ~trees:[| Some tree |]

let assign_all asg =
  let tech = Assignment.tech asg in
  Array.iteri
    (fun seg s ->
      Assignment.set_layer asg ~net:0 ~seg
        ~layer:(List.hd (Tech.layers_of_dir tech s.Segment.dir)))
    (Assignment.segments asg 0)

let test_clean_design () =
  let asg = tiny_design () in
  assign_all asg;
  let r = Verify.check asg in
  Alcotest.(check bool) "clean" true (Verify.is_clean r);
  Alcotest.(check int) "wirelength" 6 r.Verify.wirelength;
  Alcotest.(check bool) "vias counted" true (r.Verify.via_crossings > 0)

let test_unassigned_reported () =
  let asg = tiny_design () in
  let r = Verify.check asg in
  let unassigned =
    List.filter (function Verify.Unassigned_segment _ -> true | _ -> false) r.Verify.violations
  in
  Alcotest.(check int) "three unassigned" 3 (List.length unassigned)

let test_edge_overflow_reported () =
  (* capacity 1 and two identical nets on the same layer *)
  let tech = Tech.default ~num_layers:4 () in
  let graph = Graph.create ~tech ~width:8 ~height:8 ~layer_capacity:(Array.make 4 1) in
  let mk id = Net.create ~id ~name:(Printf.sprintf "n%d" id) ~pins:[| pin 0 0; pin 4 0 |] in
  let tree () = Stree.of_edges ~root:(0, 0) [ ((0, 0), (4, 0)) ] in
  let asg =
    Assignment.create ~graph ~nets:[| mk 0; mk 1 |] ~trees:[| Some (tree ()); Some (tree ()) |]
  in
  Assignment.set_layer asg ~net:0 ~seg:0 ~layer:0;
  Assignment.set_layer asg ~net:1 ~seg:0 ~layer:0;
  let r = Verify.check asg in
  Alcotest.(check bool) "not clean" false (Verify.is_clean r);
  Alcotest.(check bool) "edge overflow found" true
    (List.exists (function Verify.Edge_overflow _ -> true | _ -> false) r.Verify.violations)

let test_full_flow_clean_modulo_via () =
  let spec =
    { Synth.default_spec with Synth.width = 24; height = 24; num_nets = 250; seed = 23 }
  in
  let graph, nets = Synth.generate spec in
  let routed = Router.route_all ~graph nets in
  let asg = Assignment.create ~graph ~nets ~trees:routed.Router.trees in
  Init_assign.run asg;
  let released = Critical.select asg ~ratio:0.02 in
  ignore (Cpla.Driver.optimize_released asg ~released);
  let r = Verify.check asg in
  (* no structural violations; via overflow is tolerated (paper allows V_o) *)
  Alcotest.(check bool) "no unassigned" true
    (not
       (List.exists
          (function
            | Verify.Unassigned_segment _ | Verify.Direction_mismatch _
            | Verify.Pin_unreachable _ | Verify.Ledger_mismatch _ ->
                true
            | Verify.Edge_overflow _ | Verify.Via_overflow _ -> false)
          r.Verify.violations));
  Alcotest.(check bool) "summary renders" true (String.length (Verify.summary r) > 0)

let test_pp_violation () =
  let buf = Buffer.create 64 in
  let fmt = Format.formatter_of_buffer buf in
  Verify.pp_violation fmt (Verify.Unassigned_segment { net = 3; seg = 7 });
  Format.pp_print_flush fmt ();
  Alcotest.(check bool) "message mentions ids" true
    (Buffer.contents buf = "net 3: segment 7 unassigned")

(* ---- Delay_greedy -------------------------------------------------------------- *)

let greedy_design () =
  let spec =
    { Synth.default_spec with Synth.width = 24; height = 24; num_nets = 300; seed = 29 }
  in
  let graph, nets = Synth.generate spec in
  let routed = Router.route_all ~graph nets in
  let asg = Assignment.create ~graph ~nets ~trees:routed.Router.trees in
  Init_assign.run asg;
  asg

let test_greedy_improves () =
  let asg = greedy_design () in
  let released = Critical.select asg ~ratio:0.02 in
  let avg0, _ = Critical.avg_max_tcp asg released in
  let stats = Cpla_tila.Delay_greedy.optimize asg ~released in
  let avg1, _ = Critical.avg_max_tcp asg released in
  Alcotest.(check int) "all nets reassigned" (Array.length released)
    stats.Cpla_tila.Delay_greedy.nets_reassigned;
  Alcotest.(check bool) "avg improves" true (avg1 <= avg0 +. 1e-9);
  Alcotest.(check bool) "usage consistent" true (Assignment.check_usage asg = Ok ())

let test_greedy_fully_assigned () =
  let asg = greedy_design () in
  let released = Critical.select asg ~ratio:0.05 in
  ignore (Cpla_tila.Delay_greedy.optimize asg ~released);
  Alcotest.(check bool) "fully assigned" true (Assignment.fully_assigned asg)

let suite =
  [
    Alcotest.test_case "clean design" `Quick test_clean_design;
    Alcotest.test_case "unassigned reported" `Quick test_unassigned_reported;
    Alcotest.test_case "edge overflow reported" `Quick test_edge_overflow_reported;
    Alcotest.test_case "full flow structurally clean" `Slow test_full_flow_clean_modulo_via;
    Alcotest.test_case "violation pretty printing" `Quick test_pp_violation;
    Alcotest.test_case "greedy improves" `Quick test_greedy_improves;
    Alcotest.test_case "greedy fully assigned" `Quick test_greedy_fully_assigned;
  ]
