open Cpla_numeric
open Cpla_ilp

let mk objective rows binary = Model.create ~objective ~rows ~binary

let test_knapsack () =
  (* max 5a+4b+3c s.t. 2a+3b+c <= 5, binary => a=1,c=1 (b=1 too? 2+3+1=6>5;
     a+c = 3 weight, value 8; a+b = 5 weight, value 9 <- optimum) *)
  let m =
    mk [| -5.0; -4.0; -3.0 |]
      [ ([| 2.0; 3.0; 1.0 |], Simplex.Le, 5.0) ]
      [| true; true; true |]
  in
  match Solver.solve m with
  | Some o ->
      Alcotest.(check (float 1e-6)) "objective" (-9.0) o.Solver.objective;
      Alcotest.(check bool) "optimal" true o.Solver.proven_optimal
  | None -> Alcotest.fail "expected a solution"

let test_assignment_problem () =
  (* 2 items, 2 slots, costs: c(0,0)=1 c(0,1)=5 c(1,0)=4 c(1,1)=2;
     each item exactly one slot, each slot at most one item. *)
  let m =
    mk
      [| 1.0; 5.0; 4.0; 2.0 |]
      [
        ([| 1.0; 1.0; 0.0; 0.0 |], Simplex.Eq, 1.0);
        ([| 0.0; 0.0; 1.0; 1.0 |], Simplex.Eq, 1.0);
        ([| 1.0; 0.0; 1.0; 0.0 |], Simplex.Le, 1.0);
        ([| 0.0; 1.0; 0.0; 1.0 |], Simplex.Le, 1.0);
      ]
      [| true; true; true; true |]
  in
  match Solver.solve m with
  | Some o ->
      Alcotest.(check (float 1e-6)) "objective" 3.0 o.Solver.objective;
      Alcotest.(check (float 1e-6)) "x00" 1.0 o.Solver.x.(0);
      Alcotest.(check (float 1e-6)) "x11" 1.0 o.Solver.x.(3)
  | None -> Alcotest.fail "expected a solution"

let test_infeasible () =
  let m =
    mk [| 1.0 |]
      [ ([| 1.0 |], Simplex.Ge, 2.0) ]
      [| true |]
  in
  Alcotest.(check bool) "no solution" true (Solver.solve m = None)

let test_mixed_continuous () =
  (* min x + 10 v  s.t. x + v >= 1.5, x binary, v continuous >= 0.
     x=1 leaves v=0.5 -> 6; x=0 needs v=1.5 -> 15.  Optimum 6. *)
  let m =
    mk [| 1.0; 10.0 |]
      [ ([| 1.0; 1.0 |], Simplex.Ge, 1.5) ]
      [| true; false |]
  in
  match Solver.solve m with
  | Some o ->
      Alcotest.(check (float 1e-6)) "objective" 6.0 o.Solver.objective;
      Alcotest.(check (float 1e-6)) "x binary 1" 1.0 o.Solver.x.(0)
  | None -> Alcotest.fail "expected a solution"

let test_relaxation_bound () =
  (* LP bound must never exceed ILP optimum (minimisation). *)
  let m =
    mk [| -3.0; -2.0 |]
      [ ([| 2.0; 1.0 |], Simplex.Le, 2.0) ]
      [| true; true |]
  in
  let lp = Model.relaxation m in
  match (Simplex.solve lp, Solver.solve m) with
  | Simplex.Optimal lp_sol, Some ilp ->
      Alcotest.(check bool) "lp <= ilp" true
        (lp_sol.Simplex.objective <= ilp.Solver.objective +. 1e-9)
  | _ -> Alcotest.fail "expected both optimal"

(* Brute force reference for random small 0/1 ILPs. *)
let brute_force (m : Model.t) =
  let n = Model.num_vars m in
  let best = ref None in
  for mask = 0 to (1 lsl n) - 1 do
    let x = Array.init n (fun i -> if mask land (1 lsl i) <> 0 then 1.0 else 0.0) in
    if Model.check m x then begin
      let obj = Model.value m x in
      match !best with
      | Some (b, _) when b <= obj -> ()
      | _ -> best := Some (obj, x)
    end
  done;
  !best

let test_vs_brute_force =
  QCheck.Test.make ~name:"branch and bound matches brute force" ~count:60
    QCheck.(
      pair
        (array_of_size (QCheck.Gen.return 5) (float_range (-4.0) 4.0))
        (array_of_size (QCheck.Gen.return 5) (float_range 0.0 3.0)))
    (fun (costs, weights) ->
      let budget = Array.fold_left ( +. ) 0.0 weights /. 2.0 in
      let m =
        mk costs
          [ (Array.copy weights, Simplex.Le, budget) ]
          (Array.make 5 true)
      in
      let bb = Solver.solve m in
      let bf = brute_force m in
      match (bb, bf) with
      | None, None -> true
      | Some o, Some (obj, _) -> Float.abs (o.Solver.objective -. obj) < 1e-6
      | Some _, None | None, Some _ -> false)

let suite =
  [
    Alcotest.test_case "knapsack" `Quick test_knapsack;
    Alcotest.test_case "assignment problem" `Quick test_assignment_problem;
    Alcotest.test_case "infeasible" `Quick test_infeasible;
    Alcotest.test_case "mixed continuous" `Quick test_mixed_continuous;
    Alcotest.test_case "relaxation is a lower bound" `Quick test_relaxation_bound;
    QCheck_alcotest.to_alcotest test_vs_brute_force;
  ]
