open Cpla_grid
open Cpla_route

let pin px py = { Net.px; py; pl = 0 }

let mk_graph ?(w = 16) ?(h = 16) ?(layers = 4) ?(cap = 8) () =
  let tech = Tech.default ~num_layers:layers () in
  Graph.create ~tech ~width:w ~height:h ~layer_capacity:(Array.make layers cap)

(* ---- Net ----------------------------------------------------------------- *)

let test_net_basics () =
  let n = Net.create ~id:0 ~name:"n0" ~pins:[| pin 0 0; pin 3 4; pin 1 1 |] in
  Alcotest.(check int) "hpwl" 7 (Net.hpwl n);
  Alcotest.(check int) "pins" 3 (Net.num_pins n);
  Alcotest.(check bool) "source" true (Net.source n = pin 0 0);
  Alcotest.(check int) "sinks" 2 (Array.length (Net.sinks n))

let test_net_dedup () =
  let pins = [| pin 0 0; pin 0 0; pin 1 1 |] in
  Alcotest.(check int) "deduped" 2 (Array.length (Net.dedup_pins pins))

let test_net_too_few () =
  Alcotest.(check bool) "needs 2 pins" true
    (match Net.create ~id:0 ~name:"x" ~pins:[| pin 0 0 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---- Stree ---------------------------------------------------------------- *)

let test_stree_of_edges () =
  let t = Stree.of_edges ~root:(0, 0) [ ((0, 0), (3, 0)); ((3, 0), (3, 2)) ] in
  Alcotest.(check int) "nodes" 3 (Stree.num_nodes t);
  Alcotest.(check int) "wirelength" 5 (Stree.total_wirelength t);
  Alcotest.(check bool) "valid" true (Stree.validate t = Ok ())

let test_stree_rejects_diagonal () =
  Alcotest.(check bool) "diagonal" true
    (match Stree.of_edges ~root:(0, 0) [ ((0, 0), (1, 1)) ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_stree_rejects_cycle () =
  let edges = [ ((0, 0), (1, 0)); ((1, 0), (1, 1)); ((1, 1), (0, 1)); ((0, 1), (0, 0)) ] in
  Alcotest.(check bool) "cycle" true
    (match Stree.of_edges ~root:(0, 0) edges with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_stree_rejects_disconnected () =
  let edges = [ ((0, 0), (1, 0)); ((5, 5), (6, 5)) ] in
  Alcotest.(check bool) "disconnected" true
    (match Stree.of_edges ~root:(0, 0) edges with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_stree_compress () =
  (* chain of unit edges along x then a turn: compress to 2 segments *)
  let edges = [ ((0, 0), (1, 0)); ((1, 0), (2, 0)); ((2, 0), (2, 1)); ((2, 1), (2, 2)) ] in
  let t = Stree.of_edges ~root:(0, 0) edges in
  let c = Stree.compress ~keep:[ (0, 0); (2, 2) ] t in
  Alcotest.(check int) "compressed nodes" 3 (Stree.num_nodes c);
  Alcotest.(check int) "same wirelength" (Stree.total_wirelength t) (Stree.total_wirelength c);
  Alcotest.(check bool) "still valid" true (Stree.validate c = Ok ())

let test_stree_compress_keeps_pins () =
  let edges = [ ((0, 0), (1, 0)); ((1, 0), (2, 0)) ] in
  let t = Stree.of_edges ~root:(0, 0) edges in
  let c = Stree.compress ~keep:[ (1, 0) ] t in
  Alcotest.(check bool) "pin node kept" true (Stree.find_node c (1, 0) <> None)

let test_stree_path_to_root () =
  let t = Stree.of_edges ~root:(0, 0) [ ((0, 0), (2, 0)); ((2, 0), (2, 3)) ] in
  let leaf = match Stree.find_node t (2, 3) with Some i -> i | None -> Alcotest.fail "leaf" in
  let path = Stree.path_to_root t leaf in
  Alcotest.(check int) "path length" 3 (List.length path);
  Alcotest.(check bool) "ends at root" true (List.nth path 2 = t.Stree.root)

let test_stree_contains_point () =
  let t = Stree.of_edges ~root:(0, 0) [ ((0, 0), (4, 0)) ] in
  Alcotest.(check bool) "interior point" true (Stree.contains_point t (2, 0));
  Alcotest.(check bool) "off tree" false (Stree.contains_point t (2, 1))

(* ---- Segment ---------------------------------------------------------------- *)

let test_segment_extract () =
  let t = Stree.of_edges ~root:(0, 0) [ ((0, 0), (3, 0)); ((3, 0), (3, 2)) ] in
  let segs, node_to_seg = Segment.extract ~net_id:7 t in
  Alcotest.(check int) "two segments" 2 (Array.length segs);
  Alcotest.(check int) "root has no segment" (-1) node_to_seg.(t.Stree.root);
  let total_len = Array.fold_left (fun a s -> a + s.Segment.len) 0 segs in
  Alcotest.(check int) "lengths cover tree" 5 total_len;
  Array.iter
    (fun s ->
      Alcotest.(check int) "edges match len" s.Segment.len (Array.length s.Segment.edges);
      Alcotest.(check int) "net id" 7 s.Segment.net_id)
    segs

let test_segment_direction () =
  let t = Stree.of_edges ~root:(0, 0) [ ((0, 0), (3, 0)) ] in
  let segs, _ = Segment.extract ~net_id:0 t in
  Alcotest.(check bool) "horizontal" true (segs.(0).Segment.dir = Tech.Horizontal)

(* ---- Maze ---------------------------------------------------------------- *)

let test_maze_straight () =
  let cost _ = 1.0 in
  match Maze.route ~width:8 ~height:8 ~cost ~sources:[ (0, 0) ] ~targets:[ (5, 0) ] with
  | Some path ->
      Alcotest.(check int) "path tiles" 6 (List.length path);
      Alcotest.(check bool) "starts at source" true (List.hd path = (0, 0))
  | None -> Alcotest.fail "expected path"

let test_maze_detour () =
  (* wall of infinite cost along x=2 except y=7 *)
  let cost (e : Graph.edge2d) =
    if e.Graph.dir = Tech.Horizontal && e.Graph.x = 2 && e.Graph.y < 7 then infinity else 1.0
  in
  match Maze.route ~width:8 ~height:8 ~cost ~sources:[ (0, 0) ] ~targets:[ (6, 0) ] with
  | Some path ->
      Alcotest.(check bool) "detours via y=7" true (List.exists (fun (_, y) -> y = 7) path)
  | None -> Alcotest.fail "expected detour path"

let test_maze_blocked () =
  let cost (e : Graph.edge2d) =
    if e.Graph.dir = Tech.Horizontal && e.Graph.x = 2 then infinity else 1.0
  in
  (* also block vertical moves: make everything right of x=2 unreachable *)
  let cost (e : Graph.edge2d) = if e.Graph.x > 2 then infinity else cost e in
  Alcotest.(check bool) "unreachable" true
    (Maze.route ~width:8 ~height:8 ~cost ~sources:[ (0, 0) ] ~targets:[ (7, 7) ] = None)

let test_maze_degenerate () =
  match Maze.route ~width:4 ~height:4 ~cost:(fun _ -> 1.0) ~sources:[ (1, 1) ] ~targets:[ (1, 1) ] with
  | Some [ (1, 1) ] -> ()
  | _ -> Alcotest.fail "expected singleton path"

(* ---- Router ---------------------------------------------------------------- *)

let mk_nets specs =
  Array.of_list
    (List.mapi
       (fun i pins -> Net.create ~id:i ~name:(Printf.sprintf "n%d" i) ~pins:(Array.of_list pins))
       specs)

let check_tree_covers_pins net tree =
  Array.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "pin (%d,%d) on tree" p.Net.px p.Net.py)
        true
        (Stree.find_node tree (p.Net.px, p.Net.py) <> None))
    net.Net.pins

let test_router_two_pin () =
  let g = mk_graph () in
  let nets = mk_nets [ [ pin 1 1; pin 9 6 ] ] in
  let r = Router.route_all ~graph:g nets in
  match r.Router.trees.(0) with
  | Some tree ->
      check_tree_covers_pins nets.(0) tree;
      Alcotest.(check bool) "valid" true (Stree.validate tree = Ok ());
      Alcotest.(check int) "wirelength = hpwl for 2-pin L" (Net.hpwl nets.(0))
        (Stree.total_wirelength tree)
  | None -> Alcotest.fail "expected tree"

let test_router_multi_pin () =
  let g = mk_graph () in
  let nets = mk_nets [ [ pin 2 2; pin 12 3; pin 5 11; pin 9 9 ] ] in
  let r = Router.route_all ~graph:g nets in
  match r.Router.trees.(0) with
  | Some tree ->
      check_tree_covers_pins nets.(0) tree;
      Alcotest.(check bool) "valid" true (Stree.validate tree = Ok ())
  | None -> Alcotest.fail "expected tree"

let test_router_single_tile_net () =
  let g = mk_graph () in
  let nets = mk_nets [ [ pin 3 3; pin 3 3 ] ] in
  let r = Router.route_all ~graph:g nets in
  Alcotest.(check bool) "no tree" true (r.Router.trees.(0) = None)

let test_router_many_nets_low_overflow () =
  let g = mk_graph ~w:24 ~h:24 ~cap:8 () in
  let graph_spec =
    { Synth.default_spec with Synth.width = 24; height = 24; num_nets = 300; seed = 3 }
  in
  let _, nets = Synth.generate graph_spec in
  let r = Router.route_all ~graph:g nets in
  Array.iteri
    (fun i tree_opt ->
      match tree_opt with
      | Some tree -> check_tree_covers_pins nets.(i) tree
      | None -> ())
    r.Router.trees;
  Alcotest.(check bool) "overflow small" true (r.Router.overflow_2d < 20)

(* ---- Synth ---------------------------------------------------------------- *)

let test_synth_deterministic () =
  let g1, n1 = Synth.generate Synth.default_spec in
  let _, n2 = Synth.generate Synth.default_spec in
  Alcotest.(check int) "same net count" (Array.length n1) (Array.length n2);
  Array.iteri
    (fun i a -> Alcotest.(check bool) "same pins" true (a.Net.pins = n2.(i).Net.pins))
    n1;
  Alcotest.(check int) "grid width" Synth.default_spec.Synth.width (Graph.width g1)

let test_synth_spec_respected () =
  let spec = { Synth.default_spec with Synth.num_nets = 123; seed = 9 } in
  let _, nets = Synth.generate spec in
  Alcotest.(check int) "net count" 123 (Array.length nets);
  Array.iter
    (fun n ->
      Alcotest.(check bool) "pins in grid" true
        (Array.for_all
           (fun p ->
             p.Net.px >= 0 && p.Net.px < spec.Synth.width && p.Net.py >= 0
             && p.Net.py < spec.Synth.height)
           n.Net.pins))
    nets

(* ---- Ispd08 ---------------------------------------------------------------- *)

let sample_gr =
  "grid 4 4 2\n\
   vertical capacity 0 10\n\
   horizontal capacity 10 0\n\
   minimum width 1 1\n\
   minimum spacing 1 1\n\
   via spacing 1 1\n\
   0 0 10 10\n\
   num net 2\n\
   netA 0 2 1\n\
   5 5 1\n\
   35 25 1\n\
   netB 1 3 1\n\
   5 35 1\n\
   25 35 1\n\
   25 5 1\n\
   1\n\
   0 0 1 1 0 1 4\n"

let test_ispd_parse () =
  match Ispd08.parse sample_gr with
  | Error e -> Alcotest.fail e
  | Ok d ->
      Alcotest.(check int) "grid x" 4 d.Ispd08.header.Ispd08.grid_x;
      Alcotest.(check int) "nets" 2 (Array.length d.Ispd08.nets);
      let netA = d.Ispd08.nets.(0) in
      Alcotest.(check bool) "pin tile" true (netA.Net.pins.(0) = pin 0 0);
      Alcotest.(check bool) "pin tile 2" true (netA.Net.pins.(1) = pin 3 2);
      Alcotest.(check int) "adjustments" 1 (List.length d.Ispd08.adjustments)

let test_ispd_roundtrip () =
  match Ispd08.parse sample_gr with
  | Error e -> Alcotest.fail e
  | Ok d -> (
      let s = Ispd08.write d in
      match Ispd08.parse s with
      | Error e -> Alcotest.fail e
      | Ok d2 ->
          Alcotest.(check int) "same nets" (Array.length d.Ispd08.nets)
            (Array.length d2.Ispd08.nets);
          Array.iteri
            (fun i n ->
              Alcotest.(check bool) "same pins" true (n.Net.pins = d2.Ispd08.nets.(i).Net.pins))
            d.Ispd08.nets)

let test_ispd_to_graph () =
  match Ispd08.parse sample_gr with
  | Error e -> Alcotest.fail e
  | Ok d ->
      let g = Ispd08.to_graph d in
      Alcotest.(check int) "width" 4 (Graph.width g);
      (* layer 0 horizontal cap 10, layer 1 vertical cap 10 *)
      Alcotest.(check int) "h cap" 10
        (Graph.capacity g { Graph.dir = Tech.Horizontal; x = 1; y = 1 } ~layer:0);
      (* adjustment dropped capacity of edge (0,0)-(1,0) layer 1(file)=0 to 4 *)
      Alcotest.(check int) "adjusted edge" 4
        (Graph.capacity g { Graph.dir = Tech.Horizontal; x = 0; y = 0 } ~layer:0)

let test_ispd_parse_error () =
  Alcotest.(check bool) "garbage rejected" true
    (match Ispd08.parse "this is not a benchmark" with Error _ -> true | Ok _ -> false)

let suite =
  [
    Alcotest.test_case "net basics" `Quick test_net_basics;
    Alcotest.test_case "net dedup" `Quick test_net_dedup;
    Alcotest.test_case "net needs two pins" `Quick test_net_too_few;
    Alcotest.test_case "stree of_edges" `Quick test_stree_of_edges;
    Alcotest.test_case "stree rejects diagonal" `Quick test_stree_rejects_diagonal;
    Alcotest.test_case "stree rejects cycle" `Quick test_stree_rejects_cycle;
    Alcotest.test_case "stree rejects disconnected" `Quick test_stree_rejects_disconnected;
    Alcotest.test_case "stree compress" `Quick test_stree_compress;
    Alcotest.test_case "stree compress keeps pins" `Quick test_stree_compress_keeps_pins;
    Alcotest.test_case "stree path to root" `Quick test_stree_path_to_root;
    Alcotest.test_case "stree contains point" `Quick test_stree_contains_point;
    Alcotest.test_case "segment extract" `Quick test_segment_extract;
    Alcotest.test_case "segment direction" `Quick test_segment_direction;
    Alcotest.test_case "maze straight" `Quick test_maze_straight;
    Alcotest.test_case "maze detour" `Quick test_maze_detour;
    Alcotest.test_case "maze blocked" `Quick test_maze_blocked;
    Alcotest.test_case "maze degenerate" `Quick test_maze_degenerate;
    Alcotest.test_case "router two-pin" `Quick test_router_two_pin;
    Alcotest.test_case "router multi-pin" `Quick test_router_multi_pin;
    Alcotest.test_case "router single-tile net" `Quick test_router_single_tile_net;
    Alcotest.test_case "router 300 nets" `Quick test_router_many_nets_low_overflow;
    Alcotest.test_case "synth deterministic" `Quick test_synth_deterministic;
    Alcotest.test_case "synth spec respected" `Quick test_synth_spec_respected;
    Alcotest.test_case "ispd parse" `Quick test_ispd_parse;
    Alcotest.test_case "ispd roundtrip" `Quick test_ispd_roundtrip;
    Alcotest.test_case "ispd to graph" `Quick test_ispd_to_graph;
    Alcotest.test_case "ispd parse error" `Quick test_ispd_parse_error;
  ]
