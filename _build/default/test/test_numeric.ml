open Cpla_numeric

let check_float = Alcotest.(check (float 1e-6))

(* ---- Vec ---------------------------------------------------------------- *)

let test_vec_dot () =
  check_float "dot" 32.0 (Vec.dot [| 1.0; 2.0; 3.0 |] [| 4.0; 5.0; 6.0 |]);
  Alcotest.check_raises "mismatch" (Invalid_argument "Vec.dot: length mismatch") (fun () ->
      ignore (Vec.dot [| 1.0 |] [| 1.0; 2.0 |]))

let test_vec_axpy () =
  let y = [| 1.0; 1.0 |] in
  Vec.axpy ~alpha:2.0 [| 3.0; 4.0 |] y;
  check_float "axpy0" 7.0 y.(0);
  check_float "axpy1" 9.0 y.(1)

let test_vec_norms () =
  check_float "norm2" 5.0 (Vec.norm2 [| 3.0; 4.0 |]);
  check_float "norm_inf" 4.0 (Vec.norm_inf [| 3.0; -4.0 |])

(* ---- Mat ---------------------------------------------------------------- *)

let test_mat_mul () =
  let a = Mat.init 2 3 (fun i j -> float_of_int ((i * 3) + j + 1)) in
  let b = Mat.init 3 2 (fun i j -> float_of_int ((i * 2) + j + 1)) in
  let c = Mat.mul a b in
  check_float "c00" 22.0 (Mat.get c 0 0);
  check_float "c01" 28.0 (Mat.get c 0 1);
  check_float "c10" 49.0 (Mat.get c 1 0);
  check_float "c11" 64.0 (Mat.get c 1 1)

let test_mat_identity_mul () =
  let a = Mat.init 4 4 (fun i j -> float_of_int (i - j)) in
  let c = Mat.mul a (Mat.identity 4) in
  Alcotest.(check bool) "a·I = a" true
    (Array.for_all2 (fun r1 r2 -> r1 = r2) a.Mat.data c.Mat.data)

let test_mat_transpose_vec () =
  let a = Mat.init 2 3 (fun i j -> float_of_int ((i * 3) + j)) in
  let x = [| 1.0; 2.0 |] in
  let y = Mat.mul_tvec a x in
  let at = Mat.transpose a in
  let y' = Mat.mul_vec at x in
  Alcotest.(check bool) "aᵀx agreement" true (y = y')

let test_mat_symmetrize () =
  let a = Mat.init 3 3 (fun i j -> float_of_int ((i * 3) + j)) in
  Mat.symmetrize a;
  Alcotest.(check bool) "symmetric" true (Mat.is_symmetric a)

(* ---- Cholesky ------------------------------------------------------------ *)

let random_psd rng n =
  let b = Mat.init n n (fun _ _ -> Cpla_util.Rng.gaussian rng) in
  let bt = Mat.transpose b in
  let a = Mat.mul b bt in
  (* add n·I to be safely positive definite *)
  Mat.init n n (fun i j -> Mat.get a i j +. if i = j then float_of_int n else 0.0)

let test_cholesky_roundtrip () =
  let rng = Cpla_util.Rng.create 3 in
  for n = 1 to 8 do
    let a = random_psd rng n in
    let l = Cholesky.factor a in
    let llt = Mat.mul l (Mat.transpose l) in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        Alcotest.(check (float 1e-8))
          (Printf.sprintf "llt(%d,%d)" i j)
          (Mat.get a i j) (Mat.get llt i j)
      done
    done
  done

let test_cholesky_solve () =
  let rng = Cpla_util.Rng.create 5 in
  let a = random_psd rng 6 in
  let x_true = Array.init 6 (fun i -> float_of_int i -. 2.5) in
  let b = Mat.mul_vec a x_true in
  let x = Cholesky.solve a b in
  Array.iteri (fun i v -> Alcotest.(check (float 1e-7)) "solve" x_true.(i) v) x

let test_cholesky_not_pd () =
  let a = Mat.init 2 2 (fun i j -> if i = j then -1.0 else 0.0) in
  Alcotest.(check bool) "not psd" false (Cholesky.is_psd a);
  Alcotest.(check bool) "raise" true
    (match Cholesky.factor a with
    | exception Cholesky.Not_positive_definite _ -> true
    | _ -> false)

let test_is_psd_boundary () =
  (* rank-deficient PSD matrix passes is_psd thanks to the shift *)
  let a = Mat.init 2 2 (fun _ _ -> 1.0) in
  Alcotest.(check bool) "rank-1 psd" true (Cholesky.is_psd a)

(* ---- Eigen ---------------------------------------------------------------- *)

let test_eigen_diag () =
  let a = Mat.init 3 3 (fun i j -> if i = j then float_of_int (3 - i) else 0.0) in
  let w, _ = Eigen.decompose a in
  check_float "w0" 1.0 w.(0);
  check_float "w1" 2.0 w.(1);
  check_float "w2" 3.0 w.(2)

let test_eigen_reconstruct () =
  let rng = Cpla_util.Rng.create 11 in
  let a = random_psd rng 6 in
  let w, v = Eigen.decompose a in
  (* a = v diag(w) vᵀ *)
  let n = 6 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0.0 in
      for k = 0 to n - 1 do
        acc := !acc +. (Mat.get v i k *. w.(k) *. Mat.get v j k)
      done;
      Alcotest.(check (float 1e-6)) "reconstruct" (Mat.get a i j) !acc
    done
  done

let test_eigen_orthonormal () =
  let rng = Cpla_util.Rng.create 13 in
  let a = random_psd rng 5 in
  let _, v = Eigen.decompose a in
  let vtv = Mat.mul (Mat.transpose v) v in
  for i = 0 to 4 do
    for j = 0 to 4 do
      Alcotest.(check (float 1e-8)) "vᵀv = I"
        (if i = j then 1.0 else 0.0)
        (Mat.get vtv i j)
    done
  done

let test_project_psd () =
  let a = Mat.init 2 2 (fun i j -> if i = j then -1.0 else 0.0) in
  let p = Eigen.project_psd a in
  Alcotest.(check bool) "projected is psd" true (Cholesky.is_psd p);
  check_float "clipped to zero" 0.0 (Mat.get p 0 0)

let test_min_eigenvalue () =
  let a = Mat.init 2 2 (fun i j -> if i = j then 2.0 else 1.0) in
  check_float "min eig" 1.0 (Eigen.min_eigenvalue a)

(* ---- L-BFGS --------------------------------------------------------------- *)

let test_lbfgs_quadratic () =
  (* minimise (x-3)² + 2(y+1)² *)
  let f v =
    let x = v.(0) and y = v.(1) in
    let fv = ((x -. 3.0) ** 2.0) +. (2.0 *. ((y +. 1.0) ** 2.0)) in
    (fv, [| 2.0 *. (x -. 3.0); 4.0 *. (y +. 1.0) |])
  in
  let res = Lbfgs.minimize ~f [| 0.0; 0.0 |] in
  Alcotest.(check bool) "converged" true res.Lbfgs.converged;
  Alcotest.(check (float 1e-4)) "x" 3.0 res.Lbfgs.x.(0);
  Alcotest.(check (float 1e-4)) "y" (-1.0) res.Lbfgs.x.(1)

let test_lbfgs_rosenbrock () =
  let f v =
    let x = v.(0) and y = v.(1) in
    let fv = (100.0 *. ((y -. (x *. x)) ** 2.0)) +. ((1.0 -. x) ** 2.0) in
    let gx = (-400.0 *. x *. (y -. (x *. x))) -. (2.0 *. (1.0 -. x)) in
    let gy = 200.0 *. (y -. (x *. x)) in
    (fv, [| gx; gy |])
  in
  let res = Lbfgs.minimize ~max_iter:2000 ~f [| -1.2; 1.0 |] in
  Alcotest.(check (float 1e-3)) "rosenbrock x" 1.0 res.Lbfgs.x.(0);
  Alcotest.(check (float 1e-3)) "rosenbrock y" 1.0 res.Lbfgs.x.(1)

(* ---- Simplex --------------------------------------------------------------- *)

let lp objective rows = { Simplex.objective; rows = Array.of_list rows }

let test_simplex_basic () =
  (* max x+y s.t. x+2y<=4, 3x+y<=6  => min -(x+y); optimum at (1.6,1.2) = 2.8 *)
  let p =
    lp [| -1.0; -1.0 |]
      [ ([| 1.0; 2.0 |], Simplex.Le, 4.0); ([| 3.0; 1.0 |], Simplex.Le, 6.0) ]
  in
  match Simplex.solve p with
  | Simplex.Optimal sol ->
      Alcotest.(check (float 1e-7)) "objective" (-2.8) sol.Simplex.objective;
      Alcotest.(check (float 1e-7)) "x" 1.6 sol.Simplex.x.(0);
      Alcotest.(check (float 1e-7)) "y" 1.2 sol.Simplex.x.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_equality () =
  (* min x+y s.t. x+y = 2, x<=1.5  => any point on segment; objective 2 *)
  let p =
    lp [| 1.0; 1.0 |]
      [ ([| 1.0; 1.0 |], Simplex.Eq, 2.0); ([| 1.0; 0.0 |], Simplex.Le, 1.5) ]
  in
  match Simplex.solve p with
  | Simplex.Optimal sol -> Alcotest.(check (float 1e-7)) "objective" 2.0 sol.Simplex.objective
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_ge () =
  (* min 2x+3y s.t. x+y >= 4, x >= 1 => optimum (4,0) = 8 *)
  let p =
    lp [| 2.0; 3.0 |]
      [ ([| 1.0; 1.0 |], Simplex.Ge, 4.0); ([| 1.0; 0.0 |], Simplex.Ge, 1.0) ]
  in
  match Simplex.solve p with
  | Simplex.Optimal sol ->
      Alcotest.(check (float 1e-7)) "objective" 8.0 sol.Simplex.objective;
      Alcotest.(check (float 1e-7)) "x" 4.0 sol.Simplex.x.(0)
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_infeasible () =
  let p =
    lp [| 1.0 |] [ ([| 1.0 |], Simplex.Ge, 5.0); ([| 1.0 |], Simplex.Le, 1.0) ]
  in
  match Simplex.solve p with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_simplex_unbounded () =
  let p = lp [| -1.0 |] [ ([| -1.0 |], Simplex.Le, 0.0) ] in
  match Simplex.solve p with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_simplex_negative_rhs () =
  (* min x s.t. -x <= -3 (i.e. x >= 3) *)
  let p = lp [| 1.0 |] [ ([| -1.0 |], Simplex.Le, -3.0) ] in
  match Simplex.solve p with
  | Simplex.Optimal sol -> Alcotest.(check (float 1e-7)) "x" 3.0 sol.Simplex.x.(0)
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_feasible_check () =
  let p =
    lp [| 1.0; 1.0 |] [ ([| 1.0; 1.0 |], Simplex.Le, 2.0) ]
  in
  Alcotest.(check bool) "inside" true (Simplex.feasible p [| 0.5; 0.5 |]);
  Alcotest.(check bool) "outside" false (Simplex.feasible p [| 2.0; 1.0 |]);
  Alcotest.(check bool) "negative" false (Simplex.feasible p [| -1.0; 0.0 |])

(* Property: simplex optimum matches brute-force vertex enumeration on small
   random 2-variable LPs with box + one coupling constraint. *)
let test_simplex_vs_grid =
  QCheck.Test.make ~name:"simplex beats any grid point" ~count:100
    QCheck.(
      quad (float_range (-5.0) 5.0) (float_range (-5.0) 5.0) (float_range 1.0 8.0)
        (float_range 1.0 8.0))
    (fun (c0, c1, b0, b1) ->
      let p =
        lp [| c0; c1 |]
          [
            ([| 1.0; 0.0 |], Simplex.Le, b0);
            ([| 0.0; 1.0 |], Simplex.Le, b1);
            ([| 1.0; 1.0 |], Simplex.Le, Float.max b0 b1);
          ]
      in
      match Simplex.solve p with
      | Simplex.Optimal sol ->
          (* sample a grid of feasible points; none may beat the optimum *)
          let beaten = ref false in
          for i = 0 to 20 do
            for j = 0 to 20 do
              let x = float_of_int i /. 20.0 *. b0 and y = float_of_int j /. 20.0 *. b1 in
              if x +. y <= Float.max b0 b1 +. 1e-9 then begin
                let v = (c0 *. x) +. (c1 *. y) in
                if v < sol.Simplex.objective -. 1e-6 then beaten := true
              end
            done
          done;
          (not !beaten) && Simplex.feasible p sol.Simplex.x
      | _ -> false)

let suite =
  [
    Alcotest.test_case "vec dot" `Quick test_vec_dot;
    Alcotest.test_case "vec axpy" `Quick test_vec_axpy;
    Alcotest.test_case "vec norms" `Quick test_vec_norms;
    Alcotest.test_case "mat mul" `Quick test_mat_mul;
    Alcotest.test_case "mat identity" `Quick test_mat_identity_mul;
    Alcotest.test_case "mat transpose/vec" `Quick test_mat_transpose_vec;
    Alcotest.test_case "mat symmetrize" `Quick test_mat_symmetrize;
    Alcotest.test_case "cholesky roundtrip" `Quick test_cholesky_roundtrip;
    Alcotest.test_case "cholesky solve" `Quick test_cholesky_solve;
    Alcotest.test_case "cholesky rejects indefinite" `Quick test_cholesky_not_pd;
    Alcotest.test_case "is_psd boundary" `Quick test_is_psd_boundary;
    Alcotest.test_case "eigen diagonal" `Quick test_eigen_diag;
    Alcotest.test_case "eigen reconstruct" `Quick test_eigen_reconstruct;
    Alcotest.test_case "eigen orthonormal" `Quick test_eigen_orthonormal;
    Alcotest.test_case "project psd" `Quick test_project_psd;
    Alcotest.test_case "min eigenvalue" `Quick test_min_eigenvalue;
    Alcotest.test_case "lbfgs quadratic" `Quick test_lbfgs_quadratic;
    Alcotest.test_case "lbfgs rosenbrock" `Quick test_lbfgs_rosenbrock;
    Alcotest.test_case "simplex basic" `Quick test_simplex_basic;
    Alcotest.test_case "simplex equality" `Quick test_simplex_equality;
    Alcotest.test_case "simplex ge" `Quick test_simplex_ge;
    Alcotest.test_case "simplex infeasible" `Quick test_simplex_infeasible;
    Alcotest.test_case "simplex unbounded" `Quick test_simplex_unbounded;
    Alcotest.test_case "simplex negative rhs" `Quick test_simplex_negative_rhs;
    Alcotest.test_case "simplex feasibility check" `Quick test_simplex_feasible_check;
    QCheck_alcotest.to_alcotest test_simplex_vs_grid;
  ]
