open Cpla_route

let test_mst_basic () =
  Alcotest.(check int) "empty" 0 (Steiner.mst_length []);
  Alcotest.(check int) "single" 0 (Steiner.mst_length [ (3, 3) ]);
  Alcotest.(check int) "pair" 7 (Steiner.mst_length [ (0, 0); (3, 4) ]);
  Alcotest.(check int) "line" 10 (Steiner.mst_length [ (0, 0); (5, 0); (10, 0) ])

let test_three_corner_steiner () =
  (* pins at (0,0), (4,0), (2,3): MST = 4 + 5 = 9; the Steiner point (2,0)
     gives 4 + 3 = 7 *)
  let pins = [ (0, 0); (4, 0); (2, 3) ] in
  Alcotest.(check int) "mst" 9 (Steiner.mst_length pins);
  let refined = Steiner.refined_mst_length pins in
  Alcotest.(check int) "steiner tree" 7 refined

let test_refine_returns_no_pins () =
  let pins = [ (0, 0); (4, 0); (2, 3); (2, 0) ] in
  let extra = Steiner.refine pins in
  List.iter
    (fun p -> Alcotest.(check bool) "not a pin" false (List.mem p pins))
    extra

let test_refine_small_sets_empty () =
  Alcotest.(check (list (pair int int))) "two pins" [] (Steiner.refine [ (0, 0); (5, 5) ]);
  Alcotest.(check (list (pair int int))) "one pin" [] (Steiner.refine [ (1, 1) ])

let refine_never_hurts =
  QCheck.Test.make ~name:"steiner refinement never lengthens the tree" ~count:60
    QCheck.(list_of_size (QCheck.Gen.int_range 3 9) (pair (int_bound 15) (int_bound 15)))
    (fun pins ->
      let pins = List.sort_uniq compare pins in
      List.length pins < 2
      || Steiner.refined_mst_length pins <= Steiner.mst_length pins)

let refine_lower_bounded_by_hpwl =
  QCheck.Test.make ~name:"steiner tree is at least half the bounding perimeter" ~count:60
    QCheck.(list_of_size (QCheck.Gen.int_range 2 8) (pair (int_bound 15) (int_bound 15)))
    (fun pins ->
      let pins = List.sort_uniq compare pins in
      if List.length pins < 2 then true
      else begin
        let xs = List.map fst pins and ys = List.map snd pins in
        let span l = List.fold_left max min_int l - List.fold_left min max_int l in
        Steiner.refined_mst_length pins >= span xs + span ys - (span xs + span ys) / 2
        (* weak but valid bound: RSMT >= max(span_x, span_y) >= hpwl/2 *)
        && Steiner.refined_mst_length pins >= max (span xs) (span ys)
      end)

let test_router_with_steiner_improves_wl () =
  let spec =
    { Synth.default_spec with Synth.width = 24; height = 24; num_nets = 150; seed = 31;
      mean_extra_pins = 3.0 }
  in
  let total_wl trees =
    Array.fold_left
      (fun acc t -> match t with Some tr -> acc + Stree.total_wirelength tr | None -> acc)
      0 trees
  in
  let graph1, nets = Synth.generate spec in
  let plain = Router.route_all ~graph:graph1 nets in
  let graph2, nets2 = Synth.generate spec in
  let refined = Router.route_all ~steiner:true ~graph:graph2 nets2 in
  let wl_plain = total_wl plain.Router.trees in
  let wl_refined = total_wl refined.Router.trees in
  Alcotest.(check bool)
    (Printf.sprintf "refined wl (%d) <= plain wl (%d)" wl_refined wl_plain)
    true
    (wl_refined <= wl_plain);
  (* trees stay structurally valid and pin-complete *)
  Array.iteri
    (fun i t ->
      match t with
      | None -> ()
      | Some tree ->
          Alcotest.(check bool) "valid" true (Stree.validate tree = Ok ());
          Array.iter
            (fun p ->
              Alcotest.(check bool) "pin covered" true
                (Stree.find_node tree (p.Net.px, p.Net.py) <> None))
            nets2.(i).Net.pins)
    refined.Router.trees

let suite =
  [
    Alcotest.test_case "mst basics" `Quick test_mst_basic;
    Alcotest.test_case "three-corner steiner point" `Quick test_three_corner_steiner;
    Alcotest.test_case "refine returns no pins" `Quick test_refine_returns_no_pins;
    Alcotest.test_case "refine trivial sets" `Quick test_refine_small_sets_empty;
    QCheck_alcotest.to_alcotest refine_never_hurts;
    QCheck_alcotest.to_alcotest refine_lower_bounded_by_hpwl;
    Alcotest.test_case "router with steiner improves WL" `Slow
      test_router_with_steiner_improves_wl;
  ]
