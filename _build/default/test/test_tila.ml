open Cpla_route
open Cpla_timing

let build_design ?(seed = 11) () =
  let spec =
    {
      Synth.default_spec with
      Synth.width = 32;
      height = 32;
      num_nets = 600;
      capacity = 8;
      seed;
      mean_extra_pins = 2.0;
    }
  in
  let graph, nets = Synth.generate spec in
  let routed = Router.route_all ~graph nets in
  let asg = Assignment.create ~graph ~nets ~trees:routed.Router.trees in
  Init_assign.run asg;
  asg

let test_tila_improves_timing () =
  let asg = build_design () in
  let released = Critical.select asg ~ratio:0.01 in
  let avg0, _ = Critical.avg_max_tcp asg released in
  let stats = Cpla_tila.Tila.optimize asg ~released in
  let avg1, _ = Critical.avg_max_tcp asg released in
  Alcotest.(check bool) "avg improves" true (avg1 <= avg0 +. 1e-9);
  Alcotest.(check bool) "ran at least one round" true (stats.Cpla_tila.Tila.rounds >= 1)

let test_tila_keeps_state_consistent () =
  let asg = build_design () in
  let released = Critical.select asg ~ratio:0.02 in
  ignore (Cpla_tila.Tila.optimize asg ~released);
  Alcotest.(check bool) "usage consistent" true (Assignment.check_usage asg = Ok ());
  Alcotest.(check bool) "fully assigned" true (Assignment.fully_assigned asg)

let test_tila_hard_edge_capacity () =
  let asg = build_design () in
  let before = Cpla_grid.Graph.edge_overflow (Assignment.graph asg) in
  let released = Critical.select asg ~ratio:0.02 in
  ignore (Cpla_tila.Tila.optimize asg ~released);
  let after = Cpla_grid.Graph.edge_overflow (Assignment.graph asg) in
  Alcotest.(check bool) "no new edge overflow" true (after <= before)

let test_tila_objective_decreases () =
  let asg = build_design ~seed:5 () in
  let released = Critical.select asg ~ratio:0.01 in
  let s1 =
    Cpla_tila.Tila.optimize
      ~options:{ Cpla_tila.Tila.default_options with Cpla_tila.Tila.max_rounds = 1 }
      asg ~released
  in
  (* the second run restarts with fresh multipliers, so allow a small
     bounce — the paper's shortcoming (2): sensitivity to initial
     multipliers *)
  let s2 = Cpla_tila.Tila.optimize asg ~released in
  Alcotest.(check bool) "more rounds do not hurt much" true
    (s2.Cpla_tila.Tila.objective <= s1.Cpla_tila.Tila.objective *. 1.10)

let test_tila_empty_release () =
  let asg = build_design () in
  let stats = Cpla_tila.Tila.optimize asg ~released:[||] in
  Alcotest.(check bool) "terminates" true (stats.Cpla_tila.Tila.rounds >= 0)

let suite =
  [
    Alcotest.test_case "tila improves timing" `Slow test_tila_improves_timing;
    Alcotest.test_case "tila keeps state consistent" `Slow test_tila_keeps_state_consistent;
    Alcotest.test_case "tila hard edge capacity" `Slow test_tila_hard_edge_capacity;
    Alcotest.test_case "tila objective decreases" `Slow test_tila_objective_decreases;
    Alcotest.test_case "tila empty release" `Quick test_tila_empty_release;
  ]
