(* Cross-module integration properties: the full pipeline on randomised
   small designs must preserve the structural invariants regardless of the
   optimisation method applied. *)

open Cpla_route
open Cpla_timing

let build ~seed ~nets ~w ~cap =
  let spec =
    {
      Synth.default_spec with
      Synth.width = w;
      height = w;
      num_nets = nets;
      capacity = cap;
      seed;
      mean_extra_pins = 2.0;
    }
  in
  let graph, net_arr = Synth.generate spec in
  let routed = Router.route_all ~graph net_arr in
  let asg = Assignment.create ~graph ~nets:net_arr ~trees:routed.Router.trees in
  (asg, routed)

let pipeline_invariants =
  QCheck.Test.make ~name:"route+init pipeline invariants on random designs" ~count:8
    QCheck.(pair (int_range 1 1000) (int_range 100 400))
    (fun (seed, nets) ->
      let asg, routed = build ~seed ~nets ~w:24 ~cap:8 in
      Init_assign.run asg;
      (* every tree valid, every pin a tree node, usage ledger consistent *)
      let ok = ref (Assignment.check_usage asg = Ok () && Assignment.fully_assigned asg) in
      Array.iteri
        (fun i tree_opt ->
          match tree_opt with
          | None -> ()
          | Some tree ->
              if Stree.validate tree <> Ok () then ok := false;
              Array.iter
                (fun p ->
                  if Stree.find_node tree (p.Net.px, p.Net.py) = None then ok := false)
                (Assignment.net asg i).Net.pins)
        routed.Router.trees;
      !ok)

let optimisation_preserves_invariants =
  QCheck.Test.make ~name:"SDP optimisation preserves invariants" ~count:4
    QCheck.(int_range 1 1000)
    (fun seed ->
      let asg, _ = build ~seed ~nets:250 ~w:24 ~cap:8 in
      Init_assign.run asg;
      let released = Critical.select asg ~ratio:0.02 in
      let avg0, _ = Critical.avg_max_tcp asg released in
      let rep = Cpla.Driver.optimize_released asg ~released in
      Assignment.check_usage asg = Ok ()
      && Assignment.fully_assigned asg
      && rep.Cpla.Driver.avg_tcp <= avg0 +. 1e-9)

let tila_preserves_invariants =
  QCheck.Test.make ~name:"TILA optimisation preserves invariants" ~count:4
    QCheck.(int_range 1 1000)
    (fun seed ->
      let asg, _ = build ~seed ~nets:250 ~w:24 ~cap:8 in
      Init_assign.run asg;
      let released = Critical.select asg ~ratio:0.02 in
      ignore (Cpla_tila.Tila.optimize asg ~released);
      Assignment.check_usage asg = Ok () && Assignment.fully_assigned asg)

let determinism =
  QCheck.Test.make ~name:"whole flow is deterministic in the seed" ~count:3
    QCheck.(int_range 1 100)
    (fun seed ->
      let run () =
        let asg, _ = build ~seed ~nets:200 ~w:20 ~cap:8 in
        Init_assign.run asg;
        let released = Critical.select asg ~ratio:0.02 in
        let rep = Cpla.Driver.optimize_released asg ~released in
        (rep.Cpla.Driver.avg_tcp, rep.Cpla.Driver.max_tcp)
      in
      run () = run ())

let compress_preserves_shape =
  QCheck.Test.make ~name:"stree compress preserves wirelength and validity" ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 1 8) (pair (int_bound 10) (int_bound 10)))
    (fun raw_points ->
      (* build a random monotone staircase tree through the points *)
      let points = List.sort_uniq compare ((0, 0) :: raw_points) in
      let edges =
        let rec connect acc prev = function
          | [] -> acc
          | (x, y) :: rest ->
              let px, py = prev in
              let acc =
                if px = x && py = y then acc
                else if px = x || py = y then ((px, py), (x, y)) :: acc
                else (((px, py), (x, py)) :: ((x, py), (x, y)) :: acc)
              in
              connect acc (x, y) rest
        in
        connect [] (0, 0) (List.tl points)
      in
      match edges with
      | [] -> true
      | _ -> (
          match Stree.of_edges ~root:(0, 0) edges with
          | exception Invalid_argument _ -> true (* staircase may self-touch: skip *)
          | tree ->
              let c = Stree.compress ~keep:points tree in
              Stree.validate c = Ok ()
              && Stree.total_wirelength c = Stree.total_wirelength tree))

let elmore_layer_sensitivity =
  QCheck.Test.make ~name:"moving a segment up never increases its own ts" ~count:100
    QCheck.(triple (int_range 1 10) (int_range 0 2) (float_range 0.5 20.0))
    (fun (len, tier, cd) ->
      let tech = Cpla_grid.Tech.default ~num_layers:8 () in
      (* compare same-direction layers two apart: higher tier = lower R *)
      let low = tier * 2 and high = (tier + 1) * 2 in
      let ts_low = Elmore.seg_ts ~tech ~len ~layer:low ~cd in
      let ts_high = Elmore.seg_ts ~tech ~len ~layer:high ~cd in
      (* with the default stack, R halves while C grows by <25%: for any
         cd >= C/2's growth the higher layer is never slower by more than
         the C increase; assert the dominant-R regime *)
      cd < 1.0 || ts_high <= ts_low)

let suite =
  [
    QCheck_alcotest.to_alcotest pipeline_invariants;
    QCheck_alcotest.to_alcotest optimisation_preserves_invariants;
    QCheck_alcotest.to_alcotest tila_preserves_invariants;
    QCheck_alcotest.to_alcotest determinism;
    QCheck_alcotest.to_alcotest compress_preserves_shape;
    QCheck_alcotest.to_alcotest elmore_layer_sensitivity;
  ]
