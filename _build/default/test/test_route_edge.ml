(* Edge-case tests for the routing substrate. *)

open Cpla_grid
open Cpla_route

let pin px py = { Net.px; py; pl = 0 }

let mk_graph ?(w = 16) ?(h = 16) ?(layers = 4) ?(cap = 8) () =
  let tech = Tech.default ~num_layers:layers () in
  Graph.create ~tech ~width:w ~height:h ~layer_capacity:(Array.make layers cap)

let test_router_avoids_blockage () =
  (* a full-height wall of zero 2-D capacity at x=7..8 except a gap at y=14 *)
  let g = mk_graph () in
  for y = 0 to 15 do
    if y <> 14 then
      List.iter
        (fun l ->
          let e = { Graph.dir = Tech.Horizontal; x = 7; y } in
          Graph.reduce_capacity g e ~layer:l ~by:100)
        (Tech.layers_of_dir (Graph.tech g) Tech.Horizontal)
  done;
  let nets = [| Net.create ~id:0 ~name:"n" ~pins:[| pin 2 2; pin 13 2 |] |] in
  let r = Router.route_all ~graph:g nets in
  (match r.Router.trees.(0) with
  | Some tree ->
      Alcotest.(check bool) "valid" true (Stree.validate tree = Ok ());
      (* crossing x=7 is only possible at y=14, so the tree must visit it *)
      Alcotest.(check bool) "uses the gap" true (Stree.contains_point tree (7, 14))
  | None -> Alcotest.fail "expected a tree");
  Alcotest.(check int) "no overflow" 0 r.Router.overflow_2d

let test_router_parallel_nets_spread () =
  (* many nets along the same row must spread across rows/layers without 2-D
     overflow when capacity suffices *)
  let g = mk_graph ~cap:2 () in
  let nets =
    Array.init 10 (fun i -> Net.create ~id:i ~name:(Printf.sprintf "n%d" i)
                      ~pins:[| pin 1 8; pin 14 8 |])
  in
  let r = Router.route_all ~graph:g nets in
  Alcotest.(check bool) "low overflow" true (r.Router.overflow_2d <= 2)

let test_pattern_route_degenerate_line () =
  let g = mk_graph () in
  let nets = [| Net.create ~id:0 ~name:"line" ~pins:[| pin 3 5; pin 11 5 |] |] in
  let r = Router.route_all ~graph:g nets in
  match r.Router.trees.(0) with
  | Some tree ->
      Alcotest.(check int) "straight line wirelength" 8 (Stree.total_wirelength tree);
      Alcotest.(check int) "two nodes after compress" 2 (Stree.num_nodes tree)
  | None -> Alcotest.fail "expected a tree"

let test_router_pin_on_tree_interior () =
  (* three collinear pins: the middle pin lies inside the segment and must
     stay a tree node (compress keeps pin tiles) *)
  let g = mk_graph () in
  let nets = [| Net.create ~id:0 ~name:"mid" ~pins:[| pin 2 4; pin 12 4; pin 7 4 |] |] in
  let r = Router.route_all ~graph:g nets in
  match r.Router.trees.(0) with
  | Some tree ->
      Alcotest.(check bool) "middle pin kept" true (Stree.find_node tree (7, 4) <> None)
  | None -> Alcotest.fail "expected a tree"

let test_ispd_vertical_adjustment () =
  let gr =
    "grid 4 4 2\n\
     vertical capacity 0 10\n\
     horizontal capacity 10 0\n\
     minimum width 1 1\n\
     minimum spacing 1 1\n\
     via spacing 1 1\n\
     0 0 10 10\n\
     num net 1\n\
     n 0 2 1\n\
     5 5 1\n\
     35 35 1\n\
     1\n\
     1 1 2 1 2 2 3\n"
  in
  match Ispd08.parse gr with
  | Error e -> Alcotest.fail e
  | Ok d ->
      let g = Ispd08.to_graph d in
      Alcotest.(check int) "v edge adjusted" 3
        (Graph.capacity g { Graph.dir = Tech.Vertical; x = 1; y = 1 } ~layer:1)

let test_ispd_single_tile_net () =
  let gr =
    "grid 4 4 2\n\
     vertical capacity 0 10\n\
     horizontal capacity 10 0\n\
     minimum width 1 1\n\
     minimum spacing 1 1\n\
     via spacing 1 1\n\
     0 0 10 10\n\
     num net 1\n\
     loop 0 2 1\n\
     5 5 1\n\
     6 6 1\n\
     0\n"
  in
  match Ispd08.parse gr with
  | Error e -> Alcotest.fail e
  | Ok d ->
      (* both pins collapse to tile (0,0): kept as a duplicated pair *)
      Alcotest.(check int) "two pins kept" 2 (Array.length d.Ispd08.nets.(0).Net.pins)

(* Tree_dp on a deeper 3-branch tree, brute-forced with 2 layer choices. *)
let test_tree_dp_deep_tree =
  QCheck.Test.make ~name:"tree dp optimal on a 6-segment tree" ~count:25
    QCheck.(array_of_size (QCheck.Gen.return 24) (float_range 0.0 5.0))
    (fun costs ->
      let tree =
        Stree.of_edges ~root:(0, 0)
          [
            ((0, 0), (4, 0)); ((4, 0), (4, 4)); ((4, 4), (8, 4));
            ((4, 0), (8, 0)); ((0, 0), (0, 4)); ((0, 4), (0, 8));
          ]
      in
      let segs, node_to_seg = Segment.extract ~net_id:0 tree in
      let nsegs = Array.length segs in
      if nsegs <> 6 then QCheck.Test.fail_report "fixture should have 6 segments";
      let tech = Tech.default ~num_layers:8 () in
      (* two candidates per segment *)
      let cand seg =
        match Tech.layers_of_dir tech segs.(seg).Segment.dir with
        | a :: b :: _ -> [ a; b ]
        | _ -> assert false
      in
      let cand_arr = Array.init nsegs (fun s -> Array.of_list (cand s)) in
      let seg_cost seg l =
        let ci = if l = cand_arr.(seg).(0) then 0 else 1 in
        costs.((seg * 2) + ci) +. (0.01 *. float_of_int l)
      in
      let via_cost ~node:_ a b = 0.5 *. float_of_int (abs (a - b)) in
      let pins_at _ = [] in
      let chosen = Tree_dp.solve ~tree ~node_to_seg ~pins_at ~candidates:cand ~seg_cost ~via_cost in
      let children = Stree.children tree in
      let total x =
        let acc = ref 0.0 in
        Array.iteri (fun s l -> acc := !acc +. seg_cost s l) x;
        for v = 0 to Stree.num_nodes tree - 1 do
          let up = node_to_seg.(v) in
          Array.iter
            (fun c ->
              if up >= 0 then acc := !acc +. via_cost ~node:v x.(node_to_seg.(c)) x.(up))
            children.(v)
        done;
        !acc
      in
      let best = ref infinity in
      for mask = 0 to (1 lsl nsegs) - 1 do
        let x = Array.init nsegs (fun s -> cand_arr.(s).((mask lsr s) land 1)) in
        best := Float.min !best (total x)
      done;
      total chosen <= !best +. 1e-9)

let suite =
  [
    Alcotest.test_case "router avoids blockage" `Quick test_router_avoids_blockage;
    Alcotest.test_case "parallel nets spread" `Quick test_router_parallel_nets_spread;
    Alcotest.test_case "degenerate straight net" `Quick test_pattern_route_degenerate_line;
    Alcotest.test_case "pin on tree interior kept" `Quick test_router_pin_on_tree_interior;
    Alcotest.test_case "ispd vertical adjustment" `Quick test_ispd_vertical_adjustment;
    Alcotest.test_case "ispd single-tile net" `Quick test_ispd_single_tile_net;
    QCheck_alcotest.to_alcotest test_tree_dp_deep_tree;
  ]
