(* Remaining coverage: read-only router API, partition stats, histogram
   rendering, RNG copy semantics, Kahan summation. *)

open Cpla_grid
open Cpla_route

let pin px py = { Net.px; py; pl = 0 }

let test_route_net_pure () =
  let tech = Tech.default ~num_layers:4 () in
  let graph = Graph.create ~tech ~width:16 ~height:16 ~layer_capacity:(Array.make 4 8) in
  let net = Net.create ~id:0 ~name:"n" ~pins:[| pin 1 1; pin 9 6 |] in
  let before = Graph.usage_2d graph { Graph.dir = Tech.Horizontal; x = 1; y = 1 } in
  match Router.route_net ~graph ~demand:(fun _ -> 0) net with
  | Some tree ->
      Alcotest.(check bool) "valid" true (Stree.validate tree = Ok ());
      Alcotest.(check int) "graph untouched" before
        (Graph.usage_2d graph { Graph.dir = Tech.Horizontal; x = 1; y = 1 })
  | None -> Alcotest.fail "expected a tree"

let test_route_net_respects_demand () =
  let tech = Tech.default ~num_layers:4 () in
  let graph = Graph.create ~tech ~width:16 ~height:16 ~layer_capacity:(Array.make 4 2) in
  (* artificial demand saturating row y=3 pushes an L-route off that row *)
  let demand (e : Graph.edge2d) =
    if e.Graph.dir = Tech.Horizontal && e.Graph.y = 3 then 100 else 0
  in
  let net = Net.create ~id:0 ~name:"n" ~pins:[| pin 1 3; pin 12 3 |] in
  match Router.route_net ~graph ~demand net with
  | Some tree ->
      (* the direct straight route would stay on y=3; congestion should bend
         it away for at least part of the path *)
      let touches_other_row = ref false in
      Array.iter (fun (_, y) -> if y <> 3 then touches_other_row := true) tree.Stree.nodes;
      Alcotest.(check bool) "detours off the hot row" true !touches_other_row
  | None -> Alcotest.fail "expected a tree"

let test_partition_stats () =
  let items =
    List.init 30 (fun i -> { Cpla.Partition.net = 0; seg = i; mid = (i mod 6, i / 6) })
  in
  let leaves = Cpla.Partition.build ~width:32 ~height:32 ~k:2 ~max_segments:4 items in
  let n, depth, mean = Cpla.Partition.stats leaves in
  Alcotest.(check bool) "has leaves" true (n > 0);
  Alcotest.(check bool) "depth positive (30 items in one corner)" true (depth >= 1);
  Alcotest.(check bool) "mean sane" true (mean > 0.0 && mean <= 30.0)

let test_histogram_render_bars () =
  let h = Cpla_util.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:2 in
  for _ = 1 to 100 do
    Cpla_util.Histogram.add h 2.0
  done;
  Cpla_util.Histogram.add h 8.0;
  let s = Cpla_util.Histogram.render ~width:20 h in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "two bins rendered" 2 (List.length lines);
  (* the 100-sample bin has a longer bar than the 1-sample bin *)
  let count_hashes line = String.fold_left (fun a c -> if c = '#' then a + 1 else a) 0 line in
  (match lines with
  | [ big; small ] ->
      Alcotest.(check bool) "log-scaled bars ordered" true
        (count_hashes big > count_hashes small)
  | _ -> Alcotest.fail "expected two lines")

let test_rng_copy_semantics () =
  let a = Cpla_util.Rng.create 9 in
  ignore (Cpla_util.Rng.int a 100);
  let b = Cpla_util.Rng.copy a in
  Alcotest.(check int) "copy continues identically" (Cpla_util.Rng.int a 1000000)
    (Cpla_util.Rng.int b 1000000)

let test_kahan_sum () =
  (* naive summation of 1e16 + many 1.0s loses the ones; Kahan keeps them *)
  let xs = Array.make 1001 1.0 in
  xs.(0) <- 1e16;
  let kahan = Cpla_util.Stats.sum xs in
  Alcotest.(check (float 1.0)) "kahan keeps low bits" (1e16 +. 1000.0) kahan

let test_timer_monotone () =
  let t = Cpla_util.Timer.start () in
  let acc = ref 0.0 in
  for i = 1 to 2_000_000 do
    acc := !acc +. float_of_int i
  done;
  ignore !acc;
  Alcotest.(check bool) "elapsed non-negative" true (Cpla_util.Timer.elapsed_s t >= 0.0)

let suite =
  [
    Alcotest.test_case "route_net is pure" `Quick test_route_net_pure;
    Alcotest.test_case "route_net respects demand" `Quick test_route_net_respects_demand;
    Alcotest.test_case "partition stats" `Quick test_partition_stats;
    Alcotest.test_case "histogram render bars" `Quick test_histogram_render_bars;
    Alcotest.test_case "rng copy semantics" `Quick test_rng_copy_semantics;
    Alcotest.test_case "kahan summation" `Quick test_kahan_sum;
    Alcotest.test_case "timer monotone" `Quick test_timer_monotone;
  ]
