open Cpla_expt

let test_suite_has_15 () =
  Alcotest.(check int) "15 benchmarks" 15 (List.length Suite.all);
  Alcotest.(check int) "6 small cases" 6 (List.length Suite.small_cases)

let test_suite_names_match_paper () =
  let names = List.map (fun b -> b.Suite.name) Suite.all in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " present") true (List.mem expected names))
    [
      "adaptec1"; "adaptec2"; "adaptec3"; "adaptec4"; "adaptec5";
      "bigblue1"; "bigblue2"; "bigblue3"; "bigblue4";
      "newblue1"; "newblue2"; "newblue4"; "newblue5"; "newblue6"; "newblue7";
    ]

let test_suite_sizes_ordered () =
  (* newblue7 is the largest design, adaptec1 the smallest, as in ISPD'08 *)
  let nets name = (Suite.find name).Suite.spec.Cpla_route.Synth.num_nets in
  Alcotest.(check bool) "newblue7 largest" true
    (List.for_all (fun b -> nets b.Suite.name <= nets "newblue7") Suite.all);
  Alcotest.(check bool) "adaptec1 smallest" true
    (List.for_all (fun b -> nets b.Suite.name >= nets "adaptec1") Suite.all)

let test_find_unknown () =
  Alcotest.(check bool) "not found" true
    (match Suite.find "nosuchbench" with exception Not_found -> true | _ -> false)

let test_prepare_deterministic () =
  let bench = Suite.find "adaptec1" in
  let a = Suite.prepare bench and b = Suite.prepare bench in
  let released_a = Experiments.released_at a ~ratio:0.005 in
  let released_b = Experiments.released_at b ~ratio:0.005 in
  Alcotest.(check bool) "same release set" true (released_a = released_b);
  let avg_a, max_a =
    Cpla_timing.Critical.avg_max_tcp a.Suite.asg released_a
  in
  let avg_b, max_b =
    Cpla_timing.Critical.avg_max_tcp b.Suite.asg released_b
  in
  Alcotest.(check (float 1e-12)) "same avg" avg_a avg_b;
  Alcotest.(check (float 1e-12)) "same max" max_a max_b

let test_prepare_fully_assigned () =
  let prep = Suite.prepare (Suite.find "adaptec1") in
  Alcotest.(check bool) "fully assigned" true
    (Cpla_route.Assignment.fully_assigned prep.Suite.asg);
  Alcotest.(check bool) "ledger consistent" true
    (Cpla_route.Assignment.check_usage prep.Suite.asg = Ok ())

let test_eight_layer_designs () =
  List.iter
    (fun name ->
      let b = Suite.find name in
      Alcotest.(check int) (name ^ " has 8 layers") 8
        b.Suite.spec.Cpla_route.Synth.num_layers)
    [ "bigblue3"; "bigblue4"; "newblue5"; "newblue6"; "newblue7" ]

let suite =
  [
    Alcotest.test_case "suite has 15 benchmarks" `Quick test_suite_has_15;
    Alcotest.test_case "suite names match paper" `Quick test_suite_names_match_paper;
    Alcotest.test_case "suite sizes ordered" `Quick test_suite_sizes_ordered;
    Alcotest.test_case "find unknown raises" `Quick test_find_unknown;
    Alcotest.test_case "prepare deterministic" `Slow test_prepare_deterministic;
    Alcotest.test_case "prepare fully assigned" `Slow test_prepare_fully_assigned;
    Alcotest.test_case "eight layer designs" `Quick test_eight_layer_designs;
  ]
