open Cpla_sdp
open Cpla_numeric

let e i j v = { Problem.i; j; v }

(* min X_00 s.t. X_00 + X_11 = 1 — optimum pushes all mass to X_11. *)
let test_two_diag () =
  let p =
    Problem.create ~dim:2
      ~cost:[ e 0 0 1.0 ]
      ~constraints:[ { Problem.terms = [ e 0 0 1.0; e 1 1 1.0 ]; b = 1.0 } ]
  in
  let r = Solver.solve p in
  Alcotest.(check bool) "feasible" true (r.Solver.max_violation < 1e-3);
  Alcotest.(check (float 1e-2)) "x00 ~ 0" 0.0 r.Solver.x_diag.(0);
  Alcotest.(check (float 1e-2)) "x11 ~ 1" 1.0 r.Solver.x_diag.(1)

(* Max-cut SDP on a triangle: min ⟨C,X⟩, C = W/4 with unit weights, diag(X)=1.
   Known optimum: X_ij = -1/2 off-diagonal, objective Σ_{i<j} 2·(1/4)·(-1/2)
   = 3·(1/2)·(-1/2)... with C entries 0.25 for i<j:
   ⟨C,X⟩ = Σ_{i<j} 2·0.25·X_ij = 1.5·(-0.5) = -0.75. *)
let test_maxcut_triangle () =
  let cost = [ e 0 1 0.25; e 0 2 0.25; e 1 2 0.25 ] in
  let constraints =
    List.init 3 (fun i -> { Problem.terms = [ e i i 1.0 ]; b = 1.0 })
  in
  let p = Problem.create ~dim:3 ~cost ~constraints in
  let r = Solver.solve p in
  Alcotest.(check bool) "feasible" true (r.Solver.max_violation < 1e-3);
  Alcotest.(check (float 0.01)) "sdp optimum" (-0.75) r.Solver.objective

let test_psd_by_construction () =
  let cost = [ e 0 1 1.0; e 1 2 (-1.0) ] in
  let constraints = List.init 3 (fun i -> { Problem.terms = [ e i i 1.0 ]; b = 1.0 }) in
  let p = Problem.create ~dim:3 ~cost ~constraints in
  let r = Solver.solve p in
  let x = Solver.x_matrix r in
  Alcotest.(check bool) "X is PSD" true (Cholesky.is_psd x);
  Alcotest.(check bool) "X symmetric" true (Mat.is_symmetric ~tol:1e-9 x)

(* Assignment-style SDP: two "segments", two "layers" each; each segment's
   two indicator diagonal entries sum to 1; costs prefer (layer0, layer1). *)
let test_assignment_structure () =
  let cost = [ e 0 0 1.0; e 1 1 5.0; e 2 2 6.0; e 3 3 2.0 ] in
  let constraints =
    [
      { Problem.terms = [ e 0 0 1.0; e 1 1 1.0 ]; b = 1.0 };
      { Problem.terms = [ e 2 2 1.0; e 3 3 1.0 ]; b = 1.0 };
    ]
  in
  let p = Problem.create ~dim:4 ~cost ~constraints in
  let r = Solver.solve p in
  Alcotest.(check bool) "feasible" true (r.Solver.max_violation < 1e-3);
  Alcotest.(check bool) "seg0 prefers layer 0" true (r.Solver.x_diag.(0) > r.Solver.x_diag.(1));
  Alcotest.(check bool) "seg1 prefers layer 1" true (r.Solver.x_diag.(3) > r.Solver.x_diag.(2))

(* Slack-variable inequality: X_00 <= 0.3 encoded as X_00 + s = 0.3 with the
   slack a PSD diagonal entry. *)
let test_slack_inequality () =
  let cost = [ e 0 0 (-1.0) ] in
  (* maximise X_00 *)
  let constraints =
    [
      { Problem.terms = [ e 0 0 1.0; e 1 1 1.0 ]; b = 0.3 };
    ]
  in
  let p = Problem.create ~dim:2 ~cost ~constraints in
  let r = Solver.solve p in
  Alcotest.(check bool) "feasible" true (r.Solver.max_violation < 1e-3);
  Alcotest.(check (float 0.01)) "X00 hits the bound" 0.3 r.Solver.x_diag.(0);
  Alcotest.(check bool) "slack nonneg" true (r.Solver.x_diag.(1) >= -1e-9)

let test_deterministic () =
  let cost = [ e 0 1 1.0 ] in
  let constraints = List.init 2 (fun i -> { Problem.terms = [ e i i 1.0 ]; b = 1.0 }) in
  let p = Problem.create ~dim:2 ~cost ~constraints in
  let a = Solver.solve p and b = Solver.solve p in
  Alcotest.(check (float 1e-12)) "same objective" a.Solver.objective b.Solver.objective

let test_invalid_entry () =
  Alcotest.(check bool) "lower triangle rejected" true
    (match Problem.create ~dim:2 ~cost:[ e 1 0 1.0 ] ~constraints:[] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* Property: on random diagonal SDPs (which are just LPs), the solver's
   objective approaches the LP optimum min_i c_i. *)
let test_diag_sdp_is_lp =
  QCheck.Test.make ~name:"diagonal SDP solves the underlying LP" ~count:25
    QCheck.(array_of_size (QCheck.Gen.return 4) (float_range 0.5 5.0))
    (fun costs ->
      let cost = Array.to_list (Array.mapi (fun i c -> e i i c) costs) in
      let constraints =
        [ { Problem.terms = List.init 4 (fun i -> e i i 1.0); b = 1.0 } ]
      in
      let p = Problem.create ~dim:4 ~cost ~constraints in
      let r = Solver.solve p in
      let best = Array.fold_left Float.min infinity costs in
      r.Solver.max_violation < 1e-2 && r.Solver.objective < best +. 0.15)

let suite =
  [
    Alcotest.test_case "two diagonal entries" `Quick test_two_diag;
    Alcotest.test_case "max-cut triangle" `Quick test_maxcut_triangle;
    Alcotest.test_case "X psd by construction" `Quick test_psd_by_construction;
    Alcotest.test_case "assignment structure" `Quick test_assignment_structure;
    Alcotest.test_case "slack inequality" `Quick test_slack_inequality;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "invalid entry rejected" `Quick test_invalid_entry;
    QCheck_alcotest.to_alcotest test_diag_sdp_is_lp;
  ]
