(** Technology description: the metal layer stack with per-layer RC, via
    resistances, and the geometry constants of Eqn (1) of the paper.

    The default stack follows the paper's qualitative structure (Section 1):
    low metal layers are thin with high resistance, high layers are wide with
    low resistance (and slightly higher capacitance, being wider), which is
    what makes high layers attractive for timing-critical segments. *)

type dir = Horizontal | Vertical

type layer = {
  index : int;    (** 0-based; metal 1 is index 0 *)
  dir : dir;      (** preferred (and only) routing direction *)
  unit_r : float; (** resistance per grid-edge length *)
  unit_c : float; (** capacitance per grid-edge length *)
}

type t = {
  layers : layer array;
  via_r : float array;  (** [via_r.(l)] is the via resistance between layers [l] and [l+1] *)
  driver_r : float;     (** source driver resistance, closes the Elmore model *)
  sink_c : float;       (** sink pin load capacitance *)
  wire_width : float;   (** [ww] in Eqn (1) *)
  wire_space : float;   (** [ws] in Eqn (1) *)
  via_width : float;    (** [vw] in Eqn (1) *)
  via_space : float;    (** [vs] in Eqn (1) *)
  tile_width : float;   (** [Tile_w] in Eqn (1) *)
  nv : int;             (** vias per routing track within one tile, Eqn (4d) *)
}

val default : ?num_layers:int -> unit -> t
(** An industrial-flavour stack.  [num_layers] defaults to 8 and must be at
    least 2; directions alternate starting with [Horizontal] on metal 1. *)

val num_layers : t -> int

val layer_dir : t -> int -> dir
(** Direction of layer [l].  @raise Invalid_argument if out of range. *)

val unit_r : t -> int -> float

val unit_c : t -> int -> float

val via_r_span : t -> lo:int -> hi:int -> float
(** Total via resistance of a stacked via from layer [lo] up to layer [hi]
    (sum of [via_r] over crossings); 0 when [lo = hi].
    @raise Invalid_argument when [lo > hi] or out of range. *)

val layers_of_dir : t -> dir -> int list
(** Indices of the layers routable in the given direction, ascending. *)

val via_per_boundary : t -> cap_e0:int -> cap_e1:int -> int
(** Eqn (1): via capacity through one tile at one layer boundary, given the
    available routing capacities of the two incident edges on that layer. *)
