type dir = Horizontal | Vertical

type layer = {
  index : int;
  dir : dir;
  unit_r : float;
  unit_c : float;
}

type t = {
  layers : layer array;
  via_r : float array;
  driver_r : float;
  sink_c : float;
  wire_width : float;
  wire_space : float;
  via_width : float;
  via_space : float;
  tile_width : float;
  nv : int;
}

(* Resistance halves every layer pair going up the stack; capacitance grows
   mildly because high layers are wider.  The exact values are industrial
   flavour only: what matters for the algorithms is the monotone R trend and
   the non-trivial R*C trade-off it induces. *)
let rc_of_index num_layers i =
  let tier = i / 2 in
  let top_tier = (num_layers - 1) / 2 in
  let r = 8.0 /. (2.0 ** float_of_int tier) in
  let c = 0.8 +. (0.15 *. float_of_int (min tier top_tier)) in
  (r, c)

let default ?(num_layers = 8) () =
  if num_layers < 2 then invalid_arg "Tech.default: at least two layers required";
  let layers =
    Array.init num_layers (fun i ->
        let r, c = rc_of_index num_layers i in
        { index = i; dir = (if i mod 2 = 0 then Horizontal else Vertical); unit_r = r; unit_c = c })
  in
  {
    layers;
    via_r = Array.make (num_layers - 1) 1.0;
    driver_r = 4.0;
    sink_c = 1.0;
    wire_width = 1.0;
    wire_space = 1.0;
    via_width = 1.2;
    via_space = 1.2;
    tile_width = 20.0;
    nv = 2;
  }

let num_layers t = Array.length t.layers

let check_layer t l name =
  if l < 0 || l >= num_layers t then invalid_arg ("Tech." ^ name ^ ": layer out of range")

let layer_dir t l =
  check_layer t l "layer_dir";
  t.layers.(l).dir

let unit_r t l =
  check_layer t l "unit_r";
  t.layers.(l).unit_r

let unit_c t l =
  check_layer t l "unit_c";
  t.layers.(l).unit_c

let via_r_span t ~lo ~hi =
  if lo > hi then invalid_arg "Tech.via_r_span: lo > hi";
  check_layer t lo "via_r_span";
  check_layer t hi "via_r_span";
  let acc = ref 0.0 in
  for l = lo to hi - 1 do
    acc := !acc +. t.via_r.(l)
  done;
  !acc

let layers_of_dir t dir =
  Array.to_list t.layers
  |> List.filter (fun layer -> layer.dir = dir)
  |> List.map (fun layer -> layer.index)

let via_per_boundary t ~cap_e0 ~cap_e1 =
  let pitch = t.wire_width +. t.wire_space in
  let via_pitch = t.via_width +. t.via_space in
  let cap = pitch *. t.tile_width *. float_of_int (cap_e0 + cap_e1) /. (via_pitch *. via_pitch) in
  int_of_float (Float.floor cap)
