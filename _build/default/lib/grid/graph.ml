type edge2d = {
  dir : Tech.dir;
  x : int;
  y : int;
}

type t = {
  tech : Tech.t;
  width : int;
  height : int;
  (* cap.(l) / use_.(l): per-layer edge arrays.  For a horizontal layer the
     array has (width-1)*height entries indexed y*(width-1)+x; for a vertical
     layer width*(height-1) entries indexed y*width+x. *)
  cap : int array array;
  use_ : int array array;
  (* vias.(c): via usage at the boundary between layers c and c+1, one entry
     per tile, indexed y*width+x. *)
  vias : int array array;
}

let tech t = t.tech
let width t = t.width
let height t = t.height
let num_layers t = Tech.num_layers t.tech

let edge_array_size ~width ~height = function
  | Tech.Horizontal -> (width - 1) * height
  | Tech.Vertical -> width * (height - 1)

let create ~tech ~width ~height ~layer_capacity =
  if width < 2 || height < 2 then invalid_arg "Graph.create: grid must be at least 2x2";
  if Array.length layer_capacity < Tech.num_layers tech then
    invalid_arg "Graph.create: capacity array shorter than layer count";
  let nl = Tech.num_layers tech in
  let cap =
    Array.init nl (fun l ->
        let size = edge_array_size ~width ~height (Tech.layer_dir tech l) in
        Array.make size (max 0 layer_capacity.(l)))
  in
  let use_ =
    Array.init nl (fun l ->
        Array.make (edge_array_size ~width ~height (Tech.layer_dir tech l)) 0)
  in
  let vias = Array.init (nl - 1) (fun _ -> Array.make (width * height) 0) in
  { tech; width; height; cap; use_; vias }

let in_bounds t ~x ~y = x >= 0 && x < t.width && y >= 0 && y < t.height

let edge_exists t e =
  match e.dir with
  | Tech.Horizontal -> e.x >= 0 && e.x < t.width - 1 && e.y >= 0 && e.y < t.height
  | Tech.Vertical -> e.x >= 0 && e.x < t.width && e.y >= 0 && e.y < t.height - 1

let edge_index t e =
  if not (edge_exists t e) then invalid_arg "Graph: edge out of grid";
  match e.dir with
  | Tech.Horizontal -> (e.y * (t.width - 1)) + e.x
  | Tech.Vertical -> (e.y * t.width) + e.x

let edge_layers t e = Tech.layers_of_dir t.tech e.dir

let capacity t e ~layer =
  if Tech.layer_dir t.tech layer <> e.dir then 0 else t.cap.(layer).(edge_index t e)

let reduce_capacity t e ~layer ~by =
  if Tech.layer_dir t.tech layer = e.dir then begin
    let i = edge_index t e in
    t.cap.(layer).(i) <- max 0 (t.cap.(layer).(i) - by)
  end

let usage t e ~layer =
  if Tech.layer_dir t.tech layer <> e.dir then 0 else t.use_.(layer).(edge_index t e)

let free t e ~layer = capacity t e ~layer - usage t e ~layer

let add_usage t e ~layer delta =
  if Tech.layer_dir t.tech layer <> e.dir then
    invalid_arg "Graph.add_usage: layer direction mismatch";
  let i = edge_index t e in
  let v = t.use_.(layer).(i) + delta in
  if v < 0 then invalid_arg "Graph.add_usage: usage would become negative";
  t.use_.(layer).(i) <- v

let capacity_2d t e =
  List.fold_left (fun acc l -> acc + capacity t e ~layer:l) 0 (edge_layers t e)

let usage_2d t e =
  List.fold_left (fun acc l -> acc + usage t e ~layer:l) 0 (edge_layers t e)

let tile_index t ~x ~y =
  if not (in_bounds t ~x ~y) then invalid_arg "Graph: tile out of grid";
  (y * t.width) + x

(* The two incident edges of tile (x,y) along [layer]'s direction; missing
   edges at the grid border contribute capacity 0. *)
let incident_free t ~x ~y ~layer =
  let dir = Tech.layer_dir t.tech layer in
  let edges =
    match dir with
    | Tech.Horizontal -> [ { dir; x = x - 1; y }; { dir; x; y } ]
    | Tech.Vertical -> [ { dir; x; y = y - 1 }; { dir; x; y } ]
  in
  List.map (fun e -> if edge_exists t e then max 0 (free t e ~layer) else 0) edges

let via_capacity t ~x ~y ~crossing =
  if crossing < 0 || crossing >= num_layers t - 1 then
    invalid_arg "Graph.via_capacity: crossing out of range";
  match incident_free t ~x ~y ~layer:crossing with
  | [ cap_e0; cap_e1 ] -> Tech.via_per_boundary t.tech ~cap_e0 ~cap_e1
  | _ -> assert false

let via_usage t ~x ~y ~crossing =
  if crossing < 0 || crossing >= num_layers t - 1 then
    invalid_arg "Graph.via_usage: crossing out of range";
  t.vias.(crossing).(tile_index t ~x ~y)

let add_via_usage t ~x ~y ~crossing delta =
  if crossing < 0 || crossing >= num_layers t - 1 then
    invalid_arg "Graph.add_via_usage: crossing out of range";
  let i = tile_index t ~x ~y in
  let v = t.vias.(crossing).(i) + delta in
  if v < 0 then invalid_arg "Graph.add_via_usage: usage would become negative";
  t.vias.(crossing).(i) <- v

let iter_edges t f =
  for y = 0 to t.height - 1 do
    for x = 0 to t.width - 2 do
      f { dir = Tech.Horizontal; x; y }
    done
  done;
  for y = 0 to t.height - 2 do
    for x = 0 to t.width - 1 do
      f { dir = Tech.Vertical; x; y }
    done
  done

let edge_overflow t =
  let acc = ref 0 in
  for l = 0 to num_layers t - 1 do
    Array.iteri
      (fun i u ->
        let over = u - t.cap.(l).(i) in
        if over > 0 then acc := !acc + over)
      t.use_.(l)
  done;
  !acc

let via_overflow t =
  let acc = ref 0 in
  for c = 0 to num_layers t - 2 do
    for y = 0 to t.height - 1 do
      for x = 0 to t.width - 1 do
        let u = via_usage t ~x ~y ~crossing:c in
        if u > 0 then begin
          let over = u - via_capacity t ~x ~y ~crossing:c in
          if over > 0 then acc := !acc + over
        end
      done
    done
  done;
  !acc

let total_via_usage t =
  Array.fold_left (fun acc per_tile -> Array.fold_left ( + ) acc per_tile) 0 t.vias

let density t =
  let d = Array.make_matrix t.height t.width 0.0 in
  iter_edges t (fun e ->
      let cap = capacity_2d t e in
      let ratio = if cap <= 0 then 0.0 else float_of_int (usage_2d t e) /. float_of_int cap in
      let touch x y = if in_bounds t ~x ~y then d.(y).(x) <- Float.max d.(y).(x) ratio in
      touch e.x e.y;
      match e.dir with
      | Tech.Horizontal -> touch (e.x + 1) e.y
      | Tech.Vertical -> touch e.x (e.y + 1));
  d

let density_map t =
  let d = density t in
  let buf = Buffer.create (t.width * t.height) in
  for y = t.height - 1 downto 0 do
    for x = 0 to t.width - 1 do
      let v = d.(y).(x) in
      let ch =
        if v <= 0.0 then '.'
        else if v >= 1.0 then '#'
        else Char.chr (Char.code '0' + int_of_float (v *. 10.0))
      in
      Buffer.add_char buf ch
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let clone t =
  {
    t with
    cap = Array.map Array.copy t.cap;
    use_ = Array.map Array.copy t.use_;
    vias = Array.map Array.copy t.vias;
  }
