lib/grid/tech.ml: Array Float List
