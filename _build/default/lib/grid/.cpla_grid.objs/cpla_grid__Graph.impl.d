lib/grid/graph.ml: Array Buffer Char Float List Tech
