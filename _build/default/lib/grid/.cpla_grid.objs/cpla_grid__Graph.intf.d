lib/grid/graph.mli: Tech
