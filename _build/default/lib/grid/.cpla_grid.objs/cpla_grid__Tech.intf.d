lib/grid/tech.mli:
