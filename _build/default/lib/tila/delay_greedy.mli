(** Delay-driven net-by-net layer assignment in the style of Ao et al.
    (ISPD'13 — reference [9] of the paper): each net's segments are
    assigned by the exact tree DP against pure Elmore delay costs, with
    hard wire capacities but *no via-capacity model* — the paper's critique
    of this class of methods is that "more wires may be assigned on high
    metal layers, resulting in illegal solutions", which shows up here as a
    higher via-overflow count.

    Included as a second comparison point for the extended evaluation. *)

type stats = {
  nets_reassigned : int;
}

val optimize : Cpla_route.Assignment.t -> released:int array -> stats
(** Reassign every released net, most critical first. *)
