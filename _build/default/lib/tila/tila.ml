open Cpla_grid
open Cpla_route
open Cpla_timing

type options = {
  max_rounds : int;
  step0 : float;
  step_decay : float;
}

let default_options = { max_rounds = 8; step0 = 1.0; step_decay = 0.7 }

type stats = {
  rounds : int;
  objective : float;
}

(* Multipliers live in hash tables keyed by edge-layer / tile-crossing. *)
type multipliers = {
  lambda_edge : (bool * int * int * int, float) Hashtbl.t;
  mu_via : (int * int * int, float) Hashtbl.t;
}

let edge_key (e : Graph.edge2d) layer = (e.Graph.dir = Tech.Horizontal, e.Graph.x, e.Graph.y, layer)

let get tbl key = Option.value ~default:0.0 (Hashtbl.find_opt tbl key)

let bump tbl key delta =
  let v = Float.max 0.0 (get tbl key +. delta) in
  if v = 0.0 then Hashtbl.remove tbl key else Hashtbl.replace tbl key v

(* Sink-count weight per segment: how many sinks the segment drives. *)
let seg_weights asg net_idx =
  match Assignment.tree asg net_idx with
  | None -> [||]
  | Some tree ->
      let segs = Assignment.segments asg net_idx in
      let node_to_seg = Assignment.node_to_seg asg net_idx in
      let n = Stree.num_nodes tree in
      let sink_count = Array.make n 0 in
      let net = Assignment.net asg net_idx in
      let src = Net.source net in
      Array.iter
        (fun p ->
          if not (p.Net.px = src.Net.px && p.Net.py = src.Net.py) then begin
            match Stree.find_node tree (p.Net.px, p.Net.py) with
            | Some v -> sink_count.(v) <- sink_count.(v) + 1
            | None -> ()
          end)
        net.Net.pins;
      (* accumulate bottom-up *)
      let children = Stree.children tree in
      let rec total v =
        Array.fold_left (fun acc c -> acc + total c) sink_count.(v) children.(v)
      in
      let weights = Array.make (Array.length segs) 1.0 in
      for v = 0 to n - 1 do
        if node_to_seg.(v) >= 0 then
          weights.(node_to_seg.(v)) <- float_of_int (max 1 (total v))
      done;
      weights

(* The published TILA "artificially approximates some quadratic terms to
   linear model" (Section 1, shortcoming (3)): the via delay between two
   segments -- a product of both segments' layer choices -- is linearised by
   charging each segment against its neighbours' *frozen* layers from the
   previous state.  Each segment then picks its layer independently
   (Gauss-Seidel over the net, sinks first), which is what makes the
   min-cost-flow formulation of [4] linear, and is the accuracy the CPLA
   paper's quadratic SDP model recovers. *)
let reassign_net asg mult net_idx details =
  match Assignment.tree asg net_idx with
  | None -> ()
  | Some tree ->
      let tech = Assignment.tech asg in
      let graph = Assignment.graph asg in
      let segs = Assignment.segments asg net_idx in
      let node_to_seg = Assignment.node_to_seg asg net_idx in
      let weights = seg_weights asg net_idx in
      let detail : Elmore.detail = details in
      let frozen =
        Array.init (Array.length segs) (fun seg -> Assignment.layer asg ~net:net_idx ~seg)
      in
      let children = Stree.children tree in
      let cd_of seg =
        if seg >= 0 && seg < Array.length detail.Elmore.seg_cd then detail.Elmore.seg_cd.(seg)
        else detail.Elmore.total_cap
      in
      (* via stacks at both endpoint nodes of [seg], against frozen
         neighbour and pin layers, with multiplier pressure *)
      let via_to_frozen seg l =
        let s = segs.(seg) in
        let child_node = s.Segment.node in
        let parent_node = tree.Stree.parent.(child_node) in
        let acc = ref 0.0 in
        let charge node other =
          if other >= 0 && other <> seg && frozen.(other) >= 0 then begin
            let lo = min l frozen.(other) and hi = max l frozen.(other) in
            acc :=
              !acc
              +. Elmore.via_tv ~tech ~lo ~hi ~cd_min:(Float.min (cd_of seg) (cd_of other));
            let x, y = Stree.node tree node in
            for c = lo to hi - 1 do
              acc := !acc +. get mult.mu_via (x, y, c)
            done
          end
        in
        let charge_node node =
          charge node node_to_seg.(node);
          Array.iter (fun c -> charge node node_to_seg.(c)) children.(node);
          List.iter
            (fun pl ->
              acc :=
                !acc
                +. Elmore.via_tv ~tech ~lo:(min l pl) ~hi:(max l pl) ~cd_min:tech.Tech.sink_c)
            (Assignment.pin_layers_at asg ~net:net_idx ~node)
        in
        charge_node child_node;
        if parent_node >= 0 then charge_node parent_node;
        !acc
      in
      Array.iteri
        (fun seg (s : Segment.t) ->
          let best = ref (-1) and best_cost = ref infinity in
          List.iter
            (fun l ->
              (* the flow formulation of [4] has hard wire capacities: a
                 layer without room is not a candidate (the wire the segment
                 already holds on [l] does not count against itself) *)
              let feasible =
                Array.for_all
                  (fun e ->
                    Graph.free graph e ~layer:l + (if frozen.(seg) = l then 1 else 0) >= 1)
                  s.Segment.edges
              in
              if feasible || frozen.(seg) = l then begin
                let ts =
                  Elmore.seg_ts ~tech ~len:s.Segment.len ~layer:l
                    ~cd:detail.Elmore.seg_cd.(seg)
                in
                let lagr =
                  Array.fold_left
                    (fun acc e -> acc +. get mult.lambda_edge (edge_key e l))
                    0.0 s.Segment.edges
                in
                let cost = (weights.(seg) *. ts) +. via_to_frozen seg l +. lagr in
                if cost < !best_cost then begin
                  best_cost := cost;
                  best := l
                end
              end)
            (Tech.layers_of_dir tech s.Segment.dir);
          if !best >= 0 then begin
            Assignment.set_layer asg ~net:net_idx ~seg ~layer:!best;
            frozen.(seg) <- !best
          end)
        segs

let weighted_total_delay asg released =
  Array.fold_left
    (fun acc net_idx ->
      let detail = Elmore.analyze asg net_idx in
      let weights = seg_weights asg net_idx in
      let per_net = ref 0.0 in
      Array.iteri
        (fun seg w -> per_net := !per_net +. (w *. detail.Elmore.seg_delay.(seg)))
        weights;
      acc +. !per_net)
    0.0 released

let update_multipliers asg mult step released =
  let graph = Assignment.graph asg in
  (* subgradients only on the resources the released nets touch *)
  let touched_edges = Hashtbl.create 256 in
  let touched_tiles = Hashtbl.create 256 in
  Array.iter
    (fun net_idx ->
      let segs = Assignment.segments asg net_idx in
      Array.iter
        (fun s ->
          Array.iter (fun e -> Hashtbl.replace touched_edges e ()) s.Segment.edges)
        segs;
      match Assignment.tree asg net_idx with
      | None -> ()
      | Some tree ->
          for v = 0 to Stree.num_nodes tree - 1 do
            Hashtbl.replace touched_tiles (Stree.node tree v) ()
          done)
    released;
  Hashtbl.iter
    (fun (e : Graph.edge2d) () ->
      List.iter
        (fun l ->
          let cap = Graph.capacity graph e ~layer:l in
          if cap > 0 then begin
            let slack = float_of_int (Graph.usage graph e ~layer:l - cap) /. float_of_int cap in
            bump mult.lambda_edge (edge_key e l) (step *. slack)
          end)
        (Graph.edge_layers graph e))
    touched_edges;
  Hashtbl.iter
    (fun (x, y) () ->
      for c = 0 to Graph.num_layers graph - 2 do
        let cap = Graph.via_capacity graph ~x ~y ~crossing:c in
        let u = Graph.via_usage graph ~x ~y ~crossing:c in
        if cap > 0 then begin
          let slack = float_of_int (u - cap) /. float_of_int cap in
          bump mult.mu_via (x, y, c) (step *. slack)
        end
        else if u > 0 then bump mult.mu_via (x, y, c) step
      done)
    touched_tiles

let optimize ?(options = default_options) asg ~released =
  let mult = { lambda_edge = Hashtbl.create 1024; mu_via = Hashtbl.create 1024 } in
  let step = ref options.step0 in
  let round = ref 0 in
  let best = ref infinity in
  let stalled = ref false in
  while !round < options.max_rounds && not !stalled do
    (* most critical nets move first: they get the freshest view of capacity *)
    let order =
      Array.map (fun i -> (Critical.net_tcp asg i, i)) released
    in
    Array.sort (fun (a, _) (b, _) -> compare b a) order;
    Array.iter
      (fun (_, net_idx) ->
        let detail = Elmore.analyze asg net_idx in
        reassign_net asg mult net_idx detail)
      order;
    update_multipliers asg mult !step released;
    step := !step *. options.step_decay;
    let obj = weighted_total_delay asg released in
    if obj >= !best -. 1e-9 then stalled := true else best := obj;
    incr round
  done;
  { rounds = !round; objective = weighted_total_delay asg released }
