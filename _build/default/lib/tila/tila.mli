(** TILA baseline: timing-driven incremental layer assignment by Lagrangian
    relaxation (Yu et al., ICCAD'15 — reference [4] of the paper).

    Re-implemented here as the comparison baseline.  Characteristics the
    paper attributes to TILA and that this implementation mirrors:

    - the objective is the *weighted sum* of all segment delays of the
      released nets (sink-count weights), not the per-net critical-path
      delay — so it can trade a critical path off against many light paths;
    - capacity constraints are relaxed into Lagrangian multipliers updated
      by subgradient steps, so feasibility depends on multiplier tuning;
    - each round reassigns nets one at a time with the tree DP, against
      frozen downstream capacitances that are refreshed between rounds. *)

type options = {
  max_rounds : int;    (** Lagrangian outer rounds (default 8) *)
  step0 : float;       (** initial subgradient step (default 1.0) *)
  step_decay : float;  (** multiplicative decay per round (default 0.7) *)
}

val default_options : options

type stats = {
  rounds : int;
  objective : float;  (** final weighted total segment delay of released nets *)
}

val optimize :
  ?options:options -> Cpla_route.Assignment.t -> released:int array -> stats
(** Reassign the layers of every segment of the released nets in place. *)
