open Cpla_grid
open Cpla_route
open Cpla_timing

type stats = {
  nets_reassigned : int;
}

let reassign_net asg net_idx =
  match Assignment.tree asg net_idx with
  | None -> ()
  | Some tree ->
      let tech = Assignment.tech asg in
      let graph = Assignment.graph asg in
      let detail = Elmore.analyze asg net_idx in
      let segs = Assignment.segments asg net_idx in
      let node_to_seg = Assignment.node_to_seg asg net_idx in
      Assignment.unassign_net asg net_idx;
      let candidates seg = Tech.layers_of_dir tech segs.(seg).Segment.dir in
      let seg_cost seg l =
        let ts =
          Elmore.seg_ts ~tech ~len:segs.(seg).Segment.len ~layer:l
            ~cd:detail.Elmore.seg_cd.(seg)
        in
        (* hard wire capacity only: an over-full edge disqualifies the layer *)
        let blocked =
          Array.exists (fun e -> Graph.free graph e ~layer:l < 1) segs.(seg).Segment.edges
        in
        if blocked then ts +. 1e9 else ts
      in
      let cd_of_node node =
        let s = node_to_seg.(node) in
        if s >= 0 then detail.Elmore.seg_cd.(s) else detail.Elmore.total_cap
      in
      let via_cost ~node a b =
        if a = b then 0.0
        else Elmore.via_tv ~tech ~lo:(min a b) ~hi:(max a b) ~cd_min:(cd_of_node node)
      in
      let chosen =
        Tree_dp.solve ~tree ~node_to_seg
          ~pins_at:(fun node -> Assignment.pin_layers_at asg ~net:net_idx ~node)
          ~candidates ~seg_cost ~via_cost
      in
      Array.iteri (fun seg layer -> Assignment.set_layer asg ~net:net_idx ~seg ~layer) chosen

let optimize asg ~released =
  let order = Array.map (fun i -> (Critical.net_tcp asg i, i)) released in
  Array.sort (fun (a, _) (b, _) -> compare b a) order;
  Array.iter (fun (_, net_idx) -> reassign_net asg net_idx) order;
  { nets_reassigned = Array.length released }
