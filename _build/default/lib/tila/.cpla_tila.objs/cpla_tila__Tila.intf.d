lib/tila/tila.mli: Cpla_route
