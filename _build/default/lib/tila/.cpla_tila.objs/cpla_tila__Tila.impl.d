lib/tila/tila.ml: Array Assignment Cpla_grid Cpla_route Cpla_timing Critical Elmore Float Graph Hashtbl List Net Option Segment Stree Tech
