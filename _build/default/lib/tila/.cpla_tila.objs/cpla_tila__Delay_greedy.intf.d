lib/tila/delay_greedy.mli: Cpla_route
