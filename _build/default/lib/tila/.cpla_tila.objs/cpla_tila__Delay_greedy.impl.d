lib/tila/delay_greedy.ml: Array Assignment Cpla_grid Cpla_route Cpla_timing Critical Elmore Graph Segment Tech Tree_dp
