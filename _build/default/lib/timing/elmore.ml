open Cpla_grid
open Cpla_route

type detail = {
  seg_cd : float array;
  seg_delay : float array;
  node_delay : float array;
  sink_delays : (int * float) array;
  worst_delay : float;
  worst_node : int;
  total_cap : float;
}

let seg_ts ~tech ~len ~layer ~cd =
  let flen = float_of_int len in
  let r = Tech.unit_r tech layer *. flen in
  let c = Tech.unit_c tech layer *. flen in
  r *. ((c /. 2.0) +. cd)

let via_tv ~tech ~lo ~hi ~cd_min = Tech.via_r_span tech ~lo ~hi *. cd_min

let no_tree_detail tech net =
  let sinks = Net.sinks net in
  let load = float_of_int (Array.length sinks) *. tech.Tech.sink_c in
  let d = tech.Tech.driver_r *. load in
  {
    seg_cd = [||];
    seg_delay = [||];
    node_delay = [||];
    sink_delays = Array.map (fun _ -> (-1, d)) sinks;
    worst_delay = d;
    worst_node = -1;
    total_cap = load;
  }

let analyze asg net_idx =
  let tech = Assignment.tech asg in
  let net = Assignment.net asg net_idx in
  match Assignment.tree asg net_idx with
  | None -> no_tree_detail tech net
  | Some tree ->
      let segs = Assignment.segments asg net_idx in
      let node_to_seg = Assignment.node_to_seg asg net_idx in
      let layer_of seg =
        let l = Assignment.layer asg ~net:net_idx ~seg in
        if l < 0 then invalid_arg "Elmore.analyze: unassigned segment";
        l
      in
      let n = Stree.num_nodes tree in
      let children = Stree.children tree in
      let src = Net.source net in
      (* sink load at each node: every pin at the node except the source *)
      let node_load = Array.make n 0.0 in
      Array.iter
        (fun p ->
          if not (p.Net.px = src.Net.px && p.Net.py = src.Net.py) then begin
            match Stree.find_node tree (p.Net.px, p.Net.py) with
            | Some i -> node_load.(i) <- node_load.(i) +. tech.Tech.sink_c
            | None -> ()
          end)
        net.Net.pins;
      (* Bottom-up: Cd per node.  node_cd.(v) = load(v) + Σ_children (wire cap
         of child seg + node_cd(child)). *)
      let node_cd = Array.make n 0.0 in
      let order =
        (* reverse pre-order gives children before parents *)
        let acc = ref [] in
        let stack = Stack.create () in
        Stack.push tree.Stree.root stack;
        while not (Stack.is_empty stack) do
          let v = Stack.pop stack in
          acc := v :: !acc;
          Array.iter (fun c -> Stack.push c stack) children.(v)
        done;
        !acc
      in
      let seg_wire_cap = Array.make (Array.length segs) 0.0 in
      List.iter
        (fun v ->
          let acc = ref node_load.(v) in
          Array.iter
            (fun c ->
              let seg = node_to_seg.(c) in
              let cap =
                Tech.unit_c tech (layer_of seg) *. float_of_int segs.(seg).Segment.len
              in
              seg_wire_cap.(seg) <- cap;
              acc := !acc +. cap +. node_cd.(c))
            children.(v);
          node_cd.(v) <- !acc)
        order;
      let seg_cd = Array.make (Array.length segs) 0.0 in
      for v = 0 to n - 1 do
        let seg = node_to_seg.(v) in
        if seg >= 0 then seg_cd.(seg) <- node_cd.(v)
      done;
      (* Top-down: Elmore delay per node. *)
      let node_delay = Array.make n 0.0 in
      let seg_delay = Array.make (Array.length segs) 0.0 in
      let total_cap = node_cd.(tree.Stree.root) in
      node_delay.(tree.Stree.root) <- tech.Tech.driver_r *. total_cap;
      (* layer "seen" at a node on the way down: the layer of the edge above
         it, or the source pin layer at the root *)
      let upstream_layer v =
        let seg = node_to_seg.(v) in
        if seg >= 0 then layer_of seg else src.Net.pl
      in
      let rec down v =
        Array.iter
          (fun c ->
            let seg = node_to_seg.(c) in
            let l = layer_of seg in
            let up = upstream_layer v in
            let tv =
              via_tv ~tech ~lo:(min l up) ~hi:(max l up) ~cd_min:(Float.min seg_cd.(seg) node_cd.(v))
            in
            let ts = seg_ts ~tech ~len:segs.(seg).Segment.len ~layer:l ~cd:seg_cd.(seg) in
            seg_delay.(seg) <- ts;
            node_delay.(c) <- node_delay.(v) +. tv +. ts;
            down c)
          children.(v)
      in
      down tree.Stree.root;
      (* Sink delays including the pin via. *)
      let sink_list = ref [] in
      Array.iter
        (fun p ->
          if not (p.Net.px = src.Net.px && p.Net.py = src.Net.py) then begin
            match Stree.find_node tree (p.Net.px, p.Net.py) with
            | Some v ->
                let up = upstream_layer v in
                let pl = p.Net.pl in
                let pin_via =
                  via_tv ~tech ~lo:(min up pl) ~hi:(max up pl) ~cd_min:tech.Tech.sink_c
                in
                sink_list := (v, node_delay.(v) +. pin_via) :: !sink_list
            | None -> ()
          end)
        net.Net.pins;
      let sink_delays = Array.of_list (List.rev !sink_list) in
      let worst_node = ref (-1) and worst_delay = ref 0.0 in
      Array.iter
        (fun (v, d) ->
          if d > !worst_delay then begin
            worst_delay := d;
            worst_node := v
          end)
        sink_delays;
      {
        seg_cd;
        seg_delay;
        node_delay;
        sink_delays;
        worst_delay = !worst_delay;
        worst_node = !worst_node;
        total_cap;
      }
