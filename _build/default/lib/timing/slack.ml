open Cpla_grid
open Cpla_route

type budget =
  | Clock of float
  | Scaled of float

type report = {
  slacks : float array;
  wns : float;
  tns : float;
  violations : int;
}

(* Zero-load lower bound: route length on the fastest layers with no
   congestion or via detours — the best this net could ever do. *)
let lower_bound_delay asg net_idx =
  let tech = Assignment.tech asg in
  let nl = Tech.num_layers tech in
  let best_r = Tech.unit_r tech (nl - 1) in
  let best_c = Tech.unit_c tech 0 in
  match Assignment.tree asg net_idx with
  | None -> tech.Tech.driver_r *. tech.Tech.sink_c
  | Some tree ->
      let wl = float_of_int (Stree.total_wirelength tree) in
      let sinks = float_of_int (Array.length (Net.sinks (Assignment.net asg net_idx))) in
      let total_cap = (best_c *. wl) +. (sinks *. tech.Tech.sink_c) in
      (tech.Tech.driver_r *. total_cap) +. (best_r *. wl *. (total_cap /. 2.0))

let budget_of_net asg budget net_idx =
  match budget with
  | Clock period -> period
  | Scaled factor -> factor *. lower_bound_delay asg net_idx

let analyze asg budget =
  let n = Assignment.num_nets asg in
  let slacks =
    Array.init n (fun i ->
        let required = budget_of_net asg budget i in
        let arrival = (Elmore.analyze asg i).Elmore.worst_delay in
        required -. arrival)
  in
  let wns = ref 0.0 and tns = ref 0.0 and violations = ref 0 in
  Array.iter
    (fun s ->
      if s < 0.0 then begin
        incr violations;
        tns := !tns +. s;
        if s < !wns then wns := s
      end)
    slacks;
  { slacks; wns = !wns; tns = !tns; violations = !violations }

let select_violating asg budget ~max_nets =
  let report = analyze asg budget in
  let keyed = Array.mapi (fun i s -> (s, i)) report.slacks in
  Array.sort compare keyed;
  Array.to_list keyed
  |> List.filter (fun (s, i) -> s < 0.0 && Array.length (Assignment.segments asg i) > 0)
  |> List.filteri (fun rank _ -> rank < max_nets)
  |> List.map snd
  |> Array.of_list
