lib/timing/slack.ml: Array Assignment Cpla_grid Cpla_route Elmore List Net Stree Tech
