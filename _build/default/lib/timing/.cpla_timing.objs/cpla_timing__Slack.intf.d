lib/timing/slack.mli: Cpla_route
