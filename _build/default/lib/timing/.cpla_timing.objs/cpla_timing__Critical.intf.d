lib/timing/critical.mli: Cpla_route Elmore
