lib/timing/elmore.ml: Array Assignment Cpla_grid Cpla_route Float List Net Segment Stack Stree Tech
