lib/timing/elmore.mli: Cpla_grid Cpla_route
