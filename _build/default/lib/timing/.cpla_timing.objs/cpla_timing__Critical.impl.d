lib/timing/critical.ml: Array Assignment Cpla_grid Cpla_route Cpla_util Elmore Float Hashtbl List Option Segment Stree Tech
