(** Cholesky factorisation and positive-definite solves.

    Used by the SDP solver tests to certify positive semidefiniteness of
    recovered moment matrices, and by the least-squares refinement steps. *)

exception Not_positive_definite of int
(** Raised with the offending pivot index when the input is not (numerically)
    positive definite. *)

val factor : Mat.t -> Mat.t
(** [factor a] returns the lower-triangular [l] with [l lᵀ = a].  The input
    must be symmetric; only the lower triangle is read.
    @raise Not_positive_definite if a pivot falls below a small tolerance. *)

val solve : Mat.t -> Vec.t -> Vec.t
(** [solve a b] solves [a x = b] for symmetric positive-definite [a] via
    [factor]. *)

val is_psd : ?shift:float -> Mat.t -> bool
(** [is_psd a] tests positive semidefiniteness by attempting a factorisation
    of [a + shift·I] (default shift [1e-9] to absorb round-off). *)
