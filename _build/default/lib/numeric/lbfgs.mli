(** Limited-memory BFGS minimisation.

    The inner solver of the Burer–Monteiro SDP engine: minimises a smooth
    unconstrained objective given a value-and-gradient oracle.  Two-loop
    recursion with Armijo backtracking; deterministic, allocation-light. *)

type result = {
  x : Vec.t;          (** minimiser found *)
  f : float;          (** objective at [x] *)
  grad_norm : float;  (** infinity norm of the gradient at [x] *)
  iterations : int;   (** outer iterations performed *)
  converged : bool;   (** gradient tolerance reached before iteration cap *)
}

val minimize :
  ?memory:int ->
  ?max_iter:int ->
  ?grad_tol:float ->
  f:(Vec.t -> float * Vec.t) ->
  Vec.t ->
  result
(** [minimize ~f x0] minimises [f] starting at [x0].  [f x] must return the
    objective value and a freshly allocated gradient.  [memory] is the number
    of curvature pairs retained (default 8); [grad_tol] is the stopping
    threshold on the gradient infinity norm (default 1e-6); [max_iter]
    defaults to 500.  [x0] is not modified. *)
