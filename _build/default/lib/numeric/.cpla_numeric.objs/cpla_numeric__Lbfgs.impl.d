lib/numeric/lbfgs.ml: Array List Vec
