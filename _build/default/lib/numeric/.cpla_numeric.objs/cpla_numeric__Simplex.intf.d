lib/numeric/simplex.mli:
