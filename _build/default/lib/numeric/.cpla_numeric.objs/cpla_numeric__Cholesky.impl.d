lib/numeric/cholesky.ml: Array Float Mat
