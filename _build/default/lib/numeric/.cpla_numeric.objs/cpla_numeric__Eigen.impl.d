lib/numeric/eigen.ml: Array Float Mat
