lib/numeric/cholesky.mli: Mat Vec
