lib/numeric/lbfgs.mli: Vec
