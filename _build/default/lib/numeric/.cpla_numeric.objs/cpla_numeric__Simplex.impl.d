lib/numeric/simplex.ml: Array Float
