lib/numeric/vec.mli:
