lib/numeric/eigen.mli: Mat Vec
