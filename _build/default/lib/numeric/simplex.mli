(** Dense two-phase primal simplex.

    Linear-programming substrate for the branch-and-bound ILP solver that
    replaces GUROBI in this reproduction.  Solves

      minimise cᵀx  subject to  a_k x (≤ | ≥ | =) b_k,  x ≥ 0.

    Dense tableau implementation with Bland's anti-cycling rule engaged
    after a run of degenerate pivots; sized for the partitioned
    layer-assignment subproblems (hundreds of rows and columns). *)

type relation = Le | Ge | Eq

type problem = {
  objective : float array;  (** cost vector [c]; length fixes the variable count *)
  rows : (float array * relation * float) array;
      (** each row is [(coefficients, relation, rhs)]; coefficient arrays must
          match the objective length *)
}

type solution = {
  x : float array;     (** primal optimum *)
  objective : float;   (** cᵀx at the optimum *)
  iterations : int;    (** total pivots over both phases *)
}

type status =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Iteration_limit

val solve : ?max_pivots:int -> problem -> status
(** Solve the LP.  [max_pivots] (default 20000) bounds total pivots across
    both phases; hitting it yields [Iteration_limit].
    @raise Invalid_argument on ragged coefficient rows. *)

val feasible : ?tol:float -> problem -> float array -> bool
(** [feasible p x] checks [x] against every row of [p] and non-negativity,
    within [tol] (default 1e-6).  Used by tests and by branch-and-bound to
    validate incumbents. *)
