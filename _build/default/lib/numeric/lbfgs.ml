type result = {
  x : Vec.t;
  f : float;
  grad_norm : float;
  iterations : int;
  converged : bool;
}

(* Two-loop recursion computing the search direction -H·g from the stored
   (s, y) curvature pairs; [pairs] is newest-first. *)
let direction pairs g =
  let q = Vec.copy g in
  let alphas =
    List.map
      (fun (s, y, rho) ->
        let alpha = rho *. Vec.dot s q in
        Vec.axpy ~alpha:(-.alpha) y q;
        (s, y, rho, alpha))
      pairs
  in
  (match pairs with
  | [] -> ()
  | (s, y, _) :: _ ->
      let yy = Vec.dot y y in
      if yy > 0.0 then Vec.scale (Vec.dot s y /. yy) q);
  List.iter
    (fun (s, y, rho, alpha) ->
      let beta = rho *. Vec.dot y q in
      Vec.axpy ~alpha:(alpha -. beta) s q)
    (List.rev alphas);
  Vec.scale (-1.0) q;
  q

let minimize ?(memory = 8) ?(max_iter = 500) ?(grad_tol = 1e-6) ~f x0 =
  let x = Vec.copy x0 in
  let fx = ref 0.0 and g = ref (Vec.create (Array.length x0)) in
  let eval v =
    let value, grad = f v in
    fx := value;
    g := grad
  in
  eval x;
  let pairs = ref [] in
  let iter = ref 0 in
  let converged = ref (Vec.norm_inf !g <= grad_tol) in
  while (not !converged) && !iter < max_iter do
    let d = direction !pairs !g in
    let slope = Vec.dot d !g in
    (* Guard against a non-descent direction from stale curvature pairs. *)
    let d, slope =
      if slope < 0.0 then (d, slope)
      else begin
        let d = Vec.copy !g in
        Vec.scale (-1.0) d;
        (d, -.Vec.dot !g !g)
      end
    in
    let f0 = !fx and x0' = Vec.copy x and g0 = Vec.copy !g in
    (* Armijo backtracking line search. *)
    let step = ref 1.0 and accepted = ref false and tries = ref 0 in
    while (not !accepted) && !tries < 30 do
      let xt = Vec.copy x0' in
      Vec.axpy ~alpha:!step d xt;
      let value, grad = f xt in
      if value <= f0 +. (1e-4 *. !step *. slope) then begin
        Array.blit xt 0 x 0 (Array.length x);
        fx := value;
        g := grad;
        accepted := true
      end
      else begin
        step := !step *. 0.5;
        incr tries
      end
    done;
    if not !accepted then converged := true (* line search stalled: local flat *)
    else begin
      let s = Vec.sub x x0' in
      let y = Vec.sub !g g0 in
      let sy = Vec.dot s y in
      if sy > 1e-12 then begin
        let pair = (s, y, 1.0 /. sy) in
        pairs := pair :: (if List.length !pairs >= memory then List.filteri (fun i _ -> i < memory - 1) !pairs else !pairs)
      end;
      if Vec.norm_inf !g <= grad_tol then converged := true
    end;
    incr iter
  done;
  { x; f = !fx; grad_norm = Vec.norm_inf !g; iterations = !iter; converged = !converged }
