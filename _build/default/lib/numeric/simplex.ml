type relation = Le | Ge | Eq

type problem = {
  objective : float array;
  rows : (float array * relation * float) array;
}

type solution = { x : float array; objective : float; iterations : int }

type status = Optimal of solution | Infeasible | Unbounded | Iteration_limit

let eps = 1e-9

(* The tableau keeps B⁻¹A in [t] (m rows, [ncols] columns) with the rhs in
   [rhs]; [basis.(i)] is the column basic in row i.  Columns are laid out as
   structural variables, then slack/surplus, then artificials. *)
type tableau = {
  m : int;
  ncols : int;
  t : float array array;
  rhs : float array;
  basis : int array;
  artificial_from : int; (* columns >= this are artificial *)
}

let build (problem : problem) =
  let n = Array.length problem.objective in
  Array.iter
    (fun (coeffs, _, _) ->
      if Array.length coeffs <> n then invalid_arg "Simplex.solve: ragged row")
    problem.rows;
  let m = Array.length problem.rows in
  (* Normalise to non-negative rhs. *)
  let rows =
    Array.map
      (fun (coeffs, rel, b) ->
        if b < 0.0 then
          ( Array.map (fun v -> -.v) coeffs,
            (match rel with Le -> Ge | Ge -> Le | Eq -> Eq),
            -.b )
        else (Array.copy coeffs, rel, b))
      problem.rows
  in
  let n_slack = Array.fold_left (fun a (_, rel, _) -> match rel with Eq -> a | Le | Ge -> a + 1) 0 rows in
  let n_art = Array.fold_left (fun a (_, rel, _) -> match rel with Le -> a | Ge | Eq -> a + 1) 0 rows in
  let ncols = n + n_slack + n_art in
  let t = Array.make_matrix m ncols 0.0 in
  let rhs = Array.make m 0.0 in
  let basis = Array.make m (-1) in
  let slack = ref n and art = ref (n + n_slack) in
  Array.iteri
    (fun i (coeffs, rel, b) ->
      Array.blit coeffs 0 t.(i) 0 n;
      rhs.(i) <- b;
      (match rel with
      | Le ->
          t.(i).(!slack) <- 1.0;
          basis.(i) <- !slack;
          incr slack
      | Ge ->
          t.(i).(!slack) <- -1.0;
          incr slack;
          t.(i).(!art) <- 1.0;
          basis.(i) <- !art;
          incr art
      | Eq ->
          t.(i).(!art) <- 1.0;
          basis.(i) <- !art;
          incr art))
    rows;
  { m; ncols; t; rhs; basis; artificial_from = n + n_slack }

let pivot tab ~row ~col =
  let p = tab.t.(row).(col) in
  let trow = tab.t.(row) in
  let inv = 1.0 /. p in
  for j = 0 to tab.ncols - 1 do
    trow.(j) <- trow.(j) *. inv
  done;
  tab.rhs.(row) <- tab.rhs.(row) *. inv;
  for i = 0 to tab.m - 1 do
    if i <> row then begin
      let factor = tab.t.(i).(col) in
      if Float.abs factor > 0.0 then begin
        let ti = tab.t.(i) in
        for j = 0 to tab.ncols - 1 do
          ti.(j) <- ti.(j) -. (factor *. trow.(j))
        done;
        tab.rhs.(i) <- tab.rhs.(i) -. (factor *. tab.rhs.(row))
      end
    end
  done;
  tab.basis.(row) <- col

(* Reduced costs for cost vector [c] (length ncols) under the current basis:
   c̄_j = c_j − Σ_i c_{B(i)} · t_{ij}. *)
let reduced_costs tab c =
  let cb = Array.map (fun b -> c.(b)) tab.basis in
  let rc = Array.copy c in
  for i = 0 to tab.m - 1 do
    let cbi = cb.(i) in
    if Float.abs cbi > 0.0 then begin
      let ti = tab.t.(i) in
      for j = 0 to tab.ncols - 1 do
        rc.(j) <- rc.(j) -. (cbi *. ti.(j))
      done
    end
  done;
  rc

let objective_value tab c =
  let acc = ref 0.0 in
  for i = 0 to tab.m - 1 do
    acc := !acc +. (c.(tab.basis.(i)) *. tab.rhs.(i))
  done;
  !acc

(* Run simplex iterations on cost vector [c]; [blocked.(j)] columns may not
   enter the basis.  Returns [`Optimal], [`Unbounded] or [`Limit]. *)
let iterate tab c blocked pivots max_pivots =
  let degenerate_run = ref 0 in
  let result = ref None in
  while !result = None do
    if !pivots >= max_pivots then result := Some `Limit
    else begin
      let rc = reduced_costs tab c in
      (* Entering column: Dantzig (most negative) normally, Bland (first
         negative) once degeneracy persists, to guarantee termination. *)
      let enter = ref (-1) in
      if !degenerate_run > 2 * tab.m then begin
        (try
           for j = 0 to tab.ncols - 1 do
             if (not blocked.(j)) && rc.(j) < -.eps then begin
               enter := j;
               raise Exit
             end
           done
         with Exit -> ())
      end
      else begin
        let best = ref (-.eps) in
        for j = 0 to tab.ncols - 1 do
          if (not blocked.(j)) && rc.(j) < !best then begin
            best := rc.(j);
            enter := j
          end
        done
      end;
      if !enter < 0 then result := Some `Optimal
      else begin
        let col = !enter in
        let leave = ref (-1) and best_ratio = ref infinity in
        for i = 0 to tab.m - 1 do
          let a = tab.t.(i).(col) in
          if a > eps then begin
            let ratio = tab.rhs.(i) /. a in
            if
              ratio < !best_ratio -. eps
              || (ratio < !best_ratio +. eps && (!leave < 0 || tab.basis.(i) < tab.basis.(!leave)))
            then begin
              best_ratio := ratio;
              leave := i
            end
          end
        done;
        if !leave < 0 then result := Some `Unbounded
        else begin
          if !best_ratio < eps then incr degenerate_run else degenerate_run := 0;
          pivot tab ~row:!leave ~col;
          incr pivots
        end
      end
    end
  done;
  match !result with Some r -> r | None -> assert false

let extract tab n =
  let x = Array.make n 0.0 in
  for i = 0 to tab.m - 1 do
    if tab.basis.(i) < n then x.(tab.basis.(i)) <- tab.rhs.(i)
  done;
  x

let solve ?(max_pivots = 20000) (problem : problem) =
  let n = Array.length problem.objective in
  let tab = build problem in
  let pivots = ref 0 in
  let blocked = Array.make tab.ncols false in
  (* Phase 1: minimise the sum of artificials. *)
  let phase1_cost = Array.make tab.ncols 0.0 in
  for j = tab.artificial_from to tab.ncols - 1 do
    phase1_cost.(j) <- 1.0
  done;
  let has_artificials = tab.artificial_from < tab.ncols in
  let phase1 =
    if has_artificials then iterate tab phase1_cost blocked pivots max_pivots else `Optimal
  in
  match phase1 with
  | `Limit -> Iteration_limit
  | `Unbounded -> Infeasible (* phase-1 objective is bounded below by 0 *)
  | `Optimal ->
      if has_artificials && objective_value tab phase1_cost > 1e-6 then Infeasible
      else begin
        (* Drive any artificial still basic (at zero) out of the basis. *)
        for i = 0 to tab.m - 1 do
          if tab.basis.(i) >= tab.artificial_from then begin
            let found = ref (-1) in
            (try
               for j = 0 to tab.artificial_from - 1 do
                 if Float.abs tab.t.(i).(j) > eps then begin
                   found := j;
                   raise Exit
                 end
               done
             with Exit -> ());
            if !found >= 0 then pivot tab ~row:i ~col:!found
            (* else: redundant row; the artificial stays basic at zero and is
               blocked from moving, which is harmless. *)
          end
        done;
        for j = tab.artificial_from to tab.ncols - 1 do
          blocked.(j) <- true
        done;
        let phase2_cost = Array.make tab.ncols 0.0 in
        Array.blit problem.objective 0 phase2_cost 0 n;
        match iterate tab phase2_cost blocked pivots max_pivots with
        | `Limit -> Iteration_limit
        | `Unbounded -> Unbounded
        | `Optimal ->
            let x = extract tab n in
            Optimal { x; objective = objective_value tab phase2_cost; iterations = !pivots }
      end

let feasible ?(tol = 1e-6) (problem : problem) x =
  Array.length x = Array.length problem.objective
  && Array.for_all (fun v -> v >= -.tol) x
  && Array.for_all
       (fun (coeffs, rel, b) ->
         let lhs = ref 0.0 in
         Array.iteri (fun i c -> lhs := !lhs +. (c *. x.(i))) coeffs;
         match rel with
         | Le -> !lhs <= b +. tol
         | Ge -> !lhs >= b -. tol
         | Eq -> Float.abs (!lhs -. b) <= tol)
       problem.rows
