(** Symmetric eigendecomposition by the cyclic Jacobi method.

    The SDP solver's optimality check and the PSD projection used in tests
    need full spectra of moderate-size symmetric matrices; Jacobi is robust
    and simple at these sizes (n ≲ 500). *)

val decompose : ?max_sweeps:int -> ?tol:float -> Mat.t -> Vec.t * Mat.t
(** [decompose a] returns [(eigenvalues, v)] with columns of [v] the
    corresponding orthonormal eigenvectors, so that [a = v diag(w) vᵀ].
    Eigenvalues are sorted ascending.  The input must be symmetric (only
    checked loosely); it is not modified. *)

val min_eigenvalue : Mat.t -> float
(** Smallest eigenvalue of a symmetric matrix. *)

val project_psd : Mat.t -> Mat.t
(** Nearest (Frobenius) positive-semidefinite matrix: negative eigenvalues
    clipped to zero. *)
