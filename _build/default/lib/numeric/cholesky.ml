exception Not_positive_definite of int

let factor a =
  if a.Mat.rows <> a.Mat.cols then invalid_arg "Cholesky.factor: square matrix required";
  let n = a.Mat.rows in
  let l = Mat.create n n in
  for j = 0 to n - 1 do
    let s = ref (Mat.get a j j) in
    for k = 0 to j - 1 do
      s := !s -. (Mat.get l j k *. Mat.get l j k)
    done;
    if !s <= 1e-14 then raise (Not_positive_definite j);
    let diag = sqrt !s in
    Mat.set l j j diag;
    for i = j + 1 to n - 1 do
      let s = ref (Mat.get a i j) in
      for k = 0 to j - 1 do
        s := !s -. (Mat.get l i k *. Mat.get l j k)
      done;
      Mat.set l i j (!s /. diag)
    done
  done;
  l

let solve a b =
  let n = a.Mat.rows in
  if Array.length b <> n then invalid_arg "Cholesky.solve: dimension mismatch";
  let l = factor a in
  (* forward substitution: l y = b *)
  let y = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let s = ref b.(i) in
    for k = 0 to i - 1 do
      s := !s -. (Mat.get l i k *. y.(k))
    done;
    y.(i) <- !s /. Mat.get l i i
  done;
  (* back substitution: lᵀ x = y *)
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let s = ref y.(i) in
    for k = i + 1 to n - 1 do
      s := !s -. (Mat.get l k i *. x.(k))
    done;
    x.(i) <- !s /. Mat.get l i i
  done;
  x

let is_psd ?(shift = 1e-9) a =
  let n = a.Mat.rows in
  let scale = Float.max 1.0 (Mat.frobenius a) in
  let shifted = Mat.init n n (fun i j -> Mat.get a i j +. if i = j then shift *. scale else 0.0) in
  match factor shifted with
  | (_ : Mat.t) -> true
  | exception Not_positive_definite _ -> false
