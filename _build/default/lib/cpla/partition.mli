(** Self-adaptive quadruple partitioning (Section 3.2).

    The grid is first cut into K×K uniform cells; every cell holding more
    than [max_segments] critical segments is recursively quartered
    (quadtree) until the bound holds or the cell shrinks to a single tile
    (the paper's deadlock guard).  Each critical segment belongs to exactly
    one leaf — the one containing its midpoint tile. *)

type item = {
  net : int;
  seg : int;
  mid : int * int;  (** midpoint tile of the segment *)
}

type leaf = {
  x0 : int;
  y0 : int;
  x1 : int;  (** inclusive *)
  y1 : int;  (** inclusive *)
  depth : int;   (** quadtree depth below the uniform K×K cut (0 = no split) *)
  items : item list;
}

val build :
  width:int -> height:int -> k:int -> max_segments:int -> item list -> leaf list
(** Leaves with at least one item, in deterministic (row-major, then
    quadrant) order.
    @raise Invalid_argument when [k <= 0] or [max_segments <= 0]. *)

val stats : leaf list -> int * int * float
(** (number of leaves, max depth, mean items per leaf). *)
