type item = {
  net : int;
  seg : int;
  mid : int * int;
}

type leaf = {
  x0 : int;
  y0 : int;
  x1 : int;
  y1 : int;
  depth : int;
  items : item list;
}

let build ~width ~height ~k ~max_segments items =
  if k <= 0 then invalid_arg "Partition.build: k must be positive";
  if max_segments <= 0 then invalid_arg "Partition.build: max_segments must be positive";
  let cell_w = max 1 ((width + k - 1) / k) in
  let cell_h = max 1 ((height + k - 1) / k) in
  (* Quadtree subdivision of one cell. *)
  let rec subdivide x0 y0 x1 y1 depth cell_items acc =
    let count = List.length cell_items in
    if count = 0 then acc
    else if count <= max_segments || (x1 <= x0 && y1 <= y0) then
      { x0; y0; x1; y1; depth; items = cell_items } :: acc
    else begin
      let mx = (x0 + x1) / 2 and my = (y0 + y1) / 2 in
      let quadrant { mid = x, y; _ } =
        (if x > mx then 1 else 0) lor if y > my then 2 else 0
      in
      let buckets = [| []; []; []; [] |] in
      List.iter (fun it -> buckets.(quadrant it) <- it :: buckets.(quadrant it)) cell_items;
      (* If every item landed in one quadrant and the cell cannot shrink in
         that quadrant's direction, stop to avoid a deadlock. *)
      let bounds = function
        | 0 -> (x0, y0, mx, my)
        | 1 -> (min (mx + 1) x1, y0, x1, my)
        | 2 -> (x0, min (my + 1) y1, mx, y1)
        | _ -> (min (mx + 1) x1, min (my + 1) y1, x1, y1)
      in
      let progress =
        Array.exists (fun b -> b <> [] ) buckets
        && not
             (Array.exists (fun b -> List.length b = count) buckets
             && x1 - x0 <= 1 && y1 - y0 <= 1)
      in
      if not progress then { x0; y0; x1; y1; depth; items = cell_items } :: acc
      else begin
        let acc = ref acc in
        for q = 0 to 3 do
          let qx0, qy0, qx1, qy1 = bounds q in
          if buckets.(q) <> [] then begin
            if qx1 < qx0 || qy1 < qy0 then
              (* degenerate quadrant: emit as its own leaf *)
              acc := { x0 = qx0; y0 = qy0; x1 = max qx0 qx1; y1 = max qy0 qy1;
                       depth = depth + 1; items = List.rev buckets.(q) } :: !acc
            else acc := subdivide qx0 qy0 qx1 qy1 (depth + 1) (List.rev buckets.(q)) !acc
          end
        done;
        !acc
      end
    end
  in
  (* Distribute items into the K×K cells. *)
  let cells = Hashtbl.create (k * k) in
  List.iter
    (fun it ->
      let x, y = it.mid in
      let cx = min (k - 1) (x / cell_w) and cy = min (k - 1) (y / cell_h) in
      let key = (cx, cy) in
      Hashtbl.replace cells key (it :: Option.value ~default:[] (Hashtbl.find_opt cells key)))
    items;
  let leaves = ref [] in
  for cy = k - 1 downto 0 do
    for cx = k - 1 downto 0 do
      match Hashtbl.find_opt cells (cx, cy) with
      | None -> ()
      | Some cell_items ->
          let x0 = cx * cell_w and y0 = cy * cell_h in
          let x1 = min (width - 1) (((cx + 1) * cell_w) - 1) in
          let y1 = min (height - 1) (((cy + 1) * cell_h) - 1) in
          leaves := subdivide x0 y0 x1 y1 0 (List.rev cell_items) !leaves
    done
  done;
  !leaves

let stats leaves =
  let n = List.length leaves in
  let max_depth = List.fold_left (fun a l -> max a l.depth) 0 leaves in
  let total_items = List.fold_left (fun a l -> a + List.length l.items) 0 leaves in
  (n, max_depth, if n = 0 then 0.0 else float_of_int total_items /. float_of_int n)
