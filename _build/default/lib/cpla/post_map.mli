(** Post-mapping algorithm (Alg. 1 of Section 3.4).

    Turns the SDP's fractional x values into an integral, capacity-feasible
    layer assignment: layers are visited from the highest down (high layers
    have the lowest resistance, so they are the contended resource); on each
    layer the still-unassigned segments are ranked by their fractional
    value and greedily committed while every grid edge they cover retains
    free capacity.  Anything still unassigned afterwards falls back to the
    least-overflowing layer, mirroring the V_o relief of the ILP. *)

val run :
  Cpla_route.Assignment.t ->
  vars:Formulation.var array ->
  x:(int -> int -> float) ->
  unit
(** [run asg ~vars ~x] commits every var to a layer via
    [Assignment.set_layer].  [x vi ci] is the fractional value of var [vi]'s
    candidate [ci].  Requires all vars currently unassigned. *)

val fallback_layer : Cpla_route.Assignment.t -> Formulation.var -> int
(** The layer a var receives when no candidate has capacity: maximises the
    minimum free capacity over its edges (ties to the higher layer).
    Exposed for tests. *)
