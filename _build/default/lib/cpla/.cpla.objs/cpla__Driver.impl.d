lib/cpla/driver.ml: Array Assignment Config Cpla_grid Cpla_route Cpla_timing Cpla_util Critical Float Formulation Hashtbl Ilp_method List Partition Post_map Sdp_method Segment
