lib/cpla/post_map.ml: Array Assignment Cpla_grid Cpla_route Formulation Graph List Tech
