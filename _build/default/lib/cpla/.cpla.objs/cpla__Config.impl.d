lib/cpla/config.ml: Cpla_ilp Cpla_sdp
