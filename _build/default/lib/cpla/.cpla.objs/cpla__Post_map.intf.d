lib/cpla/post_map.mli: Cpla_route Formulation
