lib/cpla/formulation.mli: Cpla_grid Cpla_route Cpla_timing Hashtbl Partition
