lib/cpla/ilp_method.mli: Cpla_ilp Formulation
