lib/cpla/partition.mli:
