lib/cpla/sdp_method.mli: Cpla_sdp Formulation
