lib/cpla/metrics.mli: Cpla_route Format
