lib/cpla/partition.ml: Array Hashtbl List Option
