lib/cpla/formulation.ml: Array Assignment Cpla_grid Cpla_route Cpla_timing Critical Elmore Float Graph Hashtbl List Option Partition Segment Stree Tech
