lib/cpla/ilp_method.ml: Array Cpla_ilp Cpla_numeric Formulation List Simplex
