lib/cpla/sdp_method.ml: Array Cpla_sdp Float Formulation List Problem Solver
