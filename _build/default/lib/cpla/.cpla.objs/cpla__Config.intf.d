lib/cpla/config.mli: Cpla_ilp Cpla_sdp
