lib/cpla/metrics.ml: Assignment Cpla_grid Cpla_route Cpla_timing Critical Format
