lib/cpla/driver.mli: Config Cpla_route
