lib/expt/suite.mli: Cpla_route
