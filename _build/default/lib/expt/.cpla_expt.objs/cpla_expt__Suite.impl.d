lib/expt/suite.ml: Assignment Cpla_route Init_assign List Router Synth
