lib/expt/experiments.mli: Cpla Suite
