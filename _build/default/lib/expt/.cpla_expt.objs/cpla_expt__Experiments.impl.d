lib/expt/experiments.ml: Array Cpla Cpla_grid Cpla_route Cpla_sdp Cpla_tila Cpla_timing Cpla_util Critical Float Hashtbl Histogram List Option Printf Stats Suite Table Timer
