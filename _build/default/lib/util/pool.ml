let recommended_workers () = max 1 (Domain.recommended_domain_count () - 1)

exception Worker_failure of exn

let parallel_map ~workers f xs =
  let n = Array.length xs in
  if workers <= 1 || n <= 1 then Array.map f xs
  else begin
    let results = Array.make n None in
    let failure = Atomic.make None in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get failure <> None then continue := false
        else begin
          match f xs.(i) with
          | v -> results.(i) <- Some v
          | exception e -> ignore (Atomic.compare_and_set failure None (Some e))
        end
      done
    in
    let domains = List.init (min workers n) (fun _ -> Domain.spawn worker) in
    List.iter Domain.join domains;
    (match Atomic.get failure with
    | Some e -> raise (Worker_failure e)
    | None -> ());
    Array.map
      (function
        | Some v -> v
        | None -> invalid_arg "Pool.parallel_map: missing result (worker died)")
      results
  end
