(** Monotonic wall-clock timing for the runtime columns of the experiment
    tables. *)

type t
(** A running stopwatch. *)

val start : unit -> t
(** Start a stopwatch now. *)

val elapsed_s : t -> float
(** Seconds since [start]. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the elapsed
    seconds. *)
