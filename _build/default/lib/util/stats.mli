(** Small summary-statistics helpers used by the timing reports and the
    experiment harness. *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val max : float array -> float
(** Maximum; [neg_infinity] on the empty array. *)

val min : float array -> float
(** Minimum; [infinity] on the empty array. *)

val stddev : float array -> float
(** Population standard deviation; 0 on arrays of length < 2. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation between
    order statistics.  Raises [Invalid_argument] on the empty array. *)

val sum : float array -> float
(** Compensated (Kahan) summation. *)

val geometric_mean : float array -> float
(** Geometric mean of positive values; 0 if any value is non-positive. *)
