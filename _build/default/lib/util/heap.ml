type 'a t = {
  mutable keys : float array;
  mutable vals : 'a option array;
  mutable len : int;
}

let create () = { keys = Array.make 16 0.0; vals = Array.make 16 None; len = 0 }

let is_empty t = t.len = 0

let size t = t.len

let grow t =
  let n = Array.length t.keys in
  let keys = Array.make (2 * n) 0.0 and vals = Array.make (2 * n) None in
  Array.blit t.keys 0 keys 0 t.len;
  Array.blit t.vals 0 vals 0 t.len;
  t.keys <- keys;
  t.vals <- vals

let swap t i j =
  let k = t.keys.(i) and v = t.vals.(i) in
  t.keys.(i) <- t.keys.(j);
  t.vals.(i) <- t.vals.(j);
  t.keys.(j) <- k;
  t.vals.(j) <- v

let push t key value =
  if t.len = Array.length t.keys then grow t;
  t.keys.(t.len) <- key;
  t.vals.(t.len) <- Some value;
  t.len <- t.len + 1;
  let i = ref (t.len - 1) in
  while !i > 0 && t.keys.((!i - 1) / 2) > t.keys.(!i) do
    swap t !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let pop_min t =
  if t.len = 0 then None
  else begin
    let key = t.keys.(0) and value = t.vals.(0) in
    t.len <- t.len - 1;
    t.keys.(0) <- t.keys.(t.len);
    t.vals.(0) <- t.vals.(t.len);
    t.vals.(t.len) <- None;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.len && t.keys.(l) < t.keys.(!smallest) then smallest := l;
      if r < t.len && t.keys.(r) < t.keys.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        swap t !i !smallest;
        i := !smallest
      end
      else continue := false
    done;
    match value with Some v -> Some (key, v) | None -> None
  end
