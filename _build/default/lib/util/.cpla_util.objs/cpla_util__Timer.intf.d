lib/util/timer.mli:
