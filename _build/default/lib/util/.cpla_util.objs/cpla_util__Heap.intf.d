lib/util/heap.mli:
