lib/util/pool.mli:
