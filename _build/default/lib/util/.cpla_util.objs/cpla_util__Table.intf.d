lib/util/table.mli:
