lib/util/rng.mli:
