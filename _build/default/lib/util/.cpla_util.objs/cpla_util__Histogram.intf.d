lib/util/histogram.mli:
