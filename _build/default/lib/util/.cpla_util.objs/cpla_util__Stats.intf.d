lib/util/stats.mli:
