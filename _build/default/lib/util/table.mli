(** ASCII table rendering for experiment reports.

    Used by the benchmark harness to print the paper's tables (Table 2) and
    figure data series in a stable, diff-friendly layout. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : headers:string list -> t
(** [create ~headers] starts a table; every row must have the same arity as
    [headers]. *)

val add_row : t -> string list -> unit
(** Append one row.  Raises [Invalid_argument] on arity mismatch. *)

val add_separator : t -> unit
(** Append a horizontal rule (used before summary rows). *)

val render : ?align:align -> t -> string
(** Render with column widths fitted to content.  Default alignment is
    [Right], which suits numeric tables. *)

val print : ?align:align -> t -> unit
(** [render] to stdout followed by a newline flush. *)

val cell_f : ?digits:int -> float -> string
(** Format a float cell with [digits] (default 2) fraction digits. *)

val cell_i : int -> string
(** Format an int cell. *)
