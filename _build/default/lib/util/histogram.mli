(** Fixed-bin histograms with an ASCII rendering, used for the pin-delay
    distribution plots of Fig. 1. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] covers [\[lo, hi)] with [bins] equal-width bins.
    Samples outside the range are clamped into the first/last bin.
    Raises [Invalid_argument] if [bins <= 0] or [hi <= lo]. *)

val add : t -> float -> unit
(** Record one sample. *)

val add_all : t -> float array -> unit
(** Record many samples. *)

val counts : t -> int array
(** A copy of the per-bin counts. *)

val total : t -> int
(** Number of recorded samples. *)

val bin_center : t -> int -> float
(** Mid-point value of bin [i]. *)

val render : ?width:int -> ?label:string -> t -> string
(** Log-scale horizontal bar chart (counts grow exponentially in the paper's
    Fig. 1 y-axis), one line per bin. *)
