type align = Left | Right

type row = Cells of string list | Separator

type t = { headers : string list; mutable rows : row list }

let create ~headers = { headers; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let widths t =
  let n = List.length t.headers in
  let w = Array.make n 0 in
  let feed cells =
    List.iteri (fun i c -> if String.length c > w.(i) then w.(i) <- String.length c) cells
  in
  feed t.headers;
  List.iter (function Cells c -> feed c | Separator -> ()) t.rows;
  w

let pad align width s =
  let fill = width - String.length s in
  if fill <= 0 then s
  else
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s

let render ?(align = Right) t =
  let w = widths t in
  let buf = Buffer.create 256 in
  let rule () =
    Array.iter (fun width -> Buffer.add_string buf ("+" ^ String.make (width + 2) '-')) w;
    Buffer.add_string buf "+\n"
  in
  let line cells =
    List.iteri
      (fun i c ->
        Buffer.add_string buf "| ";
        Buffer.add_string buf (pad align w.(i) c);
        Buffer.add_char buf ' ')
      cells;
    Buffer.add_string buf "|\n"
  in
  rule ();
  line t.headers;
  rule ();
  List.iter (function Cells c -> line c | Separator -> rule ()) (List.rev t.rows);
  rule ();
  Buffer.contents buf

let print ?align t =
  print_string (render ?align t);
  flush stdout

let cell_f ?(digits = 2) v = Printf.sprintf "%.*f" digits v

let cell_i v = string_of_int v
