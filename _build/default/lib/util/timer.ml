type t = float

(* Unix.gettimeofday is unavailable without the unix library dependency in
   every consumer; Sys.time measures CPU seconds which matches the paper's
   CPU(s) column better than wall clock for a single-threaded run. *)
let start () = Sys.time ()

let elapsed_s t = Sys.time () -. t

let time f =
  let t = start () in
  let v = f () in
  (v, elapsed_s t)
