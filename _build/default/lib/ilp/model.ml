open Cpla_numeric

type t = {
  objective : float array;
  rows : (float array * Simplex.relation * float) array;
  binary : bool array;
}

let create ~objective ~rows ~binary =
  let n = Array.length objective in
  if Array.length binary <> n then invalid_arg "Model.create: binary flags length mismatch";
  List.iter
    (fun (coeffs, _, _) ->
      if Array.length coeffs <> n then invalid_arg "Model.create: ragged row")
    rows;
  { objective; rows = Array.of_list rows; binary }

let num_vars t = Array.length t.objective

let relaxation t =
  let n = num_vars t in
  let bound_rows =
    Array.to_list t.binary
    |> List.mapi (fun i b -> (i, b))
    |> List.filter_map (fun (i, b) ->
           if b then begin
             let row = Array.make n 0.0 in
             row.(i) <- 1.0;
             Some (row, Simplex.Le, 1.0)
           end
           else None)
  in
  { Simplex.objective = t.objective; rows = Array.append t.rows (Array.of_list bound_rows) }

let value t x =
  let acc = ref 0.0 in
  Array.iteri (fun i c -> acc := !acc +. (c *. x.(i))) t.objective;
  !acc

let integral ?(tol = 1e-6) t x =
  let ok = ref true in
  Array.iteri
    (fun i b ->
      if b then begin
        let v = x.(i) in
        if Float.abs (v -. Float.round v) > tol then ok := false
      end)
    t.binary;
  !ok

let check ?(tol = 1e-6) t x =
  integral ~tol t x && Simplex.feasible ~tol (relaxation t) x
