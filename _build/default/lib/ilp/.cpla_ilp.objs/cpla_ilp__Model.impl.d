lib/ilp/model.ml: Array Cpla_numeric Float List Simplex
