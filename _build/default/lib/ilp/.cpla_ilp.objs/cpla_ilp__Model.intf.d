lib/ilp/model.mli: Cpla_numeric
