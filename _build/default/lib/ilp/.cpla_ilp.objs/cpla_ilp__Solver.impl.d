lib/ilp/solver.ml: Array Cpla_numeric Cpla_util Float List Model Simplex Stack
