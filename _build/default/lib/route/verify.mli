(** Solution verifier — the role of the contest evaluator.

    Audits a layer-assigned design independently of the incremental
    bookkeeping: connectivity of every net's 3-D wiring, direction
    legality, wire-capacity and via-capacity accounting recomputed from
    scratch, and pin reachability.  Returns a structured report rather than
    a boolean so callers can print or assert on specific classes. *)

type violation =
  | Unassigned_segment of { net : int; seg : int }
  | Direction_mismatch of { net : int; seg : int; layer : int }
  | Edge_overflow of { edge : Cpla_grid.Graph.edge2d; layer : int; usage : int; capacity : int }
  | Via_overflow of { x : int; y : int; crossing : int; usage : int; capacity : int }
  | Pin_unreachable of { net : int; pin : Net.pin }
  | Ledger_mismatch of { description : string }

type report = {
  violations : violation list;
  wirelength : int;        (** total assigned wirelength *)
  via_crossings : int;     (** total via-layer crossings *)
  nets_checked : int;
}

val check : Assignment.t -> report
(** Full audit of the current state.  [Ledger_mismatch] is reported when
    the incremental usage accounting disagrees with the from-scratch
    recount (which would indicate a bug in this library, not the design). *)

val is_clean : report -> bool
(** No violations at all. *)

val pp_violation : Format.formatter -> violation -> unit

val summary : report -> string
(** One-line human summary. *)
