(** Initial (timing-oblivious) layer assignment.

    Net-by-net dynamic programming in the style of the congestion-constrained
    via-minimisation works the paper cites ([5], [6]): each net's segments
    are assigned to minimise via count plus a congestion penalty that rises
    steeply as edge-layer capacity fills, so the result is (near-)legal and
    leaves headroom on high layers.  This produces the "initial routing and
    layer assignment" input of Problem 1 (CPLA). *)

val run : ?order:[ `Hpwl_ascending | `Hpwl_descending ] -> Assignment.t -> unit
(** Assign every segment of every net.  Existing assignments are released
    first.  Default order is [`Hpwl_ascending] (small nets first, mirroring
    the router). *)

val congestion_penalty : free:int -> float
(** The per-edge penalty schedule (exposed for tests): 0 when plenty of
    capacity remains, rising steeply near saturation, very large once the
    edge would overflow. *)
