type point = int * int

open Cpla_grid

let route ~width ~height ~cost ~sources ~targets =
  if sources = [] || targets = [] then None
  else begin
    let idx (x, y) = (y * width) + x in
    let dist = Array.make (width * height) infinity in
    let prev = Array.make (width * height) (-1) in
    let target_set = Array.make (width * height) false in
    List.iter (fun p -> target_set.(idx p) <- true) targets;
    let heap = Cpla_util.Heap.create () in
    List.iter
      (fun p ->
        dist.(idx p) <- 0.0;
        Cpla_util.Heap.push heap 0.0 p)
      sources;
    let found = ref None in
    let continue = ref true in
    while !continue do
      match Cpla_util.Heap.pop_min heap with
      | None -> continue := false
      | Some (d, ((x, y) as p)) ->
          if d <= dist.(idx p) then begin
            if target_set.(idx p) then begin
              found := Some p;
              continue := false
            end
            else begin
              let try_move nx ny edge =
                if nx >= 0 && nx < width && ny >= 0 && ny < height then begin
                  let c = cost edge in
                  if c < infinity then begin
                    let nd = d +. c in
                    let ni = idx (nx, ny) in
                    if nd < dist.(ni) then begin
                      dist.(ni) <- nd;
                      prev.(ni) <- idx p;
                      Cpla_util.Heap.push heap nd (nx, ny)
                    end
                  end
                end
              in
              try_move (x + 1) y { Graph.dir = Tech.Horizontal; x; y };
              try_move (x - 1) y { Graph.dir = Tech.Horizontal; x = x - 1; y };
              try_move x (y + 1) { Graph.dir = Tech.Vertical; x; y };
              try_move x (y - 1) { Graph.dir = Tech.Vertical; x; y = y - 1 }
            end
          end
    done;
    match !found with
    | None -> None
    | Some goal ->
        let rec walk acc i =
          if i < 0 then acc
          else walk ((i mod width, i / width) :: acc) prev.(i)
        in
        (* walk stops at a source because its prev is -1 *)
        let path = walk [] (idx goal) in
        Some path
  end
