open Cpla_grid

(* [free] is the remaining capacity *after* the candidate wire is added. *)
let congestion_penalty ~free =
  if free < 0 then 1000.0 +. (100.0 *. float_of_int (-free))
  else if free = 0 then 8.0
  else if free = 1 then 2.0
  else 0.0

let assign_net asg net_idx =
  match Assignment.tree asg net_idx with
  | None -> ()
  | Some tree ->
      let graph = Assignment.graph asg in
      let tech = Assignment.tech asg in
      Assignment.unassign_net asg net_idx;
      let segs = Assignment.segments asg net_idx in
      let node_to_seg = Assignment.node_to_seg asg net_idx in
      let candidates seg = Tech.layers_of_dir tech segs.(seg).Segment.dir in
      let seg_cost seg l =
        Array.fold_left
          (fun acc e -> acc +. congestion_penalty ~free:(Graph.free graph e ~layer:l - 1))
          0.0 segs.(seg).Segment.edges
      in
      (* Via cost: one unit per layer crossed — pure via-count minimisation,
         independent of the node (congestion on vias is handled by CPLA). *)
      let via_cost ~node:_ a b = float_of_int (abs (a - b)) in
      let pins_at node = Assignment.pin_layers_at asg ~net:net_idx ~node in
      let chosen = Tree_dp.solve ~tree ~node_to_seg ~pins_at ~candidates ~seg_cost ~via_cost in
      Array.iteri (fun seg layer -> Assignment.set_layer asg ~net:net_idx ~seg ~layer) chosen

let run ?(order = `Hpwl_ascending) asg =
  let n = Assignment.num_nets asg in
  let keyed = Array.init n (fun i -> (Net.hpwl (Assignment.net asg i), i)) in
  Array.sort compare keyed;
  (match order with
  | `Hpwl_ascending -> ()
  | `Hpwl_descending ->
      let len = Array.length keyed in
      for i = 0 to (len / 2) - 1 do
        let tmp = keyed.(i) in
        keyed.(i) <- keyed.(len - 1 - i);
        keyed.(len - 1 - i) <- tmp
      done);
  Array.iter (fun (_, i) -> assign_net asg i) keyed
