(** ISPD'08 global-routing benchmark format I/O.

    Parses the textual `.gr` format (grid/capacity header, net list with
    absolute pin coordinates, capacity adjustments) into this library's net
    and grid types, and writes designs back out in the same format.  The
    reproduction's experiments run on synthetic designs ({!Synth}) because
    the benchmark files are not redistributable, but users who have them can
    load the real thing through this module. *)

type header = {
  grid_x : int;
  grid_y : int;
  num_layers : int;
  vertical_capacity : int array;    (** per layer *)
  horizontal_capacity : int array;  (** per layer *)
  min_width : int array;
  min_spacing : int array;
  via_spacing : int array;
  lower_left_x : int;
  lower_left_y : int;
  tile_width : int;
  tile_height : int;
}

type adjustment = {
  from_x : int;
  from_y : int;
  from_layer : int;  (** 1-based, as in the file *)
  to_x : int;
  to_y : int;
  to_layer : int;
  new_capacity : int;
}

type design = {
  header : header;
  nets : Net.t array;
  adjustments : adjustment list;
}

val parse : string -> (design, string) result
(** Parse file contents.  Pin coordinates are converted to tile indices;
    pins are deduplicated per tile and single-tile nets are kept (the router
    will skip them).  Layers in the file are 1-based and converted to
    0-based. *)

val write : design -> string
(** Inverse of [parse] up to whitespace (pins are written at tile centres). *)

val to_graph : design -> Cpla_grid.Graph.t
(** Build the grid graph: a default technology resized to the header's layer
    count with directions taken from which capacity vector is non-zero per
    layer, uniform capacities from the header, and adjustments applied as
    capacity reductions. *)
