open Cpla_grid

type violation =
  | Unassigned_segment of { net : int; seg : int }
  | Direction_mismatch of { net : int; seg : int; layer : int }
  | Edge_overflow of { edge : Graph.edge2d; layer : int; usage : int; capacity : int }
  | Via_overflow of { x : int; y : int; crossing : int; usage : int; capacity : int }
  | Pin_unreachable of { net : int; pin : Net.pin }
  | Ledger_mismatch of { description : string }

type report = {
  violations : violation list;
  wirelength : int;
  via_crossings : int;
  nets_checked : int;
}

let check asg =
  let graph = Assignment.graph asg in
  let tech = Assignment.tech asg in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let wirelength = ref 0 and via_crossings = ref 0 in
  (* per-net structural checks *)
  for net = 0 to Assignment.num_nets asg - 1 do
    let n = Assignment.net asg net in
    match Assignment.tree asg net with
    | None -> ()
    | Some tree ->
        let segs = Assignment.segments asg net in
        Array.iteri
          (fun seg (s : Segment.t) ->
            let layer = Assignment.layer asg ~net ~seg in
            if layer < 0 then add (Unassigned_segment { net; seg })
            else begin
              if Tech.layer_dir tech layer <> s.Segment.dir then
                add (Direction_mismatch { net; seg; layer });
              wirelength := !wirelength + s.Segment.len
            end)
          segs;
        Array.iter
          (fun p ->
            if Stree.find_node tree (p.Net.px, p.Net.py) = None then
              add (Pin_unreachable { net; pin = p }))
          n.Net.pins
  done;
  (* from-scratch capacity audit *)
  (match Assignment.check_usage asg with
  | Ok () -> ()
  | Error description -> add (Ledger_mismatch { description }));
  Graph.iter_edges graph (fun e ->
      List.iter
        (fun layer ->
          let usage = Graph.usage graph e ~layer in
          let capacity = Graph.capacity graph e ~layer in
          if usage > capacity then add (Edge_overflow { edge = e; layer; usage; capacity }))
        (Graph.edge_layers graph e));
  for x = 0 to Graph.width graph - 1 do
    for y = 0 to Graph.height graph - 1 do
      for crossing = 0 to Graph.num_layers graph - 2 do
        let usage = Graph.via_usage graph ~x ~y ~crossing in
        via_crossings := !via_crossings + usage;
        if usage > 0 then begin
          let capacity = Graph.via_capacity graph ~x ~y ~crossing in
          if usage > capacity then add (Via_overflow { x; y; crossing; usage; capacity })
        end
      done
    done
  done;
  {
    violations = List.rev !violations;
    wirelength = !wirelength;
    via_crossings = !via_crossings;
    nets_checked = Assignment.num_nets asg;
  }

let is_clean r = r.violations = []

let pp_violation fmt = function
  | Unassigned_segment { net; seg } -> Format.fprintf fmt "net %d: segment %d unassigned" net seg
  | Direction_mismatch { net; seg; layer } ->
      Format.fprintf fmt "net %d: segment %d on wrong-direction layer %d" net seg layer
  | Edge_overflow { edge; layer; usage; capacity } ->
      Format.fprintf fmt "edge (%d,%d,%s) layer %d: %d wires over capacity %d" edge.Graph.x
        edge.Graph.y
        (match edge.Graph.dir with Tech.Horizontal -> "H" | Tech.Vertical -> "V")
        layer usage capacity
  | Via_overflow { x; y; crossing; usage; capacity } ->
      Format.fprintf fmt "tile (%d,%d) crossing %d: %d vias over capacity %d" x y crossing
        usage capacity
  | Pin_unreachable { net; pin } ->
      Format.fprintf fmt "net %d: pin (%d,%d) not on the routing tree" net pin.Net.px pin.Net.py
  | Ledger_mismatch { description } -> Format.fprintf fmt "usage ledger mismatch: %s" description

let summary r =
  let count pred = List.length (List.filter pred r.violations) in
  Printf.sprintf
    "%d nets: wirelength %d, via crossings %d; violations: %d edge-ov, %d via-ov, %d other"
    r.nets_checked r.wirelength r.via_crossings
    (count (function Edge_overflow _ -> true | _ -> false))
    (count (function Via_overflow _ -> true | _ -> false))
    (count (function
      | Edge_overflow _ | Via_overflow _ -> false
      | _ -> true))
