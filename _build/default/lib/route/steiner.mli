(** Rectilinear Steiner point insertion (iterated 1-Steiner, Kahng–Robins).

    The router's Prim topology connects pins with L/Z paths, which is a
    rectilinear *spanning* heuristic; inserting Steiner points from the
    Hanan grid recovers most of the spanning-vs-Steiner gap (classically
    ~11% wirelength on random instances).  Exposed as an opt-in topology
    refinement: the returned Steiner points are fed to the router as extra
    connection targets. *)

type point = int * int

val mst_length : point list -> int
(** Manhattan minimum-spanning-tree length of a point set (Prim, O(n²)).
    0 for fewer than two points. *)

val refine : ?max_points:int -> point list -> point list
(** [refine pins] returns Steiner points (a subset of the Hanan grid of
    [pins]) whose insertion strictly reduces the Manhattan MST length,
    chosen greedily best-first until no candidate helps or [max_points]
    (default: number of pins) have been added.  Points already in [pins]
    are never returned. *)

val refined_mst_length : point list -> int
(** [mst_length (pins @ refine pins)] — convenience for measurements. *)
