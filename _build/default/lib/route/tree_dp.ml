(* Bottom-up DP.  For the tree edge owned by node [v] (the edge v→parent v)
   and each candidate layer [l]:

     best v l = seg_cost v l
              + Σ_{pin p at v} via_cost v p l
              + Σ_{child c of v} min_{l'} (best c l' + via_cost v l' l)

   and the root closes with Σ pins at root vs. each child edge layer.  The
   pin terms charge pin vias at the node where the pin lives, against the
   layer of the edge *above* that node, which matches the stacked-via model
   used by the assignment state closely enough for optimisation purposes
   (the exact span model is not pairwise-decomposable). *)

let solve ~tree ~node_to_seg ~pins_at ~candidates ~seg_cost ~via_cost =
  let n = Stree.num_nodes tree in
  let children = Stree.children tree in
  let nsegs = Array.fold_left (fun acc s -> if s >= 0 then acc + 1 else acc) 0 node_to_seg in
  let choice = Array.make nsegs (-1) in
  (* memo.(node) : (layer, cost) array for the node's own edge *)
  let memo = Array.make n [||] in
  (* back.(node) : for each (own layer index), the chosen layer of each child *)
  let back = Array.make n [||] in
  (* post-order via explicit stack *)
  let order = ref [] in
  let stack = Stack.create () in
  Stack.push tree.Stree.root stack;
  while not (Stack.is_empty stack) do
    let v = Stack.pop stack in
    order := v :: !order;
    Array.iter (fun c -> Stack.push c stack) children.(v)
  done;
  (* !order is now reverse pre-order = children before parents when folded
     left-to-right?  No: reverse of pre-order visits parents after children
     only on a path; in general reverse pre-order is a valid post-order for
     processing as long as children appear before parents, which holds
     because pre-order visits parents first. *)
  let process v =
    let seg = node_to_seg.(v) in
    if seg >= 0 then begin
      let cands = Array.of_list (candidates seg) in
      if Array.length cands = 0 then invalid_arg "Tree_dp.solve: empty candidate set";
      let costs = Array.make (Array.length cands) 0.0 in
      let backs = Array.make_matrix (Array.length cands) (Array.length children.(v)) (-1) in
      Array.iteri
        (fun ci l ->
          let base =
            seg_cost seg l
            +. List.fold_left (fun acc p -> acc +. via_cost ~node:v p l) 0.0 (pins_at v)
          in
          let total = ref base in
          Array.iteri
            (fun k c ->
              let cseg = node_to_seg.(c) in
              assert (cseg >= 0);
              let ccands = memo.(c) in
              let best = ref infinity and best_l = ref (-1) in
              Array.iter
                (fun (l', cost') ->
                  let v' = cost' +. via_cost ~node:v l' l in
                  if v' < !best then begin
                    best := v';
                    best_l := l'
                  end)
                ccands;
              total := !total +. !best;
              backs.(ci).(k) <- !best_l)
            children.(v);
          costs.(ci) <- !total)
        cands;
      memo.(v) <- Array.mapi (fun ci l -> (l, costs.(ci))) cands;
      back.(v) <- backs
    end
  in
  List.iter process !order;
  (* Root: combine children with pin vias at the root tile. *)
  let root = tree.Stree.root in
  let root_choice = Array.make (Array.length children.(root)) (-1) in
  Array.iteri
    (fun k c ->
      let best = ref infinity and best_l = ref (-1) in
      Array.iter
        (fun (l', cost') ->
          let pin_term =
            List.fold_left (fun acc p -> acc +. via_cost ~node:root p l') 0.0 (pins_at root)
          in
          let v' = cost' +. pin_term in
          if v' < !best then begin
            best := v';
            best_l := l'
          end)
        memo.(c);
      root_choice.(k) <- !best_l)
    children.(root);
  (* Walk back down recording choices. *)
  let rec commit v l =
    let seg = node_to_seg.(v) in
    assert (seg >= 0);
    choice.(seg) <- l;
    (* find index of l among v's candidates *)
    let ci = ref (-1) in
    Array.iteri (fun i (l', _) -> if l' = l then ci := i) memo.(v);
    assert (!ci >= 0);
    Array.iteri (fun k c -> commit c back.(v).(!ci).(k)) children.(v)
  in
  Array.iteri (fun k c -> commit c root_choice.(k)) children.(root);
  choice
