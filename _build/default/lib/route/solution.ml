
let abs_of ~lower_left ~tile (x, y) =
  let llx, lly = lower_left and tw, th = tile in
  (llx + (x * tw) + (tw / 2), lly + (y * th) + (th / 2))

let tile_of ~lower_left ~tile (ax, ay) =
  let llx, lly = lower_left and tw, th = tile in
  ((ax - llx) / tw, (ay - lly) / th)

(* Incident layers at a tree node: assigned layers of the node's parent and
   child edges, plus any pin layers there. *)
let node_layers asg net tree node_to_seg node =
  let layers = ref (Assignment.pin_layers_at asg ~net ~node) in
  let add_seg seg = if seg >= 0 then layers := Assignment.layer asg ~net ~seg :: !layers in
  add_seg node_to_seg.(node);
  Array.iteri
    (fun child parent -> if parent = node then add_seg node_to_seg.(child))
    tree.Stree.parent;
  List.filter (fun l -> l >= 0) !layers

let write ?(lower_left = (0, 0)) ?(tile = (10, 10)) asg =
  let buf = Buffer.create 65536 in
  let abs = abs_of ~lower_left ~tile in
  for net = 0 to Assignment.num_nets asg - 1 do
    let n = Assignment.net asg net in
    Buffer.add_string buf (Printf.sprintf "%s %d\n" n.Net.name net);
    (match Assignment.tree asg net with
    | None -> ()
    | Some tree ->
        let segs = Assignment.segments asg net in
        let node_to_seg = Assignment.node_to_seg asg net in
        (* wires *)
        Array.iteri
          (fun i (s : Segment.t) ->
            let layer = Assignment.layer asg ~net ~seg:i in
            if layer < 0 then invalid_arg "Solution.write: unassigned segment";
            let a, b = Segment.endpoints s tree in
            let ax, ay = abs a and bx, by = abs b in
            Buffer.add_string buf
              (Printf.sprintf "(%d,%d,%d)-(%d,%d,%d)\n" ax ay (layer + 1) bx by (layer + 1)))
          segs;
        (* via stacks at nodes *)
        for node = 0 to Stree.num_nodes tree - 1 do
          match node_layers asg net tree node_to_seg node with
          | [] -> ()
          | layers ->
              let lo = List.fold_left min max_int layers in
              let hi = List.fold_left max min_int layers in
              if hi > lo then begin
                let x, y = abs (Stree.node tree node) in
                Buffer.add_string buf
                  (Printf.sprintf "(%d,%d,%d)-(%d,%d,%d)\n" x y (lo + 1) x y (hi + 1))
              end
        done);
    Buffer.add_string buf "!\n"
  done;
  Buffer.contents buf

type net_route = {
  name : string;
  wires : ((int * int * int) * (int * int * int)) list;
}

let parse ?(lower_left = (0, 0)) ?(tile = (10, 10)) content =
  let to_tile = tile_of ~lower_left ~tile in
  let lines = String.split_on_char '\n' content in
  let nets = ref [] in
  let current = ref None in
  let error = ref None in
  let parse_wire line =
    (* (ax,ay,l1)-(bx,by,l2) *)
    try
      Scanf.sscanf line " (%d,%d,%d)-(%d,%d,%d)" (fun ax ay l1 bx by l2 ->
          let tx1, ty1 = to_tile (ax, ay) and tx2, ty2 = to_tile (bx, by) in
          Some ((tx1, ty1, l1 - 1), (tx2, ty2, l2 - 1)))
    with Scanf.Scan_failure _ | Failure _ | End_of_file -> None
  in
  List.iter
    (fun raw ->
      let line = String.trim raw in
      if !error = None && line <> "" then begin
        if line = "!" then begin
          match !current with
          | Some (name, wires) ->
              nets := { name; wires = List.rev wires } :: !nets;
              current := None
          | None -> error := Some "unexpected '!' outside a net block"
        end
        else if String.length line > 0 && line.[0] = '(' then begin
          match (parse_wire line, !current) with
          | Some w, Some (name, wires) -> current := Some (name, w :: wires)
          | Some _, None -> error := Some ("wire outside a net block: " ^ line)
          | None, _ -> error := Some ("cannot parse wire: " ^ line)
        end
        else begin
          (* header: "name id" *)
          match String.split_on_char ' ' line with
          | name :: _ when !current = None -> current := Some (name, [])
          | _ -> error := Some ("unexpected line: " ^ line)
        end
      end)
    lines;
  match (!error, !current) with
  | Some msg, _ -> Error msg
  | None, Some (name, _) -> Error (Printf.sprintf "net %s not terminated with '!'" name)
  | None, None -> Ok (List.rev !nets)

let apply asg routes =
  let by_name = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace by_name r.name r) routes;
  let error = ref None in
  for net = 0 to Assignment.num_nets asg - 1 do
    if !error = None then begin
      let n = Assignment.net asg net in
      match (Hashtbl.find_opt by_name n.Net.name, Assignment.tree asg net) with
      | None, _ -> error := Some (Printf.sprintf "no route for net %s" n.Net.name)
      | Some _, None -> ()
      | Some route, Some tree ->
          let segs = Assignment.segments asg net in
          (* index planar wires by their covered tiles for edge matching *)
          let covers ((x1, y1, l1), (x2, y2, l2)) (ax, ay) (bx, by) =
            l1 = l2
            && min x1 x2 <= min ax bx
            && max x1 x2 >= max ax bx
            && min y1 y2 <= min ay by
            && max y1 y2 >= max ay by
            && ((x1 = x2 && ax = bx && ax = x1) || (y1 = y2 && ay = by && ay = y1))
          in
          Array.iteri
            (fun i (s : Segment.t) ->
              if !error = None then begin
                let a, b = Segment.endpoints s tree in
                match
                  List.find_opt (fun w -> covers w a b) route.wires
                with
                | Some ((_, _, l), _) -> Assignment.set_layer asg ~net ~seg:i ~layer:l
                | None ->
                    error :=
                      Some
                        (Printf.sprintf "net %s: no wire covers segment %d" n.Net.name i)
              end)
            segs
    end
  done;
  match !error with None -> Ok () | Some msg -> Error msg
