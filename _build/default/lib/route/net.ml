type pin = {
  px : int;
  py : int;
  pl : int;
}

type t = {
  id : int;
  name : string;
  pins : pin array;
}

let create ~id ~name ~pins =
  if Array.length pins < 2 then invalid_arg "Net.create: a net needs at least two pins";
  { id; name; pins }

let source t = t.pins.(0)

let sinks t = Array.sub t.pins 1 (Array.length t.pins - 1)

let num_pins t = Array.length t.pins

let hpwl t =
  let xs = Array.map (fun p -> p.px) t.pins in
  let ys = Array.map (fun p -> p.py) t.pins in
  let span a = Array.fold_left max min_int a - Array.fold_left min max_int a in
  span xs + span ys

let dedup_pins pins =
  let seen = Hashtbl.create 16 in
  Array.to_list pins
  |> List.filter (fun p ->
         let key = (p.px, p.py) in
         if Hashtbl.mem seen key then false
         else begin
           Hashtbl.add seen key ();
           true
         end)
  |> Array.of_list
