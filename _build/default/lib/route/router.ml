open Cpla_grid

type point = int * int

type result = {
  trees : Stree.t option array;
  overflow_2d : int;
  maze_routes : int;
}

(* ---- 2-D demand bookkeeping ------------------------------------------- *)

type demand = {
  graph : Graph.t;
  h : int array; (* horizontal unit-edge demand, indexed y*(w-1)+x *)
  v : int array; (* vertical unit-edge demand, indexed y*w+x *)
}

let make_demand graph =
  let w = Graph.width graph and h = Graph.height graph in
  { graph; h = Array.make ((w - 1) * h) 0; v = Array.make (w * (h - 1)) 0 }

let demand_get d (e : Graph.edge2d) =
  match e.dir with
  | Tech.Horizontal -> d.h.((e.y * (Graph.width d.graph - 1)) + e.x)
  | Tech.Vertical -> d.v.((e.y * Graph.width d.graph) + e.x)

let demand_add d (e : Graph.edge2d) delta =
  match e.dir with
  | Tech.Horizontal ->
      let i = (e.y * (Graph.width d.graph - 1)) + e.x in
      d.h.(i) <- d.h.(i) + delta
  | Tech.Vertical ->
      let i = (e.y * Graph.width d.graph) + e.x in
      d.v.(i) <- d.v.(i) + delta

(* Congestion cost of crossing one 2-D edge given current demand: unit wire
   cost plus a steeply rising penalty as demand approaches capacity, and a
   large linear term once overflowed so the maze router detours. *)
let edge_cost graph demand (e : Graph.edge2d) =
  let cap = Graph.capacity_2d graph e in
  let u = demand e in
  if cap <= 0 then 1.0 +. 200.0
  else begin
    let r = float_of_int (u + 1) /. float_of_int cap in
    if r <= 1.0 then 1.0 +. (4.0 *. (r ** 5.0))
    else 1.0 +. 30.0 +. (20.0 *. (r -. 1.0) *. float_of_int cap)
  end

(* ---- path utilities ---------------------------------------------------- *)

let unit_edges_of_path path =
  let rec go acc = function
    | (x0, y0) :: ((x1, y1) :: _ as rest) ->
        let e =
          if y0 = y1 then { Graph.dir = Tech.Horizontal; x = min x0 x1; y = y0 }
          else { Graph.dir = Tech.Vertical; x = x0; y = min y0 y1 }
        in
        go (e :: acc) rest
    | [ _ ] | [] -> List.rev acc
  in
  go [] path

(* Straight-line tile walk between two points sharing a coordinate. *)
let straight (x0, y0) (x1, y1) =
  if x0 = x1 then begin
    let step = if y1 >= y0 then 1 else -1 in
    List.init (abs (y1 - y0) + 1) (fun i -> (x0, y0 + (i * step)))
  end
  else begin
    let step = if x1 >= x0 then 1 else -1 in
    List.init (abs (x1 - x0) + 1) (fun i -> (x0 + (i * step), y0))
  end

let join_paths a b =
  (* concatenate tile paths where a ends at b's head *)
  match b with [] -> a | _ :: tl -> a @ tl

(* Candidate pattern paths from [a] to [b]: two Ls and three Zs. *)
let pattern_paths (ax, ay) (bx, by) =
  if ax = bx || ay = by then [ straight (ax, ay) (bx, by) ]
  else begin
    let l1 = join_paths (straight (ax, ay) (bx, ay)) (straight (bx, ay) (bx, by)) in
    let l2 = join_paths (straight (ax, ay) (ax, by)) (straight (ax, by) (bx, by)) in
    let zs =
      List.concat_map
        (fun frac ->
          let mx = ax + ((bx - ax) * frac / 4) in
          let my = ay + ((by - ay) * frac / 4) in
          let zx =
            if mx = ax || mx = bx then []
            else
              [ join_paths
                  (join_paths (straight (ax, ay) (mx, ay)) (straight (mx, ay) (mx, by)))
                  (straight (mx, by) (bx, by)) ]
          in
          let zy =
            if my = ay || my = by then []
            else
              [ join_paths
                  (join_paths (straight (ax, ay) (ax, my)) (straight (ax, my) (bx, my)))
                  (straight (bx, my) (bx, by)) ]
          in
          zx @ zy)
        [ 2; 1; 3 ]
    in
    l1 :: l2 :: zs
  end

let path_cost cost path =
  List.fold_left (fun acc e -> acc +. cost e) 0.0 (unit_edges_of_path path)

(* ---- per-net routing --------------------------------------------------- *)

let canonical_edge (e : Graph.edge2d) = (e.dir = Tech.Horizontal, e.x, e.y)

(* Connect all pin tiles of [net] into a set of unit edges using pattern
   routing with a maze fallback.  [cost] scores a unit edge.  Returns the
   unit-edge list (empty when all pins share a tile) and the maze-call
   count. *)
let build_topology ?(steiner = false) ~width ~height ~cost net =
  let pins = Net.dedup_pins net.Net.pins in
  let pts = Array.map (fun p -> (p.Net.px, p.Net.py)) pins in
  (* optional topology refinement: Hanan-grid Steiner points join the pin
     set as extra connection targets (they survive tree compression only
     where they actually carry a junction) *)
  let pts =
    if steiner && Array.length pts >= 3 then
      Array.append pts (Array.of_list (Steiner.refine (Array.to_list pts)))
    else pts
  in
  if Array.length pts <= 1 then ([], 0)
  else begin
    let covered = Hashtbl.create 64 in
    let edges = Hashtbl.create 64 in
    let mazes = ref 0 in
    let cover_path path =
      List.iter (fun p -> Hashtbl.replace covered p ()) path;
      List.iter
        (fun e ->
          let key = canonical_edge e in
          if not (Hashtbl.mem edges key) then Hashtbl.replace edges key e)
        (unit_edges_of_path path)
    in
    Hashtbl.replace covered pts.(0) ();
    let remaining = ref (Array.to_list (Array.sub pts 1 (Array.length pts - 1))) in
    (* Pattern path cost also rejects paths that would touch the tree before
       their end (they are truncated at the first touch instead). *)
    let truncate_at_tree path =
      let rec go acc = function
        | [] -> List.rev acc
        | p :: rest ->
            if Hashtbl.mem covered p then List.rev (p :: acc) else go (p :: acc) rest
      in
      go [] path
    in
    while !remaining <> [] do
      (* nearest unconnected pin to the covered set (Manhattan) *)
      let dist_to_tree (x, y) =
        Hashtbl.fold (fun (cx, cy) () acc -> min acc (abs (cx - x) + abs (cy - y))) covered max_int
      in
      let next =
        List.fold_left
          (fun best p ->
            match best with
            | None -> Some (p, dist_to_tree p)
            | Some (_, bd) ->
                let d = dist_to_tree p in
                if d < bd then Some (p, d) else best)
          None !remaining
      in
      let pin, _ =
        match next with Some v -> v | None -> assert false
      in
      remaining := List.filter (fun p -> p <> pin) !remaining;
      if not (Hashtbl.mem covered pin) then begin
        (* closest covered tile as the pattern target *)
        let target =
          Hashtbl.fold
            (fun p () best ->
              let d (x, y) (x', y') = abs (x - x') + abs (y - y') in
              match best with
              | None -> Some p
              | Some q -> if d p pin < d q pin then Some p else best)
            covered None
        in
        let target = match target with Some t -> t | None -> assert false in
        let candidates = List.map truncate_at_tree (pattern_paths pin target) in
        let scored =
          List.map (fun path -> (path_cost cost path, path)) candidates
          |> List.sort (fun (a, _) (b, _) -> compare a b)
        in
        let best_cost, best_path =
          match scored with best :: _ -> best | [] -> assert false
        in
        (* A pattern path whose average per-edge cost signals overflow gets
           replaced by a maze search against the whole tree. *)
        let len = max 1 (List.length best_path - 1) in
        let path =
          if best_cost /. float_of_int len <= 8.0 then best_path
          else begin
            incr mazes;
            let targets = Hashtbl.fold (fun p () acc -> p :: acc) covered [] in
            match Maze.route ~width ~height ~cost ~sources:[ pin ] ~targets with
            | Some p -> p
            | None -> best_path
          end
        in
        cover_path path
      end
    done;
    (Hashtbl.fold (fun _ e acc -> e :: acc) edges [], !mazes)
  end

let tree_of_unit_edges net unit_edges =
  match unit_edges with
  | [] -> None
  | edges ->
      let seg_edges =
        List.map
          (fun (e : Graph.edge2d) ->
            match e.dir with
            | Tech.Horizontal -> (((e.x, e.y) : point), ((e.x + 1, e.y) : point))
            | Tech.Vertical -> ((e.x, e.y), (e.x, e.y + 1)))
          edges
      in
      let src = Net.source net in
      let tree = Stree.of_edges ~root:(src.Net.px, src.Net.py) seg_edges in
      let keep = Array.to_list (Array.map (fun p -> (p.Net.px, p.Net.py)) net.Net.pins) in
      Some (Stree.compress ~keep tree)

let route_net ?(steiner = false) ~graph ~demand net =
  let cost e = edge_cost graph demand e in
  let unit_edges, _ =
    build_topology ~steiner ~width:(Graph.width graph) ~height:(Graph.height graph) ~cost net
  in
  tree_of_unit_edges net unit_edges

(* ---- full design ------------------------------------------------------- *)

let overflow_2d graph demand =
  let acc = ref 0 in
  Graph.iter_edges graph (fun e ->
      let over = demand_get demand e - Graph.capacity_2d graph e in
      if over > 0 then acc := !acc + over);
  !acc

let tree_unit_edges tree =
  let acc = ref [] in
  Array.iteri
    (fun i parent ->
      if parent >= 0 then begin
        let path = straight (Stree.node tree i) (Stree.node tree parent) in
        acc := unit_edges_of_path path @ !acc
      end)
    tree.Stree.parent;
  !acc

let route_all ?(rrr_passes = 1) ?(steiner = false) ~graph nets =
  let demand = make_demand graph in
  let cost e = edge_cost graph (demand_get demand) e in
  let trees = Array.make (Array.length nets) None in
  let maze_count = ref 0 in
  let order = Array.mapi (fun i n -> (Net.hpwl n, i)) nets in
  Array.sort compare order;
  let route_one i =
    let net = nets.(i) in
    let unit_edges, mazes =
      build_topology ~steiner ~width:(Graph.width graph) ~height:(Graph.height graph) ~cost
        net
    in
    maze_count := !maze_count + mazes;
    List.iter (fun e -> demand_add demand e 1) unit_edges;
    trees.(i) <- tree_of_unit_edges net unit_edges
  in
  Array.iter (fun (_, i) -> route_one i) order;
  (* Rip-up and reroute nets that cross overflowed 2-D edges. *)
  for _pass = 1 to rrr_passes do
    if overflow_2d graph demand > 0 then begin
      let is_overflowed e = demand_get demand e > Graph.capacity_2d graph e in
      Array.iteri
        (fun i tree_opt ->
          match tree_opt with
          | None -> ()
          | Some tree ->
              let edges = tree_unit_edges tree in
              if List.exists is_overflowed edges then begin
                List.iter (fun e -> demand_add demand e (-1)) edges;
                route_one i
              end)
        trees
    end
  done;
  { trees; overflow_2d = overflow_2d graph demand; maze_routes = !maze_count }
