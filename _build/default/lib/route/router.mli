(** Congestion-aware 2-D global router.

    Plays the role NCTU-GR plays in the paper: produces the initial routing
    topology that layer assignment then works on.  Nets are routed in
    ascending-HPWL order with L/Z pattern candidates scored by a congestion
    cost, falling back to Dijkstra maze routing when every pattern overflows;
    an optional rip-up-and-reroute pass cleans residual 2-D overflow.

    The router tracks 2-D demand against the layer-aggregated capacities of
    the grid; per-layer usage is installed later by the initial layer
    assignment. *)

type result = {
  trees : Stree.t option array;
      (** [trees.(i)] is net [i]'s Steiner tree (compressed, pin tiles kept
          as nodes); [None] when the net's pins collapse to a single tile *)
  overflow_2d : int;  (** total 2-D edge overflow after routing *)
  maze_routes : int;  (** connections that needed the maze fallback *)
}

val route_all :
  ?rrr_passes:int -> ?steiner:bool -> graph:Cpla_grid.Graph.t -> Net.t array -> result
(** Route every net.  [rrr_passes] (default 1) rip-up-and-reroute passes are
    applied to nets crossing overflowed 2-D edges.  [steiner] (default
    false) refines each net's topology with iterated-1-Steiner points
    ({!Steiner}) before routing — shorter trees at extra routing time. *)

val route_net :
  ?steiner:bool ->
  graph:Cpla_grid.Graph.t ->
  demand:(Cpla_grid.Graph.edge2d -> int) ->
  Net.t ->
  Stree.t option
(** Route a single net against an external demand snapshot without mutating
    anything; exposed for tests and incremental use. *)
