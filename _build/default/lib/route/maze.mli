(** Dijkstra maze routing on the 2-D projection of the grid.

    Fallback path search of the global router for connections whose pattern
    (L/Z) candidates are all congested.  The cost of crossing a 2-D edge is
    supplied by the caller, which lets the router encode congestion
    penalties without this module knowing about capacities. *)

type point = int * int

val route :
  width:int ->
  height:int ->
  cost:(Cpla_grid.Graph.edge2d -> float) ->
  sources:point list ->
  targets:point list ->
  point list option
(** Cheapest tile path from any source to any target; [None] when the inputs
    are empty or disconnected (cost [infinity] blocks an edge).  The returned
    path starts at a source and ends at a target, listing every tile visited
    (consecutive tiles are grid neighbours).  A degenerate source=target
    query returns the single-point path. *)
