open Cpla_grid
open Cpla_util

type spec = {
  name : string;
  width : int;
  height : int;
  num_layers : int;
  num_nets : int;
  capacity : int;
  seed : int;
  mean_extra_pins : float;
  local_fraction : float;
  hotspots : int;
  blockage_fraction : float;
}

let default_spec =
  {
    name = "default";
    width = 48;
    height = 48;
    num_layers = 6;
    num_nets = 1500;
    capacity = 10;
    seed = 1;
    mean_extra_pins = 1.6;
    local_fraction = 0.75;
    hotspots = 3;
    blockage_fraction = 0.04;
  }

let clamp lo hi v = max lo (min hi v)

(* Geometric number of extra pins beyond the mandatory two. *)
let extra_pins rng mean =
  if mean <= 0.0 then 0
  else begin
    let p = 1.0 /. (1.0 +. mean) in
    let rec go acc = if acc < 40 && Rng.float rng 1.0 > p then go (acc + 1) else acc in
    go 0
  end

let generate spec =
  let rng = Rng.create spec.seed in
  let tech = Tech.default ~num_layers:spec.num_layers () in
  let layer_capacity = Array.make spec.num_layers spec.capacity in
  let graph = Graph.create ~tech ~width:spec.width ~height:spec.height ~layer_capacity in
  (* Blockage patches: rectangular regions where low-layer capacity drops,
     as macros do in the real benchmarks. *)
  let blocked_budget =
    int_of_float (spec.blockage_fraction *. float_of_int (spec.width * spec.height))
  in
  let blocked = ref 0 in
  while !blocked < blocked_budget do
    let bw = Rng.int_in rng 3 (max 3 (spec.width / 8)) in
    let bh = Rng.int_in rng 3 (max 3 (spec.height / 8)) in
    let bx = Rng.int rng (max 1 (spec.width - bw)) in
    let by = Rng.int rng (max 1 (spec.height - bh)) in
    let layers_hit = min spec.num_layers (2 + Rng.int rng 2) in
    for l = 0 to layers_hit - 1 do
      let dir = Tech.layer_dir tech l in
      for y = by to by + bh - 1 do
        for x = bx to bx + bw - 1 do
          let e = { Graph.dir; x; y } in
          if Graph.edge_exists graph e then
            Graph.reduce_capacity graph e ~layer:l ~by:(spec.capacity * 3 / 4)
        done
      done
    done;
    blocked := !blocked + (bw * bh)
  done;
  (* Hotspot centres attract net centres. *)
  let hotspot_centers =
    Array.init (max 1 spec.hotspots) (fun _ ->
        (Rng.int rng spec.width, Rng.int rng spec.height))
  in
  let pick_center () =
    if Rng.float rng 1.0 < 0.5 then begin
      let hx, hy = Rng.choose rng hotspot_centers in
      let sx = float_of_int spec.width /. 10.0 in
      ( clamp 0 (spec.width - 1) (hx + int_of_float (Rng.gaussian rng *. sx)),
        clamp 0 (spec.height - 1) (hy + int_of_float (Rng.gaussian rng *. sx)) )
    end
    else (Rng.int rng spec.width, Rng.int rng spec.height)
  in
  let make_net id =
    let cx, cy = pick_center () in
    let local = Rng.float rng 1.0 < spec.local_fraction in
    let sigma =
      if local then Float.max 1.5 (float_of_int spec.width /. 24.0)
      else float_of_int spec.width /. 5.0
    in
    let n_pins = 2 + extra_pins rng spec.mean_extra_pins in
    let pin () =
      {
        Net.px = clamp 0 (spec.width - 1) (cx + int_of_float (Rng.gaussian rng *. sigma));
        py = clamp 0 (spec.height - 1) (cy + int_of_float (Rng.gaussian rng *. sigma));
        pl = 0;
      }
    in
    let pins = Net.dedup_pins (Array.init n_pins (fun _ -> pin ())) in
    if Array.length pins >= 2 then Some (Net.create ~id ~name:(Printf.sprintf "n%d" id) ~pins)
    else None
  in
  let nets = ref [] and made = ref 0 and id = ref 0 in
  while !made < spec.num_nets do
    (match make_net !id with
    | Some net ->
        nets := net :: !nets;
        incr made
    | None -> ());
    incr id
  done;
  (* Re-number ids densely in array order. *)
  let arr = Array.of_list (List.rev !nets) in
  let arr =
    Array.mapi (fun i net -> Net.create ~id:i ~name:net.Net.name ~pins:net.Net.pins) arr
  in
  (graph, arr)
