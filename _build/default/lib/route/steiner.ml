type point = int * int

let dist (x0, y0) (x1, y1) = abs (x0 - x1) + abs (y0 - y1)

let mst_length points =
  match points with
  | [] | [ _ ] -> 0
  | first :: _ ->
      let pts = Array.of_list points in
      let n = Array.length pts in
      let in_tree = Array.make n false in
      let best = Array.make n max_int in
      let total = ref 0 in
      let current = ref 0 in
      ignore first;
      in_tree.(0) <- true;
      for i = 1 to n - 1 do
        best.(i) <- dist pts.(0) pts.(i)
      done;
      for _ = 1 to n - 1 do
        (* closest non-tree point *)
        let pick = ref (-1) and pick_d = ref max_int in
        for i = 0 to n - 1 do
          if (not in_tree.(i)) && best.(i) < !pick_d then begin
            pick := i;
            pick_d := best.(i)
          end
        done;
        if !pick >= 0 then begin
          in_tree.(!pick) <- true;
          total := !total + !pick_d;
          current := !pick;
          for i = 0 to n - 1 do
            if not in_tree.(i) then best.(i) <- min best.(i) (dist pts.(!pick) pts.(i))
          done
        end
      done;
      !total

let hanan_candidates pins =
  let xs = List.sort_uniq compare (List.map fst pins) in
  let ys = List.sort_uniq compare (List.map snd pins) in
  let pin_set = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace pin_set p ()) pins;
  List.concat_map
    (fun x ->
      List.filter_map (fun y -> if Hashtbl.mem pin_set (x, y) then None else Some (x, y)) ys)
    xs

let refine ?max_points pins =
  let pins = List.sort_uniq compare pins in
  let budget = Option.value ~default:(List.length pins) max_points in
  if List.length pins < 3 then []
  else begin
    let added = ref [] in
    let continue = ref true in
    while !continue && List.length !added < budget do
      let current = pins @ !added in
      let base = mst_length current in
      let best_gain = ref 0 and best_point = ref None in
      List.iter
        (fun c ->
          if not (List.mem c !added) then begin
            let gain = base - mst_length (c :: current) in
            if gain > !best_gain then begin
              best_gain := gain;
              best_point := Some c
            end
          end)
        (hanan_candidates current);
      match !best_point with
      | Some p -> added := p :: !added
      | None -> continue := false
    done;
    (* Cleanup: a Steiner point that is a leaf or degree-2 pass-through of
       the final MST contributes nothing; keep only load-bearing ones by
       re-checking each for positive gain on removal. *)
    let keep =
      List.filter
        (fun p ->
          let others = pins @ List.filter (fun q -> q <> p) !added in
          mst_length (p :: others) < mst_length others)
        !added
    in
    keep
  end

let refined_mst_length pins = mst_length (pins @ refine pins)
