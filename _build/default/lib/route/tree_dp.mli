(** Net-by-net layer assignment by dynamic programming over the Steiner
    tree.

    This is the per-net engine behind both the initial (via-minimising)
    assignment and the TILA baseline's Lagrangian subproblem: given arbitrary
    per-segment-per-layer costs and pairwise via costs, it picks the optimal
    layer for every segment of one net under the pairwise via model (the
    same model the paper's Eqn (3) uses: via cost between two segments
    connected at a node).

    Complexity is O(nodes × L²) per net. *)

val solve :
  tree:Stree.t ->
  node_to_seg:int array ->
  pins_at:(int -> int list) ->
  candidates:(int -> int list) ->
  seg_cost:(int -> int -> float) ->
  via_cost:(node:int -> int -> int -> float) ->
  int array
(** [solve ~tree ~node_to_seg ~pins_at ~candidates ~seg_cost ~via_cost]
    returns the chosen layer per segment (indexed like the net's segment
    array).

    - [candidates seg] lists the admissible layers of a segment (non-empty,
      direction already filtered by the caller);
    - [seg_cost seg l] is the cost of putting segment [seg] on layer [l];
    - [via_cost ~node a b] is the cost of a via stack between layers [a] and
      [b] at tree node [node] (0 when [a = b]);
    - [pins_at node] lists pin layers at the node: each contributes
      [via_cost] between the pin layer and the layer of every incident tree
      edge chosen at that node, which is what ties pin vias into the DP.

    The minimisation is exact for the pairwise via objective
      Σ seg_cost + Σ_{(child,parent) edges meeting at a node} via_cost
      + Σ pins via_cost. *)
