lib/route/init_assign.ml: Array Assignment Cpla_grid Graph Net Segment Tech Tree_dp
