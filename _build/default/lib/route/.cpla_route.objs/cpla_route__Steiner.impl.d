lib/route/steiner.ml: Array Hashtbl List Option
