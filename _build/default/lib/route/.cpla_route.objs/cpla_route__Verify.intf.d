lib/route/verify.mli: Assignment Cpla_grid Format Net
