lib/route/assignment.ml: Array Cpla_grid Graph Hashtbl List Net Option Printf Segment Stree Tech
