lib/route/net.ml: Array Hashtbl List
