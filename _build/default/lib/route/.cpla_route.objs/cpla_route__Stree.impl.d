lib/route/stree.ml: Array Hashtbl List Printf Queue
