lib/route/tree_dp.ml: Array List Stack Stree
