lib/route/assignment.mli: Cpla_grid Net Segment Stree
