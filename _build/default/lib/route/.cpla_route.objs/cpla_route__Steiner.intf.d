lib/route/steiner.mli:
