lib/route/solution.ml: Array Assignment Buffer Hashtbl List Net Printf Scanf Segment Stree String
