lib/route/segment.ml: Array Cpla_grid Graph List Stree Tech
