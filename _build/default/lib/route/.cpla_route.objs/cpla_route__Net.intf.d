lib/route/net.mli:
