lib/route/stree.mli:
