lib/route/solution.mli: Assignment
