lib/route/ispd08.ml: Array Buffer Cpla_grid Graph List Net Printf String Tech
