lib/route/router.ml: Array Cpla_grid Graph Hashtbl List Maze Net Steiner Stree Tech
