lib/route/synth.ml: Array Cpla_grid Cpla_util Float Graph List Net Printf Rng Tech
