lib/route/init_assign.mli: Assignment
