lib/route/verify.ml: Array Assignment Cpla_grid Format Graph List Net Printf Segment Stree Tech
