lib/route/tree_dp.mli: Stree
