lib/route/synth.mli: Cpla_grid Net
