lib/route/maze.mli: Cpla_grid
