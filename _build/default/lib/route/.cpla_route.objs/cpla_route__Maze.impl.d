lib/route/maze.ml: Array Cpla_grid Cpla_util Graph List Tech
