lib/route/segment.mli: Cpla_grid Stree
