lib/route/ispd08.mli: Cpla_grid Net
