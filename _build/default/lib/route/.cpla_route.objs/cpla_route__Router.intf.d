lib/route/router.mli: Cpla_grid Net Stree
