(** Routed-solution I/O in the ISPD'08 global-routing *output* format.

    The contest evaluator format: one block per net,

    {v
    netname id
    (x1,y1,l1)-(x2,y2,l2)
    (x2,y2,l2)-(x2,y2,l3)
    !
    v}

    where coordinates are absolute (tile centres) and 1-based layers; a
    via is a zero-length 3-D segment between two layers at one tile.  This
    lets an assignment produced here be checked with the contest evaluator,
    and an external router's output be loaded back as trees + layers. *)

val write :
  ?lower_left:int * int ->
  ?tile:int * int ->
  Assignment.t ->
  string
(** Serialise the current (fully assigned) state.  Wire segments are
    emitted per tree edge at its assigned layer; via stacks are emitted at
    every tree node whose incident layers span more than one layer, plus
    pin vias.  [lower_left] (default (0,0)) and [tile] (default (10,10))
    fix the tile→absolute-coordinate mapping.
    @raise Invalid_argument when some segment is unassigned. *)

type net_route = {
  name : string;
  wires : ((int * int * int) * (int * int * int)) list;
      (** 3-D segments in tile coordinates, 0-based layers *)
}

val parse :
  ?lower_left:int * int ->
  ?tile:int * int ->
  string ->
  (net_route list, string) result
(** Parse solution text back into per-net 3-D segment lists. *)

val apply :
  Assignment.t ->
  net_route list ->
  (unit, string) result
(** Install the layers of a parsed solution onto a matching assignment
    state: for every net (matched by name), each tree edge takes the layer
    of the parsed wire covering it.  Fails when a net/tree edge cannot be
    matched. *)
