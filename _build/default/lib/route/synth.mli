(** Synthetic benchmark generator.

    Stands in for the (non-redistributable) ISPD'08 benchmark files: given a
    spec it deterministically produces a grid graph with blockages and a net
    list whose statistics resemble placed designs — mostly short local nets,
    a tail of long global nets, and congestion hotspots so the routing
    density map is non-uniform (Fig. 3b). *)

type spec = {
  name : string;
  width : int;
  height : int;
  num_layers : int;
  num_nets : int;
  capacity : int;           (** uniform per-layer edge capacity before blockages *)
  seed : int;
  mean_extra_pins : float;  (** pins per net = 2 + geometric with this mean *)
  local_fraction : float;   (** fraction of nets confined to a small window *)
  hotspots : int;           (** number of placement-density hotspots *)
  blockage_fraction : float; (** fraction of tiles inside blockage patches *)
}

val default_spec : spec
(** A small sane baseline (48×48, 6 layers, 1500 nets, seed 1). *)

val generate : spec -> Cpla_grid.Graph.t * Net.t array
(** Deterministic in [spec] (including [seed]). *)
