(** Segments: the unit of layer assignment.

    A segment is one (compressed) tree edge of a net's Steiner tree — a
    maximal straight horizontal or vertical wire run.  Each segment is
    identified within its net by the index of the *child* tree node of the
    edge it covers. *)

type t = {
  net_id : int;
  node : int;          (** child tree-node index; the parent node is the other end *)
  dir : Cpla_grid.Tech.dir;
  len : int;           (** length in grid edges, ≥ 1 *)
  edges : Cpla_grid.Graph.edge2d array;  (** the grid edges covered, in order *)
}

val extract : net_id:int -> Stree.t -> t array * int array
(** [extract ~net_id tree] returns [(segs, node_to_seg)] where [segs] lists
    one segment per non-root tree node and [node_to_seg.(node)] is the index
    into [segs] (or -1 for the root). *)

val midpoint : t -> int * int
(** Tile at (or next to) the middle of the segment, used to map segments to
    grid partitions. *)

val endpoints : t -> Stree.t -> (int * int) * (int * int)
(** Child-end and parent-end tile coordinates. *)
