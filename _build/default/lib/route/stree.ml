type point = int * int

type t = {
  nodes : point array;
  parent : int array;
  root : int;
}

let axis_aligned (x0, y0) (x1, y1) = x0 = x1 || y0 = y1

let of_edges ~root edges =
  List.iter
    (fun (a, b) ->
      if not (axis_aligned a b) then invalid_arg "Stree.of_edges: edge not axis-aligned";
      if a = b then invalid_arg "Stree.of_edges: zero-length edge")
    edges;
  let index = Hashtbl.create 64 in
  let nodes = ref [] and count = ref 0 in
  let intern p =
    match Hashtbl.find_opt index p with
    | Some i -> i
    | None ->
        let i = !count in
        Hashtbl.add index p i;
        nodes := p :: !nodes;
        incr count;
        i
  in
  let root_idx = intern root in
  let pairs = List.map (fun (a, b) -> (intern a, intern b)) edges in
  let n = !count in
  let nodes = Array.of_list (List.rev !nodes) in
  let adj = Array.make n [] in
  List.iter
    (fun (a, b) ->
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    pairs;
  if List.length pairs <> n - 1 then
    invalid_arg "Stree.of_edges: edge count does not match a tree";
  (* BFS from the root to orient parents and check connectivity. *)
  let parent = Array.make n (-2) in
  parent.(root_idx) <- -1;
  let queue = Queue.create () in
  Queue.add root_idx queue;
  let visited = ref 1 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if parent.(v) = -2 then begin
          parent.(v) <- u;
          incr visited;
          Queue.add v queue
        end)
      adj.(u)
  done;
  if !visited <> n then invalid_arg "Stree.of_edges: edges are not connected";
  { nodes; parent; root = root_idx }

let num_nodes t = Array.length t.nodes

let node t i = t.nodes.(i)

let children t =
  let kids = Array.make (num_nodes t) [] in
  Array.iteri (fun i p -> if p >= 0 then kids.(p) <- i :: kids.(p)) t.parent;
  Array.map (fun l -> Array.of_list (List.rev l)) kids

let edge_length t i =
  let p = t.parent.(i) in
  if p < 0 then invalid_arg "Stree.edge_length: root has no parent edge";
  let x0, y0 = t.nodes.(i) and x1, y1 = t.nodes.(p) in
  abs (x1 - x0) + abs (y1 - y0)

let total_wirelength t =
  let acc = ref 0 in
  for i = 0 to num_nodes t - 1 do
    if t.parent.(i) >= 0 then acc := !acc + edge_length t i
  done;
  !acc

let find_node t p = Array.find_index (fun q -> q = p) t.nodes

let on_edge (x, y) (x0, y0) (x1, y1) =
  if x0 = x1 then x = x0 && y >= min y0 y1 && y <= max y0 y1
  else y = y0 && x >= min x0 x1 && x <= max x0 x1

let contains_point t p =
  Array.exists (fun q -> q = p) t.nodes
  ||
  let hit = ref false in
  Array.iteri
    (fun i par -> if par >= 0 && on_edge p t.nodes.(i) t.nodes.(par) then hit := true)
    t.parent;
  !hit

let path_to_root t i =
  let rec go acc j = if j < 0 then List.rev acc else go (j :: acc) t.parent.(j) in
  go [] i

let degree t =
  let d = Array.make (num_nodes t) 0 in
  Array.iteri
    (fun i p ->
      if p >= 0 then begin
        d.(i) <- d.(i) + 1;
        d.(p) <- d.(p) + 1
      end)
    t.parent;
  d

let compress ~keep t =
  let keep_tbl = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace keep_tbl p ()) keep;
  let d = degree t in
  let n = num_nodes t in
  (* A node is dissolvable when it has exactly one child, one parent, both
     edges are collinear, and it is neither the root nor a kept pin tile. *)
  let kids = children t in
  let dissolve = Array.make n false in
  for i = 0 to n - 1 do
    if
      i <> t.root
      && d.(i) = 2
      && Array.length kids.(i) = 1
      && not (Hashtbl.mem keep_tbl t.nodes.(i))
    then begin
      let child = kids.(i).(0) and par = t.parent.(i) in
      let cx, cy = t.nodes.(child) and px, py = t.nodes.(par) and x, y = t.nodes.(i) in
      let collinear = (cx = x && px = x) || (cy = y && py = y) in
      if collinear then dissolve.(i) <- true
    end
  done;
  (* Re-emit edges, skipping through dissolved nodes. *)
  let rec effective_parent j =
    let p = t.parent.(j) in
    if p >= 0 && dissolve.(p) then effective_parent p else p
  in
  let edges = ref [] in
  for i = 0 to n - 1 do
    if (not dissolve.(i)) && t.parent.(i) >= 0 then begin
      let p = effective_parent i in
      if p >= 0 then edges := (t.nodes.(i), t.nodes.(p)) :: !edges
      else edges := (t.nodes.(i), t.nodes.(t.root)) :: !edges
    end
  done;
  if !edges = [] then t else of_edges ~root:t.nodes.(t.root) !edges

let validate t =
  let n = num_nodes t in
  let seen = Hashtbl.create n in
  let dup = ref None in
  Array.iter
    (fun p ->
      if Hashtbl.mem seen p && !dup = None then dup := Some p else Hashtbl.replace seen p ())
    t.nodes;
  match !dup with
  | Some (x, y) -> Error (Printf.sprintf "duplicate node coordinate (%d,%d)" x y)
  | None ->
      let roots = ref 0 and bad = ref None in
      Array.iteri
        (fun i p ->
          if p = -1 then incr roots
          else if p < 0 || p >= n then bad := Some (Printf.sprintf "node %d: bad parent" i)
          else begin
            if not (axis_aligned t.nodes.(i) t.nodes.(p)) then
              bad := Some (Printf.sprintf "node %d: edge not axis-aligned" i);
            if t.nodes.(i) = t.nodes.(p) then
              bad := Some (Printf.sprintf "node %d: zero-length edge" i)
          end)
        t.parent;
      if !roots <> 1 then Error (Printf.sprintf "%d roots" !roots)
      else begin
        match !bad with
        | Some msg -> Error msg
        | None ->
            (* acyclicity: walking up from every node must terminate *)
            let ok = ref true in
            for i = 0 to n - 1 do
              let steps = ref 0 and j = ref i in
              while !j >= 0 && !steps <= n do
                j := t.parent.(!j);
                incr steps
              done;
              if !steps > n then ok := false
            done;
            if !ok then Ok () else Error "cycle in parent pointers"
      end
