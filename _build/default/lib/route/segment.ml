open Cpla_grid

type t = {
  net_id : int;
  node : int;
  dir : Tech.dir;
  len : int;
  edges : Graph.edge2d array;
}

let edges_between (x0, y0) (x1, y1) =
  if y0 = y1 then
    Array.init (abs (x1 - x0)) (fun i -> { Graph.dir = Tech.Horizontal; x = min x0 x1 + i; y = y0 })
  else
    Array.init (abs (y1 - y0)) (fun i -> { Graph.dir = Tech.Vertical; x = x0; y = min y0 y1 + i })

let extract ~net_id tree =
  let n = Stree.num_nodes tree in
  let node_to_seg = Array.make n (-1) in
  let segs = ref [] and count = ref 0 in
  for node = 0 to n - 1 do
    let parent = tree.Stree.parent.(node) in
    if parent >= 0 then begin
      let (x0, y0) as a = Stree.node tree node in
      let (x1, y1) as b = Stree.node tree parent in
      let dir = if y0 = y1 then Tech.Horizontal else Tech.Vertical in
      let len = abs (x1 - x0) + abs (y1 - y0) in
      let seg = { net_id; node; dir; len; edges = edges_between a b } in
      node_to_seg.(node) <- !count;
      segs := seg :: !segs;
      incr count
    end
  done;
  (Array.of_list (List.rev !segs), node_to_seg)

let midpoint seg =
  let e = seg.edges.(Array.length seg.edges / 2) in
  (e.Graph.x, e.Graph.y)

let endpoints seg tree =
  (Stree.node tree seg.node, Stree.node tree tree.Stree.parent.(seg.node))
