open Cpla_grid

type header = {
  grid_x : int;
  grid_y : int;
  num_layers : int;
  vertical_capacity : int array;
  horizontal_capacity : int array;
  min_width : int array;
  min_spacing : int array;
  via_spacing : int array;
  lower_left_x : int;
  lower_left_y : int;
  tile_width : int;
  tile_height : int;
}

type adjustment = {
  from_x : int;
  from_y : int;
  from_layer : int;
  to_x : int;
  to_y : int;
  to_layer : int;
  new_capacity : int;
}

type design = {
  header : header;
  nets : Net.t array;
  adjustments : adjustment list;
}

(* ---- parsing ----------------------------------------------------------- *)

let tokens_of_string s =
  String.split_on_char '\n' s
  |> List.concat_map (fun line ->
         String.split_on_char ' ' line
         |> List.concat_map (String.split_on_char '\t')
         |> List.filter (fun t -> t <> ""))

exception Parse_error of string

let parse_exn content =
  let toks = ref (tokens_of_string content) in
  let next () =
    match !toks with
    | [] -> raise (Parse_error "unexpected end of file")
    | t :: rest ->
        toks := rest;
        t
  in
  let expect word =
    let t = next () in
    if String.lowercase_ascii t <> word then
      raise (Parse_error (Printf.sprintf "expected '%s', got '%s'" word t))
  in
  let int_tok () =
    let t = next () in
    match int_of_string_opt t with
    | Some v -> v
    | None -> raise (Parse_error (Printf.sprintf "expected integer, got '%s'" t))
  in
  expect "grid";
  let grid_x = int_tok () in
  let grid_y = int_tok () in
  let num_layers = int_tok () in
  let int_vector () = Array.init num_layers (fun _ -> int_tok ()) in
  expect "vertical";
  expect "capacity";
  let vertical_capacity = int_vector () in
  expect "horizontal";
  expect "capacity";
  let horizontal_capacity = int_vector () in
  expect "minimum";
  expect "width";
  let min_width = int_vector () in
  expect "minimum";
  expect "spacing";
  let min_spacing = int_vector () in
  expect "via";
  expect "spacing";
  let via_spacing = int_vector () in
  let lower_left_x = int_tok () in
  let lower_left_y = int_tok () in
  let tile_width = int_tok () in
  let tile_height = int_tok () in
  expect "num";
  expect "net";
  let num_nets = int_tok () in
  let header =
    {
      grid_x;
      grid_y;
      num_layers;
      vertical_capacity;
      horizontal_capacity;
      min_width;
      min_spacing;
      via_spacing;
      lower_left_x;
      lower_left_y;
      tile_width;
      tile_height;
    }
  in
  let tile_of_abs ax ay =
    let tx = (ax - lower_left_x) / tile_width in
    let ty = (ay - lower_left_y) / tile_height in
    (min (grid_x - 1) (max 0 tx), min (grid_y - 1) (max 0 ty))
  in
  let nets =
    Array.init num_nets (fun i ->
        let name = next () in
        let _file_id = int_tok () in
        let num_pins = int_tok () in
        let _min_width = int_tok () in
        let pins =
          Array.init num_pins (fun _ ->
              let ax = int_tok () in
              let ay = int_tok () in
              let l = int_tok () in
              let px, py = tile_of_abs ax ay in
              { Net.px; py; pl = l - 1 })
        in
        let pins = Net.dedup_pins pins in
        (* keep single-tile nets; callers skip them when routing *)
        let pins =
          if Array.length pins >= 2 then pins
          else if Array.length pins = 1 then [| pins.(0); pins.(0) |]
          else raise (Parse_error (Printf.sprintf "net %s has no pins" name))
        in
        Net.create ~id:i ~name ~pins)
  in
  let adjustments =
    match !toks with
    | [] -> []
    | _ ->
        let n_adj = int_tok () in
        List.init n_adj (fun _ ->
            let from_x = int_tok () in
            let from_y = int_tok () in
            let from_layer = int_tok () in
            let to_x = int_tok () in
            let to_y = int_tok () in
            let to_layer = int_tok () in
            let new_capacity = int_tok () in
            { from_x; from_y; from_layer; to_x; to_y; to_layer; new_capacity })
  in
  { header; nets; adjustments }

let parse content =
  match parse_exn content with
  | design -> Ok design
  | exception Parse_error msg -> Error msg

(* ---- writing ----------------------------------------------------------- *)

let write design =
  let h = design.header in
  let buf = Buffer.create 4096 in
  let vec a = String.concat " " (Array.to_list (Array.map string_of_int a)) in
  Buffer.add_string buf (Printf.sprintf "grid %d %d %d\n" h.grid_x h.grid_y h.num_layers);
  Buffer.add_string buf (Printf.sprintf "vertical capacity %s\n" (vec h.vertical_capacity));
  Buffer.add_string buf (Printf.sprintf "horizontal capacity %s\n" (vec h.horizontal_capacity));
  Buffer.add_string buf (Printf.sprintf "minimum width %s\n" (vec h.min_width));
  Buffer.add_string buf (Printf.sprintf "minimum spacing %s\n" (vec h.min_spacing));
  Buffer.add_string buf (Printf.sprintf "via spacing %s\n" (vec h.via_spacing));
  Buffer.add_string buf
    (Printf.sprintf "%d %d %d %d\n\n" h.lower_left_x h.lower_left_y h.tile_width h.tile_height);
  Buffer.add_string buf (Printf.sprintf "num net %d\n" (Array.length design.nets));
  Array.iteri
    (fun i net ->
      Buffer.add_string buf
        (Printf.sprintf "%s %d %d 1\n" net.Net.name i (Array.length net.Net.pins));
      Array.iter
        (fun p ->
          let ax = h.lower_left_x + (p.Net.px * h.tile_width) + (h.tile_width / 2) in
          let ay = h.lower_left_y + (p.Net.py * h.tile_height) + (h.tile_height / 2) in
          Buffer.add_string buf (Printf.sprintf "%d %d %d\n" ax ay (p.Net.pl + 1)))
        net.Net.pins)
    design.nets;
  Buffer.add_string buf (Printf.sprintf "\n%d\n" (List.length design.adjustments));
  List.iter
    (fun a ->
      Buffer.add_string buf
        (Printf.sprintf "%d %d %d %d %d %d %d\n" a.from_x a.from_y a.from_layer a.to_x a.to_y
           a.to_layer a.new_capacity))
    design.adjustments;
  Buffer.contents buf

(* ---- graph construction ------------------------------------------------ *)

let to_graph design =
  let h = design.header in
  let base = Tech.default ~num_layers:h.num_layers () in
  (* Directions follow the capacity vectors: a layer with zero horizontal
     capacity is vertical, and vice versa. *)
  let layers =
    Array.mapi
      (fun l layer ->
        let dir =
          if h.horizontal_capacity.(l) > 0 && h.vertical_capacity.(l) = 0 then Tech.Horizontal
          else if h.vertical_capacity.(l) > 0 && h.horizontal_capacity.(l) = 0 then Tech.Vertical
          else layer.Tech.dir
        in
        { layer with Tech.dir })
      base.Tech.layers
  in
  let tech = { base with Tech.layers } in
  let layer_capacity =
    Array.init h.num_layers (fun l ->
        match Tech.layer_dir tech l with
        | Tech.Horizontal -> h.horizontal_capacity.(l)
        | Tech.Vertical -> h.vertical_capacity.(l))
  in
  let graph = Graph.create ~tech ~width:h.grid_x ~height:h.grid_y ~layer_capacity in
  List.iter
    (fun a ->
      let layer = a.from_layer - 1 in
      if layer >= 0 && layer < h.num_layers && a.from_layer = a.to_layer then begin
        let dir = Tech.layer_dir tech layer in
        let e =
          { Graph.dir; x = min a.from_x a.to_x; y = min a.from_y a.to_y }
        in
        if Graph.edge_exists graph e then begin
          let current = Graph.capacity graph e ~layer in
          Graph.reduce_capacity graph e ~layer ~by:(current - a.new_capacity)
        end
      end)
    design.adjustments;
  graph
