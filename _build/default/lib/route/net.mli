(** Nets and pins.

    Pin coordinates are tile indices on the global-routing grid; [pl] is the
    metal layer the pin sits on (0 = metal 1, where standard-cell pins live
    in the ISPD'08 benchmarks).  The first pin of a net is its source
    (driver); the rest are sinks. *)

type pin = {
  px : int;
  py : int;
  pl : int;
}

type t = {
  id : int;       (** dense index in the design's net array *)
  name : string;
  pins : pin array;  (** [pins.(0)] is the source; length ≥ 2 *)
}

val create : id:int -> name:string -> pins:pin array -> t
(** @raise Invalid_argument when fewer than two pins are given. *)

val source : t -> pin

val sinks : t -> pin array

val num_pins : t -> int

val hpwl : t -> int
(** Half-perimeter wirelength of the pin bounding box, the classic net-size
    estimate used to order nets for routing. *)

val dedup_pins : pin array -> pin array
(** Remove pins sharing a tile (keeping the first), preserving order.  Nets
    whose pins collapse to a single tile should be dropped by the caller. *)
