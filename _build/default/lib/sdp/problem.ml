open Cpla_numeric

type entry = { i : int; j : int; v : float }

type constr = { terms : entry list; b : float }

type t = {
  dim : int;
  cost : entry list;
  constraints : constr list;
}

let check_entry dim e =
  if e.i < 0 || e.j >= dim || e.i > e.j then
    invalid_arg "Sdp.Problem: entry must satisfy 0 <= i <= j < dim"

let create ~dim ~cost ~constraints =
  if dim <= 0 then invalid_arg "Sdp.Problem.create: dim must be positive";
  List.iter (check_entry dim) cost;
  List.iter (fun c -> List.iter (check_entry dim) c.terms) constraints;
  { dim; cost; constraints }

let inner entries x =
  List.fold_left
    (fun acc e ->
      if e.i = e.j then acc +. (e.v *. Mat.get x e.i e.j)
      else acc +. (2.0 *. e.v *. Mat.get x e.i e.j))
    0.0 entries

let violations t x =
  Array.of_list (List.map (fun c -> inner c.terms x -. c.b) t.constraints)
