lib/sdp/problem.ml: Array Cpla_numeric List Mat
