lib/sdp/solver.mli: Cpla_numeric Problem
