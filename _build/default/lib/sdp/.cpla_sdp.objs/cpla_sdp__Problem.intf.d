lib/sdp/problem.mli: Cpla_numeric
