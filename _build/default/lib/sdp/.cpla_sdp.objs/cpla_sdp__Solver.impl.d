lib/sdp/solver.ml: Array Cpla_numeric Cpla_util Float Lbfgs List Mat Problem Rng
