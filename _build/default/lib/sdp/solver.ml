open Cpla_numeric
open Cpla_util

type options = {
  rank : int;
  max_outer : int;
  inner_iters : int;
  sigma0 : float;
  sigma_growth : float;
  feas_tol : float;
  seed : int;
}

let default_options =
  {
    rank = 0;
    max_outer = 12;
    inner_iters = 150;
    sigma0 = 10.0;
    sigma_growth = 4.0;
    feas_tol = 1e-4;
    seed = 7;
  }

type result = {
  v : Mat.t;
  x_diag : float array;
  objective : float;
  max_violation : float;
  outer_rounds : int;
}

(* V is stored flat row-major: V_{i,c} = v.((i*r)+c). *)

let inner_vvt entries v r =
  (* ⟨A, VVᵀ⟩ with A sparse symmetric (upper triangle given) *)
  List.fold_left
    (fun acc (e : Problem.entry) ->
      let dot =
        let s = ref 0.0 in
        for c = 0 to r - 1 do
          s := !s +. (v.((e.i * r) + c) *. v.((e.j * r) + c))
        done;
        !s
      in
      if e.i = e.j then acc +. (e.v *. dot) else acc +. (2.0 *. e.v *. dot))
    0.0 entries

(* grad += w * 2·A·V for sparse symmetric A *)
let accumulate_grad entries v r w grad =
  List.iter
    (fun (e : Problem.entry) ->
      if e.i = e.j then
        for c = 0 to r - 1 do
          grad.((e.i * r) + c) <- grad.((e.i * r) + c) +. (2.0 *. w *. e.v *. v.((e.i * r) + c))
        done
      else
        for c = 0 to r - 1 do
          grad.((e.i * r) + c) <- grad.((e.i * r) + c) +. (2.0 *. w *. e.v *. v.((e.j * r) + c));
          grad.((e.j * r) + c) <- grad.((e.j * r) + c) +. (2.0 *. w *. e.v *. v.((e.i * r) + c))
        done)
    entries

let auto_rank problem =
  let m = List.length problem.Problem.constraints in
  let r = 1 + int_of_float (Float.ceil (sqrt (2.0 *. float_of_int m))) in
  max 2 (min problem.Problem.dim (min r 12))

let solve ?(options = default_options) (problem : Problem.t) =
  let dim = problem.Problem.dim in
  let r = if options.rank > 0 then min options.rank dim else auto_rank problem in
  let constraints = Array.of_list problem.Problem.constraints in
  let m = Array.length constraints in
  let rng = Rng.create options.seed in
  let v0 = Array.init (dim * r) (fun _ -> Rng.gaussian rng *. 0.3) in
  let y = Array.make m 0.0 in
  let sigma = ref options.sigma0 in
  let objective_and_grad v =
    let grad = Array.make (dim * r) 0.0 in
    let obj = inner_vvt problem.Problem.cost v r in
    accumulate_grad problem.Problem.cost v r 1.0 grad;
    let penalty = ref 0.0 in
    Array.iteri
      (fun k (c : Problem.constr) ->
        let res = inner_vvt c.Problem.terms v r -. c.Problem.b in
        penalty := !penalty +. ((-.y.(k)) *. res) +. (0.5 *. !sigma *. res *. res);
        let w = (!sigma *. res) -. y.(k) in
        accumulate_grad c.Problem.terms v r w grad)
      constraints;
    (obj +. !penalty, grad)
  in
  let max_violation v =
    Array.fold_left
      (fun acc (c : Problem.constr) ->
        Float.max acc (Float.abs (inner_vvt c.Problem.terms v r -. c.Problem.b)))
      0.0 constraints
  in
  let v = ref v0 in
  let rounds = ref 0 in
  let prev_viol = ref infinity in
  let continue = ref true in
  while !continue && !rounds < options.max_outer do
    let res =
      Lbfgs.minimize ~max_iter:options.inner_iters ~grad_tol:1e-7 ~f:objective_and_grad !v
    in
    v := res.Lbfgs.x;
    let viol = max_violation !v in
    (* multiplier update *)
    Array.iteri
      (fun k (c : Problem.constr) ->
        let r_k = inner_vvt c.Problem.terms !v r -. c.Problem.b in
        y.(k) <- y.(k) -. (!sigma *. r_k))
      constraints;
    if viol > 0.25 *. !prev_viol then sigma := !sigma *. options.sigma_growth;
    prev_viol := viol;
    incr rounds;
    if viol <= options.feas_tol then continue := false
  done;
  let vm = Mat.init dim r (fun i c -> !v.((i * r) + c)) in
  let x_diag =
    Array.init dim (fun i ->
        let s = ref 0.0 in
        for c = 0 to r - 1 do
          s := !s +. (!v.((i * r) + c) ** 2.0)
        done;
        !s)
  in
  {
    v = vm;
    x_diag;
    objective = inner_vvt problem.Problem.cost !v r;
    max_violation = max_violation !v;
    outer_rounds = !rounds;
  }

let x_entry result i j =
  let r = result.v.Mat.cols in
  let acc = ref 0.0 in
  for c = 0 to r - 1 do
    acc := !acc +. (Mat.get result.v i c *. Mat.get result.v j c)
  done;
  !acc

let x_matrix result =
  let d = result.v.Mat.rows in
  Mat.init d d (fun i j -> x_entry result i j)
