(* ISPD'08 format round trip: parse a benchmark fragment, build the grid,
   route it, run CPLA, and write the design back out in the same format.
   Users with the real ISPD'08 files can point this at them.

   Run with:  dune exec examples/ispd_io.exe [file.gr] *)

open Cpla_route
open Cpla_timing

let embedded =
  "grid 16 16 4\n\
   vertical capacity 0 8 0 8\n\
   horizontal capacity 8 0 8 0\n\
   minimum width 1 1 1 1\n\
   minimum spacing 1 1 1 1\n\
   via spacing 1 1 1 1\n\
   0 0 10 10\n\
   num net 4\n\
   clk 0 3 1\n\
   15 15 1\n\
   125 15 1\n\
   75 145 1\n\
   data0 1 2 1\n\
   25 25 1\n\
   145 105 1\n\
   data1 2 2 1\n\
   35 125 1\n\
   115 35 1\n\
   short 3 2 1\n\
   55 55 1\n\
   75 55 1\n\
   0\n"

let () =
  let content =
    if Array.length Sys.argv > 1 then begin
      let ic = open_in Sys.argv.(1) in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    end
    else embedded
  in
  match Ispd08.parse content with
  | Error msg ->
      Printf.eprintf "parse error: %s\n" msg;
      exit 1
  | Ok design ->
      Printf.printf "parsed %d nets on a %dx%dx%d grid\n"
        (Array.length design.Ispd08.nets)
        design.Ispd08.header.Ispd08.grid_x design.Ispd08.header.Ispd08.grid_y
        design.Ispd08.header.Ispd08.num_layers;
      let graph = Ispd08.to_graph design in
      let routed = Router.route_all ~graph design.Ispd08.nets in
      let asg =
        Assignment.create ~graph ~nets:design.Ispd08.nets ~trees:routed.Router.trees
      in
      Init_assign.run asg;
      let released = Critical.select asg ~ratio:0.5 in
      let avg0, max0 = Critical.avg_max_tcp asg released in
      let report = Cpla.Driver.optimize_released asg ~released in
      Printf.printf "CPLA: Avg(Tcp) %.1f -> %.1f, Max(Tcp) %.1f -> %.1f\n" avg0
        report.Cpla.Driver.avg_tcp max0 report.Cpla.Driver.max_tcp;
      let out = Ispd08.write design in
      Printf.printf "\nround-tripped benchmark file (%d bytes):\n%s"
        (String.length out)
        (String.concat "\n" (List.filteri (fun i _ -> i < 10) (String.split_on_char '\n' out)));
      Printf.printf "...\n"
