examples/ispd_io.ml: Array Assignment Cpla Cpla_route Cpla_timing Critical Init_assign Ispd08 List Printf Router String Sys
