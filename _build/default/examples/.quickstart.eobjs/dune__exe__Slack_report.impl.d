examples/slack_report.ml: Array Assignment Cpla Cpla_route Cpla_timing Float Init_assign Printf Router Slack Synth
