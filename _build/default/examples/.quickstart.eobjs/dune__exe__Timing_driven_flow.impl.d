examples/timing_driven_flow.ml: Array Assignment Cpla Cpla_route Cpla_tila Cpla_timing Cpla_util Critical Init_assign Printf Router Synth Table Timer
