examples/ispd_io.mli:
