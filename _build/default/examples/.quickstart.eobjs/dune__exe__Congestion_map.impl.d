examples/congestion_map.ml: Array Assignment Cpla Cpla_expt Cpla_grid Cpla_route Cpla_timing Critical List Printf Segment
