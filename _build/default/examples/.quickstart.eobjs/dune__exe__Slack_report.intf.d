examples/slack_report.mli:
