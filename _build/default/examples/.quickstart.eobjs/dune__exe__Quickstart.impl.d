examples/quickstart.ml: Array Assignment Cpla Cpla_grid Cpla_route Cpla_timing Critical Elmore Graph Init_assign Net Printf Stree Tech
