examples/quickstart.mli:
