examples/congestion_map.mli:
