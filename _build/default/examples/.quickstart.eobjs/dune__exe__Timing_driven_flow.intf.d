examples/timing_driven_flow.mli:
