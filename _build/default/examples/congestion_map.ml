(* Routing-density visualisation (the Fig. 3b scenario): route a design and
   render the per-tile congestion so the non-uniform density that motivates
   self-adaptive partitioning is visible, then show how the adaptive
   quadtree reacts to it.

   Run with:  dune exec examples/congestion_map.exe *)

open Cpla_route
open Cpla_timing

let () =
  let prep = Cpla_expt.Suite.prepare (Cpla_expt.Suite.find "adaptec1") in
  let asg = prep.Cpla_expt.Suite.asg in
  let graph = Assignment.graph asg in
  Printf.printf "routing density of %s (%dx%d, %d layers):\n\n"
    prep.Cpla_expt.Suite.bench.Cpla_expt.Suite.name (Cpla_grid.Graph.width graph)
    (Cpla_grid.Graph.height graph)
    (Cpla_grid.Graph.num_layers graph);
  print_string (Cpla_grid.Graph.density_map graph);
  Printf.printf "\n('.'=idle, '0'-'9' = 0-90%% utilisation, '#' = saturated)\n\n";

  (* partition the critical segments and show how leaf sizes adapt *)
  let released = Critical.select asg ~ratio:0.005 in
  let items =
    Array.to_list released
    |> List.concat_map (fun net ->
           Array.to_list
             (Array.mapi
                (fun seg s -> { Cpla.Partition.net; seg; mid = Segment.midpoint s })
                (Assignment.segments asg net)))
  in
  List.iter
    (fun nmax ->
      let leaves =
        Cpla.Partition.build
          ~width:(Cpla_grid.Graph.width graph)
          ~height:(Cpla_grid.Graph.height graph)
          ~k:4 ~max_segments:nmax items
      in
      let n, depth, mean = Cpla.Partition.stats leaves in
      Printf.printf
        "max %2d segments/partition -> %3d leaves, quadtree depth %d, %.1f segments/leaf\n"
        nmax n depth mean)
    [ 5; 10; 20; 40; 80 ]
