(* Slack-driven timing closure: instead of releasing a fixed fraction of
   nets by raw delay (the paper's critical ratio), derive a per-net timing
   budget, release only the *violating* nets, and iterate CPLA until the
   design meets timing or stops improving — the way a closure flow would
   actually use this engine.

   Run with:  dune exec examples/slack_report.exe *)

open Cpla_route
open Cpla_timing

let () =
  let spec =
    {
      Synth.default_spec with
      Synth.name = "slack-demo";
      width = 40;
      height = 40;
      num_nets = 2200;
      capacity = 8;
      seed = 77;
      mean_extra_pins = 2.4;
    }
  in
  let graph, nets = Synth.generate spec in
  let routed = Router.route_all ~graph nets in
  let asg = Assignment.create ~graph ~nets ~trees:routed.Router.trees in
  Init_assign.run asg;
  (* each net gets 3.5x its zero-load lower bound as budget *)
  let budget = Slack.Scaled 3.5 in
  let show label =
    let r = Slack.analyze asg budget in
    Printf.printf "%-22s violations=%4d  WNS=%10.1f  TNS=%12.1f\n%!" label
      r.Slack.violations r.Slack.wns r.Slack.tns;
    r
  in
  let before = show "initial assignment:" in
  let rec close round =
    if round > 4 then ()
    else begin
      let released = Slack.select_violating asg budget ~max_nets:40 in
      if Array.length released = 0 then Printf.printf "timing met.\n%!"
      else begin
        Printf.printf "round %d: releasing %d violating nets...\n%!" round
          (Array.length released);
        let report = Cpla.Driver.optimize_released asg ~released in
        ignore (show (Printf.sprintf "after round %d:" round));
        if report.Cpla.Driver.iterations = 0 then () else close (round + 1)
      end
    end
  in
  close 1;
  let after = Slack.analyze asg budget in
  Printf.printf "\nTNS improved by %.1f%% (%.1f -> %.1f)\n"
    (100.0 *. (after.Slack.tns -. before.Slack.tns) /. Float.abs before.Slack.tns)
    before.Slack.tns after.Slack.tns
