(* Timing-driven layer-assignment flow on a realistic synthetic design —
   the scenario the paper's introduction motivates: a routed design whose
   critical paths violate timing because long nets sit on thin low metal.

   The flow: synthesise -> global route -> initial assignment -> compare
   TILA against the SDP-based CPLA from identical starting points.

   Run with:  dune exec examples/timing_driven_flow.exe *)

open Cpla_route
open Cpla_timing
open Cpla_util

let build () =
  let spec =
    {
      Synth.default_spec with
      Synth.name = "flow-demo";
      width = 48;
      height = 48;
      num_nets = 3200;
      capacity = 8;
      seed = 42;
      mean_extra_pins = 2.5;
    }
  in
  let graph, nets = Synth.generate spec in
  let routed = Router.route_all ~graph nets in
  let asg = Assignment.create ~graph ~nets ~trees:routed.Router.trees in
  Init_assign.run asg;
  (asg, routed)

let () =
  let asg, routed = build () in
  Printf.printf "design: %d nets routed, 2-D overflow %d, maze fallbacks %d\n"
    (Assignment.num_nets asg) routed.Router.overflow_2d routed.Router.maze_routes;
  let released = Critical.select asg ~ratio:0.01 in
  let avg0, max0 = Critical.avg_max_tcp asg released in
  Printf.printf "released %d critical nets (1%%): Avg(Tcp)=%.1f Max(Tcp)=%.1f\n\n"
    (Array.length released) avg0 max0;

  (* TILA baseline *)
  let (_ : Cpla_tila.Tila.stats), tila_s =
    Timer.time (fun () -> Cpla_tila.Tila.optimize asg ~released)
  in
  let tila = Cpla.Metrics.measure asg ~released ~cpu_s:tila_s in

  (* fresh identical design for the SDP run *)
  let asg2, _ = build () in
  let released2 = Critical.select asg2 ~ratio:0.01 in
  let (_ : Cpla.Driver.report), sdp_s =
    Timer.time (fun () -> Cpla.Driver.optimize_released asg2 ~released:released2)
  in
  let sdp = Cpla.Metrics.measure asg2 ~released:released2 ~cpu_s:sdp_s in

  let t =
    Table.create ~headers:[ "method"; "Avg(Tcp)"; "Max(Tcp)"; "OV#"; "via#"; "CPU(s)" ]
  in
  let row name (m : Cpla.Metrics.t) =
    Table.add_row t
      [
        name;
        Table.cell_f m.Cpla.Metrics.avg_tcp;
        Table.cell_f m.Cpla.Metrics.max_tcp;
        Table.cell_i m.Cpla.Metrics.via_overflow;
        Table.cell_i m.Cpla.Metrics.via_count;
        Table.cell_f ~digits:2 m.Cpla.Metrics.cpu_s;
      ]
  in
  Table.add_row t
    [ "initial"; Table.cell_f avg0; Table.cell_f max0; "-"; "-"; "-" ];
  row "TILA" tila;
  row "CPLA (SDP)" sdp;
  Table.print t;
  Printf.printf "\nSDP vs TILA: Avg %.2fx, Max %.2fx\n"
    (sdp.Cpla.Metrics.avg_tcp /. tila.Cpla.Metrics.avg_tcp)
    (sdp.Cpla.Metrics.max_tcp /. tila.Cpla.Metrics.max_tcp)
