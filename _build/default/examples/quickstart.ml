(* Quickstart: the smallest end-to-end CPLA run.

   Builds a hand-made 8x8 design with two nets, routes nothing (trees are
   given explicitly), runs the initial via-minimising assignment, then the
   SDP-based critical-path optimisation, and prints what moved where.

   Run with:  dune exec examples/quickstart.exe *)

open Cpla_grid
open Cpla_route
open Cpla_timing

let pin px py = { Net.px; py; pl = 0 }

let () =
  (* 1. a 4-layer 8x8 grid with uniform capacity *)
  let tech = Tech.default ~num_layers:4 () in
  let graph = Graph.create ~tech ~width:8 ~height:8 ~layer_capacity:(Array.make 4 4) in

  (* 2. two nets: a long timing-critical net and a short local one *)
  let critical = Net.create ~id:0 ~name:"crit" ~pins:[| pin 0 0; pin 7 0; pin 3 5 |] in
  let local = Net.create ~id:1 ~name:"local" ~pins:[| pin 2 1; pin 4 1 |] in
  let crit_tree =
    Stree.of_edges ~root:(0, 0) [ ((0, 0), (3, 0)); ((3, 0), (7, 0)); ((3, 0), (3, 5)) ]
  in
  let local_tree = Stree.of_edges ~root:(2, 1) [ ((2, 1), (4, 1)) ] in
  let asg =
    Assignment.create ~graph ~nets:[| critical; local |]
      ~trees:[| Some crit_tree; Some local_tree |]
  in

  (* 3. initial assignment: via-count driven, timing-oblivious *)
  Init_assign.run asg;
  let show label =
    Printf.printf "%s\n" label;
    Array.iteri
      (fun net _ ->
        let d = Elmore.analyze asg net in
        Printf.printf "  net %-5s  Tcp = %8.1f   layers:" (Assignment.net asg net).Net.name
          d.Elmore.worst_delay;
        Array.iteri
          (fun seg _ -> Printf.printf " %d" (Assignment.layer asg ~net ~seg))
          (Assignment.segments asg net);
        print_newline ())
      [| (); () |]
  in
  show "after initial (via-minimising) assignment:";

  (* 4. release the worst net and optimise its critical path with the SDP *)
  let released = Critical.select asg ~ratio:0.5 in
  let report = Cpla.Driver.optimize_released asg ~released in
  show "after CPLA (SDP + post-mapping):";
  Printf.printf
    "released %d net(s), %d outer iteration(s), %d partition(s) solved\n"
    (Array.length report.Cpla.Driver.released)
    report.Cpla.Driver.iterations report.Cpla.Driver.partitions_solved;
  Printf.printf "Avg(Tcp) = %.1f   Max(Tcp) = %.1f\n" report.Cpla.Driver.avg_tcp
    report.Cpla.Driver.max_tcp
