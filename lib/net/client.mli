(** Blocking daemon client ([cpla submit], tests, benchmarks).

    One TCP connection, synchronous: {!send} writes a framed request,
    {!recv} blocks for the next incoming message (response or job
    event).  {!call} and {!await_terminal} layer the common
    request/response and event-streaming patterns on top.

    Not domain-safe: one client per domain. *)

type t

val connect : ?timeout_s:float -> host:string -> port:int -> unit -> t
(** Connect, retrying refused connections until [timeout_s] (default
    10 s) has elapsed — covers racing a daemon that is still binding.
    @raise Unix.Unix_error when the connection cannot be established. *)

val close : t -> unit
(** Idempotent. *)

val send : t -> Protocol.request -> unit
[@@cpla.allow "unused-export"]
(** Write one framed request (blocking) without waiting for the
    response — the extension point for pipelined clients; {!call} is
    the synchronous wrapper everything in-tree uses. *)

val recv : ?timeout_s:float -> t -> (Protocol.incoming, string) result
(** Block for the next message.  [Error] covers malformed frames, server
    close, and — when [timeout_s] is given — expiry of the wait. *)

val call :
  ?timeout_s:float ->
  ?trace:string ->
  ?on_event:(Protocol.event -> unit) ->
  t ->
  Protocol.req ->
  (Protocol.response, string) result
(** Assign the next request id, send, and block until the matching
    response arrives.  Job events received while waiting go to
    [on_event] (they belong to this connection's earlier submissions).
    [timeout_s] bounds each individual wait, not the whole exchange. *)

val await_terminal :
  ?timeout_s:float ->
  ?on_event:(Protocol.event -> unit) ->
  t ->
  job:int ->
  (Cpla_serve.Job.terminal, string) result
(** Consume the event stream until [job] reaches a terminal state and
    reconstruct it ({!Protocol.terminal_of_event}).  [on_event] sees
    every event of [job], the terminal one included; other jobs' events
    and stray responses are skipped. *)
