module Timer = Cpla_util.Timer
module Span = Cpla_obs.Span
module Metrics = Cpla_obs.Metrics
module Event = Cpla_obs.Event
module Job = Cpla_serve.Job
module Session = Cpla_serve.Session
module Scheduler = Cpla_serve.Scheduler

type config = {
  host : string;
  port : int;
  workers : int;
  queue_bound : int;
  cost_bound : float;
  quota_rate : float;
  quota_burst : float;
  default_deadline_s : float option;
  max_frame : int;
  drain_grace_s : float;
  solve_cache : bool;
  log : string -> unit;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7171;
    workers = Cpla_util.Pool.recommended_workers ();
    queue_bound = 64;
    cost_bound = infinity;
    quota_rate = 20.0;
    quota_burst = 40.0;
    default_deadline_s = None;
    max_frame = Frame.max_frame_default;
    drain_grace_s = 5.0;
    solve_cache = false;
    log = ignore;
  }

type job_info = {
  ji_conn : Conn.t;
  ji_arrival : Timer.t;  (* request arrival, for the job-latency histogram *)
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  session : Session.t;
  clock : Timer.t;  (* monotonic origin for the quota buckets *)
  (* Worker domains hand job events to the loop through this queue (plus
     a wake byte); everything below it is loop-domain-only state. *)
  evq : (Conn.t * Protocol.event) Queue.t;
  evq_m : Mutex.t;
  stop : bool Atomic.t;
  mutable draining : bool;
  mutable listening : bool;
  mutable conns : Conn.t list;
  jobs : (int, job_info) Hashtbl.t;  (* in-flight, by server-assigned id *)
  mutable next_job : int;
  mutable settled_n : int;
  mutable shed_n : int;
  mutable drain_started : Timer.t option;
}

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
        invalid_arg (Printf.sprintf "Server.create: unknown host %S" host)
    | h -> h.Unix.h_addr_list.(0))

let create ?(config = default_config) () =
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (match
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd (Unix.ADDR_INET (resolve config.host, config.port));
     Unix.listen listen_fd 64;
     Unix.set_nonblock listen_fd
   with
  | () -> ()
  | exception e ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  {
    cfg = config;
    listen_fd;
    bound_port;
    wake_r;
    wake_w;
    session = Session.create ~workers:config.workers ~solve_cache:config.solve_cache ();
    clock = Timer.wall ();
    evq = Queue.create ();
    evq_m = Mutex.create ();
    stop = Atomic.make false;
    draining = false;
    listening = true;
    conns = [];
    jobs = Hashtbl.create 64;
    next_job = 0;
    settled_n = 0;
    shed_n = 0;
    drain_started = None;
  }

let port t = t.bound_port

let wake t =
  let b = Bytes.make 1 '!' in
  (* self-pipe write; the fd is non-blocking and a full pipe already means
     a wake-up is pending *)
  try ignore (Unix.write t.wake_w b 0 1 [@cpla.allow "blocking-in-loop"])
  with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE | Unix.EBADF), _, _) ->
    ()

let shutdown t =
  Atomic.set t.stop true;
  wake t

let now t = Timer.elapsed_s t.clock

(* ---- event plumbing (worker domains -> loop) ------------------------------ *)

let push_event t conn ev =
  (* O(1) critical section shared with worker domains *)
  (Mutex.protect t.evq_m (fun () -> Queue.push (conn, ev) t.evq)
  [@cpla.allow "blocking-in-loop"]);
  wake t

let pump_events t =
  let batch =
    (* holders only push or swap the queue; the section is O(queued events) *)
    (Mutex.protect t.evq_m (fun () ->
         let l = List.of_seq (Queue.to_seq t.evq) in
         Queue.clear t.evq;
         l)
    [@cpla.allow "blocking-in-loop"])
  in
  List.iter
    (fun (conn, (ev : Protocol.event)) ->
      Conn.send conn (Protocol.event_to_json ev);
      if Protocol.is_terminal_state ev.Protocol.state then
        match Hashtbl.find_opt t.jobs ev.Protocol.job with
        | None -> ()
        | Some info ->
            Hashtbl.remove t.jobs ev.Protocol.job;
            t.settled_n <- t.settled_n + 1;
            Metrics.observe ~lo:0.0 ~hi:10_000.0 ~bins:40 "serve/job-latency-ms"
              (Timer.elapsed_s info.ji_arrival *. 1000.0))
    batch

(* ---- request handling ----------------------------------------------------- *)

let shed t ~id reason message =
  t.shed_n <- t.shed_n + 1;
  Metrics.incr ("net/shed-" ^ Protocol.shed_reason_string reason);
  Protocol.Error { id = Some id; code = Protocol.Shed reason; message }

let stats t =
  let cache_hits, cache_misses =
    match Session.cache_stats t.session with None -> (0, 0) | Some hm -> hm
  in
  {
    Protocol.pending = Session.pending t.session;
    running = Session.running t.session;
    settled = t.settled_n;
    shed = t.shed_n;
    draining = t.draining;
    cache_hits;
    cache_misses;
  }

let bad_request ~id message = Protocol.Error { id; code = Protocol.Bad_request; message }

let handle_submit t conn ~id ~trace spec_line =
  if t.draining then shed t ~id Protocol.Draining "server is draining"
  else if not (Quota.take (Conn.quota conn) ~now:(now t) ~cost:1.0) then
    shed t ~id Protocol.Quota "client quota exhausted; retry later"
  else
    match Job.parse_manifest ?default_deadline_s:t.cfg.default_deadline_s spec_line with
    | Error msg -> bad_request ~id:(Some id) msg
    | Ok [] -> bad_request ~id:(Some id) "empty spec line"
    | Ok (_ :: _ :: _) -> bad_request ~id:(Some id) "one job per submit"
    | Ok [ spec ] ->
        let pending = Session.pending t.session in
        if pending >= t.cfg.queue_bound then
          shed t ~id Protocol.Queue_full
            (Printf.sprintf "pending queue full (%d jobs, bound %d)" pending
               t.cfg.queue_bound)
        else
          let cost = Scheduler.expected_cost spec in
          let queued = Session.pending_cost t.session in
          if queued +. cost > t.cfg.cost_bound then
            shed t ~id Protocol.Cost_bound
              (Printf.sprintf "queued cost %.1f + job cost %.1f exceeds bound %.1f"
                 queued cost t.cfg.cost_bound)
          else begin
            let job = t.next_job in
            t.next_job <- job + 1;
            let spec = { spec with Job.id = job } in
            Hashtbl.replace t.jobs job { ji_conn = conn; ji_arrival = Timer.wall () };
            let on_event ev = push_event t conn (Protocol.event_of ~job ?trace ev) in
            match Session.submit t.session ~on_event spec with
            | _handle -> Protocol.Result { id; trace; resp = Protocol.Accepted { job } }
            | exception Invalid_argument _ ->
                Hashtbl.remove t.jobs job;
                shed t ~id Protocol.Draining "server is draining"
          end

let handle_cancel t conn ~id ~trace job =
  let won =
    match Hashtbl.find_opt t.jobs job with
    | Some info when info.ji_conn == conn -> Session.cancel t.session ~id:job
    | Some _ | None -> false  (* unknown, settled, or another client's job *)
  in
  Protocol.Result { id; trace; resp = Protocol.Cancel_r { job; won } }

let dispatch t conn (r : Protocol.request) =
  let endpoint = Protocol.method_string r.Protocol.req in
  let watch = Timer.wall () in
  let response =
    Span.with_ ~name:"net/request"
      ~args:
        [
          ("method", Event.Str endpoint);
          ("id", Event.Int r.Protocol.id);
          ("trace", Event.Str (Option.value ~default:"" r.Protocol.trace));
          ("peer", Event.Str (Conn.peer conn));
        ]
      (fun () ->
        let id = r.Protocol.id and trace = r.Protocol.trace in
        match r.Protocol.req with
        | Protocol.Submit { spec_line } -> handle_submit t conn ~id ~trace spec_line
        | Protocol.Cancel { job } -> handle_cancel t conn ~id ~trace job
        | Protocol.Stats -> Protocol.Result { id; trace; resp = Protocol.Stats_r (stats t) }
        | Protocol.Ping -> Protocol.Result { id; trace; resp = Protocol.Pong })
  in
  Metrics.incr "net/requests";
  Metrics.observe ~lo:0.0 ~hi:1000.0 ~bins:20
    ("net/latency-ms/" ^ endpoint)
    (Timer.elapsed_s watch *. 1000.0);
  Conn.send conn (Protocol.response_to_json response)

let handle_frame t conn payload =
  match Json.parse payload with
  | Error msg -> Conn.send conn (Protocol.response_to_json
                                   (bad_request ~id:None ("invalid JSON: " ^ msg)))
  | Ok v -> (
      match Protocol.request_of_json v with
      | Ok r -> dispatch t conn r
      | Error msg ->
          let id = Option.bind (Json.member "id" v) Json.as_int in
          let code =
            if String.length msg >= 14 && String.sub msg 0 14 = "unknown method" then
              Protocol.Unknown_method
            else Protocol.Bad_request
          in
          Conn.send conn
            (Protocol.response_to_json (Protocol.Error { id; code; message = msg })))

let rec drain_frames t conn =
  match Conn.next_frame conn with
  | None -> ()
  | Some (Frame.Frame payload) ->
      handle_frame t conn payload;
      drain_frames t conn
  | Some (Frame.Oversized n) ->
      Conn.send conn
        (Protocol.response_to_json
           (bad_request ~id:None
              (Printf.sprintf "frame of %d bytes exceeds limit %d" n t.cfg.max_frame)));
      drain_frames t conn

(* ---- connection lifecycle ------------------------------------------------- *)

let drop_conn t conn =
  if Conn.alive conn then begin
    t.cfg.log (Printf.sprintf "disconnect %s" (Conn.peer conn));
    Conn.close conn
  end;
  t.conns <- List.filter (fun c -> c != conn) t.conns;
  (* a client's in-flight jobs die with it *)
  Hashtbl.iter
    (fun job info -> if info.ji_conn == conn then ignore (Session.cancel t.session ~id:job))
    t.jobs

let rec accept_loop t =
  (* the listen fd is non-blocking; EAGAIN ends the accept burst below *)
  match (Unix.accept ~cloexec:true t.listen_fd [@cpla.allow "blocking-in-loop"]) with
  | fd, addr ->
      Unix.set_nonblock fd;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
      let peer =
        match addr with
        | Unix.ADDR_INET (a, p) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
        | Unix.ADDR_UNIX p -> p
      in
      let quota = Quota.create ~rate:t.cfg.quota_rate ~burst:t.cfg.quota_burst ~now:(now t) in
      t.conns <- Conn.create ~fd ~peer ~quota ~max_frame:t.cfg.max_frame :: t.conns;
      t.cfg.log (Printf.sprintf "accept %s" peer);
      Metrics.incr "net/accepts";
      accept_loop t
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop t

let rec drain_wake t buf =
  (* non-blocking self-pipe read *)
  match (Unix.read t.wake_r buf 0 (Bytes.length buf) [@cpla.allow "blocking-in-loop"]) with
  | 0 -> ()
  | _ -> drain_wake t buf
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let flush_conn t conn =
  match Conn.flush conn with `Ok -> () | `Closed -> drop_conn t conn

(* ---- the event loop ------------------------------------------------------- *)

let serve t =
  t.cfg.log (Printf.sprintf "listening on %s:%d" t.cfg.host t.bound_port);
  let rbuf = Bytes.create 65536 in
  let wbuf = Bytes.create 512 in
  let rec loop () =
    if Atomic.get t.stop && not t.draining then begin
      t.draining <- true;
      t.drain_started <- Some (Timer.wall ());
      if t.listening then begin
        t.listening <- false;
        close_quiet t.listen_fd
      end;
      Span.instant ~name:"net/drain" ();
      t.cfg.log "draining: settling in-flight jobs"
    end;
    pump_events t;
    let settled_and_flushed =
      t.draining && Hashtbl.length t.jobs = 0
      && not (List.exists Conn.wants_write t.conns)
    in
    let grace_expired =
      match t.drain_started with
      | Some w -> Timer.elapsed_s w > t.cfg.drain_grace_s
      | None -> false
    in
    if not (settled_and_flushed || grace_expired) then begin
      let reads =
        (t.wake_r :: (if t.listening then [ t.listen_fd ] else []))
        @ List.filter_map
            (fun c -> if Conn.alive c then Some (Conn.fd c) else None)
            t.conns
      in
      let writes =
        List.filter_map
          (fun c -> if Conn.wants_write c then Some (Conn.fd c) else None)
          t.conns
      in
      let timeout = if t.draining then 0.05 else -1.0 in
      match Unix.select reads writes [] timeout with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | rs, ws, _ ->
          if List.mem t.wake_r rs then drain_wake t wbuf;
          if t.listening && List.mem t.listen_fd rs then accept_loop t;
          List.iter
            (fun conn ->
              if Conn.alive conn && List.mem (Conn.fd conn) rs then
                match Conn.read conn rbuf with
                | `Eof -> drop_conn t conn
                | `Data -> drain_frames t conn
                | `Blocked -> ())
            t.conns;
          List.iter
            (fun conn -> if Conn.alive conn && List.mem (Conn.fd conn) ws then
                flush_conn t conn)
            t.conns;
          (* opportunistic: push out frames queued during this iteration *)
          List.iter (fun conn -> if Conn.wants_write conn then flush_conn t conn) t.conns;
          loop ()
    end
  in
  loop ();
  (* anything the grace period left behind is cancelled, then the session
     settles every job before the pool goes down *)
  Hashtbl.iter (fun job _ -> ignore (Session.cancel t.session ~id:job)) t.jobs;
  (* the loop has exited: blocking until the pool settles is the point *)
  (Session.drain t.session [@cpla.allow "blocking-in-loop"]);
  pump_events t;
  List.iter (fun conn -> if Conn.wants_write conn then ignore (Conn.flush conn)) t.conns;
  List.iter Conn.close t.conns;
  t.conns <- [];
  if t.listening then begin
    t.listening <- false;
    close_quiet t.listen_fd
  end;
  close_quiet t.wake_r;
  close_quiet t.wake_w;
  t.cfg.log "drained"
[@@cpla.event_loop]
