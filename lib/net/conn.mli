(** One accepted daemon connection: socket, frame decoder, outbox, quota.

    Owned exclusively by the server's event loop — nothing here is
    domain-safe.  Reads feed the incremental {!Frame} decoder; writes go
    through a byte outbox so the loop never blocks on a slow peer (frames
    are queued whole, flushed as far as the socket accepts, and the rest
    waits for the next writability tick). *)

type t

val create : fd:Unix.file_descr -> peer:string -> quota:Quota.t -> max_frame:int -> t
(** Wrap an accepted (already non-blocking) socket. *)

val fd : t -> Unix.file_descr

val peer : t -> string
(** Human-readable peer address, for logs and span args. *)

val quota : t -> Quota.t

val alive : t -> bool

val read : t -> bytes -> [ `Data | `Eof | `Blocked ]
(** One [Unix.read] into the scratch buffer, fed to the decoder.
    [`Eof] covers both orderly close and connection reset. *)

val next_frame : t -> Frame.decoded option
(** Pull the next decoded frame event (see {!Frame.next}). *)

val send : t -> Json.t -> unit
(** Queue one JSON value as a frame on the outbox.  No-op when the
    connection is no longer alive. *)

val wants_write : t -> bool
(** The outbox holds unflushed bytes. *)

val flush : t -> [ `Ok | `Closed ]
(** Write as much of the outbox as the socket accepts right now.
    [`Closed] when the peer is gone (EPIPE/ECONNRESET). *)

val close : t -> unit
(** Mark dead and close the socket.  Idempotent. *)
