(** Per-client token-bucket admission quota.

    A bucket refills continuously at [rate] tokens per second up to
    [burst]; each admitted request takes one token (or a caller-chosen
    cost).  Time is passed in by the caller — the server reads its
    monotonic {!Cpla_util.Timer} once per loop tick — which keeps the
    bucket arithmetic pure and directly testable.

    Not domain-safe: a bucket belongs to one connection, owned by the
    server's event loop. *)

type t

val create : rate:float -> burst:float -> now:float -> t
(** A full bucket.  [rate] is tokens/second; [burst] caps accumulation.
    @raise Invalid_argument unless both are positive and finite. *)

val take : t -> now:float -> cost:float -> bool
(** Refill up to [now] (monotonic seconds, same origin as [create]'s),
    then take [cost] tokens if available.  [false] leaves the bucket
    unchanged — the caller sheds the request. *)

val available : t -> now:float -> float
(** Tokens after refilling to [now] (introspection for tests/stats). *)
