module Job = Cpla_serve.Job
module Session = Cpla_serve.Session

type req =
  | Submit of { spec_line : string }
  | Cancel of { job : int }
  | Stats
  | Ping

type request = { id : int; trace : string option; req : req }

type shed_reason = Queue_full | Cost_bound | Quota | Draining

type stats = {
  pending : int;
  running : int;
  settled : int;
  shed : int;
  draining : bool;
  cache_hits : int;
  cache_misses : int;
}

type resp =
  | Accepted of { job : int }
  | Cancel_r of { job : int; won : bool }
  | Stats_r of stats
  | Pong

type error_code = Shed of shed_reason | Bad_request | Unknown_method

type response =
  | Result of { id : int; trace : string option; resp : resp }
  | Error of { id : int option; code : error_code; message : string }

type event = {
  job : int;
  state : string;
  progress : int option;
  metrics : Job.metrics option;
  detail : string option;
  ev_trace : string option;
}

type incoming = Resp of response | Ev of event

let shed_reason_string = function
  | Queue_full -> "queue-full"
  | Cost_bound -> "cost-bound"
  | Quota -> "quota"
  | Draining -> "draining"

let shed_reason_of_string = function
  | "queue-full" -> Some Queue_full
  | "cost-bound" -> Some Cost_bound
  | "quota" -> Some Quota
  | "draining" -> Some Draining
  | _ -> None

let is_terminal_state = function
  | "done" | "failed" | "timed-out" | "cancelled" -> true
  | _ -> false

let method_string = function
  | Submit _ -> "submit"
  | Cancel _ -> "cancel"
  | Stats -> "stats"
  | Ping -> "ping"

(* ---- small helpers -------------------------------------------------------- *)

let int_field name v =
  match Option.bind (Json.member name v) Json.as_int with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "missing or non-integer %S field" name)

let opt_string name v = Option.bind (Json.member name v) Json.as_string

let trace_fields = function None -> [] | Some t -> [ ("trace", Json.Str t) ]

(* ---- requests ------------------------------------------------------------- *)

let request_to_json r =
  let params =
    match r.req with
    | Submit { spec_line } -> [ ("params", Json.Obj [ ("spec", Json.Str spec_line) ]) ]
    | Cancel { job } -> [ ("params", Json.Obj [ ("job", Json.Num (float_of_int job)) ]) ]
    | Stats | Ping -> []
  in
  Json.Obj
    ((("id", Json.Num (float_of_int r.id)) :: ("method", Json.Str (method_string r.req))
      :: trace_fields r.trace)
    @ params)

let request_of_json v =
  Result.bind (int_field "id" v) (fun id ->
      let trace = opt_string "trace" v in
      match Option.bind (Json.member "method" v) Json.as_string with
      | None -> Error "missing \"method\" field"
      | Some "submit" -> (
          match Option.bind (Json.member "params" v) (fun p -> opt_string "spec" p) with
          | Some spec_line -> Ok { id; trace; req = Submit { spec_line } }
          | None -> Error "submit: missing params.spec")
      | Some "cancel" -> (
          match Json.member "params" v with
          | None -> Error "cancel: missing params.job"
          | Some p ->
              Result.map (fun job -> { id; trace; req = Cancel { job } }) (int_field "job" p))
      | Some "stats" -> Ok { id; trace; req = Stats }
      | Some "ping" -> Ok { id; trace; req = Ping }
      | Some m -> Error (Printf.sprintf "unknown method %S" m))

(* ---- responses ------------------------------------------------------------ *)

let response_to_json = function
  | Result { id; trace; resp } ->
      let result =
        match resp with
        | Accepted { job } -> Json.Obj [ ("job", Json.Num (float_of_int job)) ]
        | Cancel_r { job; won } ->
            Json.Obj [ ("job", Json.Num (float_of_int job)); ("won", Json.Bool won) ]
        | Stats_r s ->
            Json.Obj
              [
                ("pending", Json.Num (float_of_int s.pending));
                ("running", Json.Num (float_of_int s.running));
                ("settled", Json.Num (float_of_int s.settled));
                ("shed", Json.Num (float_of_int s.shed));
                ("draining", Json.Bool s.draining);
                ("cache_hits", Json.Num (float_of_int s.cache_hits));
                ("cache_misses", Json.Num (float_of_int s.cache_misses));
              ]
        | Pong -> Json.Obj []
      in
      Json.Obj
        ((("id", Json.Num (float_of_int id)) :: trace_fields trace) @ [ ("result", result) ])
  | Error { id; code; message } ->
      let code_fields =
        match code with
        | Shed r ->
            [ ("code", Json.Str "shed"); ("reason", Json.Str (shed_reason_string r)) ]
        | Bad_request -> [ ("code", Json.Str "bad-request") ]
        | Unknown_method -> [ ("code", Json.Str "unknown-method") ]
      in
      Json.Obj
        [
          ( "id",
            match id with None -> Json.Null | Some id -> Json.Num (float_of_int id) );
          ("error", Json.Obj (code_fields @ [ ("message", Json.Str message) ]));
        ]

let response_of_json v =
  let id = Option.bind (Json.member "id" v) Json.as_int in
  match Json.member "error" v with
  | Some err -> (
      let message = Option.value ~default:"" (opt_string "message" err) in
      match opt_string "code" err with
      | Some "shed" -> (
          match Option.bind (opt_string "reason" err) shed_reason_of_string with
          | Some r -> Ok (Error { id; code = Shed r; message })
          | None -> Error "shed error without a known reason")
      | Some "bad-request" -> Ok (Error { id; code = Bad_request; message })
      | Some "unknown-method" -> Ok (Error { id; code = Unknown_method; message })
      | Some c -> Error (Printf.sprintf "unknown error code %S" c)
      | None -> Error "error object without code")
  | None -> (
      match (id, Json.member "result" v) with
      | Some id, Some result -> (
          let trace = opt_string "trace" v in
          match Json.member "won" result with
          | Some w -> (
              match (int_field "job" result, Json.as_bool w) with
              | Ok job, Some won -> Ok (Result { id; trace; resp = Cancel_r { job; won } })
              | _ -> Error "malformed cancel result")
          | None -> (
              match Json.member "pending" result with
              | Some _ ->
                  let field name = int_field name result in
                  Result.bind (field "pending") (fun pending ->
                      Result.bind (field "running") (fun running ->
                          Result.bind (field "settled") (fun settled ->
                              Result.bind (field "shed") (fun shed ->
                                  let draining =
                                    Option.value ~default:false
                                      (Option.bind (Json.member "draining" result)
                                         Json.as_bool)
                                  in
                                  (* cache counters are absent from pre-1.8
                                     servers; default to 0 *)
                                  let opt_int name =
                                    match int_field name result with
                                    | Ok n -> n
                                    | Error _ -> 0
                                  in
                                  let cache_hits = opt_int "cache_hits" in
                                  let cache_misses = opt_int "cache_misses" in
                                  Ok
                                    (Result
                                       {
                                         id;
                                         trace;
                                         resp =
                                           Stats_r
                                             {
                                               pending;
                                               running;
                                               settled;
                                               shed;
                                               draining;
                                               cache_hits;
                                               cache_misses;
                                             };
                                       })))))
              | None -> (
                  match Json.member "job" result with
                  | Some _ ->
                      Result.map
                        (fun job -> Result { id; trace; resp = Accepted { job } })
                        (int_field "job" result)
                  | None -> Ok (Result { id; trace; resp = Pong }))))
      | _ -> Error "response with neither result nor error")

(* ---- job metrics ---------------------------------------------------------- *)

let metrics_to_json (m : Job.metrics) =
  Json.Obj
    [
      ("wirelength", Json.Num (float_of_int m.Job.wirelength));
      ("avg_tcp", Json.Num m.Job.avg_tcp);
      ("max_tcp", Json.Num m.Job.max_tcp);
      ("via_overflow", Json.Num (float_of_int m.Job.via_overflow));
      ("edge_overflow", Json.Num (float_of_int m.Job.edge_overflow));
      ("released", Json.Num (float_of_int m.Job.released));
      ("wall_s", Json.Num m.Job.wall_s);
    ]

let metrics_of_json v =
  let int name = Option.bind (Json.member name v) Json.as_int in
  let flt name = Option.bind (Json.member name v) Json.as_float in
  match
    (int "wirelength", flt "avg_tcp", flt "max_tcp", int "via_overflow",
     int "edge_overflow", int "released", flt "wall_s")
  with
  | ( Some wirelength,
      Some avg_tcp,
      Some max_tcp,
      Some via_overflow,
      Some edge_overflow,
      Some released,
      Some wall_s ) ->
      Ok
        {
          Job.wirelength;
          avg_tcp;
          max_tcp;
          via_overflow;
          edge_overflow;
          released;
          wall_s;
        }
  | _ -> Error "malformed metrics object"

(* ---- events --------------------------------------------------------------- *)

let event_to_json e =
  Json.Obj
    ([ ("event", Json.Str "job"); ("job", Json.Num (float_of_int e.job));
       ("state", Json.Str e.state) ]
    @ (match e.progress with
      | Some p -> [ ("polls", Json.Num (float_of_int p)) ]
      | None -> [])
    @ (match e.metrics with Some m -> [ ("metrics", metrics_to_json m) ] | None -> [])
    @ (match e.detail with Some d -> [ ("detail", Json.Str d) ] | None -> [])
    @ trace_fields e.ev_trace)

let event_of_json v =
  Result.bind (int_field "job" v) (fun job ->
      match opt_string "state" v with
      | None -> Error "event without state"
      | Some state -> (
          let progress = Option.bind (Json.member "polls" v) Json.as_int in
          let detail = opt_string "detail" v in
          let ev_trace = opt_string "trace" v in
          match Json.member "metrics" v with
          | None -> Ok { job; state; progress; metrics = None; detail; ev_trace }
          | Some m ->
              Result.map
                (fun m -> { job; state; progress; metrics = Some m; detail; ev_trace })
                (metrics_of_json m)))

let incoming_of_json v =
  match Json.member "event" v with
  | Some _ -> Result.map (fun e -> Ev e) (event_of_json v)
  | None -> Result.map (fun r -> Resp r) (response_of_json v)

(* ---- session bridging ----------------------------------------------------- *)

let terminal_fields = function
  | Job.Done m -> ("done", Some m, None)
  | Job.Failed { error; partial } -> ("failed", partial, Some error)
  | Job.Timed_out { limit_s; partial } ->
      ("timed-out", partial, Some (Printf.sprintf "deadline %.17g" limit_s))
  | Job.Cancelled { partial } -> ("cancelled", partial, None)

let event_of ~job ?trace ev =
  let mk state ?progress ?metrics ?detail () =
    { job; state; progress; metrics; detail; ev_trace = trace }
  in
  match ev with
  | Session.Submitted _ -> mk "submitted" ()
  | Session.Started _ -> mk "started" ()
  | Session.Progress (_, polls) -> mk "progress" ~progress:polls ()
  | Session.Finished (_, terminal) ->
      let state, metrics, detail = terminal_fields terminal in
      mk state ?metrics ?detail ()

let terminal_of_event e =
  match e.state with
  | "done" -> (
      match e.metrics with
      | Some m -> Ok (Job.Done m)
      | None -> Error "done event without metrics")
  | "failed" ->
      Ok
        (Job.Failed
           { error = Option.value ~default:"" e.detail; partial = e.metrics })
  | "timed-out" ->
      let limit_s =
        match e.detail with
        | Some d -> (
            match String.index_opt d ' ' with
            | Some i -> (
                match float_of_string_opt (String.sub d (i + 1) (String.length d - i - 1)) with
                | Some f -> f
                | None -> 0.0)
            | None -> 0.0)
        | None -> 0.0
      in
      Ok (Job.Timed_out { limit_s; partial = e.metrics })
  | "cancelled" -> Ok (Job.Cancelled { partial = e.metrics })
  | s -> Error (Printf.sprintf "event state %S is not terminal" s)
