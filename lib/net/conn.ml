type t = {
  fd : Unix.file_descr;
  peer : string;
  quota : Quota.t;
  dec : Frame.decoder;
  out : Buffer.t;
  mutable out_pos : int;  (* consumed prefix of [out] *)
  mutable alive : bool;
}

let create ~fd ~peer ~quota ~max_frame =
  {
    fd;
    peer;
    quota;
    dec = Frame.decoder ~max_frame ();
    out = Buffer.create 4096;
    out_pos = 0;
    alive = true;
  }

let fd c = c.fd

let peer c = c.peer

let quota c = c.quota

let alive c = c.alive

let read c buf =
  (* the fd is non-blocking; EAGAIN surfaces as [`Blocked] below *)
  match (Unix.read c.fd buf 0 (Bytes.length buf) [@cpla.allow "blocking-in-loop"]) with
  | 0 -> `Eof
  | n ->
      Frame.feed c.dec buf ~off:0 ~len:n;
      `Data
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      `Blocked
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> `Eof

let next_frame c = Frame.next c.dec

let send c v =
  if c.alive then Buffer.add_bytes c.out (Frame.encode (Json.to_string v))

let pending c = Buffer.length c.out - c.out_pos

let wants_write c = c.alive && pending c > 0

let compact c =
  if c.out_pos = Buffer.length c.out then begin
    Buffer.clear c.out;
    c.out_pos <- 0
  end
  else if c.out_pos > 65536 then begin
    let rest = Buffer.sub c.out c.out_pos (pending c) in
    Buffer.clear c.out;
    Buffer.add_string c.out rest;
    c.out_pos <- 0
  end

let flush c =
  if not c.alive then `Closed
  else begin
    let n = pending c in
    if n = 0 then `Ok
    else begin
      let chunk = Buffer.sub c.out c.out_pos n in
      (* non-blocking fd: a full socket buffer returns EAGAIN, not a stall *)
      match (Unix.write_substring c.fd chunk 0 n [@cpla.allow "blocking-in-loop"]) with
      | written ->
          c.out_pos <- c.out_pos + written;
          compact c;
          `Ok
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
          `Ok
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> `Closed
    end
  end

let close c =
  if c.alive then begin
    c.alive <- false;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end
