(** Length-prefixed wire framing.

    Every frame is a 4-byte big-endian unsigned payload length followed by
    the payload bytes (UTF-8 JSON text at the protocol layer; the framing
    itself is payload-agnostic).  The decoder is incremental: feed it
    whatever the socket produced — single bytes, split headers,
    several frames in one read — and pull complete frames out.

    Oversized frames are survivable: a length above the decoder's limit
    yields one {!Oversized} event and the decoder then discards exactly
    that many payload bytes before resynchronising on the next header, so
    a connection can answer with an error instead of dying. *)

val max_frame_default : int
(** 4 MiB — far above any job spec or metrics payload. *)

val encode : string -> bytes
(** Header + payload, ready to write.
    @raise Invalid_argument above [0xFFFF_FFFF] bytes (unencodable). *)

type decoded =
  | Frame of string  (** one complete payload *)
  | Oversized of int
      (** a frame announced this many payload bytes, above the limit; the
          payload is being discarded and decoding will resume after it *)

type decoder

val decoder : ?max_frame:int -> unit -> decoder
(** A fresh decoder ([max_frame] defaults to {!max_frame_default}).
    @raise Invalid_argument when [max_frame < 1]. *)

val feed : decoder -> bytes -> off:int -> len:int -> unit
(** Append [len] bytes of input starting at [off]. *)

val feed_string : decoder -> string -> unit
(** {!feed} over a whole string (tests and the blocking client). *)

val next : decoder -> decoded option
(** The next decoding event, or [None] when more input is needed.  Call
    in a loop: one [feed] can complete several frames. *)

val buffered : decoder -> int
(** Bytes held but not yet consumed (pending-frame backlog, for tests
    and connection accounting). *)
