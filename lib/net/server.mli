(** The cpla daemon: a long-lived TCP front end over a persistent
    {!Cpla_serve.Session}.

    One domain runs a [select] event loop that owns every connection;
    job execution happens on the session's worker pool, which reports
    job events back to the loop through a wake pipe.  The loop therefore
    never blocks on a job and never races a worker on connection state.

    Admission control happens at submit time, in order: draining state,
    the client's token-bucket quota, manifest parse, the pending-queue
    bound, and the queued expected-cost bound
    ({!Cpla_serve.Scheduler.expected_cost}).  A refused submission is a
    {e shed} — an explicit [shed] error response naming the reason — not
    a failure or a dropped connection.

    Graceful drain: {!shutdown} (safe from signal handlers and other
    domains) stops the loop accepting connections and submissions, lets
    in-flight jobs settle, flushes every outbox, then returns from
    {!serve}; jobs still unsettled after [drain_grace_s] are cancelled.
    Disconnecting a client cancels its in-flight jobs. *)

type config = {
  host : string;  (** bind address: numeric IP or resolvable name *)
  port : int;  (** 0 picks an ephemeral port (see {!port}) *)
  workers : int;  (** session worker domains *)
  queue_bound : int;  (** max pending jobs before [queue-full] sheds *)
  cost_bound : float;
      (** max summed pending {!Cpla_serve.Scheduler.expected_cost};
          [infinity] disables the bound *)
  quota_rate : float;  (** per-client tokens per second *)
  quota_burst : float;  (** per-client bucket capacity *)
  default_deadline_s : float option;  (** applied to specs without one *)
  max_frame : int;  (** request frames above this shed as [bad-request] *)
  drain_grace_s : float;  (** max seconds to settle in-flight on drain *)
  solve_cache : bool;
      (** share a content-addressed {!Cpla.Solve_cache} across every job's
          driver, so repeated submissions skip already-performed partition
          solves; hit/miss totals surface in [stats] responses *)
  log : string -> unit;  (** lifecycle lines (accepts, drain); may print *)
}

val default_config : config
(** 127.0.0.1:7171, recommended workers, queue bound 64, no cost bound,
    quota 20/s burst 40, no default deadline, default frame limit,
    5 s drain grace, solve cache off, silent log. *)

type t

val create : ?config:config -> unit -> t
(** Bind and listen (the socket is live when [create] returns, so an
    ephemeral {!port} can be handed to clients before {!serve} starts).
    @raise Unix.Unix_error when the address cannot be bound. *)

val port : t -> int
(** The actually-bound TCP port. *)

val serve : t -> unit
(** Run the event loop until {!shutdown}.  Call once, from the domain
    that should own the loop. *)

val shutdown : t -> unit
(** Request a graceful drain.  Idempotent; safe from signal handlers
    and other domains.  {!serve} returns once the drain completes. *)
