(** The daemon's wire protocol: typed requests, responses and job events.

    Every message is one JSON object per frame ({!Frame}).  Requests carry
    a client-chosen [id] echoed on the response, plus an optional [trace]
    id that the server threads through its obs spans and onto every event
    of the job the request created — the cross-process trace-stitching
    hook.

    Requests:
    {v
    {"id":1,"method":"submit","trace":"t-1","params":{"spec":"adaptec1 ratio=0.005"}}
    {"id":2,"method":"cancel","params":{"job":3}}
    {"id":3,"method":"stats"}
    {"id":4,"method":"ping"}
    v}

    Responses ([result] xor [error]):
    {v
    {"id":1,"result":{"job":3},"trace":"t-1"}
    {"id":1,"error":{"code":"shed","reason":"queue-full","message":"..."}}
    v}

    Job events (server push, no [id]):
    {v
    {"event":"job","job":3,"state":"started","trace":"t-1"}
    {"event":"job","job":3,"state":"done","metrics":{...},"trace":"t-1"}
    v} *)

type req =
  | Submit of { spec_line : string }
      (** one manifest line ({!Cpla_serve.Job.parse_manifest} grammar);
          the server assigns the job id *)
  | Cancel of { job : int }
  | Stats
  | Ping

type request = { id : int; trace : string option; req : req }

type shed_reason =
  | Queue_full  (** pending queue at its bound *)
  | Cost_bound  (** queued expected-cost budget exceeded *)
  | Quota  (** client token bucket empty *)
  | Draining  (** server is shutting down *)

type stats = {
  pending : int;  (** accepted, waiting for a worker *)
  running : int;
  settled : int;  (** terminal since the server started *)
  shed : int;  (** submissions refused since the server started *)
  draining : bool;
  cache_hits : int;
      (** solve-cache hits since the server started; 0 when the server
          runs without [--solve-cache] (decoded as 0 from older servers
          that omit the field) *)
  cache_misses : int;  (** solve-cache misses; 0 without a cache *)
}

type resp =
  | Accepted of { job : int }
  | Cancel_r of { job : int; won : bool }
      (** [won]: the cancel revoked a queued job or fired a running job's
          token; [false] when the job was unknown or already settled *)
  | Stats_r of stats
  | Pong

type error_code = Shed of shed_reason | Bad_request | Unknown_method

type response =
  | Result of { id : int; trace : string option; resp : resp }
  | Error of { id : int option; code : error_code; message : string }

type event = {
  job : int;
  state : string;  (** submitted/started/progress/done/failed/timed-out/cancelled *)
  progress : int option;  (** cumulative driver polls, [progress] events only *)
  metrics : Cpla_serve.Job.metrics option;  (** terminal events (partial or full) *)
  detail : string option;  (** failure text / deadline budget *)
  ev_trace : string option;
}

type incoming = Resp of response | Ev of event
(** What a client can receive. *)

val shed_reason_string : shed_reason -> string
(** ["queue-full"], ["cost-bound"], ["quota"], ["draining"]. *)

val is_terminal_state : string -> bool
(** Whether an event state string names a terminal job state. *)

val method_string : req -> string
(** ["submit"], ["cancel"], ["stats"], ["ping"] — the obs endpoint label. *)

val request_to_json : request -> Json.t

val request_of_json : Json.t -> (request, string) result

val response_to_json : response -> Json.t

val response_of_json : Json.t -> (response, string) result

val event_to_json : event -> Json.t

val event_of_json : Json.t -> (event, string) result

val incoming_of_json : Json.t -> (incoming, string) result
(** Classify a received object: [{"event":...}] is an event, anything
    else must be a response. *)

val event_of : job:int -> ?trace:string -> Cpla_serve.Session.event -> event
(** Render a scheduler session event for the wire ([job] is the
    server-assigned id, which may differ from the spec's session id). *)

val terminal_of_event : event -> (Cpla_serve.Job.terminal, string) result
(** Reconstruct the terminal state from a terminal event ([Error] on
    non-terminal states).  Metrics round-trip bit-exactly, so the result
    satisfies {!Cpla_serve.Job.same_result} against the server-side
    terminal. *)
