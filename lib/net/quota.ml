type t = {
  rate : float;
  burst : float;
  mutable tokens : float;
  mutable last : float;  (* caller-clock seconds of the last refill *)
}

let create ~rate ~burst ~now =
  if not (Float.is_finite rate && rate > 0.0) then
    invalid_arg "Quota.create: rate must be positive";
  if not (Float.is_finite burst && burst > 0.0) then
    invalid_arg "Quota.create: burst must be positive";
  { rate; burst; tokens = burst; last = now }

(* The clock is monotonic by contract, but clamp anyway so a misbehaving
   caller can only fail to refill, never mint tokens. *)
let refill b ~now =
  let dt = Float.max 0.0 (now -. b.last) in
  b.tokens <- Float.min b.burst (b.tokens +. (dt *. b.rate));
  b.last <- now

let take b ~now ~cost =
  refill b ~now;
  if b.tokens >= cost then begin
    b.tokens <- b.tokens -. cost;
    true
  end
  else false

let available b ~now =
  refill b ~now;
  b.tokens
