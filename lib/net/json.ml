type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---- printing ------------------------------------------------------------- *)

(* %.17g is the shortest format guaranteed to round-trip every finite
   float through decimal; integral values print without a fraction so ids
   and counters stay readable. *)
let add_num b f =
  if not (Float.is_finite f) then Buffer.add_string b "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" f)
  else Buffer.add_string b (Printf.sprintf "%.17g" f)

let add_escaped b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let to_string v =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num f -> add_num b f
    | Str s -> add_escaped b s
    | Arr vs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char b ',';
            go v)
          vs;
        Buffer.add_char b ']'
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            add_escaped b k;
            Buffer.add_char b ':';
            go v)
          fields;
        Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

(* ---- parsing -------------------------------------------------------------- *)

exception Fail of int * string

let max_depth = 64

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "invalid \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let add_utf8 b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "truncated escape";
           match s.[!pos] with
           | '"' -> advance (); Buffer.add_char b '"'
           | '\\' -> advance (); Buffer.add_char b '\\'
           | '/' -> advance (); Buffer.add_char b '/'
           | 'b' -> advance (); Buffer.add_char b '\b'
           | 'f' -> advance (); Buffer.add_char b '\012'
           | 'n' -> advance (); Buffer.add_char b '\n'
           | 'r' -> advance (); Buffer.add_char b '\r'
           | 't' -> advance (); Buffer.add_char b '\t'
           | 'u' ->
               advance ();
               let cp = hex4 () in
               (* combine a surrogate pair when one follows; a lone
                  surrogate encodes as-is rather than failing the frame *)
               let cp =
                 if cp >= 0xD800 && cp <= 0xDBFF && !pos + 1 < n && s.[!pos] = '\\'
                    && s.[!pos + 1] = 'u'
                 then begin
                   pos := !pos + 2;
                   let lo = hex4 () in
                   if lo >= 0xDC00 && lo <= 0xDFFF then
                     0x10000 + (((cp - 0xD800) lsl 10) lor (lo - 0xDC00))
                   else begin
                     add_utf8 b cp;
                     lo
                   end
                 end
                 else cp
               in
               add_utf8 b cp
           | _ -> fail "invalid escape");
          go ()
      | c when Char.code c < 0x20 -> fail "control character in string"
      | c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "invalid number"
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elems acc =
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elems [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) -> Error (Printf.sprintf "json: %s at byte %d" msg at)

(* ---- accessors ------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let as_string = function Str s -> Some s | _ -> None

let as_int = function
  | Num f when Float.is_integer f && Float.abs f <= 4.611686018427387904e18 ->
      Some (int_of_float f)
  | _ -> None

let as_float = function Num f -> Some f | _ -> None

let as_bool = function Bool b -> Some b | _ -> None
