(** Minimal JSON values for the wire protocol.

    The daemon speaks length-prefixed JSON frames and the repo carries no
    JSON dependency, so this is a small self-contained value type with a
    strict parser and a canonical printer.  Floats print with enough
    digits ([%.17g]) to round-trip bit-exactly, which is what lets the
    daemon's job metrics compare byte-identical to an in-process
    {!Cpla_serve.Scheduler.run_one}. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Canonical one-line rendering.  Object fields print in the order given.
    Non-finite numbers render as [null] (they cannot appear in JSON). *)

val parse : string -> (t, string) result
(** Strict parse of exactly one JSON value (surrounding whitespace
    allowed; trailing garbage is an error).  Errors carry a byte offset.
    Nesting is capped (64 levels) so adversarial frames cannot overflow
    the stack. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on absent fields or non-objects. *)

val as_string : t -> string option

val as_int : t -> int option
(** [Num] with an integral value (within int range). *)

val as_float : t -> float option

val as_bool : t -> bool option
