module Timer = Cpla_util.Timer

type t = {
  fd : Unix.file_descr;
  dec : Frame.decoder;
  mutable next_id : int;
  mutable closed : bool;
}

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
        invalid_arg (Printf.sprintf "Client.connect: unknown host %S" host)
    | h -> h.Unix.h_addr_list.(0))

let connect ?(timeout_s = 10.0) ~host ~port () =
  let addr = Unix.ADDR_INET (resolve host, port) in
  let watch = Timer.wall () in
  let rec attempt () =
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () ->
        (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
        { fd; dec = Frame.decoder (); next_id = 0; closed = false }
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.EINTR), _, _)
      when Timer.elapsed_s watch < timeout_s ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Unix.sleepf 0.05;
        attempt ()
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  in
  attempt ()

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let send t r =
  let b = Frame.encode (Json.to_string (Protocol.request_to_json r)) in
  let len = Bytes.length b in
  let rec write_all off =
    if off < len then
      match Unix.write t.fd b off (len - off) with
      | n -> write_all (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all off
  in
  write_all 0

let recv ?timeout_s t =
  let watch = Timer.wall () in
  let buf = Bytes.create 65536 in
  let rec next () =
    match Frame.next t.dec with
    | Some (Frame.Frame payload) ->
        Result.bind (Json.parse payload) Protocol.incoming_of_json
    | Some (Frame.Oversized n) ->
        Error (Printf.sprintf "oversized frame from server (%d bytes)" n)
    | None -> (
        let remaining =
          match timeout_s with
          | None -> -1.0
          | Some s -> Float.max 0.0 (s -. Timer.elapsed_s watch)
        in
        if remaining = 0.0 && timeout_s <> None then
          Error "timed out waiting for the server"
        else
          match Unix.select [ t.fd ] [] [] remaining with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> next ()
          | [], _, _ -> Error "timed out waiting for the server"
          | _ :: _, _, _ -> (
              match Unix.read t.fd buf 0 (Bytes.length buf) with
              | 0 -> Error "connection closed by the server"
              | n ->
                  Frame.feed t.dec buf ~off:0 ~len:n;
                  next ()
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> next ()
              | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _)
                -> Error "connection closed by the server"))
  in
  next ()

let call ?timeout_s ?trace ?(on_event = fun _ -> ()) t req =
  let id = t.next_id in
  t.next_id <- id + 1;
  send t { Protocol.id; trace; req };
  let rec await () =
    match recv ?timeout_s t with
    | Error _ as e -> e
    | Ok (Protocol.Ev ev) ->
        on_event ev;
        await ()
    | Ok (Protocol.Resp (Protocol.Result { id = rid; _ } as r)) when rid = id -> Ok r
    | Ok (Protocol.Resp (Protocol.Error { id = Some rid; _ } as r)) when rid = id -> Ok r
    | Ok (Protocol.Resp (Protocol.Error { id = None; _ } as r)) ->
        (* frame-level error: attribute it to the request in flight *)
        Ok r
    | Ok (Protocol.Resp _) -> await ()
  in
  await ()

let await_terminal ?timeout_s ?(on_event = fun _ -> ()) t ~job =
  let rec go () =
    match recv ?timeout_s t with
    | Error e -> Error e
    | Ok (Protocol.Ev ev) ->
        if ev.Protocol.job = job then begin
          on_event ev;
          if Protocol.is_terminal_state ev.Protocol.state then
            Protocol.terminal_of_event ev
          else go ()
        end
        else go ()
    | Ok (Protocol.Resp _) -> go ()
  in
  go ()
