let max_frame_default = 4 * 1024 * 1024

let header_len = 4

let encode payload =
  let n = String.length payload in
  if n > 0xFFFF_FFFF then invalid_arg "Frame.encode: payload too large";
  let b = Bytes.create (header_len + n) in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xFF);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xFF);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xFF);
  Bytes.set_uint8 b 3 (n land 0xFF);
  Bytes.blit_string payload 0 b header_len n;
  b

type decoded =
  | Frame of string
  | Oversized of int

(* The input accumulates into [buf] and is consumed from [pos]; when
   everything is consumed the buffer resets, and a large consumed prefix is
   compacted away so long-lived connections don't grow without bound.

   The mode is a constant constructor plus a [need] counter rather than
   [Body of int]/[Discard of int]: flipping a constant constructor and an
   int field never allocates, where the carried-argument form boxed a fresh
   state block on every header and every partial discard. *)
type mode =
  | Header  (** waiting for 4 length bytes *)
  | Body  (** waiting for [need] payload bytes *)
  | Discard  (** skipping [need] bytes of an oversized payload *)

type decoder = {
  max_frame : int;
  buf : Buffer.t;
  mutable pos : int;
  mutable mode : mode;
  mutable need : int;  (** bytes still owed in [Body]/[Discard] *)
}

let decoder ?(max_frame = max_frame_default) () =
  if max_frame < 1 then invalid_arg "Frame.decoder: max_frame must be >= 1";
  { max_frame; buf = Buffer.create 4096; pos = 0; mode = Header; need = 0 }

let feed d b ~off ~len = Buffer.add_subbytes d.buf b off len
[@@cpla.zero_alloc]

let feed_string d s = Buffer.add_string d.buf s

let buffered d = Buffer.length d.buf - d.pos

let compact d =
  if d.pos = Buffer.length d.buf then begin
    Buffer.clear d.buf;
    d.pos <- 0
  end
  else if d.pos > 65536 then
    begin
      (* rare: only once the consumed prefix exceeds 64 KiB *)
      let rest = Buffer.sub d.buf d.pos (Buffer.length d.buf - d.pos) in
      Buffer.clear d.buf;
      Buffer.add_string d.buf rest;
      d.pos <- 0
    end [@cpla.allow "alloc-in-kernel"]

(* hoisted so [next] closes over nothing on the header path *)
let byte d i = Char.code (Buffer.nth d.buf (d.pos + i))
[@@cpla.zero_alloc]

let rec next d =
  let avail = buffered d in
  match d.mode with
  | Header ->
      if avail < header_len then None
      else begin
        let len = (byte d 0 lsl 24) lor (byte d 1 lsl 16) lor (byte d 2 lsl 8) lor byte d 3 in
        d.pos <- d.pos + header_len;
        compact d;
        if len > d.max_frame then begin
          d.mode <- Discard;
          d.need <- len;
          (Some (Oversized len) [@cpla.allow "alloc-in-kernel"])
        end
        else begin
          d.mode <- Body;
          d.need <- len;
          next d
        end
      end
  | Body ->
      let len = d.need in
      if avail < len then None
      else
        begin
          (* the decoded payload itself — the one allocation the caller asked
             for *)
          let payload = Buffer.sub d.buf d.pos len in
          d.pos <- d.pos + len;
          d.mode <- Header;
          d.need <- 0;
          compact d;
          Some (Frame payload)
        end [@cpla.allow "alloc-in-kernel"]
  | Discard ->
      let take = min avail d.need in
      d.pos <- d.pos + take;
      d.need <- d.need - take;
      compact d;
      if d.need = 0 then begin
        d.mode <- Header;
        next d
      end
      else None
[@@cpla.zero_alloc]
