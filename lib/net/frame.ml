let max_frame_default = 4 * 1024 * 1024

let header_len = 4

let encode payload =
  let n = String.length payload in
  if n > 0xFFFF_FFFF then invalid_arg "Frame.encode: payload too large";
  let b = Bytes.create (header_len + n) in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xFF);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xFF);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xFF);
  Bytes.set_uint8 b 3 (n land 0xFF);
  Bytes.blit_string payload 0 b header_len n;
  b

type decoded =
  | Frame of string
  | Oversized of int

(* The input accumulates into [buf] and is consumed from [pos]; when
   everything is consumed the buffer resets, and a large consumed prefix is
   compacted away so long-lived connections don't grow without bound. *)
type state =
  | Header  (** waiting for 4 length bytes *)
  | Body of int  (** waiting for this many payload bytes *)
  | Discard of int  (** skipping the rest of an oversized payload *)

type decoder = {
  max_frame : int;
  buf : Buffer.t;
  mutable pos : int;
  mutable state : state;
}

let decoder ?(max_frame = max_frame_default) () =
  if max_frame < 1 then invalid_arg "Frame.decoder: max_frame must be >= 1";
  { max_frame; buf = Buffer.create 4096; pos = 0; state = Header }

let feed d b ~off ~len = Buffer.add_subbytes d.buf b off len

let feed_string d s = Buffer.add_string d.buf s

let buffered d = Buffer.length d.buf - d.pos

let compact d =
  if d.pos = Buffer.length d.buf then begin
    Buffer.clear d.buf;
    d.pos <- 0
  end
  else if d.pos > 65536 then begin
    let rest = Buffer.sub d.buf d.pos (Buffer.length d.buf - d.pos) in
    Buffer.clear d.buf;
    Buffer.add_string d.buf rest;
    d.pos <- 0
  end

let rec next d =
  let avail = buffered d in
  match d.state with
  | Header ->
      if avail < header_len then None
      else begin
        let byte i = Char.code (Buffer.nth d.buf (d.pos + i)) in
        let len = (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3 in
        d.pos <- d.pos + header_len;
        compact d;
        if len > d.max_frame then begin
          d.state <- Discard len;
          Some (Oversized len)
        end
        else begin
          d.state <- Body len;
          next d
        end
      end
  | Body len ->
      if avail < len then None
      else begin
        let payload = Buffer.sub d.buf d.pos len in
        d.pos <- d.pos + len;
        d.state <- Header;
        compact d;
        Some (Frame payload)
      end
  | Discard remaining ->
      let take = min avail remaining in
      d.pos <- d.pos + take;
      let remaining = remaining - take in
      compact d;
      if remaining = 0 then begin
        d.state <- Header;
        next d
      end
      else begin
        d.state <- Discard remaining;
        None
      end
