(** The 3-D grid graph of Section 2.1.

    A [width] × [height] array of tiles replicated over the layer stack.
    Edges in x (resp. y) exist only on layers whose preferred direction is
    horizontal (resp. vertical) and carry per-layer routing capacities; vias
    connect vertically adjacent tiles and are limited per Eqn (1).

    This module is the single owner of all capacity/usage accounting: the
    router, the layer-assignment state and the optimisation engines all
    mutate usage through it, so overflow numbers are consistent everywhere. *)

type t

type edge2d = {
  dir : Tech.dir;
  x : int;
  y : int;
}
(** The 2-D projection of a routing edge.  A [Horizontal] edge at [(x, y)]
    joins tiles [(x, y)] and [(x+1, y)]; a [Vertical] edge joins [(x, y)] and
    [(x, y+1)]. *)

val create : tech:Tech.t -> width:int -> height:int -> layer_capacity:int array -> t
(** Fresh graph with uniform per-layer edge capacity [layer_capacity.(l)]
    (entries for the wrong direction are ignored — an H layer only has H
    edges).  Raises [Invalid_argument] on non-positive dimensions or a
    capacity array shorter than the layer count. *)

val tech : t -> Tech.t
val width : t -> int
val height : t -> int
val num_layers : t -> int

val in_bounds : t -> x:int -> y:int -> bool
  [@@cpla.allow "unused-export"]

val edge_exists : t -> edge2d -> bool
(** Whether the 2-D edge lies inside the grid. *)

val edge_layers : t -> edge2d -> int list
(** Layers on which this edge can be routed (layers matching its direction),
    ascending. *)

val capacity : t -> edge2d -> layer:int -> int
(** Routing capacity of the edge on [layer]; 0 when the layer direction does
    not match.  @raise Invalid_argument for out-of-grid edges. *)

val reduce_capacity : t -> edge2d -> layer:int -> by:int -> unit
(** Model a blockage: permanently lower the capacity (floored at 0). *)

val usage : t -> edge2d -> layer:int -> int

val free : t -> edge2d -> layer:int -> int
(** [capacity - usage]; may be negative when overflowed. *)

val add_usage : t -> edge2d -> layer:int -> int -> unit
(** Add (or with a negative delta, release) wires on an edge-layer.
    @raise Invalid_argument if the resulting usage would be negative. *)

val capacity_2d : t -> edge2d -> int
(** Total capacity across all layers of the edge's direction. *)

val usage_2d : t -> edge2d -> int

val via_capacity : t -> x:int -> y:int -> crossing:int -> int
(** Eqn (1) evaluated at tile [(x,y)] for the boundary between layers
    [crossing] and [crossing+1], using the *available* (free) capacity of the
    two incident edges on the lower layer of the crossing, per Section 2.1
    ("if these two connected edges are full of routing wires, then no vias
    are allowed to pass through this grid"). *)

val via_usage : t -> x:int -> y:int -> crossing:int -> int

val add_via_usage : t -> x:int -> y:int -> crossing:int -> int -> unit
(** @raise Invalid_argument if the resulting usage would be negative. *)

val edge_overflow : t -> int
(** Σ over edge-layers of [max 0 (usage − capacity)]. *)

val via_overflow : t -> int
(** Σ over tiles and crossings of [max 0 (usage − via_capacity)].  This is
    the OV# column of Table 2. *)

val total_via_usage : t -> int
(** Σ of via usage over all tiles and crossings (the via# column reports
    stacked-via crossings). *)

val density : t -> float array array
(** [density g].(y).(x) ∈ [0, ∞): wire congestion of tile (x,y), the maximum
    usage/capacity ratio over its incident edges across layers (Fig. 3b). *)

val density_map : t -> string
(** ASCII rendering of [density] (one char per tile, '.' to '9' then '#'). *)

val iter_edges : t -> (edge2d -> unit) -> unit
(** Visit every 2-D edge of the grid once. *)

val clone : t -> t
(** Deep copy (capacities and usage), for what-if evaluation. *)
