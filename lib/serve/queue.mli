(** Scheduling-policy priority queue for ready jobs.

    Pop order is: higher [priority] first; within a priority level, lower
    [cost] first (shortest-expected-first, which minimises mean completion
    time for same-priority jobs); remaining ties resolve FIFO by insertion
    order.  Not thread-safe — the scheduler drains it before handing work
    to the domain pool. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int
  [@@cpla.allow "unused-export"]

val is_empty : 'a t -> bool

val add : 'a t -> priority:int -> cost:float -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the next job by the policy above. *)

val drain : 'a t -> 'a list
(** Pop everything, in policy order. *)
