(** Concurrent batch-optimisation scheduler (one-shot front end).

    Executes a batch of {!Job.spec}s on a fixed pool of OCaml 5 domains by
    layering the original batch API over a persistent {!Session}: submit
    creates a session and accepts the whole manifest in the {!Queue}
    policy order — user priority first, then shortest-expected-first —
    and each job runs the full pipeline: load/generate, global route,
    initial assignment, CPLA optimisation, from-scratch
    {!Cpla_route.Verify} audit.

    Fault isolation: a job that raises, misses its deadline, is cancelled,
    or fails the audit settles as its own non-[Done] terminal state; the
    rest of the batch is unaffected.  Deadlines are enforced through a
    per-job {!Token} polled by {!Cpla.Driver} at partition-solve
    boundaries, measured from the job's arrival at the session (queue
    wait counts against the budget, as in a latency SLA); for a batch,
    arrival is batch submission.

    Every job owns its design, assignment and timing engine, so results
    are identical whether the batch runs on one worker or many. *)

type event =
  | Started of Job.spec  (** a worker began executing the job *)
  | Finished of Job.spec * Job.terminal
      (** the job settled; emitted exactly once per job *)

type batch

val submit :
  ?workers:int -> ?on_event:(event -> unit) -> Job.spec list -> batch
(** Start executing the jobs on [workers] domains (default
    {!Cpla_util.Pool.recommended_workers}, clamped to the job count) and
    return immediately.  [on_event] is invoked from worker domains;
    invocations are serialised by an internal lock, so a consumer may
    print or mutate shared state without further locking.  Job ids must
    be unique within the batch.
    @raise Invalid_argument on an empty list, duplicate ids, or
    [workers < 1]. *)

val cancel : batch -> id:int -> unit
(** Cancel one job: settled [Cancelled] outright if still queued (its
    [Finished] event fires before this returns), else its token fires and
    the run stops at the next cancellation point.  Unknown ids are
    ignored. *)

val wait : batch -> (Job.spec * Job.terminal) array
(** Block until every job settles, then shut the session down (draining).
    Results are in submission (manifest) order.  Call once per batch. *)

val run :
  ?workers:int ->
  ?on_event:(event -> unit) ->
  Job.spec list ->
  (Job.spec * Job.terminal) array
(** [submit] then [wait]. *)

val run_one : Job.spec -> Job.terminal
(** Execute one job in the calling domain with a fresh token (deadline
    still honoured) — the sequential reference the batch and daemon
    results are compared against in tests. *)

val expected_cost : Job.spec -> float
(** The scheduling cost proxy (net count for specs and suite names, scaled
    byte size for files).  Beyond queue ordering, this is the load
    estimate behind the daemon's admission control: the server sheds a
    submission when the summed expected cost of the pending queue would
    exceed its configured bound ({!Cpla_net.Server}). *)
