type source =
  | File of string
  | Bench of string
  | Synth of Cpla_route.Synth.spec

type spec = {
  id : int;
  label : string;
  source : source;
  config : Cpla.Config.t;
  priority : int;
  deadline_s : float option;
}

type metrics = {
  wirelength : int;
  avg_tcp : float;
  max_tcp : float;
  via_overflow : int;
  edge_overflow : int;
  released : int;
  wall_s : float;
}

type terminal =
  | Done of metrics
  | Failed of { error : string; partial : metrics option }
  | Timed_out of { limit_s : float; partial : metrics option }
  | Cancelled of { partial : metrics option }

let is_ok = function Done _ -> true | Failed _ | Timed_out _ | Cancelled _ -> false

let status_string = function
  | Done _ -> "ok"
  | Failed _ -> "failed"
  | Timed_out _ -> "timed-out"
  | Cancelled _ -> "cancelled"

let source_label = function File path -> path | Bench name -> name | Synth s -> s.Cpla_route.Synth.name

(* Metrics equality for the "parallel == sequential" contract.  Wall time is
   scheduling-dependent by nature and excluded. *)
let same_result a b =
  a.wirelength = b.wirelength
  && a.avg_tcp = b.avg_tcp
  && a.max_tcp = b.max_tcp
  && a.via_overflow = b.via_overflow
  && a.edge_overflow = b.edge_overflow
  && a.released = b.released

(* ---- manifest parsing ---------------------------------------------------- *)

(* One job per line:  <file-or-bench> [key=value ...]
   Keys: method=sdp|ilp  ratio=F  priority=N  deadline=S  iters=N  workers=N
   name=LABEL.  '#' starts a comment; blank lines are skipped.  A target
   containing '/' or ending in ".gr" is a file path (checked at run time so
   a missing file fails only its own job); anything else names a built-in
   suite benchmark. *)

let classify_target target =
  if String.contains target '/' || Filename.check_suffix target ".gr" then File target
  else Bench target

let parse_line ~lineno ~id ~default_deadline_s line =
  let fail fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "manifest line %d: %s" lineno m)) fmt in
  let line = String.map (fun c -> if c = '\t' then ' ' else c) line in
  match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
  | [] -> Ok None
  | target :: flags ->
      if String.contains target '=' then
        fail "line must start with a file path or benchmark name, got %S" target
      else begin
        let config = ref Cpla.Config.default in
        let priority = ref 0 in
        let deadline = ref default_deadline_s in
        let label = ref (source_label (classify_target target)) in
        let parse_flag flag =
          match String.index_opt flag '=' with
          | None -> fail "expected key=value, got %S" flag
          | Some i ->
              let key = String.sub flag 0 i in
              let v = String.sub flag (i + 1) (String.length flag - i - 1) in
              let pos_int name =
                match int_of_string_opt v with
                | Some n when n > 0 -> Ok n
                | _ -> fail "%s must be a positive integer, got %S" name v
              in
              (match key with
              | "method" -> (
                  match v with
                  | "sdp" ->
                      config := { !config with Cpla.Config.method_ = Cpla.Config.Sdp };
                      Ok ()
                  | "ilp" ->
                      config := { !config with Cpla.Config.method_ = Cpla.Config.Ilp };
                      Ok ()
                  | _ -> fail "method must be sdp or ilp, got %S" v)
              | "ratio" -> (
                  match float_of_string_opt v with
                  | Some r when r > 0.0 && r <= 1.0 ->
                      config := { !config with Cpla.Config.critical_ratio = r };
                      Ok ()
                  | _ -> fail "ratio must be in (0, 1], got %S" v)
              | "priority" -> (
                  match int_of_string_opt v with
                  | Some p ->
                      priority := p;
                      Ok ()
                  | None -> fail "priority must be an integer, got %S" v)
              | "deadline" -> (
                  match float_of_string_opt v with
                  | Some d when d >= 0.0 ->
                      deadline := Some d;
                      Ok ()
                  | _ -> fail "deadline must be a non-negative number of seconds, got %S" v)
              | "iters" ->
                  Result.map
                    (fun n -> config := { !config with Cpla.Config.max_outer_iters = n })
                    (pos_int "iters")
              | "workers" ->
                  Result.map
                    (fun n -> config := { !config with Cpla.Config.workers = n })
                    (pos_int "workers")
              | "name" ->
                  label := v;
                  Ok ()
              | _ -> fail "unknown flag %S (known: method ratio priority deadline iters workers name)" key)
        in
        let rec apply = function
          | [] ->
              Ok
                (Some
                   {
                     id;
                     label = !label;
                     source = classify_target target;
                     config = !config;
                     priority = !priority;
                     deadline_s = !deadline;
                   })
          | flag :: rest -> (
              match parse_flag flag with Ok () -> apply rest | Error _ as e -> e)
        in
        apply flags
      end

let parse_manifest ?default_deadline_s text =
  let strip_comment line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let lines = String.split_on_char '\n' text in
  let rec go lineno id acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        let line = String.trim (strip_comment line) in
        match parse_line ~lineno ~id ~default_deadline_s line with
        | Ok None -> go (lineno + 1) id acc rest
        | Ok (Some spec) -> go (lineno + 1) (id + 1) (spec :: acc) rest
        | Error _ as e -> e)
  in
  go 1 0 [] lines
