open Cpla_route
open Cpla_timing
module Pool = Cpla_util.Pool
module Exn = Cpla_util.Exn

type event =
  | Submitted of Job.spec
  | Started of Job.spec
  | Progress of Job.spec * int
  | Finished of Job.spec * Job.terminal

(* ---- job execution (moved here from Scheduler; the worker body) ----------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load = function
  | Job.Synth spec -> Synth.generate spec
  | Job.Bench name -> (
      match Cpla_expt.Suite.find name with
      | bench -> Synth.generate bench.Cpla_expt.Suite.spec
      | exception Not_found ->
          failwith (Printf.sprintf "unknown benchmark %s (try `cpla list`)" name))
  | Job.File path -> (
      match Ispd08.parse (read_file path) with
      | Ok design -> (Ispd08.to_graph design, design.Ispd08.nets)
      | Error msg -> failwith (Printf.sprintf "cannot parse %s: %s" path msg))

(* Pre-routing proxy for a job's size, for shortest-expected-first ordering
   and the daemon's admission-control load estimate.  Segment counts only
   exist after routing, so rank by net count (suite specs carry it; files
   are ranked by byte size, which grows with their net list).  Unreadable
   sources rank 0 and fail fast when they run. *)
let expected_cost (spec : Job.spec) =
  match spec.Job.source with
  | Job.Synth s -> float_of_int s.Synth.num_nets
  | Job.Bench name -> (
      match Cpla_expt.Suite.find name with
      | bench -> float_of_int bench.Cpla_expt.Suite.spec.Synth.num_nets
      | exception Not_found -> 0.0)
  | Job.File path -> (
      match open_in_bin path with
      | ic ->
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> float_of_int (in_channel_length ic) /. 64.0)
      | exception Sys_error _ -> 0.0)

let rec root_cause = function
  | Pool.Worker_failure e -> root_cause e
  | e -> e

let terminal_label = function
  | Job.Done _ -> "done"
  | Job.Failed _ -> "failed"
  | Job.Timed_out _ -> "timed-out"
  | Job.Cancelled _ -> "cancelled"

(* One instant per terminal state plus an outcome counter, shared by the
   worker path and the cancelled-while-queued path in [cancel]. *)
let observe_terminal (spec : Job.spec) terminal =
  let label = terminal_label terminal in
  Cpla_obs.Span.instant ~name:"serve/terminal"
    ~args:[ ("job", Cpla_obs.Event.Int spec.Job.id); ("state", Cpla_obs.Event.Str label) ]
    ();
  Cpla_obs.Metrics.incr ("serve/jobs-" ^ label)

(* Capacity overflow is a *metric* in the paper (Table 2's OV# column): the
   formulation itself relaxes via capacity through V_o, so overflow left
   behind is reported, not treated as failure.  A job fails its audit only
   on structural violations — wiring that is unassigned, direction-illegal,
   disconnected from a pin, or inconsistent with the usage ledger. *)
let structural_violations (report : Verify.report) =
  List.filter
    (function
      | Verify.Edge_overflow _ | Verify.Via_overflow _ -> false
      | Verify.Unassigned_segment _ | Verify.Direction_mismatch _ | Verify.Pin_unreachable _
      | Verify.Ledger_mismatch _ ->
          true)
    report.Verify.violations

let run_job (spec : Job.spec) token ?solve_cache ?(on_poll = fun () -> ()) () =
  let watch = Cpla_util.Timer.wall () in
  (* Once the design reaches a measurable state, [partial] can audit it even
     after a cancellation or failure (the driver rolls a broken iteration
     back to its entry snapshot, so the assignment stays consistent). *)
  let partial = ref (fun () -> None) in
  let measure asg engine released =
    let report = Verify.check asg in
    let avg_tcp, max_tcp = Incremental.avg_max_tcp engine released in
    let graph = Assignment.graph asg in
    ( report,
      {
        Job.wirelength = report.Verify.wirelength;
        avg_tcp;
        max_tcp;
        via_overflow = Cpla_grid.Graph.via_overflow graph;
        edge_overflow = Cpla_grid.Graph.edge_overflow graph;
        released = Array.length released;
        wall_s = Cpla_util.Timer.elapsed_s watch;
      } )
  in
  let check () =
    Token.check token;
    on_poll ()
  in
  try
    Token.check token;
    let graph, nets = load spec.Job.source in
    Token.check token;
    let routed = Router.route_all ~graph nets in
    let asg = Assignment.create ~graph ~nets ~trees:routed.Router.trees in
    Init_assign.run asg;
    let engine = Incremental.create asg in
    let released = Incremental.select engine ~ratio:spec.Job.config.Cpla.Config.critical_ratio in
    (partial :=
       fun () ->
         if Assignment.fully_assigned asg then Some (snd (measure asg engine released))
         else None);
    ignore
      (Cpla.Driver.optimize_released ~config:spec.Job.config ~engine ?solve_cache ~check asg
         ~released);
    let report, metrics = measure asg engine released in
    (match structural_violations report with
    | [] -> Job.Done metrics
    | v :: _ as vs ->
        let error =
          Format.asprintf "audit: %d structural violation%s, first: %a" (List.length vs)
            (if List.length vs = 1 then "" else "s")
            Verify.pp_violation v
        in
        Job.Failed { error; partial = Some metrics })
  with e -> (
    (* Out_of_memory / Stack_overflow must not be laundered into a
       Job.Failed string: they re-raise so the pool transports them to the
       awaiting caller's domain. *)
    Exn.reraise_if_async e;
    let partial =
      try !partial ()
      with pe ->
        Exn.reraise_if_async pe;
        None
    in
    match root_cause e with
    | Token.Cancelled Token.Deadline ->
        Job.Timed_out { limit_s = Option.value spec.Job.deadline_s ~default:0.0; partial }
    | Token.Cancelled Token.User -> Job.Cancelled { partial }
    | e -> Job.Failed { error = Printexc.to_string e; partial })

(* ---- the persistent session ----------------------------------------------- *)

(* Emit a Progress event every this many cancellation polls: fine enough to
   show liveness on multi-second jobs, coarse enough that a daemon is not
   flooded with frames. *)
let progress_stride = 16

type jstate = Queued | Running | Settled of Job.terminal

type entry = {
  spec : Job.spec;
  token : Token.t;
  on_event : event -> unit;  (* already wrapped in the session emit lock *)
  mutable state : jstate;  (* guarded by the session mutex *)
}

type t = {
  m : Mutex.t;
  settled : Condition.t;  (* some entry reached Settled *)
  emit_m : Mutex.t;  (* serialises every on_event callback of the session *)
  q : entry Queue.t;  (* policy order; may hold already-settled entries *)
  jobs : (int, entry) Hashtbl.t;  (* every id this session ever accepted *)
  pool : Pool.Persistent.t;
  solve_cache : Cpla.Solve_cache.t option;
      (* shared by every job this session runs: repeated or near-identical
         submissions hit each other's cold partition solves *)
  mutable draining : bool;
  mutable pending_n : int;  (* queued, not yet claimed, not revoked *)
  mutable pending_c : float;  (* summed expected_cost of those *)
  mutable running_n : int;
}

type handle = { session : t; entry : entry }

let create ?(workers = Pool.recommended_workers ()) ?(solve_cache = false) () =
  if workers < 1 then invalid_arg "Session.create: workers must be >= 1";
  {
    m = Mutex.create ();
    settled = Condition.create ();
    emit_m = Mutex.create ();
    q = Queue.create ();
    jobs = Hashtbl.create 64;
    pool = Pool.Persistent.create ~workers;
    solve_cache = (if solve_cache then Some (Cpla.Solve_cache.create ()) else None);
    draining = false;
    pending_n = 0;
    pending_c = 0.0;
    running_n = 0;
  }

let cache_stats t =
  match t.solve_cache with
  | None -> None
  | Some c -> Some (Cpla.Solve_cache.hits c, Cpla.Solve_cache.misses c)

let locked t f =
  (* queue-state lock: every critical section is a few field updates *)
  (Mutex.lock t.m [@cpla.allow "blocking-in-loop"]);
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* Events come from whichever domain settles a job (workers, or [cancel]'s
   caller for queued jobs); one lock keeps consumer callbacks (printing,
   frame encoding, counters) from interleaving. *)
let emitting t f =
  (* held only for one consumer callback at a time *)
  (Mutex.lock t.emit_m [@cpla.allow "blocking-in-loop"]);
  Fun.protect ~finally:(fun () -> Mutex.unlock t.emit_m) f

(* Exactly one pool thunk is submitted per accepted job, and each thunk pops
   exactly one queue entry — which is not necessarily "its" job: the queue
   reorders by policy.  An entry popped after being cancelled-while-queued
   consumes its thunk without running. *)
let run_next t () =
  let next =
    locked t (fun () ->
        match Queue.pop t.q with
        | None -> None  (* unreachable: thunks and entries are 1:1 *)
        | Some entry -> (
            match entry.state with
            | Settled _ -> None  (* revoked while queued; thunk consumed *)
            | Running -> None  (* unreachable: entries run once *)
            | Queued ->
                entry.state <- Running;
                t.pending_n <- t.pending_n - 1;
                t.pending_c <- t.pending_c -. expected_cost entry.spec;
                t.running_n <- t.running_n + 1;
                Some entry))
  in
  match next with
  | None -> ()
  | Some entry ->
      let spec = entry.spec in
      entry.on_event (Started spec);
      let polls = ref 0 in
      let on_poll () =
        incr polls;
        if !polls mod progress_stride = 0 then entry.on_event (Progress (spec, !polls))
      in
      let terminal =
        Cpla_obs.Span.with_ ~name:"serve/job"
          ~args:[ ("job", Cpla_obs.Event.Int spec.Job.id) ]
          (fun () -> run_job spec entry.token ?solve_cache:t.solve_cache ~on_poll ())
      in
      observe_terminal spec terminal;
      locked t (fun () ->
          entry.state <- Settled terminal;
          t.running_n <- t.running_n - 1;
          Condition.broadcast t.settled);
      entry.on_event (Finished (spec, terminal))

let submit t ?(on_event = fun _ -> ()) (spec : Job.spec) =
  (* The token — and with it any deadline stopwatch — is created at request
     arrival, before the job waits in the queue: queue time counts against
     the budget. *)
  let token = Token.create ?deadline_s:spec.Job.deadline_s () in
  let entry =
    { spec; token; on_event = (fun ev -> emitting t (fun () -> on_event ev)); state = Queued }
  in
  locked t (fun () ->
      if t.draining then invalid_arg "Session.submit: session is draining";
      if Hashtbl.mem t.jobs spec.Job.id then
        invalid_arg (Printf.sprintf "Session.submit: duplicate job id %d" spec.Job.id);
      Hashtbl.replace t.jobs spec.Job.id entry;
      Queue.add t.q ~priority:spec.Job.priority ~cost:(expected_cost spec) entry;
      t.pending_n <- t.pending_n + 1;
      t.pending_c <- t.pending_c +. expected_cost spec);
  Cpla_obs.Span.instant ~name:"serve/submit"
    ~args:[ ("job", Cpla_obs.Event.Int spec.Job.id) ]
    ();
  Cpla_obs.Metrics.incr "serve/jobs-submitted";
  entry.on_event (Submitted spec);
  (* [run_next] executes on a pool worker domain, never on the caller; its
     waits are off the event loop by construction *)
  (match (Pool.Persistent.submit t.pool (run_next t) [@cpla.allow "blocking-in-loop"]) with
  | (_ : unit Pool.Persistent.task) -> ()
  | exception Invalid_argument _ ->
      (* a concurrent [drain] shut the pool between admission and thunk
         submission: settle the job as cancelled rather than leaving it
         queued forever *)
      let terminal = Job.Cancelled { partial = None } in
      locked t (fun () ->
          entry.state <- Settled terminal;
          t.pending_n <- t.pending_n - 1;
          t.pending_c <- t.pending_c -. expected_cost spec;
          Condition.broadcast t.settled);
      observe_terminal spec terminal;
      entry.on_event (Finished (spec, terminal)));
  { session = t; entry }

let cancel t ~id =
  match Hashtbl.find_opt t.jobs id with
  | None -> false
  | Some entry -> (
      let queued_terminal =
        locked t (fun () ->
            match entry.state with
            | Queued ->
                let terminal = Job.Cancelled { partial = None } in
                entry.state <- Settled terminal;
                t.pending_n <- t.pending_n - 1;
                t.pending_c <- t.pending_c -. expected_cost entry.spec;
                Condition.broadcast t.settled;
                Some (`Revoked terminal)
            | Running -> Some `Running
            | Settled _ -> None)
      in
      match queued_terminal with
      | Some (`Revoked terminal) ->
          (* never claimed: its terminal event is emitted here, exactly once *)
          observe_terminal entry.spec terminal;
          entry.on_event (Finished (entry.spec, terminal));
          true
      | Some `Running ->
          (* fire the token; the job stops at its next cancellation point *)
          Token.cancel entry.token;
          true
      | None -> false)

let await h =
  Mutex.lock h.session.m;
  let rec wait () =
    match h.entry.state with
    | Settled terminal -> terminal
    | Queued | Running ->
        Condition.wait h.session.settled h.session.m;
        wait ()
  in
  let terminal = wait () in
  Mutex.unlock h.session.m;
  terminal

let pending t = locked t (fun () -> t.pending_n)

let pending_cost t = locked t (fun () -> t.pending_c)

let running t = locked t (fun () -> t.running_n)

let drain t =
  locked t (fun () -> t.draining <- true);
  (* draining runs every still-queued thunk (settling or skipping its
     entry) and joins the workers, so every accepted job is terminal when
     this returns *)
  Pool.Persistent.shutdown ~drain:true t.pool
