(** Persistent scheduler session: jobs accepted continuously, not in
    one-shot batches.

    A session owns a {!Cpla_util.Pool.Persistent} domain pool for its
    whole lifetime and accepts {!submit} calls at any time — the substrate
    of the network daemon, where requests arrive while earlier jobs are
    still running.  Queued jobs run in the batch policy order (priority
    desc, shortest-expected-first, FIFO ties) regardless of arrival
    interleaving.

    Deadlines are measured from {e request arrival}: the job's token is
    created inside {!submit}, so queue wait counts against the budget —
    a latency SLA, not a compute budget.  A job whose deadline expires
    while still queued settles as [Timed_out] without running.

    {!Scheduler} layers the original batch API on top of this module. *)

type event =
  | Submitted of Job.spec  (** accepted into the queue *)
  | Started of Job.spec  (** a worker began executing it *)
  | Progress of Job.spec * int
      (** still running; the int is the cumulative cancellation-poll count
          (driver partition-solve boundaries), emitted every few polls *)
  | Finished of Job.spec * Job.terminal  (** settled; exactly once per job *)

type t

type handle
(** One submitted job (await its terminal state with {!await}). *)

val create : ?workers:int -> ?solve_cache:bool -> unit -> t
(** Spawn the worker pool (default {!Cpla_util.Pool.recommended_workers}).
    [solve_cache] (default false) equips the session with a shared
    {!Cpla.Solve_cache}: every job's driver looks partition subproblems up
    by canonical content, so repeated or near-identical submissions skip
    already-performed solves.  Results stay valid either way; with warm
    starts enabled they may differ within score tolerance from a
    cache-free run (a hit replays the cold-start solution).
    @raise Invalid_argument when [workers < 1]. *)

val cache_stats : t -> (int * int) option
(** [(hits, misses)] of the session's solve cache; [None] when the session
    was created without one. *)

val submit : t -> ?on_event:(event -> unit) -> Job.spec -> handle
(** Accept a job now: its deadline stopwatch starts here.  [on_event]
    fires from worker domains (and from {!cancel}'s caller for
    queued-job cancellations), serialised by a per-session lock shared
    with every other job's callback.  [Submitted] is emitted before
    [submit] returns.
    @raise Invalid_argument if the session is draining or the spec's id
    collides with a job this session has already accepted. *)

val cancel : t -> id:int -> bool
(** Cancel by job id.  A queued job settles [Cancelled] immediately
    (its [Finished] event fires on the calling domain before the call
    returns); a running job's token fires and it settles at its next
    cancellation point.  [false] when the id is unknown or already
    settled. *)

val await : handle -> Job.terminal
(** Block until the job settles. *)

val pending : t -> int
(** Jobs accepted but not yet claimed by a worker. *)

val pending_cost : t -> float
(** Summed {!expected_cost} of the pending jobs — the queue-depth ×
    expected-cost load estimate behind the daemon's shed decisions. *)

val running : t -> int
(** Jobs currently executing on a worker. *)

val drain : t -> unit
(** Stop accepting, run every queued job to a terminal state, then shut
    the pool down.  Blocks until the last job settles.  Idempotent. *)

val run_job :
  Job.spec ->
  Token.t ->
  ?solve_cache:Cpla.Solve_cache.t ->
  ?on_poll:(unit -> unit) ->
  unit ->
  Job.terminal
(** Execute one job in the calling domain under the given token
    ([on_poll] fires at each cancellation poll) — the sequential
    reference path ({!Scheduler.run_one}) and the worker body.
    [solve_cache] threads a shared content-addressed solve cache into the
    driver. *)

val expected_cost : Job.spec -> float
(** Pre-routing proxy for a job's size (net count for specs and suite
    names, scaled byte size for files): the scheduling cost key and the
    admission-control load estimate. *)
