(* One-shot batch front end over the persistent {!Session}: a batch is a
   session that accepts its whole manifest up front, awaits every job, and
   drains.  The execution machinery (job pipeline, policy order, events,
   fault isolation) lives in Session; this module only preserves the
   original batch API and its manifest-order result contract. *)

module Pool = Cpla_util.Pool

type event =
  | Started of Job.spec
  | Finished of Job.spec * Job.terminal

type batch = {
  results : (Job.spec * Session.handle) array;  (* manifest order *)
  session : Session.t;
}

let expected_cost = Session.expected_cost

let submit ?(workers = Pool.recommended_workers ()) ?on_event specs =
  if workers < 1 then invalid_arg "Scheduler.submit: workers must be >= 1";
  if specs = [] then invalid_arg "Scheduler.submit: empty job list";
  let seen = Hashtbl.create (List.length specs) in
  List.iter
    (fun (s : Job.spec) ->
      if Hashtbl.mem seen s.Job.id then
        invalid_arg (Printf.sprintf "Scheduler.submit: duplicate job id %d" s.Job.id);
      Hashtbl.replace seen s.Job.id ())
    specs;
  let session = Session.create ~workers:(min workers (List.length specs)) () in
  let on_event =
    match on_event with
    | None -> fun _ -> ()
    | Some f -> (
        (* session callbacks are already serialised by its emit lock *)
        function
        | Session.Started s -> f (Started s)
        | Session.Finished (s, terminal) -> f (Finished (s, terminal))
        | Session.Submitted _ | Session.Progress _ -> ())
  in
  (* Jobs reach the session in policy order: drain the priority queue
     first, then submit.  Workers may claim the front while later entries
     are still being enqueued — the relative order is already final (the
     session's own queue sorts by the same key), so the policy holds. *)
  let q = Queue.create () in
  List.iter
    (fun (s : Job.spec) -> Queue.add q ~priority:s.Job.priority ~cost:(expected_cost s) s)
    specs;
  let handles = Hashtbl.create (List.length specs) in
  List.iter
    (fun (s : Job.spec) -> Hashtbl.replace handles s.Job.id (Session.submit session ~on_event s))
    (Queue.drain q);
  {
    results =
      Array.of_list (List.map (fun (s : Job.spec) -> (s, Hashtbl.find handles s.Job.id)) specs);
    session;
  }

let cancel batch ~id = ignore (Session.cancel batch.session ~id)

let wait batch =
  let out = Array.map (fun (spec, h) -> (spec, Session.await h)) batch.results in
  Session.drain batch.session;
  out

let run ?workers ?on_event specs = wait (submit ?workers ?on_event specs)

let run_one (spec : Job.spec) =
  Session.run_job spec (Token.create ?deadline_s:spec.Job.deadline_s ()) ()
