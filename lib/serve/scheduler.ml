open Cpla_route
open Cpla_timing
module Pool = Cpla_util.Pool
module Exn = Cpla_util.Exn

type event =
  | Started of Job.spec
  | Finished of Job.spec * Job.terminal

type batch = {
  results : (Job.spec * Job.terminal Pool.Persistent.task) array;  (* manifest order *)
  tokens : (int, Token.t) Hashtbl.t;  (* job id -> its cancellation token *)
  pool : Pool.Persistent.t;
  emit : event -> unit;
}

(* ---- job execution ------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load = function
  | Job.Synth spec -> Synth.generate spec
  | Job.Bench name -> (
      match Cpla_expt.Suite.find name with
      | bench -> Synth.generate bench.Cpla_expt.Suite.spec
      | exception Not_found ->
          failwith (Printf.sprintf "unknown benchmark %s (try `cpla list`)" name))
  | Job.File path -> (
      match Ispd08.parse (read_file path) with
      | Ok design -> (Ispd08.to_graph design, design.Ispd08.nets)
      | Error msg -> failwith (Printf.sprintf "cannot parse %s: %s" path msg))

(* Pre-routing proxy for a job's size, for shortest-expected-first ordering.
   Segment counts only exist after routing, so rank by net count (suite
   specs carry it; files are ranked by byte size, which grows with their
   net list).  Unreadable sources rank 0 and fail fast when they run. *)
let expected_cost (spec : Job.spec) =
  match spec.Job.source with
  | Job.Synth s -> float_of_int s.Synth.num_nets
  | Job.Bench name -> (
      match Cpla_expt.Suite.find name with
      | bench -> float_of_int bench.Cpla_expt.Suite.spec.Synth.num_nets
      | exception Not_found -> 0.0)
  | Job.File path -> (
      match open_in_bin path with
      | ic ->
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> float_of_int (in_channel_length ic) /. 64.0)
      | exception Sys_error _ -> 0.0)

let rec root_cause = function
  | Pool.Worker_failure e -> root_cause e
  | e -> e

let terminal_label = function
  | Job.Done _ -> "done"
  | Job.Failed _ -> "failed"
  | Job.Timed_out _ -> "timed-out"
  | Job.Cancelled _ -> "cancelled"

(* One instant per terminal state plus an outcome counter, shared by the
   worker path and the revoked-before-claim path in [wait]. *)
let observe_terminal (spec : Job.spec) terminal =
  let label = terminal_label terminal in
  Cpla_obs.Span.instant ~name:"serve/terminal"
    ~args:[ ("job", Cpla_obs.Event.Int spec.Job.id); ("state", Cpla_obs.Event.Str label) ]
    ();
  Cpla_obs.Metrics.incr ("serve/jobs-" ^ label)

(* Capacity overflow is a *metric* in the paper (Table 2's OV# column): the
   formulation itself relaxes via capacity through V_o, so overflow left
   behind is reported, not treated as failure.  A job fails its audit only
   on structural violations — wiring that is unassigned, direction-illegal,
   disconnected from a pin, or inconsistent with the usage ledger. *)
let structural_violations (report : Verify.report) =
  List.filter
    (function
      | Verify.Edge_overflow _ | Verify.Via_overflow _ -> false
      | Verify.Unassigned_segment _ | Verify.Direction_mismatch _ | Verify.Pin_unreachable _
      | Verify.Ledger_mismatch _ ->
          true)
    report.Verify.violations

let run_job (spec : Job.spec) token =
  let watch = Cpla_util.Timer.wall () in
  (* Once the design reaches a measurable state, [partial] can audit it even
     after a cancellation or failure (the driver rolls a broken iteration
     back to its entry snapshot, so the assignment stays consistent). *)
  let partial = ref (fun () -> None) in
  let measure asg engine released =
    let report = Verify.check asg in
    let avg_tcp, max_tcp = Incremental.avg_max_tcp engine released in
    let graph = Assignment.graph asg in
    ( report,
      {
        Job.wirelength = report.Verify.wirelength;
        avg_tcp;
        max_tcp;
        via_overflow = Cpla_grid.Graph.via_overflow graph;
        edge_overflow = Cpla_grid.Graph.edge_overflow graph;
        released = Array.length released;
        wall_s = Cpla_util.Timer.elapsed_s watch;
      } )
  in
  try
    Token.check token;
    let graph, nets = load spec.Job.source in
    Token.check token;
    let routed = Router.route_all ~graph nets in
    let asg = Assignment.create ~graph ~nets ~trees:routed.Router.trees in
    Init_assign.run asg;
    let engine = Incremental.create asg in
    let released = Incremental.select engine ~ratio:spec.Job.config.Cpla.Config.critical_ratio in
    (partial :=
       fun () ->
         if Assignment.fully_assigned asg then Some (snd (measure asg engine released))
         else None);
    ignore
      (Cpla.Driver.optimize_released ~config:spec.Job.config ~engine
         ~check:(fun () -> Token.check token)
         asg ~released);
    let report, metrics = measure asg engine released in
    (match structural_violations report with
    | [] -> Job.Done metrics
    | v :: _ as vs ->
        let error =
          Format.asprintf "audit: %d structural violation%s, first: %a" (List.length vs)
            (if List.length vs = 1 then "" else "s")
            Verify.pp_violation v
        in
        Job.Failed { error; partial = Some metrics })
  with e -> (
    (* Out_of_memory / Stack_overflow must not be laundered into a
       Job.Failed string: the pool transports them to [wait], which
       re-raises on the caller's domain. *)
    Exn.reraise_if_async e;
    let partial =
      try !partial ()
      with pe ->
        Exn.reraise_if_async pe;
        None
    in
    match root_cause e with
    | Token.Cancelled Token.Deadline ->
        Job.Timed_out { limit_s = Option.value spec.Job.deadline_s ~default:0.0; partial }
    | Token.Cancelled Token.User -> Job.Cancelled { partial }
    | e -> Job.Failed { error = Printexc.to_string e; partial })

(* ---- batch orchestration ------------------------------------------------- *)

let submit ?(workers = Pool.recommended_workers ()) ?on_event specs =
  if workers < 1 then invalid_arg "Scheduler.submit: workers must be >= 1";
  if specs = [] then invalid_arg "Scheduler.submit: empty job list";
  let emit =
    match on_event with
    | None -> fun _ -> ()
    | Some f ->
        (* events come from whichever worker domain finishes a job; a
           single lock keeps consumer callbacks (printing, counters) from
           interleaving *)
        let m = Mutex.create () in
        fun ev ->
          Mutex.lock m;
          Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> f ev)
  in
  let tokens = Hashtbl.create (List.length specs) in
  List.iter
    (fun (s : Job.spec) ->
      if Hashtbl.mem tokens s.Job.id then
        invalid_arg (Printf.sprintf "Scheduler.submit: duplicate job id %d" s.Job.id);
      Cpla_obs.Span.instant ~name:"serve/submit"
        ~args:[ ("job", Cpla_obs.Event.Int s.Job.id) ]
        ();
      Cpla_obs.Metrics.incr "serve/jobs-submitted";
      Hashtbl.replace tokens s.Job.id (Token.create ?deadline_s:s.Job.deadline_s ()))
    specs;
  let pool = Pool.Persistent.create ~workers:(min workers (List.length specs)) in
  (* Ready jobs reach the FIFO pool in policy order: drain the priority
     queue first, then submit.  Workers may already be pulling from the
     front while later entries are still being enqueued — the relative
     order is already final, so the policy is preserved. *)
  let q = Queue.create () in
  List.iter
    (fun (s : Job.spec) -> Queue.add q ~priority:s.Job.priority ~cost:(expected_cost s) s)
    specs;
  let tasks = Hashtbl.create (List.length specs) in
  List.iter
    (fun (s : Job.spec) ->
      let token = Hashtbl.find tokens s.Job.id in
      let task =
        Pool.Persistent.submit pool (fun () ->
            emit (Started s);
            let terminal =
              Cpla_obs.Span.with_ ~name:"serve/job"
                ~args:[ ("job", Cpla_obs.Event.Int s.Job.id) ]
                (fun () -> run_job s token)
            in
            observe_terminal s terminal;
            emit (Finished (s, terminal));
            terminal)
      in
      Hashtbl.replace tasks s.Job.id task)
    (Queue.drain q);
  {
    results =
      Array.of_list (List.map (fun (s : Job.spec) -> (s, Hashtbl.find tasks s.Job.id)) specs);
    tokens;
    pool;
    emit;
  }

let cancel batch ~id =
  (* Revoke the pool entry if no worker claimed it yet; fire the token so a
     job already in flight stops at its next cancellation point.  Both are
     safe regardless of the job's actual state. *)
  (match Hashtbl.find_opt batch.tokens id with Some t -> Token.cancel t | None -> ());
  Array.iter
    (fun ((s : Job.spec), task) ->
      if s.Job.id = id then ignore (Pool.Persistent.cancel batch.pool task))
    batch.results

let wait batch =
  let out =
    Array.map
      (fun (spec, task) ->
        match Pool.Persistent.await batch.pool task with
        | Ok terminal -> (spec, terminal)
        | Error Pool.Persistent.Cancelled ->
            (* revoked before any worker claimed it: the job never ran, so
               its terminal event is emitted here, exactly once *)
            let terminal = Job.Cancelled { partial = None } in
            observe_terminal spec terminal;
            batch.emit (Finished (spec, terminal));
            (spec, terminal)
        | Error e ->
            (* the pool isolates task exceptions and [run_job] catches its
               own, so only an asynchronous exception that run_job re-raised
               can land here: surface it on the caller's domain.  Anything
               else is unreachable; classify defensively. *)
            Exn.reraise_if_async e;
            (spec, Job.Failed { error = Printexc.to_string e; partial = None }))
      batch.results
  in
  Pool.Persistent.shutdown ~drain:true batch.pool;
  out

let run ?workers ?on_event specs = wait (submit ?workers ?on_event specs)

let run_one (spec : Job.spec) =
  run_job spec (Token.create ?deadline_s:spec.Job.deadline_s ())
