type reason = User | Deadline

exception Cancelled of reason

type t = {
  state : reason option Atomic.t;
  deadline : (Cpla_util.Timer.t * float) option;  (* stopwatch, budget seconds *)
}

let create ?deadline_s () =
  (match deadline_s with
  | Some d when d < 0.0 -> invalid_arg "Token.create: negative deadline"
  | _ -> ());
  {
    state = Atomic.make None;
    deadline = Option.map (fun d -> (Cpla_util.Timer.wall (), d)) deadline_s;
  }

let cancel t = ignore (Atomic.compare_and_set t.state None (Some User))

(* The deadline is latched into [state] the first time it is observed
   expired, so every poll after the first reports the same reason even if a
   concurrent [cancel] arrives later. *)
let status t =
  match Atomic.get t.state with
  | Some r -> Some r
  | None -> (
      match t.deadline with
      | Some (w, budget) when Cpla_util.Timer.elapsed_s w >= budget ->
          ignore (Atomic.compare_and_set t.state None (Some Deadline));
          Atomic.get t.state
      | _ -> None)

let cancelled t = status t <> None

let check t = match status t with Some r -> raise (Cancelled r) | None -> ()

let reason_to_string = function User -> "cancelled" | Deadline -> "deadline exceeded"
