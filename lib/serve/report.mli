(** Result-line and summary formatting for the serve subcommand. *)

val metrics_string : Job.metrics -> string
  [@@cpla.allow "unused-export"]

val line : Job.spec -> Job.terminal -> string
(** One streaming result line, e.g.
    [job 0   adaptec1  ok  wl=... avg=... max=... ov=... edge_ov=... rel=... wall=...s].
    Always starts with ["job "] so scripts (and the CI smoke test) can
    count result lines with [grep -c '^job ']. *)

val summary : (Job.spec * Job.terminal) array -> string
(** One-line batch summary, prefixed ["serve:"]. *)

val all_ok : (Job.spec * Job.terminal) array -> bool
(** Whether every job finished [Done] — the process exit criterion. *)
