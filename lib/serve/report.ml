let metrics_string (m : Job.metrics) =
  Printf.sprintf "wl=%d avg=%.2f max=%.2f ov=%d edge_ov=%d rel=%d wall=%.2fs"
    m.Job.wirelength m.Job.avg_tcp m.Job.max_tcp m.Job.via_overflow m.Job.edge_overflow
    m.Job.released m.Job.wall_s

let detail_string = function
  | Job.Done m -> metrics_string m
  | Job.Failed { error; partial } -> (
      let error = String.map (fun c -> if c = '\n' then ' ' else c) error in
      match partial with
      | Some m -> Printf.sprintf "%s [partial: %s]" error (metrics_string m)
      | None -> error)
  | Job.Timed_out { limit_s; partial } -> (
      let hdr = Printf.sprintf "deadline %.2fs exceeded" limit_s in
      match partial with
      | Some m -> Printf.sprintf "%s [partial: %s]" hdr (metrics_string m)
      | None -> hdr)
  | Job.Cancelled { partial } -> (
      match partial with
      | Some m -> Printf.sprintf "[partial: %s]" (metrics_string m)
      | None -> "")

let line (spec : Job.spec) terminal =
  String.trim
    (Printf.sprintf "job %-3d %-24s %-9s %s" spec.Job.id spec.Job.label
       (Job.status_string terminal) (detail_string terminal))

let summary results =
  let count pred = Array.length (Array.of_seq (Seq.filter pred (Array.to_seq results))) in
  let ok = count (fun (_, t) -> Job.is_ok t) in
  let failed = count (fun (_, t) -> match t with Job.Failed _ -> true | _ -> false) in
  let timed_out = count (fun (_, t) -> match t with Job.Timed_out _ -> true | _ -> false) in
  let cancelled = count (fun (_, t) -> match t with Job.Cancelled _ -> true | _ -> false) in
  Printf.sprintf "serve: %d job%s — %d ok, %d failed, %d timed-out, %d cancelled"
    (Array.length results)
    (if Array.length results = 1 then "" else "s")
    ok failed timed_out cancelled

let all_ok results = Array.for_all (fun (_, t) -> Job.is_ok t) results
