(** Cooperative cancellation tokens with wall-clock deadlines.

    A token is the channel between the scheduler (which cancels jobs and
    arms deadlines) and the optimisation loop (which polls {!check} at
    partition-solve boundaries via {!Cpla.Driver.optimize_released}'s
    [check] hook).  Cancellation is cooperative: nothing is interrupted
    until the running code polls.

    Domain-safe: {!cancel} and the polling functions may race from
    different domains; the first observed cause (user cancel or deadline
    expiry) is latched and reported consistently ever after. *)

type reason =
  | User      (** {!cancel} was called *)
  | Deadline  (** the wall-clock deadline elapsed *)

exception Cancelled of reason

type t

val create : ?deadline_s:float -> unit -> t
(** A live token.  [deadline_s] arms a wall-clock deadline that many
    seconds from now ([0.] expires on the first poll).
    @raise Invalid_argument on a negative deadline. *)

val cancel : t -> unit
(** Request cancellation.  No-op if the token already fired. *)

val cancelled : t -> bool
(** Whether the token has fired (either cause). *)

val status : t -> reason option
(** The latched cause, if any.  Polling this (or {!cancelled}/{!check})
    is what detects deadline expiry. *)

val check : t -> unit
(** @raise Cancelled when the token has fired.  This is the closure to
    pass as the driver's [check] hook. *)

val reason_to_string : reason -> string
  [@@cpla.allow "unused-export"]
