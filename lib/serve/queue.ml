(* Binary heap ordered by (priority desc, cost asc, insertion seq asc).
   The float-keyed Cpla_util.Heap cannot express this lexicographic order
   without lossy key packing, hence a small dedicated heap. *)

type key = { priority : int; cost : float; seq : int }

type 'a t = {
  mutable data : (key * 'a) array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { data = [||]; len = 0; next_seq = 0 }

let length q = q.len

let is_empty q = q.len = 0

(* a should pop before b *)
let before a b =
  if a.priority <> b.priority then a.priority > b.priority
  else if a.cost <> b.cost then a.cost < b.cost
  else a.seq < b.seq

let swap q i j =
  let tmp = q.data.(i) in
  q.data.(i) <- q.data.(j);
  q.data.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before (fst q.data.(i)) (fst q.data.(parent)) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < q.len && before (fst q.data.(l)) (fst q.data.(!best)) then best := l;
  if r < q.len && before (fst q.data.(r)) (fst q.data.(!best)) then best := r;
  if !best <> i then begin
    swap q i !best;
    sift_down q !best
  end

let add q ~priority ~cost v =
  let key = { priority; cost; seq = q.next_seq } in
  q.next_seq <- q.next_seq + 1;
  if q.len = Array.length q.data then begin
    let cap = max 8 (2 * q.len) in
    let data = Array.make cap (key, v) in
    Array.blit q.data 0 data 0 q.len;
    q.data <- data
  end;
  q.data.(q.len) <- (key, v);
  q.len <- q.len + 1;
  sift_up q (q.len - 1)

let pop q =
  if q.len = 0 then None
  else begin
    let _, v = q.data.(0) in
    q.len <- q.len - 1;
    if q.len > 0 then begin
      q.data.(0) <- q.data.(q.len);
      sift_down q 0
    end;
    Some v
  end

let drain q =
  let rec go acc = match pop q with None -> List.rev acc | Some v -> go (v :: acc) in
  go []
