(** Batch-service job descriptions, terminal states, and manifest parsing.

    A job is one complete CPLA run — load (or generate) a design, route,
    initial-assign, optimise the released nets, audit — with its own
    configuration, scheduling priority, and optional wall-clock deadline.
    Jobs are pure descriptions; {!Scheduler} executes them. *)

type source =
  | File of string  (** ISPD'08 [.gr] file, read at run time *)
  | Bench of string  (** built-in suite benchmark name ({!Cpla_expt.Suite}) *)
  | Synth of Cpla_route.Synth.spec
      (** inline synthetic spec (benchmarks and tests; not expressible in
          manifests) *)

type spec = {
  id : int;  (** unique within a batch; manifests number jobs 0.. in order *)
  label : string;  (** human name for result lines *)
  source : source;
  config : Cpla.Config.t;
  priority : int;  (** higher runs earlier (default 0) *)
  deadline_s : float option;
      (** wall-clock budget measured from batch submission; expiry is
          detected at the driver's partition-solve boundaries *)
}

type metrics = {
  wirelength : int;  (** total assigned wirelength (from-scratch audit) *)
  avg_tcp : float;  (** Avg(Tcp) over the released nets *)
  max_tcp : float;  (** Max(Tcp) over the released nets *)
  via_overflow : int;
  edge_overflow : int;
  released : int;  (** released-net count *)
  wall_s : float;  (** job wall time, including load and audit *)
}

type terminal =
  | Done of metrics
      (** optimised and structurally clean under the {!Cpla_route.Verify}
          audit (capacity overflow is reported in [metrics], not failed —
          it is the paper's OV# column) *)
  | Failed of { error : string; partial : metrics option }
      (** raised, or failed the audit ([partial] carries the audited state
          when one was reachable) *)
  | Timed_out of { limit_s : float; partial : metrics option }
      (** deadline fired; [partial] measures the last consistent state *)
  | Cancelled of { partial : metrics option }  (** cancelled by the user *)

val is_ok : terminal -> bool

val status_string : terminal -> string
(** ["ok"], ["failed"], ["timed-out"] or ["cancelled"]. *)

val source_label : source -> string
  [@@cpla.allow "unused-export"]

val same_result : metrics -> metrics -> bool
(** Field-wise equality ignoring [wall_s] — the determinism contract
    between parallel and sequential execution of the same job. *)

val classify_target : string -> source
  [@@cpla.allow "unused-export"]
(** A target containing ['/'] or ending in [".gr"] is a {!File}; anything
    else is a {!Bench} name.  Existence is checked at run time, so a bad
    target fails its own job rather than the whole manifest. *)

val parse_manifest : ?default_deadline_s:float -> string -> (spec list, string) result
(** Parse a manifest: one job per line, [<file-or-bench> [key=value ...]],
    with [#] comments and blank lines skipped.  Keys: [method=sdp|ilp],
    [ratio=F], [priority=N], [deadline=S], [iters=N], [workers=N] (the
    job's own partition-level parallelism), [name=LABEL].  Jobs get ids
    0, 1, ... in manifest order.  [default_deadline_s] applies to jobs
    without an explicit [deadline=].  The first malformed line fails the
    whole parse (malformed manifests are configuration errors, unlike
    missing files which are per-job runtime failures). *)
