(** Dense two-phase primal simplex.

    Linear-programming substrate for the branch-and-bound ILP solver that
    replaces GUROBI in this reproduction.  Solves

      minimise cᵀx  subject to  a_k x (≤ | ≥ | =) b_k,  x ≥ 0.

    Dense tableau implementation with Bland's anti-cycling rule engaged
    after a run of degenerate pivots; sized for the partitioned
    layer-assignment subproblems (hundreds of rows and columns). *)

type relation = Le | Ge | Eq

type problem = {
  objective : float array;  (** cost vector [c]; length fixes the variable count *)
  rows : (float array * relation * float) array;
      (** each row is [(coefficients, relation, rhs)]; coefficient arrays must
          match the objective length *)
}

type solution = {
  x : float array;     (** primal optimum *)
  objective : float;   (** cᵀx at the optimum *)
  iterations : int;    (** total pivots over both phases *)
}

type status =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Iteration_limit

type ws
(** Reusable solve workspace: tableau storage plus per-iteration scratch.
    Grows to the largest problem it has seen; never shrinks.  Not
    domain-safe: use one workspace per domain. *)

val ws_create : unit -> ws

val solve : ?max_pivots:int -> problem -> status
(** Solve the LP.  [max_pivots] (default 20000) bounds total pivots across
    both phases; hitting it yields [Iteration_limit].
    @raise Invalid_argument on ragged coefficient rows. *)

val solve_ws : ws -> ?max_pivots:int -> ?fixes:(int * float) list -> problem -> status
(** [solve] on a reusable workspace.  [fixes] appends equality rows
    [x_i = v] (each [v >= 0]) after the problem rows — the branch-and-bound
    fixing rows, written into the tableau directly instead of being
    materialised as dense coefficient rows.  Results are independent of
    workspace reuse and identical to [solve] on a problem with equivalent
    appended rows.
    @raise Invalid_argument on ragged rows or out-of-range/negative fixes. *)

val feasible : ?tol:float -> problem -> float array -> bool
(** [feasible p x] checks [x] against every row of [p] and non-negativity,
    within [tol] (default 1e-6).  Used by tests and by branch-and-bound to
    validate incumbents. *)
