(** Dense row-major matrices.

    Sized for the partitioned subproblems of the layer-assignment solvers
    (hundreds of rows/columns), so a simple [float array array] layout is
    both fast enough and easy to audit. *)

type t = { rows : int; cols : int; data : float array array }

val create : int -> int -> t
(** Zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t

val identity : int -> t

val copy : t -> t

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val transpose : t -> t

val mul : t -> t -> t
(** Matrix product.  Raises [Invalid_argument] on dimension mismatch. *)

val mul_vec : t -> Vec.t -> Vec.t
(** [mul_vec a x] is [a x]. *)

val mul_tvec : t -> Vec.t -> Vec.t
(** [mul_tvec a x] is [aᵀ x] without materialising the transpose. *)

val frobenius : t -> float
(** Frobenius norm. *)

val symmetrize : t -> unit
(** [a <- (a + aᵀ)/2] in place; requires a square matrix. *)

val is_symmetric : ?tol:float -> t -> bool
