(** Dense float vectors.

    Thin wrappers over [float array] providing the handful of BLAS-1 style
    operations the solvers need; all operations are bounds-checked through
    the array primitives and allocate only where documented. *)

type t = float array

val create : int -> t
(** Zero vector of the given length. *)

val copy : t -> t

val dot : t -> t -> float
(** Inner product.  Raises [Invalid_argument] on length mismatch. *)

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float
(** Maximum absolute entry; 0 on the empty vector. *)

val axpy : alpha:float -> t -> t -> unit
(** [axpy ~alpha x y] sets [y <- alpha*x + y] in place. *)

val scale : float -> t -> unit
(** In-place scalar multiply. *)

val sub : t -> t -> t
(** Fresh [x - y]. *)
