(** Dense float vectors.

    Thin wrappers over [float array] providing the handful of BLAS-1 style
    operations the solvers need; all operations are bounds-checked through
    the array primitives and allocate only where documented. *)

type t = float array

val create : int -> t
(** Zero vector of the given length. *)

val copy : t -> t

val dot : t -> t -> float
(** Inner product.  Raises [Invalid_argument] on length mismatch. *)

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float
(** Maximum absolute entry; 0 on the empty vector. *)

val axpy : alpha:float -> t -> t -> unit
(** [axpy ~alpha x y] sets [y <- alpha*x + y] in place. *)

val scale : float -> t -> unit
(** In-place scalar multiply. *)

val sub : t -> t -> t
(** Fresh [x - y]. *)

(** {1 Prefix variants}

    Allocation-free counterparts operating on the first [n] cells of
    (possibly larger) workspace buffers, for the batched SoA kernels.  Each
    performs the same floating-point operations in the same order as its
    whole-array sibling, so porting a kernel onto them is bitwise
    result-preserving.  All raise [Invalid_argument] when [n] exceeds a
    buffer's capacity. *)

val dot_n : int -> t -> t -> float
(** [dot_n n x y] is the inner product of the first [n] cells. *)

val norm_inf_n : int -> t -> float
(** Maximum absolute entry among the first [n] cells; 0 when [n = 0]. *)

val axpy_n : alpha:float -> int -> t -> t -> unit
(** [axpy_n ~alpha n x y] sets [y.(i) <- alpha*x.(i) + y.(i)] for [i < n]. *)

val scale_n : float -> int -> t -> unit
(** In-place scalar multiply of the first [n] cells. *)

val copy_n : int -> t -> t -> unit
(** [copy_n n src dst] blits the first [n] cells of [src] into [dst]. *)

val fill_n : int -> t -> float -> unit
(** [fill_n n x v] sets the first [n] cells to [v]. *)

val sub_n : int -> t -> t -> t -> unit
(** [sub_n n x y dst] writes [x - y] into [dst], first [n] cells. *)
