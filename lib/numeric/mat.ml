module Float_cmp = Cpla_util.Float_cmp

type t = { rows : int; cols : int; data : float array array }

let create rows cols = { rows; cols; data = Array.make_matrix rows cols 0.0 }

let init rows cols f =
  { rows; cols; data = Array.init rows (fun i -> Array.init cols (fun j -> f i j)) }

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let copy a = { a with data = Array.map Array.copy a.data }

let get a i j = a.data.(i).(j)

let set a i j v = a.data.(i).(j) <- v

let transpose a = init a.cols a.rows (fun i j -> a.data.(j).(i))

let mul a b =
  if a.cols <> b.rows then invalid_arg "Mat.mul: dimension mismatch";
  let c = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    let ai = a.data.(i) and ci = c.data.(i) in
    for k = 0 to a.cols - 1 do
      let aik = ai.(k) in
      (* exact sparse skip: only a true zero may be dropped *)
      if Float_cmp.nonzero ~atol:0.0 aik then begin
        let bk = b.data.(k) in
        for j = 0 to b.cols - 1 do
          ci.(j) <- ci.(j) +. (aik *. bk.(j))
        done
      end
    done
  done;
  c

let mul_vec a x =
  if a.cols <> Array.length x then invalid_arg "Mat.mul_vec: dimension mismatch";
  Array.init a.rows (fun i -> Vec.dot a.data.(i) x)

let mul_tvec a x =
  if a.rows <> Array.length x then invalid_arg "Mat.mul_tvec: dimension mismatch";
  let y = Array.make a.cols 0.0 in
  for i = 0 to a.rows - 1 do
    let xi = x.(i) in
    if Float_cmp.nonzero ~atol:0.0 xi then begin
      let ai = a.data.(i) in
      for j = 0 to a.cols - 1 do
        y.(j) <- y.(j) +. (xi *. ai.(j))
      done
    end
  done;
  y

let frobenius a =
  let acc = ref 0.0 in
  for i = 0 to a.rows - 1 do
    for j = 0 to a.cols - 1 do
      acc := !acc +. (a.data.(i).(j) *. a.data.(i).(j))
    done
  done;
  sqrt !acc

let symmetrize a =
  if a.rows <> a.cols then invalid_arg "Mat.symmetrize: square matrix required";
  for i = 0 to a.rows - 1 do
    for j = i + 1 to a.cols - 1 do
      let v = 0.5 *. (a.data.(i).(j) +. a.data.(j).(i)) in
      a.data.(i).(j) <- v;
      a.data.(j).(i) <- v
    done
  done

let is_symmetric ?(tol = 1e-9) a =
  a.rows = a.cols
  &&
  let ok = ref true in
  for i = 0 to a.rows - 1 do
    for j = i + 1 to a.cols - 1 do
      if not (Float_cmp.approx_eq ~rtol:0.0 ~atol:tol a.data.(i).(j) a.data.(j).(i)) then
        ok := false
    done
  done;
  !ok
