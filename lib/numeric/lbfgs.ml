type result = {
  x : Vec.t;
  f : float;
  grad_norm : float;
  iterations : int;
  converged : bool;
}

(* ---- workspace minimiser ---------------------------------------------------

   Allocation-free L-BFGS over the first [n] cells of preallocated buffers:
   the curvature memory is a ring of reusable rows instead of a cons list,
   the evaluator writes its value and gradient into caller-provided storage
   (a float returned from an unknown closure would be boxed per call), and
   every vector op is a Vec prefix variant.  The floating-point operation
   sequence mirrors [minimize] exactly, so on identical inputs the two
   produce bitwise-equal iterates. *)

module Ws = struct
  type t = {
    memory : int;
    mutable cap : int;        (* buffer capacity; grows on demand *)
    mutable g : float array;        (* current gradient *)
    mutable gt : float array;       (* line-search trial gradient *)
    mutable d : float array;        (* search direction *)
    mutable x0 : float array;       (* iterate at line-search entry *)
    mutable g0 : float array;       (* gradient at line-search entry *)
    mutable xt : float array;       (* line-search trial point *)
    mutable s_mem : float array array;  (* ring rows: x-step *)
    mutable y_mem : float array array;  (* ring rows: gradient step *)
    rho : float array;
    alpha : float array;
    fx_out : float array;     (* evaluator writes f here (cell 0) *)
    (* results of the last [minimize] *)
    mutable f : float;
    mutable grad_norm : float;
    mutable iterations : int;
    mutable converged : bool;
  }

  let create ?(memory = 8) () =
    if memory < 1 then invalid_arg "Lbfgs.Ws.create: memory must be >= 1";
    {
      memory;
      cap = 0;
      g = [||];
      gt = [||];
      d = [||];
      x0 = [||];
      g0 = [||];
      xt = [||];
      s_mem = Array.make memory [||];
      y_mem = Array.make memory [||];
      rho = Array.make memory 0.0;
      alpha = Array.make memory 0.0;
      fx_out = Array.make 1 0.0;
      f = 0.0;
      grad_norm = 0.0;
      iterations = 0;
      converged = false;
    }

  let reserve ws n =
    if n > ws.cap then
      begin
        (* amortised growth: the only sanctioned allocation under the
           zero-alloc entry points, doubling so steady-state solves never
           re-enter this branch *)
        let cap = max n (max 16 (2 * ws.cap)) in
        ws.g <- Array.make cap 0.0;
        ws.gt <- Array.make cap 0.0;
        ws.d <- Array.make cap 0.0;
        ws.x0 <- Array.make cap 0.0;
        ws.g0 <- Array.make cap 0.0;
        ws.xt <- Array.make cap 0.0;
        for i = 0 to ws.memory - 1 do
          ws.s_mem.(i) <- Array.make cap 0.0;
          ws.y_mem.(i) <- Array.make cap 0.0
        done;
        ws.cap <- cap
      end [@cpla.allow "alloc-in-kernel"]

  (* Ring index of the [k]-th newest pair when the newest lives at
     [head - 1]; hoisted to top level so [direction_ws] closes over
     nothing. *)
  let ring_slot memory head k = (head - 1 - k + (2 * memory)) mod memory
  [@@cpla.zero_alloc]

  (* Two-loop recursion into [ws.d]; the ring holds [count] pairs, newest at
     slot [head - 1].  Identical arithmetic to [direction] below: newest
     pair first, gamma scaling from the newest pair, reverse pass oldest
     first, final negation. *)
  let direction_ws ws ~n ~head ~count =
    Vec.copy_n n ws.g ws.d;
    for k = 0 to count - 1 do
      let i = ring_slot ws.memory head k in
      let a = ws.rho.(i) *. Vec.dot_n n ws.s_mem.(i) ws.d in
      ws.alpha.(i) <- a;
      Vec.axpy_n ~alpha:(-.a) n ws.y_mem.(i) ws.d
    done;
    if count > 0 then begin
      let i0 = ring_slot ws.memory head 0 in
      let yy = Vec.dot_n n ws.y_mem.(i0) ws.y_mem.(i0) in
      if yy > 0.0 then Vec.scale_n (Vec.dot_n n ws.s_mem.(i0) ws.y_mem.(i0) /. yy) n ws.d
    end;
    for k = count - 1 downto 0 do
      let i = ring_slot ws.memory head k in
      let beta = ws.rho.(i) *. Vec.dot_n n ws.y_mem.(i) ws.d in
      Vec.axpy_n ~alpha:(ws.alpha.(i) -. beta) n ws.s_mem.(i) ws.d
    done;
    Vec.scale_n (-1.0) n ws.d
  [@@cpla.zero_alloc]

  (* [eval x grad_out] must write f(x) into [ws.fx_out.(0)] and ∇f(x) into
     [grad_out] (first [n] cells); [x] is updated in place. *)
  let minimize ws ~n ?(max_iter = 500) ?(grad_tol = 1e-6) ~eval x =
    if n > Array.length x then invalid_arg "Lbfgs.Ws.minimize: x shorter than n";
    reserve ws n;
    eval x ws.g;
    let fx = ref ws.fx_out.(0) in
    let head = ref 0 and count = ref 0 in
    let iter = ref 0 in
    let converged = ref (Vec.norm_inf_n n ws.g <= grad_tol) in
    while (not !converged) && !iter < max_iter do
      direction_ws ws ~n ~head:!head ~count:!count;
      let slope = Vec.dot_n n ws.d ws.g in
      let slope =
        if slope < 0.0 then slope
        else begin
          (* non-descent direction from stale curvature: fall back to -g *)
          Vec.copy_n n ws.g ws.d;
          Vec.scale_n (-1.0) n ws.d;
          -.Vec.dot_n n ws.g ws.g
        end
      in
      let f0 = !fx in
      Vec.copy_n n x ws.x0;
      Vec.copy_n n ws.g ws.g0;
      let step = ref 1.0 and accepted = ref false and tries = ref 0 in
      while (not !accepted) && !tries < 30 do
        Vec.copy_n n ws.x0 ws.xt;
        Vec.axpy_n ~alpha:!step n ws.d ws.xt;
        eval ws.xt ws.gt;
        let value = ws.fx_out.(0) in
        if value <= f0 +. (1e-4 *. !step *. slope) then begin
          Vec.copy_n n ws.xt x;
          fx := value;
          Vec.copy_n n ws.gt ws.g;
          accepted := true
        end
        else begin
          step := !step *. 0.5;
          incr tries
        end
      done;
      if not !accepted then converged := true (* line search stalled: local flat *)
      else begin
        let i = !head in
        Vec.sub_n n x ws.x0 ws.s_mem.(i);
        Vec.sub_n n ws.g ws.g0 ws.y_mem.(i);
        let sy = Vec.dot_n n ws.s_mem.(i) ws.y_mem.(i) in
        if sy > 1e-12 then begin
          ws.rho.(i) <- 1.0 /. sy;
          head := (!head + 1) mod ws.memory;
          count := min (!count + 1) ws.memory
        end;
        if Vec.norm_inf_n n ws.g <= grad_tol then converged := true
      end;
      incr iter
    done;
    ws.f <- !fx;
    ws.grad_norm <- Vec.norm_inf_n n ws.g;
    ws.iterations <- !iter;
    ws.converged <- !converged
  [@@cpla.zero_alloc]

  let fx_out ws = ws.fx_out
  let f ws = ws.f
  let grad_norm ws = ws.grad_norm
  let iterations ws = ws.iterations
  let converged ws = ws.converged
end

(* Two-loop recursion computing the search direction -H·g from the stored
   (s, y) curvature pairs; [pairs] is newest-first. *)
let direction pairs g =
  let q = Vec.copy g in
  let alphas =
    List.map
      (fun (s, y, rho) ->
        let alpha = rho *. Vec.dot s q in
        Vec.axpy ~alpha:(-.alpha) y q;
        (s, y, rho, alpha))
      pairs
  in
  (match pairs with
  | [] -> ()
  | (s, y, _) :: _ ->
      let yy = Vec.dot y y in
      if yy > 0.0 then Vec.scale (Vec.dot s y /. yy) q);
  List.iter
    (fun (s, y, rho, alpha) ->
      let beta = rho *. Vec.dot y q in
      Vec.axpy ~alpha:(alpha -. beta) s q)
    (List.rev alphas);
  Vec.scale (-1.0) q;
  q

let minimize ?(memory = 8) ?(max_iter = 500) ?(grad_tol = 1e-6) ~f x0 =
  let x = Vec.copy x0 in
  let fx = ref 0.0 and g = ref (Vec.create (Array.length x0)) in
  let eval v =
    let value, grad = f v in
    fx := value;
    g := grad
  in
  eval x;
  let pairs = ref [] in
  let iter = ref 0 in
  let converged = ref (Vec.norm_inf !g <= grad_tol) in
  while (not !converged) && !iter < max_iter do
    let d = direction !pairs !g in
    let slope = Vec.dot d !g in
    (* Guard against a non-descent direction from stale curvature pairs. *)
    let d, slope =
      if slope < 0.0 then (d, slope)
      else begin
        let d = Vec.copy !g in
        Vec.scale (-1.0) d;
        (d, -.Vec.dot !g !g)
      end
    in
    let f0 = !fx and x0' = Vec.copy x and g0 = Vec.copy !g in
    (* Armijo backtracking line search. *)
    let step = ref 1.0 and accepted = ref false and tries = ref 0 in
    while (not !accepted) && !tries < 30 do
      let xt = Vec.copy x0' in
      Vec.axpy ~alpha:!step d xt;
      let value, grad = f xt in
      if value <= f0 +. (1e-4 *. !step *. slope) then begin
        Array.blit xt 0 x 0 (Array.length x);
        fx := value;
        g := grad;
        accepted := true
      end
      else begin
        step := !step *. 0.5;
        incr tries
      end
    done;
    if not !accepted then converged := true (* line search stalled: local flat *)
    else begin
      let s = Vec.sub x x0' in
      let y = Vec.sub !g g0 in
      let sy = Vec.dot s y in
      if sy > 1e-12 then begin
        let pair = (s, y, 1.0 /. sy) in
        pairs := pair :: (if List.length !pairs >= memory then List.filteri (fun i _ -> i < memory - 1) !pairs else !pairs)
      end;
      if Vec.norm_inf !g <= grad_tol then converged := true
    end;
    incr iter
  done;
  { x; f = !fx; grad_norm = Vec.norm_inf !g; iterations = !iter; converged = !converged }
