(** Limited-memory BFGS minimisation.

    The inner solver of the Burer–Monteiro SDP engine: minimises a smooth
    unconstrained objective given a value-and-gradient oracle.  Two-loop
    recursion with Armijo backtracking; deterministic, allocation-light. *)

type result = {
  x : Vec.t;          (** minimiser found *)
  f : float;          (** objective at [x] *)
  grad_norm : float;  (** infinity norm of the gradient at [x] *)
  iterations : int;   (** outer iterations performed *)
  converged : bool;   (** gradient tolerance reached before iteration cap *)
}

val minimize :
  ?memory:int ->
  ?max_iter:int ->
  ?grad_tol:float ->
  f:(Vec.t -> float * Vec.t) ->
  Vec.t ->
  result
(** [minimize ~f x0] minimises [f] starting at [x0].  [f x] must return the
    objective value and a freshly allocated gradient.  [memory] is the number
    of curvature pairs retained (default 8); [grad_tol] is the stopping
    threshold on the gradient infinity norm (default 1e-6); [max_iter]
    defaults to 500.  [x0] is not modified. *)

(** Workspace variant for the batched SoA kernels: all scratch state — the
    curvature-pair ring, line-search buffers, the gradient — lives in a
    reusable workspace, and the evaluator writes into caller storage, so a
    solve allocates nothing on the hot path.  Performs the same
    floating-point operations in the same order as [minimize]: identical
    inputs give bitwise-identical iterates. *)
module Ws : sig
  type t

  val create : ?memory:int -> unit -> t
  (** Empty workspace; buffers grow on first use.  [memory] as in
      [minimize] (default 8). *)

  val reserve : t -> int -> unit
  (** Pre-size every buffer for problems of dimension <= n. *)

  val minimize :
    t ->
    n:int ->
    ?max_iter:int ->
    ?grad_tol:float ->
    eval:(float array -> float array -> unit) ->
    float array ->
    unit
  (** [minimize ws ~n ~eval x] minimises over the first [n] cells of [x],
      updating [x] in place.  [eval x grad_out] must write the objective
      into [fx_out ws] (cell 0) and the gradient into [grad_out.(0..n-1)].
      Results are left in the accessors below. *)

  val fx_out : t -> float array
  (** The 1-cell buffer the evaluator writes the objective value into. *)

  (** Scalar results of the last [minimize] (the SDP kernel tracks its own
      convergence state; these are extension points for other callers). *)

  val f : t -> float
    [@@cpla.allow "unused-export"]

  val grad_norm : t -> float
    [@@cpla.allow "unused-export"]

  val iterations : t -> int
    [@@cpla.allow "unused-export"]

  val converged : t -> bool
    [@@cpla.allow "unused-export"]
end
