type t = float array

let create n = Array.make n 0.0

let copy = Array.copy

let check_len a b name =
  if Array.length a <> Array.length b then invalid_arg ("Vec." ^ name ^ ": length mismatch")

let dot x y =
  check_len x y "dot";
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let norm2 x = sqrt (dot x x)

let norm_inf x = Array.fold_left (fun a v -> Float.max a (Float.abs v)) 0.0 x

let axpy ~alpha x y =
  check_len x y "axpy";
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (alpha *. x.(i))
  done

let scale alpha x =
  for i = 0 to Array.length x - 1 do
    x.(i) <- alpha *. x.(i)
  done

let sub x y =
  check_len x y "sub";
  Array.init (Array.length x) (fun i -> x.(i) -. y.(i))

