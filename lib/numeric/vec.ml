type t = float array

let create n = Array.make n 0.0

let copy = Array.copy

let check_len a b name =
  if Array.length a <> Array.length b then invalid_arg ("Vec." ^ name ^ ": length mismatch")

let dot x y =
  check_len x y "dot";
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let norm2 x = sqrt (dot x x)

let norm_inf x = Array.fold_left (fun a v -> Float.max a (Float.abs v)) 0.0 x

let axpy ~alpha x y =
  check_len x y "axpy";
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (alpha *. x.(i))
  done

let scale alpha x =
  for i = 0 to Array.length x - 1 do
    x.(i) <- alpha *. x.(i)
  done

let sub x y =
  check_len x y "sub";
  Array.init (Array.length x) (fun i -> x.(i) -. y.(i))

(* ---- prefix (in-place) variants -------------------------------------------

   The batched SoA kernels operate on the first [n] cells of preallocated
   workspace buffers whose capacity may exceed the live problem, so every
   operation below takes the live length explicitly.  Arithmetic order is
   identical to the whole-array variants above: a kernel ported onto these
   produces bitwise-equal floats. *)

let check_cap a n name =
  if n < 0 || n > Array.length a then invalid_arg ("Vec." ^ name ^ ": prefix out of range")

let dot_n n x y =
  check_cap x n "dot_n";
  check_cap y n "dot_n";
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc
[@@cpla.zero_alloc]

let norm_inf_n n x =
  check_cap x n "norm_inf_n";
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := Float.max !acc (Float.abs x.(i))
  done;
  !acc
[@@cpla.zero_alloc]

let axpy_n ~alpha n x y =
  check_cap x n "axpy_n";
  check_cap y n "axpy_n";
  for i = 0 to n - 1 do
    y.(i) <- y.(i) +. (alpha *. x.(i))
  done
[@@cpla.zero_alloc]

let scale_n alpha n x =
  check_cap x n "scale_n";
  for i = 0 to n - 1 do
    x.(i) <- alpha *. x.(i)
  done
[@@cpla.zero_alloc]

let copy_n n src dst =
  check_cap src n "copy_n";
  check_cap dst n "copy_n";
  Array.blit src 0 dst 0 n
[@@cpla.zero_alloc]

let fill_n n x v =
  check_cap x n "fill_n";
  Array.fill x 0 n v
[@@cpla.zero_alloc]

let sub_n n x y dst =
  check_cap x n "sub_n";
  check_cap y n "sub_n";
  check_cap dst n "sub_n";
  for i = 0 to n - 1 do
    dst.(i) <- x.(i) -. y.(i)
  done
[@@cpla.zero_alloc]

