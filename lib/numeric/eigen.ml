module Float_cmp = Cpla_util.Float_cmp

let off_diagonal_norm a =
  let n = a.Mat.rows in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      acc := !acc +. (2.0 *. Mat.get a i j *. Mat.get a i j)
    done
  done;
  sqrt !acc

(* One Jacobi rotation zeroing a.(p).(q), accumulating the rotation in v. *)
let rotate a v p q =
  let apq = Mat.get a p q in
  (* a rotation is only needed (or defined) for a truly nonzero pivot *)
  if Float_cmp.nonzero ~atol:0.0 apq then begin
    let app = Mat.get a p p and aqq = Mat.get a q q in
    let theta = (aqq -. app) /. (2.0 *. apq) in
    let t =
      let sign = if theta >= 0.0 then 1.0 else -1.0 in
      sign /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.0))
    in
    let c = 1.0 /. sqrt ((t *. t) +. 1.0) in
    let s = t *. c in
    let n = a.Mat.rows in
    for k = 0 to n - 1 do
      let akp = Mat.get a k p and akq = Mat.get a k q in
      Mat.set a k p ((c *. akp) -. (s *. akq));
      Mat.set a k q ((s *. akp) +. (c *. akq))
    done;
    for k = 0 to n - 1 do
      let apk = Mat.get a p k and aqk = Mat.get a q k in
      Mat.set a p k ((c *. apk) -. (s *. aqk));
      Mat.set a q k ((s *. apk) +. (c *. aqk))
    done;
    for k = 0 to n - 1 do
      let vkp = Mat.get v k p and vkq = Mat.get v k q in
      Mat.set v k p ((c *. vkp) -. (s *. vkq));
      Mat.set v k q ((s *. vkp) +. (c *. vkq))
    done
  end

let decompose ?(max_sweeps = 64) ?(tol = 1e-11) a0 =
  if a0.Mat.rows <> a0.Mat.cols then invalid_arg "Eigen.decompose: square matrix required";
  let n = a0.Mat.rows in
  let a = Mat.copy a0 in
  Mat.symmetrize a;
  let v = Mat.identity n in
  let scale = Float.max 1.0 (Mat.frobenius a) in
  let sweep = ref 0 in
  while !sweep < max_sweeps && off_diagonal_norm a > tol *. scale do
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        rotate a v p q
      done
    done;
    incr sweep
  done;
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare (Mat.get a i i) (Mat.get a j j)) order;
  let w = Array.map (fun i -> Mat.get a i i) order in
  let vs = Mat.init n n (fun i j -> Mat.get v i order.(j)) in
  (w, vs)

let min_eigenvalue a =
  let w, _ = decompose a in
  if Array.length w = 0 then 0.0 else w.(0)

let project_psd a =
  let n = a.Mat.rows in
  let w, v = decompose a in
  let clipped = Array.map (fun x -> Float.max x 0.0) w in
  (* v diag(clipped) vᵀ *)
  Mat.init n n (fun i j ->
      let acc = ref 0.0 in
      for k = 0 to n - 1 do
        acc := !acc +. (Mat.get v i k *. clipped.(k) *. Mat.get v j k)
      done;
      !acc)
