type relation = Le | Ge | Eq

type problem = {
  objective : float array;
  rows : (float array * relation * float) array;
}

type solution = { x : float array; objective : float; iterations : int }

type status = Optimal of solution | Infeasible | Unbounded | Iteration_limit

let eps = 1e-9

(* The tableau keeps B⁻¹A in [t] (m rows, [ncols] columns) with the rhs in
   [rhs]; [basis.(i)] is the column basic in row i.  Columns are laid out as
   structural variables, then slack/surplus, then artificials.

   All row/column storage lives in a reusable workspace whose capacity may
   exceed the live tableau: every loop is bounded by [m]/[ncols], never by
   array length, so oversized buffers are invisible to the arithmetic. *)
type tableau = {
  m : int;
  ncols : int;
  t : float array array;
  rhs : float array;
  basis : int array;
  artificial_from : int; (* columns >= this are artificial *)
}

(* Workspace: tableau storage plus the per-iteration scratch (reduced
   costs, basis costs, phase cost vectors, blocked flags) that a fresh
   solve used to allocate per call — and the reduced-cost pass used to
   allocate per *pivot*.  One workspace per domain; solves on it are
   bitwise-identical to solves on a fresh one. *)
type ws = {
  mutable cap_m : int;
  mutable cap_cols : int;
  mutable wt : float array array;
  mutable wrhs : float array;
  mutable wbasis : int array;
  mutable c1 : float array;      (* phase-1 cost *)
  mutable c2 : float array;      (* phase-2 cost *)
  mutable blocked : bool array;
  mutable rc : float array;      (* reduced-cost scratch *)
  mutable cb : float array;      (* basis-cost scratch *)
}

let ws_create () =
  {
    cap_m = 0;
    cap_cols = 0;
    wt = [||];
    wrhs = [||];
    wbasis = [||];
    c1 = [||];
    c2 = [||];
    blocked = [||];
    rc = [||];
    cb = [||];
  }

let ws_reserve ws ~m ~ncols =
  if ncols > ws.cap_cols then begin
    let cap = max ncols (max 32 (2 * ws.cap_cols)) in
    (* existing rows keep their (smaller) width until re-made below *)
    ws.c1 <- Array.make cap 0.0;
    ws.c2 <- Array.make cap 0.0;
    ws.blocked <- Array.make cap false;
    ws.rc <- Array.make cap 0.0;
    ws.cap_cols <- cap;
    (* widen already-allocated rows so every live row has full capacity *)
    Array.iteri (fun i _ -> ws.wt.(i) <- Array.make cap 0.0) ws.wt
  end;
  if m > ws.cap_m then begin
    let cap = max m (max 16 (2 * ws.cap_m)) in
    let old = ws.wt in
    ws.wt <- Array.init cap (fun i -> if i < Array.length old then old.(i) else Array.make ws.cap_cols 0.0);
    ws.wrhs <- Array.make cap 0.0;
    ws.wbasis <- Array.make cap 0;
    ws.cb <- Array.make cap 0.0;
    ws.cap_m <- cap
  end

(* Build the tableau for [problem] plus equality rows [x_i = v] for each
   [(i, v)] in [fixes] (appended after the problem rows, in list order —
   the branch-and-bound fixing rows, written directly instead of being
   materialised as dense coefficient rows). *)
let build_into ws (problem : problem) ~(fixes : (int * float) list) =
  let n = Array.length problem.objective in
  Array.iter
    (fun (coeffs, _, _) ->
      if Array.length coeffs <> n then invalid_arg "Simplex.solve: ragged row")
    problem.rows;
  List.iter
    (fun (i, v) ->
      if i < 0 || i >= n then invalid_arg "Simplex.solve: fix out of range";
      if v < 0.0 then invalid_arg "Simplex.solve: fix must be non-negative")
    fixes;
  let nfix = List.length fixes in
  let m = Array.length problem.rows + nfix in
  let n_slack =
    Array.fold_left
      (fun a (_, rel, _) -> match rel with Eq -> a | Le | Ge -> a + 1)
      0 problem.rows
  in
  let n_art =
    Array.fold_left
      (fun a (_, rel, _) -> match rel with Le -> a | Ge | Eq -> a + 1)
      0 problem.rows
    + nfix
  in
  let ncols = n + n_slack + n_art in
  ws_reserve ws ~m ~ncols;
  let t = ws.wt and rhs = ws.wrhs and basis = ws.wbasis in
  for i = 0 to m - 1 do
    Array.fill t.(i) 0 ncols 0.0
  done;
  let slack = ref n and art = ref (n + n_slack) in
  Array.iteri
    (fun i (coeffs, rel, b) ->
      (* normalise to non-negative rhs *)
      let rel =
        if b < 0.0 then begin
          for j = 0 to n - 1 do
            t.(i).(j) <- -.coeffs.(j)
          done;
          rhs.(i) <- -.b;
          match rel with Le -> Ge | Ge -> Le | Eq -> Eq
        end
        else begin
          Array.blit coeffs 0 t.(i) 0 n;
          rhs.(i) <- b;
          rel
        end
      in
      match rel with
      | Le ->
          t.(i).(!slack) <- 1.0;
          basis.(i) <- !slack;
          incr slack
      | Ge ->
          t.(i).(!slack) <- -1.0;
          incr slack;
          t.(i).(!art) <- 1.0;
          basis.(i) <- !art;
          incr art
      | Eq ->
          t.(i).(!art) <- 1.0;
          basis.(i) <- !art;
          incr art)
    problem.rows;
  List.iteri
    (fun k (col, v) ->
      let i = Array.length problem.rows + k in
      t.(i).(col) <- 1.0;
      rhs.(i) <- v;
      t.(i).(!art) <- 1.0;
      basis.(i) <- !art;
      incr art)
    fixes;
  { m; ncols; t; rhs; basis; artificial_from = n + n_slack }

let pivot tab ~row ~col =
  let p = tab.t.(row).(col) in
  let trow = tab.t.(row) in
  let inv = 1.0 /. p in
  for j = 0 to tab.ncols - 1 do
    trow.(j) <- trow.(j) *. inv
  done;
  tab.rhs.(row) <- tab.rhs.(row) *. inv;
  for i = 0 to tab.m - 1 do
    if i <> row then begin
      let factor = tab.t.(i).(col) in
      if Float.abs factor > 0.0 then begin
        let ti = tab.t.(i) in
        for j = 0 to tab.ncols - 1 do
          ti.(j) <- ti.(j) -. (factor *. trow.(j))
        done;
        tab.rhs.(i) <- tab.rhs.(i) -. (factor *. tab.rhs.(row))
      end
    end
  done;
  tab.basis.(row) <- col
[@@cpla.zero_alloc]

(* Reduced costs for cost vector [c] (first ncols cells) under the current
   basis, into the workspace scratch: c̄_j = c_j − Σ_i c_{B(i)} · t_{ij}. *)
let reduced_costs ws tab c =
  let cb = ws.cb and rc = ws.rc in
  for i = 0 to tab.m - 1 do
    cb.(i) <- c.(tab.basis.(i))
  done;
  Array.blit c 0 rc 0 tab.ncols;
  for i = 0 to tab.m - 1 do
    let cbi = cb.(i) in
    if Float.abs cbi > 0.0 then begin
      let ti = tab.t.(i) in
      for j = 0 to tab.ncols - 1 do
        rc.(j) <- rc.(j) -. (cbi *. ti.(j))
      done
    end
  done;
  rc
[@@cpla.zero_alloc]

let objective_value tab c =
  let acc = ref 0.0 in
  for i = 0 to tab.m - 1 do
    acc := !acc +. (c.(tab.basis.(i)) *. tab.rhs.(i))
  done;
  !acc

(* Run simplex iterations on cost vector [c]; [blocked.(j)] columns may not
   enter the basis.  Returns [`Optimal], [`Unbounded] or [`Limit]. *)
let iterate ws tab c blocked pivots max_pivots =
  let degenerate_run = ref 0 in
  (* constant polymorphic variants are immediate, so flipping the state
     never allocates (an option would box [Some] per transition) *)
  let result = ref `Running in
  while !result = `Running do
    if !pivots >= max_pivots then result := `Limit
    else begin
      let rc = reduced_costs ws tab c in
      (* Entering column: Dantzig (most negative) normally, Bland (first
         negative) once degeneracy persists, to guarantee termination. *)
      let enter = ref (-1) in
      if !degenerate_run > 2 * tab.m then begin
        (try
           for j = 0 to tab.ncols - 1 do
             if (not blocked.(j)) && rc.(j) < -.eps then begin
               enter := j;
               raise Exit
             end
           done
         with Exit -> ())
      end
      else begin
        let best = ref (-.eps) in
        for j = 0 to tab.ncols - 1 do
          if (not blocked.(j)) && rc.(j) < !best then begin
            best := rc.(j);
            enter := j
          end
        done
      end;
      if !enter < 0 then result := `Optimal
      else begin
        let col = !enter in
        let leave = ref (-1) and best_ratio = ref infinity in
        for i = 0 to tab.m - 1 do
          let a = tab.t.(i).(col) in
          if a > eps then begin
            let ratio = tab.rhs.(i) /. a in
            if
              ratio < !best_ratio -. eps
              || (ratio < !best_ratio +. eps && (!leave < 0 || tab.basis.(i) < tab.basis.(!leave)))
            then begin
              best_ratio := ratio;
              leave := i
            end
          end
        done;
        if !leave < 0 then result := `Unbounded
        else begin
          if !best_ratio < eps then incr degenerate_run else degenerate_run := 0;
          pivot tab ~row:!leave ~col;
          incr pivots
        end
      end
    end
  done;
  match !result with
  | `Running -> assert false
  | (`Optimal | `Unbounded | `Limit) as r -> r
[@@cpla.zero_alloc]

let extract tab n =
  let x = Array.make n 0.0 in
  for i = 0 to tab.m - 1 do
    if tab.basis.(i) < n then x.(tab.basis.(i)) <- tab.rhs.(i)
  done;
  x

let solve_ws ws ?(max_pivots = 20000) ?(fixes = []) (problem : problem) =
  let n = Array.length problem.objective in
  let tab = build_into ws problem ~fixes in
  let pivots = ref 0 in
  let blocked = ws.blocked in
  Array.fill blocked 0 tab.ncols false;
  (* Phase 1: minimise the sum of artificials. *)
  let phase1_cost = ws.c1 in
  Array.fill phase1_cost 0 tab.ncols 0.0;
  for j = tab.artificial_from to tab.ncols - 1 do
    phase1_cost.(j) <- 1.0
  done;
  let has_artificials = tab.artificial_from < tab.ncols in
  let phase1 =
    if has_artificials then iterate ws tab phase1_cost blocked pivots max_pivots
    else `Optimal
  in
  match phase1 with
  | `Limit -> Iteration_limit
  | `Unbounded -> Infeasible (* phase-1 objective is bounded below by 0 *)
  | `Optimal ->
      if has_artificials && objective_value tab phase1_cost > 1e-6 then Infeasible
      else begin
        (* Drive any artificial still basic (at zero) out of the basis. *)
        for i = 0 to tab.m - 1 do
          if tab.basis.(i) >= tab.artificial_from then begin
            let found = ref (-1) in
            (try
               for j = 0 to tab.artificial_from - 1 do
                 if Float.abs tab.t.(i).(j) > eps then begin
                   found := j;
                   raise Exit
                 end
               done
             with Exit -> ());
            if !found >= 0 then pivot tab ~row:i ~col:!found
            (* else: redundant row; the artificial stays basic at zero and is
               blocked from moving, which is harmless. *)
          end
        done;
        for j = tab.artificial_from to tab.ncols - 1 do
          blocked.(j) <- true
        done;
        let phase2_cost = ws.c2 in
        Array.fill phase2_cost 0 tab.ncols 0.0;
        Array.blit problem.objective 0 phase2_cost 0 n;
        match iterate ws tab phase2_cost blocked pivots max_pivots with
        | `Limit -> Iteration_limit
        | `Unbounded -> Unbounded
        | `Optimal ->
            let x = extract tab n in
            Optimal { x; objective = objective_value tab phase2_cost; iterations = !pivots }
      end

let solve ?max_pivots (problem : problem) = solve_ws (ws_create ()) ?max_pivots problem

let feasible ?(tol = 1e-6) (problem : problem) x =
  Array.length x = Array.length problem.objective
  && Array.for_all (fun v -> v >= -.tol) x
  && Array.for_all
       (fun (coeffs, rel, b) ->
         let lhs = ref 0.0 in
         Array.iteri (fun i c -> lhs := !lhs +. (c *. x.(i))) coeffs;
         match rel with
         | Le -> !lhs <= b +. tol
         | Ge -> !lhs >= b -. tol
         | Eq -> Float.abs (!lhs -. b) <= tol)
       problem.rows
