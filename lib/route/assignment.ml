open Cpla_grid

type per_net = {
  tree : Stree.t option;
  segs : Segment.t array;
  node_to_seg : int array;
  layers : int array; (* per segment; -1 = unassigned *)
  pins_at_node : int list array; (* per tree node: pin layers at that tile *)
  children : int array array; (* per tree node: child node indices *)
  sink_nodes : (int * int) array; (* per non-source pin: (tree node, pin layer) *)
  mutable generation : int; (* bumped on every layer mutation of this net *)
}

type t = {
  graph : Graph.t;
  nets : Net.t array;
  data : per_net array;
}

let build_per_net net tree_opt =
  match tree_opt with
  | None ->
      {
        tree = None;
        segs = [||];
        node_to_seg = [||];
        layers = [||];
        pins_at_node = [||];
        children = [||];
        sink_nodes = [||];
        generation = 0;
      }
  | Some tree ->
      let segs, node_to_seg = Segment.extract ~net_id:net.Net.id tree in
      let pins_at_node = Array.make (Stree.num_nodes tree) [] in
      Array.iter
        (fun p ->
          match Stree.find_node tree (p.Net.px, p.Net.py) with
          | Some i -> pins_at_node.(i) <- p.Net.pl :: pins_at_node.(i)
          | None ->
              (* Pin tiles are kept as nodes by the router's compress step;
                 a miss means the tree does not belong to this net. *)
              invalid_arg "Assignment.create: pin tile is not a tree node")
        net.Net.pins;
      let children = Stree.children tree in
      let src = Net.source net in
      let sink_nodes =
        Array.to_list net.Net.pins
        |> List.filter_map (fun p ->
               if p.Net.px = src.Net.px && p.Net.py = src.Net.py then None
               else
                 Stree.find_node tree (p.Net.px, p.Net.py)
                 |> Option.map (fun i -> (i, p.Net.pl)))
        |> Array.of_list
      in
      {
        tree = Some tree;
        segs;
        node_to_seg;
        layers = Array.make (Array.length segs) (-1);
        pins_at_node;
        children;
        sink_nodes;
        generation = 0;
      }

let create ~graph ~nets ~trees =
  if Array.length nets <> Array.length trees then
    invalid_arg "Assignment.create: nets/trees length mismatch";
  { graph; nets; data = Array.map2 build_per_net nets trees }

let graph t = t.graph
let tech t = Graph.tech t.graph
let num_nets t = Array.length t.nets
let net t i = t.nets.(i)
let tree t i = t.data.(i).tree
let segments t i = t.data.(i).segs
let node_to_seg t i = t.data.(i).node_to_seg
let children t i = t.data.(i).children
let sink_nodes t i = t.data.(i).sink_nodes
let generation t i = t.data.(i).generation

let layer t ~net ~seg = t.data.(net).layers.(seg)

let pin_layers_at t ~net ~node = t.data.(net).pins_at_node.(node)

(* Tree edges incident to [node]: the node's own parent edge plus every
   child edge. *)
let incident_segs d node =
  let own = if d.node_to_seg.(node) >= 0 then [ d.node_to_seg.(node) ] else [] in
  own @ Array.to_list (Array.map (fun child -> d.node_to_seg.(child)) d.children.(node))

let node_span_of d node =
  let seg_layers =
    incident_segs d node
    |> List.filter_map (fun s -> if d.layers.(s) >= 0 then Some d.layers.(s) else None)
  in
  if seg_layers = [] then None
  else begin
    let all = seg_layers @ d.pins_at_node.(node) in
    let lo = List.fold_left min max_int all and hi = List.fold_left max min_int all in
    if lo = hi then None else Some (lo, hi)
  end

let node_span t ~net ~node = node_span_of t.data.(net) node

let apply_span t d node delta =
  match (node_span_of d node, d.tree) with
  | None, _ | _, None -> ()
  | Some (lo, hi), Some tr ->
      let x, y = Stree.node tr node in
      for crossing = lo to hi - 1 do
        Graph.add_via_usage t.graph ~x ~y ~crossing delta
      done

let apply_wires t d seg_idx delta =
  let l = d.layers.(seg_idx) in
  if l >= 0 then
    Array.iter (fun e -> Graph.add_usage t.graph e ~layer:l delta) d.segs.(seg_idx).Segment.edges

let set_layer t ~net ~seg ~layer =
  let d = t.data.(net) in
  let s = d.segs.(seg) in
  if Tech.layer_dir (tech t) layer <> s.Segment.dir then
    invalid_arg "Assignment.set_layer: direction mismatch";
  if d.layers.(seg) <> layer then begin
    let tr = match d.tree with Some tr -> tr | None -> assert false in
    let nodes = [ s.Segment.node; tr.Stree.parent.(s.Segment.node) ] in
    List.iter (fun n -> apply_span t d n (-1)) nodes;
    apply_wires t d seg (-1);
    d.layers.(seg) <- layer;
    d.generation <- d.generation + 1;
    apply_wires t d seg 1;
    List.iter (fun n -> apply_span t d n 1) nodes
  end

let unassign t ~net ~seg =
  let d = t.data.(net) in
  if d.layers.(seg) >= 0 then begin
    let s = d.segs.(seg) in
    let tr = match d.tree with Some tr -> tr | None -> assert false in
    let nodes = [ s.Segment.node; tr.Stree.parent.(s.Segment.node) ] in
    List.iter (fun n -> apply_span t d n (-1)) nodes;
    apply_wires t d seg (-1);
    d.layers.(seg) <- -1;
    d.generation <- d.generation + 1;
    List.iter (fun n -> apply_span t d n 1) nodes
  end

let unassign_net t i =
  Array.iteri (fun seg _ -> unassign t ~net:i ~seg) t.data.(i).layers

let fully_assigned t =
  Array.for_all (fun d -> Array.for_all (fun l -> l >= 0) d.layers) t.data

let iter_assigned t f =
  Array.iteri
    (fun net d -> Array.iteri (fun seg layer -> if layer >= 0 then f ~net ~seg ~layer) d.layers)
    t.data

let check_usage t =
  let g = t.graph in
  let nl = Graph.num_layers g in
  (* Recompute expected edge usage. *)
  let expected_edge = Hashtbl.create 1024 in
  let bump_edge e l =
    let key = (e.Graph.dir = Tech.Horizontal, e.Graph.x, e.Graph.y, l) in
    Hashtbl.replace expected_edge key (1 + Option.value ~default:0 (Hashtbl.find_opt expected_edge key))
  in
  let expected_via = Hashtbl.create 1024 in
  let bump_via x y c =
    let key = (x, y, c) in
    Hashtbl.replace expected_via key (1 + Option.value ~default:0 (Hashtbl.find_opt expected_via key))
  in
  Array.iter
    (fun d ->
      Array.iteri
        (fun i seg ->
          let l = d.layers.(i) in
          if l >= 0 then Array.iter (fun e -> bump_edge e l) seg.Segment.edges)
        d.segs;
      match d.tree with
      | None -> ()
      | Some tr ->
          for node = 0 to Stree.num_nodes tr - 1 do
            match node_span_of d node with
            | None -> ()
            | Some (lo, hi) ->
                let x, y = Stree.node tr node in
                for c = lo to hi - 1 do
                  bump_via x y c
                done
          done)
    t.data;
  let err = ref None in
  Graph.iter_edges g (fun e ->
      List.iter
        (fun l ->
          let key = (e.Graph.dir = Tech.Horizontal, e.Graph.x, e.Graph.y, l) in
          let want = Option.value ~default:0 (Hashtbl.find_opt expected_edge key) in
          let got = Graph.usage g e ~layer:l in
          if want <> got && !err = None then
            err :=
              Some
                (Printf.sprintf "edge (%d,%d) layer %d: expected usage %d, graph says %d"
                   e.Graph.x e.Graph.y l want got))
        (Graph.edge_layers g e));
  for x = 0 to Graph.width g - 1 do
    for y = 0 to Graph.height g - 1 do
      for c = 0 to nl - 2 do
        let want = Option.value ~default:0 (Hashtbl.find_opt expected_via (x, y, c)) in
        let got = Graph.via_usage g ~x ~y ~crossing:c in
        if want <> got && !err = None then
          err :=
            Some
              (Printf.sprintf "via (%d,%d) crossing %d: expected %d, graph says %d" x y c want
                 got)
      done
    done
  done;
  match !err with None -> Ok () | Some msg -> Error msg
