(** Rectilinear Steiner trees on the routing grid.

    A tree is a set of nodes at tile coordinates with parent pointers rooted
    at the net's source tile; every tree edge joins a node to its parent
    along a straight horizontal or vertical run.  Tree edges are exactly the
    *segments* of the paper's formulation once [compress] has merged
    collinear runs. *)

type point = int * int

type t = {
  nodes : point array;
  parent : int array;  (** [parent.(root) = -1]; otherwise index into [nodes] *)
  root : int;
}

val of_edges : root:point -> (point * point) list -> t
(** Build a tree from undirected straight edges.  Node set is inferred; the
    node at [root] becomes the root.

    @raise Invalid_argument if an edge is not axis-aligned, the edges do not
    form a connected acyclic graph, or [root] is not among the endpoints. *)

val num_nodes : t -> int

val node : t -> int -> point

val children : t -> int array array
(** [children t].(i) lists the child node indices of node [i]. *)

val edge_length : t -> int -> int
  [@@cpla.allow "unused-export"]
(** Grid-edge length of the tree edge from node [i] to its parent.
    @raise Invalid_argument for the root. *)

val total_wirelength : t -> int

val find_node : t -> point -> int option

val contains_point : t -> point -> bool
(** Whether the point lies on any tree edge (not necessarily at a node). *)

val compress : keep:point list -> t -> t
(** Merge every non-root degree-2 node whose two incident edges are
    collinear, except nodes at coordinates listed in [keep] (pin tiles must
    stay nodes so pin vias land on tree nodes).  The result has the same
    wire shape with maximal straight edges. *)

val path_to_root : t -> int -> int list
(** Node indices from the given node up to (and including) the root. *)

val validate : t -> (unit, string) result
(** Structural invariants: single root, acyclic parents, axis-aligned edges,
    no zero-length edges, no duplicate node coordinates. *)
