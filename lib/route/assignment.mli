(** Design-wide layer-assignment state.

    Owns, for every net, the Steiner tree, its segments and their current
    layers, and keeps the grid graph's edge and via usage consistent with
    the assignment at all times: [set_layer] atomically releases the old
    wires/vias and claims the new ones.

    Via accounting follows the stacked-via model of Section 2: at every tree
    node the incident assigned segments (plus any pin at that tile) define a
    layer span [lo, hi]; the net consumes one via per layer boundary crossed
    by the span at that tile. *)

type t

val create : graph:Cpla_grid.Graph.t -> nets:Net.t array -> trees:Stree.t option array -> t
(** Fresh state with every segment unassigned (no usage installed).
    @raise Invalid_argument when array lengths differ. *)

val graph : t -> Cpla_grid.Graph.t
val tech : t -> Cpla_grid.Tech.t
val num_nets : t -> int
val net : t -> int -> Net.t
val tree : t -> int -> Stree.t option
val segments : t -> int -> Segment.t array
(** Segments of a net (empty for single-tile nets). *)

val node_to_seg : t -> int -> int array

val children : t -> int -> int array array
(** Per tree node: child node indices (precomputed at [create]; empty for
    nets without a tree). *)

val sink_nodes : t -> int -> (int * int) array
(** Per non-source pin of the net, in pin order: (tree node, pin layer).
    Empty for nets without a tree. *)

val generation : t -> int -> int
(** Monotonic per-net modification counter: bumped by every effective
    [set_layer] / [unassign] on the net.  Timing caches compare generations
    to decide whether a memoized analysis of the net is still valid. *)

val layer : t -> net:int -> seg:int -> int
(** Current layer of a segment, or -1 when unassigned. *)

val set_layer : t -> net:int -> seg:int -> layer:int -> unit
(** Assign (or move) a segment, updating edge and via usage.
    @raise Invalid_argument when the layer's direction does not match the
    segment's. *)

val unassign : t -> net:int -> seg:int -> unit
(** Release a segment's wires and update vias accordingly. *)

val unassign_net : t -> int -> unit

val fully_assigned : t -> bool

val pin_layers_at : t -> net:int -> node:int -> int list
(** Layers of the net's pins located at the given tree node's tile. *)

val node_span : t -> net:int -> node:int -> (int * int) option
  [@@cpla.allow "unused-export"]
(** Current via span at a node: min/max over incident assigned segment
    layers and pin layers; [None] when fewer than one layer is present or
    the span is degenerate at a single layer with no via. *)

val check_usage : t -> (unit, string) result
(** Recompute all edge and via usage from scratch and compare with the
    graph's incremental accounting; the invariant every mutation must
    preserve.  For tests. *)

val iter_assigned : t -> (net:int -> seg:int -> layer:int -> unit) -> unit
  [@@cpla.allow "unused-export"]
