open Cpla_numeric
open Cpla_util

(* Batched structure-of-arrays Burer–Monteiro kernel.

   [Problem.t] keeps its sparse matrices as lists of boxed records — fine
   for construction and validation, hostile to the inner loop: every
   augmented-Lagrangian evaluation folds over those lists, boxing a float
   per accumulation step and allocating a fresh gradient per call.  This
   module compiles a problem into flat parallel arrays (entry rows, entry
   columns, entry values; constraints as a CSR slab) and solves it inside a
   preallocated workspace, so the hot path — L-BFGS line searches over the
   penalised objective — touches only unboxed float-array storage.

   One workspace serves *many* problems: the driver buckets partition
   subproblems by size and runs a whole bucket through the same workspace
   on one domain (see Cpla.Driver), which is what turns per-partition
   solves into a batched kernel.  The arithmetic is operation-for-operation
   the sequence of [Solver.solve] before the port, so results are bitwise
   equal to the record-based implementation's. *)

type compiled = {
  dim : int;
  r : int;  (* resolved factor rank *)
  n : int;  (* dim * r, the flattened V dimension *)
  m : int;  (* number of constraints *)
  (* cost entries, in Problem list order *)
  c_i : int array;
  c_j : int array;
  c_v : float array;
  (* constraint entries as CSR: entries of constraint k live in
     [a_off.(k), a_off.(k+1)) of the three slabs, in Problem list order *)
  a_off : int array;
  a_i : int array;
  a_j : int array;
  a_v : float array;
  b : float array;
}

let auto_rank (problem : Problem.t) =
  let m = List.length problem.Problem.constraints in
  let r = 1 + int_of_float (Float.ceil (sqrt (2.0 *. float_of_int m))) in
  max 2 (min problem.Problem.dim (min r 12))

let resolve_rank ~rank problem =
  if rank > 0 then min rank problem.Problem.dim else auto_rank problem

let compile ~rank (problem : Problem.t) =
  let dim = problem.Problem.dim in
  let r = resolve_rank ~rank problem in
  let nc = List.length problem.Problem.cost in
  let c_i = Array.make nc 0 and c_j = Array.make nc 0 and c_v = Array.make nc 0.0 in
  List.iteri
    (fun k (e : Problem.entry) ->
      c_i.(k) <- e.Problem.i;
      c_j.(k) <- e.Problem.j;
      c_v.(k) <- e.Problem.v)
    problem.Problem.cost;
  let m = List.length problem.Problem.constraints in
  let total = List.fold_left (fun a c -> a + List.length c.Problem.terms) 0 problem.Problem.constraints in
  let a_off = Array.make (m + 1) 0 in
  let a_i = Array.make total 0 and a_j = Array.make total 0 and a_v = Array.make total 0.0 in
  let b = Array.make m 0.0 in
  let pos = ref 0 in
  List.iteri
    (fun k (c : Problem.constr) ->
      a_off.(k) <- !pos;
      b.(k) <- c.Problem.b;
      List.iter
        (fun (e : Problem.entry) ->
          a_i.(!pos) <- e.Problem.i;
          a_j.(!pos) <- e.Problem.j;
          a_v.(!pos) <- e.Problem.v;
          incr pos)
        c.Problem.terms)
    problem.Problem.constraints;
  a_off.(m) <- !pos;
  { dim; r; n = dim * r; m; c_i; c_j; c_v; a_off; a_i; a_j; a_v; b }

type ws = {
  lbfgs : Lbfgs.Ws.t;
  mutable cap_n : int;
  mutable v : float array;    (* flat row-major V: V_{i,c} = v.((i*r)+c) *)
  mutable cap_m : int;
  mutable y : float array;    (* Lagrange multipliers *)
  (* results of the last solve *)
  mutable objective : float;
  mutable max_violation : float;
  mutable outer_rounds : int;
}

let ws_create () =
  {
    lbfgs = Lbfgs.Ws.create ();
    cap_n = 0;
    v = [||];
    cap_m = 0;
    y = [||];
    objective = 0.0;
    max_violation = 0.0;
    outer_rounds = 0;
  }

let reserve ws ~n ~m =
  (* amortised growth: sanctioned allocation under the zero-alloc solve *)
  (if n > ws.cap_n then
     begin
       let cap = max n (max 64 (2 * ws.cap_n)) in
       ws.v <- Array.make cap 0.0;
       ws.cap_n <- cap
     end [@cpla.allow "alloc-in-kernel"]);
  (if m > ws.cap_m then
     begin
       let cap = max m (max 16 (2 * ws.cap_m)) in
       ws.y <- Array.make cap 0.0;
       ws.cap_m <- cap
     end [@cpla.allow "alloc-in-kernel"]);
  Lbfgs.Ws.reserve ws.lbfgs n

(* ⟨A, VVᵀ⟩ for the sparse symmetric A in slab range [lo, hi): the same
   per-entry dot and diagonal/off-diagonal doubling, in the same order, as
   the list fold it replaces. *)
let inner_vvt_flat e_i e_j e_v lo hi v r =
  let acc = ref 0.0 in
  for k = lo to hi - 1 do
    let i = e_i.(k) and j = e_j.(k) in
    let dot =
      let s = ref 0.0 in
      for c = 0 to r - 1 do
        s := !s +. (v.((i * r) + c) *. v.((j * r) + c))
      done;
      !s
    in
    if i = j then acc := !acc +. (e_v.(k) *. dot)
    else acc := !acc +. (2.0 *. e_v.(k) *. dot)
  done;
  !acc

(* grad += w * 2·A·V over slab range [lo, hi) *)
let accumulate_grad_flat e_i e_j e_v lo hi v r w grad =
  for k = lo to hi - 1 do
    let i = e_i.(k) and j = e_j.(k) in
    if i = j then
      for c = 0 to r - 1 do
        grad.((i * r) + c) <- grad.((i * r) + c) +. (2.0 *. w *. e_v.(k) *. v.((i * r) + c))
      done
    else
      for c = 0 to r - 1 do
        grad.((i * r) + c) <- grad.((i * r) + c) +. (2.0 *. w *. e_v.(k) *. v.((j * r) + c));
        grad.((j * r) + c) <- grad.((j * r) + c) +. (2.0 *. w *. e_v.(k) *. v.((i * r) + c))
      done
  done

let max_violation_flat c ws =
  let acc = ref 0.0 in
  for k = 0 to c.m - 1 do
    let res =
      inner_vvt_flat c.a_i c.a_j c.a_v c.a_off.(k) c.a_off.(k + 1) ws.v c.r -. c.b.(k)
    in
    acc := Float.max !acc (Float.abs res)
  done;
  !acc

type options = {
  max_outer : int;
  inner_iters : int;
  sigma0 : float;
  sigma_growth : float;
  feas_tol : float;
  seed : int;
}

(* Solve [c] inside [ws], writing diag(VVᵀ) into [x_diag] (length >= dim).
   Scalars (objective, max violation, outer rounds) land in the ws fields;
   the factor V stays readable in [ws.v] until the next solve.  Beyond the
   one evaluator closure and the workspace growth on first use, the solve
   does not allocate.  [?v0] seeds the factor iterate from a previous
   solve's flat V instead of the deterministic gaussian draw; it is used
   only when its length matches the flattened dimension exactly, so a
   stale warm factor from a differently-shaped leaf silently falls back
   to the cold start. *)
let solve_into ?v0 ws (c : compiled) ~(options : options) ~x_diag =
  if Array.length x_diag < c.dim then invalid_arg "Kernel.solve_into: x_diag too short";
  reserve ws ~n:c.n ~m:c.m;
  (match v0 with
  | Some v0 when Array.length v0 = c.n -> Array.blit v0 0 ws.v 0 c.n
  | _ ->
      (* one small RNG record per solve, for the deterministic cold start *)
      let rng = (Rng.create options.seed [@cpla.allow "alloc-in-kernel"]) in
      Rng.fill_gaussian rng ws.v ~n:c.n ~scale:0.3);
  Vec.fill_n c.m ws.y 0.0;
  let sigma = ref options.sigma0 in
  let fx_out = Lbfgs.Ws.fx_out ws.lbfgs in
  let eval v grad =
    Vec.fill_n c.n grad 0.0;
    let obj = inner_vvt_flat c.c_i c.c_j c.c_v 0 (Array.length c.c_v) v c.r in
    accumulate_grad_flat c.c_i c.c_j c.c_v 0 (Array.length c.c_v) v c.r 1.0 grad;
    let penalty = ref 0.0 in
    for k = 0 to c.m - 1 do
      let lo = c.a_off.(k) and hi = c.a_off.(k + 1) in
      let res = inner_vvt_flat c.a_i c.a_j c.a_v lo hi v c.r -. c.b.(k) in
      penalty := !penalty +. ((-.ws.y.(k)) *. res) +. (0.5 *. !sigma *. res *. res);
      let w = (!sigma *. res) -. ws.y.(k) in
      accumulate_grad_flat c.a_i c.a_j c.a_v lo hi v c.r w grad
    done;
    fx_out.(0) <- obj +. !penalty
  [@@cpla.allow "alloc-in-kernel"] (* the one evaluator closure per solve *)
  in
  let rounds = ref 0 in
  let prev_viol = ref infinity in
  let continue_ = ref true in
  while !continue_ && !rounds < options.max_outer do
    Lbfgs.Ws.minimize ws.lbfgs ~n:c.n ~max_iter:options.inner_iters ~grad_tol:1e-7 ~eval
      ws.v;
    let viol = max_violation_flat c ws in
    (* multiplier update *)
    for k = 0 to c.m - 1 do
      let r_k =
        inner_vvt_flat c.a_i c.a_j c.a_v c.a_off.(k) c.a_off.(k + 1) ws.v c.r -. c.b.(k)
      in
      ws.y.(k) <- ws.y.(k) -. (!sigma *. r_k)
    done;
    if viol > 0.25 *. !prev_viol then sigma := !sigma *. options.sigma_growth;
    prev_viol := viol;
    incr rounds;
    if viol <= options.feas_tol then continue_ := false
  done;
  for i = 0 to c.dim - 1 do
    let s = ref 0.0 in
    for cc = 0 to c.r - 1 do
      s := !s +. (ws.v.((i * c.r) + cc) ** 2.0)
    done;
    x_diag.(i) <- !s
  done;
  ws.objective <- inner_vvt_flat c.c_i c.c_j c.c_v 0 (Array.length c.c_v) ws.v c.r;
  ws.max_violation <- max_violation_flat c ws;
  ws.outer_rounds <- !rounds
[@@cpla.zero_alloc]

let dims c = (c.dim, c.r)

let v ws = ws.v
let objective ws = ws.objective
let max_violation ws = ws.max_violation
let outer_rounds ws = ws.outer_rounds
