(** Batched structure-of-arrays Burer–Monteiro kernel.

    Compiles a sparse [Problem.t] into flat parallel arrays (cost entries,
    constraints as a CSR slab) and solves it inside a preallocated,
    reusable workspace: the augmented-Lagrangian evaluations and L-BFGS
    line searches touch only unboxed float-array storage and allocate
    nothing per iteration.  One workspace is meant to serve a whole
    size-bucketed batch of partition subproblems on one domain.

    The arithmetic is operation-for-operation the sequence of the
    record-based solver it replaced, so [solve_into] and [Solver.solve]
    agree bitwise on identical inputs. *)

type compiled
(** A problem flattened for the kernel; immutable, safe to share across
    domains. *)

val compile : rank:int -> Problem.t -> compiled
(** Flatten a problem at the given factor rank ([rank <= 0] selects the
    automatic ≈√(2m) rank, capped as in [Solver]). *)

val dims : compiled -> int * int
(** [(dim, resolved rank)] of a compiled problem. *)

type ws
(** Reusable solve workspace (factor iterate, multipliers, L-BFGS ring).
    Grows to the largest problem it has seen; never shrinks.  Not
    domain-safe: use one workspace per domain. *)

val ws_create : unit -> ws

val reserve : ws -> n:int -> m:int -> unit
  [@@cpla.allow "unused-export"]
(** Pre-size for problems with flattened dimension <= [n] and <= [m]
    constraints (optional; [solve_into] grows on demand). *)

type options = {
  max_outer : int;
  inner_iters : int;
  sigma0 : float;
  sigma_growth : float;
  feas_tol : float;
  seed : int;
}
(** [Solver.options] minus the rank (resolved at compile time). *)

val solve_into :
  ?v0:float array -> ws -> compiled -> options:options -> x_diag:float array -> unit
(** Solve into the workspace, writing diag(VVᵀ) into [x_diag] (length >=
    dim).  Scalar results land in the accessors below; the factor V stays
    readable via [v] until the next solve on this workspace.  Allocates
    only on workspace growth (plus one evaluator closure per call).
    [?v0] warm-starts the factor iterate from a previous solve's flat V;
    it is honoured only when [Array.length v0 = dim * rank], otherwise the
    deterministic gaussian cold start is used. *)

val v : ws -> float array
(** Flat row-major factor of the last solve: V_{i,c} at [(i*r)+c].  Valid
    for the first [dim*r] cells; overwritten by the next solve. *)

val objective : ws -> float
val max_violation : ws -> float
val outer_rounds : ws -> int
