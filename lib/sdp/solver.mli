(** Burer–Monteiro low-rank SDP solver.

    Replaces CSDP in this reproduction.  Factorises X = V·Vᵀ with V of small
    rank and minimises the augmented Lagrangian

      ⟨C, VVᵀ⟩ − Σ y_k r_k(V) + (σ/2) Σ r_k(V)²,   r_k = ⟨A_k, VVᵀ⟩ − b_k

    over V with L-BFGS, updating multipliers y and penalty σ in an outer
    loop.  X ⪰ 0 holds by construction, so the layer-assignment consumer
    (which only reads the diagonal x_ij values and feeds them to the
    post-mapping of Alg. 1) always receives a valid relaxation point. *)

type options = {
  rank : int;          (** columns of V; 0 = auto (≈ √(2m), capped) *)
  max_outer : int;     (** augmented-Lagrangian rounds (default 12) *)
  inner_iters : int;   (** L-BFGS iterations per round (default 150) *)
  sigma0 : float;      (** initial penalty (default 10) *)
  sigma_growth : float;(** penalty growth when progress stalls (default 4) *)
  feas_tol : float;    (** target max |r_k| (default 1e-4) *)
  seed : int;          (** deterministic initialisation seed *)
}

val default_options : options

type result = {
  v : Cpla_numeric.Mat.t;     (** the factor V (dim × rank) *)
  x_diag : float array;       (** diagonal of X = VVᵀ *)
  objective : float;          (** ⟨C, X⟩ *)
  max_violation : float;      (** max |⟨A_k, X⟩ − b_k| *)
  outer_rounds : int;
}

type ws = Kernel.ws
(** Reusable solve workspace; see {!Kernel.ws}. *)

val ws_create : unit -> ws

val solve : ?options:options -> ?ws:ws -> ?v0:float array -> Problem.t -> result
(** [?ws] reuses a workspace across solves (one per domain); omitting it
    allocates a fresh one.  Results are independent of workspace reuse.
    [?v0] warm-starts the Burer–Monteiro factor from a previous solve's
    flat row-major V (see {!Kernel.solve_into}); a length mismatch falls
    back to the deterministic cold start. *)

val x_entry : result -> int -> int -> float
  [@@cpla.allow "unused-export"]
(** Any entry of X = VVᵀ (e.g. the y_ijpq off-diagonals). *)

val x_matrix : result -> Cpla_numeric.Mat.t
(** Materialise the full X (for tests; O(dim²·rank)). *)
