open Cpla_numeric

type options = {
  rank : int;
  max_outer : int;
  inner_iters : int;
  sigma0 : float;
  sigma_growth : float;
  feas_tol : float;
  seed : int;
}

let default_options =
  {
    rank = 0;
    max_outer = 12;
    inner_iters = 150;
    sigma0 = 10.0;
    sigma_growth = 4.0;
    feas_tol = 1e-4;
    seed = 7;
  }

type result = {
  v : Mat.t;
  x_diag : float array;
  objective : float;
  max_violation : float;
  outer_rounds : int;
}

type ws = Kernel.ws

let ws_create = Kernel.ws_create

let kernel_options (o : options) =
  {
    Kernel.max_outer = o.max_outer;
    inner_iters = o.inner_iters;
    sigma0 = o.sigma0;
    sigma_growth = o.sigma_growth;
    feas_tol = o.feas_tol;
    seed = o.seed;
  }

(* The record-based augmented-Lagrangian loop that used to live here moved
   to [Kernel] as a flat structure-of-arrays implementation (same
   floating-point operation sequence, hence bitwise-equal results); this
   wrapper keeps the list-based problem API and materialises the [Mat.t]
   factor for consumers that want X entries.  Passing [?ws] reuses a
   workspace across solves — the batched driver path holds one per
   domain. *)
let solve ?(options = default_options) ?ws ?v0 (problem : Problem.t) =
  let ws = match ws with Some w -> w | None -> Kernel.ws_create () in
  let compiled = Kernel.compile ~rank:options.rank problem in
  let dim, r = Kernel.dims compiled in
  let x_diag = Array.make dim 0.0 in
  Kernel.solve_into ?v0 ws compiled ~options:(kernel_options options) ~x_diag;
  let flat = Kernel.v ws in
  let vm = Mat.init dim r (fun i c -> flat.((i * r) + c)) in
  {
    v = vm;
    x_diag;
    objective = Kernel.objective ws;
    max_violation = Kernel.max_violation ws;
    outer_rounds = Kernel.outer_rounds ws;
  }

let x_entry result i j =
  let r = result.v.Mat.cols in
  let acc = ref 0.0 in
  for c = 0 to r - 1 do
    acc := !acc +. (Mat.get result.v i c *. Mat.get result.v j c)
  done;
  !acc

let x_matrix result =
  let d = result.v.Mat.rows in
  Mat.init d d (fun i j -> x_entry result i j)
