(** Sparse symmetric semidefinite programs in standard form:

      minimise ⟨C, X⟩  subject to  ⟨A_k, X⟩ = b_k,  X ⪰ 0.

    Symmetric matrices are given by their upper triangle: an entry (i, j, v)
    with i < j denotes the value v at *both* (i,j) and (j,i), so its
    contribution to an inner product with X is 2·v·X_ij.  Inequalities are
    encoded by the caller via slack diagonal entries (X ⪰ 0 makes any
    diagonal entry non-negative), exactly the paper's "extra slack variables
    are added into the objective matrix". *)

type entry = {
  i : int;
  j : int;  (** requires [i <= j]; [i = j] is a diagonal entry *)
  v : float;
}

type constr = {
  terms : entry list;
  b : float;
}

type t = {
  dim : int;
  cost : entry list;          (** the matrix T of Eqn (6) *)
  constraints : constr list;
}

val create : dim:int -> cost:entry list -> constraints:constr list -> t
(** @raise Invalid_argument on out-of-range or lower-triangle indices. *)

val inner : entry list -> Cpla_numeric.Mat.t -> float
  [@@cpla.allow "unused-export"]
(** ⟨A, X⟩ for a symmetric sparse A against a dense X. *)

val violations : t -> Cpla_numeric.Mat.t -> float array
  [@@cpla.allow "unused-export"]
(** Per-constraint residuals ⟨A_k, X⟩ − b_k. *)
