(** Critical-net selection and critical-path structure.

    The CPLA problem releases a fraction of the worst nets ("critical
    ratio", e.g. 0.5%) and optimises the delay of each released net's worst
    source→sink path.  This module ranks nets, extracts the worst path, and
    computes the frozen coefficients the ILP/SDP formulations need. *)

type path_info = {
  net : int;
  detail : Elmore.detail;
  path_segs : int array;
      (** segment indices on the root→worst-sink path, source side first *)
  on_path : bool array;  (** per segment of the net: membership in [path_segs] *)
  branch_attach_r : float array;
      (** per segment: for branch segments, the frozen upstream resistance of
          the shared root→branch-point prefix with the worst path (the factor
          multiplying the segment's capacitance in the worst sink's Elmore
          delay); for path segments, the upstream resistance to the
          segment's source-side end *)
}

val net_tcp : Cpla_route.Assignment.t -> int -> float
(** Worst sink delay (critical-path timing, [Tcp]) of a net. *)

val select : Cpla_route.Assignment.t -> ratio:float -> int array
(** Net ids of the top [ceil(ratio × num_nets)] nets by [Tcp], worst first.
    [ratio] is a fraction (0.005 = the paper's "0.5%").  Nets without
    segments are never selected. *)

val path_info : Cpla_route.Assignment.t -> int -> path_info
(** Worst-path structure of one net at its current assignment. *)

val path_info_of_detail :
  Cpla_route.Assignment.t -> int -> Elmore.detail -> path_info
(** Same, but reusing an already computed (e.g. cached) Elmore detail of the
    net at its current assignment instead of re-analysing. *)

val pin_delays : Cpla_route.Assignment.t -> int array -> float array
(** All sink-pin delays of the given nets (Fig. 1's distribution). *)

val avg_max_tcp : Cpla_route.Assignment.t -> int array -> float * float
(** Average and maximum [Tcp] over the given nets — the Avg(Tcp) and
    Max(Tcp) columns of Table 2. *)
