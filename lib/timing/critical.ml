open Cpla_grid
open Cpla_route

type path_info = {
  net : int;
  detail : Elmore.detail;
  path_segs : int array;
  on_path : bool array;
  branch_attach_r : float array;
}

let net_tcp asg i = (Elmore.analyze asg i).Elmore.worst_delay

let select asg ~ratio =
  if ratio <= 0.0 then [||]
  else begin
    let n = Assignment.num_nets asg in
    let count = min n (int_of_float (Float.ceil (ratio *. float_of_int n))) in
    let keyed =
      Array.init n (fun i ->
          let tcp =
            if Array.length (Assignment.segments asg i) = 0 then neg_infinity
            else net_tcp asg i
          in
          (tcp, i))
    in
    Array.sort (fun (a, _) (b, _) -> compare b a) keyed;
    Array.sub keyed 0 count
    |> Array.to_list
    |> List.filter (fun (tcp, _) -> tcp > neg_infinity)
    |> List.map snd
    |> Array.of_list
  end

let path_info_of_detail asg net_idx detail =
  let tech = Assignment.tech asg in
  let segs = Assignment.segments asg net_idx in
  let nsegs = Array.length segs in
  match Assignment.tree asg net_idx with
  | None ->
      {
        net = net_idx;
        detail;
        path_segs = [||];
        on_path = Array.make nsegs false;
        branch_attach_r = Array.make nsegs 0.0;
      }
  | Some tree ->
      let node_to_seg = Assignment.node_to_seg asg net_idx in
      let on_path = Array.make nsegs false in
      let path_nodes =
        if detail.Elmore.worst_node < 0 then []
        else Stree.path_to_root tree detail.Elmore.worst_node
      in
      (* path_to_root lists worst sink first; reverse for source side first *)
      let path_nodes = List.rev path_nodes in
      let path_segs =
        List.filter_map
          (fun v -> if node_to_seg.(v) >= 0 then Some node_to_seg.(v) else None)
          path_nodes
        |> Array.of_list
      in
      Array.iter (fun s -> on_path.(s) <- true) path_segs;
      (* Upstream resistance along the worst path at each path node (frozen
         at current layers, vias included). *)
      let layer_of seg = Assignment.layer asg ~net:net_idx ~seg in
      let node_r = Hashtbl.create 16 in
      let r = ref tech.Tech.driver_r in
      List.iter
        (fun v ->
          let seg = node_to_seg.(v) in
          (if seg >= 0 then begin
             (* via resistance between this edge and the previous one is part
                of the path but second-order for the coefficient; include the
                wire resistance, which dominates *)
             let l = layer_of seg in
             r := !r +. (Tech.unit_r tech l *. float_of_int segs.(seg).Segment.len)
           end);
          Hashtbl.replace node_r v !r)
        path_nodes;
      (* For every segment: walk up to the first node that lies on the path;
         the coefficient is the path resistance accumulated at that node
         (for path segments: at their source-side end = parent node). *)
      let path_node_set = Hashtbl.create 16 in
      List.iter (fun v -> Hashtbl.replace path_node_set v ()) path_nodes;
      let branch_attach_r = Array.make nsegs 0.0 in
      let r_at v = Option.value ~default:tech.Tech.driver_r (Hashtbl.find_opt node_r v) in
      for v = 0 to Stree.num_nodes tree - 1 do
        let seg = node_to_seg.(v) in
        if seg >= 0 then begin
          if on_path.(seg) then
            branch_attach_r.(seg) <- r_at tree.Stree.parent.(v)
          else begin
            (* first path ancestor of v *)
            let rec up j =
              if j < 0 then tree.Stree.root
              else if Hashtbl.mem path_node_set j then j
              else up tree.Stree.parent.(j)
            in
            let anchor = up v in
            branch_attach_r.(seg) <- r_at anchor
          end
        end
      done;
      { net = net_idx; detail; path_segs; on_path; branch_attach_r }

let path_info asg net_idx = path_info_of_detail asg net_idx (Elmore.analyze asg net_idx)

let pin_delays asg nets =
  Array.to_list nets
  |> List.concat_map (fun i ->
         Array.to_list (Elmore.analyze asg i).Elmore.sink_delays |> List.map snd)
  |> Array.of_list

let avg_max_tcp asg nets =
  let tcps = Array.map (fun i -> net_tcp asg i) nets in
  (Cpla_util.Stats.mean tcps, Cpla_util.Stats.max tcps)
