(** Slack analysis against per-net timing budgets.

    The paper selects critical nets by ranking raw path delays; real flows
    rank by *slack* against a required arrival time.  This module derives a
    budget per net (a virtual clock period, or proportional-to-HPWL budgets
    for a zero-wire-load target), computes worst-slack per net, and offers
    slack-based release selection plus the usual WNS/TNS summary. *)

type budget =
  | Clock of float
      (** every sink must arrive within one period *)
  | Scaled of float
      (** per-net budget = factor × the net's zero-load lower-bound delay
          (driver and sink loads on the best layers, no congestion) — nets
          forced onto slow layers show negative slack *)

type report = {
  slacks : float array;  (** worst slack per net (budget − worst delay) *)
  wns : float;           (** worst negative slack (0 when all met) *)
  tns : float;           (** total negative slack (≤ 0) *)
  violations : int;      (** nets with negative slack *)
}

val budget_of_net : Cpla_route.Assignment.t -> budget -> int -> float
  [@@cpla.allow "unused-export"]
(** The required arrival time assigned to one net. *)

val analyze : Cpla_route.Assignment.t -> budget -> report
(** Slack of every net at the current assignment (untreed nets get slack
    against their driver-only delay). *)

val select_violating : Cpla_route.Assignment.t -> budget -> max_nets:int -> int array
(** Nets with negative slack, worst first, capped at [max_nets] — a
    slack-driven alternative to {!Critical.select}. *)
