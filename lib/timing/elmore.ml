open Cpla_grid
open Cpla_route

type detail = {
  seg_cd : float array;
  seg_delay : float array;
  node_delay : float array;
  sink_delays : (int * float) array;
  worst_delay : float;
  worst_node : int;
  total_cap : float;
}

type workspace = {
  mutable order : int array; (* pre-order node sequence of the last traversal *)
  mutable stack : int array;
  mutable node_load : float array;
  mutable node_cd : float array;
}

let make_workspace () = { order = [||]; stack = [||]; node_load = [||]; node_cd = [||] }

let ensure_capacity ws n =
  if Array.length ws.order < n then begin
    let cap = max n (2 * Array.length ws.order) in
    ws.order <- Array.make cap 0;
    ws.stack <- Array.make cap 0;
    ws.node_load <- Array.make cap 0.0;
    ws.node_cd <- Array.make cap 0.0
  end

let seg_ts ~tech ~len ~layer ~cd =
  let flen = float_of_int len in
  let r = Tech.unit_r tech layer *. flen in
  let c = Tech.unit_c tech layer *. flen in
  r *. ((c /. 2.0) +. cd)

let via_tv ~tech ~lo ~hi ~cd_min = Tech.via_r_span tech ~lo ~hi *. cd_min

let no_tree_detail tech net =
  let sinks = Net.sinks net in
  let load = float_of_int (Array.length sinks) *. tech.Tech.sink_c in
  let d = tech.Tech.driver_r *. load in
  {
    seg_cd = [||];
    seg_delay = [||];
    node_delay = [||];
    sink_delays = Array.map (fun _ -> (-1, d)) sinks;
    worst_delay = d;
    worst_node = -1;
    total_cap = load;
  }

let analyze_with ws asg net_idx =
  let tech = Assignment.tech asg in
  let net = Assignment.net asg net_idx in
  match Assignment.tree asg net_idx with
  | None -> no_tree_detail tech net
  | Some tree ->
      let segs = Assignment.segments asg net_idx in
      let node_to_seg = Assignment.node_to_seg asg net_idx in
      let children = Assignment.children asg net_idx in
      let sinks = Assignment.sink_nodes asg net_idx in
      let layer_of seg =
        let l = Assignment.layer asg ~net:net_idx ~seg in
        if l < 0 then invalid_arg "Elmore.analyze: unassigned segment";
        l
      in
      let n = Stree.num_nodes tree in
      ensure_capacity ws n;
      let order = ws.order and stack = ws.stack in
      let node_load = ws.node_load and node_cd = ws.node_cd in
      let src = Net.source net in
      (* sink load at each node: every pin at the node except the source *)
      Array.fill node_load 0 n 0.0;
      Array.iter (fun (v, _) -> node_load.(v) <- node_load.(v) +. tech.Tech.sink_c) sinks;
      (* DFS pre-order into [order]; reading it backwards visits children
         before parents, so one scratch array serves both sweeps *)
      stack.(0) <- tree.Stree.root;
      let sp = ref 1 and m = ref 0 in
      while !sp > 0 do
        decr sp;
        let v = stack.(!sp) in
        order.(!m) <- v;
        incr m;
        Array.iter
          (fun c ->
            stack.(!sp) <- c;
            incr sp)
          children.(v)
      done;
      (* Bottom-up: Cd per node.  node_cd.(v) = load(v) + Σ_children (wire cap
         of child seg + node_cd(child)). *)
      for i = n - 1 downto 0 do
        let v = order.(i) in
        let acc = ref node_load.(v) in
        Array.iter
          (fun c ->
            let seg = node_to_seg.(c) in
            let cap =
              Tech.unit_c tech (layer_of seg) *. float_of_int segs.(seg).Segment.len
            in
            acc := !acc +. cap +. node_cd.(c))
          children.(v);
        node_cd.(v) <- !acc
      done;
      let seg_cd = Array.make (Array.length segs) 0.0 in
      for v = 0 to n - 1 do
        let seg = node_to_seg.(v) in
        if seg >= 0 then seg_cd.(seg) <- node_cd.(v)
      done;
      (* Top-down: Elmore delay per node.  Pre-order guarantees a node's
         parent delay is final before the node is reached. *)
      let node_delay = Array.make n 0.0 in
      let seg_delay = Array.make (Array.length segs) 0.0 in
      let total_cap = node_cd.(tree.Stree.root) in
      node_delay.(tree.Stree.root) <- tech.Tech.driver_r *. total_cap;
      (* layer "seen" at a node on the way down: the layer of the edge above
         it, or the source pin layer at the root *)
      let upstream_layer v =
        let seg = node_to_seg.(v) in
        if seg >= 0 then layer_of seg else src.Net.pl
      in
      for i = 0 to n - 1 do
        let v = order.(i) in
        Array.iter
          (fun c ->
            let seg = node_to_seg.(c) in
            let l = layer_of seg in
            let up = upstream_layer v in
            let tv =
              via_tv ~tech ~lo:(min l up) ~hi:(max l up)
                ~cd_min:(Float.min seg_cd.(seg) node_cd.(v))
            in
            let ts = seg_ts ~tech ~len:segs.(seg).Segment.len ~layer:l ~cd:seg_cd.(seg) in
            seg_delay.(seg) <- ts;
            node_delay.(c) <- node_delay.(v) +. tv +. ts)
          children.(v)
      done;
      (* Sink delays including the pin via. *)
      let sink_delays =
        Array.map
          (fun (v, pl) ->
            let up = upstream_layer v in
            let pin_via =
              via_tv ~tech ~lo:(min up pl) ~hi:(max up pl) ~cd_min:tech.Tech.sink_c
            in
            (v, node_delay.(v) +. pin_via))
          sinks
      in
      let worst_node = ref (-1) and worst_delay = ref 0.0 in
      Array.iter
        (fun (v, d) ->
          if d > !worst_delay then begin
            worst_delay := d;
            worst_node := v
          end)
        sink_delays;
      {
        seg_cd;
        seg_delay;
        node_delay;
        sink_delays;
        worst_delay = !worst_delay;
        worst_node = !worst_node;
        total_cap;
      }

(* Spanned here, on the workspace-allocating entry, rather than in
   [analyze_with]: the batch paths (Incremental.refresh) call the latter
   per net in a tight loop where even a disabled-probe check is waste. *)
let analyze asg net_idx =
  Cpla_obs.Span.with_ ~name:"elmore/analyze"
    ~args:[ ("net", Cpla_obs.Event.Int net_idx) ]
    (fun () -> analyze_with (make_workspace ()) asg net_idx)
