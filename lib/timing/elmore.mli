(** Elmore delay analysis of assigned nets (Section 2.2).

    Implements Eqns (2) and (3): segment delay
    [ts(i,l) = R_e(l)·(C_e(l)/2 + Cd(i))] with downstream capacitances
    computed sinks-to-source, via delay
    [tv = Σ R_v(l) · min(Cd(i), Cd(p))] for the stacked via between two
    tree-adjacent segments, a driver resistance charging the whole net at
    the source, and sink-pin vias charging the sink load. *)

type detail = {
  seg_cd : float array;
      (** per segment: downstream capacitance [Cd(i)] — everything beyond the
          segment's far (child) end, excluding the segment's own wire cap *)
  seg_delay : float array;  (** per segment: [ts] of Eqn (2) at its current layer *)
  node_delay : float array; (** per tree node: Elmore delay from the driver input *)
  sink_delays : (int * float) array;
      (** one entry per sink pin: (tree node, delay including the pin via) *)
  worst_delay : float;  (** max over [sink_delays]; this is the net's [Tcp] *)
  worst_node : int;     (** tree node of the worst sink; -1 when the net has no tree *)
  total_cap : float;    (** capacitance the driver sees *)
}

type workspace
(** Reusable scratch buffers (traversal order, DFS stack, per-node loads and
    downstream caps) for repeated analyses.  Grown geometrically to the
    largest net seen; one workspace must not be shared between domains. *)

val make_workspace : unit -> workspace

val analyze : Cpla_route.Assignment.t -> int -> detail
(** Analyse one net.  Every segment of the net must be assigned.
    @raise Invalid_argument otherwise.  Nets without a tree (single-tile)
    yield a detail with only the driver-charging-sink-load delay. *)

val analyze_with : workspace -> Cpla_route.Assignment.t -> int -> detail
(** Same result as {!analyze} (bitwise), but scratch state comes from the
    workspace; only the arrays stored in the returned [detail] are freshly
    allocated.  This is the entry point the incremental engine's cache and
    its parallel refresh use (one workspace per worker). *)

val seg_ts : tech:Cpla_grid.Tech.t -> len:int -> layer:int -> cd:float -> float
(** Eqn (2) for one segment given its downstream cap. *)

val via_tv : tech:Cpla_grid.Tech.t -> lo:int -> hi:int -> cd_min:float -> float
(** Eqn (3) for a via stack spanning layers [lo..hi]. *)
