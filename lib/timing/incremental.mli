(** Incremental Elmore timing engine.

    Memoizes {!Elmore.detail} and {!Critical.path_info} per net, keyed on the
    net's {!Cpla_route.Assignment.generation} counter: any [set_layer] /
    [unassign] on a net silently invalidates its cached analyses, and the
    next query re-analyses only that net.  This turns the three hottest
    evaluation loops of the outer CPLA iteration — critical-net selection,
    scoring, and coefficient freezing — from O(all nets) into O(nets whose
    segments actually moved).

    Queries that hit a dirty net re-analyse it against a reusable workspace
    owned by the engine (no per-call scratch allocation).  {!refresh}
    revalidates every dirty net at once, optionally in parallel over a
    domain pool with one workspace per worker.

    Thread-safety contract: the engine itself is not thread-safe; queries
    and [refresh] must come from the owning domain.  During a parallel
    [refresh] the underlying assignment must not be mutated (workers only
    read it), matching {!Cpla_util.Pool.parallel_map}'s requirement that
    work items share no mutable state. *)

type t

val create : Cpla_route.Assignment.t -> t
(** An empty cache over the assignment.  Cheap: nothing is analysed until
    queried.  The engine remains valid for the assignment's lifetime;
    mutations are tracked via generation counters, not registration. *)

val assignment : t -> Cpla_route.Assignment.t

val detail : t -> int -> Elmore.detail
(** Cached {!Elmore.analyze}: recomputed only if the net changed since the
    last query.  Same contract (all segments of the net must be assigned,
    @raise Invalid_argument otherwise). *)

val net_tcp : t -> int -> float
(** Cached {!Critical.net_tcp}. *)

val path_info : t -> int -> Critical.path_info
(** Cached {!Critical.path_info}; shares the cached Elmore detail. *)

val select : t -> ratio:float -> int array
(** Identical result to {!Critical.select} (same ranking and tie-breaking);
    only dirty nets are re-analysed. *)

val pin_delays : t -> int array -> float array
(** Cached {!Critical.pin_delays}. *)

val avg_max_tcp : t -> int array -> float * float
(** Cached {!Critical.avg_max_tcp}; (0, 0) on an empty net set. *)

val refresh : ?workers:int -> t -> unit
(** Revalidate every dirty net now (details, plus path infos for nets whose
    path info was previously queried).  [workers > 1] fans the dirty set out
    over that many domains, one Elmore workspace each; the fan-out is
    skipped when the dirty set is too small to amortise domain spawns.
    Requires a fully assigned state. *)

val is_dirty : t -> int -> bool
(** Whether the net's cached detail is stale (or was never computed). *)

val dirty_count : t -> int
(** Number of nets a {!refresh} would re-analyse. *)
