open Cpla_route

type entry = {
  mutable detail_gen : int;
  mutable detail : Elmore.detail option;
  mutable pinfo_gen : int;
  mutable pinfo : Critical.path_info option;
}

type t = {
  asg : Assignment.t;
  entries : entry array;
  ws : Elmore.workspace; (* sequential-path scratch; workers get their own *)
}

let fresh_entry () = { detail_gen = -1; detail = None; pinfo_gen = -1; pinfo = None }

let create asg =
  {
    asg;
    entries = Array.init (Assignment.num_nets asg) (fun _ -> fresh_entry ());
    ws = Elmore.make_workspace ();
  }

let assignment t = t.asg

let is_dirty t i = t.entries.(i).detail_gen <> Assignment.generation t.asg i

let dirty_count t =
  let c = ref 0 in
  for i = 0 to Array.length t.entries - 1 do
    if is_dirty t i then incr c
  done;
  !c

let detail t i =
  let e = t.entries.(i) in
  let g = Assignment.generation t.asg i in
  match e.detail with
  | Some d when e.detail_gen = g -> d
  | _ ->
      let d = Elmore.analyze_with t.ws t.asg i in
      e.detail <- Some d;
      e.detail_gen <- g;
      d

let net_tcp t i = (detail t i).Elmore.worst_delay

let path_info t i =
  let e = t.entries.(i) in
  let d = detail t i in
  let g = Assignment.generation t.asg i in
  match e.pinfo with
  | Some p when e.pinfo_gen = g -> p
  | _ ->
      let p = Critical.path_info_of_detail t.asg i d in
      e.pinfo <- Some p;
      e.pinfo_gen <- g;
      p

let refresh ?(workers = 1) t =
  Cpla_obs.Span.with_ ~name:"timing/refresh" @@ fun () ->
  let n = Array.length t.entries in
  let dirty = ref [] in
  for i = n - 1 downto 0 do
    if is_dirty t i then dirty := i :: !dirty
  done;
  let dirty = Array.of_list !dirty in
  let nd = Array.length dirty in
  Cpla_obs.Metrics.incr ~by:nd "timing/dirty_nets";
  (* below ~2 nets per worker the domain spawn cost dominates *)
  if workers <= 1 || nd < 2 * workers then
    Array.iter (fun i -> ignore (detail t i)) dirty
  else begin
    let k = min workers nd in
    let chunks =
      Array.init k (fun w ->
          let lo = w * nd / k and hi = (w + 1) * nd / k in
          Array.sub dirty lo (hi - lo))
    in
    (* Nets are analysed read-only and independently: one workspace per
       worker, results committed after the join. *)
    let analyze_chunk chunk =
      let ws = Elmore.make_workspace () in
      Array.map
        (fun i ->
          let d = Elmore.analyze_with ws t.asg i in
          let p =
            if t.entries.(i).pinfo <> None then
              Some (Critical.path_info_of_detail t.asg i d)
            else None
          in
          (i, d, p))
        chunk
    in
    let results = Cpla_util.Pool.parallel_map ~workers:k analyze_chunk chunks in
    Array.iter
      (Array.iter (fun (i, d, p) ->
           let e = t.entries.(i) in
           let g = Assignment.generation t.asg i in
           e.detail <- Some d;
           e.detail_gen <- g;
           match p with
           | Some p ->
               e.pinfo <- Some p;
               e.pinfo_gen <- g
           | None -> ()))
      results
  end

(* Same ranking, ordering and tie-breaking as [Critical.select], but net
   delays come from the cache: after an incremental change only the dirty
   nets are re-analysed. *)
let select t ~ratio =
  if ratio <= 0.0 then [||]
  else begin
    let n = Assignment.num_nets t.asg in
    let count = min n (int_of_float (Float.ceil (ratio *. float_of_int n))) in
    let keyed =
      Array.init n (fun i ->
          let tcp =
            if Array.length (Assignment.segments t.asg i) = 0 then neg_infinity
            else net_tcp t i
          in
          (tcp, i))
    in
    Array.sort (fun (a, _) (b, _) -> compare b a) keyed;
    Array.sub keyed 0 count
    |> Array.to_list
    |> List.filter (fun (tcp, _) -> tcp > neg_infinity)
    |> List.map snd
    |> Array.of_list
  end

let pin_delays t nets =
  Array.to_list nets
  |> List.concat_map (fun i ->
         Array.to_list (detail t i).Elmore.sink_delays |> List.map snd)
  |> Array.of_list

let avg_max_tcp t nets =
  let tcps = Array.map (fun i -> net_tcp t i) nets in
  (Cpla_util.Stats.mean tcps, Cpla_util.Stats.max tcps)
