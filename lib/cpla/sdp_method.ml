open Cpla_sdp

let build_problem (f : Formulation.t) =
  let x_base = Array.make (Array.length f.Formulation.vars) 0 in
  let next = ref 0 in
  Array.iteri
    (fun vi v ->
      x_base.(vi) <- !next;
      next := !next + Array.length v.Formulation.cands)
    f.Formulation.vars;
  let slack_base = !next in
  let dim = slack_base + Array.length f.Formulation.cap_rows in
  let index vi ci = x_base.(vi) + ci in
  (* Normalise T to unit scale: Elmore costs are in the thousands while the
     augmented-Lagrangian penalty starts at O(10), and an unscaled objective
     would crush the feasibility terms.  Scaling the objective does not
     change the relaxation's argmin. *)
  let scale =
    let m = ref 1e-12 in
    Array.iter
      (fun (v : Formulation.var) ->
        Array.iter (fun ts -> m := Float.max !m (Float.abs ts)) v.Formulation.ts)
      f.Formulation.vars;
    Array.iter
      (fun (p : Formulation.pair) ->
        Array.iteri
          (fun ca row ->
            Array.iteri
              (fun cb tv ->
                m := Float.max !m (Float.abs (tv +. p.Formulation.lambda.(ca).(cb))))
              row)
          p.Formulation.tv)
      f.Formulation.pairs;
    !m
  in
  (* T: diagonal ts, off-diagonal (tv + λ)/2 so that ⟨T,X⟩ charges tv + λ
     against the y entry (the inner product doubles off-diagonals). *)
  let cost = ref [] in
  Array.iteri
    (fun vi (v : Formulation.var) ->
      Array.iteri
        (fun ci ts ->
          cost := { Problem.i = index vi ci; j = index vi ci; v = ts /. scale } :: !cost)
        v.Formulation.ts)
    f.Formulation.vars;
  Array.iter
    (fun (p : Formulation.pair) ->
      Array.iteri
        (fun ca row ->
          Array.iteri
            (fun cb tv ->
              let i = index p.Formulation.a ca and j = index p.Formulation.b cb in
              let lo = min i j and hi = max i j in
              if lo <> hi then begin
                let v = (tv +. p.Formulation.lambda.(ca).(cb)) /. (2.0 *. scale) in
                if v <> 0.0 then cost := { Problem.i = lo; j = hi; v } :: !cost
              end)
            row)
        p.Formulation.tv)
    f.Formulation.pairs;
  (* (4b): Σ_j x_ij = 1 per segment. *)
  let constraints = ref [] in
  Array.iteri
    (fun vi (v : Formulation.var) ->
      let terms =
        Array.to_list
          (Array.mapi (fun ci _ -> { Problem.i = index vi ci; j = index vi ci; v = 1.0 }) v.Formulation.cands)
      in
      constraints := { Problem.terms; b = 1.0 } :: !constraints)
    f.Formulation.vars;
  (* (4c) with a PSD slack: Σ x + s = limit. *)
  Array.iteri
    (fun ri (r : Formulation.cap_row) ->
      let slack = slack_base + ri in
      let terms =
        { Problem.i = slack; j = slack; v = 1.0 }
        :: List.map
             (fun (vi, ci) -> { Problem.i = index vi ci; j = index vi ci; v = 1.0 })
             r.Formulation.members
      in
      constraints := { Problem.terms; b = float_of_int r.Formulation.limit } :: !constraints)
    f.Formulation.cap_rows;
  (Problem.create ~dim ~cost:!cost ~constraints:!constraints, index)

type solution = { frac : float array array; factor : float array }

let fractional_table (f : Formulation.t) index (result : Solver.result) =
  Array.mapi
    (fun vi (v : Formulation.var) ->
      Array.mapi
        (fun ci _ ->
          let x = result.Solver.x_diag.(index vi ci) in
          Float.max 0.0 (Float.min 1.0 x))
        v.Formulation.cands)
    f.Formulation.vars

let flat_factor (result : Solver.result) =
  let open Cpla_numeric in
  let rows = result.Solver.v.Mat.rows and cols = result.Solver.v.Mat.cols in
  Array.init (rows * cols) (fun k -> Mat.get result.Solver.v (k / cols) (k mod cols))

let solve_fractional ~options ?ws ?v0 ?(check = fun () -> ()) (f : Formulation.t) =
  if Array.length f.Formulation.vars = 0 then { frac = [||]; factor = [||] }
  else
    Cpla_obs.Span.with_ ~name:"sdp/solve"
      ~args:[ ("vars", Cpla_obs.Event.Int (Array.length f.Formulation.vars)) ]
      (fun () ->
        Cpla_obs.Metrics.incr "sdp/solves";
        check ();
        let problem, index = build_problem f in
        check ();
        let result = Solver.solve ~options ?ws ?v0 problem in
        (* A warm seed far from this formulation's basin can leave the
           augmented Lagrangian stalled at an infeasible point; treat a
           badly violated (or non-finite) final residual as a stall and
           retry from the deterministic cold start. *)
        let stalled (r : Solver.result) =
          (not (Float.is_finite r.Solver.max_violation))
          || r.Solver.max_violation > 100.0 *. options.Solver.feas_tol
        in
        let result =
          match v0 with
          | Some _ when stalled result ->
              Cpla_obs.Metrics.incr "sdp/warm-retries";
              check ();
              Solver.solve ~options ?ws problem
          | _ -> result
        in
        { frac = fractional_table f index result; factor = flat_factor result })

let solve ~options ?ws ?check (f : Formulation.t) =
  let { frac; _ } = solve_fractional ~options ?ws ?check f in
  if Array.length frac = 0 then fun _ _ -> 0.0 else fun vi ci -> frac.(vi).(ci)
