(** ILP method (Section 3.1): build formula (4) for one partition and solve
    it exactly with branch-and-bound.

    Variables: x_ij per (segment, candidate layer), y_ijpq per connected
    pair and layer combination (linked by (4e)–(4g)), and the continuous
    via-overflow variable V_o weighted by α in the objective.  Constraints
    (4b) assignment, (4c) edge capacity, (4d) via capacity relaxed by V_o. *)

val solve :
  options:Cpla_ilp.Solver.options ->
  alpha:float ->
  ?ws:Cpla_ilp.Solver.ws ->
  ?check:(unit -> unit) ->
  Formulation.t ->
  int array option
(** Chosen layer per var, or [None] when the solver found nothing within
    budget (caller keeps the previous assignment).  [check] is the
    cooperative-cancellation hook (see {!Driver.optimize_released}),
    polled at the solve boundaries (before model build and before
    branch-and-bound); the solver's own [time_limit_s] bounds the gap
    between polls.  [ws] reuses an LP workspace across partitions (one per
    domain); results are independent of workspace reuse. *)

val build_model : alpha:float -> Formulation.t -> Cpla_ilp.Model.t
(** The exact 0/1 model (exposed for tests). *)
