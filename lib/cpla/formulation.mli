(** The per-partition optimisation problem shared by the ILP and SDP
    methods.

    Built against a state where the partition's released segments have been
    *unassigned*, so the grid's free capacities reflect everything else
    (non-released nets and other partitions) — the incremental tightening of
    constraint (4c)/(4d) described in Section 3.1.

    Coefficients are frozen at the assignment current when the enclosing
    outer iteration started:

    - a segment on its net's worst path gets ts(i,j) of Eqn (2) with its
      frozen downstream capacitance;
    - a branch segment gets [R_upstream · C_e(j) · len] — its capacitance
      weighted by the frozen resistance of the shared root→branch-point
      prefix, which is that segment's exact contribution to the worst-sink
      Elmore delay;
    - a tree-adjacent pair of released segments gets the via table
      tv(i,j,p,q) of Eqn (3), plus (for the SDP method) the via-capacity
      penalty λ of Section 3.3 (existing via usage over capacity). *)

type var = {
  net : int;
  seg : int;
  dir : Cpla_grid.Tech.dir;
  cands : int array;    (** candidate layers *)
  ts : float array;     (** frozen timing cost per candidate *)
  edges : Cpla_grid.Graph.edge2d array;  (** grid edges the segment covers *)
}

type pair = {
  a : int;  (** var index *)
  b : int;
  tile : int * int;           (** shared tree-node tile carrying the via stack *)
  tv : float array array;     (** tv.(ca).(cb): via delay, Eqn (3) *)
  lambda : float array array; (** via-capacity penalty for the SDP objective *)
}

type cap_row = {
  edge : Cpla_grid.Graph.edge2d;
  layer : int;
  limit : int;  (** free capacity left for released segments *)
  members : (int * int) list;  (** (var, candidate) covering this edge-layer *)
}

type via_row = {
  tile : int * int;
  crossing : int;
  limit : int;  (** via capacity minus existing usage at this boundary *)
  members : (int * int * int) list;
      (** (pair, ca, cb) whose chosen span would cross this boundary *)
}

type t = {
  vars : var array;
  pairs : pair array;
  cap_rows : cap_row array;
  via_rows : via_row array;
}

val build :
  ?boundary_coupling:bool ->
  Cpla_route.Assignment.t ->
  infos:(int -> Cpla_timing.Critical.path_info) ->
  items:Partition.item list ->
  t
(** Requires every item's segment to be currently unassigned and [infos] to
    return a frozen [path_info] for every net appearing in [items] (raising
    [Not_found] otherwise).  The infos must have been captured *before* the
    items were unassigned — typically a lookup into coefficients frozen by
    the enclosing sweep, not a live re-analysis.
    [boundary_coupling] (default true) folds the via delay to tree-adjacent
    segments *outside* the partition into ts; disabling it reproduces a
    naive partitioned objective for ablation. *)

val var_count : t -> int

val candidate_total : t -> int
(** Σ over vars of their candidate count — the x-dimension of the models. *)

val digest : t -> string
(** Canonical content digest (hex).  Serialises exactly the fields the
    solve methods consume — candidate/timing tables, via pair tables,
    capacity-row members and limits — with net/seg ids replaced by
    first-appearance symbols, coefficients rounded through [%.9g], and
    rows sorted canonically.  Two formulations posing the same
    optimisation problem (possibly for renumbered nets or translated grid
    coordinates) share a digest, which is what makes it usable as a
    content-addressed solve-cache key. *)
