open Cpla_grid
open Cpla_route

let min_free asg (v : Formulation.var) layer =
  let graph = Assignment.graph asg in
  Array.fold_left (fun acc e -> min acc (Graph.free graph e ~layer)) max_int v.Formulation.edges

let fallback_layer asg (v : Formulation.var) =
  let best = ref v.Formulation.cands.(0) and best_free = ref min_int in
  Array.iter
    (fun l ->
      let f = min_free asg v l in
      if f > !best_free || (f = !best_free && l > !best) then begin
        best := l;
        best_free := f
      end)
    v.Formulation.cands;
  !best

let run_body asg ~vars ~x =
  let tech = Assignment.tech asg in
  let nl = Tech.num_layers tech in
  let assigned = Array.make (Array.length vars) false in
  (* Alg. 1 line 3: highest layer first.  Layers of the wrong direction are
     skipped per variable via the candidate list. *)
  for layer = nl - 1 downto 0 do
    (* candidates of this layer, ranked by fractional value (line 5) *)
    let ranked = ref [] in
    Array.iteri
      (fun vi (v : Formulation.var) ->
        if not assigned.(vi) then
          Array.iteri
            (fun ci l -> if l = layer then ranked := (x vi ci, vi) :: !ranked)
            v.Formulation.cands)
      vars;
    (* Alg. 1 line 5 ranks by descending fractional value.  Float.compare is
       a total order, so a NaN x (degenerate solver output) cannot leave the
       sort order unspecified — NaN ranks last, after every real value — and
       ties break on ascending variable index instead of the reversed
       construction order the polymorphic compare happened to produce. *)
    let ranked =
      List.sort
        (fun (a, va) (b, vb) ->
          let nan_a = Float.is_nan a and nan_b = Float.is_nan b in
          if nan_a || nan_b then
            if nan_a && nan_b then Int.compare va vb
            else if nan_a then 1
            else -1
          else
            let c = Float.compare b a in
            if c <> 0 then c else Int.compare va vb)
        !ranked
    in
    List.iter
      (fun (_, vi) ->
        if not assigned.(vi) then begin
          let v = vars.(vi) in
          if min_free asg v layer >= 1 then begin
            Assignment.set_layer asg ~net:v.Formulation.net ~seg:v.Formulation.seg ~layer;
            assigned.(vi) <- true
          end
        end)
      ranked
  done;
  (* Fallback for segments squeezed out everywhere (edge overflow accepted,
     as the ILP's V_o also permits). *)
  Array.iteri
    (fun vi (v : Formulation.var) ->
      if not assigned.(vi) then begin
        let layer = fallback_layer asg v in
        Assignment.set_layer asg ~net:v.Formulation.net ~seg:v.Formulation.seg ~layer;
        assigned.(vi) <- true
      end)
    vars

let run asg ~vars ~x =
  Cpla_obs.Span.with_ ~name:"post_map/run"
    ~args:[ ("vars", Cpla_obs.Event.Int (Array.length vars)) ]
    (fun () -> run_body asg ~vars ~x)
