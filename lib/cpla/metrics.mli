(** The measurement columns of Table 2. *)

type t = {
  avg_tcp : float;   (** average critical-path delay over released nets *)
  max_tcp : float;   (** maximum critical-path delay over released nets *)
  via_overflow : int;   (** OV#: total via-capacity overflow of the design *)
  via_count : int;      (** via#: total stacked-via crossings of the design *)
  edge_overflow : int;  (** wire-capacity overflow (0 for legal assignments) *)
  cpu_s : float;        (** measured optimisation time, filled by the caller *)
}

val measure :
  ?engine:Cpla_timing.Incremental.t ->
  Cpla_route.Assignment.t ->
  released:int array ->
  cpu_s:float ->
  t
(** [engine], when given, must be bound to [asg]; timing columns then come
    from the incremental cache (only dirty nets re-analysed). *)

val pp : Format.formatter -> t -> unit
