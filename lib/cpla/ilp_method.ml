open Cpla_numeric

(* Column layout: x columns per (var, cand) in var order, then y columns per
   (pair, ca, cb), then V_o. *)
type layout = {
  x_base : int array;  (* x_base.(vi) + ci *)
  y_base : int array;  (* y_base.(pi) + (ca * |cands_b|) + cb *)
  vo : int;
  total : int;
}

let layout (f : Formulation.t) =
  let x_base = Array.make (Array.length f.Formulation.vars) 0 in
  let next = ref 0 in
  Array.iteri
    (fun vi v ->
      x_base.(vi) <- !next;
      next := !next + Array.length v.Formulation.cands)
    f.Formulation.vars;
  let y_base = Array.make (Array.length f.Formulation.pairs) 0 in
  Array.iteri
    (fun pi (p : Formulation.pair) ->
      y_base.(pi) <- !next;
      let na = Array.length f.Formulation.vars.(p.Formulation.a).Formulation.cands in
      let nb = Array.length f.Formulation.vars.(p.Formulation.b).Formulation.cands in
      next := !next + (na * nb))
    f.Formulation.pairs;
  let vo = !next in
  { x_base; y_base; vo; total = !next + 1 }

let y_col lay (f : Formulation.t) pi ca cb =
  let p = f.Formulation.pairs.(pi) in
  let nb = Array.length f.Formulation.vars.(p.Formulation.b).Formulation.cands in
  lay.y_base.(pi) + (ca * nb) + cb

let build_model ~alpha (f : Formulation.t) =
  let lay = layout f in
  let n = lay.total in
  let objective = Array.make n 0.0 in
  Array.iteri
    (fun vi (v : Formulation.var) ->
      Array.iteri (fun ci ts -> objective.(lay.x_base.(vi) + ci) <- ts) v.Formulation.ts)
    f.Formulation.vars;
  Array.iteri
    (fun pi (p : Formulation.pair) ->
      Array.iteri
        (fun ca row ->
          Array.iteri (fun cb tv -> objective.(y_col lay f pi ca cb) <- tv) row)
        p.Formulation.tv)
    f.Formulation.pairs;
  objective.(lay.vo) <- alpha;
  let rows = ref [] in
  let add coeffs rel b = rows := (coeffs, rel, b) :: !rows in
  (* (4b): one layer per segment *)
  Array.iteri
    (fun vi (v : Formulation.var) ->
      let row = Array.make n 0.0 in
      Array.iteri (fun ci _ -> row.(lay.x_base.(vi) + ci) <- 1.0) v.Formulation.cands;
      add row Simplex.Eq 1.0)
    f.Formulation.vars;
  (* (4c): edge capacity *)
  Array.iter
    (fun (r : Formulation.cap_row) ->
      let row = Array.make n 0.0 in
      List.iter (fun (vi, ci) -> row.(lay.x_base.(vi) + ci) <- 1.0) r.Formulation.members;
      add row Simplex.Le (float_of_int r.Formulation.limit))
    f.Formulation.cap_rows;
  (* (4d) relaxed with V_o: Σ y − V_o ≤ limit *)
  Array.iter
    (fun (r : Formulation.via_row) ->
      let row = Array.make n 0.0 in
      List.iter
        (fun (pi, ca, cb) -> row.(y_col lay f pi ca cb) <- 1.0)
        r.Formulation.members;
      row.(lay.vo) <- -1.0;
      add row Simplex.Le (float_of_int r.Formulation.limit))
    f.Formulation.via_rows;
  (* (4e)–(4g): y = x_a · x_b linking *)
  Array.iteri
    (fun pi (p : Formulation.pair) ->
      let na = Array.length f.Formulation.vars.(p.Formulation.a).Formulation.cands in
      let nb = Array.length f.Formulation.vars.(p.Formulation.b).Formulation.cands in
      for ca = 0 to na - 1 do
        for cb = 0 to nb - 1 do
          let y = y_col lay f pi ca cb in
          let xa = lay.x_base.(p.Formulation.a) + ca in
          let xb = lay.x_base.(p.Formulation.b) + cb in
          let r1 = Array.make n 0.0 in
          r1.(y) <- 1.0;
          r1.(xa) <- -1.0;
          add r1 Simplex.Le 0.0;
          let r2 = Array.make n 0.0 in
          r2.(y) <- 1.0;
          r2.(xb) <- -1.0;
          add r2 Simplex.Le 0.0;
          let r3 = Array.make n 0.0 in
          r3.(xa) <- 1.0;
          r3.(xb) <- 1.0;
          r3.(y) <- -1.0;
          add r3 Simplex.Le 1.0
        done
      done)
    f.Formulation.pairs;
  let binary = Array.make n true in
  binary.(lay.vo) <- false;
  Cpla_ilp.Model.create ~objective ~rows:(List.rev !rows) ~binary

let solve ~options ~alpha ?ws ?(check = fun () -> ()) (f : Formulation.t) =
  if Array.length f.Formulation.vars = 0 then Some [||]
  else
    Cpla_obs.Span.with_ ~name:"ilp/solve"
      ~args:[ ("vars", Cpla_obs.Event.Int (Array.length f.Formulation.vars)) ]
    @@ fun () ->
    Cpla_obs.Metrics.incr "ilp/solves";
    check ();
    let model = build_model ~alpha f in
    check ();
    match Cpla_ilp.Solver.solve ~options ?ws model with
    | None -> None
    | Some outcome ->
        let lay = layout f in
        let choice =
          Array.mapi
            (fun vi (v : Formulation.var) ->
              let best = ref 0 and best_x = ref neg_infinity in
              Array.iteri
                (fun ci _ ->
                  let xv = outcome.Cpla_ilp.Solver.x.(lay.x_base.(vi) + ci) in
                  if xv > !best_x then begin
                    best_x := xv;
                    best := ci
                  end)
                v.Formulation.cands;
              v.Formulation.cands.(!best))
            f.Formulation.vars
        in
        Some choice
