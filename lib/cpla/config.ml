type method_ = Sdp | Ilp

type t = {
  critical_ratio : float;
  k_div : int;
  max_segments_per_partition : int;
  method_ : method_;
  alpha : float;
  max_outer_iters : int;
  local_refinement : bool;
  boundary_coupling : bool;
  incremental : bool;
  warm_start : bool;
  workers : int;
  batch_size : int;
  ilp_options : Cpla_ilp.Solver.options;
  sdp_options : Cpla_sdp.Solver.options;
}

let default =
  {
    critical_ratio = 0.005;
    k_div = 4;
    max_segments_per_partition = 10;
    method_ = Sdp;
    alpha = 2000.0;
    max_outer_iters = 5;
    local_refinement = true;
    boundary_coupling = true;
    incremental = true;
    warm_start = true;
    workers = 1;
    batch_size = 8;
    ilp_options = { Cpla_ilp.Solver.default_options with Cpla_ilp.Solver.time_limit_s = 10.0 };
    (* tuned: post-mapping plus the local refinement only need a reliable
       *ranking* from the relaxation, which survives a smaller rank and
       looser budgets at ~4x the speed of the solver defaults *)
    sdp_options =
      {
        Cpla_sdp.Solver.default_options with
        Cpla_sdp.Solver.max_outer = 8;
        inner_iters = 100;
        rank = 6;
      };
  }
