open Cpla_route
open Cpla_timing

type report = {
  released : int array;
  iterations : int;
  partitions_solved : int;
  avg_tcp : float;
  max_tcp : float;
}

let snapshot asg released =
  Array.map
    (fun net ->
      (net, Array.mapi (fun seg _ -> Assignment.layer asg ~net ~seg) (Assignment.segments asg net)))
    released

let restore asg snap =
  Array.iter
    (fun (net, layers) ->
      Array.iteri (fun seg layer -> if layer >= 0 then Assignment.set_layer asg ~net ~seg ~layer) layers)
    snap

let score eng released =
  let avg, mx = Incremental.avg_max_tcp eng released in
  (* the paper optimises each net's critical path; the sum of path delays
     (= avg up to scale) with a max tiebreaker captures both columns *)
  avg +. (0.05 *. mx)

(* Greedy single-variable descent on the partition's own objective
   (ts + pairwise tv), respecting live edge capacity.  Cleans up the
   rounding slack the fractional→integral mapping leaves behind. *)
let local_refine asg (f : Formulation.t) =
  let graph = Assignment.graph asg in
  let nvars = Array.length f.Formulation.vars in
  let cand_index = Array.map (fun (_ : Formulation.var) -> -1) f.Formulation.vars in
  Array.iteri
    (fun vi (v : Formulation.var) ->
      let current = Assignment.layer asg ~net:v.Formulation.net ~seg:v.Formulation.seg in
      Array.iteri (fun ci l -> if l = current then cand_index.(vi) <- ci) v.Formulation.cands)
    f.Formulation.vars;
  let pairs_of = Array.make nvars [] in
  Array.iteri
    (fun pi (p : Formulation.pair) ->
      pairs_of.(p.Formulation.a) <- (pi, true) :: pairs_of.(p.Formulation.a);
      pairs_of.(p.Formulation.b) <- (pi, false) :: pairs_of.(p.Formulation.b))
    f.Formulation.pairs;
  let var_cost vi ci =
    let v = f.Formulation.vars.(vi) in
    v.Formulation.ts.(ci)
    +. List.fold_left
         (fun acc (pi, is_a) ->
           let p = f.Formulation.pairs.(pi) in
           let other = if is_a then p.Formulation.b else p.Formulation.a in
           let oc = cand_index.(other) in
           if oc < 0 then acc
           else if is_a then acc +. p.Formulation.tv.(ci).(oc)
           else acc +. p.Formulation.tv.(oc).(ci))
         0.0 pairs_of.(vi)
  in
  let changed = ref true and rounds = ref 0 in
  while !changed && !rounds < 4 do
    changed := false;
    Array.iteri
      (fun vi (v : Formulation.var) ->
        if cand_index.(vi) >= 0 then begin
          let here = var_cost vi cand_index.(vi) in
          let best = ref cand_index.(vi) and best_cost = ref here in
          Array.iteri
            (fun ci l ->
              if ci <> cand_index.(vi) then begin
                let room =
                  Array.for_all (fun e -> Cpla_grid.Graph.free graph e ~layer:l >= 1) v.Formulation.edges
                in
                if room then begin
                  let c = var_cost vi ci in
                  if c < !best_cost -. 1e-9 then begin
                    best := ci;
                    best_cost := c
                  end
                end
              end)
            v.Formulation.cands;
          if !best <> cand_index.(vi) then begin
            cand_index.(vi) <- !best;
            Assignment.set_layer asg ~net:v.Formulation.net ~seg:v.Formulation.seg
              ~layer:v.Formulation.cands.(!best);
            changed := true
          end
        end)
      f.Formulation.vars;
    incr rounds
  done

(* One solver-workspace pair per domain, shared by every batch (and by the
   sequential path) that runs on that domain.  Workspaces grow to the
   largest partition they have seen and make the partition solves
   allocation-free in steady state; solver results are independent of
   workspace reuse, so this is invisible to everything downstream. *)
let solver_slot =
  Cpla_util.Pool.Slot.create (fun () ->
      (Cpla_sdp.Solver.ws_create (), Cpla_ilp.Solver.ws_create ()))

(* Span payload for one partition-cell solve: where the cell sits in the
   quadtree and how much work it carries. *)
let cell_args (leaf : Partition.leaf) =
  [
    ("x0", Cpla_obs.Event.Int leaf.Partition.x0);
    ("y0", Cpla_obs.Event.Int leaf.Partition.y0);
    ("depth", Cpla_obs.Event.Int leaf.Partition.depth);
    ("segments", Cpla_obs.Event.Int (List.length leaf.Partition.items));
  ]

let solve_leaf_body config eng asg ?check (leaf : Partition.leaf) =
  (* Freeze the coefficients of the nets touching this partition at the
     current assignment so later partitions see the effect of earlier ones
     within the same sweep (Section 3.2: "newly updated assignment results
     of neighboring partitions benefit each current partition").  The engine
     re-analyses only nets dirtied by earlier leaves; the snapshot must be
     taken before the release below unassigns this leaf's segments. *)
  let infos = Hashtbl.create 16 in
  List.sort_uniq compare (List.map (fun it -> it.Partition.net) leaf.Partition.items)
  |> List.iter (fun net -> Hashtbl.replace infos net (Incremental.path_info eng net));
  (* release this partition's segments, rebuild their coefficients, solve *)
  List.iter
    (fun { Partition.net; seg; _ } -> Assignment.unassign asg ~net ~seg)
    leaf.Partition.items;
  let f =
    Formulation.build ~boundary_coupling:config.Config.boundary_coupling asg
      ~infos:(Hashtbl.find infos) ~items:leaf.Partition.items
  in
  (* Uncoupled partitions (no shared capacity rows, no intra-partition via
     pairs) decompose exactly: each segment independently takes its cheapest
     layer.  This covers the many sparse leaves quickly for both methods. *)
  if Array.length f.Formulation.pairs = 0 && Array.length f.Formulation.cap_rows = 0 then
    Array.iter
      (fun (v : Formulation.var) ->
        let best = ref 0 in
        Array.iteri (fun ci ts -> if ts < v.Formulation.ts.(!best) then best := ci) v.Formulation.ts;
        Assignment.set_layer asg ~net:v.Formulation.net ~seg:v.Formulation.seg
          ~layer:v.Formulation.cands.(!best))
      f.Formulation.vars
  else
  let sdp_ws, ilp_ws = Cpla_util.Pool.Slot.get solver_slot in
  match config.Config.method_ with
  | Config.Sdp ->
      let x = Sdp_method.solve ~options:config.Config.sdp_options ~ws:sdp_ws ?check f in
      Post_map.run asg ~vars:f.Formulation.vars ~x;
      if config.Config.local_refinement then local_refine asg f
  | Config.Ilp -> (
      match
        Ilp_method.solve ~options:config.Config.ilp_options ~alpha:config.Config.alpha
          ~ws:ilp_ws ?check f
      with
      | Some layers ->
          Array.iteri
            (fun vi layer ->
              let v = f.Formulation.vars.(vi) in
              Assignment.set_layer asg ~net:v.Formulation.net ~seg:v.Formulation.seg ~layer)
            layers
      | None ->
          (* budget exhausted with no incumbent: fall back to the mapping
             with uniform fractional values (capacity-driven greedy) *)
          Post_map.run asg ~vars:f.Formulation.vars ~x:(fun _ _ -> 0.5))

let solve_leaf config eng asg ?check leaf =
  Cpla_obs.Span.with_ ~name:"driver/cell" ~args:(cell_args leaf) (fun () ->
      solve_leaf_body config eng asg ?check leaf)

(* Parallel sweep (the paper's OpenMP scheme): freeze coefficients once,
   release every partition's segments, build all subproblems against the
   others-only capacity view, solve them concurrently on a domain pool
   (solvers are pure given their formulation), then commit partition by
   partition in deterministic order. *)
let solve_leaves_parallel config eng asg ?check leaves =
  (* Freeze every released net's coefficients once, before any release. *)
  let infos = Hashtbl.create 64 in
  List.iter
    (fun (leaf : Partition.leaf) ->
      List.iter
        (fun { Partition.net; _ } ->
          if not (Hashtbl.mem infos net) then
            Hashtbl.replace infos net (Incremental.path_info eng net))
        leaf.Partition.items)
    leaves;
  List.iter
    (fun (leaf : Partition.leaf) ->
      List.iter
        (fun { Partition.net; seg; _ } -> Assignment.unassign asg ~net ~seg)
        leaf.Partition.items)
    leaves;
  let formulations =
    Array.of_list
      (List.map
         (fun leaf ->
           ( leaf,
             Formulation.build ~boundary_coupling:config.Config.boundary_coupling asg
               ~infos:(Hashtbl.find infos) ~items:leaf.Partition.items ))
         leaves)
  in
  let solve_one ~sdp_ws ~ilp_ws (f : Formulation.t) =
    if Array.length f.Formulation.pairs = 0 && Array.length f.Formulation.cap_rows = 0 then
      (* uncoupled: exact per-segment argmin, same fast path as sequential *)
      `Layers
        (Some
           (Array.map
              (fun (v : Formulation.var) ->
                let best = ref 0 in
                Array.iteri
                  (fun ci ts -> if ts < v.Formulation.ts.(!best) then best := ci)
                  v.Formulation.ts;
                v.Formulation.cands.(!best))
              f.Formulation.vars))
    else
      match config.Config.method_ with
      | Config.Sdp ->
          let x = Sdp_method.solve ~options:config.Config.sdp_options ~ws:sdp_ws ?check f in
          `Fractional x
      | Config.Ilp ->
          `Layers
            (Ilp_method.solve ~options:config.Config.ilp_options ~alpha:config.Config.alpha
               ~ws:ilp_ws ?check f)
  in
  (* Batched fan-out: bucket the subproblems by size class (power-of-two
     class of the total candidate count), keep input order within a bucket,
     and chunk each bucket into batches of at most [batch_size].  One pool
     task per batch: same-shaped solves share one per-domain workspace with
     no intervening growth, and scheduling overhead is paid per batch
     instead of per cell.  Solvers are pure given their formulation, so
     batching changes scheduling granularity only. *)
  let size_class (f : Formulation.t) =
    let total =
      Array.fold_left
        (fun a (v : Formulation.var) -> a + Array.length v.Formulation.cands)
        0 f.Formulation.vars
    in
    let c = ref 0 and t = ref total in
    while !t > 1 do
      incr c;
      t := !t lsr 1
    done;
    !c
  in
  let classes = Array.map (fun (_, f) -> size_class f) formulations in
  let batches =
    let acc = ref [] in
    let max_class = Array.fold_left max 0 classes in
    let bs = max 1 config.Config.batch_size in
    for cls = 0 to max_class do
      let idxs = ref [] in
      Array.iteri (fun i c -> if c = cls then idxs := i :: !idxs) classes;
      let idxs = Array.of_list (List.rev !idxs) in
      let n = Array.length idxs in
      for b = 0 to ((n + bs - 1) / bs) - 1 do
        let lo = b * bs in
        acc := (cls, Array.sub idxs lo (min n (lo + bs) - lo)) :: !acc
      done
    done;
    Array.of_list (List.rev !acc)
  in
  let solve_batch (cls, batch) =
    (* per-domain workspaces, fetched once per batch on the worker domain *)
    let sdp_ws, ilp_ws = Cpla_util.Pool.Slot.get solver_slot in
    Cpla_obs.Metrics.observe ~lo:0.0 ~hi:64.0 ~bins:16 "driver/batch-size"
      (float_of_int (Array.length batch));
    Cpla_obs.Span.with_ ~name:"driver/batch"
      ~args:
        [
          ("bucket", Cpla_obs.Event.Int cls);
          ("partitions", Cpla_obs.Event.Int (Array.length batch));
        ]
      (fun () ->
        Array.map
          (fun i ->
            (* cancellation stays cooperative between cells of a batch *)
            (match check with Some f -> f () | None -> ());
            let leaf, f = formulations.(i) in
            Cpla_obs.Span.with_ ~name:"driver/cell" ~args:(cell_args leaf) (fun () ->
                solve_one ~sdp_ws ~ilp_ws f))
          batch)
  in
  let per_batch =
    Cpla_util.Pool.parallel_map ~workers:config.Config.workers solve_batch batches
  in
  let solutions = Array.make (Array.length formulations) None in
  Array.iteri
    (fun bi (_, batch) ->
      Array.iteri (fun k i -> solutions.(i) <- Some per_batch.(bi).(k)) batch)
    batches;
  (* commit in formulation (input) order, exactly as the unbatched sweep *)
  Array.iteri
    (fun i (_, f) ->
      match solutions.(i) with
      | Some (`Fractional x) ->
          Post_map.run asg ~vars:f.Formulation.vars ~x;
          if config.Config.local_refinement then local_refine asg f
      | Some (`Layers (Some layers)) ->
          Array.iteri
            (fun vi layer ->
              let v = f.Formulation.vars.(vi) in
              Assignment.set_layer asg ~net:v.Formulation.net ~seg:v.Formulation.seg ~layer)
            layers
      | Some (`Layers None) -> Post_map.run asg ~vars:f.Formulation.vars ~x:(fun _ _ -> 0.5)
      | None -> invalid_arg "Driver.solve_leaves_parallel: unsolved cell")
    formulations

let optimize_released ?(config = Config.default) ?engine ?check asg ~released =
  let poll = match check with Some f -> f | None -> fun () -> () in
  if not (Assignment.fully_assigned asg) then
    invalid_arg "Driver.optimize: initial assignment incomplete";
  if Array.length released = 0 then
    (* nothing to optimise; avoid seeding scores/metrics from an empty set *)
    { released; iterations = 0; partitions_solved = 0; avg_tcp = 0.0; max_tcp = 0.0 }
  else begin
    let eng =
      match engine with
      | Some e ->
          if Incremental.assignment e != asg then
            invalid_arg "Driver.optimize: engine bound to a different assignment";
          e
      | None -> Incremental.create asg
    in
    let graph = Assignment.graph asg in
    let width = Cpla_grid.Graph.width graph and height = Cpla_grid.Graph.height graph in
    let iterations = ref 0 and partitions = ref 0 in
    let best_score = ref (score eng released) in
    let stop = ref false in
    while (not !stop) && !iterations < config.Config.max_outer_iters do
      poll ();
      Cpla_obs.Span.with_ ~name:"driver/iteration"
        ~args:[ ("iter", Cpla_obs.Event.Int !iterations) ]
        (fun () ->
          let snap = snapshot asg released in
          (* Cancellation (or any solver failure) mid-iteration can leave
             released segments between unassign and re-assign; restoring the
             iteration-entry snapshot before re-raising hands the caller a
             consistent state it can still measure (partial metrics). *)
          (try
             let items =
               Array.to_list released
               |> List.concat_map (fun net ->
                      Array.to_list
                        (Array.mapi
                           (fun seg s -> { Partition.net; seg; mid = Segment.midpoint s })
                           (Assignment.segments asg net)))
             in
             let leaves =
               Cpla_obs.Span.with_ ~name:"driver/partition"
                 ~args:[ ("items", Cpla_obs.Event.Int (List.length items)) ]
                 (fun () ->
                   Partition.build ~width ~height ~k:config.Config.k_div
                     ~max_segments:config.Config.max_segments_per_partition items)
             in
             Cpla_obs.Metrics.incr ~by:(List.length leaves) "driver/cells";
             if config.Config.workers > 1 then begin
               solve_leaves_parallel config eng asg ?check leaves;
               partitions := !partitions + List.length leaves
             end
             else
               List.iter
                 (fun leaf ->
                   poll ();
                   solve_leaf config eng asg ?check leaf;
                   incr partitions)
                 leaves
           with e ->
             restore asg snap;
             raise e);
          incr iterations;
          Cpla_obs.Metrics.incr "driver/iterations";
          (* only nets the leaves actually moved are re-analysed here *)
          let s = score eng released in
          Cpla_obs.Metrics.set "driver/score" s;
          if s < !best_score -. (1e-6 *. Float.abs !best_score) then best_score := s
          else begin
            if s > !best_score then restore asg snap;
            stop := true
          end)
    done;
    let avg_tcp, max_tcp = Incremental.avg_max_tcp eng released in
    { released; iterations = !iterations; partitions_solved = !partitions; avg_tcp; max_tcp }
  end

let optimize ?(config = Config.default) ?check asg =
  let engine = Incremental.create asg in
  let released = Incremental.select engine ~ratio:config.Config.critical_ratio in
  optimize_released ~config ~engine ?check asg ~released
