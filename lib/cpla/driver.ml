open Cpla_route
open Cpla_timing

type report = {
  released : int array;
  iterations : int;
  partitions_solved : int;
  avg_tcp : float;
  max_tcp : float;
}

let snapshot asg released =
  Array.map
    (fun net ->
      (net, Array.mapi (fun seg _ -> Assignment.layer asg ~net ~seg) (Assignment.segments asg net)))
    released

let restore asg snap =
  Array.iter
    (fun (net, layers) ->
      Array.iteri (fun seg layer -> if layer >= 0 then Assignment.set_layer asg ~net ~seg ~layer) layers)
    snap

let score eng released =
  let avg, mx = Incremental.avg_max_tcp eng released in
  (* the paper optimises each net's critical path; the sum of path delays
     (= avg up to scale) with a max tiebreaker captures both columns *)
  avg +. (0.05 *. mx)

(* Greedy single-variable descent on the partition's own objective
   (ts + pairwise tv), respecting live edge capacity.  Cleans up the
   rounding slack the fractional→integral mapping leaves behind. *)
let local_refine asg (f : Formulation.t) =
  let graph = Assignment.graph asg in
  let nvars = Array.length f.Formulation.vars in
  let cand_index = Array.map (fun (_ : Formulation.var) -> -1) f.Formulation.vars in
  Array.iteri
    (fun vi (v : Formulation.var) ->
      let current = Assignment.layer asg ~net:v.Formulation.net ~seg:v.Formulation.seg in
      Array.iteri (fun ci l -> if l = current then cand_index.(vi) <- ci) v.Formulation.cands)
    f.Formulation.vars;
  let pairs_of = Array.make nvars [] in
  Array.iteri
    (fun pi (p : Formulation.pair) ->
      pairs_of.(p.Formulation.a) <- (pi, true) :: pairs_of.(p.Formulation.a);
      pairs_of.(p.Formulation.b) <- (pi, false) :: pairs_of.(p.Formulation.b))
    f.Formulation.pairs;
  let var_cost vi ci =
    let v = f.Formulation.vars.(vi) in
    v.Formulation.ts.(ci)
    +. List.fold_left
         (fun acc (pi, is_a) ->
           let p = f.Formulation.pairs.(pi) in
           let other = if is_a then p.Formulation.b else p.Formulation.a in
           let oc = cand_index.(other) in
           if oc < 0 then acc
           else if is_a then acc +. p.Formulation.tv.(ci).(oc)
           else acc +. p.Formulation.tv.(oc).(ci))
         0.0 pairs_of.(vi)
  in
  let changed = ref true and rounds = ref 0 in
  while !changed && !rounds < 4 do
    changed := false;
    Array.iteri
      (fun vi (v : Formulation.var) ->
        if cand_index.(vi) >= 0 then begin
          let here = var_cost vi cand_index.(vi) in
          let best = ref cand_index.(vi) and best_cost = ref here in
          Array.iteri
            (fun ci l ->
              if ci <> cand_index.(vi) then begin
                let room =
                  Array.for_all (fun e -> Cpla_grid.Graph.free graph e ~layer:l >= 1) v.Formulation.edges
                in
                if room then begin
                  let c = var_cost vi ci in
                  if c < !best_cost -. 1e-9 then begin
                    best := ci;
                    best_cost := c
                  end
                end
              end)
            v.Formulation.cands;
          if !best <> cand_index.(vi) then begin
            cand_index.(vi) <- !best;
            Assignment.set_layer asg ~net:v.Formulation.net ~seg:v.Formulation.seg
              ~layer:v.Formulation.cands.(!best);
            changed := true
          end
        end)
      f.Formulation.vars;
    incr rounds
  done

(* One solver-workspace pair per domain, shared by every batch (and by the
   sequential path) that runs on that domain.  Workspaces grow to the
   largest partition they have seen and make the partition solves
   allocation-free in steady state; solver results are independent of
   workspace reuse, so this is invisible to everything downstream. *)
let solver_slot =
  Cpla_util.Pool.Slot.create (fun () ->
      (Cpla_sdp.Solver.ws_create (), Cpla_ilp.Solver.ws_create ()))

(* Span payload for one partition-cell solve: where the cell sits in the
   quadtree and how much work it carries. *)
let cell_args (leaf : Partition.leaf) =
  [
    ("x0", Cpla_obs.Event.Int leaf.Partition.x0);
    ("y0", Cpla_obs.Event.Int leaf.Partition.y0);
    ("depth", Cpla_obs.Event.Int leaf.Partition.depth);
    ("segments", Cpla_obs.Event.Int (List.length leaf.Partition.items));
  ]

let poll_check check = match check with Some f -> f () | None -> ()

(* Uncoupled partitions (no shared capacity rows, no intra-partition via
   pairs) decompose exactly: each segment independently takes its cheapest
   layer.  This covers the many sparse leaves quickly for both methods. *)
let uncoupled (f : Formulation.t) =
  Array.length f.Formulation.pairs = 0 && Array.length f.Formulation.cap_rows = 0

let argmin_layers (f : Formulation.t) =
  Array.map
    (fun (v : Formulation.var) ->
      let best = ref 0 in
      Array.iteri (fun ci ts -> if ts < v.Formulation.ts.(!best) then best := ci) v.Formulation.ts;
      v.Formulation.cands.(!best))
    f.Formulation.vars

(* Bucket subproblem indices by the power-of-two class of their candidate
   count, keep input order within a bucket, and chunk each bucket into
   batches of at most [batch_size].  Same-shaped solves then share one
   per-domain workspace with no intervening growth, and scheduling overhead
   is paid per batch instead of per cell. *)
let size_class (f : Formulation.t) =
  let total =
    Array.fold_left
      (fun a (v : Formulation.var) -> a + Array.length v.Formulation.cands)
      0 f.Formulation.vars
  in
  let c = ref 0 and t = ref total in
  while !t > 1 do
    incr c;
    t := !t lsr 1
  done;
  !c

let size_batches ~batch_size classes =
  let acc = ref [] in
  let max_class = Array.fold_left max 0 classes in
  let bs = max 1 batch_size in
  for cls = 0 to max_class do
    let idxs = ref [] in
    Array.iteri (fun i c -> if c = cls then idxs := i :: !idxs) classes;
    let idxs = Array.of_list (List.rev !idxs) in
    let n = Array.length idxs in
    for b = 0 to ((n + bs - 1) / bs) - 1 do
      let lo = b * bs in
      acc := (cls, Array.sub idxs lo (min n (lo + bs) - lo)) :: !acc
    done
  done;
  Array.of_list (List.rev !acc)

let solve_leaf_body config eng asg ?check (leaf : Partition.leaf) =
  (* Freeze the coefficients of the nets touching this partition at the
     current assignment so later partitions see the effect of earlier ones
     within the same sweep (Section 3.2: "newly updated assignment results
     of neighboring partitions benefit each current partition").  The engine
     re-analyses only nets dirtied by earlier leaves; the snapshot must be
     taken before the release below unassigns this leaf's segments. *)
  let infos = Hashtbl.create 16 in
  List.sort_uniq compare (List.map (fun it -> it.Partition.net) leaf.Partition.items)
  |> List.iter (fun net -> Hashtbl.replace infos net (Incremental.path_info eng net));
  (* release this partition's segments, rebuild their coefficients, solve *)
  List.iter
    (fun { Partition.net; seg; _ } -> Assignment.unassign asg ~net ~seg)
    leaf.Partition.items;
  let f =
    Formulation.build ~boundary_coupling:config.Config.boundary_coupling asg
      ~infos:(Hashtbl.find infos) ~items:leaf.Partition.items
  in
  if uncoupled f then begin
    (* even a sweep dominated by sparse leaves must stay cancellable *)
    poll_check check;
    Array.iteri
      (fun vi layer ->
        let v = f.Formulation.vars.(vi) in
        Assignment.set_layer asg ~net:v.Formulation.net ~seg:v.Formulation.seg ~layer)
      (argmin_layers f)
  end
  else
  let sdp_ws, ilp_ws = Cpla_util.Pool.Slot.get solver_slot in
  match config.Config.method_ with
  | Config.Sdp ->
      let x = Sdp_method.solve ~options:config.Config.sdp_options ~ws:sdp_ws ?check f in
      Post_map.run asg ~vars:f.Formulation.vars ~x;
      if config.Config.local_refinement then local_refine asg f
  | Config.Ilp -> (
      match
        Ilp_method.solve ~options:config.Config.ilp_options ~alpha:config.Config.alpha
          ~ws:ilp_ws ?check f
      with
      | Some layers ->
          Array.iteri
            (fun vi layer ->
              let v = f.Formulation.vars.(vi) in
              Assignment.set_layer asg ~net:v.Formulation.net ~seg:v.Formulation.seg ~layer)
            layers
      | None ->
          (* budget exhausted with no incumbent: fall back to the mapping
             with uniform fractional values (capacity-driven greedy) *)
          Post_map.run asg ~vars:f.Formulation.vars ~x:(fun _ _ -> 0.5))

let solve_leaf config eng asg ?check leaf =
  Cpla_obs.Span.with_ ~name:"driver/cell" ~args:(cell_args leaf) (fun () ->
      solve_leaf_body config eng asg ?check leaf)

(* Parallel sweep (the paper's OpenMP scheme): freeze coefficients once,
   release every partition's segments, build all subproblems against the
   others-only capacity view, solve them concurrently on a domain pool
   (solvers are pure given their formulation), then commit partition by
   partition in deterministic order. *)
let solve_leaves_parallel config eng asg ?check leaves =
  (* Freeze every released net's coefficients once, before any release. *)
  let infos = Hashtbl.create 64 in
  List.iter
    (fun (leaf : Partition.leaf) ->
      List.iter
        (fun { Partition.net; _ } ->
          if not (Hashtbl.mem infos net) then
            Hashtbl.replace infos net (Incremental.path_info eng net))
        leaf.Partition.items)
    leaves;
  List.iter
    (fun (leaf : Partition.leaf) ->
      List.iter
        (fun { Partition.net; seg; _ } -> Assignment.unassign asg ~net ~seg)
        leaf.Partition.items)
    leaves;
  let formulations =
    Array.of_list
      (List.map
         (fun leaf ->
           ( leaf,
             Formulation.build ~boundary_coupling:config.Config.boundary_coupling asg
               ~infos:(Hashtbl.find infos) ~items:leaf.Partition.items ))
         leaves)
  in
  let solve_one ~sdp_ws ~ilp_ws (f : Formulation.t) =
    if uncoupled f then begin
      (* exact per-segment argmin, same (cancellable) fast path as sequential *)
      poll_check check;
      `Layers (Some (argmin_layers f))
    end
    else
      match config.Config.method_ with
      | Config.Sdp ->
          let x = Sdp_method.solve ~options:config.Config.sdp_options ~ws:sdp_ws ?check f in
          `Fractional x
      | Config.Ilp ->
          `Layers
            (Ilp_method.solve ~options:config.Config.ilp_options ~alpha:config.Config.alpha
               ~ws:ilp_ws ?check f)
  in
  (* Batched fan-out: one pool task per size-class batch; solvers are pure
     given their formulation, so batching changes scheduling granularity
     only. *)
  let classes = Array.map (fun (_, f) -> size_class f) formulations in
  let batches = size_batches ~batch_size:config.Config.batch_size classes in
  let solve_batch (cls, batch) =
    (* per-domain workspaces, fetched once per batch on the worker domain *)
    let sdp_ws, ilp_ws = Cpla_util.Pool.Slot.get solver_slot in
    Cpla_obs.Metrics.observe ~lo:0.0 ~hi:64.0 ~bins:16 "driver/batch-size"
      (float_of_int (Array.length batch));
    Cpla_obs.Span.with_ ~name:"driver/batch"
      ~args:
        [
          ("bucket", Cpla_obs.Event.Int cls);
          ("partitions", Cpla_obs.Event.Int (Array.length batch));
        ]
      (fun () ->
        Array.map
          (fun i ->
            (* cancellation stays cooperative between cells of a batch *)
            poll_check check;
            let leaf, f = formulations.(i) in
            Cpla_obs.Span.with_ ~name:"driver/cell" ~args:(cell_args leaf) (fun () ->
                solve_one ~sdp_ws ~ilp_ws f))
          batch)
  in
  let per_batch =
    Cpla_util.Pool.parallel_map ~workers:config.Config.workers solve_batch batches
  in
  let solutions = Array.make (Array.length formulations) None in
  Array.iteri
    (fun bi (_, batch) ->
      Array.iteri (fun k i -> solutions.(i) <- Some per_batch.(bi).(k)) batch)
    batches;
  (* commit in formulation (input) order, exactly as the unbatched sweep *)
  Array.iteri
    (fun i (_, f) ->
      match solutions.(i) with
      | Some (`Fractional x) ->
          Post_map.run asg ~vars:f.Formulation.vars ~x;
          if config.Config.local_refinement then local_refine asg f
      | Some (`Layers (Some layers)) ->
          Array.iteri
            (fun vi layer ->
              let v = f.Formulation.vars.(vi) in
              Assignment.set_layer asg ~net:v.Formulation.net ~seg:v.Formulation.seg ~layer)
            layers
      | Some (`Layers None) -> Post_map.run asg ~vars:f.Formulation.vars ~x:(fun _ _ -> 0.5)
      | None -> invalid_arg "Driver.solve_leaves_parallel: unsolved cell")
    formulations

(* ---- incremental sweeps ---------------------------------------------------

   The dirty-partition scheduler.  The partition structure is a pure
   function of the released segments' midpoints, which never move (2-D
   routes are fixed; only layers change), so the quadtree is built once per
   run and leaves keep stable indices.  A leaf's subproblem inputs are

     - its nets' path coefficients (per-net Elmore state: a function of
       that net's own layers),
     - free capacity on the grid edges its segments cover, and via
       pressure at the tiles those edges touch (changed only by segments
       covering the same edges/tiles — 2-D coverage is fixed, so the
       edge/tile footprint of every leaf is static), and
     - the layers of same-net tree-adjacent segments outside the leaf
       (boundary coupling).

   Hence after a sweep commits, the only leaves whose next solve could
   differ from their previous one are: leaves sharing a net with a changed
   net, plus leaves sharing a grid tile (which subsumes sharing an edge)
   with a leaf whose own segments changed.  Everything else is skipped and
   keeps its layers verbatim — with warm starts off, the committed layers
   are identical to the from-scratch sweep's, partition by partition.

   Warm starts keep each leaf's previous Burer–Monteiro factor (leaf-keyed
   and read/written only between solves on the orchestrating side, so
   results are independent of worker count) and seed the next SDP solve
   from it; a stalled warm solve retries cold inside Sdp_method.

   The optional solve cache is looked up before every coupled SDP solve
   and fed with cold-start solves only (a warm-started result depends on
   solve history and would make cache contents order-dependent).  A hit
   returns exactly what a cold solve of the canonically identical problem
   would, so with warm starts off the cache is invisible to results. *)
module Incr = struct
  type sol = Frac of float array array | Lay of int array option

  type memo = {
    mutable mf : Formulation.t option;
    mutable msol : sol option;
    mutable factor : float array option;
  }

  type t = {
    config : Config.t;
    eng : Incremental.t;
    asg : Assignment.t;
    released : int array;
    leaves : Partition.leaf array;
    leaf_of : (int * int, int) Hashtbl.t;  (* (net, seg) → leaf index *)
    net_leaves : (int, int list) Hashtbl.t;
    adj : int array array;  (* leaves sharing a grid tile, self excluded *)
    dirty : bool array;
    memo : memo array;
    cache : Solve_cache.t option;
  }

  let leaf_count t = Array.length t.leaves
  let dirty_count t = Array.fold_left (fun a d -> if d then a + 1 else a) 0 t.dirty

  let create ?solve_cache ~config ~engine asg ~released =
    let graph = Assignment.graph asg in
    let width = Cpla_grid.Graph.width graph and height = Cpla_grid.Graph.height graph in
    let items =
      Array.to_list released
      |> List.concat_map (fun net ->
             Array.to_list
               (Array.mapi
                  (fun seg s -> { Partition.net; seg; mid = Segment.midpoint s })
                  (Assignment.segments asg net)))
    in
    let leaves =
      Array.of_list
        (Cpla_obs.Span.with_ ~name:"driver/partition"
           ~args:[ ("items", Cpla_obs.Event.Int (List.length items)) ]
           (fun () ->
             Partition.build ~width ~height ~k:config.Config.k_div
               ~max_segments:config.Config.max_segments_per_partition items))
    in
    let n = Array.length leaves in
    let leaf_of = Hashtbl.create (max 16 (4 * n)) in
    let net_leaves = Hashtbl.create 64 in
    Array.iteri
      (fun li (leaf : Partition.leaf) ->
        List.iter
          (fun it ->
            Hashtbl.replace leaf_of (it.Partition.net, it.Partition.seg) li;
            let prev =
              Option.value ~default:[] (Hashtbl.find_opt net_leaves it.Partition.net)
            in
            if not (List.mem li prev) then
              Hashtbl.replace net_leaves it.Partition.net (li :: prev))
          leaf.Partition.items)
      leaves;
    (* Static tile footprint per leaf: the endpoints of every grid edge its
       segments cover.  Leaves cohabiting a tile are capacity/via
       neighbours (sharing an edge implies sharing its endpoint tiles, so
       tile cohabitation subsumes edge sharing). *)
    let tile_leaves = Hashtbl.create 256 in
    Array.iteri
      (fun li (leaf : Partition.leaf) ->
        List.iter
          (fun it ->
            let s = (Assignment.segments asg it.Partition.net).(it.Partition.seg) in
            Array.iter
              (fun (e : Cpla_grid.Graph.edge2d) ->
                let add tile =
                  (* leaves are visited in ascending order, so a bucket
                     headed by [li] already records this leaf *)
                  match Hashtbl.find_opt tile_leaves tile with
                  | Some (l :: _) when l = li -> ()
                  | prev ->
                      Hashtbl.replace tile_leaves tile
                        (li :: Option.value ~default:[] prev)
                in
                add (e.Cpla_grid.Graph.x, e.Cpla_grid.Graph.y);
                add
                  (match e.Cpla_grid.Graph.dir with
                  | Cpla_grid.Tech.Horizontal ->
                      (e.Cpla_grid.Graph.x + 1, e.Cpla_grid.Graph.y)
                  | Cpla_grid.Tech.Vertical -> (e.Cpla_grid.Graph.x, e.Cpla_grid.Graph.y + 1)))
              s.Segment.edges)
          leaf.Partition.items)
      leaves;
    let adj_sets = Array.make n [] in
    Hashtbl.iter
      (fun _ ls ->
        List.iter
          (fun a -> List.iter (fun b -> if a <> b then adj_sets.(a) <- b :: adj_sets.(a)) ls)
          ls)
      tile_leaves;
    let adj = Array.map (fun l -> Array.of_list (List.sort_uniq compare l)) adj_sets in
    {
      config;
      eng = engine;
      asg;
      released;
      leaves;
      leaf_of;
      net_leaves;
      adj;
      dirty = Array.make n true;
      memo = Array.init n (fun _ -> { mf = None; msol = None; factor = None });
      cache = solve_cache;
    }

  let mark_changes t ~changed_leaves ~changed_nets =
    List.iter
      (fun net ->
        List.iter
          (fun li -> t.dirty.(li) <- true)
          (Option.value ~default:[] (Hashtbl.find_opt t.net_leaves net)))
      changed_nets;
    List.iter
      (fun li -> Array.iter (fun k -> t.dirty.(k) <- true) t.adj.(li))
      changed_leaves

  let mark_net_dirty t net =
    match Hashtbl.find_opt t.net_leaves net with
    | None -> ()
    | Some ls ->
        List.iter
          (fun li ->
            t.dirty.(li) <- true;
            Array.iter (fun k -> t.dirty.(k) <- true) t.adj.(li))
          ls

  (* Solve one coupled-or-not formulation: cache lookup first, then a
     (possibly warm-started) solve.  Returns the solution, the fresh warm
     factor if one was produced, and the cache entry to store if the solve
     was cold. *)
  let solve_formulation config cache ?check ~sdp_ws ~ilp_ws ~v0 (f : Formulation.t) =
    if uncoupled f then begin
      poll_check check;
      (Lay (Some (argmin_layers f)), None, None)
    end
    else
      match config.Config.method_ with
      | Config.Sdp -> (
          let options = config.Config.sdp_options in
          let key =
            match cache with
            | Some _ -> Some (Solve_cache.key ~options (Formulation.digest f))
            | None -> None
          in
          let hit =
            match (cache, key) with
            | Some c, Some k -> Solve_cache.find c k
            | _ -> None
          in
          match hit with
          | Some frac -> (Frac frac, None, None)
          | None ->
              let sol = Sdp_method.solve_fractional ~options ~ws:sdp_ws ?v0 ?check f in
              let store =
                match (key, v0) with
                | Some k, None -> Some (k, sol.Sdp_method.frac)
                | _ -> None
              in
              (Frac sol.Sdp_method.frac, Some sol.Sdp_method.factor, store))
      | Config.Ilp ->
          ( Lay
              (Ilp_method.solve ~options:config.Config.ilp_options ~alpha:config.Config.alpha
                 ~ws:ilp_ws ?check f),
            None,
            None )

  let commit config asg (f : Formulation.t) = function
    | Frac frac ->
        Post_map.run asg ~vars:f.Formulation.vars ~x:(fun vi ci -> frac.(vi).(ci));
        if config.Config.local_refinement then local_refine asg f
    | Lay (Some layers) ->
        Array.iteri
          (fun vi layer ->
            let v = f.Formulation.vars.(vi) in
            Assignment.set_layer asg ~net:v.Formulation.net ~seg:v.Formulation.seg ~layer)
          layers
    | Lay None -> Post_map.run asg ~vars:f.Formulation.vars ~x:(fun _ _ -> 0.5)

  (* Memo updates and cache stores happen on the orchestrating side only:
     leaf-keyed warm factors keep results independent of the worker count,
     and deferring stores keeps the cache frozen while a parallel sweep's
     workers look it up. *)
  let record_dirty_solve t li f sol factor store =
    let m = t.memo.(li) in
    m.mf <- Some f;
    m.msol <- Some sol;
    (match factor with Some v -> m.factor <- Some v | None -> ());
    match (store, t.cache) with
    | Some (k, frac), Some c -> Solve_cache.store c k frac
    | _ -> ()

  (* Sequential sweep: dirty leaves are released/re-solved one at a time
     against the live grid, exactly like the from-scratch sequential sweep
     — clean leaves are not touched at all.  A leaf whose commit changed
     layers immediately re-dirties its net and tile neighbours, so leaves
     later in the order are re-solved within this very sweep (matching the
     from-scratch within-sweep propagation); earlier ones wait for the
     next sweep (from-scratch would not see the change until then
     either). *)
  let sweep_sequential ?check t =
    let config = t.config in
    let solved = ref 0 in
    Array.iteri
      (fun li (leaf : Partition.leaf) ->
        if t.dirty.(li) then begin
          poll_check check;
          let pre =
            List.map
              (fun it -> Assignment.layer t.asg ~net:it.Partition.net ~seg:it.Partition.seg)
              leaf.Partition.items
          in
          Cpla_obs.Span.with_ ~name:"driver/cell" ~args:(cell_args leaf) (fun () ->
              let infos = Hashtbl.create 16 in
              List.sort_uniq compare
                (List.map (fun it -> it.Partition.net) leaf.Partition.items)
              |> List.iter (fun net ->
                     Hashtbl.replace infos net (Incremental.path_info t.eng net));
              List.iter
                (fun { Partition.net; seg; _ } -> Assignment.unassign t.asg ~net ~seg)
                leaf.Partition.items;
              let f =
                Formulation.build ~boundary_coupling:config.Config.boundary_coupling t.asg
                  ~infos:(Hashtbl.find infos) ~items:leaf.Partition.items
              in
              let v0 = if config.Config.warm_start then t.memo.(li).factor else None in
              let sdp_ws, ilp_ws = Cpla_util.Pool.Slot.get solver_slot in
              let sol, factor, store =
                solve_formulation config t.cache ?check ~sdp_ws ~ilp_ws ~v0 f
              in
              commit config t.asg f sol;
              record_dirty_solve t li f sol factor store);
          incr solved;
          t.dirty.(li) <- false;
          let changed_nets =
            List.map2
              (fun it pre_layer ->
                if Assignment.layer t.asg ~net:it.Partition.net ~seg:it.Partition.seg
                   <> pre_layer
                then Some it.Partition.net
                else None)
              leaf.Partition.items pre
            |> List.filter_map Fun.id |> List.sort_uniq compare
          in
          if changed_nets <> [] then mark_changes t ~changed_leaves:[ li ] ~changed_nets
        end)
      t.leaves;
    !solved

  (* Parallel sweep: reproduce the from-scratch parallel scheme exactly —
     freeze coefficients for the dirty nets, release *every* leaf (so
     builds and commits see the same others-only capacity view), but build
     and solve only the dirty leaves; clean leaves recommit their memoized
     (formulation, solution) through the same deterministic mapping.  The
     build-time capacity view in this scheme is the non-released usage
     only, which never changes across sweeps, so a clean leaf's memoized
     formulation is bitwise the one a rebuild would produce. *)
  let sweep_parallel ?check t =
    let config = t.config in
    let n = Array.length t.leaves in
    let dirty_idx = ref [] in
    for li = n - 1 downto 0 do
      if t.dirty.(li) then dirty_idx := li :: !dirty_idx
    done;
    let dirty_idx = Array.of_list !dirty_idx in
    let pre = snapshot t.asg t.released in
    let infos = Hashtbl.create 64 in
    Array.iter
      (fun li ->
        List.iter
          (fun { Partition.net; _ } ->
            if not (Hashtbl.mem infos net) then
              Hashtbl.replace infos net (Incremental.path_info t.eng net))
          t.leaves.(li).Partition.items)
      dirty_idx;
    Array.iter
      (fun (leaf : Partition.leaf) ->
        List.iter
          (fun { Partition.net; seg; _ } -> Assignment.unassign t.asg ~net ~seg)
          leaf.Partition.items)
      t.leaves;
    let formulations =
      Array.map
        (fun li ->
          ( li,
            Formulation.build ~boundary_coupling:config.Config.boundary_coupling t.asg
              ~infos:(Hashtbl.find infos) ~items:t.leaves.(li).Partition.items ))
        dirty_idx
    in
    let classes = Array.map (fun (_, f) -> size_class f) formulations in
    let batches = size_batches ~batch_size:config.Config.batch_size classes in
    let solve_batch (cls, batch) =
      let sdp_ws, ilp_ws = Cpla_util.Pool.Slot.get solver_slot in
      Cpla_obs.Metrics.observe ~lo:0.0 ~hi:64.0 ~bins:16 "driver/batch-size"
        (float_of_int (Array.length batch));
      Cpla_obs.Span.with_ ~name:"driver/batch"
        ~args:
          [
            ("bucket", Cpla_obs.Event.Int cls);
            ("partitions", Cpla_obs.Event.Int (Array.length batch));
          ]
        (fun () ->
          Array.map
            (fun i ->
              poll_check check;
              let li, f = formulations.(i) in
              let v0 = if config.Config.warm_start then t.memo.(li).factor else None in
              Cpla_obs.Span.with_ ~name:"driver/cell" ~args:(cell_args t.leaves.(li))
                (fun () -> solve_formulation config t.cache ?check ~sdp_ws ~ilp_ws ~v0 f))
            batch)
    in
    let per_batch =
      (* the ILP method's branch-and-bound budget is a wall-clock read by
         design (Config.ilp_options.time_limit_s); SDP batches stay pure *)
      (Cpla_util.Pool.parallel_map ~workers:config.Config.workers solve_batch batches
       [@cpla.allow "impure-kernel"])
    in
    Array.iteri
      (fun bi (_, batch) ->
        Array.iteri
          (fun k i ->
            let li, f = formulations.(i) in
            let sol, factor, store = per_batch.(bi).(k) in
            record_dirty_solve t li f sol factor store)
          batch)
      batches;
    (* commit every leaf in input order from its (fresh or memoized)
       solution — identical inputs and order to the from-scratch commit *)
    Array.iteri
      (fun li (_ : Partition.leaf) ->
        match t.memo.(li) with
        | { mf = Some f; msol = Some sol; _ } -> commit config t.asg f sol
        | _ -> invalid_arg "Driver.Incr: clean leaf without a memoized solve")
      t.leaves;
    Array.fill t.dirty 0 n false;
    (* diff committed layers against the sweep-entry snapshot; changes can
       surface in clean leaves too (their mapping reads live capacity) *)
    let changed_nets = ref [] and changed_leaves = ref [] in
    Array.iter
      (fun (net, layers) ->
        let net_changed = ref false in
        Array.iteri
          (fun seg l0 ->
            if Assignment.layer t.asg ~net ~seg <> l0 then begin
              net_changed := true;
              match Hashtbl.find_opt t.leaf_of (net, seg) with
              | Some li -> changed_leaves := li :: !changed_leaves
              | None -> ()
            end)
          layers;
        if !net_changed then changed_nets := net :: !changed_nets)
      pre;
    mark_changes t
      ~changed_leaves:(List.sort_uniq compare !changed_leaves)
      ~changed_nets:!changed_nets;
    Array.length dirty_idx

  let sweep ?check t =
    if dirty_count t = 0 then 0
    else if t.config.Config.workers > 1 then sweep_parallel ?check t
    else sweep_sequential ?check t
end

let optimize_released ?(config = Config.default) ?engine ?solve_cache ?check asg ~released =
  let poll = match check with Some f -> f | None -> fun () -> () in
  if not (Assignment.fully_assigned asg) then
    invalid_arg "Driver.optimize: initial assignment incomplete";
  if Array.length released = 0 then
    (* nothing to optimise; avoid seeding scores/metrics from an empty set *)
    { released; iterations = 0; partitions_solved = 0; avg_tcp = 0.0; max_tcp = 0.0 }
  else begin
    let eng =
      match engine with
      | Some e ->
          if Incremental.assignment e != asg then
            invalid_arg "Driver.optimize: engine bound to a different assignment";
          e
      | None -> Incremental.create asg
    in
    let graph = Assignment.graph asg in
    let width = Cpla_grid.Graph.width graph and height = Cpla_grid.Graph.height graph in
    let incr_state =
      if config.Config.incremental then
        Some (Incr.create ?solve_cache ~config ~engine:eng asg ~released)
      else None
    in
    let iterations = ref 0 and partitions = ref 0 in
    let best_score = ref (score eng released) in
    let stop = ref false in
    while (not !stop) && !iterations < config.Config.max_outer_iters do
      poll ();
      (* an empty dirty set means the next sweep would commit every layer
         verbatim: converged *)
      (match incr_state with
      | Some st when Incr.dirty_count st = 0 -> stop := true
      | _ -> ());
      if not !stop then
        Cpla_obs.Span.with_ ~name:"driver/iteration"
          ~args:[ ("iter", Cpla_obs.Event.Int !iterations) ]
          (fun () ->
            let snap = snapshot asg released in
            (* Cancellation (or any solver failure) mid-iteration can leave
               released segments between unassign and re-assign; restoring
               the iteration-entry snapshot before re-raising hands the
               caller a consistent state it can still measure. *)
            let solved =
              try
                match incr_state with
                | Some st -> Incr.sweep ?check st
                | None ->
                    let items =
                      Array.to_list released
                      |> List.concat_map (fun net ->
                             Array.to_list
                               (Array.mapi
                                  (fun seg s ->
                                    { Partition.net; seg; mid = Segment.midpoint s })
                                  (Assignment.segments asg net)))
                    in
                    let leaves =
                      Cpla_obs.Span.with_ ~name:"driver/partition"
                        ~args:[ ("items", Cpla_obs.Event.Int (List.length items)) ]
                        (fun () ->
                          Partition.build ~width ~height ~k:config.Config.k_div
                            ~max_segments:config.Config.max_segments_per_partition items)
                    in
                    if config.Config.workers > 1 then
                      solve_leaves_parallel config eng asg ?check leaves
                    else
                      List.iter
                        (fun leaf ->
                          poll ();
                          solve_leaf config eng asg ?check leaf)
                        leaves;
                    List.length leaves
              with e ->
                restore asg snap;
                raise e
            in
            incr iterations;
            Cpla_obs.Metrics.incr "driver/iterations";
            (* only nets the leaves actually moved are re-analysed here *)
            let s = score eng released in
            Cpla_obs.Metrics.set "driver/score" s;
            (* A non-finite score is a regression, not a tie: NaN fails
               both orderings, and without this clause the loop would stop
               *keeping* a NaN-scored assignment. *)
            if (not (Float.is_finite s)) || s > !best_score then begin
              restore asg snap;
              stop := true
            end
            else begin
              (* the sweep is kept — only committed sweeps count as work *)
              partitions := !partitions + solved;
              Cpla_obs.Metrics.incr ~by:solved "driver/cells";
              if s < !best_score -. (1e-6 *. Float.abs !best_score) then best_score := s
              else stop := true
            end)
    done;
    let avg_tcp, max_tcp = Incremental.avg_max_tcp eng released in
    { released; iterations = !iterations; partitions_solved = !partitions; avg_tcp; max_tcp }
  end

let optimize ?(config = Config.default) ?solve_cache ?check asg =
  let engine = Incremental.create asg in
  let released = Incremental.select engine ~ratio:config.Config.critical_ratio in
  optimize_released ~config ~engine ?solve_cache ?check asg ~released
