(* Content-addressed cache of fractional partition solves.

   Keyed by [Formulation.digest] plus a fingerprint of the SDP options
   (any field that changes the arithmetic changes the key), valued by the
   materialised fractional table of [Sdp_method.solve_fractional].  The
   cache stores *cold-start* solves only: a warm-started result depends on
   the seeding factor and hence on solve history, which would make cache
   contents order-dependent; restricting entries to cold solves keeps the
   cache a pure function of (canonical formulation, options) — what makes
   sharing one cache across daemon jobs sound.

   A single mutex guards the table: entries are looked up once per dirty
   leaf per sweep, so contention is negligible next to a solve.  The table
   is cleared wholesale when it reaches [max_entries] — simple, and ample
   for the serve workload where near-identical jobs arrive close
   together.  The hit/miss counters are atomics, not mutex state: the
   daemon's event loop reads them while answering stats requests and must
   never queue behind a worker's table access. *)

type t = {
  mutex : Mutex.t;
  table : (string, float array array) Hashtbl.t;
  max_entries : int;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

let create ?(max_entries = 4096) () =
  {
    mutex = Mutex.create ();
    table = Hashtbl.create 256;
    max_entries = max 1 max_entries;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
  }

let options_fingerprint (o : Cpla_sdp.Solver.options) =
  Printf.sprintf "r%d,o%d,i%d,s%.9g,g%.9g,f%.9g,e%d" o.Cpla_sdp.Solver.rank
    o.Cpla_sdp.Solver.max_outer o.Cpla_sdp.Solver.inner_iters o.Cpla_sdp.Solver.sigma0
    o.Cpla_sdp.Solver.sigma_growth o.Cpla_sdp.Solver.feas_tol o.Cpla_sdp.Solver.seed

let key ~options digest = digest ^ "|" ^ options_fingerprint options

let find t key =
  Mutex.lock t.mutex;
  let r = Hashtbl.find_opt t.table key in
  Mutex.unlock t.mutex;
  (match r with
  | Some _ ->
      Atomic.incr t.hits;
      Cpla_obs.Metrics.incr "solve-cache/hits"
  | None ->
      Atomic.incr t.misses;
      Cpla_obs.Metrics.incr "solve-cache/misses");
  r

let store t key frac =
  Mutex.lock t.mutex;
  if Hashtbl.length t.table >= t.max_entries then Hashtbl.reset t.table;
  Hashtbl.replace t.table key frac;
  Mutex.unlock t.mutex

let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses

let length t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.mutex;
  n
