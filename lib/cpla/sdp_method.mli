(** SDP method (Section 3.3): relax one partition's problem into the
    semidefinite program of Eqns (5)–(7) and solve it.

    The moment matrix X carries x_ij on its diagonal and y_ijpq off the
    diagonal; the objective matrix T carries ts(i,j) on the diagonal and
    tv(i,j,p,q) + λ (the via-capacity penalty) off the diagonal.
    Assignment constraints (4b) stay exact; edge-capacity inequalities (4c)
    become equalities through PSD slack diagonal entries; via capacity (4d)
    lives in the objective as λ, exactly as the paper describes. *)

val build_problem : Formulation.t -> Cpla_sdp.Problem.t * (int -> int -> int)
(** [(problem, index)] where [index vi ci] is the matrix row/column of var
    [vi]'s candidate [ci].  Slack entries occupy the trailing rows. *)

type solution = {
  frac : float array array;
      (** [frac.(vi).(ci) ∈ [0,1]]: fractional value of var [vi]'s
          candidate [ci] — the diagonal x_ij clamped to the unit
          interval. *)
  factor : float array;
      (** flat row-major Burer–Monteiro factor V of the final iterate;
          feed it back as [?v0] to warm-start a later solve of a
          similarly-shaped formulation. *)
}

val solve_fractional :
  options:Cpla_sdp.Solver.options ->
  ?ws:Cpla_sdp.Solver.ws ->
  ?v0:float array ->
  ?check:(unit -> unit) ->
  Formulation.t ->
  solution
(** Solve the relaxation and materialise the fractional table plus the
    final factor.  [?v0] warm-starts the factor iterate; if the warm solve
    stalls (non-finite or badly violated final residual), the solve is
    retried from the deterministic cold start (counted under the
    [sdp/warm-retries] metric), so a bad seed costs time but never
    quality.  With no [?v0] the result is bitwise-identical to {!solve}.
    [check] is the cooperative-cancellation hook, polled at the solve
    boundaries. *)

val solve :
  options:Cpla_sdp.Solver.options ->
  ?ws:Cpla_sdp.Solver.ws ->
  ?check:(unit -> unit) ->
  Formulation.t ->
  (int -> int -> float)
(** Solve the relaxation and return the fractional value accessor
    [x vi ci ∈ [0,1]] that feeds {!Post_map.run}.  [check] is the
    cooperative-cancellation hook (see {!Driver.optimize_released}): it is
    polled at the solve boundaries (before building the SDP and before
    running the solver) and aborts the solve by raising.  [ws] reuses a
    solver workspace across partitions (one per domain); results are
    independent of workspace reuse. *)
