open Cpla_grid
open Cpla_route
open Cpla_timing

type var = {
  net : int;
  seg : int;
  dir : Tech.dir;
  cands : int array;
  ts : float array;
  edges : Graph.edge2d array;
}

type pair = {
  a : int;
  b : int;
  tile : int * int;
  tv : float array array;
  lambda : float array array;
}

type cap_row = {
  edge : Graph.edge2d;
  layer : int;
  limit : int;
  members : (int * int) list;
}

type via_row = {
  tile : int * int;
  crossing : int;
  limit : int;
  members : (int * int * int) list;
}

type t = {
  vars : var array;
  pairs : pair array;
  cap_rows : cap_row array;
  via_rows : via_row array;
}

let var_count t = Array.length t.vars

let candidate_total t = Array.fold_left (fun acc v -> acc + Array.length v.cands) 0 t.vars

(* Content-addressed canonical key.  Only the fields the solve methods
   actually consume are serialised — the vars' candidate and frozen-timing
   tables, the pairs' via/penalty tables, and the capacity rows' members
   and limits.  Net and segment ids are replaced by first-appearance
   symbols and floats are rounded through %.9g, so two formulations that
   pose the same optimisation problem — possibly for renumbered nets or a
   translated grid position — share a key.  Rows are sorted on their
   canonical text so hashtable iteration order during the build cannot
   leak into the digest. *)
let digest t =
  let bi b i =
    Buffer.add_string b (string_of_int i);
    Buffer.add_char b ','
  in
  let bf b x =
    Buffer.add_string b (Printf.sprintf "%.9g" x);
    Buffer.add_char b ','
  in
  let net_sym = Hashtbl.create 16 and seg_sym = Hashtbl.create 64 in
  let sym table key =
    match Hashtbl.find_opt table key with
    | Some s -> s
    | None ->
        let s = Hashtbl.length table in
        Hashtbl.add table key s;
        s
  in
  let buf = Buffer.create 4096 in
  Array.iter
    (fun v ->
      Buffer.add_char buf 'v';
      bi buf (sym net_sym v.net);
      bi buf (sym seg_sym (v.net, v.seg));
      Buffer.add_char buf (match v.dir with Tech.Horizontal -> 'H' | Tech.Vertical -> 'V');
      Array.iter (bi buf) v.cands;
      Buffer.add_char buf ':';
      Array.iter (bf buf) v.ts;
      Buffer.add_char buf '\n')
    t.vars;
  let sorted prefix lines =
    List.iter
      (fun l ->
        Buffer.add_char buf prefix;
        Buffer.add_string buf l;
        Buffer.add_char buf '\n')
      (List.sort compare lines)
  in
  sorted 'p'
    (Array.to_list t.pairs
    |> List.map (fun p ->
           let b = Buffer.create 64 in
           bi b p.a;
           bi b p.b;
           Array.iter (Array.iter (bf b)) p.tv;
           Buffer.add_char b ':';
           Array.iter (Array.iter (bf b)) p.lambda;
           Buffer.contents b));
  sorted 'c'
    (Array.to_list t.cap_rows
    |> List.map (fun r ->
           let b = Buffer.create 64 in
           bi b r.layer;
           bi b r.limit;
           List.iter
             (fun (vi, ci) ->
               bi b vi;
               bi b ci)
             (List.sort compare r.members);
           Buffer.contents b));
  sorted 'w'
    (Array.to_list t.via_rows
    |> List.map (fun r ->
           let b = Buffer.create 64 in
           bi b r.crossing;
           bi b r.limit;
           List.iter
             (fun (pi, ca, cb) ->
               bi b pi;
               bi b ca;
               bi b cb)
             (List.sort compare r.members);
           Buffer.contents b));
  Digest.to_hex (Digest.string (Buffer.contents buf))

let build ?(boundary_coupling = true) asg ~infos ~items =
  let tech = Assignment.tech asg in
  let graph = Assignment.graph asg in
  let info_of net =
    match infos net with
    | i -> i
    | exception Not_found ->
        invalid_arg "Formulation.build: missing path_info for a released net"
  in
  let released = Hashtbl.create 64 in
  List.iter (fun it -> Hashtbl.replace released (it.Partition.net, it.Partition.seg) ()) items;
  (* Boundary coupling: a released segment is tree-adjacent to segments that
     stay fixed during this partition's solve (other partitions, already
     re-solved or not yet released) and to pins.  Their via delay depends
     linearly on this segment's layer, so it folds into ts. *)
  let children_cache = Hashtbl.create 16 in
  let children_of net tree =
    match Hashtbl.find_opt children_cache net with
    | Some k -> k
    | None ->
        let k = Stree.children tree in
        Hashtbl.replace children_cache net k;
        k
  in
  let boundary_via net seg l =
    match Assignment.tree asg net with
    | None -> 0.0
    | Some tree ->
        let info = info_of net in
        let node_to_seg = Assignment.node_to_seg asg net in
        let segs = Assignment.segments asg net in
        let cd_of s =
          if s >= 0 && s < Array.length info.Critical.detail.Elmore.seg_cd then
            info.Critical.detail.Elmore.seg_cd.(s)
          else 0.0
        in
        let child_node = segs.(seg).Segment.node in
        let parent_node = tree.Stree.parent.(child_node) in
        let acc = ref 0.0 in
        let couple node other_seg =
          if other_seg >= 0 && other_seg <> seg && not (Hashtbl.mem released (net, other_seg))
          then begin
            let lo = Assignment.layer asg ~net ~seg:other_seg in
            if lo >= 0 then begin
              let cd_min = Float.min (cd_of seg) (cd_of other_seg) in
              acc := !acc +. Elmore.via_tv ~tech ~lo:(min l lo) ~hi:(max l lo) ~cd_min;
              ignore node
            end
          end
        in
        let couple_node node =
          (* fixed tree-adjacent segments: the node's own parent edge and
             every child edge *)
          couple node node_to_seg.(node);
          Array.iter (fun c -> couple node node_to_seg.(c)) (children_of net tree).(node);
          (* pin vias at this node *)
          List.iter
            (fun pl ->
              acc :=
                !acc
                +. Elmore.via_tv ~tech ~lo:(min l pl) ~hi:(max l pl)
                     ~cd_min:tech.Tech.sink_c)
            (Assignment.pin_layers_at asg ~net ~node)
        in
        couple_node child_node;
        if parent_node >= 0 then couple_node parent_node;
        !acc
  in
  (* ---- variables -------------------------------------------------------- *)
  let vars =
    List.map
      (fun { Partition.net; seg; _ } ->
        if Assignment.layer asg ~net ~seg >= 0 then
          invalid_arg "Formulation.build: released segment still assigned";
        let info = info_of net in
        let s = (Assignment.segments asg net).(seg) in
        let cands = Array.of_list (Tech.layers_of_dir tech s.Segment.dir) in
        (* Eqn (4a): every segment of a critical net carries its Eqn (2)
           delay ts(i,j) with frozen downstream capacitance — branch
           segments included, since they load the critical path.  Segments
           on the worst path additionally carry the frozen upstream-path
           resistance against their capacitance (the Elmore cross term the
           sum-of-ts objective would otherwise miss), which is what makes
           the objective per-path rather than per-segment. *)
        let ts =
          Array.map
            (fun l ->
              let own =
                Elmore.seg_ts ~tech ~len:s.Segment.len ~layer:l
                  ~cd:info.Critical.detail.Elmore.seg_cd.(seg)
              in
              let upstream_load =
                info.Critical.branch_attach_r.(seg)
                *. Tech.unit_c tech l
                *. float_of_int s.Segment.len
              in
              own +. upstream_load
              +. (if boundary_coupling then boundary_via net seg l else 0.0))
            cands
        in
        { net; seg; dir = s.Segment.dir; cands; ts; edges = s.Segment.edges })
      items
    |> Array.of_list
  in
  let var_index = Hashtbl.create 64 in
  Array.iteri (fun vi v -> Hashtbl.replace var_index (v.net, v.seg) vi) vars;
  (* ---- capacity rows ----------------------------------------------------- *)
  (* Group candidate coverage by (edge, layer); only edge-layers that could
     be over-subscribed by the released segments need a joint row. *)
  let coverage = Hashtbl.create 256 in
  Array.iteri
    (fun vi v ->
      Array.iteri
        (fun ci l ->
          Array.iter
            (fun (e : Graph.edge2d) ->
              let key = (e.Graph.dir = Tech.Horizontal, e.Graph.x, e.Graph.y, l) in
              let prev = Option.value ~default:[] (Hashtbl.find_opt coverage key) in
              Hashtbl.replace coverage key ((vi, ci, e) :: prev))
            v.edges)
        v.cands)
    vars;
  let cap_rows = ref [] in
  Hashtbl.iter
    (fun (_, _, _, layer) members ->
      match members with
      | [] -> ()
      | (_, _, e) :: _ ->
          let limit = max 0 (Graph.free graph e ~layer) in
          let distinct_vars =
            List.sort_uniq compare (List.map (fun (vi, _, _) -> vi) members)
          in
          if List.length distinct_vars > limit then
            cap_rows :=
              { edge = e; layer; limit; members = List.map (fun (vi, ci, _) -> (vi, ci)) members }
              :: !cap_rows)
    coverage;
  (* ---- via pairs ---------------------------------------------------------- *)
  let pairs = ref [] in
  let nets = List.sort_uniq compare (List.map (fun it -> it.Partition.net) items) in
  List.iter
    (fun net ->
      match Assignment.tree asg net with
      | None -> ()
      | Some tree ->
          let node_to_seg = Assignment.node_to_seg asg net in
          let info = info_of net in
          for v = 0 to Stree.num_nodes tree - 1 do
            let child_seg = node_to_seg.(v) in
            let parent = tree.Stree.parent.(v) in
            if child_seg >= 0 && parent >= 0 then begin
              let parent_seg = node_to_seg.(parent) in
              if parent_seg >= 0 then begin
                match
                  ( Hashtbl.find_opt var_index (net, child_seg),
                    Hashtbl.find_opt var_index (net, parent_seg) )
                with
                | Some a, Some b ->
                    let cd_a = info.Critical.detail.Elmore.seg_cd.(child_seg) in
                    let cd_b = info.Critical.detail.Elmore.seg_cd.(parent_seg) in
                    let cd_min = Float.min cd_a cd_b in
                    let tile = Stree.node tree parent in
                    let ca = vars.(a).cands and cb = vars.(b).cands in
                    let tv =
                      Array.map
                        (fun la ->
                          Array.map
                            (fun lb ->
                              Elmore.via_tv ~tech ~lo:(min la lb) ~hi:(max la lb) ~cd_min)
                            cb)
                        ca
                    in
                    (* λ of Section 3.3: existing via pressure on the
                       boundaries the span would cross, scaled to be
                       commensurate with the via delay *)
                    let x, y = tile in
                    let lambda =
                      Array.map
                        (fun la ->
                          Array.map
                            (fun lb ->
                              let lo = min la lb and hi = max la lb in
                              let acc = ref 0.0 in
                              for c = lo to hi - 1 do
                                let cap = Graph.via_capacity graph ~x ~y ~crossing:c in
                                let u = Graph.via_usage graph ~x ~y ~crossing:c in
                                let ratio =
                                  if cap <= 0 then 2.0
                                  else float_of_int u /. float_of_int cap
                                in
                                acc := !acc +. (ratio *. (1.0 +. tech.Tech.via_r.(c)))
                              done;
                              !acc *. Float.max 1.0 cd_min)
                            cb)
                        ca
                    in
                    pairs := { a; b; tile; tv; lambda } :: !pairs
                | _ -> ()
              end
            end
          done)
    nets;
  let pairs = Array.of_list (List.rev !pairs) in
  (* ---- via capacity rows (for the ILP) ------------------------------------ *)
  let via_rows = ref [] in
  let by_tile = Hashtbl.create 32 in
  Array.iteri
    (fun pi (p : pair) ->
      Hashtbl.replace by_tile p.tile
        (pi :: Option.value ~default:[] (Hashtbl.find_opt by_tile p.tile)))
    pairs;
  Hashtbl.iter
    (fun (x, y) pair_ids ->
      for crossing = 0 to Graph.num_layers graph - 2 do
        let members = ref [] in
        List.iter
          (fun pi ->
            let p = pairs.(pi) in
            Array.iteri
              (fun ca la ->
                Array.iteri
                  (fun cb lb ->
                    if min la lb <= crossing && crossing < max la lb then
                      members := (pi, ca, cb) :: !members)
                  vars.(p.b).cands)
              vars.(p.a).cands)
          pair_ids;
        if !members <> [] then begin
          let cap = Graph.via_capacity graph ~x ~y ~crossing in
          let used = Graph.via_usage graph ~x ~y ~crossing in
          let limit = max 0 (cap - used) in
          (* at most one (ca,cb) per pair is active, so a row can only bind
             when more pairs meet here than the remaining capacity *)
          if List.length pair_ids > limit then
            via_rows := { tile = (x, y); crossing; limit; members = !members } :: !via_rows
        end
      done)
    by_tile;
  { vars; pairs; cap_rows = Array.of_list !cap_rows; via_rows = Array.of_list !via_rows }
