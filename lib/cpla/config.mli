(** CPLA run configuration. *)

type method_ =
  | Sdp  (** SDP relaxation + post-mapping (Sections 3.3–3.4) *)
  | Ilp  (** exact ILP (Section 3.1), budgeted branch-and-bound *)

type t = {
  critical_ratio : float;
      (** fraction of nets released as critical (the paper's 0.5% = 0.005) *)
  k_div : int;  (** the K of the K×K uniform pre-partition (Section 3.2) *)
  max_segments_per_partition : int;
      (** quadtree subdivision bound; the paper's default is 10 *)
  method_ : method_;
  alpha : float;  (** weight of the via-overflow variable V_o (paper: 2000) *)
  max_outer_iters : int;
      (** outer refreeze-and-reoptimise iterations; the paper "stops when no
          further optimizations can be achieved" *)
  local_refinement : bool;
      (** run the greedy 1-opt cleanup after post-mapping (SDP method only);
          disable for ablation studies *)
  boundary_coupling : bool;
      (** fold via delays to fixed neighbours outside the partition into the
          objective (default true); ablatable *)
  incremental : bool;
      (** dirty-partition scheduling (default true): after the first sweep,
          re-solve only quadtree leaves whose nets changed layers (plus
          leaves sharing a grid edge, via tile, or net with one that did),
          keeping clean cells' layers verbatim.  With [warm_start = false]
          the committed layers are identical to the from-scratch sweep's;
          disabling reproduces the full re-solve of every sweep. *)
  warm_start : bool;
      (** seed each leaf's SDP factor from its previous sweep's final
          iterate instead of the deterministic gaussian draw (default
          true), with a cold retry if the warm solve stalls.  Changes
          iterates (not validity); disable to recover bitwise
          from-scratch-identical incremental sweeps.  SDP method only. *)
  workers : int;
      (** domains used to solve partitions concurrently (the paper's OpenMP
          parallelism).  1 = sequential.  Parallel sweeps freeze the
          coefficients once per iteration instead of per partition, so
          results can differ slightly from sequential runs (both are valid
          fixed points of the same outer loop). *)
  batch_size : int;
      (** partition subproblems solved per pool task in parallel sweeps
          (default 8).  Same-size-bucket cells are chunked into batches of
          at most this many; each batch runs through one per-domain solver
          workspace.  Batching changes scheduling granularity only — the
          solves and the commit order are those of [batch_size = 1]. *)
  ilp_options : Cpla_ilp.Solver.options;
  sdp_options : Cpla_sdp.Solver.options;
}

val default : t
(** ratio 0.005, K = 4, Nmax = 10, SDP method, alpha = 2000, 5 outer
    iterations. *)
