(** The CPLA outer loop (Problem 1).

    Each iteration freezes downstream capacitances and worst paths at the
    current assignment, partitions the released segments (Section 3.2),
    solves partitions with the configured method (ILP or SDP+mapping)
    against live capacity state, and re-evaluates.  Iterations repeat until
    the released nets' timing stops improving (with a revert of the last
    iteration if it hurt), or the iteration cap is hit.

    With {!Config.t.incremental} (the default) sweeps after the first are
    *dirty-partition* sweeps: only quadtree leaves whose inputs could have
    changed — leaves sharing a net with a net that moved, or a grid
    tile/edge with a leaf whose segments moved — are re-solved; clean
    leaves keep their layers verbatim.  With [warm_start = false] the
    committed layers are identical to the from-scratch loop's; warm starts
    and the solve cache trade that bitwise identity for speed while
    preserving validity (equivalence within score tolerance). *)

type report = {
  released : int array;      (** net ids that were optimised *)
  iterations : int;          (** outer iterations performed *)
  partitions_solved : int;
      (** partition subproblems solved in *committed* sweeps (a final sweep
          that is reverted for scoring worse does not count) *)
  avg_tcp : float;           (** Avg(Tcp) over released nets, final *)
  max_tcp : float;           (** Max(Tcp) over released nets, final *)
}

val optimize :
  ?config:Config.t ->
  ?solve_cache:Solve_cache.t ->
  ?check:(unit -> unit) ->
  Cpla_route.Assignment.t ->
  report
(** Requires a fully assigned state (run {!Cpla_route.Init_assign} first).
    @raise Invalid_argument otherwise. *)

val optimize_released :
  ?config:Config.t ->
  ?engine:Cpla_timing.Incremental.t ->
  ?solve_cache:Solve_cache.t ->
  ?check:(unit -> unit) ->
  Cpla_route.Assignment.t ->
  released:int array ->
  report
(** Same, but with an externally chosen release set (used by the benchmark
    harness to give TILA and CPLA identical released nets).  [engine] is the
    incremental timing cache to score and freeze coefficients through; pass
    the one already warmed by selection/measurement to avoid re-analysing
    clean nets, or omit it to have a fresh engine created internally.
    @raise Invalid_argument when the engine is bound to another assignment.
    An empty [released] returns immediately with zero metrics.

    [solve_cache] (SDP method, incremental mode) is a content-addressed
    cache of fractional partition solves, shareable across calls and
    domains: coupled subproblems whose canonical formulation was already
    solved cold skip the solver entirely (see {!Solve_cache}).

    [check] is a cooperative-cancellation hook: it is polled at every
    partition-solve boundary (iteration start, before each leaf solve —
    including the uncoupled fast path — and inside the parallel sweep's
    per-partition solver closures) and cancels the run by raising.  The
    exception propagates to the caller — wrapped in
    {!Cpla_util.Pool.Worker_failure} when it fired on a pooled domain —
    after the in-progress iteration's mutations are rolled back to the
    iteration-entry snapshot, so the assignment is always left fully
    assigned and internally consistent.  {!Cpla_serve.Token.check} is the
    intended hook; any closure works. *)

(** The dirty-partition scheduler behind incremental sweeps, exposed for
    benchmarks and equivalence tests.  Holds the (once-built) quadtree,
    per-leaf dirty flags, leaf-keyed warm-start factors, and memoized
    formulations/solutions.  The partition structure is a pure function of
    the released segments' fixed 2-D midpoints, so leaves keep stable
    indices for the lifetime of the state. *)
module Incr : sig
  type t

  val create :
    ?solve_cache:Solve_cache.t ->
    config:Config.t ->
    engine:Cpla_timing.Incremental.t ->
    Cpla_route.Assignment.t ->
    released:int array ->
    t
  (** Build the quadtree, the net→leaves map, and the tile-cohabitation
      adjacency (the capacity-row fallback: leaves sharing a grid tile are
      neighbours).  All leaves start dirty, so the first {!sweep} is a
      full cold sweep. *)

  val leaf_count : t -> int

  val dirty_count : t -> int
  (** Leaves the next {!sweep} would re-solve; 0 means the loop has
      converged and a sweep would be a no-op. *)

  val mark_net_dirty : t -> int -> unit
  (** Flag a net as externally changed: its leaves and their tile
      neighbours are re-solved on the next sweep.  Unknown nets are
      ignored. *)

  val sweep : ?check:(unit -> unit) -> t -> int
  (** Run one sweep over the dirty leaves (sequential for
      [config.workers = 1], released-all batched-parallel otherwise),
      commit the results, and re-flag leaves affected by what changed.
      Returns the number of subproblems solved.  Requires the assignment
      to be fully assigned on entry. *)
end
