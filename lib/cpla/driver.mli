(** The CPLA outer loop (Problem 1).

    Each iteration freezes downstream capacitances and worst paths at the
    current assignment, partitions the released segments (Section 3.2),
    solves every partition with the configured method (ILP or SDP+mapping)
    against live capacity state, and re-evaluates.  Iterations repeat until
    the released nets' timing stops improving (with a revert of the last
    iteration if it hurt), or the iteration cap is hit. *)

type report = {
  released : int array;      (** net ids that were optimised *)
  iterations : int;          (** outer iterations performed *)
  partitions_solved : int;   (** total leaves across iterations *)
  avg_tcp : float;           (** Avg(Tcp) over released nets, final *)
  max_tcp : float;           (** Max(Tcp) over released nets, final *)
}

val optimize :
  ?config:Config.t -> ?check:(unit -> unit) -> Cpla_route.Assignment.t -> report
(** Requires a fully assigned state (run {!Cpla_route.Init_assign} first).
    @raise Invalid_argument otherwise. *)

val optimize_released :
  ?config:Config.t ->
  ?engine:Cpla_timing.Incremental.t ->
  ?check:(unit -> unit) ->
  Cpla_route.Assignment.t ->
  released:int array ->
  report
(** Same, but with an externally chosen release set (used by the benchmark
    harness to give TILA and CPLA identical released nets).  [engine] is the
    incremental timing cache to score and freeze coefficients through; pass
    the one already warmed by selection/measurement to avoid re-analysing
    clean nets, or omit it to have a fresh engine created internally.
    @raise Invalid_argument when the engine is bound to another assignment.
    An empty [released] returns immediately with zero metrics.

    [check] is a cooperative-cancellation hook: it is polled at every
    partition-solve boundary (iteration start, before each leaf solve, and
    inside the parallel sweep's per-partition solver closures) and cancels
    the run by raising.  The exception propagates to the caller — wrapped
    in {!Cpla_util.Pool.Worker_failure} when it fired on a pooled domain —
    after the in-progress iteration's mutations are rolled back to the
    iteration-entry snapshot, so the assignment is always left fully
    assigned and internally consistent.  {!Cpla_serve.Token.check} is the
    intended hook; any closure works. *)
