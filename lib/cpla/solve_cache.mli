(** Content-addressed cache of fractional partition solves.

    Maps [Formulation.digest] + SDP-options fingerprint to the
    materialised fractional table of {!Sdp_method.solve_fractional}, so
    repeated or near-identical subproblems — typically the same design
    resubmitted to the daemon, or an untouched region re-released across
    jobs — skip the solver entirely.  Only cold-start solves are stored
    (warm-started results depend on solve history), keeping cache
    contents a pure function of the canonical formulation and options.

    Safe to share across domains and daemon jobs: a mutex guards the
    table, while the hit/miss counters are wait-free atomics (the daemon's
    event loop reads them for stats responses).  Counts are mirrored to
    the [solve-cache/hits] / [solve-cache/misses] metrics. *)

type t

val create : ?max_entries:int -> unit -> t
(** [max_entries] (default 4096) bounds the table; reaching the bound
    clears it wholesale. *)

val key : options:Cpla_sdp.Solver.options -> string -> string
(** [key ~options digest]: full cache key for a formulation digest solved
    under [options]. *)

val find : t -> string -> float array array option
(** Lookup by full key, counting a hit or a miss.  The returned table is
    shared — callers must not mutate it. *)

val store : t -> string -> float array array -> unit
(** Insert a cold-solve fractional table under a full key. *)

val hits : t -> int
(** Wait-free; safe from the daemon's event loop. *)

val misses : t -> int
(** Wait-free; safe from the daemon's event loop. *)

val length : t -> int
(** Entries currently stored (takes the table mutex). *)
