open Cpla_route
open Cpla_timing

type t = {
  avg_tcp : float;
  max_tcp : float;
  via_overflow : int;
  via_count : int;
  edge_overflow : int;
  cpu_s : float;
}

let measure ?engine asg ~released ~cpu_s =
  let avg_tcp, max_tcp =
    match engine with
    | Some eng -> Incremental.avg_max_tcp eng released
    | None -> Critical.avg_max_tcp asg released
  in
  let graph = Assignment.graph asg in
  {
    avg_tcp;
    max_tcp;
    via_overflow = Cpla_grid.Graph.via_overflow graph;
    via_count = Cpla_grid.Graph.total_via_usage graph;
    edge_overflow = Cpla_grid.Graph.edge_overflow graph;
    cpu_s;
  }

let pp fmt t =
  Format.fprintf fmt
    "avg(Tcp)=%.2f max(Tcp)=%.2f OV#=%d via#=%d edge_ov=%d cpu=%.2fs" t.avg_tcp t.max_tcp
    t.via_overflow t.via_count t.edge_overflow t.cpu_s
