(** Branch-and-bound 0/1 ILP solver over the simplex LP relaxation.

    Replaces GUROBI for the exact reference method of Section 3.1.  Depth-
    first search branching on the most fractional binary variable, with LP
    lower bounds, a nearest-integer rounding heuristic for early incumbents,
    and node/time budgets that reproduce the paper's "ILP cannot finish"
    behaviour on oversized instances. *)

type options = {
  max_nodes : int;      (** branch-and-bound node budget (default 5000) *)
  time_limit_s : float; (** wall budget in seconds (default 30) *)
  gap_tol : float;      (** prune when bound ≥ incumbent − gap_tol (default 1e-6) *)
}

val default_options : options

type outcome = {
  x : float array;
  objective : float;
  proven_optimal : bool;  (** false when a budget cut the search short *)
  nodes_explored : int;
}

type ws = Cpla_numeric.Simplex.ws
(** Reusable LP workspace shared across all branch-and-bound nodes of a
    solve — and across solves (one per domain). *)

val ws_create : unit -> ws

val solve : ?options:options -> ?ws:ws -> Model.t -> outcome option
(** Best integral solution found, or [None] if none exists (or none was
    found within budget on an instance that may still be feasible —
    callers treat [None] as "keep the current assignment").  [?ws] reuses
    an LP workspace; results are independent of workspace reuse. *)
