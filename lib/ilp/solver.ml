open Cpla_numeric

type options = {
  max_nodes : int;
  time_limit_s : float;
  gap_tol : float;
}

let default_options = { max_nodes = 5000; time_limit_s = 30.0; gap_tol = 1e-6 }

type outcome = {
  x : float array;
  objective : float;
  proven_optimal : bool;
  nodes_explored : int;
}

(* A node is a set of fixed binaries, newest fix first:
   [(int * float) list] as pushed on the DFS stack. *)

type ws = Simplex.ws

let ws_create = Simplex.ws_create

let most_fractional model x fixes =
  let fixed = List.map fst fixes in
  let best = ref (-1) and best_frac = ref 0.0 in
  Array.iteri
    (fun i b ->
      if b && not (List.mem i fixed) then begin
        let f = Float.abs (x.(i) -. Float.round x.(i)) in
        if f > !best_frac +. 1e-9 then begin
          best_frac := f;
          best := i
        end
      end)
    model.Model.binary;
  if !best_frac > 1e-6 then Some !best else None

(* Round every binary to the nearest integer and keep continuous values;
   feasible roundings give quick incumbents.  Writes into [dst] (the
   per-solve scratch — [offer] copies on acceptance). *)
let rounded_into model x dst =
  Array.iteri
    (fun i v ->
      dst.(i) <- (if model.Model.binary.(i) then Float.round v else Float.max 0.0 v))
    x

let solve ?(options = default_options) ?ws model =
  let ws = match ws with Some w -> w | None -> Simplex.ws_create () in
  let n = Model.num_vars model in
  let base = Model.relaxation model in
  let rounded_scratch = Array.make n 0.0 in
  let incumbent = ref None in
  let incumbent_obj = ref infinity in
  let nodes = ref 0 in
  (* wall clock, as documented for [time_limit_s]: under the partition-level
     domain pool, CPU time advances once per running domain and would shrink
     every concurrent solver's budget by the worker count *)
  let start = Cpla_util.Timer.wall () in
  let proven = ref true in
  let budget_left () =
    !nodes < options.max_nodes && Cpla_util.Timer.elapsed_s start < options.time_limit_s
  in
  let offer x =
    if Model.check model x then begin
      let obj = Model.value model x in
      if obj < !incumbent_obj then begin
        incumbent_obj := obj;
        incumbent := Some (Array.copy x)
      end
    end
  in
  let stack = Stack.create () in
  Stack.push [] stack;
  while not (Stack.is_empty stack) do
    if not (budget_left ()) then begin
      proven := false;
      Stack.clear stack
    end
    else begin
      let fixes = Stack.pop stack in
      incr nodes;
      (* fixing rows go straight into the reused tableau — same rows, same
         order as the dense Array.append construction this replaces *)
      match Simplex.solve_ws ws ~fixes base with
      | Simplex.Infeasible -> ()
      | Simplex.Unbounded ->
          (* A bounded 0/1 model cannot be unbounded unless continuous
             variables are; treat as a dead branch. *)
          ()
      | Simplex.Iteration_limit -> proven := false
      | Simplex.Optimal sol ->
          if sol.Simplex.objective >= !incumbent_obj -. options.gap_tol then ()
          else begin
            rounded_into model sol.Simplex.x rounded_scratch;
            offer rounded_scratch;
            match most_fractional model sol.Simplex.x fixes with
            | None ->
                (* integral on all binaries *)
                offer sol.Simplex.x
            | Some i ->
                let v = sol.Simplex.x.(i) in
                let first = Float.round v in
                let second = 1.0 -. first in
                (* push the less promising branch first so DFS explores the
                   rounding-preferred side next *)
                Stack.push ((i, second) :: fixes) stack;
                Stack.push ((i, first) :: fixes) stack
          end
    end
  done;
  match !incumbent with
  | None -> None
  | Some x ->
      Some { x; objective = !incumbent_obj; proven_optimal = !proven; nodes_explored = !nodes }
