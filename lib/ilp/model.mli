(** Mixed 0/1 integer linear program container.

    minimise cᵀx  subject to  a_k x (≤|≥|=) b_k,  x ≥ 0,
    x_i ∈ {0,1} for every i with [binary.(i)].

    Continuous variables (such as the via-overflow variable V_o of the
    relaxed constraint (4d)) are allowed alongside the binaries. *)

type t = {
  objective : float array;
  rows : (float array * Cpla_numeric.Simplex.relation * float) array;
  binary : bool array;  (** same length as [objective] *)
}

val create :
  objective:float array ->
  rows:(float array * Cpla_numeric.Simplex.relation * float) list ->
  binary:bool array ->
  t
(** @raise Invalid_argument on length mismatches. *)

val num_vars : t -> int

val relaxation : t -> Cpla_numeric.Simplex.problem
(** LP relaxation: drops integrality and adds [x_i ≤ 1] rows for binaries. *)

val value : t -> float array -> float
(** Objective value of a point. *)

val integral : ?tol:float -> t -> float array -> bool
  [@@cpla.allow "unused-export"]
(** Whether every binary variable is within [tol] (default 1e-6) of 0 or 1. *)

val check : ?tol:float -> t -> float array -> bool
(** Feasibility including integrality. *)
