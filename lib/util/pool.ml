let recommended_workers () = max 1 (Domain.recommended_domain_count () - 1)

(* Observability probe.  The pool sits below lib/obs in the dependency
   order, so task spans are injected from above: Obs.set_enabled installs a
   wrapper here, and workers run each task through it on their own domain.
   The default probe is the identity, so an uninstrumented (or disabled)
   build pays one Atomic read per task. *)
type probe = { wrap : 'a. name:string -> index:int -> (unit -> 'a) -> 'a }

let null_probe = { wrap = (fun ~name:_ ~index:_ f -> f ()) }

let probe = Atomic.make null_probe

let set_probe p = Atomic.set probe p

(* Per-domain state slots.  Batched kernels want one reusable solver
   workspace per domain — not per task — so the workspace survives across
   every batch a worker picks up.  Domain-local storage gives exactly that
   ownership discipline: a slot's value is never visible to another domain,
   so the mutation inside it needs no synchronisation. *)
module Slot = struct
  type 'a t = 'a Domain.DLS.key

  let create init = Domain.DLS.new_key init

  let get k = Domain.DLS.get k
end

exception Worker_failure of exn

let parallel_map ~workers f xs =
  let n = Array.length xs in
  if workers <= 1 || n <= 1 then Array.map f xs
  else begin
    let results = Array.make n None in
    let failure = Atomic.make None in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get failure <> None then continue := false
        else begin
          match (Atomic.get probe).wrap ~name:"pool/task" ~index:i (fun () -> f xs.(i)) with
          | v -> results.(i) <- Some v
          | exception e ->
              (* not laundered: the first failure (async included) is
                 re-raised as Worker_failure after the domains join *)
              (ignore (Atomic.compare_and_set failure None (Some e)))
              [@cpla.allow "catchall-async"]
        end
      done
    in
    (* sanctioned sharing: each index is written by exactly one worker
       (fetch_and_add hands out disjoint slots) and [results] is only read
       after every domain joins *)
    let domains =
      List.init (min workers n) (fun _ -> Domain.spawn worker [@cpla.allow "domain-race"])
    in
    List.iter Domain.join domains;
    (match Atomic.get failure with
    | Some e -> raise (Worker_failure e)
    | None -> ());
    Array.map
      (function
        | Some v -> v
        | None -> invalid_arg "Pool.parallel_map: missing result (worker died)")
      results
  end

(* ---- persistent worker pool ---------------------------------------------- *)

module Persistent = struct
  exception Cancelled

  type mode = Accepting | Draining | Aborting

  type 'a task = {
    mutable cell : ('a, exn) result option;  (* Some = terminal *)
    mutable revoked : bool;   (* cancel won before a worker claimed it *)
    mutable claimed : bool;   (* a worker is (or was) running it *)
  }

  type entry = Entry : 'a task * (unit -> 'a) * int -> entry
  (* the int is the submission sequence number, threaded to the probe *)

  type t = {
    m : Mutex.t;
    work : Condition.t;     (* queue gained an entry, or the pool is closing *)
    settled : Condition.t;  (* some task reached a terminal state *)
    q : entry Queue.t;
    mutable mode : mode;
    mutable seq : int;      (* submissions so far, under [m] *)
    mutable domains : unit Domain.t list;
  }

  let create ~workers =
    if workers < 1 then invalid_arg "Pool.Persistent.create: workers must be >= 1";
    let p =
      {
        m = Mutex.create ();
        work = Condition.create ();
        settled = Condition.create ();
        q = Queue.create ();
        mode = Accepting;
        seq = 0;
        domains = [];
      }
    in
    let rec worker () =
      Mutex.lock p.m;
      let rec next () =
        if p.mode = Aborting then None
        else if Queue.is_empty p.q then
          match p.mode with
          | Accepting ->
              Condition.wait p.work p.m;
              next ()
          | Draining | Aborting -> None
        else Some (Queue.pop p.q)
      in
      match next () with
      | None -> Mutex.unlock p.m
      | Some (Entry (t, f, seq)) ->
          if t.revoked then begin
            Mutex.unlock p.m;
            worker ()
          end
          else begin
            t.claimed <- true;
            Mutex.unlock p.m;
            let r =
              match (Atomic.get probe).wrap ~name:"pool/exec" ~index:seq f with
              | v -> Ok v
              | exception e ->
                  (* not laundered: the worker domain must survive, and the
                     exception reaches the caller via [await]'s [Error]
                     (Scheduler.wait re-raises asynchronous ones there) *)
                  (Error e) [@cpla.allow "catchall-async"]
            in
            Mutex.lock p.m;
            t.cell <- Some r;
            Condition.broadcast p.settled;
            Mutex.unlock p.m;
            worker ()
          end
    in
    (* sanctioned sharing: every access to [p]'s mutable fields inside
       [worker] happens with [p.m] held (or between lock/unlock pairs) *)
    p.domains <-
      List.init workers (fun _ -> Domain.spawn worker [@cpla.allow "domain-race"]);
    p

  let submit p f =
    let t = { cell = None; revoked = false; claimed = false } in
    Mutex.lock p.m;
    (match p.mode with
    | Accepting ->
        Queue.add (Entry (t, f, p.seq)) p.q;
        p.seq <- p.seq + 1;
        Condition.signal p.work;
        Mutex.unlock p.m
    | Draining | Aborting ->
        Mutex.unlock p.m;
        invalid_arg "Pool.Persistent.submit: pool is shut down");
    t

  let revoke_locked p t =
    let won = (not t.claimed) && t.cell = None in
    if won then begin
      t.revoked <- true;
      t.cell <- Some (Error Cancelled);
      Condition.broadcast p.settled
    end;
    won

  let cancel p t =
    Mutex.lock p.m;
    let won = revoke_locked p t in
    Mutex.unlock p.m;
    won

  let await p t =
    Mutex.lock p.m;
    let rec wait () =
      match t.cell with
      | Some r -> r
      | None ->
          Condition.wait p.settled p.m;
          wait ()
    in
    let r = wait () in
    Mutex.unlock p.m;
    r

  let shutdown ?(drain = true) p =
    Mutex.lock p.m;
    if p.mode <> Accepting then Mutex.unlock p.m
    else begin
      if drain then p.mode <- Draining
      else begin
        p.mode <- Aborting;
        Queue.iter (fun (Entry (t, _, _)) -> ignore (revoke_locked p t)) p.q;
        Queue.clear p.q
      end;
      Condition.broadcast p.work;
      let ds = p.domains in
      p.domains <- [];
      Mutex.unlock p.m;
      List.iter Domain.join ds
    end
end
