let sum xs =
  (* Kahan summation keeps long benchmark accumulations stable. *)
  let total = ref 0.0 and comp = ref 0.0 in
  Array.iter
    (fun x ->
      let y = x -. !comp in
      let t = !total +. y in
      comp := t -. !total -. y;
      total := t)
    xs;
  !total

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else sum xs /. float_of_int n

let max xs = if Array.length xs = 0 then 0.0 else Array.fold_left Float.max neg_infinity xs

let min xs = if Array.length xs = 0 then 0.0 else Array.fold_left Float.min infinity xs

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (acc /. float_of_int n)
  end

let percentile xs p =
  let n = Array.length xs in
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then sorted.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
    end
  end

let geometric_mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else if Array.exists (fun x -> x <= 0.0) xs then 0.0
  else exp (Array.fold_left (fun a x -> a +. log x) 0.0 xs /. float_of_int n)
