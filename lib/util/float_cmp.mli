(** Named float comparison.

    The solver kernels must never compare floats with bare [=] / [<>] (the
    [float-equality] lint rule forbids it in [lib/numeric], [lib/timing] and
    [lib/sdp]): exact comparison hides whether a tolerance was intended, and
    silently breaks under reassociation.  These helpers make the intent —
    approximate, or deliberately exact ([~atol:0.0]) — explicit at the call
    site.  NaN compares unequal to everything, including itself. *)

val approx_eq : ?rtol:float -> ?atol:float -> float -> float -> bool
(** [approx_eq ?rtol ?atol a b] is [|a - b| <= atol + rtol * max |a| |b|],
    with an exact short-circuit so equal infinities compare equal.
    Defaults: [rtol = 1e-9], [atol = 1e-12].
    @raise Invalid_argument when a tolerance is negative or NaN. *)

val is_zero : ?atol:float -> float -> bool
(** [is_zero ?atol x] is [|x| <= atol] (default [atol = 1e-12]).
    [~atol:0.0] is the deliberate exact test ([x] is [+0.] or [-0.]). *)

val nonzero : ?atol:float -> float -> bool
(** [not (is_zero ?atol x)]; NaN counts as nonzero. *)
