(** Asynchronous-exception discipline.

    [Out_of_memory], [Stack_overflow] and [Sys.Break] can surface at almost
    any allocation, call or signal point; a catch-all handler that converts
    them into an ordinary failure value leaves the process running in an
    unreliable state.  Every catch-all handler in this codebase must hand
    the exception to {!reraise_if_async} before classifying it (the
    [catchall-async] lint rule enforces this). *)

val is_async : exn -> bool
(** True for [Out_of_memory], [Stack_overflow] and [Sys.Break]. *)

val reraise_if_async : exn -> unit
(** Re-raise (preserving the backtrace) when {!is_async}; otherwise return
    unit so the handler can continue classifying the exception. *)
