let is_async = function
  | Out_of_memory | Stack_overflow | Sys.Break -> true
  | _ -> false

let reraise_if_async e =
  if is_async e then Printexc.raise_with_backtrace e (Printexc.get_raw_backtrace ())
