type t = {
  lo : float;
  hi : float;
  counts : int array;
  mutable underflow : int;
  mutable overflow : int;
  mutable nan : int;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
  { lo; hi; counts = Array.make bins 0; underflow = 0; overflow = 0; nan = 0; total = 0 }

(* Out-of-range samples used to be clamped into the end bins and NaN fell
   into bin 0 through int_of_float's unspecified conversion — both silently
   distorted the tails of Fig. 1.  They are now accounted separately: NaN is
   skipped (and counted), underflow/overflow keep their own counters and
   never touch the in-range bins. *)
let add t x =
  if Float.is_nan x then t.nan <- t.nan + 1
  else begin
    let bins = Array.length t.counts in
    if x < t.lo then t.underflow <- t.underflow + 1
    else if x >= t.hi then t.overflow <- t.overflow + 1
    else begin
      let raw = (x -. t.lo) /. (t.hi -. t.lo) *. float_of_int bins in
      let i = int_of_float (Float.floor raw) in
      (* rounding at the upper edge of the last bin can produce i = bins *)
      let i = if i >= bins then bins - 1 else i in
      t.counts.(i) <- t.counts.(i) + 1
    end;
    t.total <- t.total + 1
  end

let add_all t xs = Array.iter (add t) xs

let counts t = Array.copy t.counts

let total t = t.total

let underflow t = t.underflow

let overflow t = t.overflow

let nan_count t = t.nan

let bin_center t i =
  let bins = float_of_int (Array.length t.counts) in
  t.lo +. ((float_of_int i +. 0.5) /. bins *. (t.hi -. t.lo))

let render ?(width = 50) ?(label = "") t =
  let buf = Buffer.create 256 in
  if label <> "" then Buffer.add_string buf (label ^ "\n");
  let log_count c = if c <= 0 then 0.0 else log (float_of_int c +. 1.0) in
  let max_log = Array.fold_left (fun a c -> Float.max a (log_count c)) 0.0 t.counts in
  Array.iteri
    (fun i c ->
      let bar =
        if max_log <= 0.0 then 0
        else int_of_float (Float.round (log_count c /. max_log *. float_of_int width))
      in
      Buffer.add_string buf
        (Printf.sprintf "%12.1f | %-*s %d\n" (bin_center t i) width (String.make bar '#') c))
    t.counts;
  if t.underflow > 0 then
    Buffer.add_string buf (Printf.sprintf "%12s | %d below range\n" "< lo" t.underflow);
  if t.overflow > 0 then
    Buffer.add_string buf (Printf.sprintf "%12s | %d above range\n" ">= hi" t.overflow);
  if t.nan > 0 then
    Buffer.add_string buf (Printf.sprintf "%12s | %d skipped\n" "nan" t.nan);
  Buffer.contents buf
