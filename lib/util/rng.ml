type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 step: advance the state and scramble the output. *)
let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = next_int64 t in
  { state = s }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (v /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let gaussian t =
  let rec draw () =
    let u = float t 1.0 in
    if u <= 1e-12 then draw () else u
  in
  let u1 = draw () and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

(* In-place gaussian fill: same draw sequence as [n] successive calls to
   [gaussian], but writing straight into unboxed float-array storage so
   workspace (re)initialisation in the batched kernels stays allocation
   free (a cross-module [gaussian] call returns a boxed float per draw). *)
let fill_gaussian t a ~n ~scale =
  if n < 0 || n > Array.length a then invalid_arg "Rng.fill_gaussian: prefix out of range";
  for i = 0 to n - 1 do
    let u1 = ref (float t 1.0) in
    while !u1 <= 1e-12 do
      u1 := float t 1.0
    done;
    let u2 = float t 1.0 in
    a.(i) <- sqrt (-2.0 *. log !u1) *. cos (2.0 *. Float.pi *. u2) *. scale
  done

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
