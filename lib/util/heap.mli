(** Binary min-heap keyed by floats, used by the Dijkstra maze router. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool
  [@@cpla.allow "unused-export"]

val size : 'a t -> int
  [@@cpla.allow "unused-export"]

val push : 'a t -> float -> 'a -> unit
(** Insert a value with the given priority. *)

val pop_min : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority entry. *)
