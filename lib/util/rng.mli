(** Deterministic pseudo-random number generation.

    All stochastic parts of the library (synthetic benchmark generation,
    randomised tests, solver perturbation) draw from this SplitMix64-based
    generator so that every experiment is reproducible from a seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t]; the two
    streams are statistically independent. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
  [@@cpla.allow "unused-export"]
(** A fair coin flip. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller). *)

val fill_gaussian : t -> float array -> n:int -> scale:float -> unit
(** [fill_gaussian t a ~n ~scale] writes [n] scaled standard-normal deviates
    into [a.(0..n-1)] without allocating: the draw sequence (and bit
    pattern) equals [n] calls of [gaussian t] each multiplied by [scale]. *)

val shuffle : t -> 'a array -> unit
  [@@cpla.allow "unused-export"]
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)
