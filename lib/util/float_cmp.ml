let check_tol name t =
  if not (t >= 0.0) then
    invalid_arg (Printf.sprintf "Float_cmp: %s must be a non-negative float" name)

let approx_eq ?(rtol = 1e-9) ?(atol = 1e-12) a b =
  check_tol "rtol" rtol;
  check_tol "atol" atol;
  if Float.is_finite a && Float.is_finite b then
    Float.abs (a -. b) <= atol +. (rtol *. Float.max (Float.abs a) (Float.abs b))
  else
    (* infinities only match exactly; NaN matches nothing *)
    a = b

let is_zero ?(atol = 1e-12) x =
  check_tol "atol" atol;
  Float.abs x <= atol

let nonzero ?atol x = not (is_zero ?atol x)
