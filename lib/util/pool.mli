(** Deterministic parallel map over OCaml 5 domains.

    Substitute for the paper's OpenMP partition loop: partitions with
    similar sizes are independent work items, so a fixed-size domain pool
    pulling indices from a shared counter balances them well.  Output order
    is by input index, so results are deterministic regardless of
    scheduling (provided [f] itself is deterministic and does not share
    mutable state across items). *)

exception Worker_failure of exn
(** Wraps the first exception raised by [f] on a pooled domain.  The
    sequential fast path ([workers <= 1] or fewer than two items) raises
    [f]'s exception unwrapped. *)

val parallel_map : workers:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map ~workers f xs] maps [f] over [xs] using up to [workers]
    domains ([workers <= 1] runs sequentially, in-domain).  Exceptions in
    [f] are re-raised in the caller after all domains join, wrapped in
    {!Worker_failure}. *)

val recommended_workers : unit -> int
(** [Domain.recommended_domain_count - 1], at least 1. *)

(** Per-domain state slots (domain-local storage).

    A slot holds one value per domain, created lazily by the initialiser on
    first access from that domain.  Batched solver kernels keep their
    reusable workspaces in slots: each pool worker sees its own workspace
    across every task it picks up, with no synchronisation — the value
    never crosses domains. *)
module Slot : sig
  type 'a t

  val create : (unit -> 'a) -> 'a t
  (** Declare a slot.  The initialiser runs once per domain, on that
      domain, at its first {!get}. *)

  val get : 'a t -> 'a
  (** This domain's value (initialising it if absent). *)
end

type probe = { wrap : 'a. name:string -> index:int -> (unit -> 'a) -> 'a }
(** Task-execution hook.  [wrap ~name ~index f] must run [f] exactly once
    (on the calling — i.e. worker — domain) and return its result,
    re-raising its exceptions unchanged.  [index] is the task's input index
    ({!parallel_map}) or submission sequence number ({!Persistent}). *)

val set_probe : probe -> unit
(** Install the hook every pool task runs through.  The pool sits below
    the observability library in the dependency order, so span wrapping is
    injected here by [Cpla_obs.Obs.set_enabled] rather than called
    directly. *)

val null_probe : probe
(** The identity hook (default): runs the task bare. *)

(** Persistent fixed-size worker pool.

    Unlike {!parallel_map} — which spawns domains per call and fails the
    whole batch on the first exception — a persistent pool keeps its
    domains alive across many independent submissions and isolates
    failures per task: an exception inside one task is captured in that
    task's result and the workers carry on.  This is the substrate of the
    batch-optimisation service ({!Cpla_serve.Scheduler}).

    Thread-safety: every operation may be called from any domain.  Tasks
    are executed in FIFO submission order (callers wanting a different
    policy order their submissions, e.g. by draining a priority queue). *)
module Persistent : sig
  type t
  (** A pool of worker domains and its pending-task queue. *)

  type 'a task
  (** Handle for one submitted unit of work. *)

  exception Cancelled
  (** Terminal result of a task revoked by {!cancel} (or discarded by an
      aborting {!shutdown}) before any worker claimed it.  Surfaced as
      [Error Cancelled] from {!await}, never raised by the pool itself. *)

  val create : workers:int -> t
  (** Spawn [workers] domains that block waiting for submissions.
      @raise Invalid_argument when [workers < 1]. *)

  val submit : t -> (unit -> 'a) -> 'a task
  (** Enqueue a task; returns immediately.
      @raise Invalid_argument after {!shutdown}. *)

  val await : t -> 'a task -> ('a, exn) result
  (** Block until the task is terminal: [Ok v] on success, [Error e] when
      the task raised [e] or was cancelled ([Error Cancelled]). *)

  val cancel : t -> 'a task -> bool
  (** Revoke a task that no worker has claimed yet; [true] when the
      cancellation won (the task settles as [Error Cancelled]).  [false]
      when the task already started or finished — in-flight work is only
      stoppable cooperatively (see {!Cpla_serve.Token}). *)

  val shutdown : ?drain:bool -> t -> unit
  (** Stop the pool and join its domains.  [drain] (default [true]) runs
      every pending task first; [~drain:false] discards pending tasks as
      [Error Cancelled] and joins as soon as in-flight tasks finish.
      Idempotent; awaiting any previously submitted task remains valid. *)
end
