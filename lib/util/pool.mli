(** Deterministic parallel map over OCaml 5 domains.

    Substitute for the paper's OpenMP partition loop: partitions with
    similar sizes are independent work items, so a fixed-size domain pool
    pulling indices from a shared counter balances them well.  Output order
    is by input index, so results are deterministic regardless of
    scheduling (provided [f] itself is deterministic and does not share
    mutable state across items). *)

exception Worker_failure of exn
(** Wraps the first exception raised by [f] on a pooled domain.  The
    sequential fast path ([workers <= 1] or fewer than two items) raises
    [f]'s exception unwrapped. *)

val parallel_map : workers:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map ~workers f xs] maps [f] over [xs] using up to [workers]
    domains ([workers <= 1] runs sequentially, in-domain).  Exceptions in
    [f] are re-raised in the caller after all domains join, wrapped in
    {!Worker_failure}. *)

val recommended_workers : unit -> int
(** [Domain.recommended_domain_count - 1], at least 1. *)
