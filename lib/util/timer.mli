(** Stopwatches for the runtime columns of the experiment tables.

    Two clocks:
    - {!start} measures CPU seconds ([Sys.time]).  This is the paper's
      CPU(s) column and stays the right choice for single-threaded
      optimisation runs.
    - {!wall} measures elapsed wall-clock seconds on [CLOCK_MONOTONIC].
      Under the domain pool CPU time advances once per running domain, so
      every parallel or serve-side measurement (job wall times, deadlines,
      throughput benchmarks) must use the wall stopwatch instead.  The
      monotonic source cannot step backwards, so elapsed readings are
      non-negative by construction (no clamping).

    {!now_ns} exposes the same monotonic clock as raw nanoseconds for event
    timestamps (observability spans). *)

type t
(** A running stopwatch (CPU or wall, fixed at creation). *)

val start : unit -> t
(** Start a CPU-seconds stopwatch now. *)

val wall : unit -> t
(** Start a monotonic wall-clock stopwatch now. *)

val elapsed_s : t -> float
(** Seconds since the stopwatch started, on the stopwatch's own clock. *)

val now_ns : unit -> int64
(** Current [CLOCK_MONOTONIC] reading in nanoseconds.  Only differences are
    meaningful; the origin is unspecified (typically boot time). *)

val now_s : unit -> float
(** [now_ns] scaled to seconds. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with elapsed CPU seconds. *)

val wall_time : (unit -> 'a) -> 'a * float
(** [wall_time f] runs [f ()] and returns its result with elapsed
    wall-clock seconds. *)
