(** Small summary-statistics helpers used by the timing reports and the
    experiment harness. *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val max : float array -> float
(** Maximum; 0 on the empty array (like {!mean}, so empty released sets
    score 0 instead of poisoning accumulators with [neg_infinity]). *)

val min : float array -> float
(** Minimum; 0 on the empty array (see {!max}). *)

val stddev : float array -> float
(** Population standard deviation; 0 on arrays of length < 2. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation between
    order statistics.  0 on the empty array (matching {!min}/{!max}, so a
    report over zero samples prints zeros instead of aborting the run).
    Raises [Invalid_argument] when [p] is out of range. *)

val sum : float array -> float
(** Compensated (Kahan) summation. *)

val geometric_mean : float array -> float
(** Geometric mean of positive values; 0 if any value is non-positive. *)
