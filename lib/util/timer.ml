type clock = Cpu | Wall

type t = { clock : clock; origin : float }

(* Sys.time measures CPU seconds, which matches the paper's CPU(s) column
   for a single-threaded run but overstates elapsed time as soon as several
   domains are live (process CPU time advances once per running domain).
   Wall stopwatches read Unix.gettimeofday; it is not a strictly monotonic
   source, so elapsed readings are clamped non-negative rather than letting
   a clock adjustment produce a negative duration. *)
let read = function Cpu -> Sys.time () | Wall -> Unix.gettimeofday ()

let start () = { clock = Cpu; origin = Sys.time () }

let wall () = { clock = Wall; origin = Unix.gettimeofday () }

let elapsed_s t = Float.max 0.0 (read t.clock -. t.origin)

let time f =
  let t = start () in
  let v = f () in
  (v, elapsed_s t)

let wall_time f =
  let t = wall () in
  let v = f () in
  (v, elapsed_s t)
