type clock = Cpu | Wall

type t = { clock : clock; origin : float }

(* Sys.time measures CPU seconds, which matches the paper's CPU(s) column
   for a single-threaded run but overstates elapsed time as soon as several
   domains are live (process CPU time advances once per running domain).
   Wall stopwatches read CLOCK_MONOTONIC (via the noalloc bechamel stub —
   OCaml 5.1's Unix module has no clock_gettime): immune to NTP steps and
   manual clock adjustments, so serve deadlines and span timestamps cannot
   run backwards and no negative-elapsed clamp is needed. *)
let now_ns () = Monotonic_clock.now ()

let now_s () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let read = function Cpu -> Sys.time () | Wall -> now_s ()

let start () = { clock = Cpu; origin = Sys.time () }

let wall () = { clock = Wall; origin = now_s () }

let elapsed_s t = read t.clock -. t.origin

let time f =
  let t = start () in
  let v = f () in
  (v, elapsed_s t)

let wall_time f =
  let t = wall () in
  let v = f () in
  (v, elapsed_s t)
