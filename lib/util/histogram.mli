(** Fixed-bin histograms with an ASCII rendering, used for the pin-delay
    distribution plots of Fig. 1 and the observability metrics registry. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] covers [\[lo, hi)] with [bins] equal-width bins.
    Samples outside the range are counted in the {!underflow} / {!overflow}
    tallies (not clamped into the end bins); NaN samples are skipped and
    counted by {!nan_count}.  Raises [Invalid_argument] if [bins <= 0] or
    [hi <= lo]. *)

val add : t -> float -> unit
(** Record one sample. *)

val add_all : t -> float array -> unit
(** Record many samples. *)

val counts : t -> int array
(** A copy of the per-bin (in-range) counts. *)

val total : t -> int
(** Number of recorded non-NaN samples, including under/overflow. *)

val underflow : t -> int
(** Samples below [lo]. *)

val overflow : t -> int
(** Samples at or above [hi]. *)

val nan_count : t -> int
(** NaN samples seen by {!add}; skipped, never binned, not in {!total}. *)

val bin_center : t -> int -> float
(** Mid-point value of bin [i]. *)

val render : ?width:int -> ?label:string -> t -> string
(** Log-scale horizontal bar chart (counts grow exponentially in the paper's
    Fig. 1 y-axis), one line per bin, with trailing under/overflow and NaN
    lines when those tallies are non-zero. *)
