type arg = Int of int | Float of float | Str of string

type phase = Begin | End | Instant

type t = {
  name : string;
  ph : phase;
  ts_ns : int64;  (* Util.Timer.now_ns: the serve-deadline monotonic clock *)
  dom : int;      (* Domain.self of the recording domain = trace track id *)
  args : (string * arg) list;
}
