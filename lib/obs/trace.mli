(** Chrome trace-event JSON exporter.

    The output loads in Perfetto (ui.perfetto.dev) and chrome://tracing:
    one process (pid 0), one named track per OCaml domain, timestamps in
    microseconds normalised to the earliest event. *)

val json : Event.t list -> string
(** Render events (as returned by {!Sink.drain}) to a trace-event JSON
    document.  Pure: writing the file is the caller's business. *)
