(* Facade: the one switch callers flip, plus lifecycle plumbing.

   Enabling also installs the pool probe so tasks executed on worker
   domains are spanned from the domain that runs them — the pool itself
   cannot depend on this library, so the wiring happens here. *)

let set_enabled v =
  Cpla_util.Pool.set_probe (if v then Span.pool_probe else Cpla_util.Pool.null_probe);
  Control.set_enabled v

let enabled = Control.enabled

let reset () =
  Sink.reset ();
  Metrics.reset ()
