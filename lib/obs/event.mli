(** Trace events, the unit of the span buffers and the Chrome exporter. *)

type arg = Int of int | Float of float | Str of string

type phase =
  | Begin  (** span opened ([ph:"B"]) *)
  | End  (** span closed ([ph:"E"]) *)
  | Instant  (** point event ([ph:"i"]) *)

type t = {
  name : string;
  ph : phase;
  ts_ns : int64;
      (** monotonic nanoseconds ({!Cpla_util.Timer.now_ns}) — the same
          clock the serve deadlines run on *)
  dom : int;  (** recording domain's id; one trace track per domain *)
  args : (string * arg) list;
}
