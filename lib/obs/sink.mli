(** Per-domain span buffers: lock-free recording, merge on drain.

    Recording appends to the calling domain's own buffer (domain-local
    storage), so the hot path takes no lock and worker domains never
    contend.  {!drain} and {!reset} walk every domain's buffer and are only
    safe once the recording domains have been joined — which the pipeline
    guarantees by reporting strictly after parallel sections complete. *)

val record : Event.t -> unit
(** Append one event to the calling domain's buffer.  Callers gate on
    {!Control.enabled}; [record] itself is unconditional. *)

val drain : unit -> Event.t list
(** All buffered events from every domain, sorted by timestamp; buffers are
    emptied.  Call only after recording domains have joined. *)

val reset : unit -> unit
(** Discard all buffered events (same joining caveat as {!drain}). *)
