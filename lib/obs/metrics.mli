(** Named metrics registry: counters, gauges and histograms.

    Metrics are addressed by name at the call site ([incr "driver/iters"]);
    the first use of a name registers it.  Every mutating entry point is a
    no-op while observability is disabled, so instrumented code records
    nothing — and registers nothing — unless the run opted in.

    A name is permanently bound to the kind of its first use; using it with
    another kind raises [Invalid_argument]. *)

val incr : ?by:int -> string -> unit
(** Bump a counter (default [by = 1]). *)

val set : string -> float -> unit
(** Set a gauge to its latest value. *)

val observe : ?lo:float -> ?hi:float -> ?bins:int -> string -> float -> unit
(** Record one sample into a histogram.  [lo]/[hi]/[bins] shape the
    histogram when this observation registers it (defaults [0, 1000) in 20
    bins) and are ignored afterwards. *)

val counter_value : string -> int option
(** Current counter reading, [None] if the name is unregistered or not a
    counter. *)

val gauge_value : string -> float option
(** Current gauge reading, [None] if unregistered or not a gauge. *)

val dump : unit -> string
(** Render every registered metric: a name/kind/value table followed by an
    ASCII render of each histogram. *)

val reset : unit -> unit
(** Forget every registered metric (tests and between serve batches). *)
