(* Named counters, gauges and histograms.

   The registry is an Atomic association list grown by compare-and-set:
   consistent with the top-mutable rule (no top-level Hashtbl), and cheap
   because a pipeline registers a dozen metrics, not thousands.  Counters
   and gauges are Atomics (any domain may bump them); histograms reuse the
   range-audited Util.Histogram behind a mutex, since observations are per
   leaf or per job, never in a solver inner loop.

   Every mutating entry point is gated on Control.enabled: a disabled run
   registers nothing and records nothing, so its dump is byte-identical to
   a run that never loaded this module (the obs-disabled equivalence
   test). *)

type value =
  | Counter of int Atomic.t
  | Gauge of float Atomic.t
  | Hist of { m : Mutex.t; h : Cpla_util.Histogram.t }

let registry : (string * value) list Atomic.t = Atomic.make []

let rec intern name make =
  let cur = Atomic.get registry in
  match List.assoc_opt name cur with
  | Some v -> v
  | None ->
      let v = make () in
      if Atomic.compare_and_set registry cur ((name, v) :: cur) then v
      else intern name make

let kind_error name =
  invalid_arg (Printf.sprintf "Obs.Metrics: %s already registered with another kind" name)

let incr ?(by = 1) name =
  if Control.enabled () then
    match intern name (fun () -> Counter (Atomic.make 0)) with
    | Counter c -> ignore (Atomic.fetch_and_add c by)
    | Gauge _ | Hist _ -> kind_error name

let set name v =
  if Control.enabled () then
    match intern name (fun () -> Gauge (Atomic.make 0.0)) with
    | Gauge g -> Atomic.set g v
    | Counter _ | Hist _ -> kind_error name

let observe ?(lo = 0.0) ?(hi = 1000.0) ?(bins = 20) name v =
  if Control.enabled () then
    match
      intern name (fun () ->
          Hist { m = Mutex.create (); h = Cpla_util.Histogram.create ~lo ~hi ~bins })
    with
    | Hist { m; h } ->
        (* per-histogram lock around a single bin increment *)
        (Mutex.lock m [@cpla.allow "blocking-in-loop"]);
        Cpla_util.Histogram.add h v;
        Mutex.unlock m
    | Counter _ | Gauge _ -> kind_error name

let counter_value name =
  match List.assoc_opt name (Atomic.get registry) with
  | Some (Counter c) -> Some (Atomic.get c)
  | _ -> None

let gauge_value name =
  match List.assoc_opt name (Atomic.get registry) with
  | Some (Gauge g) -> Some (Atomic.get g)
  | _ -> None

let dump () =
  let entries =
    List.sort (fun (a, _) (b, _) -> String.compare a b) (Atomic.get registry)
  in
  let t = Cpla_util.Table.create ~headers:[ "metric"; "kind"; "value" ] in
  List.iter
    (fun (name, v) ->
      let kind, cell =
        match v with
        | Counter c -> ("counter", string_of_int (Atomic.get c))
        | Gauge g -> ("gauge", Printf.sprintf "%.3f" (Atomic.get g))
        | Hist { m; h } ->
            Mutex.lock m;
            let cell =
              Printf.sprintf "n=%d under=%d over=%d nan=%d" (Cpla_util.Histogram.total h)
                (Cpla_util.Histogram.underflow h)
                (Cpla_util.Histogram.overflow h)
                (Cpla_util.Histogram.nan_count h)
            in
            Mutex.unlock m;
            ("histogram", cell)
      in
      Cpla_util.Table.add_row t [ name; kind; cell ])
    entries;
  let hists =
    List.filter_map
      (function
        | name, Hist { m; h } ->
            Mutex.lock m;
            let r = Cpla_util.Histogram.render ~label:name h in
            Mutex.unlock m;
            Some r
        | _ -> None)
      entries
  in
  String.concat "\n" (Cpla_util.Table.render t :: hists)

let reset () = Atomic.set registry []
