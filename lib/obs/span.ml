let dom_id () = (Domain.self () :> int)

let with_ ~name ?(args = []) f =
  if not (Control.enabled ()) then f ()
  else begin
    Sink.record
      { Event.name; ph = Event.Begin; ts_ns = Cpla_util.Timer.now_ns (); dom = dom_id (); args };
    let finish args =
      Sink.record
        { Event.name; ph = Event.End; ts_ns = Cpla_util.Timer.now_ns (); dom = dom_id (); args }
    in
    match f () with
    | v ->
        finish [];
        v
    | exception e ->
        finish [ ("exn", Event.Str (Printexc.to_string e)) ];
        raise e
  end

let instant ~name ?(args = []) () =
  if Control.enabled () then
    Sink.record
      {
        Event.name;
        ph = Event.Instant;
        ts_ns = Cpla_util.Timer.now_ns ();
        dom = dom_id ();
        args;
      }

(* The worker pool lives below this library (cpla_util), so it cannot call
   [with_] directly; it exposes a probe slot instead and [Obs.set_enabled]
   installs this wrapper there.  Running the wrapper on the worker domain —
   not at submit time — is what lands each task's span in that domain's own
   buffer, giving the trace one track per worker. *)
let pool_probe =
  {
    Cpla_util.Pool.wrap =
      (fun ~name ~index f -> with_ ~name ~args:[ ("index", Event.Int index) ] f);
  }
