(* Chrome trace-event JSON (the "JSON Array Format" with a traceEvents
   wrapper, as loaded by Perfetto and chrome://tracing).

   Timestamps are microseconds; we normalise to the earliest event so the
   trace starts at t=0 instead of at an arbitrary monotonic-clock origin.
   Each OCaml domain becomes one track: pid 0, tid = domain id, with a
   thread_name metadata event so Perfetto labels the track. *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let arg_json = function
  | Event.Int i -> string_of_int i
  | Event.Float f ->
      (* JSON has no NaN/Infinity literals; degrade to a string *)
      if Float.is_finite f then Printf.sprintf "%.6g" f
      else Printf.sprintf "\"%s\"" (string_of_float f)
  | Event.Str s -> Printf.sprintf "\"%s\"" (escape s)

let args_json = function
  | [] -> ""
  | args ->
      let fields =
        List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (escape k) (arg_json v)) args
      in
      Printf.sprintf ",\"args\":{%s}" (String.concat "," fields)

let phase_str = function Event.Begin -> "B" | Event.End -> "E" | Event.Instant -> "i"

let event_json ~origin (e : Event.t) =
  let ts = Int64.to_float (Int64.sub e.ts_ns origin) /. 1e3 in
  let scope = match e.ph with Event.Instant -> ",\"s\":\"t\"" | _ -> "" in
  Printf.sprintf "{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":0,\"tid\":%d%s%s}"
    (escape e.name) (phase_str e.ph) ts e.dom scope (args_json e.args)

let thread_meta dom =
  Printf.sprintf
    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"domain %d\"}}"
    dom dom

let json (events : Event.t list) =
  let origin =
    List.fold_left (fun acc (e : Event.t) -> min acc e.ts_ns) Int64.max_int events
  in
  let origin = if origin = Int64.max_int then 0L else origin in
  let doms =
    List.sort_uniq Int.compare (List.map (fun (e : Event.t) -> e.dom) events)
  in
  let lines =
    List.map thread_meta doms @ List.map (event_json ~origin) events
  in
  Printf.sprintf "{\"traceEvents\":[%s]}\n" (String.concat ",\n" lines)
