(* Per-domain event buffers.

   The recording hot path takes no lock: each domain appends to its own
   chunk, reached through domain-local storage, so concurrent partition
   solves and pool tasks never contend (and never interleave their writes).
   A chunk registers itself once, through a compare-and-set loop on the
   global Atomic registry list — the one cross-domain handshake, off the
   recording path.

   Draining reads every registered chunk from the calling domain.  That is
   only safe when no other domain is still recording; the pipeline
   guarantees it because every instrumented parallel section (Pool's
   spawned workers, the serve pool after shutdown) has joined before a
   report is assembled.  [drain] is documented accordingly. *)

type chunk = {
  dom : int;
  mutable evs : Event.t array;
  mutable len : int;
}

let dummy = { Event.name = ""; ph = Event.Instant; ts_ns = 0L; dom = -1; args = [] }

let registry : chunk list Atomic.t = Atomic.make []

let key =
  Domain.DLS.new_key (fun () ->
      let c = { dom = (Domain.self () :> int); evs = Array.make 256 dummy; len = 0 } in
      let rec register () =
        let cur = Atomic.get registry in
        if not (Atomic.compare_and_set registry cur (c :: cur)) then register ()
      in
      register ();
      c)

let record ev =
  let c = Domain.DLS.get key in
  if c.len = Array.length c.evs then begin
    let bigger = Array.make (2 * c.len) dummy in
    Array.blit c.evs 0 bigger 0 c.len;
    c.evs <- bigger
  end;
  c.evs.(c.len) <- ev;
  c.len <- c.len + 1

let drain () =
  let chunks = Atomic.get registry in
  let evs =
    List.concat_map
      (fun c ->
        let out = Array.to_list (Array.sub c.evs 0 c.len) in
        c.len <- 0;
        out)
      chunks
  in
  List.stable_sort (fun (a : Event.t) (b : Event.t) -> Int64.compare a.ts_ns b.ts_ns) evs

let reset () =
  List.iter (fun c -> c.len <- 0) (Atomic.get registry)
