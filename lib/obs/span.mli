(** Nested spans over the per-domain buffers.

    With observability disabled (the default) every entry point is a single
    atomic load and a tail call — no events, no allocation beyond the
    caller's closure. *)

val with_ : name:string -> ?args:(string * Event.arg) list -> (unit -> 'a) -> 'a
(** [with_ ~name f] runs [f] between a Begin and an End event on the calling
    domain's buffer.  [args] ride on the Begin event; if [f] raises, the End
    event carries the exception under an ["exn"] arg and the exception is
    re-raised unchanged. *)

val instant : name:string -> ?args:(string * Event.arg) list -> unit -> unit
(** Record a point event (job submissions, terminal states). *)

val pool_probe : Cpla_util.Pool.probe
(** Task-wrapping probe for {!Cpla_util.Pool.set_probe}: spans each pool
    task on the worker domain that executes it, so parallelism is visible
    as per-domain tracks in the trace. *)
