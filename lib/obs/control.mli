(** Global observability switch (disabled by default).

    Prefer {!Obs.set_enabled}, which also installs the pool probe; this
    module only owns the atomic flag so that {!Span} and {!Metrics} can
    poll it without a dependency cycle. *)

val enabled : unit -> bool
(** One atomic load; the guard on every instrumentation hot path. *)

val set_enabled : bool -> unit
(** Flip the switch.  Takes effect immediately on all domains. *)
