(* The global observability switch.  A single Atomic read guards every hot
   path in the instrumented pipeline: with the switch off, spans and metric
   updates reduce to one load and a branch, which is what keeps the
   instrumented build within the 2% overhead budget of the seed kernels
   (bench section obs/overhead). *)

let on = Atomic.make false

let enabled () = Atomic.get on

let set_enabled v = Atomic.set on v
