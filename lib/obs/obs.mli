(** Observability switchboard.

    Disabled by default: every span and metric call in the pipeline reduces
    to one atomic load.  [set_enabled true] turns recording on and installs
    the pool-task probe so worker-domain execution shows up as per-domain
    trace tracks.  Spans live in {!Span}, metrics in {!Metrics}, export in
    {!Trace} / {!Metrics.dump}. *)

val set_enabled : bool -> unit
(** Flip the global switch (and the {!Cpla_util.Pool} probe with it). *)

val enabled : unit -> bool
(** Current state of the switch. *)

val reset : unit -> unit
(** Drop all buffered events and registered metrics.  Only safe once
    recording domains have joined (see {!Sink}). *)
