(* This module's deliverable *is* its stdout: it renders the paper's figures
   and tables for `cpla expt`, and is only ever driven from the CLI.  The
   file-level allow documents stdout as its sanctioned sink. *)
[@@@cpla.allow "stdout-print"]

open Cpla_util
open Cpla_timing

let released_at prepared ~ratio = Incremental.select prepared.Suite.engine ~ratio

let run_tila prepared ~released =
  let asg = prepared.Suite.asg in
  let (_ : Cpla_tila.Tila.stats), cpu_s =
    Timer.time (fun () -> Cpla_tila.Tila.optimize asg ~released)
  in
  Cpla.Metrics.measure ~engine:prepared.Suite.engine asg ~released ~cpu_s

let run_cpla ?(config = Cpla.Config.default) prepared ~released =
  let asg = prepared.Suite.asg in
  let engine = prepared.Suite.engine in
  let (_ : Cpla.Driver.report), cpu_s =
    Timer.time (fun () -> Cpla.Driver.optimize_released ~config ~engine asg ~released)
  in
  Cpla.Metrics.measure ~engine asg ~released ~cpu_s

let header title =
  Printf.printf "\n==================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==================================================================\n%!"

(* ---- Fig. 1 -------------------------------------------------------------- *)

let fig1 () =
  header
    "Fig. 1 — pin delay distribution of critical nets (adaptec1, 0.5% released)";
  let bench = Suite.find "adaptec1" in
  let tila_prep = Suite.prepare bench in
  let released = released_at tila_prep ~ratio:0.005 in
  ignore (run_tila tila_prep ~released);
  let tila_delays = Incremental.pin_delays tila_prep.Suite.engine released in
  let sdp_prep = Suite.prepare bench in
  ignore (run_cpla sdp_prep ~released);
  let sdp_delays = Incremental.pin_delays sdp_prep.Suite.engine released in
  let hi =
    1.02 *. Float.max (Stats.max tila_delays) (Float.max 1.0 (Stats.max sdp_delays))
  in
  let render label delays =
    let h = Histogram.create ~lo:0.0 ~hi ~bins:14 in
    Histogram.add_all h delays;
    print_string (Histogram.render ~label h)
  in
  render "(a) TILA — pin delays of critical nets" tila_delays;
  render "(b) ours (SDP) — pin delays of critical nets" sdp_delays;
  Printf.printf "TILA worst pin: %.1f   ours worst pin: %.1f\n%!" (Stats.max tila_delays)
    (Stats.max sdp_delays)

(* ---- Fig. 3b -------------------------------------------------------------- *)

let fig3b () =
  header "Fig. 3b — routing density map (adaptec1, after global routing)";
  let prep = Suite.prepare (Suite.find "adaptec1") in
  print_string (Cpla_grid.Graph.density_map (Cpla_route.Assignment.graph prep.Suite.asg));
  Printf.printf "('.'=idle, '0'-'9' = 0-90%% utilisation, '#' = saturated)\n%!"

(* ---- Fig. 7 -------------------------------------------------------------- *)

let fig7 () =
  header "Fig. 7 — ILP vs SDP on small cases (0.5% released)";
  let t = Table.create ~headers:[ "bench"; "ILP Avg"; "SDP Avg"; "ILP Max"; "SDP Max"; "ILP s"; "SDP s" ] in
  List.iter
    (fun bench ->
      let ilp_prep = Suite.prepare bench in
      let released = released_at ilp_prep ~ratio:0.005 in
      let ilp_config = { Cpla.Config.default with Cpla.Config.method_ = Cpla.Config.Ilp } in
      let ilp = run_cpla ~config:ilp_config ilp_prep ~released in
      let sdp_prep = Suite.prepare bench in
      let sdp = run_cpla sdp_prep ~released in
      Table.add_row t
        [
          bench.Suite.name;
          Table.cell_f ilp.Cpla.Metrics.avg_tcp;
          Table.cell_f sdp.Cpla.Metrics.avg_tcp;
          Table.cell_f ilp.Cpla.Metrics.max_tcp;
          Table.cell_f sdp.Cpla.Metrics.max_tcp;
          Table.cell_f ~digits:3 ilp.Cpla.Metrics.cpu_s;
          Table.cell_f ~digits:3 sdp.Cpla.Metrics.cpu_s;
        ])
    Suite.small_cases;
  Table.print t;
  (* Fig. 7c's message is ILP's runtime blow-up.  Our branch-and-bound on
     the default 10-segment partitions mostly terminates at the LP root, so
     the inversion point is visible by growing the partition bound: the ILP
     has O((segments·layers)²) linking variables and explodes, the SDP does
     not.  (The paper: "for large test cases [the ILP] cannot finish in two
     hours".) *)
  Printf.printf "\nruntime scaling with partition size (adaptec1, 0.5%% released):\n";
  let t2 =
    Table.create
      ~headers:[ "max seg/part"; "ILP s"; "SDP s"; "ILP Avg"; "SDP Avg" ]
  in
  List.iter
    (fun nmax ->
      let cell_of config =
        let prep = Suite.prepare (Suite.find "adaptec1") in
        let released = released_at prep ~ratio:0.005 in
        run_cpla ~config prep ~released
      in
      let base = { Cpla.Config.default with Cpla.Config.max_segments_per_partition = nmax } in
      let ilp = cell_of { base with Cpla.Config.method_ = Cpla.Config.Ilp } in
      let sdp = cell_of base in
      Table.add_row t2
        [
          Table.cell_i nmax;
          Table.cell_f ~digits:3 ilp.Cpla.Metrics.cpu_s;
          Table.cell_f ~digits:3 sdp.Cpla.Metrics.cpu_s;
          Table.cell_f ilp.Cpla.Metrics.avg_tcp;
          Table.cell_f sdp.Cpla.Metrics.avg_tcp;
        ])
    [ 10; 20; 40; 80 ];
  Table.print t2

(* ---- Fig. 8 -------------------------------------------------------------- *)

let fig8 () =
  header "Fig. 8 — partition granularity impact (SDP, 0.5% released)";
  let t =
    Table.create ~headers:[ "bench"; "max seg/part"; "Avg(Tcp)"; "Max(Tcp)"; "CPU(s)" ]
  in
  List.iter
    (fun name ->
      List.iter
        (fun nmax ->
          let prep = Suite.prepare (Suite.find name) in
          let released = released_at prep ~ratio:0.005 in
          let config =
            { Cpla.Config.default with Cpla.Config.max_segments_per_partition = nmax }
          in
          let m = run_cpla ~config prep ~released in
          Table.add_row t
            [
              name;
              Table.cell_i nmax;
              Table.cell_f m.Cpla.Metrics.avg_tcp;
              Table.cell_f m.Cpla.Metrics.max_tcp;
              Table.cell_f ~digits:3 m.Cpla.Metrics.cpu_s;
            ])
        [ 5; 10; 20; 40; 80 ];
      Table.add_separator t)
    [ "adaptec1"; "adaptec2"; "bigblue1" ];
  Table.print t

(* ---- Fig. 9 -------------------------------------------------------------- *)

let fig9 () =
  header "Fig. 9 — critical ratio impact (adaptec1)";
  let t =
    Table.create
      ~headers:
        [ "ratio %"; "TILA Avg"; "SDP Avg"; "TILA Max"; "SDP Max"; "TILA s"; "SDP s" ]
  in
  List.iter
    (fun ratio ->
      let bench = Suite.find "adaptec1" in
      let tila_prep = Suite.prepare bench in
      let released = released_at tila_prep ~ratio in
      let tila = run_tila tila_prep ~released in
      let sdp_prep = Suite.prepare bench in
      let sdp = run_cpla sdp_prep ~released in
      Table.add_row t
        [
          Table.cell_f ~digits:1 (100.0 *. ratio);
          Table.cell_f tila.Cpla.Metrics.avg_tcp;
          Table.cell_f sdp.Cpla.Metrics.avg_tcp;
          Table.cell_f tila.Cpla.Metrics.max_tcp;
          Table.cell_f sdp.Cpla.Metrics.max_tcp;
          Table.cell_f ~digits:3 tila.Cpla.Metrics.cpu_s;
          Table.cell_f ~digits:3 sdp.Cpla.Metrics.cpu_s;
        ])
    [ 0.005; 0.010; 0.015; 0.020; 0.025 ];
  Table.print t

(* ---- Table 2 -------------------------------------------------------------- *)

let table2 () =
  header "Table 2 — TILA-0.5% vs SDP-0.5% on all 15 benchmarks";
  let t =
    Table.create
      ~headers:
        [
          "bench";
          "TILA Avg";
          "TILA Max";
          "TILA OV#";
          "TILA via#";
          "TILA s";
          "SDP Avg";
          "SDP Max";
          "SDP OV#";
          "SDP via#";
          "SDP s";
        ]
  in
  let acc = Hashtbl.create 16 in
  let accumulate key v =
    Hashtbl.replace acc key (v :: Option.value ~default:[] (Hashtbl.find_opt acc key))
  in
  List.iter
    (fun bench ->
      let tila_prep = Suite.prepare bench in
      let released = released_at tila_prep ~ratio:0.005 in
      let tila = run_tila tila_prep ~released in
      let sdp_prep = Suite.prepare bench in
      let sdp = run_cpla sdp_prep ~released in
      accumulate "tila_avg" tila.Cpla.Metrics.avg_tcp;
      accumulate "tila_max" tila.Cpla.Metrics.max_tcp;
      accumulate "tila_ov" (float_of_int tila.Cpla.Metrics.via_overflow);
      accumulate "tila_via" (float_of_int tila.Cpla.Metrics.via_count);
      accumulate "tila_s" tila.Cpla.Metrics.cpu_s;
      accumulate "sdp_avg" sdp.Cpla.Metrics.avg_tcp;
      accumulate "sdp_max" sdp.Cpla.Metrics.max_tcp;
      accumulate "sdp_ov" (float_of_int sdp.Cpla.Metrics.via_overflow);
      accumulate "sdp_via" (float_of_int sdp.Cpla.Metrics.via_count);
      accumulate "sdp_s" sdp.Cpla.Metrics.cpu_s;
      Table.add_row t
        [
          bench.Suite.name;
          Table.cell_f tila.Cpla.Metrics.avg_tcp;
          Table.cell_f tila.Cpla.Metrics.max_tcp;
          Table.cell_i tila.Cpla.Metrics.via_overflow;
          Table.cell_i tila.Cpla.Metrics.via_count;
          Table.cell_f ~digits:2 tila.Cpla.Metrics.cpu_s;
          Table.cell_f sdp.Cpla.Metrics.avg_tcp;
          Table.cell_f sdp.Cpla.Metrics.max_tcp;
          Table.cell_i sdp.Cpla.Metrics.via_overflow;
          Table.cell_i sdp.Cpla.Metrics.via_count;
          Table.cell_f ~digits:2 sdp.Cpla.Metrics.cpu_s;
        ])
    Suite.all;
  let avg key = Stats.mean (Array.of_list (Hashtbl.find acc key)) in
  Table.add_separator t;
  Table.add_row t
    [
      "average";
      Table.cell_f (avg "tila_avg");
      Table.cell_f (avg "tila_max");
      Table.cell_f ~digits:0 (avg "tila_ov");
      Table.cell_f ~digits:0 (avg "tila_via");
      Table.cell_f (avg "tila_s");
      Table.cell_f (avg "sdp_avg");
      Table.cell_f (avg "sdp_max");
      Table.cell_f ~digits:0 (avg "sdp_ov");
      Table.cell_f ~digits:0 (avg "sdp_via");
      Table.cell_f (avg "sdp_s");
    ];
  let ratio a b = if avg b = 0.0 then 0.0 else avg a /. avg b in
  Table.add_row t
    [
      "ratio";
      "1.00";
      "1.00";
      "1.00";
      "1.00";
      "1.00";
      Table.cell_f (ratio "sdp_avg" "tila_avg");
      Table.cell_f (ratio "sdp_max" "tila_max");
      Table.cell_f (ratio "sdp_ov" "tila_ov");
      Table.cell_f (ratio "sdp_via" "tila_via");
      Table.cell_f (ratio "sdp_s" "tila_s");
    ];
  Table.print t;
  Printf.printf
    "(paper reference ratios: Avg 0.86, Max 0.96, OV# 0.90, via# 1.00, CPU 3.16)\n%!"

(* ---- extended comparison ------------------------------------------------------ *)

let run_greedy prepared ~released =
  let asg = prepared.Suite.asg in
  let (_ : Cpla_tila.Delay_greedy.stats), cpu_s =
    Timer.time (fun () -> Cpla_tila.Delay_greedy.optimize asg ~released)
  in
  Cpla.Metrics.measure ~engine:prepared.Suite.engine asg ~released ~cpu_s

let extended () =
  header
    "Extended comparison — initial / delay-greedy [9] / TILA [4] / SDP (0.5% released)";
  let t =
    Table.create
      ~headers:[ "bench"; "method"; "Avg(Tcp)"; "Max(Tcp)"; "OV#"; "edge OV"; "CPU(s)" ]
  in
  List.iter
    (fun name ->
      let methods =
        [
          ("initial", fun prep ~released -> run_cpla ~config:{ Cpla.Config.default with Cpla.Config.max_outer_iters = 0 } prep ~released);
          ("delay-greedy [9]", run_greedy);
          ("TILA [4]", run_tila);
          ("SDP (ours)", fun prep ~released -> run_cpla prep ~released);
        ]
      in
      List.iter
        (fun (label, runner) ->
          let prep = Suite.prepare (Suite.find name) in
          let released = released_at prep ~ratio:0.005 in
          let m = runner prep ~released in
          Table.add_row t
            [
              name;
              label;
              Table.cell_f m.Cpla.Metrics.avg_tcp;
              Table.cell_f m.Cpla.Metrics.max_tcp;
              Table.cell_i m.Cpla.Metrics.via_overflow;
              Table.cell_i m.Cpla.Metrics.edge_overflow;
              Table.cell_f ~digits:3 m.Cpla.Metrics.cpu_s;
            ])
        methods;
      Table.add_separator t)
    [ "adaptec1"; "bigblue1"; "newblue4" ];
  Table.print t;
  Printf.printf
    "(delay-greedy [9] reaches competitive delay but, with no capacity model\n\
    \ beyond a per-net feasibility check, it is the only method that *adds*\n\
    \ wire overflow — the paper's \"illegal solutions\" critique)\n%!"

(* ---- steiner topology refinement ---------------------------------------------- *)

let steiner () =
  header "Topology refinement — iterated 1-Steiner router option (adaptec1)";
  let bench = Suite.find "adaptec1" in
  let t =
    Table.create
      ~headers:[ "router"; "wirelength"; "2-D overflow"; "route s"; "Avg(Tcp) @0.5%" ]
  in
  List.iter
    (fun (label, use_steiner) ->
      let graph, nets = Cpla_route.Synth.generate bench.Suite.spec in
      let routed, route_s =
        Timer.time (fun () -> Cpla_route.Router.route_all ~steiner:use_steiner ~graph nets)
      in
      let wl =
        Array.fold_left
          (fun acc tr ->
            match tr with
            | Some tree -> acc + Cpla_route.Stree.total_wirelength tree
            | None -> acc)
          0 routed.Cpla_route.Router.trees
      in
      let asg =
        Cpla_route.Assignment.create ~graph ~nets ~trees:routed.Cpla_route.Router.trees
      in
      Cpla_route.Init_assign.run asg;
      let engine = Incremental.create asg in
      let released = Incremental.select engine ~ratio:0.005 in
      let rep = Cpla.Driver.optimize_released ~engine asg ~released in
      Table.add_row t
        [
          label;
          Table.cell_i wl;
          Table.cell_i routed.Cpla_route.Router.overflow_2d;
          Table.cell_f ~digits:3 route_s;
          Table.cell_f rep.Cpla.Driver.avg_tcp;
        ])
    [ ("prim (default)", false); ("iterated 1-steiner", true) ];
  Table.print t

(* ---- ablations -------------------------------------------------------------- *)

let ablations () =
  header "Ablations — design choices of the SDP method (0.5% released)";
  let variants =
    [
      ("full (default)", Cpla.Config.default);
      ( "no 1-opt refinement",
        { Cpla.Config.default with Cpla.Config.local_refinement = false } );
      ( "no boundary coupling",
        { Cpla.Config.default with Cpla.Config.boundary_coupling = false } );
      ( "no quadtree (KxK only)",
        { Cpla.Config.default with Cpla.Config.max_segments_per_partition = 100000 } );
      ( "single partition",
        {
          Cpla.Config.default with
          Cpla.Config.k_div = 1;
          max_segments_per_partition = 100000;
        } );
      ( "low-rank SDP (r=2)",
        {
          Cpla.Config.default with
          Cpla.Config.sdp_options =
            { Cpla.Config.default.Cpla.Config.sdp_options with Cpla_sdp.Solver.rank = 2 };
        } );
    ]
  in
  let t =
    Table.create ~headers:[ "bench"; "variant"; "Avg(Tcp)"; "Max(Tcp)"; "CPU(s)" ]
  in
  List.iter
    (fun name ->
      List.iter
        (fun (label, config) ->
          let prep = Suite.prepare (Suite.find name) in
          let released = released_at prep ~ratio:0.005 in
          let m = run_cpla ~config prep ~released in
          Table.add_row t
            [
              name;
              label;
              Table.cell_f m.Cpla.Metrics.avg_tcp;
              Table.cell_f m.Cpla.Metrics.max_tcp;
              Table.cell_f ~digits:3 m.Cpla.Metrics.cpu_s;
            ])
        variants;
      Table.add_separator t)
    [ "adaptec1"; "bigblue1" ];
  Table.print t

let all () =
  fig1 ();
  fig3b ();
  fig7 ();
  fig8 ();
  fig9 ();
  table2 ();
  extended ();
  ablations ()
