(** One runner per table/figure of the paper's evaluation (Section 4).

    Every runner prints a self-describing plain-text block (tables via
    {!Cpla_util.Table}, distributions via {!Cpla_util.Histogram}) so that
    `bench/main.exe` regenerates the full evaluation in one run.  All
    runners are deterministic except for the CPU-seconds columns. *)

val fig1 : unit -> unit
(** Pin-delay distribution of critical nets on adaptec1 at 0.5% released:
    TILA versus this work (two histograms). *)

val fig3b : unit -> unit
(** Routing-density map of adaptec1 after global routing. *)

val fig7 : unit -> unit
(** ILP versus SDP on the six small cases: Avg(Tcp), Max(Tcp), runtime. *)

val fig8 : unit -> unit
(** Partition-granularity sweep (max segments ∈ {5,10,20,40,80}) on
    adaptec1/adaptec2/bigblue1: impact on Avg(Tcp), Max(Tcp), runtime. *)

val fig9 : unit -> unit
(** Critical-ratio sweep (0.5%–2.5%) on adaptec1: TILA versus SDP impact on
    Avg(Tcp), Max(Tcp), runtime. *)

val table2 : unit -> unit
(** Full TILA-0.5% versus SDP-0.5% comparison across all 15 benchmarks with
    average and ratio rows. *)

val all : unit -> unit
  [@@cpla.allow "unused-export"]
(** Run every experiment in paper order. *)

(** {2 Building blocks (exposed for the CLI and tests)} *)

val run_tila :
  Suite.prepared -> released:int array -> Cpla.Metrics.t
  [@@cpla.allow "unused-export"]
(** Run the TILA baseline on a prepared design and measure. *)

val run_cpla :
  ?config:Cpla.Config.t -> Suite.prepared -> released:int array -> Cpla.Metrics.t
  [@@cpla.allow "unused-export"]
(** Run CPLA (method per [config], default SDP) and measure. *)

val released_at : Suite.prepared -> ratio:float -> int array
(** The release set used for a ratio — identical across methods because
    preparation is deterministic. *)

val extended : unit -> unit
(** Extended comparison beyond the paper: initial assignment, the
    delay-greedy class of methods (reference [9], no via-capacity model),
    TILA, and the SDP — exposing the via-overflow cost of ignoring Eqn (1). *)

val steiner : unit -> unit
(** Router-topology refinement study: Prim vs iterated-1-Steiner topology
    (wirelength, overflow, routing time, resulting Avg(Tcp)). *)

val ablations : unit -> unit
(** Ablation table for the design choices DESIGN.md calls out: 1-opt
    refinement, quadtree adaptation, partition count, SDP rank. *)
