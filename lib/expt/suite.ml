open Cpla_route

type bench = {
  name : string;
  spec : Synth.spec;
  small : bool;
}

(* Relative sizes follow the real ISPD'08 suite (adaptec1 smallest, newblue7
   largest; bigblue3/4 and newblue5/6/7 are the 8-layer designs).  Density
   factor ~1.4 nets per tile at capacity 8 and 6 layers lands utilisation
   around 50%, which is where the initial routing is legal but high layers
   are genuinely contended. *)
let mk name ~w ~layers ~nets ~seed ~small ~pins ~hotspots =
  {
    name;
    small;
    spec =
      {
        Synth.name;
        width = w;
        height = w;
        num_layers = layers;
        num_nets = nets;
        capacity = 8;
        seed;
        mean_extra_pins = pins;
        local_fraction = 0.75;
        hotspots;
        blockage_fraction = 0.04;
      };
  }

let all =
  [
    mk "adaptec1" ~w:48 ~layers:6 ~nets:3200 ~seed:101 ~small:true ~pins:2.2 ~hotspots:3;
    mk "adaptec2" ~w:52 ~layers:6 ~nets:3800 ~seed:102 ~small:true ~pins:2.2 ~hotspots:3;
    mk "adaptec3" ~w:64 ~layers:6 ~nets:5700 ~seed:103 ~small:false ~pins:2.2 ~hotspots:4;
    mk "adaptec4" ~w:64 ~layers:6 ~nets:5900 ~seed:104 ~small:false ~pins:2.2 ~hotspots:4;
    mk "adaptec5" ~w:68 ~layers:6 ~nets:6900 ~seed:105 ~small:false ~pins:2.2 ~hotspots:4;
    mk "bigblue1" ~w:52 ~layers:6 ~nets:3900 ~seed:106 ~small:true ~pins:2.8 ~hotspots:3;
    mk "bigblue2" ~w:60 ~layers:6 ~nets:5200 ~seed:107 ~small:false ~pins:2.8 ~hotspots:4;
    mk "bigblue3" ~w:72 ~layers:8 ~nets:9600 ~seed:108 ~small:false ~pins:2.8 ~hotspots:5;
    mk "bigblue4" ~w:80 ~layers:8 ~nets:11800 ~seed:109 ~small:false ~pins:2.8 ~hotspots:5;
    mk "newblue1" ~w:50 ~layers:6 ~nets:3500 ~seed:110 ~small:true ~pins:2.5 ~hotspots:5;
    mk "newblue2" ~w:56 ~layers:6 ~nets:4400 ~seed:111 ~small:true ~pins:2.5 ~hotspots:5;
    mk "newblue4" ~w:60 ~layers:6 ~nets:5100 ~seed:112 ~small:true ~pins:2.5 ~hotspots:5;
    mk "newblue5" ~w:76 ~layers:8 ~nets:10700 ~seed:113 ~small:false ~pins:2.5 ~hotspots:6;
    mk "newblue6" ~w:76 ~layers:8 ~nets:10800 ~seed:114 ~small:false ~pins:2.5 ~hotspots:6;
    mk "newblue7" ~w:84 ~layers:8 ~nets:13000 ~seed:115 ~small:false ~pins:2.5 ~hotspots:6;
  ]

let small_cases = List.filter (fun b -> b.small) all

let find name = List.find (fun b -> b.name = name) all

type prepared = {
  bench : bench;
  asg : Assignment.t;
  engine : Cpla_timing.Incremental.t;
  route_overflow : int;
}

let prepare bench =
  let graph, nets = Synth.generate bench.spec in
  let routed = Router.route_all ~graph nets in
  let asg = Assignment.create ~graph ~nets ~trees:routed.Router.trees in
  Init_assign.run asg;
  {
    bench;
    asg;
    engine = Cpla_timing.Incremental.create asg;
    route_overflow = routed.Router.overflow_2d;
  }
