(** The benchmark suite of the experiments.

    Fifteen synthetic designs named and relatively sized after the ISPD'08
    global-routing benchmarks the paper evaluates on (Table 2's rows), scaled
    down ~64× in net count and ~6× in grid dimension so that the entire
    harness runs in minutes.  Seeds are fixed: a benchmark is a pure function
    of its name. *)

type bench = {
  name : string;
  spec : Cpla_route.Synth.spec;
  small : bool;
      (** member of the paper's small-case set (Fig. 7 compares ILP there) *)
}

val all : bench list
(** The 15 Table-2 rows in paper order. *)

val small_cases : bench list
(** adaptec1, adaptec2, bigblue1, newblue1, newblue2, newblue4 — the six
    designs of Fig. 7. *)

val find : string -> bench
(** @raise Not_found for unknown names. *)

type prepared = {
  bench : bench;
  asg : Cpla_route.Assignment.t;
  engine : Cpla_timing.Incremental.t;
      (** incremental timing cache bound to [asg]; shared by selection,
          optimisation and measurement so repeated queries only re-analyse
          nets that moved *)
  route_overflow : int;
}

val prepare : bench -> prepared
(** Generate, globally route and initially layer-assign the design.
    Deterministic; each call builds a fresh state (so TILA and SDP can be
    compared from identical initial assignments). *)
