(** Mutable-flow analysis behind the [domain-race] rule.

    Tracks values with shared-mutable contents (ref, Hashtbl, Buffer, Queue,
    Stack, array, bytes, mutable-record literals) as they flow through
    let-bindings and aliases, get captured by closures, and cross function
    and module boundaries as arguments, until one reaches code that runs on
    another domain ([Pool.parallel_map] / [Pool.Persistent.submit] /
    [Domain.spawn] kernels).

    Interprocedural flows use escape summaries: a parameter of a top-level
    definition is marked [Captured] when some closure built inside captures
    it into a parallel primitive, or [Kernel] when it is itself used as the
    parallel kernel.  Summaries are computed to a fixpoint so chains like
    "caller allocates -> helper forwards -> worker captures" are reported
    with the complete hop-by-hop story.

    The incremental split: {!collect} walks one unit's AST and records a
    marshalable event stream — unconditional escape seeds and races, plus
    deferred events whose outcome depends on the whole-program escape or
    def-capture tables; {!solve} replays the merged streams in uid order to
    the fixpoint and then once more to emit races, never re-touching an
    AST.  Event order mirrors walk order, so the first-seed-wins
    tie-breaking (and with it every message) is a deterministic function
    of the merged facts.

    Arrays and bytes only race once a domain writes them, so read-only
    captures of those kinds are not reported; the other kinds fire on any
    cross-domain sharing. *)

open Ppxlib

type race = {
  r_path : string;  (** unit (project-relative path) the finding is reported in *)
  r_loc : Location.t;  (** the parallel call / capture site *)
  r_msg : string;  (** full capture chain, creation site through kernel *)
  r_origin : (string * Location.t) option;
      (** creation site, so [[\@cpla.allow]] works there too *)
}

type unit_facts
(** One unit's marshalable mutable-flow slice: its def-captures and its
    walk-ordered event stream. *)

val collect : Symtab.t -> Symtab.unit_info -> structure -> unit_facts
(** Walk one unit's AST.  Reads only the shared symtab, so different units
    may be collected on different domains concurrently. *)

val solve : Symtab.t -> unit_facts array -> race list
(** Run the escape fixpoint and emission pass over per-unit facts indexed
    by uid.  Deterministic: results are sorted by (path, position,
    message). *)
