(** Mutable-flow analysis behind the [domain-race] rule.

    Tracks values with shared-mutable contents (ref, Hashtbl, Buffer, Queue,
    Stack, array, bytes, mutable-record literals) as they flow through
    let-bindings and aliases, get captured by closures, and cross function
    and module boundaries as arguments, until one reaches code that runs on
    another domain ([Pool.parallel_map] / [Pool.Persistent.submit] /
    [Domain.spawn] kernels).

    Interprocedural flows use escape summaries: a parameter of a top-level
    definition is marked [Captured] when some closure built inside captures
    it into a parallel primitive, or [Kernel] when it is itself used as the
    parallel kernel.  Summaries are computed to a fixpoint so chains like
    "caller allocates -> helper forwards -> worker captures" are reported
    with the complete hop-by-hop story.

    Arrays and bytes only race once a domain writes them, so read-only
    captures of those kinds are not reported; the other kinds fire on any
    cross-domain sharing. *)

open Ppxlib

type race = {
  r_path : string;  (** unit (project-relative path) the finding is reported in *)
  r_loc : Location.t;  (** the parallel call / capture site *)
  r_msg : string;  (** full capture chain, creation site through kernel *)
  r_origin : (string * Location.t) option;
      (** creation site, so [[\@cpla.allow]] works there too *)
}

val analyze : Symtab.t -> race list
(** Deterministic: results are sorted by (path, position, message). *)
