(** AST-level lint checks over one parsed implementation.

    Scope decisions (which rules apply where) are made from the file's
    normalized project-relative path: [lib/], [bin/], [bench/], [test/]. *)

type area = Lib | Bin | Bench | Test | Other

type scope = {
  path : string;  (** normalized relative path, ['/'] separated *)
  segments : string list;
  area : area;
}

val scope_of_path : string -> scope

val under : string list -> scope -> bool
(** [under ["lib"; "numeric"] scope] — is the file below that directory? *)

val flatten : Longident.t -> string list
(** Path components of a longident ([Lapply] flattens to [[]]). *)

val strip_stdlib : string list -> string list

val last : string list -> string
(** Last component, [""] on the empty list. *)

val looks_float : Ppxlib.expression -> bool
(** Syntactic float-valuedness heuristic (literals, float intrinsics,
    float-typed constraints); shared by [float-equality] and the
    boxing classification in {!Alloceffect}. *)

val allow_ids :
  malformed:(Ppxlib.Location.t -> unit) ->
  Ppxlib.attributes ->
  (string * Ppxlib.Location.t) list
(** Rule ids named by [\@cpla.allow] attributes, with the location of each;
    [malformed] is called for an attribute without a usable payload. *)

val allow_spans :
  Ppxlib.structure -> (string * Ppxlib.Location.t * Ppxlib.Location.t) list
(** Every [\@cpla.allow]-named rule id as [(id, id_loc, span)]: the id's own
    location (the annotation's identity, for [stale-allow] accounting) and
    the span of the annotated node (expression, [let] binding, or whole
    structure item).  Whole-program rules use a containment test on the
    spans to honour suppressions. *)

val file_allow_ids : Ppxlib.structure -> (string * Ppxlib.Location.t) list
(** Rule ids suppressed for the whole file by floating
    [[\@\@\@cpla.allow "rule-id"]] attributes, with each id's location. *)

val analyze :
  ?on_allow_use:(string -> Ppxlib.Location.t -> unit) ->
  scope:scope ->
  Ppxlib.structure ->
  Finding.t list
(** Run every AST rule; returns unsuppressed findings in source order.
    Findings inside the static extent of a [[\@cpla.allow "rule-id"]]
    attribute (on an expression or a [let] binding) are dropped, as are
    rule ids named by {!file_allow_ids}.  Each time an allow actually
    suppresses a finding, [on_allow_use] receives the winning annotation's
    rule id and id location (default: ignore). *)
