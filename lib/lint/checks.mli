(** AST-level lint checks over one parsed implementation.

    Scope decisions (which rules apply where) are made from the file's
    normalized project-relative path: [lib/], [bin/], [bench/], [test/]. *)

type area = Lib | Bin | Bench | Test | Other

type scope = {
  path : string;  (** normalized relative path, ['/'] separated *)
  segments : string list;
  area : area;
}

val scope_of_path : string -> scope

val under : string list -> scope -> bool
(** [under ["lib"; "numeric"] scope] — is the file below that directory? *)

val flatten : Longident.t -> string list
(** Path components of a longident ([Lapply] flattens to [[]]). *)

val strip_stdlib : string list -> string list

val last : string list -> string
(** Last component, [""] on the empty list. *)

val allow_ids :
  malformed:(Ppxlib.Location.t -> unit) ->
  Ppxlib.attributes ->
  (string * Ppxlib.Location.t) list
(** Rule ids named by [\@cpla.allow] attributes, with the location of each;
    [malformed] is called for an attribute without a usable payload. *)

val allow_spans : Ppxlib.structure -> (string * Ppxlib.Location.t) list
(** Every [\@cpla.allow]-named rule id with the span of the annotated node
    (expression, [let] binding, or whole structure item).  Whole-program
    rules use a containment test on these to honour suppressions. *)

val file_allows : Ppxlib.structure -> string list
(** Rule ids suppressed for the whole file by floating
    [[\@\@\@cpla.allow "rule-id"]] attributes. *)

val analyze : scope:scope -> Ppxlib.structure -> Finding.t list
(** Run every AST rule; returns unsuppressed findings in source order.
    Findings inside the static extent of a [[\@cpla.allow "rule-id"]]
    attribute (on an expression or a [let] binding) are dropped, as are
    rule ids named by {!file_allows}. *)
