(** AST-level lint checks over one parsed implementation.

    Scope decisions (which rules apply where) are made from the file's
    normalized project-relative path: [lib/], [bin/], [bench/], [test/]. *)

type area = Lib | Bin | Bench | Test | Other

type scope = {
  path : string;  (** normalized relative path, ['/'] separated *)
  segments : string list;
  area : area;
}

val scope_of_path : string -> scope

val file_allows : Ppxlib.structure -> string list
(** Rule ids suppressed for the whole file by floating
    [[\@\@\@cpla.allow "rule-id"]] attributes. *)

val analyze : scope:scope -> Ppxlib.structure -> Finding.t list
(** Run every AST rule; returns unsuppressed findings in source order.
    Findings inside the static extent of a [[\@cpla.allow "rule-id"]]
    attribute (on an expression or a [let] binding) are dropped, as are
    rule ids named by {!file_allows}. *)
