open Ppxlib

type key = int * string list

type kind = Io | Clock | Rand | Global_mut

let kind_name = function
  | Io -> "performs I/O"
  | Clock -> "reads the clock"
  | Rand -> "draws from the ambient PRNG"
  | Global_mut -> "mutates top-level state"

type witness = Direct of string * Location.t | Via of key * Location.t

type call = {
  callee : Symtab.resolved;
  arg_labels : arg_label list;
  call_loc : Location.t;
  in_loop : bool;
}

type fn = {
  fn_key : key;
  fn_loc : Location.t;
  fn_params : arg_label list;
  mutable fn_calls : call list;
  mutable fn_imps : (kind * string * Location.t) list;
}

type kernel_site = {
  k_unit : int;
  k_prim : Symtab.primitive;
  k_loc : Location.t;
  k_target : key option;
}

type t = {
  symtab : Symtab.t;
  fns : (key, fn) Hashtbl.t;
  refs : (key, unit) Hashtbl.t;
  included : (int, unit) Hashtbl.t;
  mutable kernels : kernel_site list;
  kinds : (key, (kind * witness) list) Hashtbl.t;
}

(* ---- per-unit facts (the cacheable summary slice) ------------------------- *)

(* Everything below is uid-free: function keys are paths within the
   summarized unit itself (every key a walk creates is own-unit), and
   cross-unit references are path-symbolic {!Symtab.sym}s internalized at
   assembly time. *)

type xresolved = Xsym of Symtab.sym | Xext of string list | Xlocal of string

type xcall = {
  xc_callee : xresolved;
  xc_labels : arg_label list;
  xc_loc : Location.t;
  xc_in_loop : bool;
}

type xfn = {
  xf_path : string list;
  xf_loc : Location.t;
  xf_params : arg_label list;
  xf_calls : xcall list;
  xf_imps : (kind * string * Location.t) list;
}

type xkernel = {
  xk_prim : Symtab.primitive;
  xk_loc : Location.t;
  xk_target : Symtab.sym option;
}

type unit_facts = {
  uf_fns : xfn list;
  uf_kernels : xkernel list;
  uf_refs : Symtab.sym list;
  uf_included : string list;
}

let xresolved_of symtab = function
  | Symtab.Sym (uid, p) -> Xsym { Symtab.s_unit = Symtab.path_of symtab uid; s_path = p }
  | Symtab.Ext p -> Xext p
  | Symtab.Local n -> Xlocal n

let resolved_of symtab = function
  | Xsym s -> (
      match Symtab.internalize symtab s with
      | Some (uid, p) -> Symtab.Sym (uid, p)
      | None -> Symtab.Ext s.Symtab.s_path)
  | Xext p -> Symtab.Ext p
  | Xlocal n -> Symtab.Local n

(* ---- impure external idents ----------------------------------------------- *)

let io_ident = function
  | [
      ( "print_string" | "print_endline" | "print_newline" | "print_char" | "print_int"
      | "print_float" | "print_bytes" | "prerr_string" | "prerr_endline" | "prerr_newline"
      | "output_string" | "output_char" | "output_bytes" | "output_value" | "open_out"
      | "open_in" | "input_line" | "read_line" );
    ] ->
      true
  | [ "Printf"; ("printf" | "eprintf") ] -> true
  | [ "Format"; ("printf" | "eprintf" | "print_string" | "print_newline") ] -> true
  | _ -> false

let clock_ident = function
  | [ "Sys"; "time" ] | [ "Unix"; "gettimeofday" ] | [ "Unix"; "time" ] -> true
  | _ -> false

(* In-place mutators whose first [Nolabel] argument is the structure written. *)
let mutator_ident = function
  | [ (":=" | "incr" | "decr") ] -> true
  | [ "Hashtbl"; ("add" | "replace" | "remove" | "reset" | "clear" | "filter_map_inplace") ]
    ->
      true
  | [ "Buffer"; f ] ->
      (String.length f >= 4 && String.equal (String.sub f 0 4) "add_")
      || List.mem f [ "clear"; "reset"; "truncate" ]
  | [ "Queue"; ("add" | "push" | "pop" | "take" | "clear" | "transfer") ] -> true
  | [ "Stack"; ("push" | "pop" | "clear") ] -> true
  | [ "Array"; ("set" | "fill" | "blit" | "sort" | "unsafe_set") ] -> true
  | [ "Bytes"; ("set" | "fill" | "blit" | "unsafe_set") ] -> true
  | _ -> false

(* ---- per-unit walk -------------------------------------------------------- *)

(* A custom recursion (rather than [Ast_traverse]) because resolution needs
   the binding environment: which names are local, which modules are open,
   what the current nested-module path is.

   The walk writes into per-unit sinks only (plus reads of the shared
   symtab), so {!collect} is safe to run for different units on different
   domains.  Returns the function keys in creation order so the facts list
   — and therefore every downstream hashtable's insertion sequence — is a
   deterministic function of the unit's content. *)

let walk_unit ~symtab ~fns ~refs ~included ~kernels (u : Symtab.unit_info) (str : structure) =
  let order = ref [] in
  let scope : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let locals name = Hashtbl.mem scope name in
  let bind name = Hashtbl.add scope name 0 in
  let unbind name = Hashtbl.remove scope name in
  let bind_pat p =
    let names = List.map fst (Symtab.pattern_names p) in
    List.iter bind names;
    names
  in
  let local_fns : (string * key) list ref = ref [] in
  let fn_stack : fn list ref = ref [] in
  let get_fn key loc params =
    match Hashtbl.find_opt fns key with
    | Some f -> f
    | None ->
        let f = { fn_key = key; fn_loc = loc; fn_params = params; fn_calls = []; fn_imps = [] } in
        Hashtbl.replace fns key f;
        order := key :: !order;
        f
  in
  let record_call c = List.iter (fun f -> f.fn_calls <- c :: f.fn_calls) !fn_stack in
  let record_imp kind why loc =
    List.iter
      (fun f ->
        if not (List.exists (fun (k, _, _) -> k = kind) f.fn_imps) then
          f.fn_imps <- (kind, why, loc) :: f.fn_imps)
      !fn_stack
  in
  let resolve ~mpath env lid = Symtab.resolve symtab ~cur:u ~mpath ~locals env lid in
  let record_ref = function
    | Symtab.Sym (uid, path) when uid <> u.Symtab.uid -> Hashtbl.replace refs (uid, path) ()
    | _ -> ()
  in
  let gensym = ref 0 in
  let rec expr ~mpath ~env ~in_loop (e : expression) =
    match e.pexp_desc with
    | Pexp_ident lid ->
        let r = resolve ~mpath env lid.txt in
        record_ref r;
        let p = Checks.strip_stdlib (Checks.flatten lid.txt) in
        let name = String.concat "." p in
        if io_ident p then record_imp Io ("calls " ^ name) lid.loc
        else if clock_ident p then record_imp Clock ("reads " ^ name) lid.loc
        else (
          match p with
          | "Random" :: _ when not (locals "Random") ->
              record_imp Rand ("calls " ^ name) lid.loc
          | _ -> ())
    | Pexp_apply (({ pexp_desc = Pexp_ident lid; _ } as f), args) -> (
        let r = resolve ~mpath env lid.txt in
        match Symtab.primitive_of_resolved symtab r with
        | Some prim ->
            expr ~mpath ~env ~in_loop f;
            kernel_apply ~mpath ~env ~in_loop prim e.pexp_loc args
        | None ->
            expr ~mpath ~env ~in_loop f;
            let p = Checks.strip_stdlib (Checks.flatten lid.txt) in
            (if mutator_ident p then
               match List.find_opt (fun (l, _) -> l = Nolabel) args with
               | Some (_, { pexp_desc = Pexp_ident target; _ }) -> (
                   match resolve ~mpath env target.txt with
                   | Symtab.Sym (uid, path)
                     when (match Symtab.find_def (Symtab.unit symtab uid) path with
                          | Some d -> d.Symtab.def_mut <> None
                          | None -> false) ->
                       record_imp Global_mut
                         ("writes top-level mutable " ^ Symtab.string_of_path path)
                         e.pexp_loc
                   | _ -> ())
               | _ -> ());
            record_call
              { callee = r; arg_labels = List.map fst args; call_loc = e.pexp_loc; in_loop };
            List.iter (fun (_, a) -> expr ~mpath ~env ~in_loop a) args)
    | Pexp_apply (f, args) ->
        expr ~mpath ~env ~in_loop f;
        List.iter (fun (_, a) -> expr ~mpath ~env ~in_loop a) args
    | Pexp_setfield (base, _, v) ->
        (match base.pexp_desc with
        | Pexp_ident lid -> (
            match resolve ~mpath env lid.txt with
            | Symtab.Sym (_, path) ->
                record_imp Global_mut
                  ("writes a field of top-level " ^ Symtab.string_of_path path)
                  e.pexp_loc
            | _ -> ())
        | _ -> ());
        expr ~mpath ~env ~in_loop base;
        expr ~mpath ~env ~in_loop v
    | Pexp_function (params, _, body) ->
        let bound =
          List.concat_map
            (fun p ->
              match p.pparam_desc with
              | Pparam_val (_, d, pat) ->
                  Option.iter (expr ~mpath ~env ~in_loop) d;
                  bind_pat pat
              | Pparam_newtype _ -> [])
            params
        in
        (match body with
        | Pfunction_body b -> expr ~mpath ~env ~in_loop b
        | Pfunction_cases (cases, _, _) -> List.iter (case ~mpath ~env ~in_loop) cases);
        List.iter unbind bound
    | Pexp_let (_, vbs, body) ->
        let bound = List.concat_map (fun (vb : value_binding) -> bind_pat vb.pvb_pat) vbs in
        List.iter
          (fun (vb : value_binding) ->
            match (Symtab.pattern_names vb.pvb_pat, vb.pvb_expr.pexp_desc) with
            | [ (name, _) ], Pexp_function _ ->
                (* a named local closure gets its own purity identity so a
                   later [parallel_map f xs] can look it up *)
                incr gensym;
                let key =
                  (u.Symtab.uid, mpath @ [ Printf.sprintf "<local:%s:%d>" name !gensym ])
                in
                local_fns := (name, key) :: !local_fns;
                let f = get_fn key vb.pvb_loc (Symtab.params_of vb.pvb_expr) in
                fn_stack := f :: !fn_stack;
                expr ~mpath ~env ~in_loop vb.pvb_expr;
                fn_stack := List.tl !fn_stack
            | _ -> expr ~mpath ~env ~in_loop vb.pvb_expr)
          vbs;
        expr ~mpath ~env ~in_loop body;
        List.iter unbind bound
    | Pexp_open (od, body) ->
        let env =
          match od.popen_expr.pmod_desc with
          | Pmod_ident lid -> Symtab.push_open env lid.txt
          | _ -> env
        in
        expr ~mpath ~env ~in_loop body
    | Pexp_letmodule ({ txt = Some name; _ }, { pmod_desc = Pmod_ident lid; _ }, body) ->
        expr ~mpath ~env:(Symtab.push_alias env name lid.txt) ~in_loop body
    | Pexp_for (pat, lo, hi, _, body) ->
        expr ~mpath ~env ~in_loop lo;
        expr ~mpath ~env ~in_loop hi;
        let bound = bind_pat pat in
        expr ~mpath ~env ~in_loop:true body;
        List.iter unbind bound
    | Pexp_while (cond, body) ->
        expr ~mpath ~env ~in_loop cond;
        expr ~mpath ~env ~in_loop:true body
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        expr ~mpath ~env ~in_loop scrut;
        List.iter (case ~mpath ~env ~in_loop) cases
    | _ -> shallow_iter e ~f:(expr ~mpath ~env ~in_loop)
  and case ~mpath ~env ~in_loop (c : case) =
    let bound = bind_pat c.pc_lhs in
    Option.iter (expr ~mpath ~env ~in_loop) c.pc_guard;
    expr ~mpath ~env ~in_loop c.pc_rhs;
    List.iter unbind bound
  and kernel_apply ~mpath ~env ~in_loop prim loc args =
    let nolabels = List.filter (fun (l, _) -> l = Nolabel) args in
    let kernel = List.nth_opt nolabels (Symtab.kernel_position prim) in
    let record target =
      if prim <> Symtab.Pool_submit then
        kernels :=
          { k_unit = u.Symtab.uid; k_prim = prim; k_loc = loc; k_target = target } :: !kernels
    in
    let walked =
      match kernel with
      | Some (_, ({ pexp_desc = Pexp_function _; _ } as lam)) ->
          incr gensym;
          let key = (u.Symtab.uid, mpath @ [ Printf.sprintf "<kernel:%d>" !gensym ]) in
          let f = get_fn key lam.pexp_loc (Symtab.params_of lam) in
          fn_stack := f :: !fn_stack;
          expr ~mpath ~env ~in_loop lam;
          fn_stack := List.tl !fn_stack;
          record (Some key);
          [ lam ]
      | Some (_, { pexp_desc = Pexp_ident lid; _ }) ->
          (match resolve ~mpath env lid.txt with
          | Symtab.Sym (uid, path) -> record (Some (uid, path))
          | Symtab.Local name -> record (List.assoc_opt name !local_fns)
          | Symtab.Ext _ -> record None);
          []
      | _ -> []
    in
    List.iter (fun (_, a) -> if not (List.memq a walked) then expr ~mpath ~env ~in_loop a) args
  and shallow_iter e ~f =
    let entered = ref false in
    let it =
      object
        inherit Ast_traverse.iter as super

        method! expression sub =
          if not !entered then begin
            entered := true;
            super#expression sub
          end
          else f sub

        method! module_expr _ = ()
        method! structure_item _ = ()
      end
    in
    it#expression e
  in
  let rec items ~mpath ~env is = ignore (List.fold_left (fun env si -> item ~mpath ~env si) env is)
  and item ~mpath ~env (si : structure_item) =
    match si.pstr_desc with
    | Pstr_open { popen_expr = { pmod_desc = Pmod_ident lid; _ }; _ } ->
        Symtab.push_open env lid.txt
    | Pstr_module { pmb_name = { txt = Some name; _ }; pmb_expr; _ } -> (
        match pmb_expr.pmod_desc with
        | Pmod_ident lid -> Symtab.push_alias env name lid.txt
        | _ ->
            module_expr ~mpath:(mpath @ [ name ]) ~env pmb_expr;
            env)
    | Pstr_recmodule mbs ->
        List.iter
          (fun (mb : module_binding) ->
            match mb.pmb_name.txt with
            | Some name -> module_expr ~mpath:(mpath @ [ name ]) ~env mb.pmb_expr
            | None -> ())
          mbs;
        env
    | Pstr_include { pincl_mod = { pmod_desc = Pmod_ident lid; _ }; _ } ->
        (match Symtab.resolve_unit symtab ~cur:u env lid.txt with
        | Some uid -> Hashtbl.replace included uid ()
        | None -> ());
        env
    | Pstr_include { pincl_mod; _ } ->
        module_expr ~mpath ~env pincl_mod;
        env
    | Pstr_value (_, vbs) ->
        List.iter
          (fun (vb : value_binding) ->
            let key, params =
              match Symtab.pattern_names vb.pvb_pat with
              | [ (name, _) ] ->
                  ((u.Symtab.uid, mpath @ [ name ]), Symtab.params_of vb.pvb_expr)
              | _ -> ((u.Symtab.uid, mpath @ [ "<init>" ]), [])
            in
            let f = get_fn key vb.pvb_loc params in
            fn_stack := [ f ];
            local_fns := [];
            expr ~mpath ~env ~in_loop:false vb.pvb_expr;
            fn_stack := [])
          vbs;
        env
    | Pstr_eval (e, _) ->
        let f = get_fn (u.Symtab.uid, mpath @ [ "<init>" ]) si.pstr_loc [] in
        fn_stack := [ f ];
        local_fns := [];
        expr ~mpath ~env ~in_loop:false e;
        fn_stack := [];
        env
    | _ -> env
  and module_expr ~mpath ~env (me : module_expr) =
    match me.pmod_desc with
    | Pmod_structure is -> items ~mpath ~env is
    | Pmod_constraint (me, _) -> module_expr ~mpath ~env me
    | _ -> ()
  in
  items ~mpath:[] ~env:Symtab.env0 str;
  List.rev !order

(* ---- collect / assemble --------------------------------------------------- *)

let collect symtab (u : Symtab.unit_info) (str : structure) =
  let fns = Hashtbl.create 64 in
  let refs = Hashtbl.create 64 in
  let included = Hashtbl.create 4 in
  let kernels = ref [] in
  let order = walk_unit ~symtab ~fns ~refs ~included ~kernels u str in
  let xsym (uid, path) = { Symtab.s_unit = Symtab.path_of symtab uid; s_path = path } in
  let uf_fns =
    List.map
      (fun key ->
        let f = Hashtbl.find fns key in
        {
          xf_path = snd key;
          xf_loc = f.fn_loc;
          xf_params = f.fn_params;
          xf_calls =
            List.map
              (fun c ->
                {
                  xc_callee = xresolved_of symtab c.callee;
                  xc_labels = c.arg_labels;
                  xc_loc = c.call_loc;
                  xc_in_loop = c.in_loop;
                })
              f.fn_calls;
          xf_imps = f.fn_imps;
        })
      order
  in
  let uf_refs =
    Hashtbl.fold (fun k () acc -> xsym k :: acc) refs [] |> List.sort compare
  in
  let uf_included =
    Hashtbl.fold (fun uid () acc -> Symtab.path_of symtab uid :: acc) included []
    |> List.sort compare
  in
  let uf_kernels =
    List.map
      (fun k -> { xk_prim = k.k_prim; xk_loc = k.k_loc; xk_target = Option.map xsym k.k_target })
      !kernels
  in
  { uf_fns; uf_kernels; uf_refs; uf_included }

(* Unit paths this summary's facts were derived against: every unit whose
   content can change the facts (global-mutability lookups, includes)
   without changing this file — the engine re-summarizes dependents of a
   dirty file through this. *)
let facts_deps uf =
  List.sort_uniq String.compare
    (List.map (fun s -> s.Symtab.s_unit) uf.uf_refs @ uf.uf_included)

(* ---- purity fixpoint ------------------------------------------------------ *)

let fixpoint t =
  Hashtbl.iter
    (fun key (f : fn) ->
      Hashtbl.replace t.kinds key
        (List.map (fun (k, why, loc) -> (k, Direct (why, loc))) f.fn_imps))
    t.fns;
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun key (f : fn) ->
        let cur = try Hashtbl.find t.kinds key with Not_found -> [] in
        let add = ref cur in
        List.iter
          (fun c ->
            match c.callee with
            | Symtab.Sym (uid, path) ->
                let ck = try Hashtbl.find t.kinds (uid, path) with Not_found -> [] in
                List.iter
                  (fun (k, _) ->
                    if not (List.exists (fun (k', _) -> k' = k) !add) then begin
                      add := (k, Via ((uid, path), c.call_loc)) :: !add;
                      changed := true
                    end)
                  ck
            | _ -> ())
          f.fn_calls;
        if !add != cur then Hashtbl.replace t.kinds key !add)
      t.fns
  done

(* Assemble the whole-program graph from per-unit facts (in uid order — the
   insertion sequence, and with it every hashtable's iteration order, is
   identical no matter which facts came from the cache and which were just
   collected) and run the purity fixpoint. *)
let build_of_facts symtab (facts : unit_facts array) =
  let t =
    {
      symtab;
      fns = Hashtbl.create 512;
      refs = Hashtbl.create 1024;
      included = Hashtbl.create 8;
      kernels = [];
      kinds = Hashtbl.create 512;
    }
  in
  Array.iteri
    (fun uid uf ->
      List.iter
        (fun xf ->
          let key = (uid, xf.xf_path) in
          Hashtbl.replace t.fns key
            {
              fn_key = key;
              fn_loc = xf.xf_loc;
              fn_params = xf.xf_params;
              fn_calls =
                List.map
                  (fun xc ->
                    {
                      callee = resolved_of symtab xc.xc_callee;
                      arg_labels = xc.xc_labels;
                      call_loc = xc.xc_loc;
                      in_loop = xc.xc_in_loop;
                    })
                  xf.xf_calls;
              fn_imps = xf.xf_imps;
            })
        uf.uf_fns;
      List.iter
        (fun s ->
          match Symtab.internalize symtab s with
          | Some k -> Hashtbl.replace t.refs k ()
          | None -> ())
        uf.uf_refs;
      List.iter
        (fun p ->
          match Symtab.uid_of_path symtab p with
          | Some iuid -> Hashtbl.replace t.included iuid ()
          | None -> ())
        uf.uf_included)
    facts;
  t.kernels <-
    List.concat
      (List.mapi
         (fun uid uf ->
           List.map
             (fun xk ->
               {
                 k_unit = uid;
                 k_prim = xk.xk_prim;
                 k_loc = xk.xk_loc;
                 k_target =
                   Option.bind xk.xk_target (fun s -> Symtab.internalize symtab s);
               })
             uf.uf_kernels)
         (Array.to_list facts));
  fixpoint t;
  t

(* ---- queries -------------------------------------------------------------- *)

let kinds t key = try Hashtbl.find t.kinds key with Not_found -> []

let referenced t key = Hashtbl.mem t.refs key

let included t uid = Hashtbl.mem t.included uid

let fns t = Hashtbl.fold (fun _ f acc -> f :: acc) t.fns []


let kernels t = t.kernels

let pretty_key t ((uid, path) : key) =
  let u = Symtab.unit t.symtab uid in
  let path =
    List.map
      (fun s ->
        if String.length s > 7 && String.equal (String.sub s 0 7) "<local:" then
          (* "<local:name:N>" -> "name" *)
          match String.split_on_char ':' s with _ :: name :: _ -> name | _ -> s
        else s)
      path
  in
  Printf.sprintf "%s.%s" u.Symtab.modname (Symtab.string_of_path path)

let line_of (loc : Location.t) = loc.loc_start.pos_lnum

let rec describe_witness ?(depth = 0) t (kind : kind) (w : witness) =
  match w with
  | Direct (why, loc) -> Printf.sprintf "%s at %s:%d" why loc.loc_start.pos_fname (line_of loc)
  | Via (key, loc) ->
      let tail =
        if depth >= 6 then "..."
        else
          match List.assoc_opt kind (kinds t key) with
          | Some w' -> describe_witness ~depth:(depth + 1) t kind w'
          | None -> "?"
      in
      Printf.sprintf "calls %s at %s:%d, which %s" (pretty_key t key) loc.loc_start.pos_fname
        (line_of loc) tail

let describe_kind t key kind =
  match List.assoc_opt kind (kinds t key) with
  | Some w -> Some (Printf.sprintf "%s: %s" (kind_name kind) (describe_witness t kind w))
  | None -> None
