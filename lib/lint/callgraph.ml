open Ppxlib

type key = int * string list

type kind = Io | Clock | Rand | Global_mut

let kind_name = function
  | Io -> "performs I/O"
  | Clock -> "reads the clock"
  | Rand -> "draws from the ambient PRNG"
  | Global_mut -> "mutates top-level state"

type witness = Direct of string * Location.t | Via of key * Location.t

type call = {
  callee : Symtab.resolved;
  arg_labels : arg_label list;
  call_loc : Location.t;
  in_loop : bool;
}

type fn = {
  fn_key : key;
  fn_loc : Location.t;
  fn_params : arg_label list;
  mutable fn_calls : call list;
  mutable fn_imps : (kind * string * Location.t) list;
}

type kernel_site = {
  k_unit : int;
  k_prim : Symtab.primitive;
  k_loc : Location.t;
  k_target : key option;
}

type t = {
  symtab : Symtab.t;
  fns : (key, fn) Hashtbl.t;
  refs : (key, unit) Hashtbl.t;
  included : (int, unit) Hashtbl.t;
  mutable kernels : kernel_site list;
  kinds : (key, (kind * witness) list) Hashtbl.t;
}

(* ---- impure external idents ----------------------------------------------- *)

let io_ident = function
  | [
      ( "print_string" | "print_endline" | "print_newline" | "print_char" | "print_int"
      | "print_float" | "print_bytes" | "prerr_string" | "prerr_endline" | "prerr_newline"
      | "output_string" | "output_char" | "output_bytes" | "output_value" | "open_out"
      | "open_in" | "input_line" | "read_line" );
    ] ->
      true
  | [ "Printf"; ("printf" | "eprintf") ] -> true
  | [ "Format"; ("printf" | "eprintf" | "print_string" | "print_newline") ] -> true
  | _ -> false

let clock_ident = function
  | [ "Sys"; "time" ] | [ "Unix"; "gettimeofday" ] | [ "Unix"; "time" ] -> true
  | _ -> false

(* In-place mutators whose first [Nolabel] argument is the structure written. *)
let mutator_ident = function
  | [ (":=" | "incr" | "decr") ] -> true
  | [ "Hashtbl"; ("add" | "replace" | "remove" | "reset" | "clear" | "filter_map_inplace") ]
    ->
      true
  | [ "Buffer"; f ] ->
      (String.length f >= 4 && String.equal (String.sub f 0 4) "add_")
      || List.mem f [ "clear"; "reset"; "truncate" ]
  | [ "Queue"; ("add" | "push" | "pop" | "take" | "clear" | "transfer") ] -> true
  | [ "Stack"; ("push" | "pop" | "clear") ] -> true
  | [ "Array"; ("set" | "fill" | "blit" | "sort" | "unsafe_set") ] -> true
  | [ "Bytes"; ("set" | "fill" | "blit" | "unsafe_set") ] -> true
  | _ -> false

(* ---- per-unit walk -------------------------------------------------------- *)

(* A custom recursion (rather than [Ast_traverse]) because resolution needs
   the binding environment: which names are local, which modules are open,
   what the current nested-module path is. *)

let walk_unit t (u : Symtab.unit_info) =
  let scope : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let locals name = Hashtbl.mem scope name in
  let bind name = Hashtbl.add scope name 0 in
  let unbind name = Hashtbl.remove scope name in
  let bind_pat p =
    let names = List.map fst (Symtab.pattern_names p) in
    List.iter bind names;
    names
  in
  let local_fns : (string * key) list ref = ref [] in
  let fn_stack : fn list ref = ref [] in
  let get_fn key loc params =
    match Hashtbl.find_opt t.fns key with
    | Some f -> f
    | None ->
        let f = { fn_key = key; fn_loc = loc; fn_params = params; fn_calls = []; fn_imps = [] } in
        Hashtbl.replace t.fns key f;
        f
  in
  let record_call c = List.iter (fun f -> f.fn_calls <- c :: f.fn_calls) !fn_stack in
  let record_imp kind why loc =
    List.iter
      (fun f ->
        if not (List.exists (fun (k, _, _) -> k = kind) f.fn_imps) then
          f.fn_imps <- (kind, why, loc) :: f.fn_imps)
      !fn_stack
  in
  let resolve ~mpath env lid = Symtab.resolve t.symtab ~cur:u ~mpath ~locals env lid in
  let record_ref = function
    | Symtab.Sym (uid, path) when uid <> u.uid -> Hashtbl.replace t.refs (uid, path) ()
    | _ -> ()
  in
  let gensym = ref 0 in
  let rec expr ~mpath ~env ~in_loop (e : expression) =
    match e.pexp_desc with
    | Pexp_ident lid ->
        let r = resolve ~mpath env lid.txt in
        record_ref r;
        let p = Checks.strip_stdlib (Checks.flatten lid.txt) in
        let name = String.concat "." p in
        if io_ident p then record_imp Io ("calls " ^ name) lid.loc
        else if clock_ident p then record_imp Clock ("reads " ^ name) lid.loc
        else (
          match p with
          | "Random" :: _ when not (locals "Random") ->
              record_imp Rand ("calls " ^ name) lid.loc
          | _ -> ())
    | Pexp_apply (({ pexp_desc = Pexp_ident lid; _ } as f), args) -> (
        let r = resolve ~mpath env lid.txt in
        match Symtab.primitive_of_resolved t.symtab r with
        | Some prim ->
            expr ~mpath ~env ~in_loop f;
            kernel_apply ~mpath ~env ~in_loop prim e.pexp_loc args
        | None ->
            expr ~mpath ~env ~in_loop f;
            let p = Checks.strip_stdlib (Checks.flatten lid.txt) in
            (if mutator_ident p then
               match List.find_opt (fun (l, _) -> l = Nolabel) args with
               | Some (_, { pexp_desc = Pexp_ident target; _ }) -> (
                   match resolve ~mpath env target.txt with
                   | Symtab.Sym (uid, path)
                     when (match Symtab.find_def (Symtab.unit t.symtab uid) path with
                          | Some d -> d.Symtab.def_mut <> None
                          | None -> false) ->
                       record_imp Global_mut
                         ("writes top-level mutable " ^ Symtab.string_of_path path)
                         e.pexp_loc
                   | _ -> ())
               | _ -> ());
            record_call
              { callee = r; arg_labels = List.map fst args; call_loc = e.pexp_loc; in_loop };
            List.iter (fun (_, a) -> expr ~mpath ~env ~in_loop a) args)
    | Pexp_apply (f, args) ->
        expr ~mpath ~env ~in_loop f;
        List.iter (fun (_, a) -> expr ~mpath ~env ~in_loop a) args
    | Pexp_setfield (base, _, v) ->
        (match base.pexp_desc with
        | Pexp_ident lid -> (
            match resolve ~mpath env lid.txt with
            | Symtab.Sym (_, path) ->
                record_imp Global_mut
                  ("writes a field of top-level " ^ Symtab.string_of_path path)
                  e.pexp_loc
            | _ -> ())
        | _ -> ());
        expr ~mpath ~env ~in_loop base;
        expr ~mpath ~env ~in_loop v
    | Pexp_function (params, _, body) ->
        let bound =
          List.concat_map
            (fun p ->
              match p.pparam_desc with
              | Pparam_val (_, d, pat) ->
                  Option.iter (expr ~mpath ~env ~in_loop) d;
                  bind_pat pat
              | Pparam_newtype _ -> [])
            params
        in
        (match body with
        | Pfunction_body b -> expr ~mpath ~env ~in_loop b
        | Pfunction_cases (cases, _, _) -> List.iter (case ~mpath ~env ~in_loop) cases);
        List.iter unbind bound
    | Pexp_let (_, vbs, body) ->
        let bound = List.concat_map (fun (vb : value_binding) -> bind_pat vb.pvb_pat) vbs in
        List.iter
          (fun (vb : value_binding) ->
            match (Symtab.pattern_names vb.pvb_pat, vb.pvb_expr.pexp_desc) with
            | [ (name, _) ], Pexp_function _ ->
                (* a named local closure gets its own purity identity so a
                   later [parallel_map f xs] can look it up *)
                incr gensym;
                let key = (u.uid, mpath @ [ Printf.sprintf "<local:%s:%d>" name !gensym ]) in
                local_fns := (name, key) :: !local_fns;
                let f = get_fn key vb.pvb_loc (Symtab.params_of vb.pvb_expr) in
                fn_stack := f :: !fn_stack;
                expr ~mpath ~env ~in_loop vb.pvb_expr;
                fn_stack := List.tl !fn_stack
            | _ -> expr ~mpath ~env ~in_loop vb.pvb_expr)
          vbs;
        expr ~mpath ~env ~in_loop body;
        List.iter unbind bound
    | Pexp_open (od, body) ->
        let env =
          match od.popen_expr.pmod_desc with
          | Pmod_ident lid -> Symtab.push_open env lid.txt
          | _ -> env
        in
        expr ~mpath ~env ~in_loop body
    | Pexp_letmodule ({ txt = Some name; _ }, { pmod_desc = Pmod_ident lid; _ }, body) ->
        expr ~mpath ~env:(Symtab.push_alias env name lid.txt) ~in_loop body
    | Pexp_for (pat, lo, hi, _, body) ->
        expr ~mpath ~env ~in_loop lo;
        expr ~mpath ~env ~in_loop hi;
        let bound = bind_pat pat in
        expr ~mpath ~env ~in_loop:true body;
        List.iter unbind bound
    | Pexp_while (cond, body) ->
        expr ~mpath ~env ~in_loop cond;
        expr ~mpath ~env ~in_loop:true body
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        expr ~mpath ~env ~in_loop scrut;
        List.iter (case ~mpath ~env ~in_loop) cases
    | _ -> shallow_iter e ~f:(expr ~mpath ~env ~in_loop)
  and case ~mpath ~env ~in_loop (c : case) =
    let bound = bind_pat c.pc_lhs in
    Option.iter (expr ~mpath ~env ~in_loop) c.pc_guard;
    expr ~mpath ~env ~in_loop c.pc_rhs;
    List.iter unbind bound
  and kernel_apply ~mpath ~env ~in_loop prim loc args =
    let nolabels = List.filter (fun (l, _) -> l = Nolabel) args in
    let kernel = List.nth_opt nolabels (Symtab.kernel_position prim) in
    let record target =
      if prim <> Symtab.Pool_submit then
        t.kernels <- { k_unit = u.uid; k_prim = prim; k_loc = loc; k_target = target } :: t.kernels
    in
    let walked =
      match kernel with
      | Some (_, ({ pexp_desc = Pexp_function _; _ } as lam)) ->
          incr gensym;
          let key = (u.uid, mpath @ [ Printf.sprintf "<kernel:%d>" !gensym ]) in
          let f = get_fn key lam.pexp_loc (Symtab.params_of lam) in
          fn_stack := f :: !fn_stack;
          expr ~mpath ~env ~in_loop lam;
          fn_stack := List.tl !fn_stack;
          record (Some key);
          [ lam ]
      | Some (_, { pexp_desc = Pexp_ident lid; _ }) ->
          (match resolve ~mpath env lid.txt with
          | Symtab.Sym (uid, path) -> record (Some (uid, path))
          | Symtab.Local name -> record (List.assoc_opt name !local_fns)
          | Symtab.Ext _ -> record None);
          []
      | _ -> []
    in
    List.iter (fun (_, a) -> if not (List.memq a walked) then expr ~mpath ~env ~in_loop a) args
  and shallow_iter e ~f =
    let entered = ref false in
    let it =
      object
        inherit Ast_traverse.iter as super

        method! expression sub =
          if not !entered then begin
            entered := true;
            super#expression sub
          end
          else f sub

        method! module_expr _ = ()
        method! structure_item _ = ()
      end
    in
    it#expression e
  in
  let rec items ~mpath ~env is = ignore (List.fold_left (fun env si -> item ~mpath ~env si) env is)
  and item ~mpath ~env (si : structure_item) =
    match si.pstr_desc with
    | Pstr_open { popen_expr = { pmod_desc = Pmod_ident lid; _ }; _ } ->
        Symtab.push_open env lid.txt
    | Pstr_module { pmb_name = { txt = Some name; _ }; pmb_expr; _ } -> (
        match pmb_expr.pmod_desc with
        | Pmod_ident lid -> Symtab.push_alias env name lid.txt
        | _ ->
            module_expr ~mpath:(mpath @ [ name ]) ~env pmb_expr;
            env)
    | Pstr_recmodule mbs ->
        List.iter
          (fun (mb : module_binding) ->
            match mb.pmb_name.txt with
            | Some name -> module_expr ~mpath:(mpath @ [ name ]) ~env mb.pmb_expr
            | None -> ())
          mbs;
        env
    | Pstr_include { pincl_mod = { pmod_desc = Pmod_ident lid; _ }; _ } ->
        (match Symtab.resolve_unit t.symtab ~cur:u env lid.txt with
        | Some uid -> Hashtbl.replace t.included uid ()
        | None -> ());
        env
    | Pstr_include { pincl_mod; _ } ->
        module_expr ~mpath ~env pincl_mod;
        env
    | Pstr_value (_, vbs) ->
        List.iter
          (fun (vb : value_binding) ->
            let key, params =
              match Symtab.pattern_names vb.pvb_pat with
              | [ (name, _) ] -> ((u.uid, mpath @ [ name ]), Symtab.params_of vb.pvb_expr)
              | _ -> ((u.uid, mpath @ [ "<init>" ]), [])
            in
            let f = get_fn key vb.pvb_loc params in
            fn_stack := [ f ];
            local_fns := [];
            expr ~mpath ~env ~in_loop:false vb.pvb_expr;
            fn_stack := [])
          vbs;
        env
    | Pstr_eval (e, _) ->
        let f = get_fn (u.uid, mpath @ [ "<init>" ]) si.pstr_loc [] in
        fn_stack := [ f ];
        local_fns := [];
        expr ~mpath ~env ~in_loop:false e;
        fn_stack := [];
        env
    | _ -> env
  and module_expr ~mpath ~env (me : module_expr) =
    match me.pmod_desc with
    | Pmod_structure is -> items ~mpath ~env is
    | Pmod_constraint (me, _) -> module_expr ~mpath ~env me
    | _ -> ()
  in
  items ~mpath:[] ~env:Symtab.env0 u.Symtab.str

(* ---- purity fixpoint ------------------------------------------------------ *)

let fixpoint t =
  Hashtbl.iter
    (fun key (f : fn) ->
      Hashtbl.replace t.kinds key
        (List.map (fun (k, why, loc) -> (k, Direct (why, loc))) f.fn_imps))
    t.fns;
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun key (f : fn) ->
        let cur = try Hashtbl.find t.kinds key with Not_found -> [] in
        let add = ref cur in
        List.iter
          (fun c ->
            match c.callee with
            | Symtab.Sym (uid, path) ->
                let ck = try Hashtbl.find t.kinds (uid, path) with Not_found -> [] in
                List.iter
                  (fun (k, _) ->
                    if not (List.exists (fun (k', _) -> k' = k) !add) then begin
                      add := (k, Via ((uid, path), c.call_loc)) :: !add;
                      changed := true
                    end)
                  ck
            | _ -> ())
          f.fn_calls;
        if !add != cur then Hashtbl.replace t.kinds key !add)
      t.fns
  done

let build symtab =
  let t =
    {
      symtab;
      fns = Hashtbl.create 512;
      refs = Hashtbl.create 1024;
      included = Hashtbl.create 8;
      kernels = [];
      kinds = Hashtbl.create 512;
    }
  in
  for uid = 0 to Symtab.n_units symtab - 1 do
    walk_unit t (Symtab.unit symtab uid)
  done;
  fixpoint t;
  t

(* ---- queries -------------------------------------------------------------- *)

let kinds t key = try Hashtbl.find t.kinds key with Not_found -> []

let referenced t key = Hashtbl.mem t.refs key

let included t uid = Hashtbl.mem t.included uid

let fns t = Hashtbl.fold (fun _ f acc -> f :: acc) t.fns []


let kernels t = t.kernels

let pretty_key t ((uid, path) : key) =
  let u = Symtab.unit t.symtab uid in
  let path =
    List.map
      (fun s ->
        if String.length s > 7 && String.equal (String.sub s 0 7) "<local:" then
          (* "<local:name:N>" -> "name" *)
          match String.split_on_char ':' s with _ :: name :: _ -> name | _ -> s
        else s)
      path
  in
  Printf.sprintf "%s.%s" u.Symtab.modname (Symtab.string_of_path path)

let line_of (loc : Location.t) = loc.loc_start.pos_lnum

let rec describe_witness ?(depth = 0) t (kind : kind) (w : witness) =
  match w with
  | Direct (why, loc) -> Printf.sprintf "%s at %s:%d" why loc.loc_start.pos_fname (line_of loc)
  | Via (key, loc) ->
      let tail =
        if depth >= 6 then "..."
        else
          match List.assoc_opt kind (kinds t key) with
          | Some w' -> describe_witness ~depth:(depth + 1) t kind w'
          | None -> "?"
      in
      Printf.sprintf "calls %s at %s:%d, which %s" (pretty_key t key) loc.loc_start.pos_fname
        (line_of loc) tail

let describe_kind t key kind =
  match List.assoc_opt kind (kinds t key) with
  | Some w -> Some (Printf.sprintf "%s: %s" (kind_name kind) (describe_witness t kind w))
  | None -> None
