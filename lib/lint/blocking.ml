open Ppxlib

(* Event-loop blocking analysis: functions annotated [@cpla.event_loop]
   (the daemon's select loop) must never reach a blocking primitive —
   sleeps, process waits, blocking socket/file ops, lock acquisition,
   domain/thread joins, or an unbounded [while true] that contains no
   select/poll.  Witnesses are collected syntactically per top-level
   binding (flat attribution, like the call graph) so primitives that are
   merely *passed* ([List.iter Domain.join ds]) count too; reachability
   then follows the call graph's resolved edges from each root.

   Findings are reported at the blocking site — the per-site
   [@cpla.allow "blocking-in-loop"] contract: each sanctioned wait
   (nonblocking fd, brief critical section, post-loop drain) carries its
   own justification where the wait happens. *)

type witness = { w_desc : string; w_loc : Location.t }

let rule = "blocking-in-loop"

let annot = "cpla.event_loop"

let has_annot (attrs : attributes) =
  List.exists (fun (a : attribute) -> String.equal a.attr_name.txt annot) attrs

let is_pseudo seg = String.length seg > 0 && seg.[0] = '<'

(* [Unix.select] itself is exempt: it is the loop's scheduling primitive. *)
let blocking_prim p =
  match p with
  | [ "Unix";
      ( "sleep" | "sleepf" | "wait" | "waitpid" | "system" | "connect" | "read" | "write"
      | "write_substring" | "single_write" | "recv" | "recvfrom" | "send"
      | "send_substring" | "sendto" | "accept" | "gethostbyname" | "gethostbyaddr"
      | "getaddrinfo" | "lockf" | "open_connection" | "establish_server" ) ] ->
      true
  | [ "Mutex"; ("lock" | "protect") ] -> true
  | [ "Condition"; "wait" ] -> true
  | [ "Domain"; "join" ] -> true
  | [ "Thread"; ("join" | "delay") ] -> true
  | [ ("input_line" | "really_input" | "really_input_string" | "read_line" | "read_int"
      | "read_float") ] ->
      true
  | _ -> false

(* ---- per-unit witness collection ------------------------------------------ *)

let mentions_select body =
  let found = ref false in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt; _ } -> (
            match Checks.last (Checks.strip_stdlib (Checks.flatten txt)) with
            | "select" | "poll" -> found := true
            | _ -> ())
        | _ -> ());
        super#expression e
    end
  in
  it#expression body;
  !found

let collect_unit (str : structure) ~on_root ~on_witness =
  let walk key =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt; loc; _ } ->
            let p = Checks.strip_stdlib (Checks.flatten txt) in
            if blocking_prim p then
              on_witness key
                {
                  w_desc =
                    Printf.sprintf "`%s` may block the event loop" (String.concat "." p);
                  w_loc = loc;
                }
        | Pexp_while
            ({ pexp_desc = Pexp_construct ({ txt = Lident "true"; _ }, None); _ }, body)
          when not (mentions_select body) ->
            on_witness key
              {
                w_desc =
                  "an unbounded `while true` without select/poll can starve the event \
                   loop";
                w_loc = e.pexp_loc;
              }
        | _ -> ());
        super#expression e

      method! module_expr _ = ()
      method! structure_item _ = ()
    end
  in
  let rec items mpath is = List.iter (item mpath) is
  and item mpath (si : structure_item) =
    match si.pstr_desc with
    | Pstr_value (_, vbs) ->
        List.iter
          (fun (vb : value_binding) ->
            let key =
              match Symtab.pattern_names vb.pvb_pat with
              | [ (name, _) ] -> mpath @ [ name ]
              | _ -> mpath @ [ "<init>" ]
            in
            if has_annot vb.pvb_attributes || has_annot vb.pvb_expr.pexp_attributes then
              on_root key vb.pvb_loc;
            (walk key)#expression vb.pvb_expr)
          vbs
    | Pstr_module { pmb_name = { txt = Some name; _ }; pmb_expr; _ } ->
        module_expr (mpath @ [ name ]) pmb_expr
    | Pstr_recmodule mbs ->
        List.iter
          (fun (mb : module_binding) ->
            match mb.pmb_name.txt with
            | Some name -> module_expr (mpath @ [ name ]) mb.pmb_expr
            | None -> ())
          mbs
    | Pstr_include { pincl_mod; _ } -> module_expr mpath pincl_mod
    | _ -> ()
  and module_expr mpath (me : module_expr) =
    match me.pmod_desc with
    | Pmod_structure is -> items mpath is
    | Pmod_constraint (me, _) -> module_expr mpath me
    | _ -> ()
  in
  items [] str

(* ---- per-unit facts -------------------------------------------------------- *)

(* Keys are value paths within the summarized unit (attribution is always
   own-unit); the engine re-keys them under the run's uids when merging. *)
type unit_facts = {
  bf_roots : (string list * Location.t) list;
  bf_witnesses : (string list * witness) list;  (** in collection order *)
}

let collect (_u : Symtab.unit_info) (str : structure) =
  let roots = ref [] and witnesses = ref [] in
  collect_unit str
    ~on_root:(fun key loc -> roots := (key, loc) :: !roots)
    ~on_witness:(fun key w -> witnesses := (key, w) :: !witnesses);
  { bf_roots = List.rev !roots; bf_witnesses = List.rev !witnesses }

(* ---- reachability ---------------------------------------------------------- *)

let line_of (loc : Location.t) = loc.loc_start.pos_lnum

let site (loc : Location.t) =
  Printf.sprintf "%s:%d" loc.loc_start.pos_fname (line_of loc)

let max_depth = 12

let check ~allowed symtab cg (facts : unit_facts array) =
  let witnesses : (Callgraph.key, witness list ref) Hashtbl.t = Hashtbl.create 64 in
  let roots = ref [] in
  let on_witness key w =
    match Hashtbl.find_opt witnesses key with
    | Some l -> l := w :: !l
    | None -> Hashtbl.replace witnesses key (ref [ w ])
  in
  Array.iteri
    (fun uid f ->
      List.iter (fun (path, loc) -> roots := ((uid, path), loc) :: !roots) f.bf_roots;
      List.iter (fun (path, w) -> on_witness (uid, path) w) f.bf_witnesses)
    facts;
  let edges : (Callgraph.key, (Callgraph.key * Location.t) list) Hashtbl.t =
    Hashtbl.create 256
  in
  List.iter
    (fun (f : Callgraph.fn) ->
      if not (List.exists is_pseudo (snd f.Callgraph.fn_key)) then
        Hashtbl.replace edges f.Callgraph.fn_key
          (List.filter_map
             (fun (c : Callgraph.call) ->
               match c.Callgraph.callee with
               | Symtab.Sym (cuid, cpath) -> Some ((cuid, cpath), c.Callgraph.call_loc)
               | _ -> None)
             f.Callgraph.fn_calls))
    (Callgraph.fns cg);
  let unit_path uid = (Symtab.unit symtab uid).Symtab.path in
  let findings = ref [] in
  List.iter
    (fun ((root_key, _root_loc) : Callgraph.key * Location.t) ->
      let root_name = Callgraph.pretty_key cg root_key in
      let visited : (Callgraph.key, unit) Hashtbl.t = Hashtbl.create 64 in
      let rec visit key hops depth =
        if not (Hashtbl.mem visited key) then begin
          Hashtbl.replace visited key ();
          let ku = Symtab.unit symtab (fst key) in
          (match Hashtbl.find_opt witnesses key with
          | Some ws ->
              List.iter
                (fun w ->
                  if not (allowed rule ku.Symtab.path w.w_loc) && ku.Symtab.linted then
                    let how =
                      match hops with
                      | [] ->
                          Printf.sprintf "directly inside [@cpla.event_loop] `%s`"
                            root_name
                      | hops ->
                          Printf.sprintf "reachable from [@cpla.event_loop] `%s`: %s"
                            root_name
                            (String.concat ", which "
                               (List.map
                                  (fun (callee, loc) ->
                                    Printf.sprintf "calls `%s` at %s"
                                      (Callgraph.pretty_key cg callee)
                                      (site loc))
                                  hops))
                    in
                    findings :=
                      Finding.v ~file:ku.Symtab.path ~loc:w.w_loc ~rule
                        ~msg:
                          (Printf.sprintf
                             "%s; %s.  Bound the wait or sanction this site with \
                              [@cpla.allow \"blocking-in-loop\"]"
                             w.w_desc how)
                      :: !findings)
                (List.rev !ws)
          | None -> ());
          if depth < max_depth then
            List.iter
              (fun ((callee, cloc) : Callgraph.key * Location.t) ->
                (* an allow on the call edge sanctions everything it reaches
                   (e.g. a thunk that runs on a worker domain, not the loop) *)
                if not (allowed rule (unit_path (fst key)) cloc) then
                  visit callee (hops @ [ (callee, cloc) ]) (depth + 1))
              (try List.rev (Hashtbl.find edges key) with Not_found -> [])
        end
      in
      visit root_key [] 0)
    (List.rev !roots);
  !findings
