(** Interprocedural allocation-effect analysis ([alloc-in-kernel]).

    Functions annotated [[\@cpla.zero_alloc]] (on the [let] binding) are
    verified not to allocate: closure / tuple / record / variant / array /
    lazy construction, escaping [ref] cells, calls to allocating stdlib
    functions ([Array.make], lists, [\@], [^], [sprintf], ...), float
    boxing at polymorphic [compare]/[min]/[max], and partial applications
    of project functions — in the function itself or anything reachable
    through the {!Callgraph}'s resolved call edges.  Violations are
    reported at the annotation with a creation-to-call witness chain.

    Suppression: [[\@cpla.allow "alloc-in-kernel"]] at the allocation site
    sanctions that allocation for every caller (e.g. amortised workspace
    growth inside a [reserve]); on a call site it sanctions everything
    reached through that edge for chains passing through it.

    Precision notes (DESIGN.md §8): local refs used only under
    [!]/[:=]/[incr]/[decr] are register-allocated, not heap cells, and are
    not flagged; [raise]/[invalid_arg]/[failwith] argument expressions are
    off-budget; ordinary boxed-float returns are left to the dynamic
    [Gc.allocated_bytes] budget tests. *)

type unit_facts
(** One unit's marshalable allocation slice: annotated roots and
    per-binding allocation witnesses, keyed by value path. *)

val collect : Symtab.unit_info -> Ppxlib.structure -> unit_facts
(** Syntactic, AST-only walk of one unit — no symtab reads, safe on any
    domain. *)

val check :
  allowed:(string -> string -> Ppxlib.Location.t -> bool) ->
  Symtab.t ->
  Callgraph.t ->
  unit_facts array ->
  Finding.t list
(** [check ~allowed symtab cg facts] — [allowed rule path loc] is the
    engine's recording suppression predicate; [facts] is indexed by uid.
    Findings are only emitted for roots in linted units; traversal (and
    therefore allow-usage accounting) runs over the whole project. *)
