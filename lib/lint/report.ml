let human fmt findings =
  List.iter (fun f -> Format.fprintf fmt "%a@." Finding.pp f) findings;
  let n = List.length findings in
  Format.fprintf fmt "cpla-lint: %d finding%s@." n (if n = 1 then "" else "s")

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json fmt findings =
  Format.fprintf fmt "{\"findings\":[";
  List.iteri
    (fun i (f : Finding.t) ->
      Format.fprintf fmt "%s{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\"message\":\"%s\"}"
        (if i = 0 then "" else ",")
        (escape f.Finding.file) f.Finding.line f.Finding.col (escape f.Finding.rule)
        (escape f.Finding.message))
    findings;
  Format.fprintf fmt "],\"count\":%d}@." (List.length findings)

let rules fmt =
  List.iter
    (fun (r : Rule.t) ->
      Format.fprintf fmt "%-16s %s@.%16s rationale: %s@." r.Rule.id r.Rule.synopsis ""
        r.Rule.rationale)
    Rule.all
