(* Deterministic rendering: every format sorts by (file, line, col, rule,
   message) and drops exact duplicates, so CI logs and committed SARIF
   artifacts diff stably whatever order the findings were produced in. *)
let normalize findings = List.sort_uniq Finding.compare findings

let human fmt findings =
  let findings = normalize findings in
  List.iter (fun f -> Format.fprintf fmt "%a@." Finding.pp f) findings;
  let n = List.length findings in
  Format.fprintf fmt "cpla-lint: %d finding%s@." n (if n = 1 then "" else "s")

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json ?stats fmt findings =
  let findings = normalize findings in
  Format.fprintf fmt "{\"findings\":[";
  List.iteri
    (fun i (f : Finding.t) ->
      Format.fprintf fmt "%s{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\"message\":\"%s\"}"
        (if i = 0 then "" else ",")
        (escape f.Finding.file) f.Finding.line f.Finding.col (escape f.Finding.rule)
        (escape f.Finding.message))
    findings;
  Format.fprintf fmt "],\"count\":%d" (List.length findings);
  (match stats with
  | Some (s : Summary.stats) ->
      Format.fprintf fmt ",\"stats\":{\"files\":%d,\"summarized\":%d,\"reused\":%d}"
        s.Summary.files s.Summary.summarized s.Summary.reused
  | None -> ());
  Format.fprintf fmt "}@."

(* GitHub Actions workflow commands: one [::error] annotation per finding.
   Newlines (the capture chains in domain-race messages) must be %-escaped
   or the runner truncates the message at the first line break. *)
let github_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '%' -> Buffer.add_string b "%25"
      | '\r' -> Buffer.add_string b "%0D"
      | '\n' -> Buffer.add_string b "%0A"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let github fmt findings =
  let findings = normalize findings in
  List.iter
    (fun (f : Finding.t) ->
      Format.fprintf fmt "::error file=%s,line=%d,col=%d,title=cpla-lint %s::%s@."
        (github_escape f.Finding.file)
        (max 1 f.Finding.line) (f.Finding.col + 1) (github_escape f.Finding.rule)
        (github_escape f.Finding.message))
    findings;
  let n = List.length findings in
  Format.fprintf fmt "cpla-lint: %d finding%s@." n (if n = 1 then "" else "s")

(* SARIF 2.1.0, hand-rolled on the same JSON string escaping as [json]:
   one run, one result per finding, rule metadata in the driver so code
   scanning renders synopsis and rationale. *)
let sarif fmt findings =
  let findings = normalize findings in
  let fired = List.sort_uniq String.compare (List.map (fun f -> f.Finding.rule) findings) in
  let rules_meta = List.filter (fun (r : Rule.t) -> List.mem r.Rule.id fired) Rule.all in
  Format.fprintf fmt
    "{\"version\":\"2.1.0\",\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"runs\":[{";
  Format.fprintf fmt
    "\"tool\":{\"driver\":{\"name\":\"cpla-lint\",\"informationUri\":\"DESIGN.md\",\"rules\":[";
  List.iteri
    (fun i (r : Rule.t) ->
      Format.fprintf fmt
        "%s{\"id\":\"%s\",\"shortDescription\":{\"text\":\"%s\"},\"fullDescription\":{\"text\":\"%s\"}}"
        (if i = 0 then "" else ",")
        (escape r.Rule.id) (escape r.Rule.synopsis) (escape r.Rule.rationale))
    rules_meta;
  Format.fprintf fmt "]}},\"results\":[";
  List.iteri
    (fun i (f : Finding.t) ->
      Format.fprintf fmt
        "%s{\"ruleId\":\"%s\",\"level\":\"error\",\"message\":{\"text\":\"%s\"},\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"%s\"},\"region\":{\"startLine\":%d,\"startColumn\":%d}}}]}"
        (if i = 0 then "" else ",")
        (escape f.Finding.rule) (escape f.Finding.message) (escape f.Finding.file)
        (max 1 f.Finding.line) (f.Finding.col + 1))
    findings;
  Format.fprintf fmt "]}]}@."

let rules fmt =
  List.iter
    (fun (r : Rule.t) ->
      let tag =
        match r.Rule.analysis with
        | Rule.File_local -> "file"
        | Rule.Whole_program -> "program"
      in
      Format.fprintf fmt "%-18s [%s] %s@.%18s rationale: %s@." r.Rule.id tag r.Rule.synopsis
        "" r.Rule.rationale)
    Rule.all
