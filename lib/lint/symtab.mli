(** Phase-1 whole-program symbol table.

    Parses every [.ml]/[.mli] in the project, records each compilation
    unit's top-level (and nested-module) value definitions with a
    shared-mutability classification, its [.mli] export list, and resolves
    longidents against the project's module structure — dune-wrapped
    library names ([Cpla_util.Pool.parallel_map]), same-library siblings
    ([Elmore.analyze] from [lib/timing]), [open]s and module aliases. *)

open Ppxlib

type source = {
  src_path : string;  (** project-relative path, e.g. ["lib/util/pool.ml"] *)
  contents : string;
  linted : bool;  (** findings are only emitted for linted sources *)
}

type def = {
  def_path : string list;  (** e.g. [["Persistent"; "submit"]] *)
  def_loc : Location.t;
  def_params : arg_label list;  (** labels of the leading [fun] parameters *)
  def_mut : string option;
      (** [Some kind] when the binding evaluates to a value with mutable
          contents shared by everyone who reaches it (ref, Hashtbl, Buffer,
          Queue, Stack, array, bytes, mutable-record literal).  [Atomic] and
          the synchronisation primitives are exempt. *)
}

type export = {
  exp_path : string list;
  exp_loc : Location.t;
  exp_suppressed : bool;  (** [[\@\@cpla.allow "unused-export"]] on the val *)
}

type unit_info = {
  uid : int;
  path : string;
  area : Checks.area;
  lib : string option;  (** wrapped library module name, e.g. ["Cpla_util"] *)
  modname : string;  (** unit module name, e.g. ["Pool"] *)
  str : structure;  (** empty when the file does not parse *)
  parsed : bool;
  parse_exn : string option;
  has_intf : bool;
  intf_path : string option;
  exports : export list;
  intf_bad_allows : (string option * Location.t) list;
      (** unknown rule id ([Some id]) or malformed payload ([None]) in the
          [.mli]'s [\@cpla.allow] attributes *)
  intf_parse_exn : string option;  (** the [.mli] exists but does not parse *)
  defs : def list;
  linted : bool;
}

type t

val build : source list -> t
(** Parse and index every source.  Files that fail to parse keep an entry
    (with [parsed = false]) so the engine can report them. *)

val unit : t -> int -> unit_info

val n_units : t -> int

val find_def : unit_info -> string list -> def option

(** {2 Resolution} *)

type resolved =
  | Sym of int * string list  (** unit id, value path within that unit *)
  | Ext of string list  (** canonical path of an external (non-project) name *)
  | Local of string  (** shadowed by a local binding of the walker's scope *)

type env
(** Per-position resolution context: the [open]s and module aliases in
    force.  Walkers thread it through the traversal. *)

val env0 : env

val push_open : env -> Longident.t -> env

val push_alias : env -> string -> Longident.t -> env
(** [push_alias env "Pool" lid] records [module Pool = <lid>]. *)

val resolve :
  t -> cur:unit_info -> mpath:string list -> locals:(string -> bool) -> env -> Longident.t -> resolved
(** [mpath] is the walker's current nested-module path within [cur] (so
    unqualified names inside [module Persistent = struct .. end] resolve to
    [Persistent.x] first); [locals] says whether a name is bound in an
    enclosing [let]/parameter scope (locals shadow unit-level defs). *)

val resolve_unit : t -> cur:unit_info -> env -> Longident.t -> int option
(** Resolve a module path ([include M], alias targets) to a unit. *)

(** {2 Parallel primitives} *)

type primitive = Parallel_map | Pool_submit | Domain_spawn

val primitive_name : primitive -> string

val primitive_of_resolved : t -> resolved -> primitive option
(** Recognises [Pool.parallel_map] / [Pool.Persistent.submit] /
    [Domain.spawn] whether resolved to the project's own [Pool] unit or
    left external (so fixture projects without a real [Pool] still match). *)

val kernel_position : primitive -> int
(** Index, among the [Nolabel] arguments, of the function the primitive
    runs on another domain. *)

(** {2 Shared classifiers} *)

val mutable_fields_of : structure -> (string, unit) Hashtbl.t
val classify_rhs : (string, unit) Hashtbl.t -> expression -> string option
val params_of : expression -> arg_label list

(** Leading [fun] parameters with the bound name when the pattern is a
    plain variable. *)
val fun_params : expression -> (arg_label * string option * Location.t) list
val pattern_names : pattern -> (string * Location.t) list
val string_of_path : string list -> string
