(** Phase-1 whole-program symbol table.

    Each compilation unit's top-level (and nested-module) value definitions
    with a shared-mutability classification and its [.mli] export list are
    recorded as AST-free, marshalable {!unit_info} metadata; longidents
    resolve against the project's module structure — dune-wrapped library
    names ([Cpla_util.Pool.parallel_map]), same-library siblings
    ([Elmore.analyze] from [lib/timing]), [open]s and module aliases.

    The incremental engine splits construction in two: {!parse_source}
    produces one unit's metadata plus its AST (cacheable metadata,
    throwaway AST), and {!assemble} indexes the full ordered unit list —
    mixing freshly parsed and cache-loaded entries — assigning positional
    uids. *)

open Ppxlib

type source = {
  src_path : string;  (** project-relative path, e.g. ["lib/util/pool.ml"] *)
  contents : string;
  linted : bool;  (** findings are only emitted for linted sources *)
}

type def = {
  def_path : string list;  (** e.g. [["Persistent"; "submit"]] *)
  def_loc : Location.t;
  def_params : arg_label list;  (** labels of the leading [fun] parameters *)
  def_mut : string option;
      (** [Some kind] when the binding evaluates to a value with mutable
          contents shared by everyone who reaches it (ref, Hashtbl, Buffer,
          Queue, Stack, array, bytes, mutable-record literal).  [Atomic] and
          the synchronisation primitives are exempt. *)
}

type export = {
  exp_path : string list;
  exp_loc : Location.t;
  exp_suppressed : bool;  (** [[\@\@cpla.allow "unused-export"]] on the val *)
}

type unit_info = {
  uid : int;  (** positional; reassigned by {!assemble} every run *)
  path : string;
  area : Checks.area;
  lib : string option;  (** wrapped library module name, e.g. ["Cpla_util"] *)
  modname : string;  (** unit module name, e.g. ["Pool"] *)
  parsed : bool;
  parse_exn : string option;
  has_intf : bool;
  intf_path : string option;
  exports : export list;
  intf_bad_allows : (string option * Location.t) list;
      (** unknown rule id ([Some id]) or malformed payload ([None]) in the
          [.mli]'s [\@cpla.allow] attributes *)
  intf_parse_exn : string option;  (** the [.mli] exists but does not parse *)
  defs : def list;
  linted : bool;
}

type t

val parse_source : source -> intf:source option -> unit_info * structure
(** Parse one implementation and its optional interface into metadata plus
    the AST.  A file that fails to parse still yields an entry (with
    [parsed = false] and an empty structure) so the engine can report it.
    [uid] is a placeholder until {!assemble}.  Parsing uses compiler-libs'
    global lexer state — callers must not invoke this from multiple
    domains. *)

val assemble : unit_info list -> t
(** Index an ordered unit list, assigning [uid = position]. *)

val unit : t -> int -> unit_info

val n_units : t -> int

val path_of : t -> int -> string

val uid_of_path : t -> string -> int option

val find_def : unit_info -> string list -> def option

(** {2 Resolution} *)

type resolved =
  | Sym of int * string list  (** unit id, value path within that unit *)
  | Ext of string list  (** canonical path of an external (non-project) name *)
  | Local of string  (** shadowed by a local binding of the walker's scope *)

type sym = { s_unit : string; s_path : string list }
(** Path-symbolic cross-unit reference: the persistable form of
    [Sym (uid, path)].  Cached summaries store these (unit paths are
    stable across runs; uids are not) and {!internalize} maps them back
    once the run's symtab is assembled. *)

val internalize : t -> sym -> (int * string list) option
(** [None] when the referenced unit no longer exists. *)

type env
(** Per-position resolution context: the [open]s and module aliases in
    force.  Walkers thread it through the traversal. *)

val env0 : env

val push_open : env -> Longident.t -> env

val push_alias : env -> string -> Longident.t -> env
(** [push_alias env "Pool" lid] records [module Pool = <lid>]. *)

val resolve :
  t -> cur:unit_info -> mpath:string list -> locals:(string -> bool) -> env -> Longident.t -> resolved
(** [mpath] is the walker's current nested-module path within [cur] (so
    unqualified names inside [module Persistent = struct .. end] resolve to
    [Persistent.x] first); [locals] says whether a name is bound in an
    enclosing [let]/parameter scope (locals shadow unit-level defs). *)

val resolve_unit : t -> cur:unit_info -> env -> Longident.t -> int option
(** Resolve a module path ([include M], alias targets) to a unit. *)

(** {2 Parallel primitives} *)

type primitive = Parallel_map | Pool_submit | Domain_spawn

val primitive_name : primitive -> string

val primitive_of_resolved : t -> resolved -> primitive option
(** Recognises [Pool.parallel_map] / [Pool.Persistent.submit] /
    [Domain.spawn] whether resolved to the project's own [Pool] unit or
    left external (so fixture projects without a real [Pool] still match). *)

val kernel_position : primitive -> int
(** Index, among the [Nolabel] arguments, of the function the primitive
    runs on another domain. *)

(** {2 Shared classifiers} *)

val mutable_fields_of : structure -> (string, unit) Hashtbl.t
val classify_rhs : (string, unit) Hashtbl.t -> expression -> string option
val params_of : expression -> arg_label list

(** Leading [fun] parameters with the bound name when the pattern is a
    plain variable. *)
val fun_params : expression -> (arg_label * string option * Location.t) list
val pattern_names : pattern -> (string * Location.t) list
val string_of_path : string list -> string
