open Ppxlib

(* ---- scope ---------------------------------------------------------------- *)

type area = Lib | Bin | Bench | Test | Other

type scope = { path : string; segments : string list; area : area }

let scope_of_path path =
  let path = String.map (fun c -> if c = '\\' then '/' else c) path in
  let segments =
    String.split_on_char '/' path |> List.filter (fun s -> s <> "" && s <> ".")
  in
  let area =
    match segments with
    | "lib" :: _ -> Lib
    | "bin" :: _ -> Bin
    | "bench" :: _ -> Bench
    | "test" :: _ -> Test
    | _ -> Other
  in
  { path = String.concat "/" segments; segments; area }

let under prefix scope =
  let rec go p s =
    match (p, s) with
    | [], _ -> true
    | ph :: pt, sh :: st -> String.equal ph sh && go pt st
    | _ :: _, [] -> false
  in
  go prefix scope.segments

(* ---- longident helpers ---------------------------------------------------- *)

let rec flatten = function
  | Lident s -> [ s ]
  | Ldot (l, s) -> flatten l @ [ s ]
  | Lapply _ -> []

let strip_stdlib = function "Stdlib" :: rest -> rest | l -> l

let last = function [] -> "" | l -> List.nth l (List.length l - 1)

(* ---- [@cpla.allow] -------------------------------------------------------- *)

let allow_name = "cpla.allow"

(* The payload is one or more string literals; each may itself hold several
   whitespace/comma-separated rule ids. *)
let rec strings_of_expr e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, loc, _)) ->
      String.split_on_char ' ' s
      |> List.concat_map (String.split_on_char ',')
      |> List.filter_map (fun id ->
             let id = String.trim id in
             if id = "" then None else Some (id, loc))
  | Pexp_tuple es -> List.concat_map strings_of_expr es
  | Pexp_apply (f, args) ->
      strings_of_expr f @ List.concat_map (fun (_, a) -> strings_of_expr a) args
  | _ -> []

(* [allow_ids ~malformed attrs] collects (rule-id, loc) pairs from every
   [@cpla.allow] attribute, reporting attributes without a usable payload. *)
let allow_ids ~malformed (attrs : attributes) =
  List.concat_map
    (fun (a : attribute) ->
      if not (String.equal a.attr_name.txt allow_name) then []
      else
        let ids =
          match a.attr_payload with
          | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> strings_of_expr e
          | _ -> []
        in
        if ids = [] then begin
          malformed a.attr_loc;
          []
        end
        else ids)
    attrs

(* Every [@cpla.allow] in the file, paired with the source span of the node
   it annotates.  Whole-program rules report findings long after the
   per-file walk, so suppression for them is a containment test against
   these spans rather than a live attribute stack.  The id's own location
   is the annotation's identity for [stale-allow] usage accounting (one
   annotation can surface under two spans: a binding's attribute is noted
   both at the binding and at its structure item). *)
let allow_spans str =
  let spans = ref [] in
  let note (span : Location.t) attrs =
    List.iter
      (fun (id, id_loc) -> spans := (id, id_loc, span) :: !spans)
      (allow_ids ~malformed:(fun _ -> ()) attrs)
  in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        note e.pexp_loc e.pexp_attributes;
        super#expression e

      method! value_binding vb =
        note vb.pvb_loc vb.pvb_attributes;
        super#value_binding vb

      method! structure_item si =
        (match si.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter (fun (vb : value_binding) -> note si.pstr_loc vb.pvb_attributes) vbs
        | _ -> ());
        super#structure_item si
    end
  in
  it#structure str;
  !spans

let file_allow_ids str =
  List.concat_map
    (fun (si : structure_item) ->
      match si.pstr_desc with
      | Pstr_attribute a -> allow_ids ~malformed:(fun _ -> ()) [ a ]
      | _ -> [])
    str


(* ---- syntactic classifiers ------------------------------------------------ *)

let float_ident = function
  | [ ("nan" | "infinity" | "neg_infinity" | "epsilon_float" | "max_float" | "min_float") ]
    ->
      true
  | _ -> false

let float_fn = function
  | [
      ( "+." | "-." | "*." | "/." | "**" | "~-." | "~+." | "sqrt" | "exp" | "log"
      | "log10" | "float_of_int" | "abs_float" | "ceil" | "floor" | "mod_float" );
    ] ->
      true
  | "Float" :: _ -> true
  | _ -> false

(* Does this expression syntactically look float-valued?  A heuristic — the
   linter has no type information — tuned to catch the idioms that matter
   (comparison against a float literal, or against a float arithmetic
   result) with no false positives on int code. *)
let rec looks_float e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_ident { txt; _ } -> float_ident (strip_stdlib (flatten txt))
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
      float_fn (strip_stdlib (flatten txt))
  | Pexp_constraint (_, { ptyp_desc = Ptyp_constr ({ txt = Lident "float"; _ }, []); _ })
    ->
      true
  | Pexp_ifthenelse (_, a, Some b) -> looks_float a || looks_float b
  | Pexp_open (_, a) | Pexp_sequence (_, a) | Pexp_let (_, _, a) -> looks_float a
  | _ -> false

let mutable_creator lid =
  match strip_stdlib (flatten lid) with
  | [ "ref" ] -> Some "ref"
  | [ "Hashtbl"; "create" ] -> Some "Hashtbl.create"
  | [ "Buffer"; "create" ] -> Some "Buffer.create"
  | [ "Queue"; "create" ] -> Some "Queue.create"
  | [ "Stack"; "create" ] -> Some "Stack.create"
  | _ -> None

let print_ident = function
  | [
      ( "print_string" | "print_endline" | "print_newline" | "print_char" | "print_int"
      | "print_float" | "print_bytes" );
    ] ->
      true
  | [ "Printf"; "printf" ] -> true
  | [ "Format"; f ] ->
      List.mem f
        [
          "printf";
          "print_string";
          "print_newline";
          "print_char";
          "print_int";
          "print_float";
          "print_space";
          "print_cut";
          "print_flush";
        ]
  | _ -> false

let clock_ident = function
  | [ "Sys"; "time" ] | [ "Unix"; "gettimeofday" ] | [ "Unix"; "time" ] -> true
  | _ -> false

(* catch-all pattern of a [try] case: returns [Some (Some var)] when the
   pattern binds the exception to [var], [Some None] for a wildcard. *)
let rec catchall_var p =
  match p.ppat_desc with
  | Ppat_any -> Some None
  | Ppat_var v -> Some (Some v.txt)
  | Ppat_alias (inner, v) -> (
      match catchall_var inner with Some _ -> Some (Some v.txt) | None -> None)
  | Ppat_constraint (inner, _) -> catchall_var inner
  | _ -> None

(* Does [body] re-raise [var] (directly, or via Util.Exn.reraise_if_async)? *)
let reraises var body =
  let found = ref false in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, (_, arg) :: _)
          when List.mem (last (flatten txt))
                 [ "raise"; "raise_notrace"; "raise_with_backtrace"; "reraise_if_async" ]
          -> (
            match (var, arg.pexp_desc) with
            | Some v, Pexp_ident { txt = Lident v'; _ } when String.equal v v' ->
                found := true
            | _ -> ())
        | _ -> ());
        super#expression e
    end
  in
  it#expression body;
  !found

(* ---- analysis ------------------------------------------------------------- *)

let analyze ?(on_allow_use = fun _ _ -> ()) ~scope str =
  let findings = ref [] in
  let file_allowed = file_allow_ids str in
  (* Mutable-record types declared in this file: their literals at top level
     are shared mutable state just like a top-level [ref]. *)
  let mutable_fields = Hashtbl.create 16 in
  let collect_types =
    object
      inherit Ast_traverse.iter as super

      method! type_declaration td =
        (match td.ptype_kind with
        | Ptype_record lds ->
            List.iter
              (fun ld ->
                if ld.pld_mutable = Mutable then
                  Hashtbl.replace mutable_fields ld.pld_name.txt ())
              lds
        | _ -> ());
        super#type_declaration td
    end
  in
  collect_types#structure str;
  (* suppression stack: one frame per attribute-bearing node on the spine.
     [find_suppressor] reports the annotation that won (innermost frame
     first, then file-level) so stale-allow can tell live allows from dead
     ones. *)
  let stack = ref [] in
  let find_suppressor rule =
    let hit frame = List.find_opt (fun (id, _) -> String.equal id rule) frame in
    match List.find_map hit !stack with
    | Some _ as s -> s
    | None -> hit file_allowed
  in
  let emit rule loc msg =
    match find_suppressor rule with
    | Some (id, id_loc) -> on_allow_use id id_loc
    | None -> findings := Finding.v ~file:scope.path ~loc ~rule ~msg :: !findings
  in
  let push attrs =
    let malformed loc =
      emit "unknown-allow" loc "[@cpla.allow] expects rule-id string literal(s)"
    in
    let ids = allow_ids ~malformed attrs in
    stack := ids :: !stack;
    (* validated after the push so [@cpla.allow "unknown-allow"] works *)
    List.iter
      (fun (id, loc) ->
        if not (Rule.known id) then
          emit "unknown-allow" loc
            (Printf.sprintf "unknown rule id %S in [@cpla.allow]" id))
      ids
  in
  let pop () = stack := List.tl !stack in
  (* -- per-ident rules -- *)
  let in_lib = scope.area = Lib in
  let float_scope =
    under [ "lib"; "numeric" ] scope
    || under [ "lib"; "timing" ] scope
    || under [ "lib"; "sdp" ] scope
  in
  let stdout_exempt =
    String.equal scope.path "lib/util/table.ml"
    || String.equal scope.path "lib/serve/report.ml"
  in
  (* test/ sources get the hygiene rules only: tests legitimately seed ad-hoc
     PRNGs and time themselves, and the determinism rules are about solver
     kernels, not harnesses. *)
  let clock_exempt = String.equal scope.path "lib/util/timer.ml" || scope.area = Test in
  let determinism_scope = scope.area <> Test in
  let check_ident lid loc =
    let p = strip_stdlib (flatten lid) in
    let name = String.concat "." p in
    (match p with
    | "Random" :: _ when determinism_scope ->
        emit "ambient-random" loc
          (name ^ " is ambient global PRNG state; use the seeded Util.Rng")
    | _ -> ());
    if clock_ident p && not clock_exempt then
      emit "wall-clock" loc
        (name ^ " is an ambient clock read; go through a Util.Timer stopwatch");
    (match p with
    | [ "Obj"; "magic" ] -> emit "obj-magic" loc "Obj.magic defeats the type system"
    | _ -> ());
    (match p with
    | [ "exit" ] when scope.area <> Bin ->
        emit "exit-scope" loc
          "exit outside bin/ — raise instead so callers keep control"
    | _ -> ());
    if in_lib && (not stdout_exempt) && print_ident p then
      emit "stdout-print" loc
        (name ^ " writes to stdout from lib/; return a string or use Util.Table / Serve.Report")
  in
  (* A catch-all exception-handler case must re-raise asynchronous
     exceptions.  [pat] is the handler pattern: the case pattern of a [try],
     or the payload of an [exception p ->] case of a [match]. *)
  let check_handler (pat : pattern) guard body =
    (* an allow on the handler body suppresses the case's finding, so the
       annotation can sit on the arm it is about *)
    let body_allow =
      allow_ids ~malformed:(fun _ -> ()) body.pexp_attributes
      |> List.find_opt (fun (id, _) -> String.equal id "catchall-async")
    in
    if guard = None then
      match catchall_var pat with
      | Some var when not (reraises var body) -> (
          match body_allow with
          | Some (id, id_loc) -> on_allow_use id id_loc
          | None ->
              emit "catchall-async" pat.ppat_loc
                (match var with
                | None ->
                    "catch-all `_ ->` handler swallows Out_of_memory/Stack_overflow; \
                     name the exception and call Util.Exn.reraise_if_async first"
                | Some v ->
                    Printf.sprintf
                      "catch-all handler must re-raise asynchronous exceptions: \
                       call Util.Exn.reraise_if_async %s (or raise %s) first"
                      v v))
      | _ -> ()
  in
  let check_try cases =
    List.iter (fun (c : case) -> check_handler c.pc_lhs c.pc_guard c.pc_rhs) cases
  in
  let check_match cases =
    List.iter
      (fun (c : case) ->
        match c.pc_lhs.ppat_desc with
        | Ppat_exception inner -> check_handler inner c.pc_guard c.pc_rhs
        | _ -> ())
      cases
  in
  let main =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        push e.pexp_attributes;
        (match e.pexp_desc with
        | Pexp_ident lid -> check_ident lid.txt lid.loc
        | Pexp_apply
            ( { pexp_desc = Pexp_ident { txt = Lident (("=" | "<>" | "==" | "!=") as op); _ }; _ },
              [ (Nolabel, a); (Nolabel, b) ] )
          when float_scope && (looks_float a || looks_float b) ->
            emit "float-equality" e.pexp_loc
              (Printf.sprintf
                 "(%s) on float operands; use Util.Float_cmp.approx_eq / is_zero / nonzero"
                 op)
        | Pexp_try (_, cases) -> check_try cases
        | Pexp_match (_, cases) -> check_match cases
        | _ -> ());
        super#expression e;
        pop ()

      method! value_binding vb =
        push vb.pvb_attributes;
        super#value_binding vb;
        pop ()
    end
  in
  main#structure str;
  (* -- top-level mutable state (lib/ only) -- *)
  let top_mutable () =
    let exempt lid =
      match strip_stdlib (flatten lid) with
      | "Atomic" :: _ | "Mutex" :: _ | "Condition" :: _ | "Semaphore" :: _ -> true
      | _ -> false
    in
    (* Walk a binding's right-hand side without crossing function or lazy
       boundaries: whatever mutable values are created here exist once, at
       module initialisation, and are then shared by every domain. *)
    let rec scan_rhs (e : expression) =
      push e.pexp_attributes;
      (match e.pexp_desc with
      | Pexp_function _ | Pexp_lazy _ -> ()
      | Pexp_apply (({ pexp_desc = Pexp_ident { txt; _ }; _ } as f), args) ->
          (match mutable_creator txt with
          | Some name when not (exempt txt) ->
              emit "top-mutable" e.pexp_loc
                (name
                ^ " at top level is cross-domain shared state; use Atomic, or \
                   create it inside the function that owns it")
          | _ -> ());
          scan_rhs f;
          List.iter (fun (_, a) -> scan_rhs a) args
      | Pexp_record (fields, base) ->
          if
            List.exists
              (fun (({ txt; _ } : Longident.t loc), _) ->
                Hashtbl.mem mutable_fields (last (flatten txt)))
              fields
          then
            emit "top-mutable" e.pexp_loc
              "top-level literal of a mutable record type is cross-domain shared state";
          List.iter (fun (_, fe) -> scan_rhs fe) fields;
          Option.iter scan_rhs base
      | Pexp_let (_, vbs, body) ->
          List.iter (fun (vb : value_binding) -> scan_rhs vb.pvb_expr) vbs;
          scan_rhs body
      | Pexp_sequence (a, b) | Pexp_setfield (a, _, b) ->
          scan_rhs a;
          scan_rhs b
      | Pexp_ifthenelse (c, a, b) ->
          scan_rhs c;
          scan_rhs a;
          Option.iter scan_rhs b
      | Pexp_tuple es | Pexp_array es -> List.iter scan_rhs es
      | Pexp_construct (_, Some a)
      | Pexp_variant (_, Some a)
      | Pexp_constraint (a, _)
      | Pexp_coerce (a, _, _)
      | Pexp_open (_, a)
      | Pexp_letmodule (_, _, a)
      | Pexp_field (a, _) ->
          scan_rhs a
      | Pexp_match (a, cases) | Pexp_try (a, cases) ->
          scan_rhs a;
          List.iter (fun c -> scan_rhs c.pc_rhs) cases
      | Pexp_apply (f, args) ->
          scan_rhs f;
          List.iter (fun (_, a) -> scan_rhs a) args
      | _ -> ());
      pop ()
    in
    let rec items is = List.iter item is
    and item (si : structure_item) =
      match si.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter
            (fun (vb : value_binding) ->
              push vb.pvb_attributes;
              scan_rhs vb.pvb_expr;
              pop ())
            vbs
      | Pstr_module mb -> module_expr mb.pmb_expr
      | Pstr_recmodule mbs -> List.iter (fun mb -> module_expr mb.pmb_expr) mbs
      | Pstr_include inc -> module_expr inc.pincl_mod
      | _ -> ()
    and module_expr me =
      match me.pmod_desc with
      | Pmod_structure is -> items is
      | Pmod_constraint (me, _) -> module_expr me
      | _ -> () (* functor bodies are instantiated per application *)
    in
    items str
  in
  if in_lib then top_mutable ();
  List.rev !findings
