type t = { file : string; line : int; col : int; rule : string; message : string }

let v ~file ~(loc : Ppxlib.Location.t) ~rule ~msg =
  let p = loc.loc_start in
  { file; line = p.pos_lnum; col = p.pos_cnum - p.pos_bol; rule; message = msg }

let file_level ~file ~rule ~msg = { file; line = 0; col = 0; rule; message = msg }

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> (
              match String.compare a.rule b.rule with
              | 0 -> String.compare a.message b.message
              | c -> c)
          | c -> c)
      | c -> c)
  | c -> c

let pp fmt t =
  if t.line = 0 then Format.fprintf fmt "%s: [%s] %s" t.file t.rule t.message
  else Format.fprintf fmt "%s:%d: [%s] %s" t.file t.line t.rule t.message
