open Ppxlib

type minfo = {
  m_kind : string;
  m_chain : string list;
  m_origin : string * Location.t;
}

type param_id = Lbl of string | Pos of int

type cap_what = Outer of minfo | Param of param_id

type capture = {
  c_name : string;
  c_what : cap_what;
  c_written : bool;
  c_loc : Location.t;
}

type esc_kind = Captured | Kernel

type esc_info = { e_kind : esc_kind; e_written : bool; e_desc : string }

type race = {
  r_path : string;
  r_loc : Location.t;
  r_msg : string;
  r_origin : (string * Location.t) option;
}

type binding = Plain | Mut of minfo | Closure of capture list

type key = int * string list

(* ---- per-unit facts ------------------------------------------------------- *)

(* The escape analysis needs whole-program rounds (a parameter's escape is
   discovered while walking one unit and consumed while walking another),
   but everything the rounds consume can be computed from one unit's AST
   alone.  [collect] therefore classifies, at every relevant site, what the
   walk {e would} do — unconditional escape seeds and already-gated races,
   plus deferred events whose outcome depends on the global escape table or
   def-capture table — and [solve] replays the event streams in uid order
   until the escape table is stable, then once more to emit races.  The
   event list preserves walk order, so first-seed-wins tie-breaking is a
   deterministic function of the merged facts. *)

type arg_class =
  | A_mut of minfo  (** ident bound [Mut] in local scope *)
  | A_closure of string * capture list  (** ident bound [Closure] in scope *)
  | A_param of param_id  (** ident that is an enclosing-fn parameter *)
  | A_global of minfo  (** ident resolving to a top-level mutable *)
  | A_lambda of capture list  (** literal [fun] argument *)

type event =
  | E_seed of string list * param_id * esc_info
      (** unconditional [add_esc] on (own-unit fn path, param) *)
  | E_race of race  (** unconditional race, already linted/area/risky-gated *)
  | E_defcaps of {
      dc_fn : string list;
      dc_target : Symtab.sym;
      dc_prim : string;
      dc_loc : Location.t;
    }  (** resolved-symbol kernel: consult the target's def-captures *)
  | E_arg of {
      a_fn : string list;
      a_callee : Symtab.sym;
      a_pid : param_id;
      a_cls : arg_class;
      a_loc : Location.t;
    }  (** argument handed to a possibly-escaping parameter *)

type unit_facts = {
  df_fire_ok : bool;  (** linted and not under [test/]: may emit races *)
  df_def_caps : (string list * capture list) list;
  df_events : event list;  (** in walk order *)
}

let at (loc : Location.t) =
  Printf.sprintf "%s:%d" loc.loc_start.pos_fname loc.loc_start.pos_lnum

let describe_pid = function
  | Pos i -> Printf.sprintf "argument %d" (i + 1)
  | Lbl s -> "~" ^ s

(* Arrays and bytes are only a race once some domain writes them; the other
   mutable kinds (ref, Hashtbl, Buffer, Queue, Stack, mutable record) have
   interior state that any sharing across domains puts at risk. *)
let risky kind ~written = written || not (List.mem kind [ "array"; "bytes" ])

let pid_of_args args =
  let npos = ref 0 in
  List.map
    (fun (lbl, a) ->
      let pid =
        match lbl with
        | Labelled s | Optional s -> Lbl s
        | Nolabel ->
            let p = Pos !npos in
            incr npos;
            p
      in
      (pid, a))
    args

(* The structure written by an in-place mutator argument: the ident under any
   number of field projections ([Queue.take p.tasks] mutates [p]'s contents). *)
let rec mut_target (e : expression) =
  match e.pexp_desc with
  | Pexp_ident lid -> Some lid
  | Pexp_field (b, _) -> mut_target b
  | _ -> None

let shallow_iter e ~f =
  let entered = ref false in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression sub =
        if not !entered then begin
          entered := true;
          super#expression sub
        end
        else f sub

      method! module_expr _ = ()
      method! structure_item _ = ()
    end
  in
  it#expression e

let pretty symtab ((uid, path) : key) =
  Printf.sprintf "%s.%s" (Symtab.unit symtab uid).Symtab.modname (Symtab.string_of_path path)

let global_minfo symtab (uid, path) (d : Symtab.def) =
  let kind = Option.get d.Symtab.def_mut in
  let name = pretty symtab (uid, path) in
  {
    m_kind = kind;
    m_chain = [ Printf.sprintf "top-level `%s` (%s) defined at %s" name kind (at d.Symtab.def_loc) ];
    m_origin = ((Symtab.unit symtab uid).Symtab.path, d.Symtab.def_loc);
  }

(* ---- free mutable variables of a closure ---------------------------------- *)

(* Walk a lambda collecting references that escape it: outer-scope mutable
   bindings, the enclosing definition's parameters, and top-level mutable
   symbols (same unit or cross-module).  [written] is sticky per name and
   records whether the closure itself mutates the value. *)
let collect_captures symtab ~(u : Symtab.unit_info) ~mpath ~env ~scope ~params lam =
  let inner : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let caps : (string, capture) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  let note name what ~written loc =
    match Hashtbl.find_opt caps name with
    | Some c ->
        if written && not c.c_written then Hashtbl.replace caps name { c with c_written = true }
    | None ->
        Hashtbl.replace caps name { c_name = name; c_what = what; c_written = written; c_loc = loc };
        order := name :: !order
  in
  let bind_pat p =
    let names = List.map fst (Symtab.pattern_names p) in
    List.iter (fun n -> Hashtbl.add inner n 0) names;
    names
  in
  let unbind = List.iter (Hashtbl.remove inner) in
  let locals n = Hashtbl.mem inner n || Hashtbl.mem scope n || Hashtbl.mem params n in
  let rec ref_ident ~env ~written (lid : Longident.t loc) =
    match Checks.flatten lid.txt with
    | [ name ] when Hashtbl.mem inner name -> ()
    | [ name ] when Hashtbl.mem scope name -> (
        match Hashtbl.find scope name with
        | Mut info -> note name (Outer info) ~written lid.loc
        | Closure cs ->
            (* calling a local closure from worker code drags its own
               captures across the domain boundary too *)
            List.iter (fun c -> note c.c_name c.c_what ~written:c.c_written c.c_loc) cs
        | Plain -> ())
    | [ name ] when Hashtbl.mem params name ->
        note name (Param (Hashtbl.find params name)) ~written lid.loc
    | _ -> (
        match Symtab.resolve symtab ~cur:u ~mpath ~locals env lid.txt with
        | Symtab.Sym (uid, path) -> (
            match Symtab.find_def (Symtab.unit symtab uid) path with
            | Some d when d.Symtab.def_mut <> None ->
                note
                  (pretty symtab (uid, path))
                  (Outer (global_minfo symtab (uid, path) d))
                  ~written lid.loc
            | _ -> ())
        | _ -> ())
  and expr ~env (e : expression) =
    match e.pexp_desc with
    | Pexp_ident lid -> ref_ident ~env ~written:false lid
    | Pexp_apply (({ pexp_desc = Pexp_ident lid; _ } as f), args) ->
        let p = Checks.strip_stdlib (Checks.flatten lid.txt) in
        (if Callgraph.mutator_ident p then
           match List.find_opt (fun (l, _) -> l = Nolabel) args with
           | Some (_, target) -> (
               match mut_target target with
               | Some tlid -> ref_ident ~env ~written:true tlid
               | None -> ())
           | None -> ());
        expr ~env f;
        List.iter (fun (_, a) -> expr ~env a) args
    | Pexp_setfield (base, _, v) ->
        (match mut_target base with
        | Some tlid -> ref_ident ~env ~written:true tlid
        | None -> ());
        expr ~env base;
        expr ~env v
    | Pexp_function (ps, _, body) ->
        let bound =
          List.concat_map
            (fun p ->
              match p.pparam_desc with
              | Pparam_val (_, d, pat) ->
                  Option.iter (expr ~env) d;
                  bind_pat pat
              | Pparam_newtype _ -> [])
            ps
        in
        (match body with
        | Pfunction_body b -> expr ~env b
        | Pfunction_cases (cases, _, _) -> List.iter (case ~env) cases);
        unbind bound
    | Pexp_let (_, vbs, body) ->
        List.iter (fun (vb : value_binding) -> expr ~env vb.pvb_expr) vbs;
        let bound = List.concat_map (fun (vb : value_binding) -> bind_pat vb.pvb_pat) vbs in
        expr ~env body;
        unbind bound
    | Pexp_open (od, body) ->
        let env =
          match od.popen_expr.pmod_desc with
          | Pmod_ident lid -> Symtab.push_open env lid.txt
          | _ -> env
        in
        expr ~env body
    | Pexp_letmodule ({ txt = Some name; _ }, { pmod_desc = Pmod_ident lid; _ }, body) ->
        expr ~env:(Symtab.push_alias env name lid.txt) body
    | Pexp_for (pat, lo, hi, _, body) ->
        expr ~env lo;
        expr ~env hi;
        let bound = bind_pat pat in
        expr ~env body;
        unbind bound
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        expr ~env scrut;
        List.iter (case ~env) cases
    | _ -> shallow_iter e ~f:(expr ~env)
  and case ~env (c : case) =
    let bound = bind_pat c.pc_lhs in
    Option.iter (expr ~env) c.pc_guard;
    expr ~env c.pc_rhs;
    unbind bound
  in
  expr ~env lam;
  List.rev_map (Hashtbl.find caps) !order

(* ---- per-unit collection -------------------------------------------------- *)

let collect symtab (u : Symtab.unit_info) (str : structure) =
  let mut_fields = Symtab.mutable_fields_of str in
  let scope : (string, binding) Hashtbl.t = Hashtbl.create 64 in
  let fire_ok = u.Symtab.linted && u.Symtab.area <> Checks.Test in
  let events = ref [] in
  let def_caps = ref [] in
  let emit ev = events := ev :: !events in
  let xsym (uid, path) = { Symtab.s_unit = Symtab.path_of symtab uid; s_path = path } in
  let fire ~loc ~origin steps =
    if fire_ok then
      emit
        (E_race
           {
             r_path = u.Symtab.path;
             r_loc = loc;
             r_msg =
               Printf.sprintf "mutable state shared across domains: %s"
                 (String.concat "; then " steps);
             r_origin = Some origin;
           })
  in
  let fire_info ~loc ~written info step =
    if risky info.m_kind ~written then fire ~loc ~origin:info.m_origin (info.m_chain @ step)
  in
  let rec walk ~ckey ~params ~mpath ~env (e : expression) =
    let expr = walk ~ckey ~params ~mpath ~env in
    let locals n = Hashtbl.mem scope n || Hashtbl.mem params n in
    let resolve env lid = Symtab.resolve symtab ~cur:u ~mpath ~locals env lid in
    let collect lam = collect_captures symtab ~u ~mpath ~env ~scope ~params lam in
    let add_esc pid ei = emit (E_seed (snd ckey, pid, ei)) in
    (* mutable values captured by a closure about to run on another domain *)
    let handle_caps ~loc ~step_of caps =
      List.iter
        (fun c ->
          match c.c_what with
          | Outer info -> fire_info ~loc ~written:c.c_written info [ step_of c ]
          | Param pid ->
              add_esc pid { e_kind = Captured; e_written = c.c_written; e_desc = step_of c })
        caps
    in
    let kernel_value prim loc (k : expression) =
      let step_of c =
        Printf.sprintf "captured%s by the closure passed to %s at %s"
          (if c.c_written then " and written" else "")
          (Symtab.primitive_name prim) (at loc)
      in
      match k.pexp_desc with
      | Pexp_function _ -> handle_caps ~loc ~step_of (collect k)
      | Pexp_ident lid -> (
          match Checks.flatten lid.txt with
          | [ name ] when Hashtbl.mem scope name -> (
              match Hashtbl.find scope name with
              | Closure caps ->
                  handle_caps ~loc
                    ~step_of:(fun c ->
                      Printf.sprintf "captured%s by `%s`, used as the kernel of %s at %s"
                        (if c.c_written then " and written" else "")
                        name (Symtab.primitive_name prim) (at loc))
                    caps
              | _ -> ())
          | [ name ] when Hashtbl.mem params name ->
              add_esc (Hashtbl.find params name)
                {
                  e_kind = Kernel;
                  e_written = false;
                  e_desc =
                    Printf.sprintf "used as the kernel of %s at %s" (Symtab.primitive_name prim)
                      (at loc);
                }
          | _ -> (
              match resolve env lid.txt with
              | Symtab.Sym (uid, path) ->
                  emit
                    (E_defcaps
                       {
                         dc_fn = snd ckey;
                         dc_target = xsym (uid, path);
                         dc_prim = Symtab.primitive_name prim;
                         dc_loc = loc;
                       })
              | _ -> ()))
      | _ -> ()
    in
    (* a value handed to a function parameter: classify what it is now; the
       solver decides later whether that parameter escapes *)
    let classify_arg (a : expression) =
      match a.pexp_desc with
      | Pexp_ident lid -> (
          match Checks.flatten lid.txt with
          | [ name ] when Hashtbl.mem scope name -> (
              match Hashtbl.find scope name with
              | Mut info -> Some (A_mut info)
              | Closure caps -> Some (A_closure (name, caps))
              | Plain -> None)
          | [ name ] when Hashtbl.mem params name -> Some (A_param (Hashtbl.find params name))
          | _ -> (
              match resolve env lid.txt with
              | Symtab.Sym (guid, gpath) -> (
                  match Symtab.find_def (Symtab.unit symtab guid) gpath with
                  | Some d when d.Symtab.def_mut <> None ->
                      Some (A_global (global_minfo symtab (guid, gpath) d))
                  | _ -> None)
              | _ -> None))
      | Pexp_function _ -> Some (A_lambda (collect a))
      | _ -> None
    in
    match e.pexp_desc with
    | Pexp_apply (({ pexp_desc = Pexp_ident lid; _ } as f), args) ->
        let r = resolve env lid.txt in
        (match Symtab.primitive_of_resolved symtab r with
        | Some prim -> (
            let nolabels = List.filter (fun (l, _) -> l = Nolabel) args in
            match List.nth_opt nolabels (Symtab.kernel_position prim) with
            | Some (_, k) -> kernel_value prim e.pexp_loc k
            | None -> ())
        | None -> (
            match r with
            | Symtab.Sym (uid, path) ->
                List.iter
                  (fun (pid, a) ->
                    match classify_arg a with
                    | Some cls ->
                        emit
                          (E_arg
                             {
                               a_fn = snd ckey;
                               a_callee = xsym (uid, path);
                               a_pid = pid;
                               a_cls = cls;
                               a_loc = e.pexp_loc;
                             })
                    | None -> ())
                  (pid_of_args args)
            | _ -> ()));
        expr f;
        List.iter (fun (_, a) -> expr a) args
    | Pexp_let (_, vbs, body) ->
        List.iter (fun (vb : value_binding) -> expr vb.pvb_expr) vbs;
        let bound =
          List.concat_map
            (fun (vb : value_binding) ->
              match Symtab.pattern_names vb.pvb_pat with
              | [ (name, _) ] ->
                  let b =
                    match vb.pvb_expr.pexp_desc with
                    | Pexp_function _ ->
                        Closure (collect_captures symtab ~u ~mpath ~env ~scope ~params vb.pvb_expr)
                    | Pexp_ident lid -> (
                        match Checks.flatten lid.txt with
                        | [ n ] when Hashtbl.mem scope n -> (
                            match Hashtbl.find scope n with
                            | Mut info ->
                                Mut
                                  {
                                    info with
                                    m_chain =
                                      info.m_chain
                                      @ [
                                          Printf.sprintf "aliased as `%s` at %s" name
                                            (at vb.pvb_loc);
                                        ];
                                  }
                            | b -> b)
                        | _ -> (
                            match resolve env lid.txt with
                            | Symtab.Sym (uid, path) -> (
                                match Symtab.find_def (Symtab.unit symtab uid) path with
                                | Some d when d.Symtab.def_mut <> None ->
                                    let info = global_minfo symtab (uid, path) d in
                                    Mut
                                      {
                                        info with
                                        m_chain =
                                          info.m_chain
                                          @ [
                                              Printf.sprintf "bound as `%s` at %s" name
                                                (at vb.pvb_loc);
                                            ];
                                      }
                                | _ -> Plain)
                            | _ -> Plain))
                    | _ -> (
                        match Symtab.classify_rhs mut_fields vb.pvb_expr with
                        | Some kind ->
                            Mut
                              {
                                m_kind = kind;
                                m_chain =
                                  [
                                    Printf.sprintf "created as `%s` (%s) at %s" name kind
                                      (at vb.pvb_loc);
                                  ];
                                m_origin = (u.Symtab.path, vb.pvb_loc);
                              }
                        | None -> Plain)
                  in
                  Hashtbl.add scope name b;
                  [ name ]
              | names ->
                  List.iter (fun (n, _) -> Hashtbl.add scope n Plain) names;
                  List.map fst names)
            vbs
        in
        expr body;
        List.iter (Hashtbl.remove scope) bound
    | Pexp_function (ps, _, body) ->
        let bound =
          List.concat_map
            (fun p ->
              match p.pparam_desc with
              | Pparam_val (_, d, pat) ->
                  Option.iter expr d;
                  let names = List.map fst (Symtab.pattern_names pat) in
                  List.iter (fun n -> Hashtbl.add scope n Plain) names;
                  names
              | Pparam_newtype _ -> [])
            ps
        in
        (match body with
        | Pfunction_body b -> expr b
        | Pfunction_cases (cases, _, _) -> List.iter (walk_case ~ckey ~params ~mpath ~env) cases);
        List.iter (Hashtbl.remove scope) bound
    | Pexp_open (od, body) ->
        let env =
          match od.popen_expr.pmod_desc with
          | Pmod_ident lid -> Symtab.push_open env lid.txt
          | _ -> env
        in
        walk ~ckey ~params ~mpath ~env body
    | Pexp_letmodule ({ txt = Some name; _ }, { pmod_desc = Pmod_ident lid; _ }, body) ->
        walk ~ckey ~params ~mpath ~env:(Symtab.push_alias env name lid.txt) body
    | Pexp_for (pat, lo, hi, _, body) ->
        expr lo;
        expr hi;
        let names = List.map fst (Symtab.pattern_names pat) in
        List.iter (fun n -> Hashtbl.add scope n Plain) names;
        expr body;
        List.iter (Hashtbl.remove scope) names
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        expr scrut;
        List.iter (walk_case ~ckey ~params ~mpath ~env) cases
    | _ -> shallow_iter e ~f:expr
  and walk_case ~ckey ~params ~mpath ~env (c : case) =
    let names = List.map fst (Symtab.pattern_names c.pc_lhs) in
    List.iter (fun n -> Hashtbl.add scope n Plain) names;
    Option.iter (walk ~ckey ~params ~mpath ~env) c.pc_guard;
    walk ~ckey ~params ~mpath ~env c.pc_rhs;
    List.iter (Hashtbl.remove scope) names
  in
  let rec items ~mpath ~env is = ignore (List.fold_left (fun env si -> item ~mpath ~env si) env is)
  and item ~mpath ~env (si : structure_item) =
    match si.pstr_desc with
    | Pstr_open { popen_expr = { pmod_desc = Pmod_ident lid; _ }; _ } ->
        Symtab.push_open env lid.txt
    | Pstr_module { pmb_name = { txt = Some name; _ }; pmb_expr; _ } -> (
        match pmb_expr.pmod_desc with
        | Pmod_ident lid -> Symtab.push_alias env name lid.txt
        | _ ->
            module_expr ~mpath:(mpath @ [ name ]) ~env pmb_expr;
            env)
    | Pstr_recmodule mbs ->
        List.iter
          (fun (mb : module_binding) ->
            match mb.pmb_name.txt with
            | Some name -> module_expr ~mpath:(mpath @ [ name ]) ~env mb.pmb_expr
            | None -> ())
          mbs;
        env
    | Pstr_include { pincl_mod; _ } ->
        module_expr ~mpath ~env pincl_mod;
        env
    | Pstr_value (_, vbs) ->
        List.iter
          (fun (vb : value_binding) ->
            let ckey, params =
              match Symtab.pattern_names vb.pvb_pat with
              | [ (name, _) ] ->
                  let params : (string, param_id) Hashtbl.t = Hashtbl.create 8 in
                  let npos = ref 0 in
                  List.iter
                    (fun (lbl, nm, _) ->
                      let pid =
                        match lbl with
                        | Labelled s | Optional s -> Lbl s
                        | Nolabel ->
                            let p = Pos !npos in
                            incr npos;
                            p
                      in
                      match nm with Some n -> Hashtbl.replace params n pid | None -> ())
                    (Symtab.fun_params vb.pvb_expr);
                  ((u.Symtab.uid, mpath @ [ name ]), params)
              | _ -> ((u.Symtab.uid, mpath @ [ "<init>" ]), Hashtbl.create 1)
            in
            (match vb.pvb_expr.pexp_desc with
            | Pexp_function _ ->
                (* remember which top-level mutables the body touches, so a
                   cross-module [parallel_map M.f xs] can be audited *)
                let caps =
                  collect_captures symtab ~u ~mpath ~env ~scope:(Hashtbl.create 1)
                    ~params:(Hashtbl.create 1) vb.pvb_expr
                in
                let caps =
                  List.filter (fun c -> match c.c_what with Outer _ -> true | _ -> false) caps
                in
                def_caps := (snd ckey, caps) :: !def_caps
            | _ -> ());
            walk ~ckey ~params ~mpath ~env vb.pvb_expr)
          vbs;
        env
    | Pstr_eval (e, _) ->
        walk
          ~ckey:(u.Symtab.uid, mpath @ [ "<init>" ])
          ~params:(Hashtbl.create 1) ~mpath ~env e;
        env
    | _ -> env
  and module_expr ~mpath ~env (me : module_expr) =
    match me.pmod_desc with
    | Pmod_structure is -> items ~mpath ~env is
    | Pmod_constraint (me, _) -> module_expr ~mpath ~env me
    | _ -> ()
  in
  items ~mpath:[] ~env:Symtab.env0 str;
  { df_fire_ok = fire_ok; df_def_caps = List.rev !def_caps; df_events = List.rev !events }

(* ---- solver --------------------------------------------------------------- *)

let solve symtab (facts : unit_facts array) =
  let esc : (key * param_id, esc_info) Hashtbl.t = Hashtbl.create 64 in
  let def_caps : (key, capture list) Hashtbl.t = Hashtbl.create 128 in
  Array.iteri
    (fun uid f ->
      List.iter (fun (p, caps) -> Hashtbl.replace def_caps (uid, p) caps) f.df_def_caps)
    facts;
  let races = ref [] in
  let add_esc key pid (ei : esc_info) =
    if not (Hashtbl.mem esc (key, pid)) then Hashtbl.replace esc (key, pid) ei
  in
  let process ~emitting uid (f : unit_facts) =
    let u_path = (Symtab.unit symtab uid).Symtab.path in
    let fire ~loc ~origin steps =
      if emitting && f.df_fire_ok then
        races :=
          {
            r_path = u_path;
            r_loc = loc;
            r_msg =
              Printf.sprintf "mutable state shared across domains: %s"
                (String.concat "; then " steps);
            r_origin = Some origin;
          }
          :: !races
    in
    let fire_info ~loc ~written info step =
      if risky info.m_kind ~written then fire ~loc ~origin:info.m_origin (info.m_chain @ step)
    in
    List.iter
      (fun ev ->
        match ev with
        | E_seed (fn, pid, ei) -> add_esc (uid, fn) pid ei
        | E_race r -> if emitting then races := r :: !races
        | E_defcaps { dc_fn; dc_target; dc_prim; dc_loc } -> (
            match Symtab.internalize symtab dc_target with
            | Some tkey -> (
                match Hashtbl.find_opt def_caps tkey with
                | Some caps ->
                    let step_of c =
                      Printf.sprintf "referenced%s by `%s`, used as the kernel of %s at %s"
                        (if c.c_written then " and written" else "")
                        (pretty symtab tkey) dc_prim (at dc_loc)
                    in
                    List.iter
                      (fun c ->
                        match c.c_what with
                        | Outer info ->
                            fire_info ~loc:dc_loc ~written:c.c_written info [ step_of c ]
                        | Param pid ->
                            add_esc (uid, dc_fn) pid
                              { e_kind = Captured; e_written = c.c_written; e_desc = step_of c })
                      caps
                | None -> ())
            | None -> ())
        | E_arg { a_fn; a_callee; a_pid; a_cls; a_loc } -> (
            match Symtab.internalize symtab a_callee with
            | None -> ()
            | Some ckey -> (
                match Hashtbl.find_opt esc (ckey, a_pid) with
                | None -> ()
                | Some ei -> (
                    let pass_step =
                      Printf.sprintf "passed to %s (%s) at %s" (pretty symtab ckey)
                        (describe_pid a_pid) (at a_loc)
                    in
                    match (a_cls, ei.e_kind) with
                    | A_mut info, Captured ->
                        fire_info ~loc:a_loc ~written:ei.e_written info [ pass_step; ei.e_desc ]
                    | A_closure (name, caps), Kernel ->
                        List.iter
                          (fun c ->
                            match c.c_what with
                            | Outer info ->
                                fire_info ~loc:a_loc ~written:c.c_written info
                                  [
                                    Printf.sprintf "captured%s by `%s`"
                                      (if c.c_written then " and written" else "")
                                      name;
                                    pass_step;
                                    ei.e_desc;
                                  ]
                            | Param pid' ->
                                add_esc (uid, a_fn) pid'
                                  {
                                    e_kind = Captured;
                                    e_written = c.c_written;
                                    e_desc =
                                      Printf.sprintf "captured by `%s`, %s, then %s" name
                                        pass_step ei.e_desc;
                                  })
                          caps
                    | A_param pid_local, _ ->
                        add_esc (uid, a_fn) pid_local
                          {
                            e_kind = ei.e_kind;
                            e_written = ei.e_written;
                            e_desc = Printf.sprintf "%s, then %s" pass_step ei.e_desc;
                          }
                    | A_global info, Captured ->
                        fire_info ~loc:a_loc ~written:ei.e_written info [ pass_step; ei.e_desc ]
                    | A_lambda caps, Kernel ->
                        List.iter
                          (fun c ->
                            match c.c_what with
                            | Outer info ->
                                fire_info ~loc:a_loc ~written:c.c_written info
                                  [
                                    Printf.sprintf "captured%s by a closure %s"
                                      (if c.c_written then " and written" else "")
                                      pass_step;
                                    ei.e_desc;
                                  ]
                            | Param pid' ->
                                add_esc (uid, a_fn) pid'
                                  {
                                    e_kind = Captured;
                                    e_written = c.c_written;
                                    e_desc =
                                      Printf.sprintf "captured by a closure %s, then %s" pass_step
                                        ei.e_desc;
                                  })
                          caps
                    | _ -> ()))))
      f.df_events
  in
  let process_all ~emitting = Array.iteri (process ~emitting) facts in
  (* escape summaries only ever gain entries, so the table size is a fixpoint
     witness; the round cap bounds pathological call chains *)
  let stable = ref false and rounds = ref 0 in
  while (not !stable) && !rounds < 8 do
    let before = Hashtbl.length esc in
    process_all ~emitting:false;
    stable := Hashtbl.length esc = before;
    incr rounds
  done;
  process_all ~emitting:true;
  let cmp a b =
    compare
      (a.r_path, a.r_loc.loc_start.pos_lnum, a.r_loc.loc_start.pos_cnum, a.r_msg)
      (b.r_path, b.r_loc.loc_start.pos_lnum, b.r_loc.loc_start.pos_cnum, b.r_msg)
  in
  let rec dedup = function
    | a :: b :: rest when cmp a b = 0 -> dedup (b :: rest)
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup (List.sort cmp !races)
