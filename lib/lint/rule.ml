type analysis = File_local | Whole_program

type t = { id : string; synopsis : string; rationale : string; analysis : analysis }

(* Kept as a plain list: the registry is tiny, and a top-level [Hashtbl]
   would trip the very rule it registers. *)
let all =
  [
    {
      analysis = File_local;
      id = "top-mutable";
      synopsis =
        "top-level mutable state (ref / Hashtbl.create / Buffer.create / \
         Queue.create / Stack.create / mutable-record literal) in lib/";
      rationale =
        "every lib/ module may run on Pool worker domains; top-level mutable \
         state is shared across domains and breaks the byte-identical \
         incremental-vs-scratch claim.  Use Atomic, or pass state explicitly.";
    };
    {
      analysis = File_local;
      id = "ambient-random";
      synopsis = "use of Stdlib.Random (including Random.self_init)";
      rationale =
        "Stdlib.Random is ambient per-domain global state; solver kernels \
         must draw from the seeded, splittable Util.Rng so runs replay \
         deterministically.";
    };
    {
      analysis = File_local;
      id = "wall-clock";
      synopsis = "Sys.time / Unix.gettimeofday / Unix.time outside Util.Timer";
      rationale =
        "ad-hoc clock reads leak nondeterminism into kernels and bypass the \
         CPU-vs-wall discipline Util.Timer encodes (paper CPU(s) tables vs \
         multi-domain wall timings).";
    };
    {
      analysis = File_local;
      id = "float-equality";
      synopsis =
        "= / <> / == / != on float operands in lib/numeric, lib/timing, \
         lib/sdp";
      rationale =
        "exact float comparison hides intent and breaks under reassociation; \
         numeric kernels must name the comparison via Util.Float_cmp \
         (approx_eq / is_zero / nonzero).";
    };
    {
      analysis = File_local;
      id = "obj-magic";
      synopsis = "use of Obj.magic";
      rationale =
        "Obj.magic defeats the type system; under multiple domains a \
         mistyped value is a memory-safety bug, not just a wrong answer.";
    };
    {
      analysis = File_local;
      id = "exit-scope";
      synopsis = "exit called outside bin/";
      rationale =
        "library and bench code must raise so callers (the batch scheduler \
         in particular) keep control; exit from a worker domain kills the \
         whole service.";
    };
    {
      analysis = File_local;
      id = "stdout-print";
      synopsis =
        "bare print_* / Printf.printf / Format.printf to stdout in lib/ \
         outside Util.Table and Serve.Report";
      rationale =
        "stdout is the CLI's report channel; stray prints from kernels \
         interleave across domains and corrupt machine-read output.  Return \
         strings, or render via Util.Table / Serve.Report.";
    };
    {
      analysis = File_local;
      id = "catchall-async";
      synopsis =
        "catch-all exception handler that can swallow Out_of_memory / \
         Stack_overflow / Sys.Break";
      rationale =
        "converting asynchronous exceptions into ordinary failure values \
         (e.g. a Job.Failed string) leaves the process running in an \
         unreliable state; name the exception and pass it to \
         Util.Exn.reraise_if_async (or re-raise it) first.";
    };
    {
      analysis = File_local;
      id = "missing-mli";
      synopsis = "a lib/ .ml compilation unit without a sibling .mli";
      rationale =
        "an .mli is the enforced boundary that keeps representation types \
         and helper state private, which is what makes the domain-safety \
         audit tractable.";
    };
    {
      analysis = File_local;
      id = "unknown-allow";
      synopsis =
        "[@cpla.allow] naming an unknown rule id, or with a malformed payload";
      rationale =
        "a typo in a suppression silently re-enables nothing and leaves the \
         real finding suppressed-in-intent only.";
    };
    {
      analysis = File_local;
      id = "parse-error";
      synopsis = "source file that does not parse";
      rationale =
        "an unparseable file cannot be audited; surfacing it as a finding \
         keeps the lint gate conservative.";
    };
    {
      analysis = File_local;
      id = "read-error";
      synopsis = "source file that exists but cannot be read";
      rationale =
        "an unreadable file (dangling symlink, permissions) cannot be \
         audited; reporting it and linting the rest keeps one bad path from \
         aborting the whole run while the gate stays conservative.";
    };
    {
      analysis = Whole_program;
      id = "domain-race";
      synopsis =
        "a mutable value (ref / Hashtbl / Buffer / Queue / Stack / mutable \
         record / written array or bytes) captured by code that runs on \
         another domain";
      rationale =
        "unsynchronized shared mutable state is the one bug class OCaml 5 \
         cannot type away; the diagnostic reports the full flow — creation, \
         aliases, argument hops — so the race is auditable.  Use Atomic / \
         Mutex, or keep the state domain-local.";
    };
    {
      analysis = Whole_program;
      id = "impure-kernel";
      synopsis =
        "an impure function (I/O, clock, ambient PRNG, top-level mutation) \
         used as a parallel-map kernel, or called from a lib/numeric / \
         lib/sdp solver inner loop";
      rationale =
        "kernels replayed across domains and solver iterations must be \
         deterministic functions of their arguments or the incremental and \
         from-scratch runs diverge; the witness chain in the message shows \
         where the impurity enters.";
    };
    {
      analysis = Whole_program;
      id = "unused-export";
      synopsis = ".mli value never referenced outside its own module";
      rationale =
        "a dead export widens the audited API surface for nothing; delete \
         it, or mark deliberate extension points with \
         [@@cpla.allow \"unused-export\"].";
    };
    {
      analysis = Whole_program;
      id = "alloc-in-kernel";
      synopsis =
        "a function annotated [@cpla.zero_alloc] allocates (closure / tuple / \
         record / variant / array construction, ref cells that escape, \
         allocator calls, partial application), directly or through a callee";
      rationale =
        "the batched SoA kernels' perf contract is zero allocation in inner \
         loops; the dynamic Gc.allocated_bytes budgets only sample a few \
         shapes, so the annotation makes the contract machine-checked on \
         every build with a creation-to-call witness chain.";
    };
    {
      analysis = Whole_program;
      id = "blocking-in-loop";
      synopsis =
        "a blocking primitive (Unix.sleep / waitpid / blocking read/connect, \
         Mutex.lock, Condition.wait, Domain.join, unbounded while-true) \
         reachable from a function annotated [@cpla.event_loop]";
      rationale =
        "the daemon's select loop multiplexes every connection on one domain; \
         one blocking call anywhere in its call graph stalls all clients.  \
         Bounded waits (nonblocking fds, brief critical sections) are \
         sanctioned per site with [@cpla.allow \"blocking-in-loop\"].";
    };
    {
      analysis = Whole_program;
      id = "stale-allow";
      synopsis =
        "a [@cpla.allow \"rule-id\"] / [@@@cpla.allow] annotation that no \
         longer suppresses (or prunes) any finding";
      rationale =
        "a suppression that outlives the code it sanctioned is a hole in the \
         gate: the next genuine finding at that site would be silently \
         swallowed.  Sweeps stay honest when dead allows are removed.";
    };
    {
      analysis = Whole_program;
      id = "check-not-threaded";
      synopsis =
        "a function taking the ?check cancellation hook calls another \
         ?check-taking function without passing it on";
      rationale =
        "a dropped ?check makes the callee's work uncancellable, so \
         deadline-bounded batch jobs overrun exactly when the subproblem is \
         expensive — the case cancellation exists for.";
    };
  ]


let known id = List.exists (fun r -> r.id = id) all
