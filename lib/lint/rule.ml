type t = { id : string; synopsis : string; rationale : string }

(* Kept as a plain list: the registry is tiny, and a top-level [Hashtbl]
   would trip the very rule it registers. *)
let all =
  [
    {
      id = "top-mutable";
      synopsis =
        "top-level mutable state (ref / Hashtbl.create / Buffer.create / \
         Queue.create / Stack.create / mutable-record literal) in lib/";
      rationale =
        "every lib/ module may run on Pool worker domains; top-level mutable \
         state is shared across domains and breaks the byte-identical \
         incremental-vs-scratch claim.  Use Atomic, or pass state explicitly.";
    };
    {
      id = "ambient-random";
      synopsis = "use of Stdlib.Random (including Random.self_init)";
      rationale =
        "Stdlib.Random is ambient per-domain global state; solver kernels \
         must draw from the seeded, splittable Util.Rng so runs replay \
         deterministically.";
    };
    {
      id = "wall-clock";
      synopsis = "Sys.time / Unix.gettimeofday / Unix.time outside Util.Timer";
      rationale =
        "ad-hoc clock reads leak nondeterminism into kernels and bypass the \
         CPU-vs-wall discipline Util.Timer encodes (paper CPU(s) tables vs \
         multi-domain wall timings).";
    };
    {
      id = "float-equality";
      synopsis =
        "= / <> / == / != on float operands in lib/numeric, lib/timing, \
         lib/sdp";
      rationale =
        "exact float comparison hides intent and breaks under reassociation; \
         numeric kernels must name the comparison via Util.Float_cmp \
         (approx_eq / is_zero / nonzero).";
    };
    {
      id = "obj-magic";
      synopsis = "use of Obj.magic";
      rationale =
        "Obj.magic defeats the type system; under multiple domains a \
         mistyped value is a memory-safety bug, not just a wrong answer.";
    };
    {
      id = "exit-scope";
      synopsis = "exit called outside bin/";
      rationale =
        "library and bench code must raise so callers (the batch scheduler \
         in particular) keep control; exit from a worker domain kills the \
         whole service.";
    };
    {
      id = "stdout-print";
      synopsis =
        "bare print_* / Printf.printf / Format.printf to stdout in lib/ \
         outside Util.Table and Serve.Report";
      rationale =
        "stdout is the CLI's report channel; stray prints from kernels \
         interleave across domains and corrupt machine-read output.  Return \
         strings, or render via Util.Table / Serve.Report.";
    };
    {
      id = "catchall-async";
      synopsis =
        "catch-all exception handler that can swallow Out_of_memory / \
         Stack_overflow / Sys.Break";
      rationale =
        "converting asynchronous exceptions into ordinary failure values \
         (e.g. a Job.Failed string) leaves the process running in an \
         unreliable state; name the exception and pass it to \
         Util.Exn.reraise_if_async (or re-raise it) first.";
    };
    {
      id = "missing-mli";
      synopsis = "a lib/ .ml compilation unit without a sibling .mli";
      rationale =
        "an .mli is the enforced boundary that keeps representation types \
         and helper state private, which is what makes the domain-safety \
         audit tractable.";
    };
    {
      id = "unknown-allow";
      synopsis =
        "[@cpla.allow] naming an unknown rule id, or with a malformed payload";
      rationale =
        "a typo in a suppression silently re-enables nothing and leaves the \
         real finding suppressed-in-intent only.";
    };
    {
      id = "parse-error";
      synopsis = "source file that does not parse";
      rationale =
        "an unparseable file cannot be audited; surfacing it as a finding \
         keeps the lint gate conservative.";
    };
  ]

let find id = List.find_opt (fun r -> r.id = id) all

let known id = find id <> None
