(** One lint diagnostic: a rule violation at a source location. *)

type t = {
  file : string;  (** normalized relative path, ['/'] separated *)
  line : int;  (** 1-based; 0 when the finding is file-level *)
  col : int;  (** 0-based column *)
  rule : string;  (** id of the {!Rule} that fired *)
  message : string;
}

val v : file:string -> loc:Ppxlib.Location.t -> rule:string -> msg:string -> t
(** Build a finding from a parser location (start position). *)

val file_level : file:string -> rule:string -> msg:string -> t
(** A finding about the file as a whole (e.g. a missing [.mli]); [line = 0]. *)

val compare : t -> t -> int
(** Order by file, line, column, rule id, then message — a total order on
    distinct findings, so [List.sort_uniq compare] dedupes exact duplicates
    without dropping co-located findings that say different things. *)

val pp : Format.formatter -> t -> unit
(** Human-readable [file:line: [rule-id] message] form. *)
