open Ppxlib

(* Allocation-effect analysis: verify [@cpla.zero_alloc] annotations.

   Phase A (syntactic, per unit): classify every allocating expression and
   attribute it to the enclosing *top-level* binding — the same flat
   attribution the call graph uses, so a closure's body charges the
   function that creates it.  Phase B (interprocedural): from each
   annotated root, walk the resolved call edges recorded by {!Callgraph}
   and report every reachable allocation with a creation-to-call witness
   chain, honouring [@cpla.allow "alloc-in-kernel"] at the allocation site
   (sanctioning e.g. one-time workspace growth inside [reserve]) or at any
   call edge on the chain (sanctioning a whole callee from one caller).

   Deliberate precision choices, documented in DESIGN.md §8: a local [ref]
   used only under [!]/[:=]/[incr]/[decr] is compiled to a mutable stack
   slot, not a heap cell, so it is not an allocation — only escaping refs
   are; arguments of [raise]/[invalid_arg]/[failwith] are skipped (error
   paths are off-budget); boxed-float returns of ordinary calls are left
   to the dynamic [Gc.allocated_bytes] budgets (flambda-dependent), while
   floats hitting polymorphic [compare]/[min]/[max] are flagged. *)

type witness = { w_desc : string; w_loc : Location.t }

let rule = "alloc-in-kernel"

let annot = "cpla.zero_alloc"

let has_annot (attrs : attributes) =
  List.exists (fun (a : attribute) -> String.equal a.attr_name.txt annot) attrs

let is_pseudo seg = String.length seg > 0 && seg.[0] = '<'

(* ---- allocating externals -------------------------------------------------- *)

let allocator_call p =
  match p with
  | [ ("@" | "^") ] -> true
  | [ "Array";
      ( "make" | "create_float" | "init" | "make_matrix" | "append" | "concat" | "sub"
      | "copy" | "of_list" | "to_list" | "of_seq" | "map" | "mapi" | "map2" | "split"
      | "combine" ) ] ->
      true
  | [ "List";
      ( "init" | "cons" | "map" | "mapi" | "map2" | "rev" | "rev_map" | "rev_append"
      | "append" | "concat" | "concat_map" | "flatten" | "filter" | "filteri"
      | "filter_map" | "partition" | "split" | "combine" | "sort" | "stable_sort"
      | "fast_sort" | "sort_uniq" | "merge" | "of_seq" ) ] ->
      true
  | [ "String";
      ( "make" | "init" | "sub" | "concat" | "cat" | "map" | "mapi" | "trim" | "escaped"
      | "uppercase_ascii" | "lowercase_ascii" | "capitalize_ascii" | "split_on_char"
      | "of_bytes" | "to_bytes" ) ] ->
      true
  | [ "Bytes";
      ( "create" | "make" | "init" | "copy" | "sub" | "sub_string" | "extend" | "cat"
      | "concat" | "of_string" | "to_string" ) ] ->
      true
  | [ "Buffer"; ("create" | "contents" | "sub" | "to_bytes") ] -> true
  | [ "Printf"; "sprintf" ] | [ "Format"; ("sprintf" | "asprintf") ] -> true
  | [ ("Hashtbl" | "Queue" | "Stack"); ("create" | "copy") ] -> true
  | [ ("string_of_int" | "string_of_float" | "string_of_bool") ] -> true
  | _ -> false

let raise_ident p =
  match p with
  | [ ("raise" | "raise_notrace" | "raise_with_backtrace" | "invalid_arg" | "failwith") ]
    ->
      true
  | _ -> false

let poly_compare p = match p with [ ("compare" | "min" | "max") ] -> true | _ -> false

(* ---- escaping-ref analysis ------------------------------------------------- *)

(* Every use of [name] directly under [!] / [:=] / [incr] / [decr] keeps the
   ref unboxed in a stack slot; any other occurrence (passed, returned,
   captured) forces the heap cell. *)
let ref_escapes name body =
  let escaped = ref false in
  let it =
    object (self)
      inherit Ast_traverse.iter as super

      method! expression e =
        match e.pexp_desc with
        | Pexp_ident { txt = Lident n; _ } when String.equal n name -> escaped := true
        | Pexp_apply
            ( { pexp_desc = Pexp_ident { txt = Lident ("!" | "incr" | "decr"); _ }; _ },
              [ (Nolabel, { pexp_desc = Pexp_ident { txt = Lident n; _ }; _ }) ] )
          when String.equal n name ->
            ()
        | Pexp_apply
            ( { pexp_desc = Pexp_ident { txt = Lident ":="; _ }; _ },
              (Nolabel, { pexp_desc = Pexp_ident { txt = Lident n; _ }; _ }) :: rest )
          when String.equal n name ->
            List.iter (fun (_, a) -> self#expression a) rest
        | _ -> super#expression e
    end
  in
  it#expression body;
  !escaped

(* ---- per-unit witness collection ------------------------------------------ *)

let ref_rhs (e : expression) =
  match e.pexp_desc with
  | Pexp_apply
      ({ pexp_desc = Pexp_ident { txt; _ }; _ }, [ (Nolabel, init) ])
    when Checks.strip_stdlib (Checks.flatten txt) = [ "ref" ] ->
      Some init
  | _ -> None

let collect_unit (str : structure) ~on_root ~on_witness =
  let add key desc (loc : Location.t) = on_witness key { w_desc = desc; w_loc = loc } in
  (* [quiet] silences recording under raise arguments; the walk still
     recurses so nested [let]s keep their scoping treatment. *)
  let rec walk key ~quiet (e : expression) =
    let note desc loc = if not quiet then add key desc loc in
    let sub = walk key ~quiet in
    match e.pexp_desc with
    | Pexp_function _ ->
        note "creates a closure" e.pexp_loc;
        walk_inside_fn key ~quiet e
    | Pexp_tuple es ->
        note "allocates a tuple" e.pexp_loc;
        List.iter sub es
    | Pexp_record (fields, base) ->
        note "allocates a record" e.pexp_loc;
        List.iter (fun (_, fe) -> sub fe) fields;
        Option.iter sub base
    | Pexp_construct ({ txt; _ }, Some arg) ->
        note
          (match Checks.last (Checks.flatten txt) with
          | "::" -> "allocates a list cell"
          | c -> Printf.sprintf "allocates constructor `%s`" c)
          e.pexp_loc;
        (* a multi-argument constructor carries its arguments as one
           syntactic tuple, but the block is flat — the tuple node is part
           of this allocation, not a second one *)
        (match arg.pexp_desc with
        | Pexp_tuple es -> List.iter sub es
        | _ -> sub arg)
    | Pexp_variant (tag, Some arg) ->
        note (Printf.sprintf "allocates polymorphic variant `%s`" tag) e.pexp_loc;
        sub arg
    | Pexp_array (_ :: _ as es) ->
        note "allocates an array literal" e.pexp_loc;
        List.iter sub es
    | Pexp_lazy inner ->
        note "allocates a lazy thunk" e.pexp_loc;
        sub inner
    | Pexp_apply (({ pexp_desc = Pexp_ident { txt; _ }; _ } as f), args) ->
        let p = Checks.strip_stdlib (Checks.flatten txt) in
        if raise_ident p then
          (* error path: allocation while raising is off-budget *)
          List.iter (fun (_, a) -> walk key ~quiet:true a) args
        else begin
          (match ref_rhs e with
          | Some _ -> note "allocates a ref cell" e.pexp_loc
          | None ->
              if poly_compare p && List.exists (fun (_, a) -> Checks.looks_float a) args
              then
                note
                  (Printf.sprintf "boxes a float at polymorphic `%s`"
                     (String.concat "." p))
                  e.pexp_loc
              else if allocator_call p then
                note
                  (Printf.sprintf "calls allocator `%s`" (String.concat "." p))
                  e.pexp_loc);
          sub f;
          List.iter (fun (_, a) -> sub a) args
        end
    | Pexp_let (rf, vbs, body) ->
        List.iter
          (fun (vb : value_binding) ->
            match (rf, vb.pvb_pat.ppat_desc, ref_rhs vb.pvb_expr, vb.pvb_expr.pexp_desc) with
            | Nonrecursive, Ppat_var { txt = name; _ }, Some init, _ ->
                (* accumulator pattern: non-escaping local refs live in
                   registers, escaping ones are heap cells *)
                if ref_escapes name body then
                  note
                    (Printf.sprintf "allocates a ref cell (`%s` escapes its uses)" name)
                    vb.pvb_expr.pexp_loc;
                sub init
            | _, Ppat_var { txt = name; _ }, None, Pexp_function _ ->
                note (Printf.sprintf "creates local closure `%s`" name) vb.pvb_expr.pexp_loc;
                walk_inside_fn key ~quiet vb.pvb_expr
            | _ -> sub vb.pvb_expr)
          vbs;
        sub body
    | _ ->
        (* generic shallow recursion over immediate sub-expressions *)
        let entered = ref false in
        let it =
          object
            inherit Ast_traverse.iter as super

            method! expression inner =
              if not !entered then begin
                entered := true;
                super#expression inner
              end
              else sub inner

            method! module_expr _ = ()
            method! structure_item _ = ()
          end
        in
        it#expression e
  (* the lambda spine itself is the function's own frame, not a runtime
     allocation: skip over it and walk the body (and any default args) *)
  and walk_inside_fn key ~quiet (e : expression) =
    match e.pexp_desc with
    | Pexp_function (params, _, body) ->
        List.iter
          (fun p ->
            match p.pparam_desc with
            | Pparam_val (_, Some d, _) -> walk key ~quiet d
            | _ -> ())
          params;
        (match body with
        | Pfunction_body b -> walk_inside_fn key ~quiet b
        | Pfunction_cases (cases, _, _) ->
            List.iter
              (fun (c : case) ->
                Option.iter (walk key ~quiet) c.pc_guard;
                walk key ~quiet c.pc_rhs)
              cases)
    | Pexp_newtype (_, b) -> walk_inside_fn key ~quiet b
    | _ -> walk key ~quiet e
  in
  let rec items mpath is = List.iter (item mpath) is
  and item mpath (si : structure_item) =
    match si.pstr_desc with
    | Pstr_value (_, vbs) ->
        List.iter
          (fun (vb : value_binding) ->
            let key =
              match Symtab.pattern_names vb.pvb_pat with
              | [ (name, _) ] -> mpath @ [ name ]
              | _ -> mpath @ [ "<init>" ]
            in
            if has_annot vb.pvb_attributes || has_annot vb.pvb_expr.pexp_attributes then
              on_root key vb.pvb_loc;
            walk_inside_fn key ~quiet:false vb.pvb_expr)
          vbs
    | Pstr_module { pmb_name = { txt = Some name; _ }; pmb_expr; _ } ->
        module_expr (mpath @ [ name ]) pmb_expr
    | Pstr_recmodule mbs ->
        List.iter
          (fun (mb : module_binding) ->
            match mb.pmb_name.txt with
            | Some name -> module_expr (mpath @ [ name ]) mb.pmb_expr
            | None -> ())
          mbs
    | Pstr_include { pincl_mod; _ } -> module_expr mpath pincl_mod
    | _ -> ()
  and module_expr mpath (me : module_expr) =
    match me.pmod_desc with
    | Pmod_structure is -> items mpath is
    | Pmod_constraint (me, _) -> module_expr mpath me
    | _ -> ()
  in
  items [] str

(* ---- per-unit facts -------------------------------------------------------- *)

(* Keys are value paths within the summarized unit (attribution is always
   own-unit); the engine re-keys them under the run's uids when merging. *)
type unit_facts = {
  af_roots : (string list * Location.t) list;
  af_witnesses : (string list * witness) list;  (** in collection order *)
}

let collect (_u : Symtab.unit_info) (str : structure) =
  let roots = ref [] and witnesses = ref [] in
  collect_unit str
    ~on_root:(fun key loc -> roots := (key, loc) :: !roots)
    ~on_witness:(fun key w -> witnesses := (key, w) :: !witnesses);
  { af_roots = List.rev !roots; af_witnesses = List.rev !witnesses }

(* ---- interprocedural verification ----------------------------------------- *)

let nolabels labels = List.length (List.filter (fun l -> l = Nolabel) labels)

let line_of (loc : Location.t) = loc.loc_start.pos_lnum

let site (loc : Location.t) =
  Printf.sprintf "%s:%d" loc.loc_start.pos_fname (line_of loc)

let max_depth = 12

let check ~allowed symtab cg (facts : unit_facts array) =
  let witnesses : (Callgraph.key, witness list ref) Hashtbl.t = Hashtbl.create 256 in
  let roots = ref [] in
  let on_witness key w =
    match Hashtbl.find_opt witnesses key with
    | Some l -> l := w :: !l
    | None -> Hashtbl.replace witnesses key (ref [ w ])
  in
  Array.iteri
    (fun uid f ->
      List.iter (fun (path, loc) -> roots := ((uid, path), loc) :: !roots) f.af_roots;
      List.iter (fun (path, w) -> on_witness (uid, path) w) f.af_witnesses)
    facts;
  (* resolved call edges and partial applications, per top-level key; pseudo
     frames are skipped — their calls are already charged to the enclosing
     top-level function by the call graph's stack-wide attribution *)
  let edges : (Callgraph.key, (Callgraph.key * Location.t) list) Hashtbl.t =
    Hashtbl.create 256
  in
  List.iter
    (fun (f : Callgraph.fn) ->
      if not (List.exists is_pseudo (snd f.Callgraph.fn_key)) then begin
        let es =
          List.filter_map
            (fun (c : Callgraph.call) ->
              match c.Callgraph.callee with
              | Symtab.Sym (cuid, cpath) ->
                  (match Symtab.find_def (Symtab.unit symtab cuid) cpath with
                  | Some d
                    when nolabels d.Symtab.def_params > 0
                         && nolabels c.Callgraph.arg_labels < nolabels d.Symtab.def_params
                    ->
                      on_witness f.Callgraph.fn_key
                        {
                          w_desc =
                            Printf.sprintf "partially applies `%s` (allocates a closure)"
                              (Callgraph.pretty_key cg (cuid, cpath));
                          w_loc = c.Callgraph.call_loc;
                        }
                  | _ -> ());
                  Some ((cuid, cpath), c.Callgraph.call_loc)
              | _ -> None)
            f.Callgraph.fn_calls
        in
        Hashtbl.replace edges f.Callgraph.fn_key es
      end)
    (Callgraph.fns cg);
  let unit_path uid = (Symtab.unit symtab uid).Symtab.path in
  let findings = ref [] in
  List.iter
    (fun ((root_key, root_loc) : Callgraph.key * Location.t) ->
      let ru = Symtab.unit symtab (fst root_key) in
      let root_name = Callgraph.pretty_key cg root_key in
      let visited : (Callgraph.key, unit) Hashtbl.t = Hashtbl.create 64 in
      (* [hops] is the call chain root -> current key, oldest first *)
      let rec visit key hops depth =
        if not (Hashtbl.mem visited key) then begin
          Hashtbl.replace visited key ();
          let kpath = unit_path (fst key) in
          (match Hashtbl.find_opt witnesses key with
          | Some ws ->
              List.iter
                (fun w ->
                  (* per-site sanction at the allocation itself *)
                  if not (allowed rule kpath w.w_loc) && ru.Symtab.linted then
                    let chain =
                      List.map
                        (fun (callee, loc) ->
                          Printf.sprintf "calls `%s` at %s"
                            (Callgraph.pretty_key cg callee)
                            (site loc))
                        hops
                      @ [ Printf.sprintf "%s at %s" w.w_desc (site w.w_loc) ]
                    in
                    findings :=
                      Finding.v ~file:ru.Symtab.path ~loc:root_loc ~rule
                        ~msg:
                          (Printf.sprintf "`%s` is annotated [@cpla.zero_alloc] but %s"
                             root_name
                             (String.concat ", which " chain))
                      :: !findings)
                (List.rev !ws)
          | None -> ());
          if depth < max_depth then
            List.iter
              (fun ((callee, cloc) : Callgraph.key * Location.t) ->
                (* an allow on the call edge sanctions the whole callee for
                   this chain (e.g. a thunk handed to a worker domain) *)
                if not (allowed rule kpath cloc) then
                  visit callee (hops @ [ (callee, cloc) ]) (depth + 1))
              (try List.rev (Hashtbl.find edges key) with Not_found -> [])
        end
      in
      visit root_key [] 0)
    (List.rev !roots);
  !findings
