(** Event-loop blocking analysis ([blocking-in-loop]).

    Computes the set of functions reachable (via the {!Callgraph}'s
    resolved edges) from every binding annotated [[\@cpla.event_loop]] —
    the daemon's select loop — and flags blocking primitives found there:
    [Unix.sleep]/[waitpid]/blocking [connect]/[read]/[write]/[accept],
    [Mutex.lock]/[protect], [Condition.wait], [Domain.join],
    [Thread.join], channel/stdin reads, and unbounded [while true] loops
    that contain no select/poll.  [Unix.select] itself is exempt (it is
    the loop's scheduling primitive).

    Findings are reported at the blocking site, so each sanctioned wait
    (nonblocking fd, brief critical section, post-loop drain) carries its
    own per-site [[\@cpla.allow "blocking-in-loop"]] justification; an
    allow on a call edge sanctions everything reached through that edge
    (e.g. a thunk that actually runs on a worker domain). *)

type unit_facts
(** One unit's marshalable blocking slice: [[\@cpla.event_loop]] roots and
    per-binding blocking witnesses, keyed by value path. *)

val collect : Symtab.unit_info -> Ppxlib.structure -> unit_facts
(** Syntactic, AST-only walk of one unit — no symtab reads, safe on any
    domain. *)

val check :
  allowed:(string -> string -> Ppxlib.Location.t -> bool) ->
  Symtab.t ->
  Callgraph.t ->
  unit_facts array ->
  Finding.t list
(** [check ~allowed symtab cg facts] — [allowed rule path loc] is the
    engine's recording suppression predicate; [facts] is indexed by uid.
    Findings are only emitted at sites in linted units; traversal (and
    allow-usage accounting) runs over the whole project. *)
