open Ppxlib

(* ---- sources -------------------------------------------------------------- *)

type source = { src_path : string; contents : string; linted : bool }

(* ---- defs / exports ------------------------------------------------------- *)

type def = {
  def_path : string list;
  def_loc : Location.t;
  def_params : arg_label list;
  def_mut : string option;
}

type export = {
  exp_path : string list;
  exp_loc : Location.t;
  exp_suppressed : bool;
}

(* [unit_info] is the AST-free per-unit metadata.  It is what the
   incremental cache persists, so everything here must stay marshalable
   (records, variants, {!Location.t} — no closures, no ASTs).  [uid] is
   positional and reassigned by {!assemble} on every run; a cached value's
   stale uid is never trusted. *)
type unit_info = {
  uid : int;
  path : string;
  area : Checks.area;
  lib : string option;
  modname : string;
  parsed : bool;
  parse_exn : string option;
  has_intf : bool;
  intf_path : string option;
  exports : export list;
  intf_bad_allows : (string option * Location.t) list;
      (** unknown / malformed [\@cpla.allow] payloads found in the [.mli] *)
  intf_parse_exn : string option;
  defs : def list;
  linted : bool;
}

type t = {
  units : unit_info array;
  by_lib : (string * string, int) Hashtbl.t;
  by_path : (string, int) Hashtbl.t;
  libs : (string, unit) Hashtbl.t;
}

(* ---- naming conventions --------------------------------------------------- *)

(* The repo follows dune's directory-to-library convention: [lib/cpla] is the
   wrapped module [Cpla], every other [lib/<d>] is [Cpla_<d>].  Deriving the
   wrapped name from the path (instead of parsing dune files) keeps in-memory
   fixture projects resolvable with the same rules. *)
let library_of_segments = function
  | "lib" :: dir :: _ :: _ ->
      (* dune only capitalizes the first letter: lib/lint -> Cpla_lint *)
      if String.equal dir "cpla" then Some "Cpla"
      else Some (String.capitalize_ascii ("cpla_" ^ dir))
  | _ -> None

let modname_of_path path =
  Filename.basename path |> Filename.remove_extension |> String.capitalize_ascii

(* ---- mutability classification -------------------------------------------- *)

let domain_safe lid =
  match Checks.strip_stdlib (Checks.flatten lid) with
  | "Atomic" :: _ | "Mutex" :: _ | "Condition" :: _ | "Semaphore" :: _ -> true
  | _ -> false

(* Constructors of values whose contents can change after creation.  [Atomic]
   and the synchronisation primitives are exempt: they are the sanctioned
   cross-domain mechanisms. *)
let mutable_creator lid =
  match Checks.strip_stdlib (Checks.flatten lid) with
  | [ "ref" ] -> Some "ref"
  | [ "Hashtbl"; "create" ] -> Some "Hashtbl"
  | [ "Buffer"; "create" ] -> Some "Buffer"
  | [ "Queue"; "create" ] -> Some "Queue"
  | [ "Stack"; "create" ] -> Some "Stack"
  | [ "Array"; ("make" | "create" | "init" | "copy" | "append" | "sub" | "of_list" | "make_matrix") ]
    ->
      Some "array"
  | [ "Bytes"; ("create" | "make" | "of_string" | "copy" | "init" | "sub") ] -> Some "bytes"
  | _ -> None

(* Mutable-record field names declared in a structure; a literal with one of
   these fields is as mutable as a [ref]. *)
let mutable_fields_of str =
  let fields = Hashtbl.create 16 in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! type_declaration td =
        (match td.ptype_kind with
        | Ptype_record lds ->
            List.iter
              (fun ld -> if ld.pld_mutable = Mutable then Hashtbl.replace fields ld.pld_name.txt ())
              lds
        | _ -> ());
        super#type_declaration td
    end
  in
  it#structure str;
  fields

(* Does the right-hand side of a binding evaluate, at bind time, to a value
   with mutable contents?  Walks below lets/sequences but not below functions
   or [lazy] (those allocate per call/force). *)
let rec classify_rhs mutable_fields (e : expression) =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
      if domain_safe txt then None else mutable_creator txt
  | Pexp_array _ -> Some "array"
  | Pexp_record (fields, _) ->
      if
        List.exists
          (fun (({ txt; _ } : Longident.t loc), _) ->
            Hashtbl.mem mutable_fields (Checks.last (Checks.flatten txt)))
          fields
      then Some "mutable record"
      else None
  | Pexp_let (_, _, body) | Pexp_sequence (_, body) | Pexp_open (_, body) -> classify_rhs mutable_fields body
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> classify_rhs mutable_fields e
  | Pexp_ifthenelse (_, a, Some b) -> (
      match classify_rhs mutable_fields a with
      | Some k -> Some k
      | None -> classify_rhs mutable_fields b)
  | _ -> None

(* ---- def collection ------------------------------------------------------- *)

let rec params_of (e : expression) =
  match e.pexp_desc with
  | Pexp_function (ps, _, body) ->
      let here =
        List.filter_map
          (fun p -> match p.pparam_desc with Pparam_val (l, _, _) -> Some l | Pparam_newtype _ -> None)
          ps
      in
      let rest =
        match body with
        | Pfunction_body ({ pexp_desc = Pexp_function _; _ } as inner) -> params_of inner
        | Pfunction_body _ -> []
        | Pfunction_cases _ -> [ Nolabel ]
      in
      here @ rest
  | Pexp_newtype (_, body) -> params_of body
  | _ -> []

(* Leading [fun] parameters with their bound names (None for tuple or
   wildcard patterns). *)
let rec fun_params (e : expression) =
  match e.pexp_desc with
  | Pexp_function (ps, _, body) ->
      let here =
        List.filter_map
          (fun p ->
            match p.pparam_desc with
            | Pparam_val (l, _, pat) ->
                let name =
                  match pat.ppat_desc with
                  | Ppat_var v -> Some v.txt
                  | Ppat_constraint ({ ppat_desc = Ppat_var v; _ }, _) -> Some v.txt
                  | _ -> None
                in
                Some (l, name, p.pparam_loc)
            | Pparam_newtype _ -> None)
          ps
      in
      let rest =
        match body with
        | Pfunction_body ({ pexp_desc = Pexp_function _; _ } as inner) -> fun_params inner
        | _ -> []
      in
      here @ rest
  | Pexp_newtype (_, body) -> fun_params body
  | _ -> []

let rec pattern_names (p : pattern) =
  match p.ppat_desc with
  | Ppat_var v -> [ (v.txt, p.ppat_loc) ]
  | Ppat_alias (inner, v) -> (v.txt, p.ppat_loc) :: pattern_names inner
  | Ppat_constraint (inner, _) -> pattern_names inner
  | Ppat_tuple ps -> List.concat_map pattern_names ps
  | _ -> []

let defs_of_structure str =
  let mutable_fields = mutable_fields_of str in
  let defs = ref [] in
  let rec items prefix is = List.iter (item prefix) is
  and item prefix (si : structure_item) =
    match si.pstr_desc with
    | Pstr_value (_, vbs) ->
        List.iter
          (fun (vb : value_binding) ->
            match pattern_names vb.pvb_pat with
            | [ (name, loc) ] ->
                defs :=
                  {
                    def_path = prefix @ [ name ];
                    def_loc = loc;
                    def_params = params_of vb.pvb_expr;
                    def_mut = classify_rhs mutable_fields vb.pvb_expr;
                  }
                  :: !defs
            | names ->
                List.iter
                  (fun (name, loc) ->
                    defs :=
                      { def_path = prefix @ [ name ]; def_loc = loc; def_params = []; def_mut = None }
                      :: !defs)
                  names)
          vbs
    | Pstr_module mb -> module_binding prefix mb
    | Pstr_recmodule mbs -> List.iter (module_binding prefix) mbs
    | Pstr_include inc -> module_expr prefix inc.pincl_mod
    | _ -> ()
  and module_binding prefix (mb : module_binding) =
    match mb.pmb_name.txt with
    | Some name -> module_expr (prefix @ [ name ]) mb.pmb_expr
    | None -> ()
  and module_expr prefix (me : module_expr) =
    match me.pmod_desc with
    | Pmod_structure is -> items prefix is
    | Pmod_constraint (me, _) -> module_expr prefix me
    | _ -> ()
  in
  items [] str;
  List.rev !defs

(* ---- exports (from the .mli) ---------------------------------------------- *)

let exports_of_signature sg =
  let bad = ref [] in
  let malformed loc = bad := (None, loc) :: !bad in
  let file_allowed =
    List.concat_map
      (fun (si : signature_item) ->
        match si.psig_desc with
        | Psig_attribute a -> List.map fst (Checks.allow_ids ~malformed:(fun _ -> ()) [ a ])
        | _ -> [])
      sg
  in
  let exports = ref [] in
  let allow_on attrs =
    let ids = Checks.allow_ids ~malformed attrs in
    List.iter (fun (id, loc) -> if not (Rule.known id) then bad := (Some id, loc) :: !bad) ids;
    List.exists (fun (id, _) -> String.equal id "unused-export") ids
  in
  let rec items prefix sg = List.iter (item prefix) sg
  and item prefix (si : signature_item) =
    match si.psig_desc with
    | Psig_value vd ->
        exports :=
          {
            exp_path = prefix @ [ vd.pval_name.txt ];
            exp_loc = vd.pval_name.loc;
            exp_suppressed =
              allow_on vd.pval_attributes || List.mem "unused-export" file_allowed;
          }
          :: !exports
    | Psig_module { pmd_name = { txt = Some name; _ }; pmd_type; _ } -> module_type (prefix @ [ name ]) pmd_type
    | _ -> ()
  and module_type prefix (mt : module_type) =
    match mt.pmty_desc with
    | Pmty_signature sg -> items prefix sg
    | _ -> ()
  in
  items [] sg;
  (List.rev !exports, List.rev !bad, file_allowed)

(* ---- parsing -------------------------------------------------------------- *)

(* NOTE: compiler-libs' lexer keeps global mutable buffers, so parsing must
   stay on one domain; the per-file *analysis* over the resulting ASTs is
   what the engine parallelises. *)
let parse_impl ~filename contents =
  let lexbuf = Lexing.from_string contents in
  Lexing.set_filename lexbuf filename;
  Parse.implementation lexbuf

let parse_intf ~filename contents =
  let lexbuf = Lexing.from_string contents in
  Lexing.set_filename lexbuf filename;
  Parse.interface lexbuf

(* Parse one implementation (plus its optional interface) into AST-free unit
   metadata and the AST itself.  [uid] is a placeholder until {!assemble}. *)
let parse_source (s : source) ~(intf : source option) =
  let scope = Checks.scope_of_path s.src_path in
  let str, parsed, parse_exn =
    match parse_impl ~filename:scope.Checks.path s.contents with
    | str -> (str, true, None)
    | exception e ->
        Cpla_util.Exn.reraise_if_async e;
        ([], false, Some (Printexc.to_string e))
  in
  let exports, intf_bad_allows, intf_parse_exn =
    match intf with
    | None -> ([], [], None)
    | Some i -> (
        let ipath = (Checks.scope_of_path i.src_path).Checks.path in
        match parse_intf ~filename:ipath i.contents with
        | sg ->
            let exports, bad, _ = exports_of_signature sg in
            (exports, bad, None)
        | exception e ->
            Cpla_util.Exn.reraise_if_async e;
            ([], [], Some (Printexc.to_string e)))
  in
  ( {
      uid = -1;
      path = scope.Checks.path;
      area = scope.Checks.area;
      lib = library_of_segments scope.Checks.segments;
      modname = modname_of_path s.src_path;
      parsed;
      parse_exn;
      has_intf = intf <> None;
      intf_path =
        Option.map (fun (i : source) -> (Checks.scope_of_path i.src_path).Checks.path) intf;
      exports;
      intf_bad_allows;
      intf_parse_exn;
      defs = defs_of_structure str;
      linted = s.linted;
    },
    str )

let assemble (units : unit_info list) =
  let units = Array.of_list units in
  let units = Array.mapi (fun uid u -> { u with uid }) units in
  let by_lib = Hashtbl.create 64 in
  let by_path = Hashtbl.create 64 in
  let libs = Hashtbl.create 16 in
  Array.iter
    (fun u ->
      Hashtbl.replace by_path u.path u.uid;
      match u.lib with
      | Some l ->
          Hashtbl.replace libs l ();
          Hashtbl.replace by_lib (l, u.modname) u.uid
      | None -> ())
    units;
  { units; by_lib; by_path; libs }

let unit t uid = t.units.(uid)

let n_units t = Array.length t.units

let path_of t uid = t.units.(uid).path

let uid_of_path t path = Hashtbl.find_opt t.by_path path

let find_def u path = List.find_opt (fun d -> d.def_path = path) u.defs

(* ---- resolution ----------------------------------------------------------- *)

type resolved =
  | Sym of int * string list
  | Ext of string list
  | Local of string

(* Path-symbolic cross-unit reference: what the per-file summaries persist
   instead of positional uids, so a cached summary survives runs. *)
type sym = { s_unit : string; s_path : string list }

let internalize t { s_unit; s_path } =
  match uid_of_path t s_unit with
  | Some uid -> Some (uid, s_path)
  | None -> None

type env = { opens : string list list; aliases : (string * string list) list }

let env0 = { opens = []; aliases = [] }

let rec expand_alias env parts =
  match parts with
  | head :: tl -> (
      match List.assoc_opt head env.aliases with
      | Some target -> expand_alias { env with aliases = List.remove_assoc head env.aliases } (target @ tl)
      | None -> parts)
  | [] -> parts

let push_open env lid =
  let parts = expand_alias env (Checks.strip_stdlib (Checks.flatten lid)) in
  { env with opens = parts :: env.opens }

let push_alias env name lid =
  let parts = expand_alias env (Checks.strip_stdlib (Checks.flatten lid)) in
  { env with aliases = (name, parts) :: env.aliases }

(* [try_direct] maps a canonical path to an internal symbol:
   library-qualified ([Cpla_util; Pool; x]), same-library sibling
   ([Elmore; x] from another lib/timing unit), or own-unit ([x] or
   [Nested; x], tried against the walker's current module path first). *)
let try_direct t ~(cur : unit_info) ~mpath parts =
  match parts with
  | [] -> None
  | head :: tl -> (
      if Hashtbl.mem t.libs head then
        match tl with
        | m :: rest when rest <> [] -> (
            match Hashtbl.find_opt t.by_lib (head, m) with
            | Some uid -> Some (Sym (uid, rest))
            | None -> None)
        | _ -> None
      else
        let sibling () =
          match cur.lib with
          | Some l when tl <> [] && not (String.equal head cur.modname) -> (
              match Hashtbl.find_opt t.by_lib (l, head) with
              | Some uid -> Some (Sym (uid, tl))
              | None -> None)
          | _ -> None
        in
        let own () =
          let candidates = if mpath = [] then [ parts ] else [ mpath @ parts; parts ] in
          List.find_map
            (fun p -> if find_def cur p <> None then Some (Sym (cur.uid, p)) else None)
            candidates
        in
        match sibling () with Some r -> Some r | None -> own ())

let resolve t ~(cur : unit_info) ~mpath ~(locals : string -> bool) env lid =
  let parts = Checks.strip_stdlib (Checks.flatten lid) in
  match parts with
  | [] -> Ext []
  | [ name ] when locals name -> Local name
  | head :: _ :: _ when locals head && String.length head > 0 && head.[0] >= 'a' && head.[0] <= 'z'
    ->
      Local head
  | _ -> (
      let parts = expand_alias env parts in
      let candidates = List.map (fun o -> o @ parts) env.opens @ [ parts ] in
      match List.find_map (try_direct t ~cur ~mpath) candidates with
      | Some r -> r
      | None -> Ext parts)

(* Resolve a module path (e.g. an [include] or alias target) to a whole
   compilation unit. *)
let resolve_unit t ~(cur : unit_info) env lid =
  let parts = expand_alias env (Checks.strip_stdlib (Checks.flatten lid)) in
  match parts with
  | [ l; m ] when Hashtbl.mem t.libs l -> Hashtbl.find_opt t.by_lib (l, m)
  | [ m ] -> (
      match cur.lib with Some l -> Hashtbl.find_opt t.by_lib (l, m) | None -> None)
  | _ -> None

(* ---- parallel primitives -------------------------------------------------- *)

type primitive = Parallel_map | Pool_submit | Domain_spawn

let primitive_name = function
  | Parallel_map -> "Pool.parallel_map"
  | Pool_submit -> "Pool.Persistent.submit"
  | Domain_spawn -> "Domain.spawn"

let rec suffix_of n l = if List.length l <= n then l else suffix_of n (List.tl l)

let primitive_of_resolved t r =
  let of_path parts =
    match suffix_of 3 parts with
    | [ "Pool"; "Persistent"; "submit" ] -> Some Pool_submit
    | _ -> (
        match suffix_of 2 parts with
        | [ "Pool"; "parallel_map" ] -> Some Parallel_map
        | [ "Domain"; "spawn" ] -> Some Domain_spawn
        | _ -> None)
  in
  match r with
  | Ext parts -> of_path parts
  | Sym (uid, path) ->
      let u = unit t uid in
      if String.equal u.modname "Pool" then
        match path with
        | [ "parallel_map" ] -> Some Parallel_map
        | [ "Persistent"; "submit" ] -> Some Pool_submit
        | _ -> None
      else None
  | Local _ -> None

(* Index of the worker-function argument among the [Nolabel] arguments of an
   application of the primitive. *)
let kernel_position = function Parallel_map -> 0 | Domain_spawn -> 0 | Pool_submit -> 1

let string_of_path = String.concat "."
