(** Digest-keyed per-file summaries and their on-disk cache.

    A summary {!entry} is self-contained: once phase 1 has produced one, every
    cross-module fixpoint (call-graph purity, mutable-escape dataflow, alloc
    and blocking reachability, unused exports, stale allows) can be recomputed
    from entries alone without re-parsing or re-walking any AST.  Entries are
    keyed by the content digests of the [.ml] and its optional [.mli], and the
    whole cache by a shape digest over the ordered worklist, the engine
    version, and the rule-set digest — any mismatch degrades to a cold run. *)

type entry = {
  e_digest : string;  (** [Digest.string] of the [.ml] contents *)
  e_intf_digest : string option;  (** same for the [.mli], when present *)
  e_meta : Symtab.unit_info;
      (** AST-free unit metadata; [uid] is stale and reassigned on assembly *)
  e_file_allows : (string * Ppxlib.Location.t) list;
  e_allow_spans : (string * Ppxlib.Location.t * Ppxlib.Location.t) list;
  e_local_findings : Finding.t list;  (** single-file syntactic findings *)
  e_local_uses : (string * Ppxlib.Location.t) list;
      (** allow spans consumed by local findings, replayed for stale-allow *)
  e_cg : Callgraph.unit_facts;
  e_df : Dataflow.unit_facts;
  e_alloc : Alloceffect.unit_facts;
  e_block : Blocking.unit_facts;
  e_deps : string list;
      (** unit paths this summary read through the symtab; a digest change in
          any of them dirties this entry even if its own digest is unchanged *)
}

type stats = { files : int; summarized : int; reused : int }
(** Phase-1 work accounting for one run: [summarized + reused = files]. *)

type t
(** A cache: a shape digest plus entries keyed by project-relative path. *)

val empty : t

val v : shape:string -> (string * entry) list -> t

val find : t -> shape:string -> string -> entry option
(** [None] whenever the cache was built for a different worklist shape. *)

val engine_version : int
(** Bumped when summary format or analysis semantics change; part of the
    cache header, so stale caches rebuild from scratch instead of misreading. *)

val default_path : string
(** [_build/.cpla-lint-cache] *)

val load : string -> t
(** Header or body mismatch, short read, corruption, missing file — all
    degrade to {!empty}.  Never raises. *)

val save : string -> t -> unit
(** Best-effort (write to temp, rename); failures are swallowed so a
    read-only cache directory (e.g. dune's sandbox) cannot fail the lint. *)
