(** Registry of the project lint rules.

    Every diagnostic produced by {!Engine} carries the [id] of one of these
    rules; the same ids are what a [[@cpla.allow "rule-id"]] annotation names
    to suppress a finding at one site. *)

type analysis =
  | File_local  (** decided from one file's AST alone *)
  | Whole_program  (** needs the project-wide symbol table / call graph *)

type t = {
  id : string;  (** stable kebab-case identifier, e.g. ["top-mutable"] *)
  synopsis : string;  (** one-line description of what the rule forbids *)
  rationale : string;  (** which project invariant the rule protects *)
  analysis : analysis;
}

val all : t list
(** Every rule, in documentation order. *)

val known : string -> bool
(** [known id] is true when [id] names a rule in {!all}. *)
