(** Rendering lint findings; all output goes through the caller's formatter,
    so the library itself never writes to stdout.  Every renderer first runs
    {!normalize}, so output order is deterministic whatever order findings
    were produced in. *)

val normalize : Finding.t list -> Finding.t list
(** Sort by (file, line, col, rule, message) and drop exact duplicates. *)

val human : Format.formatter -> Finding.t list -> unit
(** One [file:line: [rule-id] message] line per finding, then a summary. *)

val json : ?stats:Summary.stats -> Format.formatter -> Finding.t list -> unit
(** Machine-readable report:
    [{"findings": [{"file", "line", "col", "rule", "message"}...], "count": n}];
    with [stats], a trailing [{"files", "summarized", "reused"}] object
    exposing the incremental engine's phase-1 work accounting. *)

val github : Format.formatter -> Finding.t list -> unit
(** GitHub Actions workflow commands ([::error file=..::msg]), one
    annotation per finding, then the human summary line. *)

val sarif : Format.formatter -> Finding.t list -> unit
(** SARIF 2.1.0 log with rule metadata for the rules that fired; suitable
    for [upload-sarif] / code-scanning ingestion. *)

val rules : Format.formatter -> unit
(** Render the rule registry (id, [file]/[program] analysis tier, synopsis,
    rationale). *)
