(** Rendering lint findings; all output goes through the caller's formatter,
    so the library itself never writes to stdout. *)

val human : Format.formatter -> Finding.t list -> unit
(** One [file:line: [rule-id] message] line per finding, then a summary. *)

val json : Format.formatter -> Finding.t list -> unit
(** Machine-readable report:
    [{"findings": [{"file", "line", "col", "rule", "message"}...], "count": n}]. *)

val rules : Format.formatter -> unit
(** Render the rule registry (id, synopsis, rationale). *)
