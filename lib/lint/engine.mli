(** Driving the lint.

    Phase 1 builds the project-wide {!Symtab}, {!Callgraph} and {!Dataflow}
    results from {e every} source handed in; phase 2 applies the file-local
    {!Checks} to each [linted] unit and layers the whole-program rules
    ([domain-race], [impure-kernel], [unused-export], [check-not-threaded],
    [alloc-in-kernel], [blocking-in-loop]) on top, then audits every
    [[\@cpla.allow]] annotation in the linted units for staleness
    ([stale-allow]: a known-rule allow that suppressed or pruned nothing
    this run).  Sources with [linted = false] participate in resolution,
    reference counting, flow and reachability analysis but produce no
    findings (and their allows are not audited) — so a partial lint of one
    directory still sees the rest of the project. *)

type source = Symtab.source = {
  src_path : string;  (** project-relative path; [.ml] or [.mli] *)
  contents : string;
  linted : bool;
}

val lint_sources : source list -> Finding.t list
(** Run both phases over an in-memory project.  Findings are sorted and
    de-duplicated; whole-program findings honour [[\@cpla.allow]] spans at
    the reporting site (and, for [domain-race], at the creation site). *)

val lint_string : ?has_mli:bool -> filename:string -> string -> Finding.t list
(** Lint one implementation given as a string.  [filename] (a
    project-relative path such as ["lib/numeric/mat.ml"]) decides which
    rules apply; it does not have to exist on disk.  [has_mli] (default
    [true]) feeds the [missing-mli] rule.  Findings are sorted. *)

val lint_paths : ?context:string list -> string list -> Finding.t list
(** Lint every [.ml]/[.mli] under the given files/directories (recursively,
    skipping [_build] and dot-directories).  Directories in [context]
    (default [["lib"; "bin"; "bench"; "test"]]) are loaded as non-linted
    resolution context so partial lints resolve cross-module references.
    Findings are sorted and de-duplicated.  @raise Sys_error on an
    unreadable path. *)
