(** Driving the lint: parsing sources, walking directories, applying the
    file-level rules ([missing-mli], [parse-error]) on top of {!Checks}. *)

val lint_string : ?has_mli:bool -> filename:string -> string -> Finding.t list
(** Lint one implementation given as a string.  [filename] (a project-relative
    path such as ["lib/numeric/mat.ml"]) decides which rules apply; it does
    not have to exist on disk.  [has_mli] (default [true]) feeds the
    [missing-mli] rule.  Findings are sorted. *)

val lint_file : string -> Finding.t list
(** Lint one [.ml] file from disk; [missing-mli] checks for a sibling
    [.mli].  @raise Sys_error when the file cannot be read. *)

val lint_paths : string list -> Finding.t list
(** Lint every [.ml] file under the given files/directories (recursively,
    skipping [_build] and dot-directories).  Findings are sorted and
    de-duplicated.  @raise Sys_error on an unreadable path. *)
