(** Driving the lint, incrementally.

    Phase 1 summarizes each compilation unit into a self-contained
    {!Summary.entry} (file-local findings, allow spans, and the per-unit
    fact slices of every whole-program analysis); parsing is sequential but
    the analysis collectors fan out over [workers] domains.  Phase 2
    recomputes the cross-module rules ([domain-race], [impure-kernel],
    [unused-export], [check-not-threaded], [alloc-in-kernel],
    [blocking-in-loop]) from the entries alone — never re-reading an AST —
    then audits every [[\@cpla.allow]] in the linted units for staleness.
    Cold and warm runs share the phase-2 code path, so findings are
    byte-identical regardless of cache state or scheduling.

    Sources with [linted = false] participate in resolution, reference
    counting, flow and reachability analysis but produce no findings (and
    their allows are not audited) — so a partial lint of one directory
    still sees the rest of the project. *)

type source = Symtab.source = {
  src_path : string;  (** project-relative path; [.ml] or [.mli] *)
  contents : string;
  linted : bool;
}

val lint_sources : ?workers:int -> source list -> Finding.t list
(** Run both phases cold over an in-memory project.  Findings are sorted
    and de-duplicated; whole-program findings honour [[\@cpla.allow]] spans
    at the reporting site (and, for [domain-race], at the creation site).
    [workers] (default [1]) parallelises phase-1 summarization. *)

val lint_incremental :
  ?workers:int ->
  cache:Summary.t ->
  source list ->
  Summary.t * Finding.t list * Summary.stats
(** Like {!lint_sources} but reusing [cache] entries whose unit digests are
    unchanged and whose recorded imports are all unchanged too; returns the
    refreshed cache for the next run and the phase-1 work accounting.
    Passing {!Summary.empty} is exactly a cold run. *)

val lint_string : ?has_mli:bool -> filename:string -> string -> Finding.t list
(** Lint one implementation given as a string.  [filename] (a
    project-relative path such as ["lib/numeric/mat.ml"]) decides which
    rules apply; it does not have to exist on disk.  [has_mli] (default
    [true]) feeds the [missing-mli] rule.  Findings are sorted. *)

val read_sources :
  ?context:string list -> string list -> source list * Finding.t list
(** Collect every [.ml]/[.mli] under the given files/directories
    (recursively, skipping [_build] and dot-directories) as linted sources,
    plus the [context] directories (default [["lib"; "bin"; "bench";
    "test"]]) as non-linted resolution context.  A linted path that exists
    but cannot be read (dangling symlink, permissions) becomes a file-level
    [read-error] finding instead of aborting; unreadable context is
    skipped silently.  Never raises [Sys_error]. *)

val lint_paths :
  ?context:string list ->
  ?workers:int ->
  ?cache_file:string ->
  string list ->
  Finding.t list * Summary.stats
(** {!read_sources} + {!lint_incremental}: lints the given paths, loading
    the summary cache from [cache_file] before the run and saving the
    refreshed cache after (no persistence when [cache_file] is omitted).
    Findings are sorted and de-duplicated and include any [read-error]s. *)
