(* Two-phase driver.  Phase 1 parses every source into a {!Symtab},
   builds the {!Callgraph} (purity + references) and runs the {!Dataflow}
   mutable-flow analysis.  Phase 2 re-walks each linted unit with the
   file-local {!Checks} and then reports the whole-program rules
   ([domain-race], [impure-kernel], [unused-export], [check-not-threaded])
   against the phase-1 results. *)

type source = Symtab.source = { src_path : string; contents : string; linted : bool }

(* ---- whole-program suppression -------------------------------------------- *)

(* [@cpla.allow] handling for findings produced outside the per-file walk:
   a finding is suppressed when a same-rule annotation's span contains its
   location, or the rule is allowed file-wide.  Every successful
   suppression is recorded against the winning annotation's identity (its
   id location), and the per-file walk reports its suppressions through
   [use] — what is left unrecorded at the end is stale. *)
let within (span : Ppxlib.Location.t) (loc : Ppxlib.Location.t) =
  loc.loc_start.pos_cnum >= span.loc_start.pos_cnum
  && loc.loc_end.pos_cnum <= span.loc_end.pos_cnum

type allows = {
  allowed : string -> string -> Ppxlib.Location.t -> bool;
      (** [allowed rule path loc]: is a finding of [rule] at [loc] in unit
          [path] suppressed?  Records usage of the winning annotation. *)
  use : string -> string -> Ppxlib.Location.t -> unit;
      (** [use path id id_loc]: a suppression reported by {!Checks.analyze}. *)
  stale : unit -> (string * string * Ppxlib.Location.t) list;
      (** Known-rule allow annotations in linted units that recorded no use:
          [(path, id, id_loc)]. *)
}

let build_allows symtab =
  let tbl :
      ( string,
        (string * Ppxlib.Location.t) list
        * (string * Ppxlib.Location.t * Ppxlib.Location.t) list )
      Hashtbl.t =
    Hashtbl.create 64
  in
  (* the audit set: every known-rule annotation in a linted unit, one entry
     per identity (a binding attribute surfaces under two spans).
     "stale-allow" annotations are themselves exempt from the audit — they
     exist to silence it. *)
  let annots : (string * string * Ppxlib.Location.t) list ref = ref [] in
  let used : (string * string * int, unit) Hashtbl.t = Hashtbl.create 64 in
  for uid = 0 to Symtab.n_units symtab - 1 do
    let u = Symtab.unit symtab uid in
    let file_ids = Checks.file_allow_ids u.Symtab.str in
    let spans = Checks.allow_spans u.Symtab.str in
    Hashtbl.replace tbl u.Symtab.path (file_ids, spans);
    if u.Symtab.linted then begin
      let seen = Hashtbl.create 16 in
      let audit id (id_loc : Ppxlib.Location.t) =
        let k = (id, id_loc.loc_start.pos_cnum) in
        if Rule.known id && (not (String.equal id "stale-allow")) && not (Hashtbl.mem seen k)
        then begin
          Hashtbl.replace seen k ();
          annots := (u.Symtab.path, id, id_loc) :: !annots
        end
      in
      List.iter (fun (id, id_loc, _) -> audit id id_loc) spans;
      List.iter (fun (id, id_loc) -> audit id id_loc) file_ids
    end
  done;
  let use path id (id_loc : Ppxlib.Location.t) =
    Hashtbl.replace used (path, id, id_loc.loc_start.pos_cnum) ()
  in
  let allowed rule path (loc : Ppxlib.Location.t) =
    match Hashtbl.find_opt tbl path with
    | None -> false
    | Some (file_ids, spans) -> (
        (* innermost containing span takes the usage credit *)
        let extent (s : Ppxlib.Location.t) = s.loc_end.pos_cnum - s.loc_start.pos_cnum in
        let best =
          List.fold_left
            (fun acc (id, id_loc, span) ->
              if String.equal id rule && within span loc then
                match acc with
                | Some (_, prev) when extent prev <= extent span -> acc
                | _ -> Some (id_loc, span)
              else acc)
            None spans
        in
        match best with
        | Some (id_loc, _) ->
            use path rule id_loc;
            true
        | None -> (
            match List.find_opt (fun (id, _) -> String.equal id rule) file_ids with
            | Some (_, id_loc) ->
                use path rule id_loc;
                true
            | None -> false))
  in
  let stale () =
    List.filter
      (fun (path, id, (id_loc : Ppxlib.Location.t)) ->
        not (Hashtbl.mem used (path, id, id_loc.loc_start.pos_cnum)))
      (List.rev !annots)
  in
  { allowed; use; stale }

(* ---- whole-program rules --------------------------------------------------- *)

let domain_race ~allowed symtab =
  List.filter_map
    (fun (r : Dataflow.race) ->
      let suppressed =
        allowed "domain-race" r.Dataflow.r_path r.Dataflow.r_loc
        ||
        match r.Dataflow.r_origin with
        | Some (path, loc) -> allowed "domain-race" path loc
        | None -> false
      in
      if suppressed then None
      else
        Some
          (Finding.v ~file:r.Dataflow.r_path ~loc:r.Dataflow.r_loc ~rule:"domain-race"
             ~msg:r.Dataflow.r_msg))
    (Dataflow.analyze symtab)

let impure_kernel ~allowed symtab cg =
  let kernels =
    List.filter_map
      (fun (k : Callgraph.kernel_site) ->
        let u = Symtab.unit symtab k.Callgraph.k_unit in
        match k.Callgraph.k_target with
        | Some key when u.Symtab.linted && u.Symtab.area <> Checks.Test -> (
            (* compute the impurities first: the allow is only consulted —
               and counted as used — when there is a finding to suppress *)
            match
              List.sort compare
                (List.filter_map
                   (fun (kind, _) -> Callgraph.describe_kind cg key kind)
                   (Callgraph.kinds cg key))
            with
            | [] -> None
            | _ when allowed "impure-kernel" u.Symtab.path k.Callgraph.k_loc -> None
            | msgs ->
                Some
                  (Finding.v ~file:u.Symtab.path ~loc:k.Callgraph.k_loc ~rule:"impure-kernel"
                     ~msg:
                       (Printf.sprintf "parallel kernel %s is impure: %s"
                          (Callgraph.pretty_key cg key)
                          (String.concat "; also " msgs))))
        | _ -> None)
      (Callgraph.kernels cg)
  in
  (* impure calls from solver inner loops: same determinism budget as a
     kernel — these run thousands of times inside numeric iteration *)
  let loops =
    List.concat_map
      (fun (f : Callgraph.fn) ->
        let u = Symtab.unit symtab (fst f.Callgraph.fn_key) in
        let scope = Checks.scope_of_path u.Symtab.path in
        if
          u.Symtab.linted
          && (Checks.under [ "lib"; "numeric" ] scope || Checks.under [ "lib"; "sdp" ] scope)
        then
          List.filter_map
            (fun (c : Callgraph.call) ->
              match c.Callgraph.callee with
              | Symtab.Sym (cuid, cpath) when c.Callgraph.in_loop -> (
                  match
                    List.sort compare
                      (List.filter_map
                         (fun (kind, _) -> Callgraph.describe_kind cg (cuid, cpath) kind)
                         (Callgraph.kinds cg (cuid, cpath)))
                  with
                  | [] -> None
                  | _ when allowed "impure-kernel" u.Symtab.path c.Callgraph.call_loc ->
                      None
                  | msgs ->
                      Some
                        (Finding.v ~file:u.Symtab.path ~loc:c.Callgraph.call_loc
                           ~rule:"impure-kernel"
                           ~msg:
                             (Printf.sprintf "impure call in a solver inner loop: %s"
                                (String.concat "; also " msgs))))
              | _ -> None)
            f.Callgraph.fn_calls
        else [])
      (Callgraph.fns cg)
  in
  kernels @ loops

let unused_export symtab cg =
  let findings = ref [] in
  for uid = 0 to Symtab.n_units symtab - 1 do
    let u = Symtab.unit symtab uid in
    if u.Symtab.linted && not (Callgraph.included cg uid) then
      match u.Symtab.intf_path with
      | Some intf ->
          List.iter
            (fun (e : Symtab.export) ->
              let refd = Callgraph.referenced cg (uid, e.Symtab.exp_path) in
              if e.Symtab.exp_suppressed then begin
                (* an extension-point allow on an export that is in fact
                   referenced no longer suppresses anything *)
                if refd then
                  findings :=
                    Finding.v ~file:intf ~loc:e.Symtab.exp_loc ~rule:"stale-allow"
                      ~msg:
                        (Printf.sprintf
                           "[@@cpla.allow \"unused-export\"] on `%s` is stale: the \
                            export is referenced outside %s; remove the annotation"
                           (Symtab.string_of_path e.Symtab.exp_path)
                           u.Symtab.modname)
                    :: !findings
              end
              else if not refd then
                findings :=
                  Finding.v ~file:intf ~loc:e.Symtab.exp_loc ~rule:"unused-export"
                    ~msg:
                      (Printf.sprintf
                         "`%s` is exported but never used outside %s; delete it or mark \
                          the extension point with [@@cpla.allow \"unused-export\"]"
                         (Symtab.string_of_path e.Symtab.exp_path)
                         u.Symtab.modname)
                  :: !findings)
            u.Symtab.exports
      | None -> ()
  done;
  !findings

let has_check labels =
  List.exists (function Ppxlib.Optional "check" -> true | _ -> false) labels

let passes_check labels =
  List.exists
    (function Ppxlib.Optional "check" | Ppxlib.Labelled "check" -> true | _ -> false)
    labels

let check_not_threaded ~allowed symtab cg =
  List.concat_map
    (fun (f : Callgraph.fn) ->
      let u = Symtab.unit symtab (fst f.Callgraph.fn_key) in
      if u.Symtab.linted && has_check f.Callgraph.fn_params then
        List.filter_map
          (fun (c : Callgraph.call) ->
            match c.Callgraph.callee with
            | Symtab.Sym (cuid, cpath) -> (
                match Symtab.find_def (Symtab.unit symtab cuid) cpath with
                | Some d
                  when has_check d.Symtab.def_params
                       && (not (passes_check c.Callgraph.arg_labels))
                       && not (allowed "check-not-threaded" u.Symtab.path c.Callgraph.call_loc)
                  ->
                    Some
                      (Finding.v ~file:u.Symtab.path ~loc:c.Callgraph.call_loc
                         ~rule:"check-not-threaded"
                         ~msg:
                           (Printf.sprintf
                              "%s takes the ?check cancellation hook but this call from \
                               %s does not pass it on; the callee's work cannot be \
                               cancelled"
                              (Callgraph.pretty_key cg (cuid, cpath))
                              (Callgraph.pretty_key cg f.Callgraph.fn_key)))
                | _ -> None)
            | _ -> None)
          f.Callgraph.fn_calls
      else [])
    (Callgraph.fns cg)

(* ---- phase-2 driver -------------------------------------------------------- *)

let lint_sources sources =
  let symtab = Symtab.build sources in
  let cg = Callgraph.build symtab in
  let allows = build_allows symtab in
  let allowed = allows.allowed in
  let findings = ref [] in
  let add fs = findings := fs @ !findings in
  for uid = 0 to Symtab.n_units symtab - 1 do
    let u = Symtab.unit symtab uid in
    if u.Symtab.linted then begin
      (match u.Symtab.parse_exn with
      | Some msg -> add [ Finding.file_level ~file:u.Symtab.path ~rule:"parse-error" ~msg ]
      | None ->
          add
            (Checks.analyze
               ~on_allow_use:(fun id id_loc -> allows.use u.Symtab.path id id_loc)
               ~scope:(Checks.scope_of_path u.Symtab.path)
               u.Symtab.str));
      if u.Symtab.parsed && u.Symtab.area = Checks.Lib && not u.Symtab.has_intf then (
        match
          List.find_opt
            (fun (id, _) -> String.equal id "missing-mli")
            (Checks.file_allow_ids u.Symtab.str)
        with
        | Some (id, id_loc) -> allows.use u.Symtab.path id id_loc
        | None ->
            add
              [
                Finding.file_level ~file:u.Symtab.path ~rule:"missing-mli"
                  ~msg:"no corresponding .mli; every lib/ module needs an interface";
              ]);
      (match (u.Symtab.intf_path, u.Symtab.intf_parse_exn) with
      | Some intf, Some msg ->
          add [ Finding.file_level ~file:intf ~rule:"parse-error" ~msg ]
      | _ -> ());
      match u.Symtab.intf_path with
      | Some intf ->
          add
            (List.map
               (fun (id, loc) ->
                 Finding.v ~file:intf ~loc ~rule:"unknown-allow"
                   ~msg:
                     (match id with
                     | Some id -> Printf.sprintf "unknown rule id %S in [@cpla.allow]" id
                     | None -> "[@cpla.allow] expects rule-id string literal(s)"))
               u.Symtab.intf_bad_allows)
      | None -> ()
    end
  done;
  add (domain_race ~allowed symtab);
  add (impure_kernel ~allowed symtab cg);
  add (unused_export symtab cg);
  add (check_not_threaded ~allowed symtab cg);
  add (Alloceffect.check ~allowed symtab cg);
  add (Blocking.check ~allowed symtab cg);
  (* stale-allow runs last: every rule above has by now recorded which
     annotations earned their keep *)
  add
    (List.filter_map
       (fun (path, id, id_loc) ->
         if allowed "stale-allow" path id_loc then None
         else
           Some
             (Finding.v ~file:path ~loc:id_loc ~rule:"stale-allow"
                ~msg:
                  (Printf.sprintf
                     "[@cpla.allow %S] no longer suppresses any finding; remove it" id)))
       (allows.stale ()));
  List.sort_uniq Finding.compare !findings

let lint_string ?(has_mli = true) ~filename contents =
  let path = (Checks.scope_of_path filename).Checks.path in
  let sources =
    { src_path = path; contents; linted = true }
    ::
    (if has_mli && Filename.check_suffix path ".ml" then
       (* the interface exists but is not part of the analysis: satisfies
          [missing-mli] without inventing exports to audit *)
       [ { src_path = path ^ "i"; contents = ""; linted = false } ]
     else [])
  in
  lint_sources sources

(* ---- filesystem ------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec source_files path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun entry ->
           if String.length entry > 0 && entry.[0] = '.' then []
           else if String.equal entry "_build" then []
           else source_files (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli" then [ path ]
  else []


let default_roots = [ "lib"; "bin"; "bench"; "test" ]

let lint_paths ?(context = default_roots) paths =
  let norm p = (Checks.scope_of_path p).Checks.path in
  let files = List.concat_map source_files paths in
  let seen = Hashtbl.create 256 in
  List.iter (fun p -> Hashtbl.replace seen (norm p) ()) files;
  let ctx =
    context
    |> List.filter (fun r -> Sys.file_exists r && Sys.is_directory r)
    |> List.concat_map source_files
    |> List.filter (fun p -> not (Hashtbl.mem seen (norm p)))
  in
  let src linted p = { src_path = norm p; contents = read_file p; linted } in
  lint_sources (List.map (src true) files @ List.map (src false) ctx)

