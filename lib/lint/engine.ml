(* Two-phase driver.  Phase 1 parses every source into a {!Symtab},
   builds the {!Callgraph} (purity + references) and runs the {!Dataflow}
   mutable-flow analysis.  Phase 2 re-walks each linted unit with the
   file-local {!Checks} and then reports the whole-program rules
   ([domain-race], [impure-kernel], [unused-export], [check-not-threaded])
   against the phase-1 results. *)

type source = Symtab.source = { src_path : string; contents : string; linted : bool }

(* ---- whole-program suppression -------------------------------------------- *)

(* [@cpla.allow] handling for findings produced outside the per-file walk:
   a finding is suppressed when a same-rule annotation's span contains its
   location, or the rule is allowed file-wide. *)
let within (span : Ppxlib.Location.t) (loc : Ppxlib.Location.t) =
  loc.loc_start.pos_cnum >= span.loc_start.pos_cnum
  && loc.loc_end.pos_cnum <= span.loc_end.pos_cnum

let build_allows symtab =
  let tbl : (string, string list * (string * Ppxlib.Location.t) list) Hashtbl.t =
    Hashtbl.create 64
  in
  for uid = 0 to Symtab.n_units symtab - 1 do
    let u = Symtab.unit symtab uid in
    Hashtbl.replace tbl u.Symtab.path (Checks.file_allows u.Symtab.str, Checks.allow_spans u.Symtab.str)
  done;
  fun rule path (loc : Ppxlib.Location.t) ->
    match Hashtbl.find_opt tbl path with
    | None -> false
    | Some (file_allowed, spans) ->
        List.mem rule file_allowed
        || List.exists (fun (id, span) -> String.equal id rule && within span loc) spans

(* ---- whole-program rules --------------------------------------------------- *)

let domain_race ~allowed symtab =
  List.filter_map
    (fun (r : Dataflow.race) ->
      let suppressed =
        allowed "domain-race" r.Dataflow.r_path r.Dataflow.r_loc
        ||
        match r.Dataflow.r_origin with
        | Some (path, loc) -> allowed "domain-race" path loc
        | None -> false
      in
      if suppressed then None
      else
        Some
          (Finding.v ~file:r.Dataflow.r_path ~loc:r.Dataflow.r_loc ~rule:"domain-race"
             ~msg:r.Dataflow.r_msg))
    (Dataflow.analyze symtab)

let impure_kernel ~allowed symtab cg =
  let kernels =
    List.filter_map
      (fun (k : Callgraph.kernel_site) ->
        let u = Symtab.unit symtab k.Callgraph.k_unit in
        match k.Callgraph.k_target with
        | Some key
          when u.Symtab.linted
               && u.Symtab.area <> Checks.Test
               && not (allowed "impure-kernel" u.Symtab.path k.Callgraph.k_loc) -> (
            match
              List.sort compare
                (List.filter_map
                   (fun (kind, _) -> Callgraph.describe_kind cg key kind)
                   (Callgraph.kinds cg key))
            with
            | [] -> None
            | msgs ->
                Some
                  (Finding.v ~file:u.Symtab.path ~loc:k.Callgraph.k_loc ~rule:"impure-kernel"
                     ~msg:
                       (Printf.sprintf "parallel kernel %s is impure: %s"
                          (Callgraph.pretty_key cg key)
                          (String.concat "; also " msgs))))
        | _ -> None)
      (Callgraph.kernels cg)
  in
  (* impure calls from solver inner loops: same determinism budget as a
     kernel — these run thousands of times inside numeric iteration *)
  let loops =
    List.concat_map
      (fun (f : Callgraph.fn) ->
        let u = Symtab.unit symtab (fst f.Callgraph.fn_key) in
        let scope = Checks.scope_of_path u.Symtab.path in
        if
          u.Symtab.linted
          && (Checks.under [ "lib"; "numeric" ] scope || Checks.under [ "lib"; "sdp" ] scope)
        then
          List.filter_map
            (fun (c : Callgraph.call) ->
              match c.Callgraph.callee with
              | Symtab.Sym (cuid, cpath)
                when c.Callgraph.in_loop
                     && not (allowed "impure-kernel" u.Symtab.path c.Callgraph.call_loc) -> (
                  match
                    List.sort compare
                      (List.filter_map
                         (fun (kind, _) -> Callgraph.describe_kind cg (cuid, cpath) kind)
                         (Callgraph.kinds cg (cuid, cpath)))
                  with
                  | [] -> None
                  | msgs ->
                      Some
                        (Finding.v ~file:u.Symtab.path ~loc:c.Callgraph.call_loc
                           ~rule:"impure-kernel"
                           ~msg:
                             (Printf.sprintf "impure call in a solver inner loop: %s"
                                (String.concat "; also " msgs))))
              | _ -> None)
            f.Callgraph.fn_calls
        else [])
      (Callgraph.fns cg)
  in
  kernels @ loops

let unused_export symtab cg =
  let findings = ref [] in
  for uid = 0 to Symtab.n_units symtab - 1 do
    let u = Symtab.unit symtab uid in
    if u.Symtab.linted && not (Callgraph.included cg uid) then
      match u.Symtab.intf_path with
      | Some intf ->
          List.iter
            (fun (e : Symtab.export) ->
              if
                (not e.Symtab.exp_suppressed)
                && not (Callgraph.referenced cg (uid, e.Symtab.exp_path))
              then
                findings :=
                  Finding.v ~file:intf ~loc:e.Symtab.exp_loc ~rule:"unused-export"
                    ~msg:
                      (Printf.sprintf
                         "`%s` is exported but never used outside %s; delete it or mark \
                          the extension point with [@@cpla.allow \"unused-export\"]"
                         (Symtab.string_of_path e.Symtab.exp_path)
                         u.Symtab.modname)
                  :: !findings)
            u.Symtab.exports
      | None -> ()
  done;
  !findings

let has_check labels =
  List.exists (function Ppxlib.Optional "check" -> true | _ -> false) labels

let passes_check labels =
  List.exists
    (function Ppxlib.Optional "check" | Ppxlib.Labelled "check" -> true | _ -> false)
    labels

let check_not_threaded ~allowed symtab cg =
  List.concat_map
    (fun (f : Callgraph.fn) ->
      let u = Symtab.unit symtab (fst f.Callgraph.fn_key) in
      if u.Symtab.linted && has_check f.Callgraph.fn_params then
        List.filter_map
          (fun (c : Callgraph.call) ->
            match c.Callgraph.callee with
            | Symtab.Sym (cuid, cpath) -> (
                match Symtab.find_def (Symtab.unit symtab cuid) cpath with
                | Some d
                  when has_check d.Symtab.def_params
                       && (not (passes_check c.Callgraph.arg_labels))
                       && not (allowed "check-not-threaded" u.Symtab.path c.Callgraph.call_loc)
                  ->
                    Some
                      (Finding.v ~file:u.Symtab.path ~loc:c.Callgraph.call_loc
                         ~rule:"check-not-threaded"
                         ~msg:
                           (Printf.sprintf
                              "%s takes the ?check cancellation hook but this call from \
                               %s does not pass it on; the callee's work cannot be \
                               cancelled"
                              (Callgraph.pretty_key cg (cuid, cpath))
                              (Callgraph.pretty_key cg f.Callgraph.fn_key)))
                | _ -> None)
            | _ -> None)
          f.Callgraph.fn_calls
      else [])
    (Callgraph.fns cg)

(* ---- phase-2 driver -------------------------------------------------------- *)

let lint_sources sources =
  let symtab = Symtab.build sources in
  let cg = Callgraph.build symtab in
  let allowed = build_allows symtab in
  let findings = ref [] in
  let add fs = findings := fs @ !findings in
  for uid = 0 to Symtab.n_units symtab - 1 do
    let u = Symtab.unit symtab uid in
    if u.Symtab.linted then begin
      (match u.Symtab.parse_exn with
      | Some msg -> add [ Finding.file_level ~file:u.Symtab.path ~rule:"parse-error" ~msg ]
      | None ->
          add (Checks.analyze ~scope:(Checks.scope_of_path u.Symtab.path) u.Symtab.str));
      if
        u.Symtab.parsed
        && u.Symtab.area = Checks.Lib
        && (not u.Symtab.has_intf)
        && not (List.mem "missing-mli" (Checks.file_allows u.Symtab.str))
      then
        add
          [
            Finding.file_level ~file:u.Symtab.path ~rule:"missing-mli"
              ~msg:"no corresponding .mli; every lib/ module needs an interface";
          ];
      (match (u.Symtab.intf_path, u.Symtab.intf_parse_exn) with
      | Some intf, Some msg ->
          add [ Finding.file_level ~file:intf ~rule:"parse-error" ~msg ]
      | _ -> ());
      match u.Symtab.intf_path with
      | Some intf ->
          add
            (List.map
               (fun (id, loc) ->
                 Finding.v ~file:intf ~loc ~rule:"unknown-allow"
                   ~msg:
                     (match id with
                     | Some id -> Printf.sprintf "unknown rule id %S in [@cpla.allow]" id
                     | None -> "[@cpla.allow] expects rule-id string literal(s)"))
               u.Symtab.intf_bad_allows)
      | None -> ()
    end
  done;
  add (domain_race ~allowed symtab);
  add (impure_kernel ~allowed symtab cg);
  add (unused_export symtab cg);
  add (check_not_threaded ~allowed symtab cg);
  List.sort_uniq Finding.compare !findings

let lint_string ?(has_mli = true) ~filename contents =
  let path = (Checks.scope_of_path filename).Checks.path in
  let sources =
    { src_path = path; contents; linted = true }
    ::
    (if has_mli && Filename.check_suffix path ".ml" then
       (* the interface exists but is not part of the analysis: satisfies
          [missing-mli] without inventing exports to audit *)
       [ { src_path = path ^ "i"; contents = ""; linted = false } ]
     else [])
  in
  lint_sources sources

(* ---- filesystem ------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec source_files path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun entry ->
           if String.length entry > 0 && entry.[0] = '.' then []
           else if String.equal entry "_build" then []
           else source_files (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli" then [ path ]
  else []


let default_roots = [ "lib"; "bin"; "bench"; "test" ]

let lint_paths ?(context = default_roots) paths =
  let norm p = (Checks.scope_of_path p).Checks.path in
  let files = List.concat_map source_files paths in
  let seen = Hashtbl.create 256 in
  List.iter (fun p -> Hashtbl.replace seen (norm p) ()) files;
  let ctx =
    context
    |> List.filter (fun r -> Sys.file_exists r && Sys.is_directory r)
    |> List.concat_map source_files
    |> List.filter (fun p -> not (Hashtbl.mem seen (norm p)))
  in
  let src linted p = { src_path = norm p; contents = read_file p; linted } in
  lint_sources (List.map (src true) files @ List.map (src false) ctx)

