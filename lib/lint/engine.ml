let parse ~filename contents =
  let lexbuf = Lexing.from_string contents in
  Lexing.set_filename lexbuf filename;
  Ppxlib.Parse.implementation lexbuf

let lint_string ?(has_mli = true) ~filename contents =
  let scope = Checks.scope_of_path filename in
  match parse ~filename contents with
  | str ->
      let findings = Checks.analyze ~scope str in
      let findings =
        if
          scope.Checks.area = Checks.Lib
          && (not has_mli)
          && not (List.mem "missing-mli" (Checks.file_allows str))
        then
          findings
          @ [
              Finding.file_level ~file:scope.Checks.path ~rule:"missing-mli"
                ~msg:"no corresponding .mli; every lib/ module needs an interface";
            ]
        else findings
      in
      List.sort Finding.compare findings
  | exception e ->
      Cpla_util.Exn.reraise_if_async e;
      [
        Finding.file_level ~file:scope.Checks.path ~rule:"parse-error"
          ~msg:(Printexc.to_string e);
      ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file path =
  let has_mli = Sys.file_exists (path ^ "i") in
  lint_string ~has_mli ~filename:path (read_file path)

let rec ml_files path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun entry ->
           if String.length entry > 0 && entry.[0] = '.' then []
           else if String.equal entry "_build" then []
           else ml_files (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let lint_paths paths =
  let files = List.concat_map ml_files paths in
  let findings = List.concat_map lint_file files in
  List.sort_uniq Finding.compare findings
