(* Summary-based incremental driver.

   Phase 1 turns each compilation unit into a self-contained {!Summary.entry}:
   AST-free {!Symtab} metadata, the file-local {!Checks} findings and allow
   spans, and the per-unit fact slices of the four whole-program analyses.
   Parsing stays sequential (compiler-libs' lexer is global state); the
   analysis collectors run in parallel over {!Cpla_util.Pool}.  On a warm run
   only digest-changed units — plus units whose recorded imports changed —
   are re-summarized; everything else is reused from the cache.

   Phase 2 never touches an AST: it assembles the symtab from entry metadata,
   rebuilds the {!Callgraph} and replays the {!Dataflow} event streams from
   entry facts, and layers the whole-program rules on top.  Cold and warm
   runs share this code path verbatim, so findings are a deterministic
   function of the entries alone — byte-identical regardless of cache state
   or which domains summarized what. *)

type source = Symtab.source = { src_path : string; contents : string; linted : bool }

(* ---- whole-program suppression -------------------------------------------- *)

(* [@cpla.allow] handling for findings produced outside the per-file walk:
   a finding is suppressed when a same-rule annotation's span contains its
   location, or the rule is allowed file-wide.  Every successful
   suppression is recorded against the winning annotation's identity (its
   id location), and the per-file walk's suppressions are replayed from the
   summaries through [use] — what is left unrecorded at the end is stale. *)
let within (span : Ppxlib.Location.t) (loc : Ppxlib.Location.t) =
  loc.loc_start.pos_cnum >= span.loc_start.pos_cnum
  && loc.loc_end.pos_cnum <= span.loc_end.pos_cnum

type allows = {
  allowed : string -> string -> Ppxlib.Location.t -> bool;
      (** [allowed rule path loc]: is a finding of [rule] at [loc] in unit
          [path] suppressed?  Records usage of the winning annotation. *)
  use : string -> string -> Ppxlib.Location.t -> unit;
      (** [use path id id_loc]: a suppression recorded by {!Checks.analyze}. *)
  stale : unit -> (string * string * Ppxlib.Location.t) list;
      (** Known-rule allow annotations in linted units that recorded no use:
          [(path, id, id_loc)]. *)
}

let build_allows symtab (entries : Summary.entry array) =
  let tbl :
      ( string,
        (string * Ppxlib.Location.t) list
        * (string * Ppxlib.Location.t * Ppxlib.Location.t) list )
      Hashtbl.t =
    Hashtbl.create 64
  in
  (* the audit set: every known-rule annotation in a linted unit, one entry
     per identity (a binding attribute surfaces under two spans).
     "stale-allow" annotations are themselves exempt from the audit — they
     exist to silence it. *)
  let annots : (string * string * Ppxlib.Location.t) list ref = ref [] in
  let used : (string * string * int, unit) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun uid (e : Summary.entry) ->
      let u = Symtab.unit symtab uid in
      let file_ids = e.Summary.e_file_allows in
      let spans = e.Summary.e_allow_spans in
      Hashtbl.replace tbl u.Symtab.path (file_ids, spans);
      if u.Symtab.linted then begin
        let seen = Hashtbl.create 16 in
        let audit id (id_loc : Ppxlib.Location.t) =
          let k = (id, id_loc.loc_start.pos_cnum) in
          if Rule.known id && (not (String.equal id "stale-allow")) && not (Hashtbl.mem seen k)
          then begin
            Hashtbl.replace seen k ();
            annots := (u.Symtab.path, id, id_loc) :: !annots
          end
        in
        List.iter (fun (id, id_loc, _) -> audit id id_loc) spans;
        List.iter (fun (id, id_loc) -> audit id id_loc) file_ids
      end)
    entries;
  let use path id (id_loc : Ppxlib.Location.t) =
    Hashtbl.replace used (path, id, id_loc.loc_start.pos_cnum) ()
  in
  let allowed rule path (loc : Ppxlib.Location.t) =
    match Hashtbl.find_opt tbl path with
    | None -> false
    | Some (file_ids, spans) -> (
        (* innermost containing span takes the usage credit *)
        let extent (s : Ppxlib.Location.t) = s.loc_end.pos_cnum - s.loc_start.pos_cnum in
        let best =
          List.fold_left
            (fun acc (id, id_loc, span) ->
              if String.equal id rule && within span loc then
                match acc with
                | Some (_, prev) when extent prev <= extent span -> acc
                | _ -> Some (id_loc, span)
              else acc)
            None spans
        in
        match best with
        | Some (id_loc, _) ->
            use path rule id_loc;
            true
        | None -> (
            match List.find_opt (fun (id, _) -> String.equal id rule) file_ids with
            | Some (_, id_loc) ->
                use path rule id_loc;
                true
            | None -> false))
  in
  let stale () =
    List.filter
      (fun (path, id, (id_loc : Ppxlib.Location.t)) ->
        not (Hashtbl.mem used (path, id, id_loc.loc_start.pos_cnum)))
      (List.rev !annots)
  in
  { allowed; use; stale }

(* ---- whole-program rules --------------------------------------------------- *)

let domain_race ~allowed races =
  List.filter_map
    (fun (r : Dataflow.race) ->
      let suppressed =
        allowed "domain-race" r.Dataflow.r_path r.Dataflow.r_loc
        ||
        match r.Dataflow.r_origin with
        | Some (path, loc) -> allowed "domain-race" path loc
        | None -> false
      in
      if suppressed then None
      else
        Some
          (Finding.v ~file:r.Dataflow.r_path ~loc:r.Dataflow.r_loc ~rule:"domain-race"
             ~msg:r.Dataflow.r_msg))
    races

let impure_kernel ~allowed symtab cg =
  let kernels =
    List.filter_map
      (fun (k : Callgraph.kernel_site) ->
        let u = Symtab.unit symtab k.Callgraph.k_unit in
        match k.Callgraph.k_target with
        | Some key when u.Symtab.linted && u.Symtab.area <> Checks.Test -> (
            (* compute the impurities first: the allow is only consulted —
               and counted as used — when there is a finding to suppress *)
            match
              List.sort compare
                (List.filter_map
                   (fun (kind, _) -> Callgraph.describe_kind cg key kind)
                   (Callgraph.kinds cg key))
            with
            | [] -> None
            | _ when allowed "impure-kernel" u.Symtab.path k.Callgraph.k_loc -> None
            | msgs ->
                Some
                  (Finding.v ~file:u.Symtab.path ~loc:k.Callgraph.k_loc ~rule:"impure-kernel"
                     ~msg:
                       (Printf.sprintf "parallel kernel %s is impure: %s"
                          (Callgraph.pretty_key cg key)
                          (String.concat "; also " msgs))))
        | _ -> None)
      (Callgraph.kernels cg)
  in
  (* impure calls from solver inner loops: same determinism budget as a
     kernel — these run thousands of times inside numeric iteration *)
  let loops =
    List.concat_map
      (fun (f : Callgraph.fn) ->
        let u = Symtab.unit symtab (fst f.Callgraph.fn_key) in
        let scope = Checks.scope_of_path u.Symtab.path in
        if
          u.Symtab.linted
          && (Checks.under [ "lib"; "numeric" ] scope || Checks.under [ "lib"; "sdp" ] scope)
        then
          List.filter_map
            (fun (c : Callgraph.call) ->
              match c.Callgraph.callee with
              | Symtab.Sym (cuid, cpath) when c.Callgraph.in_loop -> (
                  match
                    List.sort compare
                      (List.filter_map
                         (fun (kind, _) -> Callgraph.describe_kind cg (cuid, cpath) kind)
                         (Callgraph.kinds cg (cuid, cpath)))
                  with
                  | [] -> None
                  | _ when allowed "impure-kernel" u.Symtab.path c.Callgraph.call_loc ->
                      None
                  | msgs ->
                      Some
                        (Finding.v ~file:u.Symtab.path ~loc:c.Callgraph.call_loc
                           ~rule:"impure-kernel"
                           ~msg:
                             (Printf.sprintf "impure call in a solver inner loop: %s"
                                (String.concat "; also " msgs))))
              | _ -> None)
            f.Callgraph.fn_calls
        else [])
      (Callgraph.fns cg)
  in
  kernels @ loops

let unused_export symtab cg =
  let findings = ref [] in
  for uid = 0 to Symtab.n_units symtab - 1 do
    let u = Symtab.unit symtab uid in
    if u.Symtab.linted && not (Callgraph.included cg uid) then
      match u.Symtab.intf_path with
      | Some intf ->
          List.iter
            (fun (e : Symtab.export) ->
              let refd = Callgraph.referenced cg (uid, e.Symtab.exp_path) in
              if e.Symtab.exp_suppressed then begin
                (* an extension-point allow on an export that is in fact
                   referenced no longer suppresses anything *)
                if refd then
                  findings :=
                    Finding.v ~file:intf ~loc:e.Symtab.exp_loc ~rule:"stale-allow"
                      ~msg:
                        (Printf.sprintf
                           "[@@cpla.allow \"unused-export\"] on `%s` is stale: the \
                            export is referenced outside %s; remove the annotation"
                           (Symtab.string_of_path e.Symtab.exp_path)
                           u.Symtab.modname)
                    :: !findings
              end
              else if not refd then
                findings :=
                  Finding.v ~file:intf ~loc:e.Symtab.exp_loc ~rule:"unused-export"
                    ~msg:
                      (Printf.sprintf
                         "`%s` is exported but never used outside %s; delete it or mark \
                          the extension point with [@@cpla.allow \"unused-export\"]"
                         (Symtab.string_of_path e.Symtab.exp_path)
                         u.Symtab.modname)
                  :: !findings)
            u.Symtab.exports
      | None -> ()
  done;
  !findings

let has_check labels =
  List.exists (function Ppxlib.Optional "check" -> true | _ -> false) labels

let passes_check labels =
  List.exists
    (function Ppxlib.Optional "check" | Ppxlib.Labelled "check" -> true | _ -> false)
    labels

let check_not_threaded ~allowed symtab cg =
  List.concat_map
    (fun (f : Callgraph.fn) ->
      let u = Symtab.unit symtab (fst f.Callgraph.fn_key) in
      if u.Symtab.linted && has_check f.Callgraph.fn_params then
        List.filter_map
          (fun (c : Callgraph.call) ->
            match c.Callgraph.callee with
            | Symtab.Sym (cuid, cpath) -> (
                match Symtab.find_def (Symtab.unit symtab cuid) cpath with
                | Some d
                  when has_check d.Symtab.def_params
                       && (not (passes_check c.Callgraph.arg_labels))
                       && not (allowed "check-not-threaded" u.Symtab.path c.Callgraph.call_loc)
                  ->
                    Some
                      (Finding.v ~file:u.Symtab.path ~loc:c.Callgraph.call_loc
                         ~rule:"check-not-threaded"
                         ~msg:
                           (Printf.sprintf
                              "%s takes the ?check cancellation hook but this call from \
                               %s does not pass it on; the callee's work cannot be \
                               cancelled"
                              (Callgraph.pretty_key cg (cuid, cpath))
                              (Callgraph.pretty_key cg f.Callgraph.fn_key)))
                | _ -> None)
            | _ -> None)
          f.Callgraph.fn_calls
      else [])
    (Callgraph.fns cg)

(* ---- phase 1: summarize one unit ------------------------------------------- *)

let summarize symtab (u : Symtab.unit_info) (str : Ppxlib.structure) ~digest ~intf_digest =
  let uses = ref [] in
  let local_findings =
    if u.Symtab.linted && u.Symtab.parse_exn = None then
      Checks.analyze
        ~on_allow_use:(fun id id_loc -> uses := (id, id_loc) :: !uses)
        ~scope:(Checks.scope_of_path u.Symtab.path)
        str
    else []
  in
  let cg = Callgraph.collect symtab u str in
  {
    Summary.e_digest = digest;
    e_intf_digest = intf_digest;
    e_meta = u;
    e_file_allows = Checks.file_allow_ids str;
    e_allow_spans = Checks.allow_spans str;
    e_local_findings = local_findings;
    e_local_uses = List.rev !uses;
    e_cg = cg;
    e_df = Dataflow.collect symtab u str;
    e_alloc = Alloceffect.collect u str;
    e_block = Blocking.collect u str;
    e_deps =
      List.filter (fun p -> not (String.equal p u.Symtab.path)) (Callgraph.facts_deps cg);
  }

(* ---- phase 2: findings from entries alone ----------------------------------- *)

let solve_entries symtab (entries : Summary.entry array) =
  let cg =
    Callgraph.build_of_facts symtab (Array.map (fun e -> e.Summary.e_cg) entries)
  in
  let allows = build_allows symtab entries in
  let allowed = allows.allowed in
  let findings = ref [] in
  let add fs = findings := fs @ !findings in
  Array.iteri
    (fun uid (e : Summary.entry) ->
      let u = Symtab.unit symtab uid in
      if u.Symtab.linted then begin
        List.iter (fun (id, id_loc) -> allows.use u.Symtab.path id id_loc) e.Summary.e_local_uses;
        (match u.Symtab.parse_exn with
        | Some msg -> add [ Finding.file_level ~file:u.Symtab.path ~rule:"parse-error" ~msg ]
        | None -> add e.Summary.e_local_findings);
        if u.Symtab.parsed && u.Symtab.area = Checks.Lib && not u.Symtab.has_intf then (
          match
            List.find_opt
              (fun (id, _) -> String.equal id "missing-mli")
              e.Summary.e_file_allows
          with
          | Some (id, id_loc) -> allows.use u.Symtab.path id id_loc
          | None ->
              add
                [
                  Finding.file_level ~file:u.Symtab.path ~rule:"missing-mli"
                    ~msg:"no corresponding .mli; every lib/ module needs an interface";
                ]);
        (match (u.Symtab.intf_path, u.Symtab.intf_parse_exn) with
        | Some intf, Some msg ->
            add [ Finding.file_level ~file:intf ~rule:"parse-error" ~msg ]
        | _ -> ());
        match u.Symtab.intf_path with
        | Some intf ->
            add
              (List.map
                 (fun (id, loc) ->
                   Finding.v ~file:intf ~loc ~rule:"unknown-allow"
                     ~msg:
                       (match id with
                       | Some id -> Printf.sprintf "unknown rule id %S in [@cpla.allow]" id
                       | None -> "[@cpla.allow] expects rule-id string literal(s)"))
                 u.Symtab.intf_bad_allows)
        | None -> ()
      end)
    entries;
  add
    (domain_race ~allowed
       (Dataflow.solve symtab (Array.map (fun e -> e.Summary.e_df) entries)));
  add (impure_kernel ~allowed symtab cg);
  add (unused_export symtab cg);
  add (check_not_threaded ~allowed symtab cg);
  add
    (Alloceffect.check ~allowed symtab cg
       (Array.map (fun e -> e.Summary.e_alloc) entries));
  add
    (Blocking.check ~allowed symtab cg (Array.map (fun e -> e.Summary.e_block) entries));
  (* stale-allow runs last: every rule above has by now recorded which
     annotations earned their keep *)
  add
    (List.filter_map
       (fun (path, id, id_loc) ->
         if allowed "stale-allow" path id_loc then None
         else
           Some
             (Finding.v ~file:path ~loc:id_loc ~rule:"stale-allow"
                ~msg:
                  (Printf.sprintf
                     "[@cpla.allow %S] no longer suppresses any finding; remove it" id)))
       (allows.stale ()));
  List.sort_uniq Finding.compare !findings

(* ---- incremental driver ----------------------------------------------------- *)

let norm p = (Checks.scope_of_path p).Checks.path

(* The worklist shape: ordered (path, linted, has_intf) triples.  Any change
   — a unit added, removed, reordered, or flipping its linted/interface
   status — invalidates the whole cache, so entry-level reuse only ever has
   to reason about content edits to a fixed unit set. *)
let shape_of pairs =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          (List.map
             (fun ((s : source), intf) ->
               Printf.sprintf "%s\x01%b\x01%b" (norm s.src_path) s.linted (intf <> None))
             pairs)))

let pair_sources (sources : source list) =
  let impls = List.filter (fun s -> Filename.check_suffix s.src_path ".ml") sources in
  let intfs = List.filter (fun s -> Filename.check_suffix s.src_path ".mli") sources in
  let intf_for path = List.find_opt (fun s -> String.equal s.src_path (path ^ "i")) intfs in
  List.map (fun (s : source) -> (s, intf_for s.src_path)) impls

let lint_incremental ?(workers = 1) ~cache sources =
  let pairs = pair_sources sources in
  let shape = shape_of pairs in
  let keyed =
    List.map
      (fun ((s : source), intf) ->
        ( s,
          intf,
          norm s.src_path,
          Digest.string s.contents,
          Option.map (fun (i : source) -> Digest.string i.contents) intf ))
      pairs
  in
  (* dirty = digest-changed ∪ units importing a digest-changed unit.  One hop
     suffices: the cross-module fixpoints are recomputed from all entries
     every run, and a change in the *set* of units is a shape change. *)
  let reusable =
    List.map
      (fun (_, _, path, digest, intf_digest) ->
        match Summary.find cache ~shape path with
        | Some e
          when String.equal e.Summary.e_digest digest
               && e.Summary.e_intf_digest = intf_digest ->
            Some e
        | _ -> None)
      keyed
  in
  let changed : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter2
    (fun (_, _, path, _, _) reuse ->
      if reuse = None then Hashtbl.replace changed path ())
    keyed reusable;
  let items =
    List.map2
      (fun (s, intf, path, digest, intf_digest) reuse ->
        match reuse with
        | Some e when not (List.exists (Hashtbl.mem changed) e.Summary.e_deps) ->
            `Reused e
        | _ ->
            (* sequential: compiler-libs' lexer state is global *)
            let u, str = Symtab.parse_source s ~intf in
            `Dirty (u, str, path, digest, intf_digest))
      keyed reusable
  in
  let symtab =
    Symtab.assemble
      (List.map
         (function `Reused e -> e.Summary.e_meta | `Dirty (u, _, _, _, _) -> u)
         items)
  in
  let dirty =
    List.filter_map
      (function
        | uid, `Dirty (_, str, _, digest, intf_digest) ->
            Some (uid, str, digest, intf_digest)
        | _, `Reused _ -> None)
      (List.mapi (fun uid it -> (uid, it)) items)
  in
  let fresh =
    Cpla_util.Pool.parallel_map ~workers
      (fun (uid, str, digest, intf_digest) ->
        (uid, summarize symtab (Symtab.unit symtab uid) str ~digest ~intf_digest))
      (Array.of_list dirty)
  in
  let fresh_tbl : (int, Summary.entry) Hashtbl.t = Hashtbl.create 16 in
  Array.iter (fun (uid, e) -> Hashtbl.replace fresh_tbl uid e) fresh;
  let entries =
    Array.of_list
      (List.mapi
         (fun uid -> function
           | `Reused e -> e
           | `Dirty _ -> Hashtbl.find fresh_tbl uid)
         items)
  in
  let findings = solve_entries symtab entries in
  let cache' =
    Summary.v ~shape
      (Array.to_list (Array.mapi (fun uid e -> (Symtab.path_of symtab uid, e)) entries))
  in
  let files = Array.length entries in
  let summarized = Array.length fresh in
  (cache', findings, { Summary.files; summarized; reused = files - summarized })

let lint_sources ?workers sources =
  let _, findings, _ = lint_incremental ?workers ~cache:Summary.empty sources in
  findings

let lint_string ?(has_mli = true) ~filename contents =
  let path = (Checks.scope_of_path filename).Checks.path in
  let sources =
    { src_path = path; contents; linted = true }
    ::
    (if has_mli && Filename.check_suffix path ".ml" then
       (* the interface exists but is not part of the analysis: satisfies
          [missing-mli] without inventing exports to audit *)
       [ { src_path = path ^ "i"; contents = ""; linted = false } ]
     else [])
  in
  lint_sources sources

(* ---- filesystem ------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec source_files path =
  match Sys.is_directory path with
  | true ->
      Sys.readdir path |> Array.to_list |> List.sort String.compare
      |> List.concat_map (fun entry ->
             if String.length entry > 0 && entry.[0] = '.' then []
             else if String.equal entry "_build" then []
             else source_files (Filename.concat path entry))
  | false ->
      if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli" then
        [ path ]
      else []
  | exception Sys_error _ ->
      (* dangling symlink (readdir lists it, stat fails): keep sources so the
         read failure surfaces as a finding, drop anything else *)
      if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli" then
        [ path ]
      else []

let default_roots = [ "lib"; "bin"; "bench"; "test" ]

let read_sources ?(context = default_roots) paths =
  let files = List.concat_map source_files paths in
  let seen = Hashtbl.create 256 in
  List.iter (fun p -> Hashtbl.replace seen (norm p) ()) files;
  let ctx =
    context
    |> List.filter (fun r -> Sys.file_exists r && Sys.is_directory r)
    |> List.concat_map source_files
    |> List.filter (fun p -> not (Hashtbl.mem seen (norm p)))
  in
  let findings = ref [] in
  let src linted p =
    match read_file p with
    | contents -> Some { src_path = norm p; contents; linted }
    | exception Sys_error msg ->
        if linted then
          findings :=
            Finding.file_level ~file:(norm p) ~rule:"read-error" ~msg :: !findings;
        None
  in
  let sources = List.filter_map (src true) files @ List.filter_map (src false) ctx in
  (sources, List.rev !findings)

let lint_paths ?context ?workers ?cache_file paths =
  let sources, read_findings = read_sources ?context paths in
  let cache =
    match cache_file with Some f -> Summary.load f | None -> Summary.empty
  in
  let cache', findings, stats = lint_incremental ?workers ~cache sources in
  (match cache_file with Some f -> Summary.save f cache' | None -> ());
  (List.sort_uniq Finding.compare (read_findings @ findings), stats)
