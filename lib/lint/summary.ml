(* Persisted per-file summaries for the incremental engine.

   An [entry] is everything phase 2 needs about one compilation unit —
   AST-free metadata, syntactic findings, allow spans, and the four
   analysis fact slices — keyed by the content digests of the [.ml] and
   its optional [.mli].  The cache file is a one-line text header (format
   tag, engine version, rule-set digest) followed by a [Marshal]ed body;
   any mismatch, short read, or corruption degrades to an empty cache — a
   cold run — never an error. *)

type entry = {
  e_digest : string;  (* Digest.string of the .ml contents *)
  e_intf_digest : string option;
  e_meta : Symtab.unit_info;  (* uid is stale; Symtab.assemble reassigns *)
  e_file_allows : (string * Ppxlib.Location.t) list;
  e_allow_spans : (string * Ppxlib.Location.t * Ppxlib.Location.t) list;
  e_local_findings : Finding.t list;
  e_local_uses : (string * Ppxlib.Location.t) list;
  e_cg : Callgraph.unit_facts;
  e_df : Dataflow.unit_facts;
  e_alloc : Alloceffect.unit_facts;
  e_block : Blocking.unit_facts;
  e_deps : string list;
}

type stats = { files : int; summarized : int; reused : int }

type t = { shape : string; entries : (string * entry) list }

let empty = { shape = ""; entries = [] }

let find cache ~shape path =
  if not (String.equal cache.shape shape) then None
  else List.assoc_opt path cache.entries

let v ~shape entries = { shape; entries }

(* ---- persistence ---------------------------------------------------------- *)

(* Bump when the summary format or any analysis semantics change: a stale
   version must force a full rebuild, not a misread. *)
let engine_version = 1

let format_tag = "cpla-lint-cache/1"

let rules_digest =
  lazy (Digest.to_hex (Digest.string (String.concat "," (List.map (fun r -> r.Rule.id) Rule.all))))

let header () =
  Printf.sprintf "%s engine=%d rules=%s\n" format_tag engine_version (Lazy.force rules_digest)

let default_path = "_build/.cpla-lint-cache"

let load path =
  match open_in_bin path with
  | exception Sys_error _ -> empty
  | ic ->
      let cache =
        match
          let line = input_line ic in
          if not (String.equal (line ^ "\n") (header ())) then empty
          else (Marshal.from_channel ic : t)
        with
        | cache -> cache
        | exception e ->
            Cpla_util.Exn.reraise_if_async e;
            empty
      in
      close_in_noerr ic;
      cache

(* Best-effort: the @lint alias runs inside dune's sandbox where the cache
   directory may not be writable; a failed save must never fail the lint. *)
let save path cache =
  try
    let dir = Filename.dirname path in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    output_string oc (header ());
    Marshal.to_channel oc cache [];
    close_out oc;
    Sys.rename tmp path
  with e ->
    Cpla_util.Exn.reraise_if_async e;
    ()
