(** Phase-1 call/reference graph and purity inference.

    {!collect} walks one unit and records, per (pseudo-)function: the
    calls it makes (with argument labels, for [check-not-threaded]), the
    external value references it contains (for [unused-export]), and its
    local impurities — as marshalable, uid-free {!unit_facts} the
    incremental cache persists.  {!build_of_facts} assembles the
    whole-program graph from the per-unit facts (cached or fresh) and runs
    the fixpoint that propagates the determinism-breaking impurity kinds
    through resolved call edges (for [impure-kernel]).

    Pseudo-functions: a named local closure ([let solve f = ...] inside a
    definition) and an anonymous kernel lambda each get their own key, so a
    [parallel_map solve xs] site can be checked against exactly the code
    that will run on worker domains. *)

open Ppxlib

type key = int * string list
(** Unit id plus value path; pseudo-function segments are bracketed
    (["<kernel:3>"], ["<local:solve:1>"]). *)

val mutator_ident : string list -> bool
(** In-place mutators whose first [Nolabel] argument is the structure
    written ([:=], [incr], [Hashtbl.replace], [Array.set], ...). *)

type kind =
  | Io  (** writes to a channel / reads input *)
  | Clock  (** reads wall or CPU time *)
  | Rand  (** draws from [Stdlib.Random]'s ambient state *)
  | Global_mut  (** writes top-level mutable state (Atomic exempt) *)

type witness = Direct of string * Location.t | Via of key * Location.t

type call = {
  callee : Symtab.resolved;
  arg_labels : arg_label list;
  call_loc : Location.t;
  in_loop : bool;  (** lexically inside a [for]/[while] body *)
}

type fn = {
  fn_key : key;
  fn_loc : Location.t;
  fn_params : arg_label list;
  mutable fn_calls : call list;
  mutable fn_imps : (kind * string * Location.t) list;
}

type kernel_site = {
  k_unit : int;
  k_prim : Symtab.primitive;
  k_loc : Location.t;
  k_target : key option;  (** [None] when the kernel could not be resolved *)
}

type unit_facts
(** One unit's marshalable summary slice: its (pseudo-)functions with
    their calls and local impurities, kernel launch sites, cross-unit
    value references and [include]s — all path-symbolic, no uids. *)

type t

val collect : Symtab.t -> Symtab.unit_info -> structure -> unit_facts
(** Walk one unit's AST.  Reads only the shared symtab, so different
    units may be collected on different domains concurrently. *)

val facts_deps : unit_facts -> string list
(** Paths of the units this summary resolved references into — the
    import edges the engine uses to re-summarize dependents of a dirty
    file. *)

val build_of_facts : Symtab.t -> unit_facts array -> t
(** Assemble the graph from per-unit facts, indexed by uid, and run the
    purity fixpoint.  Cold and warm runs share this single code path, so
    hashtable insertion order — and with it every iteration-order-dependent
    result — is a deterministic function of the merged facts. *)

val kinds : t -> key -> (kind * witness) list

val referenced : t -> key -> bool
(** Was this symbol referenced from any {e other} unit? *)

val included : t -> int -> bool
(** Is the whole unit re-exported via [include] somewhere? *)

val fns : t -> fn list

val kernels : t -> kernel_site list
(** [parallel_map] / [Domain.spawn] applications ([Pool.Persistent.submit]
    tasks are isolated jobs, deliberately not audited for purity). *)

val pretty_key : t -> key -> string

val describe_kind : t -> key -> kind -> string option
(** Human-readable impurity witness chain, e.g.
    ["reads the clock: calls Ilp_method.solve at ..., which reads
    Unix.gettimeofday at lib/ilp/solver.ml:60"]. *)
