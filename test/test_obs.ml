(* Observability: monotonic clock, spans, metrics, trace export, and the
   disabled-is-free contract.

   Obs state is global (one switch, per-domain buffers, one registry), so
   every test that enables it must tear down with [teardown] — including on
   failure — or later tests would see stale events. *)

module Obs = Cpla_obs.Obs
module Span = Cpla_obs.Span
module Event = Cpla_obs.Event
module Sink = Cpla_obs.Sink
module Metrics = Cpla_obs.Metrics
module Trace = Cpla_obs.Trace
module Timer = Cpla_util.Timer

let teardown () =
  Obs.set_enabled false;
  Obs.reset ()

let contains haystack needle =
  let n = String.length needle and m = String.length haystack in
  let rec go i = i + n <= m && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let with_obs f =
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect ~finally:teardown f

(* ---- timer ---------------------------------------------------------------- *)

let test_timer_monotonic () =
  let a = Timer.now_ns () in
  let sa = Timer.now_s () in
  (* burn a little time so the clock visibly advances *)
  let junk = ref 0 in
  for i = 0 to 200_000 do
    junk := !junk + i
  done;
  ignore (Sys.opaque_identity !junk);
  let b = Timer.now_ns () in
  let sb = Timer.now_s () in
  Alcotest.(check bool) "now_ns non-decreasing" true (Int64.compare b a >= 0);
  Alcotest.(check bool) "now_s non-decreasing" true (sb >= sa);
  let w = Timer.wall () in
  let e1 = Timer.elapsed_s w in
  let e2 = Timer.elapsed_s w in
  Alcotest.(check bool) "wall elapsed non-negative" true (e1 >= 0.0);
  Alcotest.(check bool) "wall elapsed monotone" true (e2 >= e1)

(* ---- spans ---------------------------------------------------------------- *)

let test_span_nesting () =
  with_obs (fun () ->
      let r =
        Span.with_ ~name:"outer"
          ~args:[ ("k", Event.Int 7) ]
          (fun () ->
            Span.with_ ~name:"inner" (fun () -> ());
            Span.instant ~name:"tick" ();
            42)
      in
      Alcotest.(check int) "span returns body value" 42 r;
      let evs = Sink.drain () in
      let names = List.map (fun (e : Event.t) -> (e.name, e.ph)) evs in
      Alcotest.(check bool) "LIFO nesting order" true
        (names
        = [
            ("outer", Event.Begin);
            ("inner", Event.Begin);
            ("inner", Event.End);
            ("tick", Event.Instant);
            ("outer", Event.End);
          ]);
      let ts = List.map (fun (e : Event.t) -> e.ts_ns) evs in
      Alcotest.(check bool) "timestamps sorted" true (List.sort Int64.compare ts = ts);
      match evs with
      | { Event.args = [ ("k", Event.Int 7) ]; _ } :: _ -> ()
      | _ -> Alcotest.fail "args lost on Begin event")

let test_span_exception () =
  with_obs (fun () ->
      (match Span.with_ ~name:"boom" (fun () -> failwith "no") with
      | _ -> Alcotest.fail "exception swallowed"
      | exception Failure m -> Alcotest.(check string) "re-raised unchanged" "no" m);
      match Sink.drain () with
      | [ { Event.ph = Event.Begin; _ }; { Event.ph = Event.End; args; _ } ] ->
          Alcotest.(check bool) "End carries the exception" true
            (match List.assoc_opt "exn" args with
            | Some (Event.Str s) -> String.length s > 0
            | _ -> false)
      | evs -> Alcotest.failf "unbalanced events (%d)" (List.length evs))

let test_span_balanced_per_domain () =
  (* pool tasks are spanned on the worker domains that execute them *)
  with_obs (fun () ->
      let xs = Array.init 16 (fun i -> i) in
      let ys = Cpla_util.Pool.parallel_map ~workers:2 (fun i -> i * i) xs in
      Alcotest.(check bool) "map result intact" true (ys = Array.map (fun i -> i * i) xs);
      let evs = Sink.drain () in
      let tasks = List.filter (fun (e : Event.t) -> e.name = "pool/task") evs in
      Alcotest.(check int) "one B and one E per task" (2 * Array.length xs)
        (List.length tasks);
      let by_dom = Hashtbl.create 4 in
      List.iter
        (fun (e : Event.t) ->
          let st = try Hashtbl.find by_dom e.dom with Not_found -> [] in
          match e.ph with
          | Event.Begin -> Hashtbl.replace by_dom e.dom (e.name :: st)
          | Event.End -> (
              match st with
              | top :: rest when top = e.name -> Hashtbl.replace by_dom e.dom rest
              | _ -> Alcotest.fail "unbalanced End on a domain track")
          | Event.Instant -> ())
        tasks;
      Hashtbl.iter
        (fun dom st ->
          Alcotest.(check (list string)) (Printf.sprintf "domain %d drained" dom) [] st)
        by_dom;
      Alcotest.(check bool) "tasks ran off the main domain" true
        (List.exists (fun (e : Event.t) -> e.dom <> (Domain.self () :> int)) tasks))

(* ---- disabled is free ------------------------------------------------------ *)

let test_disabled_records_nothing () =
  teardown ();
  Alcotest.(check bool) "switch reads off" false (Obs.enabled ());
  let r = Span.with_ ~name:"ghost" (fun () -> 7) in
  Span.instant ~name:"ghost" ();
  Metrics.incr "ghost";
  Metrics.set "ghost-g" 1.0;
  Metrics.observe "ghost-h" 1.0;
  Alcotest.(check int) "span still runs its body" 7 r;
  Alcotest.(check int) "no events buffered" 0 (List.length (Sink.drain ()));
  Alcotest.(check bool) "no metrics registered" true (Metrics.counter_value "ghost" = None);
  (* the pipeline behaves identically with the switch off: same report *)
  let run () =
    let spec =
      { Cpla_route.Synth.default_spec with Cpla_route.Synth.width = 24; height = 24;
        num_nets = 200; capacity = 8; seed = 11 }
    in
    let graph, nets = Cpla_route.Synth.generate spec in
    let routed = Cpla_route.Router.route_all ~graph nets in
    let asg = Cpla_route.Assignment.create ~graph ~nets ~trees:routed.Cpla_route.Router.trees in
    Cpla_route.Init_assign.run asg;
    let released = Cpla_timing.Critical.select asg ~ratio:0.01 in
    Cpla.Driver.optimize_released asg ~released
  in
  let off = run () in
  let on = with_obs (fun () -> run ()) in
  Alcotest.(check (float 1e-9)) "same avg_tcp with obs on" on.Cpla.Driver.avg_tcp
    off.Cpla.Driver.avg_tcp;
  Alcotest.(check int) "same iteration count" on.Cpla.Driver.iterations
    off.Cpla.Driver.iterations

(* ---- metrics --------------------------------------------------------------- *)

let test_metrics_registry () =
  with_obs (fun () ->
      Metrics.incr "jobs";
      Metrics.incr ~by:4 "jobs";
      Metrics.set "score" 2.5;
      Metrics.observe ~lo:0.0 ~hi:10.0 ~bins:5 "delay" 3.0;
      Metrics.observe "delay" Float.nan;
      Metrics.observe "delay" 99.0;
      Alcotest.(check (option int)) "counter" (Some 5) (Metrics.counter_value "jobs");
      Alcotest.(check (option (float 1e-12))) "gauge" (Some 2.5) (Metrics.gauge_value "score");
      Alcotest.(check (option int)) "kind lookup is checked" None (Metrics.counter_value "score");
      let dump = Metrics.dump () in
      List.iter
        (fun needle ->
          Alcotest.(check bool) (needle ^ " in dump") true (contains dump needle))
        [ "jobs"; "score"; "delay"; "counter"; "gauge"; "histogram"; "nan=1"; "over=1" ];
      Alcotest.(check bool) "kind clash raises" true
        (match Metrics.incr "score" with
        | exception Invalid_argument _ -> true
        | () -> false))

(* ---- trace export ----------------------------------------------------------- *)

let mk ?(args = []) name ph ts dom = { Event.name; ph; ts_ns = ts; dom; args }

let test_trace_json_golden () =
  let evs =
    [
      mk "a" Event.Begin 1000L 0 ~args:[ ("n", Event.Int 3); ("s", Event.Str "x\"y") ];
      mk "b" Event.Begin 1500L 1;
      mk "b" Event.End 2500L 1 ~args:[ ("v", Event.Float 0.5) ];
      mk "a" Event.End 4000L 0;
    ]
  in
  let expected =
    "{\"traceEvents\":[\
     {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"domain 0\"}},\n\
     {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":1,\"args\":{\"name\":\"domain 1\"}},\n\
     {\"name\":\"a\",\"ph\":\"B\",\"ts\":0.000,\"pid\":0,\"tid\":0,\"args\":{\"n\":3,\"s\":\"x\\\"y\"}},\n\
     {\"name\":\"b\",\"ph\":\"B\",\"ts\":0.500,\"pid\":0,\"tid\":1},\n\
     {\"name\":\"b\",\"ph\":\"E\",\"ts\":1.500,\"pid\":0,\"tid\":1,\"args\":{\"v\":0.5}},\n\
     {\"name\":\"a\",\"ph\":\"E\",\"ts\":3.000,\"pid\":0,\"tid\":0}]}\n"
  in
  Alcotest.(check string) "golden trace document" expected (Trace.json evs)

let test_trace_json_degenerate () =
  Alcotest.(check string) "empty trace still a document" "{\"traceEvents\":[]}\n"
    (Trace.json []);
  (* non-finite float args must not produce bare NaN tokens (invalid JSON) *)
  let doc = Trace.json [ mk "x" Event.Instant 0L 0 ~args:[ ("v", Event.Float Float.nan) ] ] in
  Alcotest.(check bool) "nan quoted" true (contains doc "\"nan\"")

let test_trace_roundtrip_from_spans () =
  with_obs (fun () ->
      Span.with_ ~name:"outer" (fun () -> Span.with_ ~name:"inner" (fun () -> ()));
      let doc = Trace.json (Sink.drain ()) in
      (* cheap structural checks: one B and one E per span, wrapper present *)
      let count needle =
        let n = String.length needle and m = String.length doc in
        let c = ref 0 in
        for i = 0 to m - n do
          if String.sub doc i n = needle then incr c
        done;
        !c
      in
      Alcotest.(check int) "two Begin events" 2 (count "\"ph\":\"B\"");
      Alcotest.(check int) "two End events" 2 (count "\"ph\":\"E\"");
      Alcotest.(check bool) "traceEvents wrapper" true (count "\"traceEvents\"" = 1))

let suite =
  [
    Alcotest.test_case "timer monotonic" `Quick test_timer_monotonic;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span exception" `Quick test_span_exception;
    Alcotest.test_case "span per-domain balance" `Quick test_span_balanced_per_domain;
    Alcotest.test_case "disabled records nothing" `Quick test_disabled_records_nothing;
    Alcotest.test_case "metrics registry" `Quick test_metrics_registry;
    Alcotest.test_case "trace json golden" `Quick test_trace_json_golden;
    Alcotest.test_case "trace json degenerate" `Quick test_trace_json_degenerate;
    Alcotest.test_case "trace roundtrip from spans" `Quick test_trace_roundtrip_from_spans;
  ]
