open Cpla_net

(* The daemon's wire layer, without sockets: frame encode/decode under
   arbitrary read splits, JSON round-trips (including the %.17g float
   contract behind the byte-identical daemon results), typed protocol
   message round-trips, and the token-bucket quota arithmetic. *)

(* ---- frame: property tests ------------------------------------------------ *)

(* Feed the encoded stream to the decoder in arbitrary chunk sizes —
   single bytes, split headers, several frames per read — and require the
   original payload sequence back. *)
let frame_split_roundtrip =
  QCheck.Test.make ~name:"frame: round-trip under arbitrary read splits" ~count:100
    QCheck.(
      pair
        (small_list (string_gen_of_size (Gen.int_range 0 200) Gen.char))
        (small_list (int_range 1 64)))
    (fun (payloads, splits) ->
      let stream =
        String.concat "" (List.map (fun p -> Bytes.to_string (Frame.encode p)) payloads)
      in
      let dec = Frame.decoder () in
      let splits = if splits = [] then [ 7 ] else splits in
      let n = String.length stream in
      let rec feed off cuts =
        if off < n then begin
          let len, rest =
            match cuts with [] -> (n - off, []) | c :: tl -> (min c (n - off), tl @ [ c ])
          in
          Frame.feed dec (Bytes.of_string stream) ~off ~len;
          feed (off + len) rest
        end
      in
      feed 0 splits;
      let rec drain acc =
        match Frame.next dec with
        | Some (Frame.Frame p) -> drain (p :: acc)
        | Some (Frame.Oversized _) -> drain acc
        | None -> List.rev acc
      in
      drain [] = payloads && Frame.buffered dec = 0)

let test_frame_limits () =
  (* a frame exactly at the limit decodes; one byte over yields Oversized,
     and the decoder resynchronises on the frame that follows *)
  let max_frame = 256 in
  let dec = Frame.decoder ~max_frame () in
  let at_limit = String.make max_frame 'a' in
  Frame.feed_string dec (Bytes.to_string (Frame.encode at_limit));
  (match Frame.next dec with
  | Some (Frame.Frame p) -> Alcotest.(check int) "limit frame size" max_frame (String.length p)
  | _ -> Alcotest.fail "frame at the limit must decode");
  let over = String.make (max_frame + 1) 'b' in
  Frame.feed_string dec (Bytes.to_string (Frame.encode over));
  Frame.feed_string dec (Bytes.to_string (Frame.encode "after"));
  (match Frame.next dec with
  | Some (Frame.Oversized n) -> Alcotest.(check int) "announced length" (max_frame + 1) n
  | _ -> Alcotest.fail "oversized frame must be reported");
  (match Frame.next dec with
  | Some (Frame.Frame p) -> Alcotest.(check string) "resync after oversized" "after" p
  | _ -> Alcotest.fail "decoder must resynchronise after an oversized frame")

let test_frame_truncated () =
  (* a truncated header or payload is not a frame yet — and not an error *)
  let dec = Frame.decoder () in
  let encoded = Bytes.to_string (Frame.encode "hello") in
  Frame.feed_string dec (String.sub encoded 0 2);
  Alcotest.(check bool) "header half fed" true (Frame.next dec = None);
  Frame.feed_string dec (String.sub encoded 2 4);
  Alcotest.(check bool) "payload partial" true (Frame.next dec = None);
  Frame.feed_string dec (String.sub encoded 6 (String.length encoded - 6));
  match Frame.next dec with
  | Some (Frame.Frame p) -> Alcotest.(check string) "completes" "hello" p
  | _ -> Alcotest.fail "completed frame must decode"

(* ---- json ------------------------------------------------------------------ *)

let json_gen =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      let scalar =
        oneof
          [
            return Json.Null;
            map (fun b -> Json.Bool b) bool;
            map (fun f -> Json.Num f) (float_range (-1e9) 1e9);
            map (fun i -> Json.Num (float_of_int i)) (int_range (-1000000) 1000000);
            map (fun s -> Json.Str s) (string_size ~gen:char (int_range 0 20));
          ]
      in
      if n <= 0 then scalar
      else
        frequency
          [
            (3, scalar);
            (1, map (fun l -> Json.Arr l) (list_size (int_range 0 4) (self (n / 2))));
            ( 1,
              map
                (fun kvs -> Json.Obj kvs)
                (list_size (int_range 0 4)
                   (pair (string_size ~gen:(char_range 'a' 'z') (int_range 1 8)) (self (n / 2))))
            );
          ])

let json_roundtrip =
  QCheck.Test.make ~name:"json: parse (to_string v) = v" ~count:200
    (QCheck.make ~print:Json.to_string json_gen)
    (fun v ->
      match Json.parse (Json.to_string v) with
      | Ok v' -> v' = v
      | Error _ -> false)

let float_roundtrip =
  QCheck.Test.make ~name:"json: floats round-trip bit-exactly (%.17g)" ~count:500
    QCheck.float (fun f ->
      QCheck.assume (Float.is_finite f);
      match Json.parse (Json.to_string (Json.Num f)) with
      | Ok (Json.Num f') -> Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float f')
      | _ -> false)

let test_json_malformed () =
  let bad s =
    match Json.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted malformed JSON %S" s
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":1,}";
  bad "{\"a\" 1}";
  bad "\"unterminated";
  bad "\"bad \\x escape\"";
  bad "nul";
  bad "1 2";
  (* trailing garbage *)
  bad "--5";
  (* depth bomb: past the decoder's nesting limit *)
  bad (String.make 100 '[' ^ String.make 100 ']');
  (* escapes and surrogate pairs decode *)
  (match Json.parse {|"a\"b\\cA😀"|} with
  | Ok (Json.Str s) -> Alcotest.(check string) "escapes" "a\"b\\cA\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "escape parse failed")

(* ---- protocol round-trips -------------------------------------------------- *)

let test_protocol_requests () =
  let roundtrip r =
    match Protocol.request_of_json (Protocol.request_to_json r) with
    | Ok r' -> Alcotest.(check bool) "request round-trip" true (r = r')
    | Error e -> Alcotest.failf "request failed to round-trip: %s" e
  in
  roundtrip { Protocol.id = 1; trace = Some "t-1"; req = Protocol.Submit { spec_line = "adaptec1 ratio=0.01" } };
  roundtrip { Protocol.id = 2; trace = None; req = Protocol.Cancel { job = 7 } };
  roundtrip { Protocol.id = 3; trace = None; req = Protocol.Stats };
  roundtrip { Protocol.id = 0; trace = Some ""; req = Protocol.Ping };
  (match Protocol.request_of_json (Json.Obj [ ("id", Json.Num 1.0) ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "method-less request must be rejected");
  match
    Protocol.request_of_json
      (Json.Obj [ ("id", Json.Num 1.0); ("method", Json.Str "frobnicate") ])
  with
  | Error msg ->
      Alcotest.(check bool) "names the unknown method" true
        (String.length msg >= 14 && String.sub msg 0 14 = "unknown method")
  | Ok _ -> Alcotest.fail "unknown method must be rejected"

let test_protocol_responses () =
  let roundtrip r =
    match Protocol.response_of_json (Protocol.response_to_json r) with
    | Ok r' -> Alcotest.(check bool) "response round-trip" true (r = r')
    | Error e -> Alcotest.failf "response failed to round-trip: %s" e
  in
  roundtrip (Protocol.Result { id = 1; trace = Some "t"; resp = Protocol.Accepted { job = 3 } });
  roundtrip (Protocol.Result { id = 2; trace = None; resp = Protocol.Cancel_r { job = 3; won = false } });
  roundtrip
    (Protocol.Result
       {
         id = 3;
         trace = None;
         resp =
           Protocol.Stats_r
             {
               pending = 4;
               running = 2;
               settled = 9;
               shed = 1;
               draining = true;
               cache_hits = 7;
               cache_misses = 12;
             };
       });
  (* stats from a pre-cache server omit the counter fields; they must
     decode as 0, not fail *)
  (match
     Protocol.response_of_json
       (Json.Obj
          [
            ("id", Json.Num 7.0);
            ( "result",
              Json.Obj
                [
                  ("pending", Json.Num 1.0);
                  ("running", Json.Num 0.0);
                  ("settled", Json.Num 2.0);
                  ("shed", Json.Num 0.0);
                  ("draining", Json.Bool false);
                ] );
          ])
   with
  | Ok
      (Protocol.Result
         { resp = Protocol.Stats_r { cache_hits = 0; cache_misses = 0; _ }; _ }) ->
      ()
  | Ok _ -> Alcotest.fail "stats without cache fields decoded wrong"
  | Error e -> Alcotest.failf "stats without cache fields failed to decode: %s" e);
  roundtrip (Protocol.Result { id = 4; trace = None; resp = Protocol.Pong });
  List.iter
    (fun reason ->
      roundtrip
        (Protocol.Error { id = Some 5; code = Protocol.Shed reason; message = "busy" }))
    [ Protocol.Queue_full; Protocol.Cost_bound; Protocol.Quota; Protocol.Draining ];
  roundtrip (Protocol.Error { id = None; code = Protocol.Bad_request; message = "invalid JSON" });
  roundtrip (Protocol.Error { id = Some 6; code = Protocol.Unknown_method; message = "?" })

let test_protocol_events () =
  let metrics =
    {
      Cpla_serve.Job.wirelength = 44719;
      avg_tcp = 9054.765625;
      max_tcp = 14178.300000000001;
      via_overflow = 11538;
      edge_overflow = 544;
      released = 16;
      wall_s = 4.5158875139995871;
    }
  in
  let spec = List.hd (Result.get_ok (Cpla_serve.Job.parse_manifest "adaptec1 deadline=2.5")) in
  List.iter
    (fun session_ev ->
      let ev = Protocol.event_of ~job:42 ~trace:"t-9" session_ev in
      match Protocol.event_of_json (Protocol.event_to_json ev) with
      | Ok ev' -> Alcotest.(check bool) "event round-trip" true (ev = ev')
      | Error e -> Alcotest.failf "event failed to round-trip: %s" e)
    [
      Cpla_serve.Session.Submitted spec;
      Cpla_serve.Session.Started spec;
      Cpla_serve.Session.Progress (spec, 32);
      Cpla_serve.Session.Finished (spec, Cpla_serve.Job.Done metrics);
      Cpla_serve.Session.Finished
        (spec, Cpla_serve.Job.Failed { error = "audit: 3"; partial = Some metrics });
      Cpla_serve.Session.Finished
        (spec, Cpla_serve.Job.Timed_out { limit_s = 2.5; partial = None });
      Cpla_serve.Session.Finished (spec, Cpla_serve.Job.Cancelled { partial = Some metrics });
    ];
  (* terminal reconstruction is bit-exact: the daemon's byte-identical
     contract rides on this *)
  let ev =
    Protocol.event_of ~job:42 (Cpla_serve.Session.Finished (spec, Cpla_serve.Job.Done metrics))
  in
  (match Result.bind (Json.parse (Json.to_string (Protocol.event_to_json ev)))
           Protocol.event_of_json
  with
  | Ok wire -> (
      match Protocol.terminal_of_event wire with
      | Ok (Cpla_serve.Job.Done m) ->
          Alcotest.(check bool) "metrics bit-exact over the wire" true
            (Cpla_serve.Job.same_result metrics m
            && Int64.equal (Int64.bits_of_float metrics.Cpla_serve.Job.avg_tcp)
                 (Int64.bits_of_float m.Cpla_serve.Job.avg_tcp))
      | _ -> Alcotest.fail "terminal reconstruction failed")
  | Error e -> Alcotest.failf "wire parse failed: %s" e);
  match Protocol.terminal_of_event (Protocol.event_of ~job:1 (Cpla_serve.Session.Started spec)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-terminal event must not reconstruct a terminal"

let test_incoming_classify () =
  let ev =
    { Protocol.job = 1; state = "started"; progress = None; metrics = None; detail = None; ev_trace = None }
  in
  (match Protocol.incoming_of_json (Protocol.event_to_json ev) with
  | Ok (Protocol.Ev _) -> ()
  | _ -> Alcotest.fail "event classifies as Ev");
  match
    Protocol.incoming_of_json
      (Protocol.response_to_json (Protocol.Result { id = 1; trace = None; resp = Protocol.Pong }))
  with
  | Ok (Protocol.Resp _) -> ()
  | _ -> Alcotest.fail "response classifies as Resp"

(* ---- quota ----------------------------------------------------------------- *)

let test_quota () =
  let q = Quota.create ~rate:1.0 ~burst:2.0 ~now:0.0 in
  Alcotest.(check bool) "burst 1" true (Quota.take q ~now:0.0 ~cost:1.0);
  Alcotest.(check bool) "burst 2" true (Quota.take q ~now:0.0 ~cost:1.0);
  Alcotest.(check bool) "bucket empty" false (Quota.take q ~now:0.0 ~cost:1.0);
  (* refills at 1 token/s; a failed take leaves the bucket unchanged *)
  Alcotest.(check bool) "not yet refilled" false (Quota.take q ~now:0.5 ~cost:1.0);
  Alcotest.(check bool) "refilled after 1s" true (Quota.take q ~now:1.0 ~cost:1.0);
  (* accumulation caps at burst, and time moving backwards does not refill *)
  Alcotest.(check (float 1e-9)) "capped at burst" 2.0 (Quota.available q ~now:100.0);
  Alcotest.(check bool) "cap take 1" true (Quota.take q ~now:100.0 ~cost:1.0);
  Alcotest.(check bool) "cap take 2" true (Quota.take q ~now:100.0 ~cost:1.0);
  Alcotest.(check bool) "cap exhausted" false (Quota.take q ~now:100.0 ~cost:1.0);
  Alcotest.(check bool) "clock stepping back is a no-op" false
    (Quota.take q ~now:50.0 ~cost:1.0);
  (match Quota.create ~rate:0.0 ~burst:1.0 ~now:0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero rate must be rejected");
  match Quota.create ~rate:1.0 ~burst:nan ~now:0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "nan burst must be rejected"

let suite =
  [
    QCheck_alcotest.to_alcotest frame_split_roundtrip;
    Alcotest.test_case "frame: limit, oversized report, resync" `Quick test_frame_limits;
    Alcotest.test_case "frame: truncated input is not an error" `Quick test_frame_truncated;
    QCheck_alcotest.to_alcotest json_roundtrip;
    QCheck_alcotest.to_alcotest float_roundtrip;
    Alcotest.test_case "json: malformed inputs rejected, escapes decode" `Quick
      test_json_malformed;
    Alcotest.test_case "protocol: request round-trips" `Quick test_protocol_requests;
    Alcotest.test_case "protocol: response round-trips" `Quick test_protocol_responses;
    Alcotest.test_case "protocol: events and terminal reconstruction" `Quick
      test_protocol_events;
    Alcotest.test_case "protocol: incoming classification" `Quick test_incoming_classify;
    Alcotest.test_case "quota: token-bucket arithmetic" `Quick test_quota;
  ]
