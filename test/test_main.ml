let () =
  Alcotest.run "cpla"
    [
      ("util", Test_util.suite);
      ("obs", Test_obs.suite);
      ("numeric", Test_numeric.suite);
      ("numeric-props", Test_numeric_props.suite);
      ("ilp", Test_ilp.suite);
      ("sdp", Test_sdp.suite);
      ("grid", Test_grid.suite);
      ("route", Test_route.suite);
      ("assignment", Test_assignment.suite);
      ("timing", Test_timing.suite);
      ("timing-incremental", Test_timing_incremental.suite);
      ("pool", Test_pool.suite);
      ("serve", Test_serve.suite);
      ("net", Test_net.suite);
      ("daemon", Test_daemon.suite);
      ("tila", Test_tila.suite);
      ("batch", Test_batch.suite);
      ("cpla", Test_cpla.suite);
      ("driver-incremental", Test_driver_incremental.suite);
      ("integration", Test_integration.suite);
      ("extensions", Test_extensions.suite);
      ("verify", Test_verify.suite);
      ("expt", Test_expt.suite);
      ("route-edge", Test_route_edge.suite);
      ("misc", Test_misc.suite);
      ("steiner", Test_steiner.suite);
      ("lint", Test_lint.suite);
      ("lint-semantic", Test_lint_semantic.suite);
      ("lint-incremental", Test_lint_incremental.suite);
    ]
