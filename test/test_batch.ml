(* Batched-kernel engine invariants: solver results are independent of
   workspace reuse (the per-domain batching contract), the simplex fixes
   fast path equals the dense appended-rows construction it replaced, and
   the structure-of-arrays kernels stay within their allocation budget. *)

open Cpla_numeric
open Cpla_sdp

let rng_seed = 20160607

(* ---- random problem generators -------------------------------------------- *)

(* Assignment-style SDP (the partition workload shape): [nvars] segments
   with [k] candidates each, random diagonal costs, a few off-diagonal
   couplings, and one sum-to-one constraint per segment. *)
let random_sdp rng ~nvars ~k =
  let dim = nvars * k in
  let e i j v = { Problem.i; j; v } in
  let cost = ref [] in
  for d = 0 to dim - 1 do
    cost := e d d (Cpla_util.Rng.float rng 10.0) :: !cost
  done;
  for _ = 1 to nvars do
    let i = Cpla_util.Rng.int rng dim and j = Cpla_util.Rng.int rng dim in
    let lo = min i j and hi = max i j in
    if lo <> hi then cost := e lo hi (Cpla_util.Rng.float rng 2.0 -. 1.0) :: !cost
  done;
  let constraints =
    List.init nvars (fun vi ->
        {
          Problem.terms = List.init k (fun ci -> e ((vi * k) + ci) ((vi * k) + ci) 1.0);
          b = 1.0;
        })
  in
  Problem.create ~dim ~cost:(List.rev !cost) ~constraints

let sdp_options = { Solver.default_options with Solver.max_outer = 4; inner_iters = 40 }

let solve_sdp ?ws p =
  let r = Solver.solve ~options:sdp_options ?ws p in
  (r.Solver.x_diag, r.Solver.objective, r.Solver.max_violation, r.Solver.outer_rounds)

(* Bounded random LP: box rows keep it feasible and bounded whatever the
   signs drawn for the objective and the coupling rows. *)
let random_lp rng ~n ~m =
  let objective = Array.init n (fun _ -> Cpla_util.Rng.float rng 4.0 -. 2.0) in
  let coupling =
    List.init m (fun _ ->
        let coeffs = Array.init n (fun _ -> Cpla_util.Rng.float rng 2.0 -. 1.0) in
        let rel = Cpla_util.Rng.choose rng [| Simplex.Le; Simplex.Ge |] in
        let b =
          match rel with
          | Simplex.Le -> Cpla_util.Rng.float rng 4.0
          | _ -> -.Cpla_util.Rng.float rng 4.0
        in
        (coeffs, rel, b))
  in
  let box =
    List.init n (fun i ->
        let row = Array.make n 0.0 in
        row.(i) <- 1.0;
        (row, Simplex.Le, 1.0 +. Cpla_util.Rng.float rng 3.0))
  in
  { Simplex.objective; rows = Array.of_list (coupling @ box) }

(* Random 0/1 set-partition-style model: groups of binaries that must sum
   to one, random positive costs — always feasible, small enough that
   branch-and-bound terminates well inside its budgets. *)
let random_ilp rng ~groups ~k =
  let n = groups * k in
  let objective = Array.init n (fun _ -> Cpla_util.Rng.float rng 10.0) in
  let rows =
    List.init groups (fun g ->
        let row = Array.make n 0.0 in
        for ci = 0 to k - 1 do
          row.((g * k) + ci) <- 1.0
        done;
        (row, Simplex.Eq, 1.0))
  in
  let binary = Array.make n true in
  Cpla_ilp.Model.create ~objective ~rows ~binary

(* ---- workspace-reuse ≡ fresh-workspace properties -------------------------- *)

let check_floats name a b =
  Alcotest.(check (array (float 0.0))) name b a

(* One workspace carried across every size bucket, smallest to largest and
   back down (so reuse hits both the growth and the oversized-buffer
   paths), must reproduce the fresh-workspace solve exactly. *)
let test_sdp_ws_reuse () =
  let rng = Cpla_util.Rng.create rng_seed in
  let shapes = [ (1, 2); (2, 2); (3, 3); (5, 4); (2, 3); (1, 4) ] in
  let problems = List.map (fun (nvars, k) -> random_sdp rng ~nvars ~k) shapes in
  let ws = Solver.ws_create () in
  List.iter
    (fun p ->
      let xd, obj, viol, rounds = solve_sdp ~ws p in
      let xd', obj', viol', rounds' = solve_sdp p in
      check_floats "x_diag bitwise" xd xd';
      Alcotest.(check (float 0.0)) "objective bitwise" obj' obj;
      Alcotest.(check (float 0.0)) "violation bitwise" viol' viol;
      Alcotest.(check int) "outer rounds" rounds' rounds)
    problems

let status_testable =
  let pp ppf (s : Simplex.status) =
    match s with
    | Simplex.Optimal sol ->
        Format.fprintf ppf "Optimal(obj=%.17g, iters=%d)" sol.Simplex.objective
          sol.Simplex.iterations
    | Simplex.Infeasible -> Format.fprintf ppf "Infeasible"
    | Simplex.Unbounded -> Format.fprintf ppf "Unbounded"
    | Simplex.Iteration_limit -> Format.fprintf ppf "Iteration_limit"
  in
  let eq (a : Simplex.status) (b : Simplex.status) =
    match (a, b) with
    | Simplex.Optimal sa, Simplex.Optimal sb ->
        sa.Simplex.x = sb.Simplex.x
        && sa.Simplex.objective = sb.Simplex.objective
        && sa.Simplex.iterations = sb.Simplex.iterations
    | a, b -> a = b
  in
  Alcotest.testable pp eq

let test_simplex_ws_reuse () =
  let rng = Cpla_util.Rng.create (rng_seed + 1) in
  let ws = Simplex.ws_create () in
  for _ = 1 to 40 do
    let n = Cpla_util.Rng.int_in rng 2 8 and m = Cpla_util.Rng.int_in rng 1 6 in
    let p = random_lp rng ~n ~m in
    Alcotest.(check status_testable)
      "ws solve bitwise" (Simplex.solve p)
      (Simplex.solve_ws ws p)
  done

(* ~fixes must be exactly the dense appended-Eq-rows construction the
   branch-and-bound used before the tableau went workspace-resident. *)
let test_simplex_fixes () =
  let rng = Cpla_util.Rng.create (rng_seed + 2) in
  let ws = Simplex.ws_create () in
  for _ = 1 to 40 do
    let n = Cpla_util.Rng.int_in rng 2 6 and m = Cpla_util.Rng.int_in rng 1 4 in
    let p = random_lp rng ~n ~m in
    let nfix = Cpla_util.Rng.int_in rng 1 (min 2 n) in
    let fixes =
      List.init nfix (fun _ ->
          (Cpla_util.Rng.int rng n, float_of_int (Cpla_util.Rng.int rng 2)))
    in
    let appended =
      {
        p with
        Simplex.rows =
          Array.append p.Simplex.rows
            (Array.of_list
               (List.map
                  (fun (i, v) ->
                    let row = Array.make n 0.0 in
                    row.(i) <- 1.0;
                    (row, Simplex.Eq, v))
                  fixes));
      }
    in
    Alcotest.(check status_testable)
      "fixes bitwise" (Simplex.solve appended)
      (Simplex.solve_ws ws ~fixes p)
  done

let outcome_testable =
  let pp ppf (o : Cpla_ilp.Solver.outcome) =
    Format.fprintf ppf "obj=%.17g nodes=%d proven=%b" o.Cpla_ilp.Solver.objective
      o.Cpla_ilp.Solver.nodes_explored o.Cpla_ilp.Solver.proven_optimal
  in
  let eq (a : Cpla_ilp.Solver.outcome) (b : Cpla_ilp.Solver.outcome) =
    a.Cpla_ilp.Solver.x = b.Cpla_ilp.Solver.x
    && a.Cpla_ilp.Solver.objective = b.Cpla_ilp.Solver.objective
    && a.Cpla_ilp.Solver.proven_optimal = b.Cpla_ilp.Solver.proven_optimal
    && a.Cpla_ilp.Solver.nodes_explored = b.Cpla_ilp.Solver.nodes_explored
  in
  Alcotest.testable pp eq

let test_ilp_ws_reuse () =
  let rng = Cpla_util.Rng.create (rng_seed + 3) in
  let ws = Cpla_ilp.Solver.ws_create () in
  for _ = 1 to 15 do
    let groups = Cpla_util.Rng.int_in rng 1 3 and k = Cpla_util.Rng.int_in rng 2 3 in
    let model = random_ilp rng ~groups ~k in
    Alcotest.(check (option outcome_testable))
      "ws branch-and-bound bitwise"
      (Cpla_ilp.Solver.solve model)
      (Cpla_ilp.Solver.solve ~ws model)
  done

(* ---- allocation regression -------------------------------------------------- *)

(* Per-solve allocation of the SoA kernels on a warmed workspace.  Without
   flambda every cross-function float return still boxes (2-3 words per
   call), so "zero allocation in the inner loops" shows up as a small
   per-solve budget that scales with iteration count — nothing like the
   per-element vectors, cons lists and tableau copies the record-based
   solvers allocated.  The bounds are ~5x the measured values and ~50x
   under the old cost, so a reintroduced per-element allocation trips
   them immediately. *)
let bytes_per_run f ~runs =
  f ();
  f ();
  (* warm: workspace growth and any lazy state *)
  let before = Gc.allocated_bytes () in
  for _ = 1 to runs do
    f ()
  done;
  (Gc.allocated_bytes () -. before) /. float_of_int runs

let test_sdp_alloc_budget () =
  let rng = Cpla_util.Rng.create (rng_seed + 4) in
  let p = random_sdp rng ~nvars:4 ~k:3 in
  let opts =
    {
      Kernel.max_outer = sdp_options.Solver.max_outer;
      inner_iters = sdp_options.Solver.inner_iters;
      sigma0 = sdp_options.Solver.sigma0;
      sigma_growth = sdp_options.Solver.sigma_growth;
      feas_tol = sdp_options.Solver.feas_tol;
      seed = sdp_options.Solver.seed;
    }
  in
  let compiled = Kernel.compile ~rank:sdp_options.Solver.rank p in
  let dim, _ = Kernel.dims compiled in
  let ws = Kernel.ws_create () in
  let x_diag = Array.make dim 0.0 in
  let per_run =
    bytes_per_run ~runs:20 (fun () -> Kernel.solve_into ws compiled ~options:opts ~x_diag)
  in
  Alcotest.(check bool)
    (Printf.sprintf "sdp solve_into allocates %.0f B/run (budget 262144)" per_run)
    true (per_run < 262144.0)

let test_simplex_alloc_budget () =
  let rng = Cpla_util.Rng.create (rng_seed + 5) in
  let p = random_lp rng ~n:8 ~m:6 in
  let ws = Simplex.ws_create () in
  let per_run = bytes_per_run ~runs:50 (fun () -> ignore (Simplex.solve_ws ws p)) in
  Alcotest.(check bool)
    (Printf.sprintf "simplex solve_ws allocates %.0f B/run (budget 16384)" per_run)
    true (per_run < 16384.0)

let test_vec_alloc_budget () =
  let n = 512 in
  let x = Array.init n (fun i -> float_of_int i *. 0.5) in
  let y = Array.init n (fun i -> float_of_int (n - i)) in
  let dst = Array.make n 0.0 in
  let sink = ref 0.0 in
  let per_run =
    bytes_per_run ~runs:100 (fun () ->
        sink := !sink +. Vec.dot_n n x y;
        sink := !sink +. Vec.norm_inf_n n x;
        Vec.axpy_n ~alpha:0.5 n x y;
        Vec.scale_n 0.999 n y;
        Vec.copy_n n x dst;
        Vec.fill_n n dst 0.0;
        Vec.sub_n n x y dst)
  in
  Alcotest.(check bool)
    (Printf.sprintf "vec _n ops allocate %.0f B/run (budget 512)" per_run)
    true (per_run < 512.0)

let test_lbfgs_alloc_budget () =
  (* strictly convex quadratic; the evaluator writes into caller storage so
     a warmed solve allocates only boxed float returns and loop refs *)
  let n = 32 in
  let target = Array.init n (fun i -> float_of_int (i mod 7) -. 3.0) in
  let ws = Lbfgs.Ws.create ~memory:6 () in
  let fx = Lbfgs.Ws.fx_out ws in
  let eval v grad =
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      let d = v.(i) -. target.(i) in
      acc := !acc +. (d *. d);
      grad.(i) <- 2.0 *. d
    done;
    fx.(0) <- !acc
  in
  let x = Array.make n 0.0 in
  let per_run =
    bytes_per_run ~runs:20 (fun () ->
        Array.fill x 0 n 0.0;
        Lbfgs.Ws.minimize ws ~n ~max_iter:50 ~grad_tol:1e-8 ~eval x)
  in
  Alcotest.(check bool)
    (Printf.sprintf "lbfgs ws minimize allocates %.0f B/run (budget 65536)" per_run)
    true (per_run < 65536.0)

let test_frame_alloc_budget () =
  (* per decoded frame: the payload string, the [Frame] block and the
     [Some] cell — the handed-to-caller values — and nothing else *)
  let payload = String.make 48 'x' in
  let wire = Bytes.to_string (Cpla_net.Frame.encode payload) in
  let burst = String.concat "" (List.init 16 (fun _ -> wire)) in
  let dec = Cpla_net.Frame.decoder () in
  let drain () =
    let rec go n =
      match Cpla_net.Frame.next dec with
      | Some (Cpla_net.Frame.Frame _) -> go (n + 1)
      | Some (Cpla_net.Frame.Oversized _) -> go n
      | None -> n
    in
    go 0
  in
  let per_run =
    bytes_per_run ~runs:100 (fun () ->
        Cpla_net.Frame.feed_string dec burst;
        if drain () <> 16 then failwith "frame budget: short decode")
  in
  (* 16 frames/run; ~150 B of sanctioned output per frame, budget ~2x *)
  Alcotest.(check bool)
    (Printf.sprintf "frame decode allocates %.0f B/run (budget 8192)" per_run)
    true (per_run < 8192.0)

(* ---- static/dynamic agreement ----------------------------------------------- *)

(* Every [@@cpla.zero_alloc] annotation in the tree must be covered by a
   dynamic [Gc.allocated_bytes] budget above, and vice versa: this census
   pins the per-file annotation counts so adding or removing an annotation
   without updating the corresponding budget test fails here.  The static
   verdict (cpla-lint's alloc-in-kernel pass, enforced at 0 findings by the
   @lint alias) and the dynamic budgets then agree on the same set of
   functions.  Runs against the source copies dune places next to the test
   binary; skipped when they are absent (e.g. installed-package runs). *)
let test_zero_alloc_census () =
  let root = "../lib" in
  if not (Sys.file_exists root && Sys.is_directory root) then ()
  else begin
    let count_in path =
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      let needle = "[@@cpla.zero_alloc]" in
      let n = String.length needle in
      let rec go i acc =
        if i + n > String.length s then acc
        else if String.sub s i n = needle then go (i + n) (acc + 1)
        else go (i + 1) acc
      in
      go 0 0
    in
    let expected =
      [
        ("numeric/vec.ml", 7);
        ("numeric/lbfgs.ml", 3);
        ("numeric/simplex.ml", 3);
        ("sdp/kernel.ml", 1);
        ("net/frame.ml", 3);
      ]
    in
    List.iter
      (fun (rel, n) ->
        let path = Filename.concat root rel in
        Alcotest.(check int)
          (Printf.sprintf "zero_alloc annotations in %s" rel)
          n (count_in path))
      expected;
    (* and no annotated file outside the census *)
    let rec walk dir acc =
      Array.fold_left
        (fun acc name ->
          let p = Filename.concat dir name in
          if Sys.is_directory p then walk p acc
          else if Filename.check_suffix name ".ml" && count_in p > 0 then p :: acc
          else acc)
        acc (Sys.readdir dir)
    in
    let annotated = List.sort compare (walk root []) in
    let expected_files =
      List.sort compare (List.map (fun (rel, _) -> Filename.concat root rel) expected)
    in
    Alcotest.(check (list string)) "annotated files all have budget tests"
      expected_files annotated
  end

let suite =
  [
    Alcotest.test_case "sdp: ws reuse bitwise across buckets" `Quick test_sdp_ws_reuse;
    Alcotest.test_case "simplex: ws reuse bitwise" `Quick test_simplex_ws_reuse;
    Alcotest.test_case "simplex: fixes = appended rows" `Quick test_simplex_fixes;
    Alcotest.test_case "ilp: ws reuse bitwise" `Quick test_ilp_ws_reuse;
    Alcotest.test_case "sdp kernel allocation budget" `Quick test_sdp_alloc_budget;
    Alcotest.test_case "simplex allocation budget" `Quick test_simplex_alloc_budget;
    Alcotest.test_case "vec prefix-op allocation budget" `Quick test_vec_alloc_budget;
    Alcotest.test_case "lbfgs ws allocation budget" `Quick test_lbfgs_alloc_budget;
    Alcotest.test_case "frame decode allocation budget" `Quick test_frame_alloc_budget;
    Alcotest.test_case "zero_alloc census: static = dynamic" `Quick test_zero_alloc_census;
  ]
