open Cpla_util

(* Pool.parallel_map carries the parallel timing refresh: its ordering,
   failure and fast-path contracts get dedicated coverage here. *)

let square i = i * i

let test_order_determinism () =
  let xs = Array.init 257 (fun i -> i) in
  let expected = Array.map square xs in
  List.iter
    (fun workers ->
      let got = Pool.parallel_map ~workers square xs in
      Alcotest.(check (array int))
        (Printf.sprintf "results indexed by input order (workers=%d)" workers)
        expected got)
    [ 1; 2; 3; 4; 8 ]

let test_uneven_work_still_ordered () =
  (* items deliberately unbalanced so domains finish out of order *)
  let xs = Array.init 64 (fun i -> i) in
  let f i =
    let spin = if i mod 7 = 0 then 20_000 else 10 in
    let acc = ref 0 in
    for k = 1 to spin do
      acc := (!acc + (i * k)) land 0xFFFF
    done;
    (i, !acc)
  in
  let expected = Array.map f xs in
  let got = Pool.parallel_map ~workers:4 f xs in
  Alcotest.(check bool) "deterministic under imbalance" true (expected = got)

exception Boom of int

let test_worker_failure_propagates () =
  let xs = Array.init 50 (fun i -> i) in
  let f i = if i = 31 then raise (Boom i) else i in
  let raised =
    match Pool.parallel_map ~workers:4 f xs with
    | _ -> None
    | exception Pool.Worker_failure e -> Some e
  in
  match raised with
  | Some (Boom 31) -> ()
  | Some e -> Alcotest.failf "wrong payload: %s" (Printexc.to_string e)
  | None -> Alcotest.fail "expected Worker_failure"

let test_sequential_fast_path () =
  (* workers <= 1 must not spawn domains: side effects happen in order, in
     the calling domain, and exceptions surface raw (not wrapped). *)
  let log = ref [] in
  let f i =
    log := i :: !log;
    i + 1
  in
  let xs = [| 5; 6; 7 |] in
  let got = Pool.parallel_map ~workers:1 f xs in
  Alcotest.(check (array int)) "mapped" [| 6; 7; 8 |] got;
  Alcotest.(check (list int)) "in-order, in-domain" [ 7; 6; 5 ] !log;
  let raw =
    match Pool.parallel_map ~workers:0 (fun _ -> raise (Boom 0)) xs with
    | _ -> false
    | exception Boom 0 -> true
    (* a wrapped exception here would mean the sequential path took the
       parallel contract; exactly that regression is what this guards *)
    | exception Pool.Worker_failure _ -> false
  in
  Alcotest.(check bool) "sequential path raises raw exception" true raw

let test_single_item_stays_sequential () =
  let got = Pool.parallel_map ~workers:8 square [| 9 |] in
  Alcotest.(check (array int)) "singleton" [| 81 |] got;
  let got = Pool.parallel_map ~workers:8 square [||] in
  Alcotest.(check (array int)) "empty" [||] got

let test_more_workers_than_items () =
  let xs = Array.init 3 (fun i -> i) in
  let got = Pool.parallel_map ~workers:16 square xs in
  Alcotest.(check (array int)) "clamped worker count" [| 0; 1; 4 |] got

(* ---- Pool.Persistent ------------------------------------------------------ *)

let test_persistent_submit_await () =
  let pool = Pool.Persistent.create ~workers:3 in
  let tasks = List.init 30 (fun i -> Pool.Persistent.submit pool (fun () -> square i)) in
  List.iteri
    (fun i t ->
      match Pool.Persistent.await pool t with
      | Ok v -> Alcotest.(check int) (Printf.sprintf "task %d result" i) (square i) v
      | Error e -> Alcotest.failf "task %d failed: %s" i (Printexc.to_string e))
    tasks;
  Pool.Persistent.shutdown pool

let test_persistent_exception_isolation () =
  let pool = Pool.Persistent.create ~workers:2 in
  let tasks =
    List.init 20 (fun i ->
        (i, Pool.Persistent.submit pool (fun () -> if i = 13 then raise (Boom i) else i)))
  in
  List.iter
    (fun (i, t) ->
      match (i, Pool.Persistent.await pool t) with
      | 13, Error (Boom 13) -> ()
      | 13, Ok _ -> Alcotest.fail "task 13 should have failed"
      | 13, Error e -> Alcotest.failf "wrong payload: %s" (Printexc.to_string e)
      | _, Ok v -> Alcotest.(check int) "neighbour unaffected" i v
      | _, Error e -> Alcotest.failf "task %d poisoned by task 13: %s" i (Printexc.to_string e))
    tasks;
  Pool.Persistent.shutdown pool

let test_persistent_cancel_pending () =
  (* one worker held on a gate guarantees the second task is still queued
     when we revoke it — no timing involved *)
  let gate = Semaphore.Binary.make false in
  let pool = Pool.Persistent.create ~workers:1 in
  let t1 =
    Pool.Persistent.submit pool (fun () ->
        Semaphore.Binary.acquire gate;
        1)
  in
  let t2 = Pool.Persistent.submit pool (fun () -> 2) in
  Alcotest.(check bool) "pending task revocable" true (Pool.Persistent.cancel pool t2);
  Semaphore.Binary.release gate;
  (match Pool.Persistent.await pool t1 with
  | Ok 1 -> ()
  | _ -> Alcotest.fail "running task unaffected by a neighbour's cancel");
  (match Pool.Persistent.await pool t2 with
  | Error Pool.Persistent.Cancelled -> ()
  | Ok _ -> Alcotest.fail "revoked task must not run"
  | Error e -> Alcotest.failf "wrong error: %s" (Printexc.to_string e));
  Alcotest.(check bool) "settled task not revocable" false (Pool.Persistent.cancel pool t1);
  Pool.Persistent.shutdown pool

let test_persistent_shutdown_drain () =
  let pool = Pool.Persistent.create ~workers:2 in
  let tasks = List.init 10 (fun i -> Pool.Persistent.submit pool (fun () -> i * 3)) in
  Pool.Persistent.shutdown ~drain:true pool;
  List.iteri
    (fun i t ->
      match Pool.Persistent.await pool t with
      | Ok v -> Alcotest.(check int) "drained task ran" (i * 3) v
      | Error e -> Alcotest.failf "drain dropped task %d: %s" i (Printexc.to_string e))
    tasks;
  match Pool.Persistent.submit pool (fun () -> 0) with
  | _ -> Alcotest.fail "submit after shutdown must be rejected"
  | exception Invalid_argument _ -> ()

let test_persistent_shutdown_abort () =
  let started = Semaphore.Binary.make false in
  let gate = Semaphore.Binary.make false in
  let pool = Pool.Persistent.create ~workers:1 in
  let t1 =
    Pool.Persistent.submit pool (fun () ->
        Semaphore.Binary.release started;
        Semaphore.Binary.acquire gate;
        1)
  in
  let pending = List.init 4 (fun i -> Pool.Persistent.submit pool (fun () -> i)) in
  (* wait until the worker has claimed t1, then release the gate so
     shutdown's join can complete; the worker may run a couple of pending
     tasks in the race window, but an aborting shutdown must leave every
     task terminal and never block *)
  Semaphore.Binary.acquire started;
  Semaphore.Binary.release gate;
  Pool.Persistent.shutdown ~drain:false pool;
  (match Pool.Persistent.await pool t1 with
  | Ok 1 -> ()
  | _ -> Alcotest.fail "in-flight task completes across abort");
  List.iteri
    (fun i t ->
      match Pool.Persistent.await pool t with
      | Ok v -> Alcotest.(check int) "ran before abort" i v
      | Error Pool.Persistent.Cancelled -> ()
      | Error e -> Alcotest.failf "unexpected error: %s" (Printexc.to_string e))
    pending;
  match Pool.Persistent.submit pool (fun () -> 0) with
  | _ -> Alcotest.fail "submit after abort must be rejected"
  | exception Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "result order determinism" `Quick test_order_determinism;
    Alcotest.test_case "ordered under imbalance" `Quick test_uneven_work_still_ordered;
    Alcotest.test_case "worker failure propagates" `Quick test_worker_failure_propagates;
    Alcotest.test_case "sequential fast path" `Quick test_sequential_fast_path;
    Alcotest.test_case "singleton/empty input" `Quick test_single_item_stays_sequential;
    Alcotest.test_case "more workers than items" `Quick test_more_workers_than_items;
    Alcotest.test_case "persistent: submit/await" `Quick test_persistent_submit_await;
    Alcotest.test_case "persistent: exception isolation" `Quick test_persistent_exception_isolation;
    Alcotest.test_case "persistent: cancel pending" `Quick test_persistent_cancel_pending;
    Alcotest.test_case "persistent: shutdown drains" `Quick test_persistent_shutdown_drain;
    Alcotest.test_case "persistent: shutdown abort" `Quick test_persistent_shutdown_abort;
  ]
